// Experiment shape tests: fast, assertive versions of every table and
// figure reproduction, checking the qualitative results the paper reports
// — who wins, by roughly what factor, where behaviour crosses over. The
// full-scale tables live behind cmd/tables and the benchmarks; these tests
// keep the repository honest on every `go test ./...`.
package repro_test

import (
	"testing"

	"repro/internal/db"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestExperimentTable41 asserts the headline two-pool results: the LRU-2
// hit ratio roughly doubles LRU-1's at small buffers, LRU-3 sits between
// LRU-2 and A0, the cost/performance factor B(1)/B(2) is ~2-3, and all
// policies converge once the buffer holds the whole hot pool.
func TestExperimentTable41(t *testing.T) {
	tb := sim.RunTable41(sim.Table41Config{Buffers: []int{60, 100, 140, 450}, Repeats: 3})
	get := func(p string, b int) float64 {
		v, ok := tb.Ratio(p, b)
		if !ok {
			t.Fatalf("missing cell %s/%d", p, b)
		}
		return v
	}
	// Paper row B=60: LRU-1 0.14, LRU-2 0.291, A0 0.300, ratio 2.3.
	if r := get("LRU-2", 60) / get("LRU-1", 60); r < 1.7 {
		t.Errorf("B=60: LRU-2/LRU-1 = %.2f, paper ~2.1", r)
	}
	// Paper row B=140: LRU-2 has converged to ~0.502 while LRU-1 is at 0.29.
	if get("LRU-2", 140) < 0.48 {
		t.Errorf("B=140: LRU-2 = %.3f, paper 0.502", get("LRU-2", 140))
	}
	if get("LRU-1", 140) > 0.35 {
		t.Errorf("B=140: LRU-1 = %.3f, paper 0.29", get("LRU-1", 140))
	}
	// Convergence at B=450 (paper: 0.50 vs 0.517).
	if gap := get("LRU-2", 450) - get("LRU-1", 450); gap > 0.05 {
		t.Errorf("B=450: residual gap %.3f, paper 0.017", gap)
	}
	// Ordering LRU-2 <= LRU-3 <= A0 (small tolerance for noise).
	for _, b := range []int{60, 100, 140} {
		if get("LRU-3", b) < get("LRU-2", b)-0.02 || get("A0", b) < get("LRU-3", b)-0.02 {
			t.Errorf("B=%d: ordering LRU-2 (%.3f) <= LRU-3 (%.3f) <= A0 (%.3f) violated",
				b, get("LRU-2", b), get("LRU-3", b), get("A0", b))
		}
	}
	// B(1)/B(2) ~2-3 at small buffers.
	if tb.Rows[0].EquiRatio < 1.8 || tb.Rows[0].EquiRatio > 3.5 {
		t.Errorf("B=60: B(1)/B(2) = %.2f, paper 2.3", tb.Rows[0].EquiRatio)
	}
}

// TestExperimentTable42 asserts the Zipfian results: LRU-2 beats LRU-1
// with milder gains than the two-pool case, A0 tracks the distribution's
// CDF, and the advantage vanishes at large buffers (paper: ratio 1.0 at
// B=500).
func TestExperimentTable42(t *testing.T) {
	tb := sim.RunTable42(sim.Table42Config{Buffers: []int{40, 100, 500}, Repeats: 3})
	get := func(p string, b int) float64 {
		v, _ := tb.Ratio(p, b)
		return v
	}
	// Paper row B=40: LRU-1 0.53, LRU-2 0.61, A0 0.640.
	if get("LRU-1", 40) < 0.45 || get("LRU-1", 40) > 0.60 {
		t.Errorf("B=40: LRU-1 = %.3f, paper 0.53", get("LRU-1", 40))
	}
	if get("LRU-2", 40) <= get("LRU-1", 40) {
		t.Errorf("B=40: LRU-2 (%.3f) not above LRU-1 (%.3f)", get("LRU-2", 40), get("LRU-1", 40))
	}
	if a0 := get("A0", 40); a0 < 0.62 || a0 > 0.66 {
		t.Errorf("B=40: A0 = %.3f, paper 0.640 (the CDF at 40 pages)", a0)
	}
	// Two-pool gains are stronger than Zipfian gains (paper §4.2).
	if gap42 := get("LRU-2", 40) - get("LRU-1", 40); gap42 > 0.15 {
		t.Errorf("B=40 gain %.3f implausibly large; paper reports milder Zipfian gains", gap42)
	}
	// Convergence at B=500 (paper: 0.87 vs 0.87).
	if gap := get("LRU-2", 500) - get("LRU-1", 500); gap > 0.03 {
		t.Errorf("B=500: residual gap %.3f, paper 0.00", gap)
	}
}

// TestExperimentTable43 asserts the OLTP-trace results on the synthetic
// substitute: LRU-2 superior to both LRU-1 and LFU throughout, B(1)/B(2)
// around 2 at small buffers and declining, convergence at large buffers.
func TestExperimentTable43(t *testing.T) {
	if testing.Short() {
		t.Skip("OLTP trace replay")
	}
	tb := sim.RunTable43(sim.Table43Config{
		OLTP:    workload.OLTPConfig{DriftEvery: 300},
		Refs:    180000,
		Warmup:  30000,
		Buffers: []int{200, 600, 2000},
	})
	for _, row := range tb.Rows {
		lru1, lru2, lfu := row.Ratios[0], row.Ratios[1], row.Ratios[2]
		if lru2 <= lfu || lfu <= lru1 {
			t.Errorf("B=%d: want LRU-1 (%.3f) < LFU (%.3f) < LRU-2 (%.3f)",
				row.Buffer, lru1, lfu, lru2)
		}
	}
	if tb.Rows[0].EquiRatio < 1.5 {
		t.Errorf("B=200: B(1)/B(2) = %.2f, want >= 1.5 (paper: 3.25)", tb.Rows[0].EquiRatio)
	}
}

// TestExperimentOLTPTraceProfile asserts the published trace statistics of
// §4.3 hold for the synthetic substitute at full scale: "40% of the
// references access only 3% of the database pages", "90% of the references
// access 65% of the pages", and a Five-Minute-Rule hot set of roughly 1400
// pages.
func TestExperimentOLTPTraceProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("full trace generation")
	}
	g, err := workload.NewOLTP(workload.OLTPConfig{}, 1993)
	if err != nil {
		t.Fatal(err)
	}
	refs := workload.Generate(g, 470000)
	s := trace.Analyze(refs)
	if got := s.RefFractionOfHottestPages(0.03); got < 0.32 || got > 0.48 {
		t.Errorf("hottest 3%% of pages take %.3f of refs, paper 0.40", got)
	}
	if got := s.PageFractionForRefShare(0.90); got < 0.53 || got > 0.77 {
		t.Errorf("90%% of refs need %.3f of pages, paper 0.65", got)
	}
	// The paper's 100-second window at ~130 refs/s is ~13000 references.
	if got := s.HotSetSize(13000); got < 700 || got > 2800 {
		t.Errorf("five-minute-rule hot set = %d pages, paper ~1400", got)
	}
}

// TestExperimentExample11 asserts the motivating example end to end on the
// real storage stack: LRU-2 keeps the index resident, LRU-1 splits frames
// about evenly between index and data pages.
func TestExperimentExample11(t *testing.T) {
	res2, err := db.RunExample11(db.Config{Frames: 16, K: 2}, 2000, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := db.RunExample11(db.Config{Frames: 16, K: 1}, 2000, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	// LRU-1: about half the frames hold data pages (paper: "50 B-tree leaf
	// pages and 50 record pages").
	if res1.ResidentData < 4 || res1.ResidentData > 12 {
		t.Errorf("LRU-1 resident data pages = %d of 16 frames, want roughly half", res1.ResidentData)
	}
	// LRU-2: the index (11 pages) is essentially fully resident.
	if res2.ResidentIndex < 10 {
		t.Errorf("LRU-2 resident index pages = %d, want >= 10", res2.ResidentIndex)
	}
	if res2.HitRatio <= res1.HitRatio {
		t.Errorf("LRU-2 hit ratio %.3f not above LRU-1 %.3f", res2.HitRatio, res1.HitRatio)
	}
	if res2.ServiceMicros >= res1.ServiceMicros {
		t.Errorf("LRU-2 simulated I/O time %d not below LRU-1 %d", res2.ServiceMicros, res1.ServiceMicros)
	}
}

// TestExperimentScanResistance asserts the Example 1.2 ablation: LRU-2
// holds the hot set through sequential scans, LRU-1 does not.
func TestExperimentScanResistance(t *testing.T) {
	tb := sim.RunScanResistance(600, 13)
	row := tb.Rows[0]
	idx := map[string]int{}
	for i, p := range tb.Policies {
		idx[p] = i
	}
	lru1, lru2 := row.Ratios[idx["LRU-1"]], row.Ratios[idx["LRU-2"]]
	if lru2 <= lru1+0.02 {
		t.Errorf("LRU-2 (%.3f) not clearly above LRU-1 (%.3f) under scans", lru2, lru1)
	}
	if fifo := row.Ratios[idx["FIFO"]]; fifo > lru2 {
		t.Errorf("FIFO (%.3f) above LRU-2 (%.3f)?", fifo, lru2)
	}
}

// TestExperimentAdaptivity asserts the evolving-pattern ablation: LFU
// collapses under a moving hot spot while LRU-2 adapts, and LRU-3 is no
// more responsive than LRU-2.
func TestExperimentAdaptivity(t *testing.T) {
	tb := sim.RunAdaptivity(250, 10000, 11)
	row := tb.Rows[0]
	lru2, lru3, lfu := row.Ratios[1], row.Ratios[2], row.Ratios[3]
	if lfu >= lru2 {
		t.Errorf("LFU (%.3f) not below LRU-2 (%.3f) under moving hot spot", lfu, lru2)
	}
	if lru3 > lru2+0.02 {
		t.Errorf("LRU-3 (%.3f) above LRU-2 (%.3f) under change; paper says less responsive", lru3, lru2)
	}
}

// TestExperimentCRPSweep asserts the §2.1.1 ablation: on a workload with
// correlated bursts, a non-zero Correlated Reference Period improves LRU-2
// over the naive CRP=0 configuration.
func TestExperimentCRPSweep(t *testing.T) {
	tb := sim.RunCRPSweep(120, []policy.Tick{0, 4, 8}, 17)
	row := tb.Rows[0]
	if best := row.Ratios[1]; best <= row.Ratios[0] {
		t.Errorf("CRP=4 (%.3f) not above CRP=0 (%.3f) on bursty workload", best, row.Ratios[0])
	}
}

// TestExperimentRIPSweep asserts the §2.1.2 ablation: a too-short Retained
// Information Period forgets hot-page history (degrading toward LRU-1)
// while a sufficient one recovers full LRU-2 quality.
func TestExperimentRIPSweep(t *testing.T) {
	tb := sim.RunRIPSweep(120, []policy.Tick{50, 1600, 0}, 19)
	row := tb.Rows[0]
	short, long, unlimited := row.Ratios[0], row.Ratios[1], row.Ratios[2]
	if short >= long {
		t.Errorf("RIP=50 (%.3f) not below RIP=1600 (%.3f)", short, long)
	}
	if long < unlimited-0.03 {
		t.Errorf("RIP=1600 (%.3f) well below unlimited retention (%.3f)", long, unlimited)
	}
}
