// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 4) plus the ablation sweeps DESIGN.md calls out.
// Each table benchmark regenerates its table on every iteration and logs
// the rendered result once (visible with -v); cmd/tables produces the
// full-scale canonical versions.
//
// Benchmarks use modestly reduced trace lengths so `go test -bench=.`
// finishes in minutes; the reductions scale warm-up, measurement, and
// drift proportionally so every qualitative relationship of the full
// tables is preserved.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkTable41 regenerates Table 4.1 (two-pool experiment: LRU-1,
// LRU-2, LRU-3 and A0 hit ratios plus B(1)/B(2) across buffer sizes).
func BenchmarkTable41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunTable41(sim.Table41Config{Repeats: 2})
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkTable42 regenerates Table 4.2 (Zipfian 80-20 experiment: LRU-1,
// LRU-2, A0 plus B(1)/B(2)).
func BenchmarkTable42(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunTable42(sim.Table42Config{Repeats: 2})
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkTable43 regenerates Table 4.3 (synthetic OLTP trace: LRU-1,
// LRU-2, LFU plus B(1)/B(2)). The trace is shortened from 470k to 180k
// references with proportionally faster warm-set drift; run
// `cmd/tables -table 4.3` for the full-scale version.
func BenchmarkTable43(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunTable43(sim.Table43Config{
			OLTP:    workload.OLTPConfig{DriftEvery: 300},
			Refs:    180000,
			Warmup:  30000,
			Buffers: []int{100, 200, 600, 1000, 2000, 5000},
		})
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkKSweep is the §4.1 in-text ablation: LRU-K approaches A0 as K
// grows on the stable two-pool pattern.
func BenchmarkKSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunKSweep(100, 5, 2, 7)
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkAdaptivity is the evolving-access-pattern ablation: LRU-2
// versus LRU-3 versus LFU under a moving hot spot.
func BenchmarkAdaptivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunAdaptivity(250, 20000, 11)
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkScanResistance is the Example 1.2 ablation across the policy
// family.
func BenchmarkScanResistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunScanResistance(600, 13)
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkCRPSweep is the §2.1.1 ablation: Correlated Reference Period
// sensitivity on a bursty workload.
func BenchmarkCRPSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunCRPSweep(120, []policy.Tick{0, 1, 2, 4, 8, 16}, 17)
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// BenchmarkRIPSweep is the §2.1.2 ablation: Retained Information Period
// sensitivity on the two-pool workload.
func BenchmarkRIPSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := sim.RunRIPSweep(120, []policy.Tick{100, 200, 400, 800, 1600, 0}, 19)
		if i == 0 {
			b.Logf("\n%s", t.Render())
		}
	}
}

// --- micro-benchmarks: per-reference cost of the policies themselves ---

func benchPolicy(b *testing.B, c policy.Cache, pages int) {
	b.Helper()
	g := workload.NewZipfian(pages, 0.8, 0.2, 1)
	trace := workload.Generate(g, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reference(trace[i&(1<<16-1)])
	}
}

// BenchmarkLRU2Reference measures the paper's claim that LRU-K "incurs
// little bookkeeping overhead": one reference through the full HIST/LAST
// machinery and the search-tree victim index.
func BenchmarkLRU2Reference(b *testing.B) {
	benchPolicy(b, core.NewLRUK(1024, 2), 16384)
}

// BenchmarkLRU2ReferenceWithCRP adds the Correlated Reference Period and
// retained-history purge to the per-reference path.
func BenchmarkLRU2ReferenceWithCRP(b *testing.B) {
	benchPolicy(b, core.NewLRUKWithOptions(1024, 2, core.Options{
		CorrelatedReferencePeriod: 8,
		RetainedInformationPeriod: 8192,
	}), 16384)
}

// BenchmarkLRU1Reference is the classical-LRU baseline cost.
func BenchmarkLRU1Reference(b *testing.B) {
	benchPolicy(b, policy.NewLRU(1024), 16384)
}

// BenchmarkLFUReference is the O(1) frequency-list LFU cost.
func BenchmarkLFUReference(b *testing.B) {
	benchPolicy(b, policy.NewLFU(1024), 16384)
}

// BenchmarkARCReference is the ARC baseline cost.
func BenchmarkARCReference(b *testing.B) {
	benchPolicy(b, policy.NewARC(1024), 16384)
}

// BenchmarkTwoQReference is the 2Q baseline cost.
func BenchmarkTwoQReference(b *testing.B) {
	benchPolicy(b, policy.NewTwoQ(1024), 16384)
}

// BenchmarkConcurrentCache measures the sharded generic cache under a
// read-heavy mixed workload.
func BenchmarkConcurrentCache(b *testing.B) {
	cache, err := core.NewIntCache[int64](8192, core.CacheOptions{})
	if err != nil {
		b.Fatal(err)
	}
	g := workload.NewZipfian(65536, 0.8, 0.2, 1)
	keys := make([]int64, 1<<16)
	for i := range keys {
		keys[i] = int64(g.Next())
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i&(1<<16-1)]
			if _, ok := cache.Get(k); !ok {
				cache.Put(k, k)
			}
			i++
		}
	})
}

// BenchmarkTPCA is the Example 1.1/[TPC-A] ablation: LRU-1 vs naive LRU-2
// vs LRU-2 with a transaction-spanning Correlated Reference Period on the
// TPC-A transaction stream (see examples/tpca).
func BenchmarkTPCA(b *testing.B) {
	run := func(k int, crp policy.Tick) float64 {
		g, err := workload.NewTPCA(workload.TPCAConfig{}, 5)
		if err != nil {
			b.Fatal(err)
		}
		c := core.NewLRUKWithOptions(600, k, core.Options{CorrelatedReferencePeriod: crp})
		hits, total := 0, 0
		for i := 0; i < 160000; i++ {
			hit := c.Reference(g.Next())
			if i >= 40000 {
				total++
				if hit {
					hits++
				}
			}
		}
		return float64(hits) / float64(total)
	}
	for i := 0; i < b.N; i++ {
		lru1 := run(1, 0)
		naive := run(2, 0)
		corrected := run(2, 8)
		if i == 0 {
			b.Logf("TPC-A B=600: LRU-1 %.3f, LRU-2/CRP=0 %.3f, LRU-2/CRP=8 %.3f", lru1, naive, corrected)
		}
	}
}

// BenchmarkBudgetedLRUK exercises the Section 5 future-work feature: a
// fixed memory budget dynamically split between frames and history blocks.
func BenchmarkBudgetedLRUK(b *testing.B) {
	g := workload.NewZipfian(16384, 0.8, 0.2, 1)
	trace := workload.Generate(g, 1<<16)
	c := core.NewBudgetedLRUK(1024, 2, 100, core.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reference(trace[i&(1<<16-1)])
	}
}
