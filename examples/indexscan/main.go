// Indexscan runs the paper's Example 1.1 end to end through the real
// storage stack: customer records in a heap file, a clustered B-tree on
// CUST-ID, random lookups producing the alternating I1, R1, I2, R2, ...
// reference pattern — then compares how LRU-1 and LRU-2 buffer pools split
// their frames between index and data pages.
//
// The paper's observation: with ~enough frames for the index, LRU keeps
// "50 B-tree leaf pages and 50 record pages" (useless data pages crowd out
// precious leaf pages), while LRU-2 learns that every leaf page is ~100x
// hotter than any data page and keeps the whole index resident.
//
//	go run ./examples/indexscan
package main

import (
	"fmt"
	"log"

	"repro/internal/db"
)

func main() {
	// Scaled-down Example 1.1: 2000 customers → 1000 data pages and a
	// ~11-page index; 16 frames approximate the paper's "101 buffers for a
	// 100-leaf index" proportions.
	const (
		customers = 2000
		lookups   = 40000
		frames    = 16
	)
	fmt.Printf("Example 1.1: %d customers, %d random lookups, %d buffer frames\n\n",
		customers, lookups, frames)
	fmt.Printf("%-8s  %9s  %12s  %11s  %10s  %12s\n",
		"policy", "hit ratio", "index pages", "data pages", "disk reads", "I/O time (s)")
	for _, k := range []int{1, 2, 3} {
		res, err := db.RunExample11(db.Config{Frames: frames, K: k}, customers, lookups, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("LRU-%d     %9.3f  %12d  %11d  %10d  %12.1f\n",
			k, res.HitRatio, res.ResidentIndex, res.ResidentData,
			res.DiskReads, float64(res.ServiceMicros)/1e6)
	}
	fmt.Println("\nLRU-2/3 keep the index resident; LRU-1 wastes frames on data pages.")
}
