// Tpca replays a TPC-A-style transaction stream (the benchmark Example
// 1.1 cites) and shows why §2.1.1's Correlated Reference Period exists:
// every transaction reads and then updates its account page — a correlated
// reference pair. With CRP=0, that pair gives every account page a
// Backward 2-distance of one reference, so naive LRU-2 mistakes the
// coldest pages in the system for the hottest and loses to plain LRU.
// A CRP spanning the transaction collapses the pair and LRU-2 wins.
//
//	go run ./examples/tpca
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/workload"
)

func main() {
	const (
		buffer = 600
		txns   = 40000
		perTxn = 8 // branch, teller, 3 index levels, account x2, history
		warmup = 50000
	)
	fmt.Println("TPC-A: 10 branches, 100 tellers, 100k accounts (50k pages), 504 index pages")
	fmt.Printf("B=%d frames, %d transactions\n\n", buffer, txns)

	configs := []struct {
		label string
		k     int
		crp   policy.Tick
	}{
		{"LRU-1", 1, 0},
		{"LRU-2, CRP=0 (naive)", 2, 0},
		{"LRU-2, CRP=8 (one txn)", 2, 8},
		{"LRU-3, CRP=8", 3, 8},
	}
	fmt.Printf("%-24s  %9s\n", "configuration", "hit ratio")
	for _, cfg := range configs {
		g, err := workload.NewTPCA(workload.TPCAConfig{}, 5)
		if err != nil {
			log.Fatal(err)
		}
		c := core.NewLRUKWithOptions(buffer, cfg.k, core.Options{CorrelatedReferencePeriod: cfg.crp})
		hits, total := 0, 0
		for i := 0; i < txns*perTxn; i++ {
			hit := c.Reference(g.Next())
			if i >= warmup {
				total++
				if hit {
					hits++
				}
			}
		}
		fmt.Printf("%-24s  %9.3f\n", cfg.label, float64(hits)/float64(total))
	}
	fmt.Println("\nThe read/update pair poisons naive LRU-2 (§2.1.1, correlated pair type 1);")
	fmt.Println("a Correlated Reference Period spanning the transaction restores the win.")
}
