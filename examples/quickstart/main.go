// Quickstart: the generic LRU-K cache as a downstream user would adopt it.
//
// The cache evicts by Backward K-distance (K=2 by default), so one-shot
// bulk traffic cannot flush entries with proven re-reference frequency —
// the scan resistance that plain LRU lacks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A small cache: 64 entries, LRU-2 eviction, default sharding.
	cache, err := core.NewStringCache[string](64, core.CacheOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}

	// A working set the application keeps coming back to.
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("config/%d", i)
		cache.Put(key, fmt.Sprintf("value-%d", i))
		cache.Get(key) // second reference: the entry earns a finite K-distance
	}

	// A one-shot bulk pass over 10000 keys — the cache-library equivalent
	// of the paper's Example 1.2 sequential scan.
	for i := 0; i < 10000; i++ {
		cache.Put(fmt.Sprintf("bulk/%d", i), "transient")
	}

	// The working set survived.
	kept := 0
	for i := 0; i < 16; i++ {
		if _, ok := cache.Get(fmt.Sprintf("config/%d", i)); ok {
			kept++
		}
	}
	stats := cache.Stats()
	fmt.Printf("working set surviving the bulk pass: %d/16\n", kept)
	fmt.Printf("cache stats: %d hits, %d misses, %d evictions (hit ratio %.2f)\n",
		stats.Hits, stats.Misses, stats.Evictions, stats.HitRatio())
	if kept < 12 {
		log.Fatal("unexpected: the scan flushed the working set")
	}
}
