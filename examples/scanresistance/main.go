// Scanresistance demonstrates the paper's Example 1.2: an interactive
// workload with strong locality shares the buffer pool with batch
// sequential scans. Under LRU the scan pages flush the hot set ("cache
// swamping"), degrading interactive hit ratios; LRU-2 is immune because a
// page read once by a scan has an infinite Backward 2-distance and is the
// first to go.
//
//	go run ./examples/scanresistance
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const (
		dbPages  = 50000
		hotPages = 400
		buffer   = 600
	)
	fmt.Printf("Example 1.2: %d-page DB, %d-page hot set (95%% of interactive refs),\n", dbPages, hotPages)
	fmt.Printf("periodic 5000-page sequential scans, B=%d frames\n\n", buffer)

	g := workload.NewScanInterference(dbPages, hotPages, 0.95, 2000, 5000, 7)
	e := sim.NewExperiment("example-1.2", g, 50000, 200000)

	rows := []struct {
		name string
		f    sim.Factory
	}{
		{"LRU-1", sim.LRUK(1)},
		{"LRU-2", sim.LRUK(2)},
		{"LRU-3", sim.LRUK(3)},
		{"LFU", sim.LFU()},
		{"2Q", sim.TwoQ()},
		{"ARC", sim.ARC()},
		{"CLOCK", sim.Clock()},
		{"FIFO", sim.FIFO()},
	}
	fmt.Printf("%-7s  %9s\n", "policy", "hit ratio")
	for _, row := range rows {
		fmt.Printf("%-7s  %9.3f\n", row.name, e.HitRatio(row.f, buffer))
	}
	fmt.Println("\nThe frequency-aware policies (LRU-2/3, LFU, ARC) hold the hot set;")
	fmt.Println("recency-only policies (LRU-1, CLOCK, FIFO) are swamped by scan pages.")
	fmt.Println("2Q with its default Kout tuning degrades too: the scan flood churns its")
	fmt.Println("ghost list faster than hot pages re-reference — exactly the kind of")
	fmt.Println("workload-dependent parameter sensitivity the paper's §1.2 warns about.")
}
