// Movinghotspot demonstrates adaptivity under evolving access patterns —
// the property that separates LRU-K from LFU (§1.2, §4.3) and makes the
// paper advocate K=2 over larger K (§4.1: "LRU-3 is less responsive than
// LRU-2 ... it needs more references to adapt itself to dynamic changes of
// reference frequencies").
//
// The workload's hot set rotates to a fresh page region every epoch. LFU's
// counts never age, so it clings to dead pages; LRU-3 needs three spaced
// references before it trusts a new page; LRU-2 adapts fastest among the
// frequency-aware policies.
//
//	go run ./examples/movinghotspot
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	const (
		dbPages  = 10000
		hotPages = 200
		buffer   = 250
	)
	fmt.Printf("Moving hot spot: %d of %d pages take 90%% of refs, window shifts per epoch, B=%d\n\n",
		hotPages, dbPages, buffer)
	fmt.Printf("%-7s", "epoch")
	names := []string{"LRU-1", "LRU-2", "LRU-3", "LFU"}
	for _, n := range names {
		fmt.Printf("  %8s", n)
	}
	fmt.Println()
	for _, epoch := range []int{5000, 20000, 80000} {
		g := workload.NewMovingHotSpot(dbPages, hotPages, 0.9, epoch, 11)
		e := sim.NewExperiment("hotspot", g, 5*epoch, 20*epoch)
		fmt.Printf("%-7d", epoch)
		for _, f := range []sim.Factory{sim.LRUK(1), sim.LRUK(2), sim.LRUK(3), sim.LFU()} {
			fmt.Printf("  %8.3f", e.HitRatio(f, buffer))
		}
		fmt.Println()
	}
	fmt.Println("\nShort epochs (fast-moving hot spots) punish LFU hardest and favour")
	fmt.Println("LRU-2 over LRU-3; with long epochs (stable patterns) the ordering relaxes.")
}
