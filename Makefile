GO ?= go

.PHONY: all build test race vet fmt-check bench bench-pool bench-hit bench-obs bench-save tables chaos serve-smoke obs-smoke crash-smoke corrupt-smoke cluster-smoke trace-smoke check

all: check

build:
	$(GO) build ./...

## test: vet plus the plain suite. The explicit -timeout turns a hung
## lifecycle path (a writer that never stops, a waiter that never wakes)
## into a stack-dumping failure instead of a stuck CI job.
test:
	$(GO) vet ./...
	$(GO) test -timeout 300s ./...

## race: the standard concurrency gate — vet plus the full suite under the
## race detector (includes the pool, cache, replacer and disk stress tests).
race:
	$(GO) vet ./...
	$(GO) test -race -timeout 600s ./...

vet:
	$(GO) vet ./...

## fmt-check: fail if any file is not gofmt-clean (lists the offenders).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

## bench: every paper-table benchmark plus ablations (repo root).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

## bench-pool: serial vs latch-partitioned buffer pool scalability.
bench-pool:
	$(GO) test -bench BenchmarkPoolParallel -run '^$$' ./internal/bufferpool/

## bench-hit: the resident-hit-path regression gate — runs the batched
## pool's hit loop via testing.Benchmark and fails if ns/op exceeds the
## ceiling or falls behind the unbatched sharded pool (DESIGN.md §14).
bench-hit:
	$(GO) test -count=1 -run TestHitPathCeiling -v ./internal/bufferpool/

tables:
	$(GO) run ./cmd/tables

## chaos: the seeded disk-fault storm against the concurrent pool, under
## the race detector (DESIGN.md §9).
chaos:
	$(GO) vet ./internal/bufferpool/
	$(GO) test -race -count=1 -timeout 300s -run TestChaosFaultStorm -v ./internal/bufferpool/

## bench-obs: hot-path cost of one counter increment plus one histogram
## observation, enabled vs disabled (DESIGN.md §12 quotes the numbers).
bench-obs:
	$(GO) test -bench BenchmarkObs -run '^$$' ./internal/obs/

## serve-smoke: boot the lrukd daemon on a random port, drive a load burst
## through the wire protocol, check the hit ratio, and verify a clean
## SIGTERM drain (DESIGN.md §11).
serve-smoke:
	sh scripts/serve_smoke.sh

## obs-smoke: boot lrukd with the observability plane armed, then check
## /metrics families across every layer, the /trace ring, pprof, the
## structured log line, and a clean drain (DESIGN.md §12).
obs-smoke:
	sh scripts/obs_smoke.sh

## crash-smoke: kill -9 durability test — boot lrukd on a file-backed
## data dir, drive a ledger-recorded update load, SIGKILL mid-run,
## restart on the same dir, and verify every acknowledged update
## survived WAL recovery (DESIGN.md §13).
crash-smoke:
	sh scripts/crash_smoke.sh

## corrupt-smoke: offline bit-rot test — boot lrukd on a file-backed data
## dir, SIGKILL it mid-load, flip bytes in WAL-covered pages of the stopped
## store, restart, and verify recovery healed the damage, the ledger checks
## out, and the integrity metrics are live (DESIGN.md §15).
corrupt-smoke:
	sh scripts/corrupt_smoke.sh

## cluster-smoke: boot a 3-node cluster as independent lrukd processes,
## drive skew-gated and ledger-recorded loads through the ring-aware
## client, rebalance a node away and verify every acknowledged update
## survived the handoff, SIGKILL a node under live load, and drain the
## survivor cleanly (DESIGN.md §16).
cluster-smoke:
	sh scripts/cluster_smoke.sh

## trace-smoke: boot a 3-node traced cluster, gate startup on /healthz,
## drive a traced load, reassemble the slowest trace across every node's
## /spans ring with `lrukcluster trace`, check /metrics exemplars, and
## reassemble a traced rebalance's cluster-wide trace (DESIGN.md §17).
trace-smoke:
	sh scripts/trace_smoke.sh

## bench-save: run the tracked benchmark suites (storage backends,
## pool hit path) and snapshot them into BENCH_storage.json and
## BENCH_hotpath.json, filing dated copies under BENCH_history/ and
## printing a ns/op diff against the previous snapshots.
bench-save:
	sh scripts/bench_save.sh

check: fmt-check build vet test race bench-hit serve-smoke obs-smoke crash-smoke corrupt-smoke cluster-smoke trace-smoke
