GO ?= go

.PHONY: all build test race vet bench bench-pool tables check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the standard concurrency gate — vet plus the full suite under the
## race detector (includes the pool, cache, replacer and disk stress tests).
race:
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

## bench: every paper-table benchmark plus ablations (repo root).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

## bench-pool: serial vs latch-partitioned buffer pool scalability.
bench-pool:
	$(GO) test -bench BenchmarkPoolParallel -run '^$$' ./internal/bufferpool/

tables:
	$(GO) run ./cmd/tables

check: build vet test race
