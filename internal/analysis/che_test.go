package analysis

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestCheValidation(t *testing.T) {
	if _, err := CheLRUHitRatio(nil, 10); err == nil {
		t.Error("empty beta accepted")
	}
	if _, err := CheLRUHitRatio([]float64{0.1, 0.2}, 0); err == nil {
		t.Error("zero buffer accepted")
	}
	if got, err := CheLRUHitRatio([]float64{0.5, 0.5}, 5); err != nil || got != 1 {
		t.Errorf("all-fit case = %v, %v; want 1", got, err)
	}
}

// TestCheMatchesTwoPoolSimulation: the Che approximation must track the
// simulated LRU-1 column of Table 4.1.
func TestCheMatchesTwoPoolSimulation(t *testing.T) {
	beta := twoPoolBeta()
	tb := sim.RunTable41(sim.Table41Config{Buffers: []int{60, 100, 200, 400}, Repeats: 3})
	for _, row := range tb.Rows {
		che, err := CheLRUHitRatio(beta, row.Buffer)
		if err != nil {
			t.Fatal(err)
		}
		simulated := row.Ratios[0] // LRU-1 column
		if math.Abs(che-simulated) > 0.03 {
			t.Errorf("B=%d: Che %.3f vs simulated LRU-1 %.3f", row.Buffer, che, simulated)
		}
	}
}

// TestCheMatchesZipfianSimulation: same cross-check on the Table 4.2
// workload.
func TestCheMatchesZipfianSimulation(t *testing.T) {
	g := workload.NewZipfian(1000, 0.8, 0.2, 1)
	probs := g.Probabilities()
	beta := make([]float64, 1000)
	for p, v := range probs {
		beta[p] = v
	}
	tb := sim.RunTable42(sim.Table42Config{Buffers: []int{40, 100, 300}, Repeats: 3})
	for _, row := range tb.Rows {
		che, err := CheLRUHitRatio(beta, row.Buffer)
		if err != nil {
			t.Fatal(err)
		}
		simulated := row.Ratios[0]
		if math.Abs(che-simulated) > 0.03 {
			t.Errorf("B=%d: Che %.3f vs simulated LRU-1 %.3f", row.Buffer, che, simulated)
		}
	}
}

func TestCheMonotoneInBuffer(t *testing.T) {
	beta := twoPoolBeta()
	prev := 0.0
	for _, b := range []int{10, 50, 100, 500, 2000, 8000} {
		got, err := CheLRUHitRatio(beta, b)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Errorf("Che hit ratio decreased at B=%d: %v < %v", b, got, prev)
		}
		prev = got
	}
}

func TestA0HitRatio(t *testing.T) {
	beta := []float64{0.1, 0.4, 0.2, 0.3}
	cases := []struct {
		b    int
		want float64
	}{
		{1, 0.4}, {2, 0.7}, {3, 0.9}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		got, err := A0HitRatio(beta, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("A0HitRatio(B=%d) = %v, want %v", c.b, got, c.want)
		}
	}
	if _, err := A0HitRatio(beta, 0); err == nil {
		t.Error("zero buffer accepted")
	}
}

// TestA0MatchesTable41Column: the analytic A0 equals the simulated A0
// column (which is the paper's optimum).
func TestA0MatchesTable41Column(t *testing.T) {
	beta := twoPoolBeta()
	tb := sim.RunTable41(sim.Table41Config{Buffers: []int{60, 100}, Repeats: 3})
	for _, row := range tb.Rows {
		want, err := A0HitRatio(beta, row.Buffer)
		if err != nil {
			t.Fatal(err)
		}
		simulated := row.Ratios[len(row.Ratios)-1] // A0 column
		if math.Abs(want-simulated) > 0.02 {
			t.Errorf("B=%d: analytic A0 %.3f vs simulated %.3f", row.Buffer, want, simulated)
		}
	}
}
