package analysis

import (
	"fmt"
	"math"
	"sort"
)

// CheLRUHitRatio computes the Che approximation (Che, Tung & Wang 2002)
// of the LRU hit ratio under the Independent Reference Model — the model
// underlying the whole of Section 3. The characteristic time T solves
//
//	B = Σ_i (1 - e^(-β_i T))
//
// and the hit ratio is Σ_i β_i (1 - e^(-β_i T)). The approximation is
// remarkably accurate for B ≳ 10 and provides an analytic cross-check on
// the simulated LRU-1 columns of Tables 4.1 and 4.2.
func CheLRUHitRatio(beta []float64, b int) (float64, error) {
	if err := validateBeta(beta); err != nil {
		return 0, err
	}
	if b <= 0 {
		return 0, fmt.Errorf("analysis: buffer size must be positive, got %d", b)
	}
	if b >= len(beta) {
		// Every page fits: the only misses are cold, and the IRM steady
		// state has none.
		return 1, nil
	}
	occupancy := func(t float64) float64 {
		sum := 0.0
		for _, p := range beta {
			sum += 1 - math.Exp(-p*t)
		}
		return sum
	}
	// Bisection on the monotone occupancy: bracket T.
	lo, hi := 0.0, 1.0
	for occupancy(hi) < float64(b) {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("analysis: characteristic time diverged for B=%d", b)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < float64(b) {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (lo + hi) / 2
	hit := 0.0
	for _, p := range beta {
		hit += p * (1 - math.Exp(-p*t))
	}
	return hit, nil
}

// A0HitRatio returns the steady-state hit ratio of the A0 oracle
// (Definition 3.1) with b buffers: the sum of the b largest reference
// probabilities — the optimum every LRU-K column is measured against.
func A0HitRatio(beta []float64, b int) (float64, error) {
	if err := validateBeta(beta); err != nil {
		return 0, err
	}
	if b <= 0 {
		return 0, fmt.Errorf("analysis: buffer size must be positive, got %d", b)
	}
	if b >= len(beta) {
		return 1, nil
	}
	sorted := make([]float64, len(beta))
	copy(sorted, beta)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	sum := 0.0
	for _, p := range sorted[:b] {
		sum += p
	}
	return sum, nil
}
