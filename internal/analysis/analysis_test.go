package analysis

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func twoPoolBeta() []float64 {
	// The Table 4.1 workload: 100 pages at 1/200, 10000 pages at 1/20000.
	beta := make([]float64, 0, 10100)
	for i := 0; i < 100; i++ {
		beta = append(beta, 1.0/200)
	}
	for i := 0; i < 10000; i++ {
		beta = append(beta, 1.0/20000)
	}
	return beta
}

func TestValidation(t *testing.T) {
	if _, err := PosteriorPermutation(nil, 2, 5); err == nil {
		t.Error("empty beta accepted")
	}
	if _, err := PosteriorPermutation([]float64{0.5, 0.7}, 2, 5); err == nil {
		t.Error("beta summing above 1 accepted")
	}
	if _, err := PosteriorPermutation([]float64{0, 0.5}, 2, 5); err == nil {
		t.Error("zero probability accepted")
	}
	if _, err := PosteriorPermutation([]float64{0.1, 0.2}, 0, 5); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := PosteriorPermutation([]float64{0.1, 0.2}, 3, 2); err == nil {
		t.Error("k < K accepted")
	}
}

func TestPosteriorIsDistribution(t *testing.T) {
	beta := []float64{0.4, 0.3, 0.2, 0.1}
	for _, k := range []int{2, 5, 50, 5000} {
		post, err := PosteriorPermutation(beta, 2, k)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for v, p := range post {
			if p < 0 || p > 1 {
				t.Fatalf("k=%d: posterior[%d] = %v", k, v, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("k=%d: posterior sums to %v", k, sum)
		}
	}
}

// TestPosteriorSmallDistanceFavorsHotPages: a small backward distance must
// make the hot component most likely; a huge one makes the cold component
// most likely (the heart of Lemma 3.4).
func TestPosteriorShifts(t *testing.T) {
	beta := []float64{0.2, 0.001}
	small, err := PosteriorPermutation(beta, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if small[0] <= small[1] {
		t.Errorf("k=2: hot posterior %v not above cold %v", small[0], small[1])
	}
	large, err := PosteriorPermutation(beta, 2, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if large[0] >= large[1] {
		t.Errorf("k=5000: hot posterior %v not below cold %v", large[0], large[1])
	}
}

// TestLemma33MatchesMonteCarlo validates Eq. 3.2 against simulation: draw a
// random permutation assignment, generate a reference string, observe
// b_t(i,2)=k events, and compare empirical posterior to the formula.
func TestLemma33MatchesMonteCarlo(t *testing.T) {
	// Two pages with distinct probabilities; the rest of the mass goes to
	// a third "background" page so the string is well defined.
	beta := []float64{0.30, 0.10}
	const bgProb = 0.60
	r := stats.NewRNG(2718)
	const trials = 200000
	const k = 4 // condition on b_t(i,2) = 4
	// For each trial: assign page "i" either beta[0] or beta[1] with equal
	// prior, run a string, and record whether b_t(i,2)=k at a fixed t.
	counts := [2]int{}
	for trial := 0; trial < trials; trial++ {
		which := r.Intn(2)
		p := beta[which]
		// Generate 40 references; page i is referenced with prob p at each
		// position (independent reference model vs background mass).
		const T = 40
		positions := []int{}
		for pos := 1; pos <= T; pos++ {
			if r.Float64() < p {
				positions = append(positions, pos)
			}
		}
		// b_T(i,2) = T - (second most recent reference position).
		if len(positions) >= 2 {
			second := positions[len(positions)-2]
			if T-second == k {
				counts[which]++
			}
		}
	}
	_ = bgProb
	total := counts[0] + counts[1]
	if total < 1000 {
		t.Fatalf("too few conditioning events: %d", total)
	}
	empirical := float64(counts[0]) / float64(total)
	post, err := PosteriorPermutation(beta, 2, k)
	if err != nil {
		t.Fatal(err)
	}
	// Note: Eq. 3.2 with n=2 components and equal priors.
	if math.Abs(empirical-post[0]) > 0.02 {
		t.Errorf("empirical posterior %.4f vs Lemma 3.3 %.4f", empirical, post[0])
	}
}

// TestLemma36Monotonicity: E_t(P(i)) strictly decreases in k for any beta
// with at least two distinct values.
func TestLemma36Monotonicity(t *testing.T) {
	vectors := [][]float64{
		{0.4, 0.3, 0.2, 0.05},
		twoPoolBeta(),
	}
	for vi, beta := range vectors {
		coldest := beta[0]
		for _, b := range beta {
			if b < coldest {
				coldest = b
			}
		}
		prev := math.Inf(1)
		for _, k := range []int{2, 3, 5, 10, 50, 200, 1000, 20000} {
			e, err := ExpectedProbability(beta, 2, k)
			if err != nil {
				t.Fatal(err)
			}
			if e > prev {
				t.Errorf("vector %d: E(P | k=%d) = %v above previous %v", vi, k, e, prev)
			}
			// Strict decrease is required until the estimate has numerically
			// saturated at the coldest component (its k→∞ limit).
			if e == prev && prev-coldest > 1e-9 {
				t.Errorf("vector %d: E(P | k=%d) = %v not strictly below previous", vi, k, e)
			}
			if e <= 0 {
				t.Errorf("vector %d: E(P | k=%d) = %v not positive", vi, k, e)
			}
			prev = e
		}
	}
}

// TestLemma36ConstantBeta: with all beta equal the estimate is flat — the
// "at least two unequal values" condition is necessary.
func TestLemma36ConstantBeta(t *testing.T) {
	beta := []float64{0.1, 0.1, 0.1}
	e1, _ := ExpectedProbability(beta, 2, 2)
	e2, _ := ExpectedProbability(beta, 2, 500)
	if math.Abs(e1-e2) > 1e-12 {
		t.Errorf("constant beta gave varying estimate: %v vs %v", e1, e2)
	}
	if math.Abs(e1-0.1) > 1e-12 {
		t.Errorf("constant beta estimate %v, want 0.1", e1)
	}
}

// TestEstimateConvergesToBounds: as k→K the estimate approaches the hot
// end; as k→∞ it approaches the coldest component.
func TestEstimateConvergesToBounds(t *testing.T) {
	beta := []float64{0.3, 0.001}
	hot, _ := ExpectedProbability(beta, 2, 2)
	if hot < 0.29 {
		t.Errorf("estimate at k=K %v, want near 0.3", hot)
	}
	cold, _ := ExpectedProbability(beta, 2, 50000)
	if cold > 0.0011 {
		t.Errorf("estimate at huge k %v, want near 0.001", cold)
	}
}

func TestExpectedCost(t *testing.T) {
	if got := ExpectedCost([]float64{0.2, 0.3}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ExpectedCost = %v, want 0.5", got)
	}
	if got := ExpectedCost(nil); got != 1 {
		t.Errorf("empty ExpectedCost = %v, want 1", got)
	}
	// Numeric slack must clamp at 0.
	if got := ExpectedCost([]float64{0.6, 0.4000000001}); got != 0 {
		t.Errorf("over-full ExpectedCost = %v, want 0", got)
	}
}

// TestRankByEstimateMatchesBackwardK: retention priority is ascending
// backward distance with infinite distances last (Lemma 3.6 as LRU-K uses
// it).
func TestRankByEstimateMatchesBackwardK(t *testing.T) {
	states := []PageState{
		{Page: 1, BackwardK: 100},
		{Page: 2, Infinite: true},
		{Page: 3, BackwardK: 5},
		{Page: 4, BackwardK: 50},
		{Page: 5, Infinite: true},
	}
	got := RankByEstimate(states)
	want := []int{3, 4, 1, 2, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank = %v, want %v", got, want)
		}
	}
}

// TestTheorem38CostDominance: for sampled page histories, the set of m-1
// pages with minimal backward distances has expected cost no greater than
// any other (m-1)-subset, using the Lemma 3.5 estimates.
func TestTheorem38CostDominance(t *testing.T) {
	beta := []float64{0.25, 0.15, 0.1, 0.05, 0.02, 0.01}
	r := stats.NewRNG(31)
	for trial := 0; trial < 200; trial++ {
		// Sample backward distances for 6 pages.
		ks := make([]int, len(beta))
		estimates := make([]float64, len(beta))
		for i := range ks {
			ks[i] = 2 + r.Intn(500)
			e, err := ExpectedProbability(beta, 2, ks[i])
			if err != nil {
				t.Fatal(err)
			}
			estimates[i] = e
		}
		const m = 3
		// LRU-K keeps the m pages with smallest k — by Lemma 3.6 those have
		// the largest estimates, so their cost equals the optimum.
		type pk struct {
			k int
			e float64
		}
		byK := make([]pk, len(ks))
		for i := range ks {
			byK[i] = pk{ks[i], estimates[i]}
		}
		// Select m smallest-k estimates.
		chosen := []float64{}
		for sel := 0; sel < m; sel++ {
			best := -1
			for i := range byK {
				if byK[i].k >= 0 && (best == -1 || byK[i].k < byK[best].k) {
					best = i
				}
			}
			chosen = append(chosen, byK[best].e)
			byK[best].k = -1
		}
		lrukCost := ExpectedCost(chosen)
		optCost := OptimalRetainedCost(estimates, m)
		if lrukCost > optCost+1e-12 {
			t.Fatalf("trial %d: LRU-K cost %v above optimal %v (ks=%v)", trial, lrukCost, optCost, ks)
		}
	}
}

func TestOptimalRetainedCostKeepsAll(t *testing.T) {
	est := []float64{0.1, 0.2}
	if got := OptimalRetainedCost(est, 5); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("m beyond population: %v, want 0.7", got)
	}
}
