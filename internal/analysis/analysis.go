// Package analysis implements the mathematical machinery of Section 3 of
// the paper: the Bayesian a-posteriori estimates of page reference
// probability given Backward K-distance observations (Lemmas 3.3-3.5), the
// monotonicity that makes LRU-K's ordering optimal (Lemma 3.6), and the
// expected-cost model of Definition 3.7 / Theorem 3.8.
//
// Computations run in log space so that large backward distances (k in the
// tens of thousands) do not underflow.
package analysis

import (
	"fmt"
	"math"
	"sort"
)

// validateBeta checks a reference probability vector: entries in (0, 1),
// summing to at most 1 (slack allows vectors over a page subset).
func validateBeta(beta []float64) error {
	if len(beta) == 0 {
		return fmt.Errorf("analysis: empty probability vector")
	}
	sum := 0.0
	for i, b := range beta {
		if b <= 0 || b >= 1 || math.IsNaN(b) {
			return fmt.Errorf("analysis: β[%d] = %v outside (0, 1)", i, b)
		}
		sum += b
	}
	if sum > 1+1e-9 {
		return fmt.Errorf("analysis: probabilities sum to %v > 1", sum)
	}
	return nil
}

// logWeight returns log(β^K · (1-β)^(k-K+1)), the unnormalised posterior
// mass of Lemma 3.4 for one β component.
func logWeight(beta float64, k, bigK int) float64 {
	return float64(bigK)*math.Log(beta) + float64(k-bigK+1)*math.Log(1-beta)
}

// PosteriorPermutation evaluates Eq. 3.6 (Lemma 3.4): the probability that
// page i's true reference probability is β[v], for each v, given that its
// Backward K-distance b_t(i,K) equals k. K >= 1 and k >= K are required
// (the K-th most recent reference lies at least K steps back).
func PosteriorPermutation(beta []float64, bigK, k int) ([]float64, error) {
	if err := validateBeta(beta); err != nil {
		return nil, err
	}
	if bigK < 1 {
		return nil, fmt.Errorf("analysis: K must be at least 1, got %d", bigK)
	}
	if k < bigK {
		return nil, fmt.Errorf("analysis: backward distance k=%d below K=%d", k, bigK)
	}
	logs := make([]float64, len(beta))
	maxLog := math.Inf(-1)
	for v, b := range beta {
		logs[v] = logWeight(b, k, bigK)
		if logs[v] > maxLog {
			maxLog = logs[v]
		}
	}
	out := make([]float64, len(beta))
	sum := 0.0
	for v := range logs {
		out[v] = math.Exp(logs[v] - maxLog)
		sum += out[v]
	}
	for v := range out {
		out[v] /= sum
	}
	return out, nil
}

// ExpectedProbability evaluates Eq. 3.7 (Lemma 3.5): the a-posteriori
// expected reference probability E_t(P(i)) of a page whose Backward
// K-distance is k, under reference probability vector beta.
func ExpectedProbability(beta []float64, bigK, k int) (float64, error) {
	post, err := PosteriorPermutation(beta, bigK, k)
	if err != nil {
		return 0, err
	}
	e := 0.0
	for v, p := range post {
		e += beta[v] * p
	}
	return e, nil
}

// ExpectedCost evaluates Definition 3.7: the probability that the next
// reference misses the buffer, 1 - Σ_{i ∈ resident} P(i), where probs[i]
// is page i's (estimated or true) reference probability.
func ExpectedCost(probs []float64) float64 {
	sum := 0.0
	for _, p := range probs {
		sum += p
	}
	cost := 1 - sum
	if cost < 0 {
		return 0
	}
	return cost
}

// PageState describes one page's observed history for cost comparisons: its
// Backward K-distance at the decision instant.
type PageState struct {
	Page int
	// BackwardK is b_t(p,K); Infinite marks pages with fewer than K
	// references on record.
	BackwardK int
	Infinite  bool
}

// RankByEstimate orders pages by descending E_t(P(i)) under beta, i.e. by
// ascending Backward K-distance (Lemma 3.6), with infinite distances last.
// It returns the page indices in retention-priority order.
func RankByEstimate(states []PageState) []int {
	idx := make([]int, len(states))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := states[idx[a]], states[idx[b]]
		if sa.Infinite != sb.Infinite {
			return !sa.Infinite
		}
		return sa.BackwardK < sb.BackwardK
	})
	pages := make([]int, len(idx))
	for i, j := range idx {
		pages[i] = states[j].Page
	}
	return pages
}

// OptimalRetainedCost returns the minimal expected cost (Definition 3.7)
// achievable by retaining m of the given pages, where estimates[i] is page
// i's estimated reference probability: it keeps the m largest estimates.
// This is the quantity Theorem 3.8 shows LRU-K achieves on m-1 of its m
// frames.
func OptimalRetainedCost(estimates []float64, m int) float64 {
	if m >= len(estimates) {
		return ExpectedCost(estimates)
	}
	sorted := make([]float64, len(estimates))
	copy(sorted, estimates)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return ExpectedCost(sorted[:m])
}
