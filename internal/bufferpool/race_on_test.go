//go:build race

package bufferpool

const raceEnabled = true
