package bufferpool

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// hitBench measures the steady-state resident-hit cost of one pool
// configuration: warm a hot set, then time random hit fetches from a
// single goroutine (single-goroutine numbers are far more stable on
// shared CI hardware than contended ones, and the guarded regressions —
// a lock, an allocation, an eager tree update back on the hit path —
// inflate them just the same).
func hitBench(build func(d storage.Backend) *Pool) testing.BenchmarkResult {
	const hotSet = 256
	return testing.Benchmark(func(b *testing.B) {
		d := sim.New(sim.ServiceModel{})
		ids := make([]policy.PageID, hotSet)
		for i := range ids {
			ids[i] = storage.MustAllocate(d)
		}
		p := build(d)
		bench := poolBench{p}
		for _, id := range ids {
			if err := bench.fetchRelease(id, false); err != nil {
				b.Fatal(err)
			}
		}
		r := stats.NewRNG(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := bench.fetchRelease(ids[r.Intn(hotSet)], false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestHitPathCeiling is the hot-path regression gate behind `make
// bench-hit` (and `make check`): the batched pool's resident-hit cost must
// stay under an absolute ceiling and must not fall behind the eagerly
// locked sharded pool it exists to beat. The batched configuration
// measures ~320 ns/op on the reference container; the ceiling is 4x that
// so loaded CI boxes do not flake, while still catching the regressions
// that motivated PR 7's fixes (a replacer latch back on the fast path, an
// eager victim-index update per reference, a per-hit allocation). Skipped
// under -race (the detector multiplies atomic costs) and in -short mode.
func TestHitPathCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("hit-path ceiling is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping hit-path ceiling in short mode")
	}
	batched := hitBench(func(d storage.Backend) *Pool {
		return NewWithConfig(d, 512,
			core.NewBatched(core.NewShardedReplacer(16, 2, core.Options{}), core.BatchConfig{}),
			Config{})
	})
	const ceilingNs = 1300
	if got := batched.NsPerOp(); got > ceilingNs {
		t.Errorf("batched hit costs %d ns/op, ceiling %d ns", got, ceilingNs)
	}
	sharded := hitBench(func(d storage.Backend) *Pool {
		return NewWithConfig(d, 512,
			core.NewShardedReplacer(16, 2, core.Options{}), Config{})
	})
	// Relative gate, immune to the host's absolute speed: with batching on,
	// a hit must not cost more than the unbatched pool's (the 20% slack
	// absorbs scheduler noise; the measured gap is ~2.5x, so tripping this
	// means the batching win is gone, not that the box was busy).
	if b, s := batched.NsPerOp(), sharded.NsPerOp(); float64(b) > 1.2*float64(s) {
		t.Errorf("batched hit costs %d ns/op vs unbatched sharded %d ns/op; batching made the hit path slower", b, s)
	}
}
