package bufferpool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// frameAccounting counts free-list frames and table-reachable frames. On a
// quiescent pool their sum must equal NumFrames: no frame leaked, none
// double-freed (a double free would push free above NumFrames).
func frameAccounting(p *Pool) (free, tabled int) {
	p.freeMu.Lock()
	free = len(p.free)
	p.freeMu.Unlock()
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		tabled += len(sh.table)
		sh.mu.RUnlock()
	}
	return free, tabled
}

func checkFrameInvariant(t *testing.T, p *Pool) {
	t.Helper()
	free, tabled := frameAccounting(p)
	if free+tabled != p.NumFrames() {
		t.Errorf("frame accounting: %d free + %d tabled != %d frames", free, tabled, p.NumFrames())
	}
}

// allocPages allocates n disk pages, each stamped with a recognisable
// byte, and returns their ids.
func allocPages(t *testing.T, d *storage.Faulty, n int) []policy.PageID {
	t.Helper()
	ids := make([]policy.PageID, n)
	buf := make([]byte, storage.PageSize)
	for i := range ids {
		ids[i] = storage.MustAllocate(d)
		buf[0] = byte(i + 1)
		if err := d.Write(context.Background(), ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// TestWriteBackFaultSkipsVictim is the headline hardening test: a dirty
// victim whose write-back fails must not fail the unrelated fetch — the
// pool quarantines the poisoned page and evicts the next victim instead.
func TestWriteBackFaultSkipsVictim(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 3)
	a, b, c := ids[0], ids[1], ids[2]
	p := New(d, 2, core.NewSyncReplacer(2, core.Options{}))

	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), []byte("precious"))
	pg.Unpin(true) // dirty: a is the LRU victim and needs write-back
	pg, err = p.Fetch(b)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false) // clean second choice

	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Pages: []policy.PageID{a}}))

	// The fetch of c must succeed by skipping poisoned a and evicting b.
	pg, err = p.Fetch(c)
	if err != nil {
		t.Fatalf("fetch failed because an unrelated victim's write-back failed: %v", err)
	}
	pg.Unpin(false)
	if !p.Resident(a) {
		t.Error("poisoned dirty victim lost residency (its data exists only in memory)")
	}
	if p.Resident(b) {
		t.Error("clean second victim not evicted")
	}
	s := p.Stats()
	if s.WriteErrors != 1 {
		t.Errorf("WriteErrors = %d, want 1", s.WriteErrors)
	}
	if s.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1 (b only)", s.Evictions)
	}
	if got := p.Quarantined(); got != 1 {
		t.Errorf("Quarantined = %d, want 1", got)
	}
	checkFrameInvariant(t, p)

	// The fault clears; the quarantined page flushes and leaves quarantine,
	// with its in-memory modification intact on disk.
	d.SetFaults(nil)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := p.Quarantined(); got != 0 {
		t.Errorf("Quarantined = %d after successful flush, want 0", got)
	}
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:8]) != "precious" {
		t.Errorf("committed update lost across the fault: %q", buf[:8])
	}
}

// TestWriteBackFaultBoundedAttempts: when every evictable victim is dirty
// and poisoned, obtainFrame must give up with the joined write-back errors
// rather than loop, and the pool must stay fully intact.
func TestWriteBackFaultBoundedAttempts(t *testing.T) {
	const frames = 6
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, frames+1)
	p := New(d, frames, core.NewSyncReplacer(2, core.Options{}))
	for _, id := range ids[:frames] {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[0]++
		pg.Unpin(true)
	}
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite}))

	_, err := p.Fetch(ids[frames])
	if err == nil {
		t.Fatal("fetch succeeded with every write-back poisoned")
	}
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("error %v does not unwrap to the injected fault", err)
	}
	if errors.Is(err, ErrNoFreeFrame) {
		t.Errorf("write-back failure misreported as ErrNoFreeFrame: %v", err)
	}
	s := p.Stats()
	if s.WriteErrors != maxWriteBackFailures {
		t.Errorf("WriteErrors = %d, want the sweep bound %d", s.WriteErrors, maxWriteBackFailures)
	}
	// Every page must still be resident — nothing evicted, nothing leaked.
	for _, id := range ids[:frames] {
		if !p.Resident(id) {
			t.Errorf("page %d lost residency during the failed sweep", id)
		}
	}
	checkFrameInvariant(t, p)

	// Once the faults clear, the same fetch succeeds and quarantine drains
	// as retried write-backs go through.
	d.SetFaults(nil)
	pg, err := p.Fetch(ids[frames])
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := p.Quarantined(); got != 0 {
		t.Errorf("Quarantined = %d after recovery, want 0", got)
	}
	checkFrameInvariant(t, p)
}

// TestQuarantineRetriedOnNextSweep: a transiently poisoned victim fails
// one sweep and is written back successfully by the next.
func TestQuarantineRetriedOnNextSweep(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 2)
	a, b := ids[0], ids[1]
	p := New(d, 1, core.NewSyncReplacer(2, core.Options{}))
	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), []byte("survives"))
	pg.Unpin(true)

	// One transient write fault: the first sweep fails, the retry works.
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Pages: []policy.PageID{a}, Count: 1}))
	if _, err := p.Fetch(b); err == nil {
		t.Fatal("single-frame fetch succeeded though its only victim was poisoned")
	}
	if got := p.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d, want 1", got)
	}
	pg, err = p.Fetch(b) // next sweep retries a's write-back, which now succeeds
	if err != nil {
		t.Fatalf("retry sweep failed: %v", err)
	}
	pg.Unpin(false)
	if got := p.Quarantined(); got != 0 {
		t.Errorf("Quarantined = %d after successful retry, want 0", got)
	}
	s := p.Stats()
	if s.WriteErrors != 1 || s.WriteBacks != 1 {
		t.Errorf("WriteErrors = %d, WriteBacks = %d, want 1 and 1", s.WriteErrors, s.WriteBacks)
	}
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:8]) != "survives" {
		t.Errorf("update lost across transient fault: %q", buf[:8])
	}
	checkFrameInvariant(t, p)
}

// TestFlushAllAggregatesErrors: FlushAll must visit every shard and page,
// flushing what it can and returning the failures joined, instead of
// aborting on the first error.
func TestFlushAllAggregatesErrors(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 3)
	a, b, c := ids[0], ids[1], ids[2]
	p := New(d, 4, core.NewSyncReplacer(2, core.Options{}))
	for i, id := range ids {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pg.Data()[1] = byte(0xA0 + i)
		pg.Unpin(true)
	}
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Pages: []policy.PageID{a, b}}))

	err := p.FlushAll()
	if err == nil {
		t.Fatal("FlushAll reported success with two poisoned pages")
	}
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("joined error %v does not unwrap to the injected fault", err)
	}
	if s := p.Stats(); s.WriteErrors != 2 {
		t.Errorf("WriteErrors = %d, want 2 (every dirty page attempted)", s.WriteErrors)
	}
	// The unpoisoned page was flushed despite the earlier failures.
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), c, buf); err != nil {
		t.Fatal(err)
	}
	if buf[1] != 0xA2 {
		t.Error("FlushAll skipped a healthy page after an earlier failure")
	}
	// Failed pages stayed dirty: a retry after the fault clears loses nothing.
	d.SetFaults(nil)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i, id := range []policy.PageID{a, b} {
		if err := d.Read(context.Background(), id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[1] != byte(0xA0+i) {
			t.Errorf("page %d not persisted by the retry flush", id)
		}
	}
}

// TestFetchReadFaultAccounting: a failed miss read counts as a miss and a
// read error, returns its frame, and the next fetch recovers.
func TestFetchReadFaultAccounting(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 1)
	p := New(d, 2, core.NewSyncReplacer(2, core.Options{}))
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead, Count: 1}))

	if _, err := p.Fetch(ids[0]); !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("fetch under read fault: %v", err)
	}
	s := p.Stats()
	if s.Misses != 1 || s.ReadErrors != 1 || s.Hits != 0 {
		t.Errorf("stats %+v, want 1 miss, 1 read error", s)
	}
	if free, tabled := frameAccounting(p); free != p.NumFrames() || tabled != 0 {
		t.Errorf("failed load leaked a frame: %d free, %d tabled", free, tabled)
	}
	// The fault was transient; the page is fetchable again.
	pg, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if pg.Data()[0] != 1 {
		t.Error("recovered fetch returned wrong data")
	}
	pg.Unpin(false)
	if s := p.Stats(); s.Misses != 2 || s.ReadErrors != 1 {
		t.Errorf("stats after recovery %+v, want 2 misses, 1 read error", s)
	}
}

// TestCoalescedWaitersReadFault parks a doomed miss read behind the Delay
// gate, piles coalescing waiters onto the in-flight frame, then lets the
// read fail: every waiter must observe the error, each counts one miss and
// one coalesce, the read error is counted exactly once, and the last
// participant out frees the frame exactly once.
func TestCoalescedWaitersReadFault(t *testing.T) {
	var gate atomic.Bool
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	d := newFaultyDisk(sim.ServiceModel{Delay: func(int64) {
		if gate.Load() {
			once.Do(func() { close(blocked) })
			<-release
		}
	}})
	ids := allocPages(t, d, 1)
	id := ids[0]
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead, Count: 1}))
	gate.Store(true)

	p := New(d, 4, core.NewSyncReplacer(2, core.Options{}))
	const waiters = 6
	var wg sync.WaitGroup
	var failures atomic.Uint64
	fetch := func() {
		defer wg.Done()
		if _, err := p.Fetch(id); errors.Is(err, storage.ErrInjectedFault) {
			failures.Add(1)
		} else {
			t.Errorf("fetch of doomed page: %v, want injected fault", err)
		}
	}
	wg.Add(1)
	go fetch() // the loader, parked inside its doomed disk read
	<-blocked
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go fetch()
	}
	for waitersIn := 0; waitersIn < waiters; {
		waitersIn = int(p.frameFor(id).pins()) - 1
	}
	gate.Store(false)
	close(release)
	wg.Wait()

	if got := failures.Load(); got != waiters+1 {
		t.Errorf("%d fetchers saw the injected fault, want %d", got, waiters+1)
	}
	s := p.Stats()
	if s.Misses != waiters+1 || s.Coalesced != waiters || s.ReadErrors != 1 || s.Hits != 0 {
		t.Errorf("stats %+v, want %d misses, %d coalesced, 1 read error", s, waiters+1, waiters)
	}
	if free, tabled := frameAccounting(p); free != p.NumFrames() || tabled != 0 {
		t.Errorf("frame freed %d times across %d participants: %d free, %d tabled",
			p.NumFrames()-tabled, waiters+1, free, tabled)
	}
	// Recovery: the fault is exhausted, so the page loads cleanly.
	pg, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	if s := p.Stats(); s.Misses != waiters+2 {
		t.Errorf("recovery fetch not counted: %+v", s)
	}
}

// TestFlushPageFaultKeepsDirty: a failed FlushPage leaves the page dirty
// and resident so nothing is lost, and counts one write error.
func TestFlushPageFaultKeepsDirty(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 1)
	id := ids[0]
	p := New(d, 2, core.NewSyncReplacer(2, core.Options{}))
	pg, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), []byte("dirtydata"))
	pg.Unpin(true)

	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Count: 1}))
	if err := p.FlushPage(id); !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("FlushPage under write fault: %v", err)
	}
	if s := p.Stats(); s.WriteErrors != 1 || s.WriteBacks != 0 {
		t.Errorf("stats %+v, want 1 write error, 0 write-backs", s)
	}
	// Still dirty: the retry persists the data.
	if err := p.FlushPage(id); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:9]) != "dirtydata" {
		t.Errorf("flushed page holds %q", buf[:9])
	}
	if s := p.Stats(); s.WriteBacks != 1 {
		t.Errorf("retry flush not counted: %+v", s)
	}
}

// TestSerialWriteBackFaultRestoresVictim: the Serial reference pool keeps
// its single-attempt error policy, but a failed write-back must reinstate
// the victim in the replacer — losing the entry made the page permanently
// unevictable (a frame leak).
func TestSerialWriteBackFaultRestoresVictim(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 2)
	a, b := ids[0], ids[1]
	p := NewSerial(d, 1, core.NewReplacer(2, core.Options{}))
	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	pg.Data()[0]++
	pg.Unpin(true)

	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Count: 1}))
	if _, err := p.Fetch(b); !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("Serial fetch with poisoned victim: %v", err)
	}
	if s := p.Stats(); s.WriteErrors != 1 {
		t.Errorf("WriteErrors = %d, want 1", s.WriteErrors)
	}
	// The victim must be choosable again once the fault clears.
	pg, err = p.Fetch(b)
	if err != nil {
		t.Fatalf("Serial pool wedged after a transient write fault: %v", err)
	}
	pg.Unpin(false)
	if p.Resident(a) {
		t.Error("old victim still resident in a 1-frame pool")
	}
}
