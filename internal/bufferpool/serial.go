package bufferpool

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/policy"
	"repro/internal/storage"
)

// Serial is the original single-latch buffer pool: every fetch, pin, unpin
// and disk transfer runs under one mutex. It is kept as the reference
// implementation — its behaviour on a serialisable call history is the
// specification the concurrent Pool is differentially tested against — and
// as the baseline BenchmarkPoolParallel measures latch-partitioning
// against. New code should use Pool.
type Serial struct {
	mu        sync.Mutex
	backend   storage.Backend
	replacer  Replacer
	frames    []serialFrame
	pageTable map[policy.PageID]int
	free      []int
	stats     Stats
}

type serialFrame struct {
	data     []byte
	page     policy.PageID
	pinCount int
	dirty    bool
	inUse    bool
}

// NewSerial returns a single-latch pool of numFrames frames over backend b
// using the given replacer, which it serialises itself.
func NewSerial(b storage.Backend, numFrames int, r Replacer) *Serial {
	if b == nil {
		panic("bufferpool: nil storage backend")
	}
	if numFrames <= 0 {
		panic(fmt.Sprintf("bufferpool: frame count must be positive, got %d", numFrames))
	}
	if r == nil {
		panic("bufferpool: nil replacer")
	}
	p := &Serial{
		backend:   b,
		replacer:  r,
		frames:    make([]serialFrame, numFrames),
		pageTable: make(map[policy.PageID]int, numFrames),
		free:      make([]int, 0, numFrames),
	}
	for i := range p.frames {
		p.frames[i].data = make([]byte, storage.PageSize)
		p.free = append(p.free, i)
	}
	return p
}

// SerialPage is a pinned page handle on a Serial pool. The data is valid
// until Unpin; using a handle after Unpin is a caller bug.
type SerialPage struct {
	pool  *Serial
	id    policy.PageID
	slot  int
	valid bool
}

// ID returns the page id.
func (pg *SerialPage) ID() policy.PageID { return pg.id }

// Data returns the page's frame bytes for reading and writing. Callers
// that modify the data must pass dirty=true to Unpin.
func (pg *SerialPage) Data() []byte {
	if !pg.valid {
		panic("bufferpool: use of page handle after Unpin")
	}
	return pg.pool.frames[pg.slot].data
}

// Unpin releases the handle, marking the page dirty if it was modified.
// The handle becomes invalid.
func (pg *SerialPage) Unpin(dirty bool) {
	if !pg.valid {
		panic("bufferpool: double Unpin")
	}
	pg.valid = false
	pg.pool.unpin(pg.id, dirty)
}

// NewPage allocates a fresh disk page, pins it in a frame and returns the
// handle.
func (p *Serial) NewPage() (*SerialPage, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot, err := p.obtainFrame()
	if err != nil {
		return nil, err
	}
	id, err := p.backend.Allocate()
	if err != nil {
		p.free = append(p.free, slot)
		return nil, fmt.Errorf("bufferpool: allocating page: %w", err)
	}
	f := &p.frames[slot]
	for i := range f.data {
		f.data[i] = 0
	}
	p.install(slot, id)
	p.stats.Misses++ // a new page is by definition not buffer-resident
	return &SerialPage{pool: p, id: id, slot: slot, valid: true}, nil
}

// Fetch pins page id, reading it from disk on a miss, and returns the
// handle.
func (p *Serial) Fetch(id policy.PageID) (*SerialPage, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if slot, ok := p.pageTable[id]; ok {
		f := &p.frames[slot]
		f.pinCount++
		p.replacer.RecordAccess(id)
		p.replacer.SetEvictable(id, false)
		p.stats.Hits++
		return &SerialPage{pool: p, id: id, slot: slot, valid: true}, nil
	}
	slot, err := p.obtainFrame()
	if err != nil {
		return nil, err
	}
	f := &p.frames[slot]
	if err := p.backend.Read(context.Background(), id, f.data); err != nil {
		p.free = append(p.free, slot)
		p.stats.Misses++ // the page was not resident, error or not
		p.stats.ReadErrors++
		return nil, fmt.Errorf("fetching page %d: %w", id, err)
	}
	p.install(slot, id)
	p.stats.Misses++
	return &SerialPage{pool: p, id: id, slot: slot, valid: true}, nil
}

// install binds page id to slot with pin count 1 and records the access.
// Callers hold p.mu and have prepared the frame data.
func (p *Serial) install(slot int, id policy.PageID) {
	f := &p.frames[slot]
	f.page = id
	f.pinCount = 1
	f.dirty = false
	f.inUse = true
	p.pageTable[id] = slot
	p.replacer.RecordAccess(id)
	p.replacer.SetEvictable(id, false)
}

// obtainFrame returns a usable frame slot, evicting a victim (with
// write-back if dirty) when no frame is free. Callers hold p.mu.
func (p *Serial) obtainFrame() (int, error) {
	if n := len(p.free); n > 0 {
		slot := p.free[n-1]
		p.free = p.free[:n-1]
		return slot, nil
	}
	victim, ok := p.replacer.Evict()
	if !ok {
		return 0, ErrNoFreeFrame
	}
	slot, ok := p.pageTable[victim]
	if !ok {
		return 0, fmt.Errorf("bufferpool: replacer chose non-resident victim %d", victim)
	}
	f := &p.frames[slot]
	if f.pinCount != 0 {
		return 0, fmt.Errorf("bufferpool: replacer chose pinned victim %d", victim)
	}
	if f.dirty {
		if err := p.backend.Write(context.Background(), victim, f.data); err != nil {
			// Reinstate the victim in the replacer: Evict already removed
			// it, and without restoration the page could never be chosen
			// again (a permanent leak of both the frame and the replacer
			// entry). Serial keeps the single-attempt error policy; the
			// concurrent Pool's retry/quarantine protocol is the hardened
			// path.
			p.replacer.Restore(victim)
			p.replacer.SetEvictable(victim, true)
			p.stats.WriteErrors++
			return 0, fmt.Errorf("writing back victim %d: %w", victim, err)
		}
		p.stats.WriteBacks++
	}
	delete(p.pageTable, victim)
	f.inUse = false
	p.stats.Evictions++
	return slot, nil
}

func (p *Serial) unpin(id policy.PageID, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot, ok := p.pageTable[id]
	if !ok {
		panic(fmt.Sprintf("bufferpool: unpin of non-resident page %d", id))
	}
	f := &p.frames[slot]
	if f.pinCount <= 0 {
		panic(fmt.Sprintf("bufferpool: unpin of unpinned page %d", id))
	}
	f.pinCount--
	if dirty {
		f.dirty = true
	}
	if f.pinCount == 0 {
		p.replacer.SetEvictable(id, true)
	}
}

// FlushPage writes page id back to disk if dirty. The page stays resident.
func (p *Serial) FlushPage(id policy.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	slot, ok := p.pageTable[id]
	if !ok {
		return fmt.Errorf("flush page %d: %w", id, ErrPageNotResident)
	}
	f := &p.frames[slot]
	if !f.dirty {
		return nil
	}
	if err := p.backend.Write(context.Background(), id, f.data); err != nil {
		p.stats.WriteErrors++
		return fmt.Errorf("flushing page %d: %w", id, err)
	}
	f.dirty = false
	p.stats.WriteBacks++
	return nil
}

// FlushAll writes every dirty resident page back to storage, then runs the
// backend's durability barrier (a checkpoint, on the durable file backend).
func (p *Serial) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.frames {
		f := &p.frames[i]
		if !f.inUse || !f.dirty {
			continue
		}
		if err := p.backend.Write(context.Background(), f.page, f.data); err != nil {
			p.stats.WriteErrors++
			return fmt.Errorf("flushing page %d: %w", f.page, err)
		}
		f.dirty = false
		p.stats.WriteBacks++
	}
	return p.backend.Flush(context.Background())
}

// DeletePage evicts page id from the pool (it must be unpinned) and
// deallocates it on disk.
func (p *Serial) DeletePage(id policy.PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if slot, ok := p.pageTable[id]; ok {
		f := &p.frames[slot]
		if f.pinCount != 0 {
			return fmt.Errorf("bufferpool: delete of pinned page %d", id)
		}
		p.replacer.Remove(id)
		delete(p.pageTable, id)
		f.inUse = false
		f.dirty = false
		p.free = append(p.free, slot)
	}
	return p.backend.Deallocate(id)
}

// Stats returns a snapshot of pool counters.
func (p *Serial) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// NumFrames returns the pool capacity in frames.
func (p *Serial) NumFrames() int { return len(p.frames) }

// Resident reports whether page id currently occupies a frame.
func (p *Serial) Resident(id policy.PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.pageTable[id]
	return ok
}
