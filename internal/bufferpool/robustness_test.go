package bufferpool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/policy"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// gatedDisk returns a manager whose reads and writes park on gate while
// armed, signalling entry on entered — the scaffolding for freezing a load
// mid-flight so a coalesced waiter can be cancelled deterministically.
func gatedDisk() (d *storage.Faulty, arm *atomic.Bool, entered chan struct{}, gate chan struct{}) {
	arm = &atomic.Bool{}
	entered = make(chan struct{}, 16)
	gate = make(chan struct{})
	d = newFaultyDisk(sim.ServiceModel{Delay: func(int64) {
		if arm.Load() {
			entered <- struct{}{}
			<-gate
		}
	}})
	return d, arm, entered, gate
}

func TestFetchExpiredContext(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 1)
	p := New(d, 2, core.NewSyncReplacer(2, core.Options{}))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.FetchCtx(ctx, ids[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("FetchCtx on cancelled ctx: %v, want context.Canceled", err)
	}
	if _, err := p.NewPageCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewPageCtx on cancelled ctx: %v, want context.Canceled", err)
	}
	checkFrameInvariant(t, p)
	s := p.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("pre-flight rejection charged counters: %+v", s)
	}
}

// TestCoalescedWaiterAbandonSuccessfulLoad freezes a load mid-disk-read,
// parks a second fetch on the in-flight frame, expires its deadline, then
// lets the load finish. The waiter must return promptly with its context
// error; the loader must still install the page; and the books must close
// exactly: no pin leak, no double free, miss/coalesced counters intact.
func TestCoalescedWaiterAbandonSuccessfulLoad(t *testing.T) {
	leakcheck.Check(t)
	d, arm, entered, gate := gatedDisk()
	ids := allocPages(t, d, 1)
	a := ids[0]
	p := New(d, 2, core.NewSyncReplacer(2, core.Options{}))

	arm.Store(true)
	loaded := make(chan error, 1)
	go func() {
		pg, err := p.Fetch(a)
		if err == nil {
			pg.Unpin(false)
		}
		loaded <- err
	}()
	<-entered // the loader is parked inside the disk read

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.FetchCtx(ctx, a)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned waiter returned %v, want context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("abandoned waiter took %v to return", waited)
	}

	arm.Store(false)
	close(gate) // release the loader
	if err := <-loaded; err != nil {
		t.Fatalf("loader failed: %v", err)
	}
	if !p.Resident(a) {
		t.Fatal("loader did not install the page after the waiter abandoned")
	}
	checkFrameInvariant(t, p)
	s := p.Stats()
	// Loader: one miss. Abandoned waiter: one miss, one coalesced.
	if s.Misses != 2 || s.Coalesced != 1 || s.Hits != 0 {
		t.Errorf("stats after abandon = %+v, want Misses 2, Coalesced 1", s)
	}
	if f := p.frameFor(a); f != nil && f.pins() != 0 {
		t.Errorf("pin leak: page %d has %d pins after everyone released", a, f.pins())
	}
	// The page must still be usable and evictable: a hit works...
	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	if got := p.Stats().Hits; got != 1 {
		t.Errorf("post-abandon fetch was not a hit (Hits = %d)", got)
	}
}

// TestCoalescedWaiterAbandonFailedLoad is the other arm: the frozen load
// ends in a disk fault. Whichever participant drops the last pin must
// recycle the frame exactly once.
func TestCoalescedWaiterAbandonFailedLoad(t *testing.T) {
	leakcheck.Check(t)
	d, arm, entered, gate := gatedDisk()
	ids := allocPages(t, d, 1)
	a := ids[0]
	p := New(d, 2, core.NewSyncReplacer(2, core.Options{}))
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead, Pages: []policy.PageID{a}}))

	arm.Store(true)
	loaded := make(chan error, 1)
	go func() {
		_, err := p.Fetch(a)
		loaded <- err
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := p.FetchCtx(ctx, a); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned waiter returned %v, want context.DeadlineExceeded", err)
	}

	arm.Store(false)
	close(gate)
	if err := <-loaded; !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("loader error = %v, want injected fault", err)
	}
	if p.Resident(a) {
		t.Fatal("failed load left the page resident")
	}
	checkFrameInvariant(t, p)
	s := p.Stats()
	if s.ReadErrors != 1 {
		t.Errorf("ReadErrors = %d, want 1 (counted once, by the loader)", s.ReadErrors)
	}
	if s.Misses != 2 || s.Coalesced != 1 {
		t.Errorf("stats after failed abandon = %+v, want Misses 2, Coalesced 1", s)
	}
	// The failure must be transient to the pool: healed disk, page loads.
	d.SetFaults(nil)
	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
}

// TestAbandonLastPinRestoresEvictability drives the zero-crossing where
// the abandoning waiter is the LAST pin out of an already-published frame:
// it must hand the page back to the replacer, or the frame could never be
// evicted again.
func TestAbandonLastPinRestoresEvictability(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 2)
	a, b := ids[0], ids[1]
	p := New(d, 1, core.NewSyncReplacer(2, core.Options{}))

	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	sh := p.shardOf(a)
	f := p.frameFor(a)
	f.pinAdd(1)     // the waiter's coalesced pin, held across the load
	pg.Unpin(false) // the loader's caller is done; the waiter still pins
	p.abandonPin(sh, a, f)

	// One frame, and a is the only candidate: this fetch succeeds only if
	// the abandon marked a evictable.
	pg, err = p.Fetch(b)
	if err != nil {
		t.Fatalf("page stuck unevictable after last-pin abandon: %v", err)
	}
	pg.Unpin(false)
	checkFrameInvariant(t, p)
}

func TestRetryTransientFaultRecovers(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 1)
	a := ids[0]
	p := NewWithConfig(d, 2, core.NewSyncReplacer(2, core.Options{}), Config{
		Retry: RetryConfig{Attempts: 4, BaseDelay: 50 * time.Microsecond, MaxDelay: 200 * time.Microsecond, Seed: 7},
	})
	// The first two read attempts fault; the third succeeds.
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead, Pages: []policy.PageID{a}, Count: 2}))

	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatalf("fetch did not survive two transient faults: %v", err)
	}
	if pg.Data()[0] != 1 {
		t.Fatal("retried read returned wrong data")
	}
	pg.Unpin(false)

	s, ds := p.Stats(), d.Stats()
	if s.ReadRetries != 2 || s.ReadErrors != 0 {
		t.Errorf("ReadRetries = %d, ReadErrors = %d; want 2, 0", s.ReadRetries, s.ReadErrors)
	}
	if ds.ReadFaults != s.ReadRetries+s.ReadErrors {
		t.Errorf("fault ledger out of balance: disk %d faults, pool %d retries + %d errors",
			ds.ReadFaults, s.ReadRetries, s.ReadErrors)
	}
	checkFrameInvariant(t, p)
}

func TestRetryPermanentErrorNotRetried(t *testing.T) {
	headCrash := errors.New("disk: head crash")
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 1)
	a := ids[0]
	p := NewWithConfig(d, 2, core.NewSyncReplacer(2, core.Options{}), Config{
		Retry: RetryConfig{Attempts: 5, BaseDelay: 50 * time.Microsecond},
	})
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead, Pages: []policy.PageID{a}, Err: headCrash}))

	if _, err := p.Fetch(a); !errors.Is(err, headCrash) {
		t.Fatalf("fetch error = %v, want the permanent fault", err)
	}
	s, ds := p.Stats(), d.Stats()
	if s.ReadRetries != 0 {
		t.Errorf("permanent error was retried %d times", s.ReadRetries)
	}
	if s.ReadErrors != 1 || ds.ReadFaults != 1 {
		t.Errorf("ReadErrors = %d, disk faults = %d; want 1, 1 (single attempt)", s.ReadErrors, ds.ReadFaults)
	}
	checkFrameInvariant(t, p)
}

// TestRetryBackoffChargedToContext: with an unlimited fault and generous
// attempts, the caller's deadline — not the retry budget — must end the
// ladder, promptly and mid-backoff.
func TestRetryBackoffChargedToContext(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 1)
	a := ids[0]
	p := NewWithConfig(d, 2, core.NewSyncReplacer(2, core.Options{}), Config{
		Retry: RetryConfig{Attempts: 1 << 20, BaseDelay: 50 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead, Pages: []policy.PageID{a}}))

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.FetchCtx(ctx, a)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want wrapped context.DeadlineExceeded", err)
	}
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Fatalf("error = %v does not preserve the underlying disk fault", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("retry ladder ignored the deadline for %v", elapsed)
	}
	s := p.Stats()
	if s.ReadErrors != 1 {
		t.Errorf("ReadErrors = %d, want 1 (one logical failure)", s.ReadErrors)
	}
	checkFrameInvariant(t, p)
}

// TestBreakerFailFastAndRecovery exercises the breaker through the pool:
// sustained read faults trip the page's stripe, after which misses on it
// fail fast with ErrDiskUnavailable (no disk attempt) while hits keep
// serving; healing the disk lets half-open probes close the circuit.
func TestBreakerFailFastAndRecovery(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 2)
	a, b := ids[0], ids[1]
	p := NewWithConfig(d, 4, core.NewSyncReplacer(2, core.Options{}), Config{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 30 * time.Millisecond, Probes: 1},
	})

	// b resides before the disk breaks: its hits must survive the outage.
	pg, err := p.Fetch(b)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)

	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpRead}))
	for i := 0; i < 2; i++ {
		if _, err := p.Fetch(a); !errors.Is(err, storage.ErrInjectedFault) {
			t.Fatalf("fetch %d error = %v, want injected fault", i, err)
		}
	}
	s := p.Stats()
	if s.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d after %d consecutive failures, want 1", s.BreakerTrips, 2)
	}

	// Open circuit: fail fast, no disk attempt.
	faultsBefore := d.Stats().ReadFaults
	if _, err := p.Fetch(a); !errors.Is(err, ErrDiskUnavailable) {
		t.Fatalf("fetch while open = %v, want ErrDiskUnavailable", err)
	}
	if got := d.Stats().ReadFaults; got != faultsBefore {
		t.Errorf("open breaker still reached the disk (%d -> %d faults)", faultsBefore, got)
	}
	s = p.Stats()
	if s.ReadsRejected != 1 {
		t.Errorf("ReadsRejected = %d, want 1", s.ReadsRejected)
	}
	// Hits are unaffected by the open circuit.
	pg, err = p.Fetch(b)
	if err != nil {
		t.Fatalf("buffer hit failed while the breaker is open: %v", err)
	}
	pg.Unpin(false)

	// Heal, wait out the cooldown: the next miss is the half-open probe and
	// closes the circuit (Probes: 1).
	d.SetFaults(nil)
	time.Sleep(35 * time.Millisecond)
	pg, err = p.Fetch(a)
	if err != nil {
		t.Fatalf("probe fetch after heal failed: %v", err)
	}
	if pg.Data()[0] != 1 {
		t.Fatal("probe fetch returned wrong data")
	}
	pg.Unpin(false)
	s, ds := p.Stats(), d.Stats()
	if s.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d after recovery, want still 1", s.BreakerTrips)
	}
	if ds.ReadFaults != s.ReadRetries+s.ReadErrors {
		t.Errorf("fault ledger out of balance: disk %d faults, pool %d retries + %d errors",
			ds.ReadFaults, s.ReadRetries, s.ReadErrors)
	}
	checkFrameInvariant(t, p)
}

// TestBackgroundWriterDrainsQuarantine: a dirty victim whose write-back
// faults lands in quarantine; the started pool's background writer must
// drain it to disk once the fault clears — with no eviction sweep or
// explicit flush from the caller.
func TestBackgroundWriterDrainsQuarantine(t *testing.T) {
	leakcheck.Check(t)
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 3)
	a, b, c := ids[0], ids[1], ids[2]
	p := NewWithConfig(d, 2, core.NewSyncReplacer(2, core.Options{}), Config{
		WriterInterval: time.Millisecond,
	})
	p.Start()
	defer p.Close()

	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), []byte("precious"))
	pg.Unpin(true) // dirty LRU victim
	pg, err = p.Fetch(b)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)

	// Exactly one write of a faults: the eviction sweep quarantines it; the
	// background writer's retry then succeeds.
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Pages: []policy.PageID{a}, Count: 1}))
	pg, err = p.Fetch(c)
	if err != nil {
		t.Fatalf("fetch failed despite a skippable poisoned victim: %v", err)
	}
	pg.Unpin(false)
	if got := p.Quarantined(); got != 1 {
		t.Fatalf("Quarantined = %d after failed write-back, want 1", got)
	}
	evictionsAtQuarantine := p.Stats().Evictions

	deadline := time.Now().Add(5 * time.Second)
	for p.Quarantined() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background writer did not drain quarantine; still %d", p.Quarantined())
		}
		time.Sleep(time.Millisecond)
	}
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:8]) != "precious" {
		t.Errorf("drained page content = %q, want %q", buf[:8], "precious")
	}
	if got := p.Stats().Evictions; got != evictionsAtQuarantine {
		t.Errorf("drain evicted pages (%d -> %d); it must only write back", evictionsAtQuarantine, got)
	}
	if !p.Resident(a) {
		t.Error("drained page lost residency")
	}
	checkFrameInvariant(t, p)
}

// TestPoolCloseIdempotentAndFenced: Close stops the writer, flushes dirty
// pages, and fences the API behind ErrClosed; a second Close replays the
// first result without re-flushing.
func TestPoolCloseIdempotentAndFenced(t *testing.T) {
	leakcheck.Check(t)
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 1)
	a := ids[0]
	p := New(d, 2, core.NewSyncReplacer(2, core.Options{}))
	p.Start()

	pg, err := p.Fetch(a)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), []byte("closing"))
	pg.Unpin(true)

	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:7]) != "closing" {
		t.Errorf("Close did not flush: disk has %q", buf[:7])
	}

	if _, err := p.Fetch(a); !errors.Is(err, ErrClosed) {
		t.Errorf("Fetch after Close = %v, want ErrClosed", err)
	}
	if _, err := p.NewPage(); !errors.Is(err, ErrClosed) {
		t.Errorf("NewPage after Close = %v, want ErrClosed", err)
	}
	if err := p.FlushAll(); !errors.Is(err, ErrClosed) {
		t.Errorf("FlushAll after Close = %v, want ErrClosed", err)
	}
	if err := p.FlushPage(a); !errors.Is(err, ErrClosed) {
		t.Errorf("FlushPage after Close = %v, want ErrClosed", err)
	}
	if err := p.DeletePage(a); !errors.Is(err, ErrClosed) {
		t.Errorf("DeletePage after Close = %v, want ErrClosed", err)
	}
	writesBefore := d.Stats().Writes
	if err := p.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if got := d.Stats().Writes; got != writesBefore {
		t.Errorf("second Close flushed again (%d -> %d writes)", writesBefore, got)
	}
	// Start after Close must not resurrect the writer.
	p.Start()
	if err := p.FlushAll(); !errors.Is(err, ErrClosed) {
		t.Errorf("pool revived by Start after Close: %v", err)
	}
}
