package bufferpool

import (
	"context"
	"time"

	"repro/internal/policy"
	"repro/internal/storage"
)

// This file is the pool's data-integrity layer: read-repair on detected
// corruption, the poison set of unrepairable pages, and the background
// scrubber that verifies pages against the backend before a client read
// trips over silent damage. Detection itself lives below the pool — the
// file store's per-slot trailers and the storage.WithCorruption injector
// both surface storage.ErrCorrupt — and the pool decides each detection's
// fate: heal it from a redundant copy, or poison the page id so further
// fetches fail fast.

// maxRepairAttempts bounds how many repair+re-read rounds one detection
// gets before the page is declared unrepairable.
const maxRepairAttempts = 2

// loadPage reads page id into buf through the retry ladder, running the
// read-repair protocol on detected corruption: ask the backend stack's
// repairer to rewrite the page from its redundant copy (the WAL tail, on
// the file store), then re-read and re-verify. Only a verified image is
// admitted. A page that cannot be repaired is poisoned and the corruption
// error returned — never blindly retried: ErrCorrupt is permanent under
// storage.IsTransient, so the retry ladder inside readPage does not
// reissue it either.
func (p *Pool) loadPage(ctx context.Context, id policy.PageID, buf []byte) error {
	err := p.readPage(ctx, id, buf)
	if err == nil || !storage.IsCorrupt(err) {
		return err
	}
	p.corruptDetected.Add(1)
	kind := corruptKindOf(err)
	for attempt := 0; p.repairer != nil && attempt < maxRepairAttempts; attempt++ {
		if rerr := p.repairer.RepairPage(ctx, id); rerr != nil {
			break // no redundant copy (or repair itself failed): unrepairable
		}
		rerr := p.readPage(ctx, id, buf)
		if rerr == nil {
			p.corruptRepaired.Add(1)
			if p.corruptionHook != nil {
				p.corruptionHook(id, kind, true)
			}
			return nil
		}
		if !storage.IsCorrupt(rerr) {
			// The slot verifies but the read failed for another reason
			// (breaker, transient exhaustion); not a corruption outcome.
			// The detection stays resolved as repaired: the repairer
			// verified the rewritten slot.
			p.corruptRepaired.Add(1)
			if p.corruptionHook != nil {
				p.corruptionHook(id, kind, true)
			}
			return rerr
		}
		err = rerr
	}
	p.corruptQuarantined.Add(1)
	p.poisonAdd(id, kind)
	if p.corruptionHook != nil {
		p.corruptionHook(id, kind, false)
	}
	return err
}

func corruptKindOf(err error) storage.CorruptKind {
	if ce, ok := storage.AsCorrupt(err); ok {
		return ce.Kind
	}
	return storage.CorruptChecksum
}

// notePage raises the scrubber's page-id high-water mark to cover id.
func (p *Pool) notePage(id policy.PageID) {
	for {
		cur := p.maxPageSeen.Load()
		if int64(id) <= cur || p.maxPageSeen.CompareAndSwap(cur, int64(id)) {
			return
		}
	}
}

func (p *Pool) poisonAdd(id policy.PageID, kind storage.CorruptKind) {
	p.poisonMu.Lock()
	p.poisoned[id] = kind
	p.poisonMu.Unlock()
}

func (p *Pool) poisonRemove(id policy.PageID) {
	p.poisonMu.Lock()
	delete(p.poisoned, id)
	p.poisonMu.Unlock()
}

func (p *Pool) poisonedKind(id policy.PageID) (storage.CorruptKind, bool) {
	p.poisonMu.Lock()
	kind, ok := p.poisoned[id]
	p.poisonMu.Unlock()
	return kind, ok
}

// PoisonedPages returns the ids currently quarantined as unrepairable-
// corrupt, in no particular order.
func (p *Pool) PoisonedPages() []policy.PageID {
	p.poisonMu.Lock()
	defer p.poisonMu.Unlock()
	ids := make([]policy.PageID, 0, len(p.poisoned))
	for id := range p.poisoned {
		ids = append(ids, id)
	}
	return ids
}

// ScrubSweep examines up to limit pages in cursor order, verifying each
// against the backend and running read-repair on any corruption found. It
// returns how many pages it examined (not how many verified — skips for
// poisoned, dirty-resident, unallocated or unavailable pages count). The
// background scrubber calls it on its interval; tests and operators may
// call it directly.
func (p *Pool) ScrubSweep(ctx context.Context, limit int) int {
	if p.closed.Load() {
		return 0
	}
	max := p.maxPageSeen.Load()
	if n := int64(p.backend.NumPages()); n-1 > max {
		max = n - 1
	}
	if max < 0 {
		return 0
	}
	buf := make([]byte, storage.PageSize)
	examined := 0
	for i := 0; i < limit; i++ {
		if ctx.Err() != nil {
			break
		}
		id := policy.PageID((p.scrubCursor.Add(1) - 1) % (max + 1))
		p.scrubOne(ctx, id, buf)
		examined++
	}
	return examined
}

// scrubOne verifies one page's backend copy. Skips: poisoned pages (their
// fate is already decided), and pages whose resident frame is dirty or in
// flux (the disk copy is legitimately stale — the write path will lay
// down a fresh verified image). A clean resident frame does not skip: the
// point is to catch rot under data the pool still trusts.
func (p *Pool) scrubOne(ctx context.Context, id policy.PageID, buf []byte) {
	if _, bad := p.poisonedKind(id); bad {
		return
	}
	if f := p.frameFor(id); f != nil {
		if f.state.Load() != frameResident || f.dirty.Load() {
			return
		}
	}
	err := p.backend.Read(ctx, id, buf)
	if err == nil {
		p.scrubPages.Add(1)
		return
	}
	if !storage.IsCorrupt(err) {
		return // unallocated, breaker-refused, transient: not scrub business
	}
	p.scrubCorrupt.Add(1)
	p.corruptDetected.Add(1)
	kind := corruptKindOf(err)
	if p.repairer != nil && p.repairer.RepairPage(ctx, id) == nil {
		// The repairer verified the rewritten slot; no re-read needed (and
		// none taken, keeping ScrubPages == successful scrub reads exact).
		p.corruptRepaired.Add(1)
		if p.corruptionHook != nil {
			p.corruptionHook(id, kind, true)
		}
		return
	}
	if p.rewriteResident(ctx, id) {
		// No redundant copy below the pool, but the pool itself holds a
		// clean resident image: rewrite the backend from memory. The write
		// path lays down a fresh verified slot (and clears injected taint).
		p.corruptRepaired.Add(1)
		if p.corruptionHook != nil {
			p.corruptionHook(id, kind, true)
		}
		return
	}
	p.corruptQuarantined.Add(1)
	p.poisonAdd(id, kind)
	if p.corruptionHook != nil {
		p.corruptionHook(id, kind, false)
	}
}

// rewriteResident heals a page whose backend copy is corrupt but whose
// frame holds a trusted clean image: mark it dirty and flush, so the
// ordinary write path (WAL append, trailer stamp, WriteBacks accounting)
// replaces the damaged copy. Reports whether the rewrite happened.
func (p *Pool) rewriteResident(ctx context.Context, id policy.PageID) bool {
	f, ok := p.pinResident(ctx, id)
	if !ok {
		return false
	}
	defer p.releasePin(id, f, false)
	f.dirty.Store(true)
	return p.flushFrame(ctx, id, f) == nil
}

// scrubLoop is the background scrubber: every scrubInterval it sweeps
// scrubBatch pages. It shares the background writer's stop channel and
// acknowledges exit on scrubDone.
func (p *Pool) scrubLoop() {
	defer close(p.scrubDone)
	// ctx mirrors writerStop so disk I/O inside a sweep aborts promptly
	// on Close.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-p.writerStop
		cancel()
	}()
	ticker := time.NewTicker(p.scrubInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.writerStop:
			return
		case <-ticker.C:
		}
		p.ScrubSweep(ctx, p.scrubBatch)
	}
}
