package bufferpool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
)

// This file wraps the pool's storage reads and writes in transient-fault
// retry with capped exponential backoff and deterministic seeded jitter,
// layered over the circuit breaker: each attempt goes through the pool's
// backend stack (where an enabled breaker admits and records it), and every
// backoff sleep is charged against the caller's context, so a deadline
// bounds the whole retry ladder rather than each rung. A breaker refusal is
// permanent under storage.IsTransient and ends the ladder immediately.

// RetryConfig tunes transient-fault retry for pool↔storage operations.
type RetryConfig struct {
	// Attempts is the maximum number of disk attempts per logical read or
	// write, the first included. Zero or one disables retry.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles after
	// each subsequent failure. Zero selects 200µs.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero selects 5ms.
	MaxDelay time.Duration
	// Seed seeds the deterministic jitter stream: a single-threaded
	// operation sequence backs off identically on every run; under
	// concurrency the jitter stream is still the seeded one, assigned to
	// retries in arrival order.
	Seed uint64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts < 1 {
		c.Attempts = 1
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 200 * time.Microsecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Millisecond
	}
	if c.MaxDelay < c.BaseDelay {
		c.MaxDelay = c.BaseDelay
	}
	return c
}

// retrier computes jittered backoff delays from one seeded stream.
type retrier struct {
	cfg RetryConfig
	mu  sync.Mutex
	rng *stats.RNG
}

func newRetrier(cfg RetryConfig) *retrier {
	cfg = cfg.withDefaults()
	return &retrier{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// backoff returns the delay after the attempt-th failed attempt (1-based):
// the full delay d = min(MaxDelay, BaseDelay·2^(attempt-1)), jittered
// uniformly into [d/2, d] ("equal jitter") from the seeded stream, so
// coalescing retriers spread out instead of thundering back together.
func (r *retrier) backoff(attempt int) time.Duration {
	d := r.cfg.MaxDelay
	if attempt-1 < 32 { // past 2^32 the shift alone exceeds any sane cap
		if shifted := r.cfg.BaseDelay << (attempt - 1); shifted > 0 && shifted < d {
			d = shifted
		}
	}
	half := d / 2
	r.mu.Lock()
	j := time.Duration(r.rng.Uint64n(uint64(d-half) + 1))
	r.mu.Unlock()
	return half + j
}

// retrySleep parks for the attempt's backoff, charged against ctx: an
// expiring context aborts the sleep (and with it the retry ladder). A
// sampled operation records the sleep as a retry_wait span (annot = the
// failed attempt number), so a waterfall shows where a slow miss sat in
// backoff rather than on the disk.
func (p *Pool) retrySleep(ctx context.Context, attempt int) error {
	var span obs.Span
	if p.spans != nil {
		span = p.spans.Start(obs.TraceFrom(ctx), obs.SpanRetryWait)
	}
	t := time.NewTimer(p.retry.backoff(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		span.Finish(int64(attempt))
		return ctx.Err()
	case <-t.C:
		span.Finish(int64(attempt))
		return nil
	}
}

// readPage reads page id from storage through the backend stack (breaker
// included) and the retry ladder. Transient failures are retried up to the
// configured attempts with backoff charged against ctx; permanent errors
// and breaker refusals return immediately. Each retried attempt counts once
// in ReadRetries.
func (p *Pool) readPage(ctx context.Context, id policy.PageID, buf []byte) error {
	sh := p.shardOf(id)
	for attempt := 1; ; attempt++ {
		err := p.backend.Read(ctx, id, buf)
		if err == nil {
			return nil
		}
		if !storage.IsTransient(err) || attempt >= p.retry.cfg.Attempts {
			return err
		}
		if serr := p.retrySleep(ctx, attempt); serr != nil {
			return fmt.Errorf("%w (retry abandoned: %w)", err, serr)
		}
		sh.readRetries.Add(1)
	}
}

// writePage writes page id to storage through the backend stack and the
// retry ladder, mirroring readPage. Each retried attempt counts once in
// WriteRetries.
func (p *Pool) writePage(ctx context.Context, id policy.PageID, buf []byte) error {
	sh := p.shardOf(id)
	for attempt := 1; ; attempt++ {
		err := p.backend.Write(ctx, id, buf)
		if err == nil {
			return nil
		}
		if !storage.IsTransient(err) || attempt >= p.retry.cfg.Attempts {
			return err
		}
		if serr := p.retrySleep(ctx, attempt); serr != nil {
			return fmt.Errorf("%w (retry abandoned: %w)", err, serr)
		}
		sh.writeRetries.Add(1)
	}
}

// countReadFailure files a failed logical read in the right ledger: a
// breaker refusal (no disk attempt was made) counts in ReadsRejected,
// anything else in ReadErrors. Write failures mirror it.
func (sh *shard) countReadFailure(err error) {
	if errors.Is(err, ErrDiskUnavailable) {
		sh.readsRejected.Add(1)
	} else {
		sh.readErrors.Add(1)
	}
}

func (sh *shard) countWriteFailure(err error) {
	if errors.Is(err, ErrDiskUnavailable) {
		sh.writesRejected.Add(1)
	} else {
		sh.writeErrors.Add(1)
	}
}
