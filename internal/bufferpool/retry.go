package bufferpool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/policy"
	"repro/internal/stats"
)

// This file wraps the pool's disk reads and writes in transient-fault
// retry with capped exponential backoff and deterministic seeded jitter,
// layered under the circuit breaker: every attempt asks the breaker for
// admission and reports its outcome, and every backoff sleep is charged
// against the caller's context, so a deadline bounds the whole retry
// ladder rather than each rung.

// RetryConfig tunes transient-fault retry for pool↔disk operations.
type RetryConfig struct {
	// Attempts is the maximum number of disk attempts per logical read or
	// write, the first included. Zero or one disables retry.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles after
	// each subsequent failure. Zero selects 200µs.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero selects 5ms.
	MaxDelay time.Duration
	// Seed seeds the deterministic jitter stream: a single-threaded
	// operation sequence backs off identically on every run; under
	// concurrency the jitter stream is still the seeded one, assigned to
	// retries in arrival order.
	Seed uint64
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts < 1 {
		c.Attempts = 1
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 200 * time.Microsecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Millisecond
	}
	if c.MaxDelay < c.BaseDelay {
		c.MaxDelay = c.BaseDelay
	}
	return c
}

// retrier computes jittered backoff delays from one seeded stream.
type retrier struct {
	cfg RetryConfig
	mu  sync.Mutex
	rng *stats.RNG
}

func newRetrier(cfg RetryConfig) *retrier {
	cfg = cfg.withDefaults()
	return &retrier{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
}

// backoff returns the delay after the attempt-th failed attempt (1-based):
// the full delay d = min(MaxDelay, BaseDelay·2^(attempt-1)), jittered
// uniformly into [d/2, d] ("equal jitter") from the seeded stream, so
// coalescing retriers spread out instead of thundering back together.
func (r *retrier) backoff(attempt int) time.Duration {
	d := r.cfg.MaxDelay
	if attempt-1 < 32 { // past 2^32 the shift alone exceeds any sane cap
		if shifted := r.cfg.BaseDelay << (attempt - 1); shifted > 0 && shifted < d {
			d = shifted
		}
	}
	half := d / 2
	r.mu.Lock()
	j := time.Duration(r.rng.Uint64n(uint64(d-half) + 1))
	r.mu.Unlock()
	return half + j
}

// retrySleep parks for the attempt's backoff, charged against ctx: an
// expiring context aborts the sleep (and with it the retry ladder).
func (p *Pool) retrySleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.retry.backoff(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// readPage reads page id from disk through the breaker and the retry
// ladder. Transient failures are retried up to the configured attempts
// with backoff charged against ctx; permanent errors and breaker refusals
// return immediately. Each retried attempt counts once in ReadRetries.
func (p *Pool) readPage(ctx context.Context, id policy.PageID, buf []byte) error {
	stripe := p.disk.StripeOf(id)
	sh := p.shardOf(id)
	for attempt := 1; ; attempt++ {
		if !p.breaker.allow(stripe) {
			return fmt.Errorf("read page %d: %w", id, ErrDiskUnavailable)
		}
		err := p.disk.Read(id, buf)
		p.breaker.record(stripe, err == nil)
		if err == nil {
			return nil
		}
		if !disk.IsTransient(err) || attempt >= p.retry.cfg.Attempts {
			return err
		}
		if serr := p.retrySleep(ctx, attempt); serr != nil {
			return fmt.Errorf("%w (retry abandoned: %w)", err, serr)
		}
		sh.readRetries.Add(1)
	}
}

// writePage writes page id to disk through the breaker and the retry
// ladder, mirroring readPage. Each retried attempt counts once in
// WriteRetries.
func (p *Pool) writePage(ctx context.Context, id policy.PageID, buf []byte) error {
	stripe := p.disk.StripeOf(id)
	sh := p.shardOf(id)
	for attempt := 1; ; attempt++ {
		if !p.breaker.allow(stripe) {
			return fmt.Errorf("write page %d: %w", id, ErrDiskUnavailable)
		}
		err := p.disk.Write(id, buf)
		p.breaker.record(stripe, err == nil)
		if err == nil {
			return nil
		}
		if !disk.IsTransient(err) || attempt >= p.retry.cfg.Attempts {
			return err
		}
		if serr := p.retrySleep(ctx, attempt); serr != nil {
			return fmt.Errorf("%w (retry abandoned: %w)", err, serr)
		}
		sh.writeRetries.Add(1)
	}
}

// countReadFailure files a failed logical read in the right ledger: a
// breaker refusal (no disk attempt was made) counts in ReadsRejected,
// anything else in ReadErrors. Write failures mirror it.
func (sh *shard) countReadFailure(err error) {
	if errors.Is(err, ErrDiskUnavailable) {
		sh.readsRejected.Add(1)
	} else {
		sh.readErrors.Add(1)
	}
}

func (sh *shard) countWriteFailure(err error) {
	if errors.Is(err, ErrDiskUnavailable) {
		sh.writesRejected.Add(1)
	} else {
		sh.writeErrors.Add(1)
	}
}
