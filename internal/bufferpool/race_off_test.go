//go:build !race

package bufferpool

const raceEnabled = false
