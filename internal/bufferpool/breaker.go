package bufferpool

import (
	"errors"
	"sync"
	"time"
)

// This file implements the pool's disk circuit breaker: per disk stripe, a
// closed/open/half-open state machine over the outcomes of disk attempts.
// Sustained failures on a stripe open its circuit, after which fetch-misses
// and write-backs touching that stripe fail fast with ErrDiskUnavailable
// instead of queueing behind a device that is not answering — buffer hits
// keep serving throughout, so the pool degrades to its in-memory working
// set instead of convoying every request onto the broken disk. After a
// cooldown the circuit admits one probe at a time (half-open); enough
// consecutive probe successes close it again.

// ErrDiskUnavailable reports an operation refused locally because the
// circuit breaker for its disk stripe is open. No disk attempt was made:
// the caller can retry after the breaker's cooldown, serve from memory, or
// surface the unavailability.
var ErrDiskUnavailable = errors.New("bufferpool: disk unavailable (circuit breaker open)")

// BreakerConfig tunes the disk circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count on one disk stripe that
	// opens the stripe's circuit. Zero (or negative) disables the breaker.
	Threshold int
	// Cooldown is how long an open circuit rejects traffic before admitting
	// a half-open probe. Zero selects 50ms.
	Cooldown time.Duration
	// Probes is the number of consecutive successful half-open probes that
	// close the circuit. Zero selects 2.
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	return c
}

// Breaker states. A stripe starts closed (traffic flows, failures are
// counted), opens at Threshold consecutive failures (traffic is refused),
// turns half-open after Cooldown (one probe in flight at a time), and
// closes again after Probes consecutive probe successes — or re-opens on
// the first probe failure.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is the all-stripes breaker; a nil *breaker (disabled) admits
// everything and records nothing.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time
	st  []breakerStripe
}

type breakerStripe struct {
	mu        sync.Mutex
	state     int
	failures  int       // consecutive failures while closed
	successes int       // consecutive probe successes while half-open
	probing   bool      // a half-open probe is in flight
	openedAt  time.Time // when the circuit last opened
	trips     uint64    // times this circuit has opened
}

// newBreaker returns a breaker over the given stripe count, or nil
// (disabled) when cfg.Threshold is not positive. now supplies the clock;
// tests inject a fake one.
func newBreaker(cfg BreakerConfig, stripes int, now func() time.Time) *breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	return &breaker{cfg: cfg.withDefaults(), now: now, st: make([]breakerStripe, stripes)}
}

// allow asks to admit one disk attempt on the stripe. A true return must be
// matched by exactly one record call with the attempt's outcome (in the
// half-open state the admission holds the stripe's single probe slot until
// record releases it). A false return means the circuit refused the attempt.
func (b *breaker) allow(stripe int) bool {
	if b == nil {
		return true
	}
	s := &b.st[stripe]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(s.openedAt) < b.cfg.Cooldown {
			return false
		}
		s.state = breakerHalfOpen
		s.successes = 0
		s.probing = true
		return true
	default: // breakerHalfOpen
		if s.probing {
			return false
		}
		s.probing = true
		return true
	}
}

// ready reports, without consuming a probe slot, whether allow could admit
// an attempt on the stripe right now. Fetch-misses use it to fail fast
// before doing any frame work.
func (b *breaker) ready(stripe int) bool {
	if b == nil {
		return true
	}
	s := &b.st[stripe]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return b.now().Sub(s.openedAt) >= b.cfg.Cooldown
	default:
		return !s.probing
	}
}

// record reports the outcome of an attempt admitted by allow.
func (b *breaker) record(stripe int, success bool) {
	if b == nil {
		return
	}
	s := &b.st[stripe]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case breakerClosed:
		if success {
			s.failures = 0
			return
		}
		s.failures++
		if s.failures >= b.cfg.Threshold {
			s.open(b.now())
		}
	case breakerHalfOpen:
		s.probing = false
		if success {
			s.successes++
			if s.successes >= b.cfg.Probes {
				s.state = breakerClosed
				s.failures = 0
			}
			return
		}
		s.open(b.now())
	case breakerOpen:
		// A straggler admitted before the trip finished late; the cooldown
		// clock stands.
	}
}

// open transitions the stripe to the open state. Callers hold s.mu.
func (s *breakerStripe) open(now time.Time) {
	s.state = breakerOpen
	s.openedAt = now
	s.failures = 0
	s.successes = 0
	s.probing = false
	s.trips++
}

// trips returns the total number of circuit openings across all stripes.
func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	var n uint64
	for i := range b.st {
		s := &b.st[i]
		s.mu.Lock()
		n += s.trips
		s.mu.Unlock()
	}
	return n
}

// openStripes returns how many stripes are currently in the open state
// (past-cooldown open stripes included: they stay open until a probe runs).
func (b *breaker) openStripes() int {
	if b == nil {
		return 0
	}
	n := 0
	for i := range b.st {
		s := &b.st[i]
		s.mu.Lock()
		if s.state == breakerOpen {
			n++
		}
		s.mu.Unlock()
	}
	return n
}
