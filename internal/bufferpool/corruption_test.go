package bufferpool

import (
	"context"
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/file"
	"repro/internal/storage/sim"
)

// newCorruptDisk builds a simulator wrapped in the corruption stage and
// preloads n stamped pages through it (plan disarmed, so the preload is
// clean).
func newCorruptDisk(t *testing.T, n int) (*storage.Corrupter, []policy.PageID) {
	t.Helper()
	c := storage.WithCorruption(sim.New(sim.ServiceModel{}))
	ids := make([]policy.PageID, n)
	buf := make([]byte, storage.PageSize)
	for i := range ids {
		ids[i] = storage.MustAllocate(c)
		buf[0] = byte(i + 1)
		if err := c.Write(context.Background(), ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	return c, ids
}

// taint corrupts page id through the wrapper: arm a one-shot rule for it,
// rewrite its current content (the write passes through, then taints), and
// disarm again.
func taint(t *testing.T, c *storage.Corrupter, id policy.PageID, unrepairable bool) {
	t.Helper()
	buf := make([]byte, storage.PageSize)
	if err := c.Read(context.Background(), id, buf); err != nil {
		t.Fatalf("taint pre-read of %d: %v", id, err)
	}
	c.SetCorruption(storage.NewCorruptPlan(1, storage.CorruptRule{
		Pages: []policy.PageID{id}, Count: 1, Unrepairable: unrepairable}))
	if err := c.Write(context.Background(), id, buf); err != nil {
		t.Fatalf("taint write of %d: %v", id, err)
	}
	c.SetCorruption(nil)
}

func TestFetchReadRepair(t *testing.T) {
	c, ids := newCorruptDisk(t, 2)
	taint(t, c, ids[0], false)
	p := New(c, 2, core.NewSyncReplacer(2, core.Options{}))
	defer p.Close()

	pg, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatalf("fetch of repairable-corrupt page: %v", err)
	}
	if pg.Data()[0] != 1 {
		t.Errorf("repaired page holds %d, want the preloaded stamp", pg.Data()[0])
	}
	pg.Unpin(false)

	s := p.Stats()
	if s.CorruptDetected != 1 || s.CorruptRepaired != 1 || s.CorruptQuarantined != 0 {
		t.Errorf("stats %+v, want detected=1 repaired=1 quarantined=0", s)
	}
	cs := c.CorruptStats()
	if cs.Injected != 1 || cs.Detected != 1 || cs.Cleared != 1 || cs.Tainted != 0 {
		t.Errorf("wrapper ledger %+v, want injected=detected=cleared=1 tainted=0", cs)
	}
}

func TestFetchUnrepairableQuarantinesAndFailsFast(t *testing.T) {
	c, ids := newCorruptDisk(t, 2)
	taint(t, c, ids[0], true)
	p := New(c, 2, core.NewSyncReplacer(2, core.Options{}))
	defer p.Close()

	if _, err := p.Fetch(ids[0]); !storage.IsCorrupt(err) {
		t.Fatalf("fetch of unrepairable page: %v, want corrupt", err)
	}
	if got := p.PoisonedPages(); len(got) != 1 || got[0] != ids[0] {
		t.Fatalf("poisoned set %v, want [%d]", got, ids[0])
	}

	// Further fetches fail fast: same error, no disk attempt, no fresh
	// detection.
	reads := c.Stats().Reads
	if _, err := p.Fetch(ids[0]); !storage.IsCorrupt(err) {
		t.Fatalf("second fetch: %v, want corrupt", err)
	}
	if got := c.Stats().Reads; got != reads {
		t.Errorf("poisoned fetch touched the disk (%d reads, was %d)", got, reads)
	}
	s := p.Stats()
	if s.CorruptDetected != 1 || s.CorruptQuarantined != 1 || s.CorruptRepaired != 0 {
		t.Errorf("stats %+v, want one detection, one quarantine", s)
	}
	if s.Misses != 2 || s.ReadErrors != 2 {
		t.Errorf("stats %+v, want both failed fetches counted as misses and read errors", s)
	}

	// The clean sibling is unaffected.
	pg, err := p.Fetch(ids[1])
	if err != nil {
		t.Fatalf("fetch of clean page: %v", err)
	}
	pg.Unpin(false)

	// Deleting the page clears its quarantine with it.
	if err := p.DeletePage(ids[0]); err != nil {
		t.Fatalf("delete of poisoned page: %v", err)
	}
	if got := p.PoisonedPages(); len(got) != 0 {
		t.Errorf("poison survived DeletePage: %v", got)
	}
}

// TestCorruptCountsAgainstBreaker: quarantined detections are permanent
// stripe failures — enough of them open the circuit, so a stripe rotting
// wholesale sheds load instead of burning every fetch on doomed reads.
func TestCorruptCountsAgainstBreaker(t *testing.T) {
	c, _ := newCorruptDisk(t, 1)
	// Collect three pages on one stripe: two to rot, one to probe with.
	byStripe := map[int][]policy.PageID{}
	var stripe int
	buf := make([]byte, storage.PageSize)
	for {
		id := storage.MustAllocate(c)
		if err := c.Write(context.Background(), id, buf); err != nil {
			t.Fatal(err)
		}
		s := c.StripeOf(id)
		byStripe[s] = append(byStripe[s], id)
		if len(byStripe[s]) == 3 {
			stripe = s
			break
		}
	}
	rotA, rotB, probe := byStripe[stripe][0], byStripe[stripe][1], byStripe[stripe][2]
	taint(t, c, rotA, true)
	taint(t, c, rotB, true)

	p := NewWithConfig(c, 4, core.NewSyncReplacer(4, core.Options{}), Config{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Minute, Probes: 1},
	})
	defer p.Close()
	if _, err := p.Fetch(rotA); !storage.IsCorrupt(err) {
		t.Fatalf("fetch rotA: %v", err)
	}
	if _, err := p.Fetch(rotB); !storage.IsCorrupt(err) {
		t.Fatalf("fetch rotB: %v", err)
	}
	// Two permanent failures tripped the stripe: the clean page is now
	// refused locally, without a disk attempt.
	if _, err := p.Fetch(probe); !errors.Is(err, ErrDiskUnavailable) {
		t.Fatalf("fetch on tripped stripe: %v, want ErrDiskUnavailable", err)
	}
	if s := p.Stats(); s.BreakerTrips == 0 || s.ReadsRejected == 0 {
		t.Errorf("stats %+v, want a breaker trip and a rejected read", s)
	}
}

// TestScrubberHealsInBackground: the scrubber finds corruption on pages no
// client has ever fetched and repairs it before a read trips over it.
func TestScrubberHealsInBackground(t *testing.T) {
	leakcheck.Check(t)
	c, ids := newCorruptDisk(t, 8)
	taint(t, c, ids[5], false)
	p := NewWithConfig(c, 4, core.NewSyncReplacer(4, core.Options{}), Config{
		ScrubInterval: 200 * time.Microsecond,
		ScrubBatch:    16,
	})
	p.Start()

	deadline := time.Now().Add(10 * time.Second)
	for {
		s := p.Stats()
		if s.ScrubCorrupt >= 1 && s.CorruptRepaired >= 1 && c.CorruptStats().Tainted == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never healed the taint: %+v, wrapper %+v", s, c.CorruptStats())
		}
		time.Sleep(time.Millisecond)
	}
	if s := p.Stats(); s.ScrubPages == 0 {
		t.Errorf("scrubber verified no clean pages: %+v", s)
	}
	pg, err := p.Fetch(ids[5])
	if err != nil {
		t.Fatalf("fetch after background heal: %v", err)
	}
	if pg.Data()[0] != 6 {
		t.Errorf("healed page holds %d, want its preloaded stamp", pg.Data()[0])
	}
	pg.Unpin(false)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestENOSPCFailsFastWhileHitsServe: a full device is a permanent
// condition — allocations and write-backs fail without retry burn, while
// resident pages keep serving from memory.
func TestENOSPCFailsFastWhileHitsServe(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	ids := allocPages(t, d, 2)
	p := NewWithConfig(d, 2, core.NewSyncReplacer(2, core.Options{}), Config{
		Retry: RetryConfig{Attempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 1},
	})
	defer p.Close()

	// Warm a page, then fill the device.
	pg, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(true)
	d.SetFaults(storage.NewFaultPlan(1,
		storage.FaultRule{Op: storage.OpAllocate, Err: storage.ErrNoSpace},
		storage.FaultRule{Op: storage.OpWrite, Err: storage.ErrNoSpace},
	))

	if _, err := p.NewPage(); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("NewPage on full device: %v, want ErrNoSpace", err)
	}
	if err := p.FlushPage(ids[0]); !errors.Is(err, storage.ErrNoSpace) {
		t.Fatalf("flush on full device: %v, want ErrNoSpace", err)
	}
	s := p.Stats()
	if s.WriteRetries != 0 || s.ReadRetries != 0 {
		t.Errorf("retry ladder spun on a permanent ENOSPC: %+v", s)
	}
	if s.WriteErrors != 1 {
		t.Errorf("stats %+v, want exactly one write error", s)
	}
	// The resident page still serves — out-of-space starves writes, not
	// memory.
	pg, err = p.Fetch(ids[0])
	if err != nil {
		t.Fatalf("hit during ENOSPC: %v", err)
	}
	pg.Unpin(false)
	if hits := p.Stats().Hits; hits == 0 {
		t.Error("no hit recorded during ENOSPC")
	}
	d.SetFaults(nil)
}

// TestCorruptionStorm is the integrity headline: many goroutines hammer a
// small pool while the corruption stage taints write-backs — bit rot,
// misdirected writes landing on a neighbour, and a bounded run of
// unrepairable damage. The background scrubber runs throughout. Individual
// fetches may fail with the corruption error; the pool may not lose data
// or miscount. After the storm the injection ledger must reconcile exactly
// with the pool's integrity counters and the disk's transfer ledger, and
// the set of pages still tainted must be exactly the set the pool
// quarantined.
func TestCorruptionStorm(t *testing.T) {
	t.Run("sim", func(t *testing.T) {
		runCorruptionStorm(t, sim.New(sim.ServiceModel{}))
	})
	t.Run("file", func(t *testing.T) {
		s, err := file.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		runCorruptionStorm(t, s)
	})
}

func runCorruptionStorm(t *testing.T, base storage.Backend) {
	const (
		goroutines = 8
		pages      = 128 // even: a misdirect taints id^1, which must stay in range
		frames     = 32
		opsPerG    = 1500
		seed       = 7
	)
	leakcheck.Check(t)
	c := storage.WithCorruption(base)
	ids := make([]policy.PageID, pages)
	committed := make([]uint64, pages) // owner-goroutine writes, read after Wait
	buf := make([]byte, storage.PageSize)
	for i := range ids {
		ids[i] = storage.MustAllocate(c)
		if ids[i] != policy.PageID(i) {
			t.Fatalf("storm needs contiguous ids from 0, got %d at %d", ids[i], i)
		}
		committed[i] = uint64(1000 + i)
		binary.LittleEndian.PutUint64(buf, committed[i])
		if err := c.Write(context.Background(), ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	preload := uint64(pages)

	// The storm's corruption plan, armed only after the clean preload: a
	// bounded burst of unrepairable damage, a misdirect trickle, and a
	// steady bit-rot rate.
	c.SetCorruption(storage.NewCorruptPlan(seed,
		storage.CorruptRule{Probability: 0.02, Count: 16, Unrepairable: true},
		storage.CorruptRule{Probability: 0.02, Kind: storage.CorruptMisdirect},
		storage.CorruptRule{Probability: 0.05},
	))

	p := NewWithConfig(c, frames, core.NewShardedReplacer(8, 2, core.Options{}), Config{
		Shards: 16,
		// The breaker is armed but effectively untrippable: this storm
		// reconciles ledgers exactly, and breaker rejections would make
		// which-fetch-fails schedule-dependent in ways the data checks
		// below do not need. Breaker/corruption interaction has its own
		// test.
		Breaker:        BreakerConfig{Threshold: 1 << 30, Cooldown: time.Millisecond, Probes: 1},
		WriterInterval: time.Millisecond,
		ScrubInterval:  500 * time.Microsecond,
		ScrubBatch:     64,
	})
	p.Start()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(g))
			for op := 0; op < opsPerG; op++ {
				i := rng.Intn(pages)
				id := ids[i]
				own := i%goroutines == g
				if own && op%64 == 63 {
					_ = p.FlushPage(id) // occasional explicit write-back
					continue
				}
				pg, err := p.Fetch(id)
				if err != nil {
					// Corruption casualties (repair failed, or the id is
					// quarantined) and exhausted sweeps are expected;
					// anything else is a pool bug.
					if !storage.IsCorrupt(err) && !errors.Is(err, ErrNoFreeFrame) {
						t.Errorf("goroutine %d: fetch %d: %v", g, id, err)
					}
					continue
				}
				if own {
					v := committed[i] + 1
					binary.LittleEndian.PutUint64(pg.Data(), v)
					committed[i] = v
					pg.Unpin(true)
				} else {
					pg.Unpin(false)
				}
			}
		}(g)
	}
	wg.Wait()

	// Phase 2: disarm injection (existing taints stay — damage on the media
	// does not evaporate) and drive the pool to a fixed point: everything
	// repairable repaired, everything else quarantined.
	c.SetCorruption(nil)
	ctx := context.Background()

	// The storm can finish before the background scrubber ever wins the
	// race to a corrupt page (fetches detect first), so hand it one
	// detection deterministically: flush a clean page, taint it below the
	// pool, and sweep. The side-channel read and write are added to the
	// ledger expectations below.
	var sideReads, sideWrites uint64
	{
		inSet := func(set []policy.PageID, id policy.PageID) bool {
			for _, s := range set {
				if s == id {
					return true
				}
			}
			return false
		}
		tainted, poisoned := c.TaintedPages(), p.PoisonedPages()
		target, found := policy.PageID(0), false
		for _, id := range ids {
			if !inSet(tainted, id) && !inSet(poisoned, id) {
				target, found = id, true
				break
			}
		}
		if !found {
			t.Fatal("storm left no clean page to seed the scrubber with")
		}
		if err := p.FlushPage(target); err != nil && !errors.Is(err, ErrPageNotResident) {
			t.Fatalf("flush of scrub target %d: %v", target, err)
		}
		if err := c.Read(ctx, target, buf); err != nil {
			t.Fatalf("side read of scrub target: %v", err)
		}
		sideReads++
		c.SetCorruption(storage.NewCorruptPlan(1, storage.CorruptRule{
			Pages: []policy.PageID{target}, Count: 1}))
		if err := c.Write(ctx, target, buf); err != nil {
			t.Fatalf("side write of scrub target: %v", err)
		}
		sideWrites++
		c.SetCorruption(nil)
		p.ScrubSweep(ctx, pages)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := p.FlushAll(); err != nil {
			t.Fatalf("post-storm flush: %v", err)
		}
		p.ScrubSweep(ctx, pages)
		tainted := c.TaintedPages()
		poisoned := p.PoisonedPages()
		if pageSetsEqual(tainted, poisoned) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no fixed point: tainted %v vs poisoned %v", tainted, poisoned)
		}
		time.Sleep(time.Millisecond)
	}

	s, ds, cs := p.Stats(), c.Stats(), c.CorruptStats()

	// Injection conservation: every taint ever laid is either cleared
	// (overwritten or repaired) or still on a page — and every page still
	// tainted is exactly one the pool quarantined.
	if cs.Injected != cs.Cleared+uint64(cs.Tainted) {
		t.Errorf("wrapper ledger broken: injected=%d != cleared=%d + tainted=%d",
			cs.Injected, cs.Cleared, cs.Tainted)
	}
	// Every detection resolved exactly once.
	if s.CorruptDetected != s.CorruptRepaired+s.CorruptQuarantined {
		t.Errorf("detections unresolved: detected=%d != repaired=%d + quarantined=%d",
			s.CorruptDetected, s.CorruptRepaired, s.CorruptQuarantined)
	}
	// Transfer ledger: every disk read is a non-coalesced, non-failed,
	// non-refused miss or a clean scrub probe; every write beyond the
	// preload is a counted write-back (scrub rewrites included).
	if want := s.Misses - s.Coalesced - s.ReadErrors - s.ReadsRejected + s.ScrubPages + sideReads; ds.Reads != want {
		t.Errorf("disk reads = %d, want misses-coalesced-readErrors-readsRejected+scrubPages+side = %d",
			ds.Reads, want)
	}
	if want := preload + s.WriteBacks + sideWrites; ds.Writes != want {
		t.Errorf("disk writes = %d, want preload+writeBacks+side = %d", ds.Writes, want)
	}
	if s.ReadRetries != 0 || s.WriteRetries != 0 {
		t.Errorf("retry ladder spun on permanent corruption: %+v", s)
	}
	if s.Hits == 0 || s.Misses == 0 || s.CorruptDetected == 0 || s.CorruptRepaired == 0 ||
		s.CorruptQuarantined == 0 || s.ScrubPages == 0 || s.ScrubCorrupt == 0 {
		t.Errorf("storm did not exercise all integrity paths: %+v", s)
	}

	// Data: every non-quarantined page must hold its owner's last committed
	// value; every quarantined page must refuse with the corruption error.
	poisoned := make(map[policy.PageID]bool)
	for _, id := range p.PoisonedPages() {
		poisoned[id] = true
	}
	for i, id := range ids {
		if poisoned[id] {
			if _, err := p.Fetch(id); !storage.IsCorrupt(err) {
				t.Errorf("quarantined page %d served: %v", id, err)
			}
			continue
		}
		pg, err := p.Fetch(id)
		if err != nil {
			t.Errorf("post-storm fetch of clean page %d: %v", id, err)
			continue
		}
		if got := binary.LittleEndian.Uint64(pg.Data()); got != committed[i] {
			t.Errorf("page %d: holds %d, owner committed %d (lost update)", id, got, committed[i])
		}
		pg.Unpin(false)
	}

	free, tabled := frameAccounting(p)
	if free+tabled != p.NumFrames() {
		t.Errorf("frame accounting: %d free + %d resident != %d frames", free, tabled, p.NumFrames())
	}
	if err := p.Close(); err != nil {
		t.Errorf("Close after storm: %v", err)
	}
}

func pageSetsEqual(a, b []policy.PageID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]policy.PageID(nil), a...)
	bs := append([]policy.PageID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
