package bufferpool

import (
	"context"
	"time"

	"repro/internal/policy"
)

// This file owns the pool's lifecycle: Start launches the background
// writer that drains the write-back quarantine, Close stops it, flushes
// every dirty page, and fences the pool against further use. The
// background writer is the pool's self-healing path — a page whose
// write-back faulted is retried off the caller's critical path until the
// disk answers again, so quarantine drains without anyone issuing an
// eviction sweep.

// Start launches the background writer and, when Config.ScrubInterval is
// set, the background scrubber. It is a no-op on a pool that is already
// started or closed. Pools that never call Start work exactly as before:
// quarantined pages are retried only by eviction sweeps and explicit
// flushes, and pages are verified only as client reads touch them.
func (p *Pool) Start() {
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	if p.started || p.closed.Load() {
		return
	}
	p.started = true
	go p.writerLoop()
	if p.scrubInterval > 0 {
		p.scrubStarted = true
		go p.scrubLoop()
	}
}

// Close stops the background writer, flushes every dirty resident page,
// and fences the pool: Fetch, NewPage, FlushPage, FlushAll, and
// DeletePage return ErrClosed afterwards. Close is idempotent — repeated
// calls return the first call's flush result without flushing again.
// In-flight operations that passed the fence complete normally; Close
// does not wait for their pins to drop.
func (p *Pool) Close() error {
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	if p.closed.Load() {
		return p.closeErr
	}
	if p.started {
		close(p.writerStop)
		<-p.writerDone
		if p.scrubStarted {
			<-p.scrubDone
			p.scrubStarted = false
		}
		p.started = false
	}
	// Fence new operations first, then run the final flush through the
	// internal path (the public FlushAll would now refuse us).
	p.closed.Store(true)
	p.closeErr = p.flushAll(context.Background())
	return p.closeErr
}

// writerLoop drains the quarantine in the background. It parks until
// kicked (quarantineAdd) or its interval elapses, then retries every
// quarantined page with doubling backoff between failed rounds, so a
// still-broken disk is probed gently and a healed one drains promptly.
func (p *Pool) writerLoop() {
	defer close(p.writerDone)

	// ctx mirrors writerStop so disk retries and backoff sleeps inside a
	// drain round abort promptly on Close.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-p.writerStop
		cancel()
	}()

	backoff := p.writerInterval
	timer := time.NewTimer(p.writerInterval)
	defer timer.Stop()
	for {
		select {
		case <-p.writerStop:
			return
		case <-p.writerKick:
			backoff = p.writerInterval
		case <-timer.C:
		}
		if p.drainQuarantine(ctx) {
			backoff = p.writerInterval
		} else if backoff < 64*p.writerInterval {
			backoff *= 2
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(backoff)
	}
}

// drainQuarantine retries the write-back of every currently quarantined
// page once. It reports whether the quarantine is empty afterwards (so
// the writer can reset its backoff) — pages that fault again stay
// quarantined for the next round.
func (p *Pool) drainQuarantine(ctx context.Context) bool {
	p.quarMu.Lock()
	ids := make([]policy.PageID, 0, len(p.quarantined))
	for id := range p.quarantined {
		ids = append(ids, id)
	}
	p.quarMu.Unlock()
	for _, id := range ids {
		if ctx.Err() != nil {
			break
		}
		f, ok := p.pinResident(ctx, id)
		if !ok {
			// Deleted or evicted meanwhile; a successful eviction write-back
			// already cleared the entry, a delete likewise.
			continue
		}
		// flushFrame clears the quarantine entry on success (or when the
		// page turned clean through another path) and leaves it on failure.
		_ = p.flushFrame(ctx, id, f)
		p.releasePin(id, f, false)
	}
	p.quarMu.Lock()
	empty := len(p.quarantined) == 0
	p.quarMu.Unlock()
	return empty
}
