package bufferpool

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/file"
	"repro/internal/storage/sim"
)

// BenchmarkPoolParallel compares the seed's single-latch pool (Serial)
// against the latch-partitioned Pool on the same skewed workload, with the
// disk's service time injected as real (scaled-down) latency so misses
// cost wall-clock time. The serial pool holds its one mutex across that
// latency; the concurrent pool performs I/O outside the latch, so
// throughput should scale with goroutines.
//
//	go test -bench BenchmarkPoolParallel -benchtime 2s ./internal/bufferpool/
func BenchmarkPoolParallel(b *testing.B) {
	const (
		pages   = 4096
		frames  = 512
		hotSet  = 256
		dirtyPc = 10 // percent of private-page ops that dirty the page
	)
	// 1 simulated ms = 1 real µs: a ~10.1 ms random I/O sleeps ~10 µs.
	model := sim.ServiceModel{
		SeekMicros:     10000,
		TransferMicros: 100,
		Delay: func(micros int64) {
			time.Sleep(time.Duration(micros) * time.Microsecond / 1000)
		},
	}
	type pool interface {
		fetchRelease(id policy.PageID, dirty bool) error
	}
	builders := []struct {
		name  string
		build func(d *storage.Faulty) pool
	}{
		{"serial", func(d *storage.Faulty) pool {
			return serialBench{NewSerial(d, frames, core.NewReplacer(2, core.Options{}))}
		}},
		{"sharded", func(d *storage.Faulty) pool {
			return poolBench{NewWithConfig(d, frames,
				core.NewShardedReplacer(16, 2, core.Options{}), Config{})}
		}},
	}
	for _, workers := range []int{1, 4, 8, 16} {
		for _, impl := range builders {
			b.Run(fmt.Sprintf("impl=%s/goroutines=%d", impl.name, workers), func(b *testing.B) {
				d := newFaultyDisk(model)
				for i := 0; i < pages; i++ {
					d.Allocate()
				}
				p := impl.build(d)
				// Private pages give each goroutine a race-free dirty target.
				private := make([]policy.PageID, workers)
				for i := range private {
					private[i] = policy.PageID(pages - 1 - i)
				}
				// Warm the hot set so the timed region measures steady-state
				// behaviour, not the cold-start miss storm.
				for i := 0; i < hotSet; i++ {
					if err := p.fetchRelease(policy.PageID(i), false); err != nil {
						b.Fatal(err)
					}
				}
				for _, id := range private {
					if err := p.fetchRelease(id, false); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / workers
				for w := 0; w < workers; w++ {
					extra := 0
					if w == 0 {
						extra = b.N - per*workers
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						r := stats.NewRNG(uint64(w + 1))
						for i := 0; i < n; i++ {
							var id policy.PageID
							dirty := false
							switch op := r.Intn(100); {
							case op < 70: // hot shared read
								id = policy.PageID(r.Intn(hotSet))
							case op < 90: // cold shared read
								id = policy.PageID(hotSet + r.Intn(pages-hotSet-workers))
							default: // private page, sometimes dirtied
								id = private[w]
								dirty = r.Intn(100) < dirtyPc
							}
							if err := p.fetchRelease(id, dirty); err != nil {
								b.Error(err)
								return
							}
						}
					}(w, per+extra)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkPoolHit isolates the resident-hit path: a hot set smaller than
// the pool is warmed once, then every timed fetch is a buffer hit — no
// disk I/O, no eviction, just the page-table probe, the pin handshake and
// the replacer's reference bookkeeping. This is the §2.1 cost the paper
// requires to be negligible on every reference; BENCH_hotpath.json tracks
// its ns/op trajectory at 1/4/8/16 goroutines over both storage backends
// (the backend only serves the warm-up, but its stripe geometry shapes
// the pool).
//
//	go test -bench BenchmarkPoolHit -benchtime 2s ./internal/bufferpool/
func BenchmarkPoolHit(b *testing.B) {
	const (
		frames = 512
		hotSet = 256
	)
	type pool interface {
		fetchRelease(id policy.PageID, dirty bool) error
	}
	builders := []struct {
		name  string
		build func(d storage.Backend) pool
	}{
		{"serial", func(d storage.Backend) pool {
			return serialBench{NewSerial(d, frames, core.NewReplacer(2, core.Options{}))}
		}},
		{"sharded", func(d storage.Backend) pool {
			return poolBench{NewWithConfig(d, frames,
				core.NewShardedReplacer(16, 2, core.Options{}), Config{})}
		}},
		{"batched", func(d storage.Backend) pool {
			return poolBench{NewWithConfig(d, frames,
				core.NewBatched(core.NewShardedReplacer(16, 2, core.Options{}), core.BatchConfig{}),
				Config{})}
		}},
	}
	backends := []struct {
		name string
		open func(b *testing.B) storage.Backend
	}{
		{"sim", func(b *testing.B) storage.Backend { return sim.New(sim.ServiceModel{}) }},
		{"file", func(b *testing.B) storage.Backend {
			s, err := file.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
	}
	for _, be := range backends {
		for _, workers := range []int{1, 4, 8, 16} {
			for _, impl := range builders {
				b.Run(fmt.Sprintf("backend=%s/impl=%s/goroutines=%d", be.name, impl.name, workers), func(b *testing.B) {
					d := be.open(b)
					ids := make([]policy.PageID, hotSet)
					for i := range ids {
						ids[i] = storage.MustAllocate(d)
					}
					p := impl.build(d)
					for _, id := range ids {
						if err := p.fetchRelease(id, false); err != nil {
							b.Fatal(err)
						}
					}
					b.ResetTimer()
					var wg sync.WaitGroup
					per := b.N / workers
					for w := 0; w < workers; w++ {
						extra := 0
						if w == 0 {
							extra = b.N - per*workers
						}
						wg.Add(1)
						go func(w, n int) {
							defer wg.Done()
							r := stats.NewRNG(uint64(w + 1))
							for i := 0; i < n; i++ {
								if err := p.fetchRelease(ids[r.Intn(hotSet)], false); err != nil {
									b.Error(err)
									return
								}
							}
						}(w, per+extra)
					}
					wg.Wait()
				})
			}
		}
	}
}

type serialBench struct{ p *Serial }

func (s serialBench) fetchRelease(id policy.PageID, dirty bool) error {
	pg, err := s.p.Fetch(id)
	if err != nil {
		return err
	}
	if dirty {
		pg.Data()[0]++
	}
	pg.Unpin(dirty)
	return nil
}

type poolBench struct{ p *Pool }

func (s poolBench) fetchRelease(id policy.PageID, dirty bool) error {
	pg, err := s.p.Fetch(id)
	if err != nil {
		return err
	}
	if dirty {
		pg.Data()[0]++
	}
	pg.Unpin(dirty)
	return nil
}
