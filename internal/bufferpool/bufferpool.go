// Package bufferpool implements a database buffer-pool manager in the
// mould of the paper's setting: a fixed set of page frames over a storage
// backend, with pin/unpin reference counting, dirty-page write-back, and a
// pluggable replacement policy. The LRU-K replacer of internal/core plugs
// in directly (core.NewReplacer); classical LRU is core.NewReplacer(1,
// ...). The pool depends only on storage.Backend: the simulated disk
// (storage/sim) and the durable file store (storage/file) slot in
// interchangeably.
//
// The pool is built for the paper's multi-user OLTP setting (§1, §4.2):
// the page table is partitioned into independently latched shards keyed by
// PageID hash, pin counts are atomics so a buffer hit never takes a shard
// latch exclusively, and all disk I/O — miss reads and dirty-victim
// write-backs — runs outside every latch. Concurrent misses on the same
// page coalesce onto a single in-flight read. The original single-latch
// implementation survives as Serial, the reference the concurrent pool is
// differentially tested against. See DESIGN.md §8 for the full protocol.
package bufferpool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/storage"
)

// ErrDiskUnavailable is the pool-level name for storage.ErrUnavailable: an
// operation refused locally because the circuit breaker for its storage
// stripe is open. Kept as an alias so pool callers (the server's status
// mapping, load generators) need not import the storage package.
var ErrDiskUnavailable = storage.ErrUnavailable

// BreakerConfig aliases storage.BreakerConfig; the pool installs the
// breaker as a storage wrapper around whatever backend it is given.
type BreakerConfig = storage.BreakerConfig

// Replacer selects eviction victims among unpinned pages. core.Replacer
// implements it.
//
// The concurrent Pool calls its replacer from many goroutines. A plain
// core.Replacer is not thread-safe, so the pool transparently wraps any
// replacer that does not implement ConcurrentReplacer behind one mutex;
// pass core.NewSyncReplacer or core.NewShardedReplacer to control the
// locking scheme yourself.
type Replacer interface {
	// RecordAccess notes a reference to a (newly or already) resident page.
	RecordAccess(p policy.PageID)
	// SetEvictable marks whether p may be chosen as a victim.
	SetEvictable(p policy.PageID, evictable bool)
	// Restore reinstates residency for a page whose eviction was abandoned
	// (the victim was re-pinned, or its write-back failed). It must not
	// count as a reference: the page's history stays exactly as it was
	// before Evict removed it.
	Restore(p policy.PageID)
	// Evict selects and removes a victim; ok is false if none is evictable.
	Evict() (policy.PageID, bool)
	// Remove drops p without treating it as an eviction decision.
	Remove(p policy.PageID)
	// Size returns the number of evictable pages.
	Size() int
}

// ConcurrentReplacer marks a Replacer as safe for concurrent use, telling
// the pool not to add its own lock around it. core.SyncReplacer and
// core.ShardedReplacer implement it.
type ConcurrentReplacer interface {
	Replacer
	// ConcurrentSafe is a marker; implementations need no body.
	ConcurrentSafe()
}

// AdmissionReplacer is a Replacer that distinguishes the reference that
// makes a page resident (a miss read or fresh allocation) from a hit on
// an already-resident page. The pool reports admissions through
// RecordAdmission when available, which lets an event-buffering replacer
// (core.Batched) drop a buffered hit whose page left residency before the
// drain instead of misreading it as an admission and fabricating history.
// For non-buffering replacers RecordAdmission is equivalent to
// RecordAccess.
type AdmissionReplacer interface {
	Replacer
	RecordAdmission(p policy.PageID)
}

// PinReplacer is a Replacer that accepts a hit and the accompanying
// pin-count zero-crossing as one fused call, so an event-buffering
// replacer (core.Batched) enqueues a single event where the generic path
// would enqueue a reference plus an evictability change. RecordPin must be
// semantically identical to RecordAccess(p) followed by
// SetEvictable(p, false).
type PinReplacer interface {
	Replacer
	RecordPin(p policy.PageID)
}

// lockedReplacer makes an arbitrary Replacer safe for concurrent use by
// serialising every call, preserving its victim order exactly.
type lockedReplacer struct {
	mu sync.Mutex
	r  Replacer
}

func (l *lockedReplacer) ConcurrentSafe() {}

func (l *lockedReplacer) RecordAccess(p policy.PageID) {
	l.mu.Lock()
	l.r.RecordAccess(p)
	l.mu.Unlock()
}

func (l *lockedReplacer) SetEvictable(p policy.PageID, evictable bool) {
	l.mu.Lock()
	l.r.SetEvictable(p, evictable)
	l.mu.Unlock()
}

func (l *lockedReplacer) Restore(p policy.PageID) {
	l.mu.Lock()
	l.r.Restore(p)
	l.mu.Unlock()
}

func (l *lockedReplacer) Evict() (policy.PageID, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Evict()
}

func (l *lockedReplacer) Remove(p policy.PageID) {
	l.mu.Lock()
	l.r.Remove(p)
	l.mu.Unlock()
}

func (l *lockedReplacer) Size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Size()
}

func (l *lockedReplacer) RecordAdmission(p policy.PageID) {
	l.mu.Lock()
	if ar, ok := l.r.(AdmissionReplacer); ok {
		ar.RecordAdmission(p)
	} else {
		l.r.RecordAccess(p)
	}
	l.mu.Unlock()
}

// ErrNoFreeFrame reports that every frame is pinned, so the pool cannot
// bring in another page.
var ErrNoFreeFrame = errors.New("bufferpool: all frames pinned")

// ErrPageNotResident reports an operation on a page the pool does not hold.
var ErrPageNotResident = errors.New("bufferpool: page not resident")

// ErrClosed reports an operation on a pool after Close.
var ErrClosed = errors.New("bufferpool: pool is closed")

// Stats reports cumulative pool activity.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	WriteBacks uint64
	// Coalesced counts misses that joined another request's in-flight disk
	// read instead of issuing their own (always zero single-threaded; such
	// misses are also counted in Misses).
	Coalesced uint64
	// ReadErrors counts failed miss reads — logical failures, after any
	// retries are exhausted. Each is counted once, against the loading
	// fetch; coalesced waiters that inherit the error count only Misses and
	// Coalesced. Failed fetches count in Misses (the page was not resident)
	// but issue no successful disk read, so disk reads == Misses -
	// Coalesced - ReadErrors - ReadsRejected - new pages.
	ReadErrors uint64
	// WriteErrors counts failed dirty-page write-backs (logical failures,
	// retries exhausted), from evictions and flushes alike. The data
	// survives in memory: the page stays resident and dirty, and the write
	// is retried by the background writer and later sweeps and flushes.
	WriteErrors uint64
	// ReadRetries and WriteRetries count disk attempts that failed with a
	// transient error and were reissued by the retry ladder (each retried
	// attempt counts once). With fault injection armed, the disk's fault
	// ledger reconciles exactly: ReadFaults == ReadRetries + ReadErrors,
	// and likewise for writes.
	ReadRetries  uint64
	WriteRetries uint64
	// ReadsRejected and WritesRejected count operations refused locally by
	// an open circuit breaker, without a disk attempt. Rejected reads are
	// still misses (the page was not resident); rejected write-backs
	// quarantine their page like any failed write.
	ReadsRejected  uint64
	WritesRejected uint64
	// BreakerTrips counts circuit-breaker openings across all disk stripes.
	BreakerTrips uint64
	// CorruptDetected counts logical reads (miss loads and scrub probes
	// alike) that failed integrity verification, once per detection.
	// Every detection resolves as exactly one of CorruptRepaired or
	// CorruptQuarantined: Detected == Repaired + Quarantined once the
	// pool is quiescent.
	CorruptDetected uint64
	// CorruptRepaired counts detections healed in place — a WAL-image
	// read-repair, or a scrub rewrite from a clean resident frame.
	CorruptRepaired uint64
	// CorruptQuarantined counts detections with no redundant copy to
	// repair from. The page id is poisoned: further fetches fail fast
	// with the corruption error, without touching the disk, until the
	// page is deleted or freshly allocated.
	CorruptQuarantined uint64
	// ScrubPages counts background-scrub reads that verified clean. Each
	// is exactly one successful disk read, so with scrubbing on the read
	// reconciliation becomes disk reads == Misses - Coalesced -
	// ReadErrors - ReadsRejected - new pages + ScrubPages.
	ScrubPages uint64
	// ScrubCorrupt counts corruptions the scrubber found (a subset of
	// CorruptDetected).
	ScrubCorrupt uint64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any fetches.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Frame lifecycle states. Transitions into frameWriting and table
// insert/delete happen only under the owning shard's exclusive latch;
// frameLoading→frameResident is published lock-free via the frame's ready
// channel.
const (
	frameFree     int32 = iota // on the free list, unreachable from any shard
	frameLoading               // in the table, disk read in flight
	frameResident              // in the table, data valid
	frameWriting               // in the table, dirty-victim write-back in flight
)

// Layout of frame.pv, the packed pin/claim/epoch word that makes the
// resident-hit probe latch-free (DESIGN.md §14):
//
//	bits 0..31   pin count
//	bit  32      claim bit: the frame is being repurposed (evicted or
//	             deleted); probes must not pin it
//	bits 33..63  repurposing epoch, bumped by every claim and install
//
// A lock-free probe validates page identity and residency, then pins with
// a single CompareAndSwap on the whole word: the CAS fails if any claim
// or install intervened since the word was read (the claim bit or the
// epoch changed), so a successful CAS is a valid pin with no undo path.
// The epoch is what defeats ABA: a frame evicted and re-installed — even
// for the same page id, even back to pin count zero — can never present
// the same word again.
const (
	framePinMask  = uint64(1)<<32 - 1
	frameClaimBit = uint64(1) << 32
	frameEpochInc = uint64(1) << 33
)

// frame is one buffer slot. pv, dirty and state are atomics so the hit
// path mutates them with no latch at all (probe) or under a shared shard
// latch (slow path); mu serialises only the evictability handshake with
// the replacer (see pinned / unpinned below), never I/O.
type frame struct {
	data []byte
	// page is the id the frame currently holds; atomic so the lock-free
	// probe can validate it. Only meaningful while the frame is reachable
	// (a freed frame retains its last id).
	page  atomic.Int64
	pv    atomic.Uint64
	dirty atomic.Bool
	state atomic.Int32
	// mu orders pin-count zero-crossings against the replacer's evictable
	// set, so a racing unpin→0 and repin cannot leave the flag stale.
	mu sync.Mutex
	// ready is closed by the loading goroutine once the miss read finishes
	// (err says how); set before the frame becomes reachable.
	ready chan struct{}
	err   error
	// writeDone is closed when an eviction write-back finishes and the
	// page has left the table; set under the shard's exclusive latch.
	writeDone chan struct{}
	// flushMu serialises flushFrame per frame. A flush clears the dirty bit
	// before its disk write (restoring it on failure); without the mutex a
	// concurrent flusher could observe that transient clean state and
	// report "already durable" for data whose only write is still in flight
	// — and may yet fail. It is held across the write, but only flushers
	// take it, so pin traffic and eviction (which excludes flushers via the
	// pin count) never block on it.
	flushMu sync.Mutex
}

// pins returns the frame's current pin count.
func (f *frame) pins() int64 { return int64(f.pv.Load() & framePinMask) }

// pinAdd adjusts the pin count by d and returns the new count. Callers
// must either hold a pin already (releases) or hold a latch that excludes
// claims (the slow pin paths); the lock-free probe pins via CAS instead.
func (f *frame) pinAdd(d int64) int64 {
	return int64(f.pv.Add(uint64(d)) & framePinMask)
}

// tryClaim atomically claims the frame for repurposing iff it is
// unpinned and unclaimed. Callers hold the owning shard's exclusive
// latch, so the only contenders are lock-free probes; a successful claim
// bumps the epoch (via the claim bit) and guarantees no probe can pin the
// frame until install publishes a new epoch.
func (f *frame) tryClaim() bool {
	for {
		w := f.pv.Load()
		if w&(framePinMask|frameClaimBit) != 0 {
			return false
		}
		if f.pv.CompareAndSwap(w, w+frameClaimBit) {
			return true
		}
	}
}

// unclaim abandons a claim (failed victim write-back), advancing the
// epoch so any probe that read the pre-claim word still fails its CAS.
// The claim bit excludes every other pv writer, so a plain store is safe.
func (f *frame) unclaim() {
	w := f.pv.Load()
	f.pv.Store((w &^ (frameClaimBit | framePinMask)) + frameEpochInc)
}

// install publishes a fresh epoch with pin count 1 for a frame the caller
// owns exclusively (claimed by eviction/delete, or taken off the free
// list, where probes cannot pin it because its state is never
// frameResident). Clearing the claim bit with a new epoch is what re-opens
// the frame to probes once its state becomes frameResident.
func (f *frame) install() {
	w := f.pv.Load()
	f.pv.Store((w &^ (frameClaimBit | framePinMask)) + frameEpochInc + 1)
}

// hotSlots is the per-shard size of the lock-free hit-path pointer array;
// a power of two. 64 slots per shard keeps the array one page-table probe
// wide while making same-slot collisions rare within a shard's working
// set (collisions only cost a fallback to the latched path).
const hotSlots = 64

// shard is one latch partition of the page table, with its own counters so
// Stats aggregation takes no global lock.
type shard struct {
	mu    sync.RWMutex
	table map[policy.PageID]*frame
	// hot is the lock-free hit-path index: recently installed or hit
	// resident frames, keyed by page-hash bits disjoint from the shard
	// selector. Entries may be stale (the frame claimed, freed, or holding
	// another page); probes re-validate against the frame itself and fall
	// back to the latched path on any doubt.
	hot [hotSlots]atomic.Pointer[frame]

	hits atomic.Uint64
	// fastHits counts hits served by the lock-free probe, a subset of
	// hits. Deliberately not part of Stats: it is a mechanism counter, not
	// pool accounting, and must not disturb Stats' exact differential
	// equality against the Serial pool.
	fastHits       atomic.Uint64
	misses         atomic.Uint64
	coalesced      atomic.Uint64
	evictions      atomic.Uint64
	writeBacks     atomic.Uint64
	readErrors     atomic.Uint64
	writeErrors    atomic.Uint64
	readRetries    atomic.Uint64
	writeRetries   atomic.Uint64
	readsRejected  atomic.Uint64
	writesRejected atomic.Uint64
	// Pad so adjacent shards do not share cache lines under contention.
	_ [40]byte
}

// Config tunes the concurrent pool.
type Config struct {
	// Shards is the number of page-table latch partitions; must be a power
	// of two. Zero selects a default scaled to GOMAXPROCS. One shard gives
	// a single (reader-writer) page-table latch.
	Shards int
	// Retry configures transient-fault retry for disk reads and writes.
	// The zero value disables retry (one attempt per operation), the
	// pre-hardening behaviour.
	Retry RetryConfig
	// Breaker configures the per-stripe disk circuit breaker. The zero
	// value (Threshold 0) disables it.
	Breaker BreakerConfig
	// WriterInterval is the background writer's cadence between quarantine
	// drain rounds while failures persist (the writer parks when the
	// quarantine is empty and doubles this delay, capped, while drains make
	// no progress). Zero selects 10ms. The writer runs only after Start.
	WriterInterval time.Duration
	// Metrics holds the pool's optional latency/shape instruments. Each nil
	// histogram disables its measurement entirely (its timing calls are
	// skipped, not just discarded), so the zero value keeps the hot path
	// identical to the uninstrumented pool.
	Metrics Metrics
	// ScrubInterval is the background scrubber's cadence: every interval
	// it verifies ScrubBatch pages against the backend, detecting silent
	// corruption before a client read trips over it. Zero disables the
	// scrubber. The scrubber runs only after Start.
	ScrubInterval time.Duration
	// ScrubBatch is how many pages one scrub tick examines. Zero selects
	// 64.
	ScrubBatch int
	// CorruptionHook, when set, is called once per detected corruption
	// after its fate is decided: repaired in place, or quarantined. It
	// runs on the detecting goroutine (a fetch's miss path or the
	// scrubber) and must not call back into the pool.
	CorruptionHook func(p policy.PageID, kind storage.CorruptKind, repaired bool)
	// Spans, when non-nil, arms fetch tracing: sampled fetches (a sampled
	// obs.TraceContext on ctx) record pool_fetch / pool_miss /
	// pool_coalesce spans plus retry-wait and breaker-reject events here.
	// Nil keeps every fetch free of tracing work; the latch-free hit probe
	// is untouched either way.
	Spans *obs.SpanRecorder
	// EvictionStamp, when set together with Spans, is called with the
	// victim page and the active trace id whenever a sampled operation's
	// eviction sweep evicts a page — the hook that lets the db layer stamp
	// its eviction-trace ring with the evicting trace. It runs under no
	// pool latch but on the fetching goroutine; it must not call back into
	// the pool.
	EvictionStamp func(victim policy.PageID, traceID uint64)
}

// Metrics are the pool's optional observability instruments. Counters are
// not here — the per-shard atomics already exist and are exposed by Stats
// (and at scrape time by internal/db's collectors); these histograms cover
// what a counter cannot: how long fetches take and what shape evictions
// have.
type Metrics struct {
	// FetchLatency records wall nanoseconds of every fetch, hits and misses
	// alike.
	FetchLatency *obs.Histogram
	// MissLatency records wall nanoseconds of fetches that ran the miss
	// protocol themselves: frame obtention (eviction sweep and write-backs
	// included) plus the disk read with its retry ladder.
	MissLatency *obs.Histogram
	// CoalesceWait records wall nanoseconds coalesced waiters spent parked
	// on another fetch's in-flight disk read.
	CoalesceWait *obs.Histogram
	// SweepLength records, per eviction sweep that could not be satisfied
	// from the free list, how many victims the sweep examined before a
	// frame was secured (or the sweep failed). Values above 1 mean victims
	// were re-pinned under the sweep or failed their write-back.
	SweepLength *obs.Histogram
}

func defaultShards() int {
	n := runtime.GOMAXPROCS(0) * 4
	s := 8
	for s < n {
		s <<= 1
	}
	return s
}

// Pool is the concurrent buffer-pool manager.
type Pool struct {
	// backend is the I/O path: the configured storage backend, wrapped in
	// the circuit breaker when one is enabled.
	backend  storage.Backend
	breaker  *storage.Breaker // typed handle into backend's breaker stage; nil when disabled
	replacer Replacer
	// admit records the reference that makes a page resident: the
	// replacer's RecordAdmission when it distinguishes admissions
	// (AdmissionReplacer), RecordAccess otherwise. Bound once at
	// construction so the miss path pays no type assertion.
	admit func(policy.PageID)
	// recordPin records a hit that raises the pin count from zero: the
	// replacer's fused RecordPin when it has one (core.Batched — one
	// buffered event instead of two), otherwise RecordAccess followed by
	// SetEvictable(false) in the Serial reference pool's order. Called
	// under the frame's mu (see pinnedRef).
	recordPin func(policy.PageID)
	frames    []frame
	shards    []shard
	mask      uint64

	freeMu sync.Mutex
	free   []*frame

	// quarantined holds resident pages whose most recent dirty write-back
	// failed. They are skipped within the sweep that failed them (so one
	// poisoned page cannot wedge an unrelated fetch) and retried by the
	// background writer and on later sweeps and flushes; a successful write
	// or a delete clears the entry.
	quarMu      sync.Mutex
	quarantined map[policy.PageID]struct{}

	// repairer is the deepest layer of the backend stack that can repair
	// a corrupt page in place (the file store's WAL-tail repair, or a
	// corruption injector's taint clearing); nil when none can.
	repairer storage.Repairer
	// poisoned holds unrepairable-corrupt page ids: detection found no
	// redundant copy, so fetches fail fast with the recorded corruption
	// kind instead of re-reading garbage. DeletePage and a fresh NewPage
	// allocation of the id clear the entry.
	poisonMu sync.Mutex
	poisoned map[policy.PageID]storage.CorruptKind

	corruptDetected    atomic.Uint64
	corruptRepaired    atomic.Uint64
	corruptQuarantined atomic.Uint64
	scrubPages         atomic.Uint64
	scrubCorrupt       atomic.Uint64
	// maxPageSeen is the highest page id the pool has been asked about;
	// with NumPages it bounds the scrubber's sweep.
	maxPageSeen atomic.Int64
	scrubCursor atomic.Int64

	retry          *retrier
	metrics        Metrics
	scrubInterval  time.Duration
	scrubBatch     int
	corruptionHook func(policy.PageID, storage.CorruptKind, bool)
	spans          *obs.SpanRecorder
	evictionStamp  func(policy.PageID, uint64)

	// closed gates every public operation after Close; in-flight operations
	// complete normally.
	closed atomic.Bool
	// lifeMu serialises Start and Close; started/closeErr are guarded by it.
	lifeMu   sync.Mutex
	started  bool
	closeErr error
	// writerStop ends the background writer and the scrubber; writerDone
	// and scrubDone acknowledge their exits; writerKick (buffered,
	// capacity 1) wakes the writer when quarantineAdd gives it work.
	writerStop     chan struct{}
	writerDone     chan struct{}
	writerKick     chan struct{}
	writerInterval time.Duration
	scrubStarted   bool // guarded by lifeMu
	scrubDone      chan struct{}
}

// New returns a pool of numFrames frames over backend b using the given
// replacer and the default shard count.
func New(b storage.Backend, numFrames int, r Replacer) *Pool {
	return NewWithConfig(b, numFrames, r, Config{})
}

// NewWithConfig returns a pool of numFrames frames over backend b using the
// given replacer. If r does not implement ConcurrentReplacer it is wrapped
// behind a single mutex, which preserves its exact victim order. When
// cfg.Breaker is enabled the pool wraps b in storage.WithBreaker, so every
// read and write — the retry ladder's attempts individually — passes
// through the per-stripe circuit.
func NewWithConfig(b storage.Backend, numFrames int, r Replacer, cfg Config) *Pool {
	if b == nil {
		panic("bufferpool: nil storage backend")
	}
	if numFrames <= 0 {
		panic(fmt.Sprintf("bufferpool: frame count must be positive, got %d", numFrames))
	}
	if r == nil {
		panic("bufferpool: nil replacer")
	}
	if cfg.Shards == 0 {
		cfg.Shards = defaultShards()
	}
	if cfg.Shards < 1 || cfg.Shards&(cfg.Shards-1) != 0 {
		panic(fmt.Sprintf("bufferpool: shard count must be a positive power of two, got %d", cfg.Shards))
	}
	if _, ok := r.(ConcurrentReplacer); !ok {
		r = &lockedReplacer{r: r}
	}
	if cfg.WriterInterval <= 0 {
		cfg.WriterInterval = 10 * time.Millisecond
	}
	if cfg.ScrubBatch <= 0 {
		cfg.ScrubBatch = 64
	}
	p := &Pool{
		backend:        b,
		breaker:        storage.WithBreaker(b, cfg.Breaker, time.Now),
		replacer:       r,
		frames:         make([]frame, numFrames),
		shards:         make([]shard, cfg.Shards),
		mask:           uint64(cfg.Shards - 1),
		free:           make([]*frame, 0, numFrames),
		quarantined:    make(map[policy.PageID]struct{}),
		poisoned:       make(map[policy.PageID]storage.CorruptKind),
		retry:          newRetrier(cfg.Retry),
		metrics:        cfg.Metrics,
		scrubInterval:  cfg.ScrubInterval,
		scrubBatch:     cfg.ScrubBatch,
		corruptionHook: cfg.CorruptionHook,
		spans:          cfg.Spans,
		evictionStamp:  cfg.EvictionStamp,
		writerStop:     make(chan struct{}),
		writerDone:     make(chan struct{}),
		writerKick:     make(chan struct{}, 1),
		writerInterval: cfg.WriterInterval,
		scrubDone:      make(chan struct{}),
	}
	if p.breaker != nil {
		p.backend = p.breaker
	}
	p.maxPageSeen.Store(-1)
	if rp, ok := storage.RepairerFor(p.backend); ok {
		p.repairer = rp
	}
	if ar, ok := p.replacer.(AdmissionReplacer); ok {
		p.admit = ar.RecordAdmission
	} else {
		p.admit = p.replacer.RecordAccess
	}
	if pr, ok := p.replacer.(PinReplacer); ok {
		p.recordPin = pr.RecordPin
	} else {
		p.recordPin = func(id policy.PageID) {
			p.replacer.RecordAccess(id)
			p.replacer.SetEvictable(id, false)
		}
	}
	for i := range p.shards {
		p.shards[i].table = make(map[policy.PageID]*frame)
	}
	for i := range p.frames {
		p.frames[i].data = make([]byte, storage.PageSize)
		p.free = append(p.free, &p.frames[i])
	}
	return p
}

// pageHash mixes a page id with the SplitMix64 finaliser, so sequential
// page ids spread across shards. The low bits select the shard; bits
// 32.. select the shard's hot slot, so the two indices are independent.
func pageHash(id policy.PageID) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *Pool) shardOf(id policy.PageID) *shard {
	return &p.shards[pageHash(id)&p.mask]
}

func hotIndex(id policy.PageID) int {
	return int((pageHash(id) >> 32) & (hotSlots - 1))
}

// hotPublish makes f probe-reachable for id. Racing a claim's hotClear is
// benign: a stale pointer only costs probes a failed validation.
func hotPublish(sh *shard, id policy.PageID, f *frame) {
	sh.hot[hotIndex(id)].Store(f)
}

// hotClear unlinks f from id's hot slot if still present. Called after a
// successful claim (under the shard's exclusive latch), so any publish
// that raced in earlier is ordered before it.
func hotClear(sh *shard, id policy.PageID, f *frame) {
	sh.hot[hotIndex(id)].CompareAndSwap(f, nil)
}

// Page is a pinned page handle. The data is valid until Unpin; using a
// handle after Unpin is a caller bug.
type Page struct {
	pool  *Pool
	id    policy.PageID
	f     *frame
	valid bool
}

// ID returns the page id.
func (pg *Page) ID() policy.PageID { return pg.id }

// Data returns the page's frame bytes for reading and writing. Callers
// that modify the data must pass dirty=true to Unpin.
func (pg *Page) Data() []byte {
	if !pg.valid {
		panic("bufferpool: use of page handle after Unpin")
	}
	return pg.f.data
}

// Unpin releases the handle, marking the page dirty if it was modified.
// The handle becomes invalid.
func (pg *Page) Unpin(dirty bool) {
	if !pg.valid {
		panic("bufferpool: double Unpin")
	}
	pg.valid = false
	pg.pool.releasePin(pg.id, pg.f, dirty)
}

// pinned completes a pin that may have raced with an unpin on the
// evictability flag: whichever of the two handshakes runs last under the
// frame's mu re-derives the flag from the authoritative pin count.
func (p *Pool) pinned(id policy.PageID, f *frame) {
	f.mu.Lock()
	if f.pins() > 0 {
		p.replacer.SetEvictable(id, false)
	}
	f.mu.Unlock()
}

// pinnedRef is pinned for a hit: it runs the zero-crossing handshake and
// records the reference in one fused replacer call (recordPin). The hit
// path holds the pin it just took, so pins is at least 1; the count is
// still re-read under mu to keep the handshake's invariant explicit.
func (p *Pool) pinnedRef(id policy.PageID, f *frame) {
	f.mu.Lock()
	if f.pins() > 0 {
		p.recordPin(id)
	} else {
		p.replacer.RecordAccess(id)
	}
	f.mu.Unlock()
}

// releasePin drops one pin, handing the page to the replacer when the
// count reaches zero and the frame still holds this page. The page check
// reads the frame itself rather than the page table: a frame that was
// repurposed since this pin was taken either holds a different id, is not
// resident, or is pinned by its loader — and a spurious SetEvictable is
// advisory anyway (the replacer ignores unknown pages; eviction
// re-validates with tryClaim).
func (p *Pool) releasePin(id policy.PageID, f *frame, dirty bool) {
	if dirty {
		f.dirty.Store(true)
	}
	n := f.pinAdd(-1)
	if n >= int64(framePinMask) {
		panic(fmt.Sprintf("bufferpool: unpin of unpinned page %d", id))
	}
	if n != 0 {
		return
	}
	f.mu.Lock()
	if f.pins() == 0 && f.state.Load() == frameResident && f.page.Load() == int64(id) {
		p.replacer.SetEvictable(id, true)
	}
	f.mu.Unlock()
}

// frameFor returns the frame currently mapped to id, if any.
func (p *Pool) frameFor(id policy.PageID) *frame {
	sh := p.shardOf(id)
	sh.mu.RLock()
	f := sh.table[id]
	sh.mu.RUnlock()
	return f
}

// NewPage allocates a fresh disk page, pins it in a frame and returns the
// handle.
func (p *Pool) NewPage() (*Page, error) {
	return p.NewPageCtx(context.Background())
}

// NewPageCtx is NewPage with a context: the eviction sweep that makes room
// (dirty-victim write-backs and their retry backoff included) is charged
// against ctx.
func (p *Pool) NewPageCtx(ctx context.Context) (*Page, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f, err := p.obtainFrame(ctx)
	if err != nil {
		return nil, err
	}
	id, err := p.backend.Allocate()
	if err != nil {
		f.state.Store(frameFree)
		p.freePush(f)
		return nil, fmt.Errorf("bufferpool: allocating page: %w", err)
	}
	p.notePage(id)
	// A freshly allocated id starts clean whatever its previous life held.
	p.poisonRemove(id)
	clear(f.data)
	f.page.Store(int64(id))
	f.install()
	f.dirty.Store(false)
	f.err = nil
	f.state.Store(frameResident)
	sh := p.shardOf(id)
	sh.mu.Lock()
	sh.table[id] = f // id is fresh: no prior mapping can exist
	sh.mu.Unlock()
	hotPublish(sh, id, f)
	p.admit(id)
	sh.misses.Add(1) // a new page is by definition not buffer-resident
	return &Page{pool: p, id: id, f: f, valid: true}, nil
}

// Fetch pins page id, reading it from disk on a miss, and returns the
// handle. Concurrent fetches of a non-resident page issue one disk read:
// the first becomes the loader, the rest coalesce onto its in-flight
// frame.
func (p *Pool) Fetch(id policy.PageID) (*Page, error) {
	return p.FetchCtx(context.Background(), id)
}

// FetchCtx is Fetch with a context carrying the caller's deadline. Every
// blocking point honours it: a coalesced waiter whose context expires
// abandons the in-flight load and returns promptly (the loader completes
// and installs the page regardless — see abandonPin for the frame
// accounting), a wait on a victim's write-back is interruptible, and the
// miss path's disk retry backoff is charged against ctx.
func (p *Pool) FetchCtx(ctx context.Context, id policy.PageID) (*Page, error) {
	if p.metrics.FetchLatency == nil {
		return p.fetchCtx(ctx, id)
	}
	start := time.Now()
	pg, err := p.fetchCtx(ctx, id)
	p.metrics.FetchLatency.ObserveSince(start)
	return pg, err
}

func (p *Pool) fetchCtx(ctx context.Context, id policy.PageID) (*Page, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh := p.shardOf(id)
	if pg := p.fetchFast(sh, id); pg != nil {
		// A lock-free hit deliberately records no span even when sampled:
		// the probe path stays untouched by tracing, and a sub-microsecond
		// hit adds nothing to a waterfall.
		return pg, nil
	}
	if p.spans != nil {
		// One ctx.Value probe per slow-path fetch, only with tracing armed.
		// Sampled fetches get a pool_fetch span; everything beneath (miss,
		// coalesce, disk, WAL) parents to it via the re-wrapped context.
		if tc := obs.TraceFrom(ctx); tc.Sampled {
			span := p.spans.Start(tc, obs.SpanPoolFetch)
			pg, err := p.fetchSlow(obs.ContextWithTrace(ctx, span.Context()), sh, id, span.Context())
			span.Finish(int64(id))
			return pg, err
		}
	}
	return p.fetchSlow(ctx, sh, id, obs.TraceContext{})
}

// fetchSlow is the latched fetch loop: table lookup, miss protocol,
// coalesce wait, or latched hit. tc is the enclosing pool_fetch span's
// context (zero when the fetch is unsampled).
func (p *Pool) fetchSlow(ctx context.Context, sh *shard, id policy.PageID, tc obs.TraceContext) (*Page, error) {
	for {
		sh.mu.RLock()
		f := sh.table[id]
		if f == nil {
			sh.mu.RUnlock()
			var missStart time.Time
			if p.metrics.MissLatency != nil {
				missStart = time.Now()
			}
			pg, retry, err := p.fetchMiss(ctx, sh, id, tc)
			if retry {
				continue
			}
			if p.metrics.MissLatency != nil {
				p.metrics.MissLatency.ObserveSince(missStart)
			}
			return pg, err
		}
		switch f.state.Load() {
		case frameWriting:
			// The page is a dirty victim mid write-back; once it completes
			// the page is gone and the fetch restarts as a plain miss.
			done := f.writeDone
			sh.mu.RUnlock()
			select {
			case <-done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue
		case frameLoading:
			// Coalesce onto the in-flight read. The loader's pin keeps the
			// count positive, so no evictability handshake is needed.
			f.pinAdd(1)
			ready := f.ready
			sh.mu.RUnlock()
			var waitStart time.Time
			if p.metrics.CoalesceWait != nil {
				waitStart = time.Now()
			}
			coSpan := p.spans.Start(tc, obs.SpanPoolCoalesce)
			select {
			case <-ready:
				coSpan.Finish(int64(id))
				if p.metrics.CoalesceWait != nil {
					p.metrics.CoalesceWait.ObserveSince(waitStart)
				}
			case <-ctx.Done():
				coSpan.Finish(int64(id))
				// Abandon the load: it was joined (a miss, coalesced), and
				// the loader finishes it on our behalf — abandonPin settles
				// the frame whichever way the load ends.
				sh.misses.Add(1)
				sh.coalesced.Add(1)
				p.abandonPin(sh, id, f)
				return nil, ctx.Err()
			}
			if err := f.err; err != nil {
				// err is captured before the pin drops: the last pin out
				// recycles the frame, after which f.err may be rewritten by
				// the frame's next loader. A failed coalesced fetch is still
				// a miss (the page was not resident); the disk error itself
				// is counted once, by the loader, in ReadErrors.
				sh.misses.Add(1)
				sh.coalesced.Add(1)
				if f.pinAdd(-1) == 0 {
					p.freePush(f)
				}
				return nil, err
			}
			p.replacer.RecordAccess(id)
			sh.misses.Add(1)
			sh.coalesced.Add(1)
			return &Page{pool: p, id: id, f: f, valid: true}, nil
		default: // frameResident: the hit path — shared latch only
			n := f.pinAdd(1)
			hotPublish(sh, id, f)
			sh.mu.RUnlock()
			if n == 1 {
				p.pinnedRef(id, f)
			} else {
				p.replacer.RecordAccess(id)
			}
			sh.hits.Add(1)
			return &Page{pool: p, id: id, f: f, valid: true}, nil
		}
	}
}

// fetchFast is the latch-free resident-hit probe (DESIGN.md §14). It
// consults the shard's hot-slot index, validates page identity and
// residency against the frame itself, and pins with one CAS on the
// packed pin/claim/epoch word. The CAS can only succeed if no claim or
// install touched the frame since the word was read, so a success is a
// valid pin on a resident frame with the data published (the loader's
// state.Store(frameResident) happens-before our state load). Any doubt —
// empty slot, colliding page, claim in progress, lost CAS race — returns
// nil and the latched path takes over.
func (p *Pool) fetchFast(sh *shard, id policy.PageID) *Page {
	f := sh.hot[hotIndex(id)].Load()
	if f == nil {
		return nil
	}
	w := f.pv.Load()
	if w&frameClaimBit != 0 {
		return nil
	}
	if f.page.Load() != int64(id) || f.state.Load() != frameResident {
		return nil
	}
	if !f.pv.CompareAndSwap(w, w+1) {
		return nil
	}
	if w&framePinMask == 0 {
		// First pin in: the evictability handshake and the reference fuse
		// into one replacer interaction, exactly as the latched path's.
		p.pinnedRef(id, f)
	} else {
		p.replacer.RecordAccess(id)
	}
	sh.hits.Add(1)
	sh.fastHits.Add(1)
	return &Page{pool: p, id: id, f: f, valid: true}
}

// abandonPin releases the pin of a coalesced waiter that gave up on an
// in-flight load, with exact frame accounting either way the load ends.
// If the count reaches zero the load has published (the loader holds a pin
// until then), leaving two cases: the load failed (the loader unlinked the
// frame; the last participant out must recycle it, exactly once) or it
// succeeded and every other participant, the loader's caller included, has
// already unpinned (the page must be handed to the replacer as evictable,
// or it could never be chosen again). The table mapping distinguishes
// them, and the classification must be atomic with DeletePage's zero-pin
// check — a delete sliding between our decrement and the table read would
// free the frame first and turn our recycle into a double free. Holding
// the shard latch in shared mode (DeletePage needs it exclusively) pins
// the mapping in place while we decide.
func (p *Pool) abandonPin(sh *shard, id policy.PageID, f *frame) {
	sh.mu.RLock()
	last := f.pinAdd(-1) == 0
	resident := last && sh.table[id] == f
	if last && !resident {
		// Failed load: the frame is table-unreachable and we are the last
		// participant, so no recycle can race this free.
		p.freePush(f)
	}
	sh.mu.RUnlock()
	if !resident {
		return
	}
	// Successful load, count now zero: re-derive evictability exactly as
	// releasePin would, under the frame's mu so it serialises with pin
	// zero-crossings.
	f.mu.Lock()
	if f.pins() == 0 && f.state.Load() == frameResident && f.page.Load() == int64(id) {
		p.replacer.SetEvictable(id, true)
	}
	f.mu.Unlock()
}

// fetchMiss runs the miss protocol: obtain a frame (evicting if needed),
// install it as the in-flight holder for id, then read from disk outside
// every latch and publish. retry is true when another goroutine installed
// the page first and the caller must re-run the fetch.
func (p *Pool) fetchMiss(ctx context.Context, sh *shard, id policy.PageID, tc obs.TraceContext) (pg *Page, retry bool, err error) {
	// A sampled miss gets its own span; disk reads, victim write-backs, and
	// retry sleeps beneath it parent to the miss via the re-wrapped context.
	missSpan := p.spans.Start(tc, obs.SpanPoolMiss)
	if missSpan.ID() != 0 {
		ctx = obs.ContextWithTrace(ctx, missSpan.Context())
		defer missSpan.Finish(int64(id))
	}
	p.notePage(id)
	if kind, bad := p.poisonedKind(id); bad {
		// The page is known unrepairable-corrupt: fail fast with the
		// recorded classification instead of re-reading garbage. Still a
		// miss (the page was not resident) and a read error — but not a
		// fresh detection; that was counted when the page was poisoned.
		sh.misses.Add(1)
		sh.readErrors.Add(1)
		return nil, false, fmt.Errorf("fetching page %d: %w", id, &storage.ErrCorrupt{Page: id, Kind: kind})
	}
	if !p.breaker.Ready(p.backend.StripeOf(id)) {
		// Fail fast while the stripe's circuit is open: no frame is
		// claimed, no victim written back, no waiters queued behind a disk
		// that is not answering. Still a miss — the page was not resident —
		// but no storage attempt is made. A sampled fetch leaves a
		// zero-duration breaker_reject event marking the refusal.
		sh.misses.Add(1)
		sh.readsRejected.Add(1)
		if missSpan.ID() != 0 {
			p.spans.Emit(tc.TraceID, p.spans.NewSpanID(), missSpan.ID(),
				obs.SpanBreakerReject, time.Now(), 0, int64(id))
		}
		return nil, false, fmt.Errorf("fetching page %d: %w", id, ErrDiskUnavailable)
	}
	f, err := p.obtainFrame(ctx)
	if err != nil {
		return nil, false, err
	}
	sh.mu.Lock()
	if sh.table[id] != nil {
		// Lost the install race; rejoin as a hit or coalesced miss.
		sh.mu.Unlock()
		p.freePush(f)
		return nil, true, nil
	}
	f.page.Store(int64(id))
	f.install()
	f.dirty.Store(false)
	f.err = nil
	f.ready = make(chan struct{})
	f.state.Store(frameLoading)
	sh.table[id] = f
	sh.mu.Unlock()

	// The I/O happens outside the latch — through the breaker, the
	// transient-fault retry ladder, and on detected corruption the
	// read-repair protocol (loadPage), with backoff charged against ctx;
	// concurrent fetches of id find the loading frame and wait on ready,
	// everyone else proceeds untouched.
	if rerr := p.loadPage(ctx, id, f.data); rerr != nil {
		// Publish the error before the table delete becomes observable:
		// the shard latch orders f.err ahead of the deletion for latched
		// readers, and close(ready) publishes it to the parked waiters. A
		// failed load is still a miss — the page was not resident — and
		// counts once in ReadErrors (or ReadsRejected, when the breaker
		// refused the attempt without touching the disk).
		err := fmt.Errorf("fetching page %d: %w", id, rerr)
		f.err = err
		sh.mu.Lock()
		delete(sh.table, id)
		sh.mu.Unlock()
		close(f.ready)
		sh.misses.Add(1)
		sh.countReadFailure(rerr)
		// Waiters that pinned before the table delete still hold the frame;
		// the last participant out returns it to the free list (after which
		// the frame, f.err included, belongs to its next owner).
		if f.pinAdd(-1) == 0 {
			p.freePush(f)
		}
		return nil, false, err
	}
	p.admit(id)
	f.state.Store(frameResident)
	close(f.ready)
	hotPublish(sh, id, f)
	sh.misses.Add(1)
	return &Page{pool: p, id: id, f: f, valid: true}, false, nil
}

func (p *Pool) freePop() *frame {
	p.freeMu.Lock()
	defer p.freeMu.Unlock()
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	return nil
}

func (p *Pool) freePush(f *frame) {
	f.state.Store(frameFree)
	p.freeMu.Lock()
	p.free = append(p.free, f)
	p.freeMu.Unlock()
}

// maxWriteBackFailures bounds how many distinct dirty victims may fail
// their write-back within one obtainFrame sweep before the caller's
// operation is failed with the joined errors.
const maxWriteBackFailures = 4

// deferredVictim is a victim whose eviction was abandoned mid-sweep
// because its write-back failed; it is restored to the replacer only once
// the sweep ends, so Evict cannot hand the same poisoned page straight
// back within the sweep.
type deferredVictim struct {
	id policy.PageID
	f  *frame
}

// obtainFrame returns an exclusively owned frame, evicting a victim (with
// write-back if dirty, outside every latch) when none is free. The sweep —
// its write-backs and their retry backoff included — is charged against
// ctx: a cancelled caller stops evicting.
//
// A victim whose dirty write-back fails does not fail the caller: the page
// is restored to residency (its only copy is the in-memory one),
// quarantined, and the sweep moves on to the next victim, up to
// maxWriteBackFailures failures. Quarantined pages are retried by the
// background writer and later sweeps and flushes.
func (p *Pool) obtainFrame(ctx context.Context) (*frame, error) {
	if f := p.freePop(); f != nil {
		return f, nil
	}
	var (
		werrs    []error
		deferred []deferredVictim
		examined int64
	)
	// Failed victims re-enter the replacer only at sweep end, whichever way
	// the sweep exits. The sweep length is recorded however the sweep ends
	// (the fast free-list path above never reaches here, so every recorded
	// sweep actually consulted the replacer).
	defer func() {
		for _, dv := range deferred {
			p.restoreVictim(dv.id, dv.f)
		}
		p.metrics.SweepLength.Observe(examined)
	}()
	for {
		if err := ctx.Err(); err != nil {
			if len(werrs) > 0 {
				return nil, fmt.Errorf("bufferpool: eviction sweep cancelled: %w",
					errors.Join(append(werrs, err)...))
			}
			return nil, err
		}
		victim, ok := p.replacer.Evict()
		if ok {
			examined++
		} else {
			// A failed load or a DeletePage may have freed a frame since the
			// first check.
			if f := p.freePop(); f != nil {
				return f, nil
			}
			if len(werrs) > 0 {
				return nil, fmt.Errorf("bufferpool: no evictable victim could be written back: %w",
					errors.Join(werrs...))
			}
			return nil, ErrNoFreeFrame
		}
		sh := p.shardOf(victim)
		sh.mu.Lock()
		f := sh.table[victim]
		if f == nil || f.state.Load() != frameResident || !f.tryClaim() {
			// The page vanished or was re-pinned between the replacer's
			// choice and our latch; hand it back and pick another victim.
			// The latched paths cannot pin while we hold the exclusive
			// latch, and tryClaim atomically excludes the lock-free probes:
			// once it succeeds no new pin can appear.
			sh.mu.Unlock()
			if f != nil {
				p.restoreVictim(victim, f)
			}
			continue
		}
		hotClear(sh, victim, f)
		if !f.dirty.Load() {
			delete(sh.table, victim)
			// Leave frameResident behind: the claimed frame is about to be
			// repurposed, and a stale resident state could let a colliding
			// probe pin it between its next install and state store.
			f.state.Store(frameFree)
			sh.mu.Unlock()
			sh.evictions.Add(1)
			p.stampEviction(ctx, victim)
			return f, nil
		}
		// Dirty victim: transition to frameWriting so the entry stays
		// visible (a concurrent fetch of this page must wait, not read the
		// stale disk copy), then write back outside the latch.
		f.state.Store(frameWriting)
		f.writeDone = make(chan struct{})
		sh.mu.Unlock()
		werr := p.writePage(ctx, victim, f.data)
		sh.mu.Lock()
		if werr != nil {
			// Restore residency — the data is still only in memory — then
			// quarantine the page and try the next victim instead of
			// failing the caller's unrelated fetch. The unclaim must happen
			// under the exclusive latch, before any latched path can pin
			// the page again, so its epoch bump cannot clobber a pin.
			f.unclaim()
			f.state.Store(frameResident)
			close(f.writeDone)
			sh.mu.Unlock()
			sh.countWriteFailure(werr)
			p.quarantineAdd(victim)
			werrs = append(werrs, fmt.Errorf("writing back victim %d: %w", victim, werr))
			deferred = append(deferred, deferredVictim{id: victim, f: f})
			if len(werrs) >= maxWriteBackFailures {
				return nil, fmt.Errorf("bufferpool: giving up after %d failed write-backs: %w",
					len(werrs), errors.Join(werrs...))
			}
			continue
		}
		delete(sh.table, victim)
		close(f.writeDone)
		sh.mu.Unlock()
		f.dirty.Store(false)
		p.quarantineRemove(victim)
		sh.writeBacks.Add(1)
		sh.evictions.Add(1)
		p.stampEviction(ctx, victim)
		return f, nil
	}
}

// stampEviction reports an eviction performed on behalf of a traced
// operation to the EvictionStamp hook, linking eviction-trace records to
// the trace that caused them. No-op without the hook or without a trace
// on ctx.
func (p *Pool) stampEviction(ctx context.Context, victim policy.PageID) {
	if p.evictionStamp == nil {
		return
	}
	if tc := obs.TraceFrom(ctx); tc.TraceID != 0 {
		p.evictionStamp(victim, tc.TraceID)
	}
}

func (p *Pool) quarantineAdd(id policy.PageID) {
	p.quarMu.Lock()
	p.quarantined[id] = struct{}{}
	p.quarMu.Unlock()
	// Wake the background writer (if running); the buffered kick makes the
	// wake-up lossless without blocking this failure path.
	select {
	case p.writerKick <- struct{}{}:
	default:
	}
}

func (p *Pool) quarantineRemove(id policy.PageID) {
	p.quarMu.Lock()
	delete(p.quarantined, id)
	p.quarMu.Unlock()
}

// Quarantined returns the number of resident pages whose most recent dirty
// write-back failed. Such pages keep their data in memory and are retried
// on later eviction sweeps and flushes; a successful write-back, flush or
// delete removes them from quarantine.
func (p *Pool) Quarantined() int {
	p.quarMu.Lock()
	defer p.quarMu.Unlock()
	return len(p.quarantined)
}

// BreakerOpenStripes returns how many storage stripes currently have an
// open circuit (fail-fast; past-cooldown stripes count until a probe closes
// them). Zero when the breaker is disabled.
func (p *Pool) BreakerOpenStripes() int { return p.breaker.OpenStripes() }

// restoreVictim re-registers a page in the replacer after an eviction
// attempt was abandoned (the page was pinned, or its write-back failed):
// Evict had already removed it, and without re-registration the page could
// never be chosen again. Restore reinstates residency without fabricating
// a reference — recording a phantom access here would reset the page's
// Backward K-distance and could keep an otherwise-cold page resident. The
// handshake runs under the frame's mu so it serialises with pin-count
// zero-crossings.
func (p *Pool) restoreVictim(id policy.PageID, f *frame) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p.frameFor(id) != f {
		return // the page moved on (deleted or reloaded elsewhere)
	}
	p.replacer.Restore(id)
	p.replacer.SetEvictable(id, f.pins() == 0 && f.state.Load() == frameResident)
}

// pinResident pins page id if it is resident (waiting out any in-flight
// load or write-back, interruptibly), without touching hit/miss accounting
// or recording a reference. Maintenance paths (flush, the background
// writer) use it. A false return means the page is not resident or ctx
// expired while waiting.
func (p *Pool) pinResident(ctx context.Context, id policy.PageID) (*frame, bool) {
	sh := p.shardOf(id)
	for {
		sh.mu.RLock()
		f := sh.table[id]
		if f == nil {
			sh.mu.RUnlock()
			return nil, false
		}
		switch f.state.Load() {
		case frameWriting:
			done := f.writeDone
			sh.mu.RUnlock()
			select {
			case <-done:
			case <-ctx.Done():
				return nil, false
			}
			continue
		case frameLoading:
			f.pinAdd(1)
			ready := f.ready
			sh.mu.RUnlock()
			select {
			case <-ready:
			case <-ctx.Done():
				p.abandonPin(sh, id, f)
				return nil, false
			}
			if f.err != nil {
				if f.pinAdd(-1) == 0 {
					p.freePush(f)
				}
				return nil, false
			}
			return f, true
		default:
			n := f.pinAdd(1)
			sh.mu.RUnlock()
			if n == 1 {
				p.pinned(id, f)
			}
			return f, true
		}
	}
}

// flushFrame writes the pinned frame back if dirty. The dirty bit is
// cleared before the write so a concurrent modification is not lost: it
// re-marks the page dirty and a later flush or eviction persists it.
// flushMu serialises concurrent flushers of the same frame (the background
// writer, FlushPage, a flush sweep), so a nil return means the frame's
// data was durably on disk at some point during the call — never that
// another flusher's still-undecided write looked clean in passing.
func (p *Pool) flushFrame(ctx context.Context, id policy.PageID, f *frame) error {
	f.flushMu.Lock()
	defer f.flushMu.Unlock()
	if !f.dirty.Load() {
		// Clean under flushMu means the last write genuinely completed (or
		// the page was never written since load): nothing to retry, so clear
		// any stale quarantine entry.
		p.quarantineRemove(id)
		return nil
	}
	f.dirty.Store(false)
	if err := p.writePage(ctx, id, f.data); err != nil {
		f.dirty.Store(true)
		p.shardOf(id).countWriteFailure(err)
		return fmt.Errorf("flushing page %d: %w", id, err)
	}
	p.shardOf(id).writeBacks.Add(1)
	p.quarantineRemove(id)
	return nil
}

// FlushPage writes page id back to storage if dirty. The page stays
// resident.
func (p *Pool) FlushPage(id policy.PageID) error {
	return p.FlushPageCtx(context.Background(), id)
}

// FlushPageCtx is FlushPage charged against ctx: the write-back and its
// retry backoff observe the caller's deadline. On a durable backend a nil
// return means the page image has reached the write-ahead log (group
// commit included), which is the backend's acknowledged-write contract.
func (p *Pool) FlushPageCtx(ctx context.Context, id policy.PageID) error {
	if p.closed.Load() {
		return ErrClosed
	}
	f, ok := p.pinResident(ctx, id)
	if !ok {
		return fmt.Errorf("flush page %d: %w", id, ErrPageNotResident)
	}
	defer p.releasePin(id, f, false)
	return p.flushFrame(ctx, id, f)
}

// FlushAll writes every dirty resident page back to storage and then asks
// the backend for its durability barrier (storage.Backend.Flush — a
// checkpoint, on the durable file backend). A failed write-back does not
// stop the sweep: every shard is visited, every flushable page flushed, and
// the failures are returned joined (errors.Is unwraps them individually).
// Failed pages stay dirty and resident, so a retry after the fault clears
// loses nothing. The barrier runs only when the sweep completed cleanly: a
// checkpoint must not declare durability over pages whose write-back
// failed.
func (p *Pool) FlushAll() error {
	if p.closed.Load() {
		return ErrClosed
	}
	return p.flushAll(context.Background())
}

// FlushAllCtx is FlushAll charged against ctx: write-backs and their retry
// backoff observe the deadline, and an expired context ends the sweep
// early (the cancellation is reported in the joined error; unreached pages
// simply stay dirty and resident).
func (p *Pool) FlushAllCtx(ctx context.Context) error {
	if p.closed.Load() {
		return ErrClosed
	}
	return p.flushAll(ctx)
}

func (p *Pool) flushAll(ctx context.Context) error {
	var errs []error
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.RLock()
		ids := make([]policy.PageID, 0, len(sh.table))
		for id := range sh.table {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
		for _, id := range ids {
			if err := ctx.Err(); err != nil {
				errs = append(errs, fmt.Errorf("bufferpool: flush sweep cancelled: %w", err))
				return errors.Join(errs...)
			}
			f, ok := p.pinResident(ctx, id)
			if !ok {
				continue // evicted or deleted meanwhile; nothing to flush
			}
			if err := p.flushFrame(ctx, id, f); err != nil {
				errs = append(errs, err)
			}
			p.releasePin(id, f, false)
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	if err := p.backend.Flush(ctx); err != nil {
		return fmt.Errorf("bufferpool: storage flush barrier: %w", err)
	}
	return nil
}

// DeletePage evicts page id from the pool (it must be unpinned) and
// deallocates it on disk.
func (p *Pool) DeletePage(id policy.PageID) error {
	if p.closed.Load() {
		return ErrClosed
	}
	sh := p.shardOf(id)
	for {
		sh.mu.Lock()
		f := sh.table[id]
		if f == nil {
			sh.mu.Unlock()
			break
		}
		if f.state.Load() == frameWriting {
			done := f.writeDone
			sh.mu.Unlock()
			<-done
			continue
		}
		if f.state.Load() == frameLoading || !f.tryClaim() {
			sh.mu.Unlock()
			return fmt.Errorf("bufferpool: delete of pinned page %d", id)
		}
		// Remove from the replacer while still holding the latch: once the
		// table entry is gone a concurrent fetch could re-load the page, and
		// a late Remove would strip the new residency's registration. The
		// claim excludes lock-free probes, exactly as in eviction.
		p.replacer.Remove(id)
		hotClear(sh, id, f)
		delete(sh.table, id)
		f.state.Store(frameFree)
		sh.mu.Unlock()
		f.dirty.Store(false)
		p.quarantineRemove(id)
		p.freePush(f)
		break
	}
	p.poisonRemove(id)
	return p.backend.Deallocate(id)
}

// Stats returns a snapshot of pool counters, aggregated from the per-shard
// atomics without a global lock. Under concurrent load the counters are
// individually exact but not mutually consistent.
func (p *Pool) Stats() Stats {
	var s Stats
	for i := range p.shards {
		sh := &p.shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Coalesced += sh.coalesced.Load()
		s.Evictions += sh.evictions.Load()
		s.WriteBacks += sh.writeBacks.Load()
		s.ReadErrors += sh.readErrors.Load()
		s.WriteErrors += sh.writeErrors.Load()
		s.ReadRetries += sh.readRetries.Load()
		s.WriteRetries += sh.writeRetries.Load()
		s.ReadsRejected += sh.readsRejected.Load()
		s.WritesRejected += sh.writesRejected.Load()
	}
	s.BreakerTrips = p.breaker.Trips()
	s.CorruptDetected = p.corruptDetected.Load()
	s.CorruptRepaired = p.corruptRepaired.Load()
	s.CorruptQuarantined = p.corruptQuarantined.Load()
	s.ScrubPages = p.scrubPages.Load()
	s.ScrubCorrupt = p.scrubCorrupt.Load()
	return s
}

// FastHits returns how many hits were served by the latch-free probe — a
// subset of Stats().Hits, kept out of Stats so the pool's accounting
// remains field-for-field comparable with the Serial reference pool.
func (p *Pool) FastHits() uint64 {
	var n uint64
	for i := range p.shards {
		n += p.shards[i].fastHits.Load()
	}
	return n
}

// NumFrames returns the pool capacity in frames.
func (p *Pool) NumFrames() int { return len(p.frames) }

// NumShards returns the number of page-table latch partitions.
func (p *Pool) NumShards() int { return len(p.shards) }

// Resident reports whether page id currently occupies a frame (including
// one whose read is still in flight, but not a victim mid write-back).
func (p *Pool) Resident(id policy.PageID) bool {
	sh := p.shardOf(id)
	sh.mu.RLock()
	f := sh.table[id]
	resident := f != nil && f.state.Load() != frameWriting
	sh.mu.RUnlock()
	return resident
}
