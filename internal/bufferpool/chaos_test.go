package bufferpool

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/policy"
	"repro/internal/stats"
)

// TestChaosFaultStorm replays a seeded multi-goroutine trace against a
// small pool while the disk injects a fault storm: one permanently
// poisoned page (every write-back fails until the storm ends) plus a 5%
// probabilistic fault rate on all reads and writes. Individual operations
// are allowed to fail — the pool is not. After the storm clears the test
// asserts the pool's invariants:
//
//   - frame accounting is exact: free + table-reachable == NumFrames
//     (nothing leaked by a failed load or write-back, nothing double-freed
//     by racing waiters);
//   - no committed update is lost: FlushAll succeeds and every page's disk
//     image carries the owner's last in-memory write, including the
//     poisoned page's;
//   - the quarantine drains to empty once write-backs succeed again;
//   - the counters reconcile with the disk's: every injected fault the
//     pool saw is accounted, reads on disk equal non-coalesced,
//     non-faulted misses, and writes on disk equal successful write-backs.
//
// Run it under -race; the storm drives the write-back failure, deferred
// restore, and coalesced-error paths from many goroutines at once.
func TestChaosFaultStorm(t *testing.T) {
	const (
		goroutines = 8
		pages      = 128
		frames     = 32
		opsPerG    = 3000
		seed       = 42
	)
	d := disk.NewManager(disk.ServiceModel{})
	ids := make([]policy.PageID, pages)
	committed := make([]uint64, pages) // guarded by owner goroutine, read after Wait
	buf := make([]byte, disk.PageSize)
	for i := range ids {
		ids[i] = d.Allocate()
		committed[i] = uint64(1000 + i)
		binary.LittleEndian.PutUint64(buf, committed[i])
		if err := d.Write(ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	poison := ids[0]
	d.SetFaults(disk.NewFaultPlan(seed,
		disk.FaultRule{Op: disk.OpWrite, Pages: []policy.PageID{poison}},
		disk.FaultRule{Probability: 0.05},
	))

	p := NewWithConfig(d, frames, core.NewShardedReplacer(8, 2, core.Options{}), Config{Shards: 16})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(g))
			for op := 0; op < opsPerG; op++ {
				i := rng.Intn(pages)
				id := ids[i]
				own := i%goroutines == g
				if own && op%64 == 63 {
					// Occasional explicit flush of an owned page; failures are
					// part of the storm.
					_ = p.FlushPage(id)
					continue
				}
				pg, err := p.Fetch(id)
				if err != nil {
					// Injected faults and exhausted sweeps are expected storm
					// casualties; anything else is a pool bug.
					if !errors.Is(err, disk.ErrInjectedFault) && !errors.Is(err, ErrNoFreeFrame) {
						t.Errorf("goroutine %d: fetch %d: %v", g, id, err)
					}
					continue
				}
				if own {
					// Only the owner touches page bytes, so page data needs no
					// lock of its own; everyone else contends on pool structures.
					v := committed[i] + 1
					binary.LittleEndian.PutUint64(pg.Data(), v)
					committed[i] = v
					pg.Unpin(true)
				} else {
					pg.Unpin(false)
				}
			}
		}(g)
	}
	wg.Wait()

	// Storm over: clear the plan and verify the pool survived it intact.
	d.SetFaults(nil)
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after the storm: %v", err)
	}
	if got := p.Quarantined(); got != 0 {
		t.Errorf("Quarantined = %d after recovery flush, want 0", got)
	}
	free, tabled := frameAccounting(p)
	if free+tabled != p.NumFrames() {
		t.Errorf("frame accounting: %d free + %d resident != %d frames", free, tabled, p.NumFrames())
	}

	// Snapshot both ledgers before the verification reads below add to them.
	s, ds := p.Stats(), d.Stats()

	// No lost updates: every page's durable image is its owner's last
	// committed value — the poisoned page included, now that its quarantined
	// write-back finally went through.
	for i, id := range ids {
		if err := d.Read(id, buf); err != nil {
			t.Fatalf("post-storm read of page %d: %v", id, err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != committed[i] {
			t.Errorf("page %d: disk holds %d, owner committed %d (lost update)", id, got, committed[i])
		}
	}

	// Counter reconciliation against the disk's own ledger.
	if s.ReadErrors != ds.ReadFaults {
		t.Errorf("pool counted %d read errors, disk injected %d read faults", s.ReadErrors, ds.ReadFaults)
	}
	if s.WriteErrors != ds.WriteFaults {
		t.Errorf("pool counted %d write errors, disk injected %d write faults", s.WriteErrors, ds.WriteFaults)
	}
	// Every disk read is a miss that neither coalesced nor faulted (the
	// trace allocates pages directly, so there are no new-page misses).
	if want := s.Misses - s.Coalesced - s.ReadErrors; ds.Reads != want {
		t.Errorf("disk reads = %d, want misses-coalesced-readErrors = %d", ds.Reads, want)
	}
	// Every disk write beyond the trace's preload is a successful write-back.
	if want := uint64(pages) + s.WriteBacks; ds.Writes != want {
		t.Errorf("disk writes = %d, want preload+writeBacks = %d", ds.Writes, want)
	}
	if s.Hits == 0 || s.Misses == 0 || s.WriteErrors == 0 || s.ReadErrors == 0 || s.WriteBacks == 0 {
		t.Errorf("storm did not exercise all paths: %+v", s)
	}
}
