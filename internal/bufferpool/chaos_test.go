package bufferpool

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/file"
	"repro/internal/storage/sim"
)

// stormPlan is the steady-state fault plan of the chaos storm: one
// permanently poisoned page (every write-back fails) plus a 5%
// probabilistic fault rate on all reads and writes.
func stormPlan(seed uint64, poison policy.PageID) *storage.FaultPlan {
	return storage.NewFaultPlan(seed,
		storage.FaultRule{Op: storage.OpWrite, Pages: []policy.PageID{poison}},
		storage.FaultRule{Probability: 0.05},
	)
}

// TestChaosFaultStorm replays a seeded multi-goroutine trace against a
// small pool while the disk injects a fault storm: one permanently
// poisoned page (every write-back fails until the storm ends) plus a 5%
// probabilistic fault rate on all reads and writes. Retry and the circuit
// breaker are armed, the background writer runs, a slice of operations
// carries already-expired or tightly-deadlined contexts (exercising the
// waiter-abandon paths mid-storm), and halfway through one worker blacks
// the disk out completely until the breaker trips. Individual operations
// are allowed to fail — the pool is not. After the storm clears the test
// asserts the pool's invariants:
//
//   - frame accounting is exact: free + table-reachable == NumFrames
//     (nothing leaked by a failed load, an abandoned waiter, or a failed
//     write-back; nothing double-freed by racing waiters);
//   - no committed update is lost: flushes succeed once the disk heals and
//     every page's disk image carries the owner's last in-memory write,
//     including the poisoned page's;
//   - the quarantine drains to empty once write-backs succeed again;
//   - the breaker tripped during the blackout and the pool recovered
//     through half-open probes afterwards;
//   - the counters reconcile exactly with the disk's ledger: every
//     injected fault is a retry or a counted error, every breaker refusal
//     a rejection, every disk read a non-coalesced non-failed miss, every
//     disk write beyond the preload a successful write-back.
//
// Run it under -race; the storm drives the write-back failure, deferred
// restore, coalesced-error, abandonment, and breaker paths from many
// goroutines at once.
//
// The storm runs over each backend — the in-memory simulator and the
// durable file store — crossed with each replacer configuration: the
// eagerly-locked ShardedReplacer and the same replacer behind the Batched
// access buffers. The invariants are configuration-agnostic: the fault
// wrapper, retry, breaker, and quarantine sit above the storage interface
// and must reconcile identically whether the pages live in RAM or in a
// WAL-protected page file — and the exact ledger reconciliation must
// survive buffered policy events draining mid-storm (stale buffered hits
// for evicted pages, flush-on-evict racing the blackout, restore after a
// poisoned write-back landing on an undrained slot).
func TestChaosFaultStorm(t *testing.T) {
	replacers := []struct {
		name string
		mk   func() Replacer
	}{
		{"sharded", func() Replacer {
			return core.NewShardedReplacer(8, 2, core.Options{})
		}},
		{"batched", func() Replacer {
			// Small slots so the storm forces many mid-flight drains rather
			// than flush-only draining.
			return core.NewBatched(core.NewShardedReplacer(8, 2, core.Options{}),
				core.BatchConfig{Capacity: 32})
		}},
	}
	for _, r := range replacers {
		t.Run(r.name, func(t *testing.T) {
			t.Run("sim", func(t *testing.T) {
				runChaosFaultStorm(t, sim.New(sim.ServiceModel{}), true, r.mk())
			})
			t.Run("file", func(t *testing.T) {
				s, err := file.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				// No deadline-carrying contexts over the file store: its operations
				// take real wall-clock time (fsync, latch waits), so a microsecond
				// deadline can expire inside the backend and surface as an error no
				// fault was injected for, which would break the exact fault-ledger
				// reconciliation below. Already-cancelled contexts stay in: they are
				// rejected before the disk is touched.
				runChaosFaultStorm(t, s, false, r.mk())
			})
		})
	}
}

func runChaosFaultStorm(t *testing.T, base storage.Backend, withDeadlines bool, replacer Replacer) {
	const (
		goroutines = 8
		pages      = 128
		frames     = 32
		opsPerG    = 3000
		seed       = 42
	)
	leakcheck.Check(t)
	d := storage.WithFaults(base)
	ids := make([]policy.PageID, pages)
	committed := make([]uint64, pages) // guarded by owner goroutine, read after Wait
	buf := make([]byte, storage.PageSize)
	for i := range ids {
		ids[i] = storage.MustAllocate(d)
		committed[i] = uint64(1000 + i)
		binary.LittleEndian.PutUint64(buf, committed[i])
		if err := d.Write(context.Background(), ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	// tripTarget is fetched only during the blackout, to drive consecutive
	// failures onto one stripe; it never becomes resident.
	tripTarget := storage.MustAllocate(d)
	preload := uint64(pages) // writes on disk before the storm starts

	poison := ids[0]
	d.SetFaults(stormPlan(seed, poison))

	p := NewWithConfig(d, frames, replacer, Config{
		Shards: 16,
		Retry: RetryConfig{
			Attempts:  3,
			BaseDelay: 20 * time.Microsecond,
			MaxDelay:  100 * time.Microsecond,
			Seed:      seed,
		},
		Breaker: BreakerConfig{
			Threshold: 8,
			Cooldown:  2 * time.Millisecond,
			Probes:    2,
		},
		WriterInterval: time.Millisecond,
	})
	p.Start()

	expectedErr := func(err error) bool {
		return errors.Is(err, storage.ErrInjectedFault) ||
			errors.Is(err, ErrNoFreeFrame) ||
			errors.Is(err, ErrDiskUnavailable) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(seed + uint64(g))
			for op := 0; op < opsPerG; op++ {
				if g == 0 && op == opsPerG/2 {
					// Mid-storm blackout: every disk operation fails until the
					// breaker on tripTarget's stripe opens, then the storm
					// resumes at its usual 5%.
					d.SetFaults(storage.NewFaultPlan(seed, storage.FaultRule{}))
					tripped := false
					for i := 0; i < 10000; i++ {
						_, err := p.Fetch(tripTarget)
						if err == nil {
							t.Error("fetch succeeded during total blackout")
							break
						}
						if errors.Is(err, ErrDiskUnavailable) {
							tripped = true
							break
						}
					}
					if !tripped {
						t.Error("breaker did not trip during the blackout")
					}
					d.SetFaults(stormPlan(seed+1, poison))
					continue
				}
				i := rng.Intn(pages)
				id := ids[i]
				own := i%goroutines == g
				if own && op%64 == 63 {
					// Occasional explicit flush of an owned page; failures are
					// part of the storm.
					_ = p.FlushPage(id)
					continue
				}
				// A slice of fetches carries a context that is already dead or
				// about to die, driving the abandon and early-reject paths.
				ctx := context.Background()
				var cancel context.CancelFunc
				switch rng.Intn(16) {
				case 0:
					ctx, cancel = context.WithCancel(ctx)
					cancel()
				case 1:
					if withDeadlines {
						ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
					}
				}
				pg, err := p.FetchCtx(ctx, id)
				if cancel != nil {
					cancel()
				}
				if err != nil {
					// Injected faults, exhausted sweeps, open circuits, and
					// expired contexts are expected storm casualties; anything
					// else is a pool bug.
					if !expectedErr(err) {
						t.Errorf("goroutine %d: fetch %d: %v", g, id, err)
					}
					continue
				}
				if own {
					// Only the owner touches page bytes, so page data needs no
					// lock of its own; everyone else contends on pool structures.
					v := committed[i] + 1
					binary.LittleEndian.PutUint64(pg.Data(), v)
					committed[i] = v
					pg.Unpin(true)
				} else {
					pg.Unpin(false)
				}
			}
		}(g)
	}
	wg.Wait()

	// Storm over: heal the disk. Circuits may still be open, so recovery is
	// a poll — half-open probes re-admit traffic, then a full flush goes
	// through and the quarantine (drained concurrently by the background
	// writer) empties.
	d.SetFaults(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := p.FlushAll()
		if err == nil && p.Quarantined() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool did not recover after the storm: flush err %v, quarantined %d", err, p.Quarantined())
		}
		time.Sleep(time.Millisecond)
	}
	free, tabled := frameAccounting(p)
	if free+tabled != p.NumFrames() {
		t.Errorf("frame accounting: %d free + %d resident != %d frames", free, tabled, p.NumFrames())
	}

	// Snapshot both ledgers before the verification reads below add to them.
	s, ds := p.Stats(), d.Stats()

	// No lost updates: every page's durable image is its owner's last
	// committed value — the poisoned page included, now that its quarantined
	// write-back finally went through.
	for i, id := range ids {
		if err := d.Read(context.Background(), id, buf); err != nil {
			t.Fatalf("post-storm read of page %d: %v", id, err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != committed[i] {
			t.Errorf("page %d: disk holds %d, owner committed %d (lost update)", id, got, committed[i])
		}
	}

	// Counter reconciliation against the disk's own ledger: every injected
	// fault was either retried or counted as a logical failure, exactly once.
	if s.ReadRetries+s.ReadErrors != ds.ReadFaults {
		t.Errorf("pool counted %d read retries + %d read errors, disk injected %d read faults",
			s.ReadRetries, s.ReadErrors, ds.ReadFaults)
	}
	if s.WriteRetries+s.WriteErrors != ds.WriteFaults {
		t.Errorf("pool counted %d write retries + %d write errors, disk injected %d write faults",
			s.WriteRetries, s.WriteErrors, ds.WriteFaults)
	}
	// Every disk read is a miss that neither coalesced, failed, nor was
	// refused by the breaker (the trace allocates pages directly, so there
	// are no new-page misses).
	if want := s.Misses - s.Coalesced - s.ReadErrors - s.ReadsRejected; ds.Reads != want {
		t.Errorf("disk reads = %d, want misses-coalesced-readErrors-readsRejected = %d", ds.Reads, want)
	}
	// Every disk write beyond the trace's preload is a successful write-back.
	if want := preload + s.WriteBacks; ds.Writes != want {
		t.Errorf("disk writes = %d, want preload+writeBacks = %d", ds.Writes, want)
	}
	if s.BreakerTrips == 0 {
		t.Error("blackout did not trip the breaker")
	}
	if s.Hits == 0 || s.Misses == 0 || s.WriteErrors == 0 || s.ReadErrors == 0 ||
		s.WriteBacks == 0 || s.ReadRetries == 0 || s.ReadsRejected == 0 {
		t.Errorf("storm did not exercise all paths: %+v", s)
	}

	if err := p.Close(); err != nil {
		t.Errorf("Close after recovery: %v", err)
	}
}
