package bufferpool

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/file"
	"repro/internal/storage/sim"
)

// batchedTraceOptions enables both §2.1 periods, so the differential traces
// below exercise correlated-reference collapse and the retention purge
// through the batched drain path, not just plain touches.
var batchedTraceOptions = core.Options{
	CorrelatedReferencePeriod: 3,
	RetainedInformationPeriod: 200,
}

// batchedTraceStep is one scripted operation of the differential traces.
type batchedTraceStep struct {
	id    policy.PageID
	dirty bool
	flush bool
}

func batchedTraceScript(pages, refs int) []batchedTraceStep {
	r := stats.NewRNG(11)
	script := make([]batchedTraceStep, refs)
	for i := range script {
		var id policy.PageID
		if i%2 == 0 {
			id = policy.PageID(r.Intn(40)) // hot set
		} else {
			id = policy.PageID(40 + r.Intn(pages-40))
		}
		script[i] = batchedTraceStep{id: id, dirty: i%7 == 6, flush: i%997 == 996}
	}
	return script
}

// TestBatchedPoolMatchesSerialOnDeterministicTrace replays one deterministic
// single-threaded trace through the Serial reference pool and through the
// concurrent Pool with access batching ENABLED (core.Batched over a
// single-slot SyncReplacer), over both storage backends. After a final
// drain, every pool counter and every policy counter must agree exactly:
// the batch buffers stamp references at arrival and each underlying table
// replays its exact FIFO, so batching must be observationally invisible on
// a serialisable history — including the correlated-reference collapses and
// retention purges the enabled §2.1 periods produce.
func TestBatchedPoolMatchesSerialOnDeterministicTrace(t *testing.T) {
	const (
		frames = 50
		pages  = 800
		refs   = 40000
	)
	script := batchedTraceScript(pages, refs)

	type outcome struct {
		pool   Stats
		policy core.PolicyStats
	}
	run := func(t *testing.T, open func() storage.Backend, build func(storage.Backend) (fetcherPool, func() core.PolicyStats)) outcome {
		d := open()
		for i := 0; i < pages; i++ {
			storage.MustAllocate(d)
		}
		p, policyStats := build(d)
		for _, st := range script {
			pg, err := p.Fetch(st.id)
			if err != nil {
				t.Fatal(err)
			}
			if st.dirty {
				pg.Data()[0]++
			}
			pg.Unpin(st.dirty)
			if st.flush {
				if err := p.FlushPage(st.id); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
		// policyStats drains any still-buffered events (core.Batched
		// flushes on every stats read), so the comparison below is over
		// fully-reconciled state.
		return outcome{p.PoolStats(), policyStats()}
	}

	backends := []struct {
		name string
		open func() storage.Backend
	}{
		{"sim", func() storage.Backend { return sim.New(sim.ServiceModel{}) }},
		{"file", func() storage.Backend {
			s, err := file.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
	for _, be := range backends {
		t.Run(be.name, func(t *testing.T) {
			want := run(t, be.open, func(d storage.Backend) (fetcherPool, func() core.PolicyStats) {
				r := core.NewReplacer(2, batchedTraceOptions)
				return serialFetcher{NewSerial(d, frames, r)}, r.PolicyStats
			})
			got := run(t, be.open, func(d storage.Backend) (fetcherPool, func() core.PolicyStats) {
				b := core.NewBatched(core.NewSyncReplacer(2, batchedTraceOptions), core.BatchConfig{})
				return poolFetcher{NewWithConfig(d, frames, b, Config{Shards: 8})}, b.PolicyStats
			})
			if got.pool != want.pool {
				t.Errorf("batched pool stats %+v, want serial %+v", got.pool, want.pool)
			}
			if got.policy != want.policy {
				t.Errorf("batched policy stats %+v, want serial %+v", got.policy, want.policy)
			}
			if got.policy.Collapses == 0 || got.policy.Purges == 0 {
				t.Errorf("trace did not exercise collapse+purge paths: %+v", got.policy)
			}
		})
	}
}

// TestBatchedShardedMatchesUnbatchedSharded replays the same deterministic
// trace through two concurrent pools built on the identical ShardedReplacer
// geometry, one direct and one behind core.Batched. Sharded victim order
// differs from Serial's global order, so the reference here is the
// unbatched sharded pool: per-shard slot FIFOs and arrival stamping must
// make the batched run counter-identical to it.
func TestBatchedShardedMatchesUnbatchedSharded(t *testing.T) {
	const (
		frames = 50
		pages  = 800
		refs   = 40000
	)
	script := batchedTraceScript(pages, refs)

	run := func(build func() Replacer) (Stats, core.PolicyStats) {
		d := sim.New(sim.ServiceModel{})
		for i := 0; i < pages; i++ {
			storage.MustAllocate(d)
		}
		r := build()
		p := NewWithConfig(d, frames, r, Config{Shards: 8})
		for _, st := range script {
			pg, err := p.Fetch(st.id)
			if err != nil {
				t.Fatal(err)
			}
			if st.dirty {
				pg.Data()[0]++
			}
			pg.Unpin(st.dirty)
			if st.flush {
				if err := p.FlushPage(st.id); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
		type policyStatser interface{ PolicyStats() core.PolicyStats }
		return p.Stats(), r.(policyStatser).PolicyStats()
	}

	wantStats, wantPolicy := run(func() Replacer {
		return core.NewShardedReplacer(16, 2, batchedTraceOptions)
	})
	gotStats, gotPolicy := run(func() Replacer {
		return core.NewBatched(core.NewShardedReplacer(16, 2, batchedTraceOptions), core.BatchConfig{})
	})
	if gotStats != wantStats {
		t.Errorf("batched sharded pool stats %+v, want unbatched %+v", gotStats, wantStats)
	}
	if gotPolicy != wantPolicy {
		t.Errorf("batched sharded policy stats %+v, want unbatched %+v", gotPolicy, wantPolicy)
	}
}

// fetcherPool is the slice of the Serial/Pool surface the differential
// traces need, plus a uniform stats accessor.
type fetcherPool interface {
	Fetch(id policy.PageID) (pageHandle, error)
	FlushPage(id policy.PageID) error
	FlushAll() error
	PoolStats() Stats
}

type pageHandle interface {
	Data() []byte
	Unpin(dirty bool)
}

type serialFetcher struct{ p *Serial }

func (s serialFetcher) Fetch(id policy.PageID) (pageHandle, error) {
	pg, err := s.p.Fetch(id)
	if err != nil {
		return nil, err
	}
	return pg, nil
}
func (s serialFetcher) FlushPage(id policy.PageID) error { return s.p.FlushPage(id) }
func (s serialFetcher) FlushAll() error                  { return s.p.FlushAll() }
func (s serialFetcher) PoolStats() Stats                 { return s.p.Stats() }

type poolFetcher struct{ p *Pool }

func (s poolFetcher) Fetch(id policy.PageID) (pageHandle, error) {
	pg, err := s.p.Fetch(id)
	if err != nil {
		return nil, err
	}
	return pg, nil
}
func (s poolFetcher) FlushPage(id policy.PageID) error { return s.p.FlushPage(id) }
func (s poolFetcher) FlushAll() error                  { return s.p.FlushAll() }
func (s poolFetcher) PoolStats() Stats                 { return s.p.Stats() }

// TestFastHitProbe pins down the latch-free hit path: once a page has been
// fetched and published to its shard's hot slots, a repeat fetch must be
// served by the lock-free probe (FastHits advances) with ordinary hit
// accounting, and eviction must invalidate the published frame so the
// probe cannot resurrect a page the pool evicted.
func TestFastHitProbe(t *testing.T) {
	d := sim.New(sim.ServiceModel{})
	var ids []policy.PageID
	for i := 0; i < 8; i++ {
		ids = append(ids, storage.MustAllocate(d))
	}
	b := core.NewBatched(core.NewShardedReplacer(4, 2, core.Options{}), core.BatchConfig{})
	p := NewWithConfig(d, 4, b, Config{Shards: 4})

	warm := func(id policy.PageID) {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pg.Unpin(false)
	}
	warm(ids[0])
	if got := p.FastHits(); got != 0 {
		t.Fatalf("cold fetch counted %d fast hits, want 0", got)
	}
	warm(ids[0])
	if got := p.FastHits(); got != 1 {
		t.Fatalf("repeat fetch counted %d fast hits, want 1 (probe missed)", got)
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit 1 miss", s)
	}

	// Evict ids[0] by filling the pool, then fetch it again: the probe must
	// not serve the stale frame (its epoch advanced and the page moved on).
	for _, id := range ids[1:] {
		warm(id)
	}
	pg, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := pg.Data(); got == nil {
		t.Fatal("nil data from re-fetched page")
	}
	pg.Unpin(false)
	s = p.Stats()
	if s.Evictions == 0 {
		t.Fatalf("fill did not evict: %+v", s)
	}
	if s.Hits+s.Misses != uint64(len(ids)+2) {
		t.Fatalf("accounting drifted: %+v over %d fetches", s, len(ids)+2)
	}
}

// TestBatchedDeletePage exercises the buffered evRemove path: deleting a
// page whose access events are still buffered must not leave it evictable
// or resurrect it, and the frame must return to the free list.
func TestBatchedDeletePage(t *testing.T) {
	d := sim.New(sim.ServiceModel{})
	id := storage.MustAllocate(d)
	b := core.NewBatched(core.NewSyncReplacer(2, core.Options{}), core.BatchConfig{})
	p := New(d, 4, b)
	pg, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	// The admission, hit bookkeeping and evictability flip are still
	// buffered; DeletePage buffers the removal behind them in the same
	// slot FIFO.
	if err := p.DeletePage(id); err != nil {
		t.Fatal(err)
	}
	if got := b.Size(); got != 0 {
		t.Errorf("deleted page still evictable: Size = %d", got)
	}
	if _, err := p.Fetch(id); err == nil {
		t.Error("fetch of deallocated page succeeded")
	}
	free, tabled := frameAccounting(p)
	if free+tabled != p.NumFrames() {
		t.Errorf("frame accounting after delete: %d free + %d resident != %d", free, tabled, p.NumFrames())
	}
}

// TestBatchedRestoreAfterFailedWriteback drives the satellite regression:
// a dirty victim whose write-back fails is restored while the batch
// buffers still hold undrained events for it. The restore must reinstate
// the existing HIST block — never fabricate a phantom one — and the
// pool/replacer state must stay consistent enough for the page to be
// fetched, flushed and evicted normally once the fault clears. Run under
// -race: the background writer drains the quarantine concurrently.
func TestBatchedRestoreAfterFailedWriteback(t *testing.T) {
	d := storage.WithFaults(sim.New(sim.ServiceModel{}))
	const frames = 4
	var ids []policy.PageID
	for i := 0; i < frames+2; i++ {
		ids = append(ids, storage.MustAllocate(d))
	}
	victim := ids[0]
	b := core.NewBatched(core.NewSyncReplacer(2, core.Options{RetainedInformationPeriod: 100}), core.BatchConfig{})
	p := New(d, frames, b)

	// Dirty the victim-to-be and fill the rest of the pool.
	pg, err := p.Fetch(victim)
	if err != nil {
		t.Fatal(err)
	}
	pg.Data()[0] = 0xAB
	pg.Unpin(true)
	for _, id := range ids[1:frames] {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pg.Unpin(false)
	}

	// Every write to the victim fails: the eviction sweep claims it (its
	// buffered events flush during the eviction search), fails the
	// write-back, restores it, and takes a clean page instead.
	d.SetFaults(storage.NewFaultPlan(1, storage.FaultRule{Op: storage.OpWrite, Pages: []policy.PageID{victim}}))
	pg, err = p.Fetch(ids[frames])
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	s := p.Stats()
	if s.WriteErrors == 0 {
		t.Fatalf("eviction did not fail the victim's write-back: %+v", s)
	}

	// The restored page must still be resident with its dirty data intact.
	pg, err = p.Fetch(victim)
	if err != nil {
		t.Fatalf("restored victim not fetchable: %v", err)
	}
	if pg.Data()[0] != 0xAB {
		t.Fatalf("restored victim lost its in-memory update: %x", pg.Data()[0])
	}
	pg.Unpin(false)
	if hits := p.Stats().Hits; hits == 0 {
		t.Error("re-fetch of restored victim was not a hit (phantom eviction)")
	}

	// Heal the disk; the page must flush and then evict normally.
	d.SetFaults(nil)
	if err := p.FlushAll(); err != nil {
		t.Fatalf("flush after healing: %v", err)
	}
	for _, id := range ids[1:] {
		pg, err := p.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		pg.Unpin(false)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
