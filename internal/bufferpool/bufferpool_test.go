package bufferpool

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// newFaultyDisk builds the simulated backend wrapped in fault injection —
// the handle pool tests drive faults, raw I/O, and ledger assertions
// through, exactly as the old disk.Manager was.
func newFaultyDisk(model sim.ServiceModel) *storage.Faulty {
	return storage.WithFaults(sim.New(model))
}

func newPool(t *testing.T, frames, k int) (*Pool, *storage.Faulty) {
	t.Helper()
	d := newFaultyDisk(sim.ServiceModel{})
	return New(d, frames, core.NewReplacer(k, core.Options{})), d
}

func TestNewValidation(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	r := core.NewReplacer(2, core.Options{})
	for _, f := range []func(){
		func() { New(nil, 4, r) },
		func() { New(d, 0, r) },
		func() { New(d, 4, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid New args accepted")
				}
			}()
			f()
		}()
	}
}

func TestNewPageFetchRoundTrip(t *testing.T) {
	p, _ := newPool(t, 4, 2)
	pg, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	id := pg.ID()
	binary.LittleEndian.PutUint64(pg.Data(), 0xdeadbeef)
	pg.Unpin(true)

	pg2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(pg2.Data()); got != 0xdeadbeef {
		t.Errorf("data = %#x, want 0xdeadbeef", got)
	}
	pg2.Unpin(false)
}

func TestDirtyWriteBackOnEviction(t *testing.T) {
	p, d := newPool(t, 1, 2) // single frame forces immediate eviction
	pg, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	first := pg.ID()
	copy(pg.Data(), []byte("persisted"))
	pg.Unpin(true)

	// Bringing in a second page evicts the first, writing it back.
	pg2, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	pg2.Unpin(false)
	if p.Resident(first) {
		t.Fatal("first page still resident in 1-frame pool")
	}
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), first, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:9]) != "persisted" {
		t.Errorf("evicted dirty page not written back: %q", buf[:9])
	}
	if p.Stats().WriteBacks != 1 {
		t.Errorf("WriteBacks = %d, want 1", p.Stats().WriteBacks)
	}

	// Refetching must restore the data.
	pg3, err := p.Fetch(first)
	if err != nil {
		t.Fatal(err)
	}
	if string(pg3.Data()[:9]) != "persisted" {
		t.Error("refetched page lost data")
	}
	pg3.Unpin(false)
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	p, _ := newPool(t, 2, 2)
	a, _ := p.NewPage()
	b, _ := p.NewPage()
	// Both pinned: a third page must fail.
	if _, err := p.NewPage(); !errors.Is(err, ErrNoFreeFrame) {
		t.Fatalf("NewPage with all pinned: %v", err)
	}
	b.Unpin(false)
	// Now one frame is reclaimable.
	c, err := p.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Resident(a.ID()) {
		t.Error("pinned page was evicted")
	}
	if p.Resident(b.ID()) {
		t.Error("unpinned page survived eviction in full pool")
	}
	a.Unpin(false)
	c.Unpin(false)
}

func TestPinCountSemantics(t *testing.T) {
	p, _ := newPool(t, 2, 2)
	pg, _ := p.NewPage()
	id := pg.ID()
	// Fetch the same page again: pin count 2.
	pg2, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	pg.Unpin(false)
	// Still pinned once: filling the pool must not evict it.
	x, _ := p.NewPage()
	if _, err := p.NewPage(); !errors.Is(err, ErrNoFreeFrame) {
		t.Fatalf("expected ErrNoFreeFrame, got %v", err)
	}
	pg2.Unpin(false)
	x.Unpin(false)
}

func TestHandleMisusePanics(t *testing.T) {
	p, _ := newPool(t, 2, 2)
	pg, _ := p.NewPage()
	pg.Unpin(false)
	for _, f := range []func(){
		func() { pg.Data() },
		func() { pg.Unpin(false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("handle misuse did not panic")
				}
			}()
			f()
		}()
	}
}

func TestFetchUnknownPage(t *testing.T) {
	p, _ := newPool(t, 2, 2)
	if _, err := p.Fetch(12345); err == nil {
		t.Error("fetch of unallocated page succeeded")
	}
}

func TestFlushPageAndAll(t *testing.T) {
	p, d := newPool(t, 4, 2)
	pg, _ := p.NewPage()
	id := pg.ID()
	copy(pg.Data(), []byte("flushed"))
	pg.Unpin(true)
	if err := p.FlushPage(id); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	if err := d.Read(context.Background(), id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:7]) != "flushed" {
		t.Error("FlushPage did not persist")
	}
	// Flushing a clean page is a no-op.
	wb := p.Stats().WriteBacks
	if err := p.FlushPage(id); err != nil {
		t.Fatal(err)
	}
	if p.Stats().WriteBacks != wb {
		t.Error("clean flush counted as write-back")
	}
	if err := p.FlushPage(99999); !errors.Is(err, ErrPageNotResident) {
		t.Errorf("flush non-resident: %v", err)
	}

	pg2, _ := p.NewPage()
	copy(pg2.Data(), []byte("also"))
	pg2.Unpin(true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Read(context.Background(), pg2.ID(), buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:4]) != "also" {
		t.Error("FlushAll did not persist")
	}
}

func TestDeletePage(t *testing.T) {
	p, d := newPool(t, 2, 2)
	pg, _ := p.NewPage()
	id := pg.ID()
	if err := p.DeletePage(id); err == nil {
		t.Error("delete of pinned page succeeded")
	}
	pg.Unpin(false)
	if err := p.DeletePage(id); err != nil {
		t.Fatal(err)
	}
	if p.Resident(id) {
		t.Error("deleted page still resident")
	}
	if d.NumPages() != 0 {
		t.Error("deleted page still on disk")
	}
	// The freed frame is reusable.
	a, _ := p.NewPage()
	b, _ := p.NewPage()
	a.Unpin(false)
	b.Unpin(false)
}

func TestStatsHitRatio(t *testing.T) {
	p, _ := newPool(t, 2, 2)
	pg, _ := p.NewPage()
	id := pg.ID()
	pg.Unpin(false)
	for i := 0; i < 3; i++ {
		h, _ := p.Fetch(id)
		h.Unpin(false)
	}
	s := p.Stats()
	if s.Hits != 3 || s.Misses != 1 {
		t.Errorf("stats %+v, want 3 hits 1 miss", s)
	}
	if s.HitRatio() != 0.75 {
		t.Errorf("HitRatio = %v", s.HitRatio())
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty HitRatio not 0")
	}
}

// TestLRUKReplacerBeatsLRUInPool is the end-to-end Example 1.1 smoke test
// at pool level: under an alternating hot/cold fetch pattern, an LRU-2
// replacer yields a higher pool hit ratio than LRU-1.
func TestLRUKReplacerBeatsLRUInPool(t *testing.T) {
	run := func(k int) float64 {
		d := newFaultyDisk(sim.ServiceModel{})
		hot := make([]policy.PageID, 20)
		cold := make([]policy.PageID, 2000)
		for i := range hot {
			hot[i] = storage.MustAllocate(d)
		}
		for i := range cold {
			cold[i] = storage.MustAllocate(d)
		}
		p := New(d, 25, core.NewReplacer(k, core.Options{}))
		r := stats.NewRNG(99)
		for i := 0; i < 30000; i++ {
			var id policy.PageID
			if i%2 == 0 {
				id = hot[r.Intn(len(hot))]
			} else {
				id = cold[r.Intn(len(cold))]
			}
			pg, err := p.Fetch(id)
			if err != nil {
				t.Fatal(err)
			}
			pg.Unpin(false)
		}
		return p.Stats().HitRatio()
	}
	lru2, lru1 := run(2), run(1)
	if lru2 <= lru1 {
		t.Errorf("LRU-2 pool hit ratio %.3f not above LRU-1 %.3f", lru2, lru1)
	}
	if lru2 < 0.40 {
		t.Errorf("LRU-2 pool hit ratio %.3f; should approach 0.5 on this pattern", lru2)
	}
}

func TestNumFrames(t *testing.T) {
	p, _ := newPool(t, 7, 1)
	if p.NumFrames() != 7 {
		t.Errorf("NumFrames = %d", p.NumFrames())
	}
}

// TestConcurrentFetchUnpin hammers the pool from several goroutines with
// overlapping page sets, checking data integrity: each page holds its own
// id, written once at creation.
func TestConcurrentFetchUnpin(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	const pages = 64
	ids := make([]policy.PageID, pages)
	for i := range ids {
		ids[i] = storage.MustAllocate(d)
		buf := make([]byte, storage.PageSize)
		binary.LittleEndian.PutUint64(buf, uint64(ids[i]))
		if err := d.Write(context.Background(), ids[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	p := New(d, 16, core.NewReplacer(2, core.Options{}))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRNG(seed)
			for i := 0; i < 5000; i++ {
				id := ids[r.Intn(pages)]
				pg, err := p.Fetch(id)
				if err != nil {
					// All frames transiently pinned is a legal outcome under
					// contention; anything else is a bug.
					if errors.Is(err, ErrNoFreeFrame) {
						continue
					}
					errs <- err
					return
				}
				if got := policy.PageID(binary.LittleEndian.Uint64(pg.Data())); got != id {
					errs <- fmt.Errorf("page %d holds data of page %d", id, got)
					pg.Unpin(false)
					return
				}
				pg.Unpin(false)
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Errorf("stress run produced no mix of hits and misses: %+v", s)
	}
}
