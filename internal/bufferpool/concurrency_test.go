package bufferpool

import (
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// TestMissCoalescingSingleRead verifies the in-flight miss protocol: with
// the loader parked inside its disk read, every concurrent fetch of the
// same page must join the in-flight frame instead of issuing its own read.
func TestMissCoalescingSingleRead(t *testing.T) {
	var gate atomic.Bool
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	d := newFaultyDisk(sim.ServiceModel{Delay: func(int64) {
		if gate.Load() {
			once.Do(func() { close(blocked) })
			<-release
		}
	}})
	id := storage.MustAllocate(d)
	buf := make([]byte, storage.PageSize)
	binary.LittleEndian.PutUint64(buf, 0xfeedface)
	if err := d.Write(context.Background(), id, buf); err != nil {
		t.Fatal(err)
	}
	gate.Store(true)

	p := New(d, 4, core.NewSyncReplacer(2, core.Options{}))
	const waiters = 7
	var wg sync.WaitGroup
	errs := make(chan error, waiters+1)
	fetch := func() {
		defer wg.Done()
		pg, err := p.Fetch(id)
		if err != nil {
			errs <- err
			return
		}
		if got := binary.LittleEndian.Uint64(pg.Data()); got != 0xfeedface {
			errs <- errors.New("coalesced fetch returned wrong data")
		}
		pg.Unpin(false)
	}
	wg.Add(1)
	go fetch() // the loader
	<-blocked  // loader is now inside disk.Read with the in-flight frame installed
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go fetch() // must all coalesce: the page stays loading until release
	}
	// Wait until every waiter has pinned the in-flight frame, then let the
	// read finish. The loader holds pin 1; each waiter adds one.
	for waitersIn := 0; waitersIn < waiters; {
		waitersIn = int(p.frameFor(id).pins()) - 1
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if reads := d.Stats().Reads; reads != 1 {
		t.Errorf("concurrent same-page misses issued %d disk reads, want 1", reads)
	}
	s := p.Stats()
	if s.Coalesced != waiters {
		t.Errorf("Coalesced = %d, want %d", s.Coalesced, waiters)
	}
	if s.Misses != waiters+1 || s.Hits != 0 {
		t.Errorf("stats %+v, want %d misses 0 hits", s, waiters+1)
	}
}

// TestPoolMatchesSerialOnDeterministicTrace replays one deterministic
// single-threaded trace (fetches, dirtying writes, flushes) through the
// single-latch Serial pool and the concurrent Pool: every counter — pool
// and disk — must agree exactly, because a mutex-wrapped replacer makes
// identical decisions on a serialisable history.
func TestPoolMatchesSerialOnDeterministicTrace(t *testing.T) {
	const (
		frames = 50
		pages  = 800
		refs   = 40000
	)
	type step struct {
		id    policy.PageID
		dirty bool
		flush bool
	}
	r := stats.NewRNG(7)
	script := make([]step, refs)
	for i := range script {
		var id policy.PageID
		if i%2 == 0 {
			id = policy.PageID(r.Intn(40)) // hot set
		} else {
			id = policy.PageID(40 + r.Intn(pages-40))
		}
		script[i] = step{id: id, dirty: i%7 == 6, flush: i%997 == 996}
	}

	// FlushAll walks map snapshots in hash order, so the write *order* of
	// the final flush — and with it the seek-discount component of
	// ServiceMicros — is not deterministic even run to run. Compare full
	// disk stats at the trace end, and only the I/O counts after FlushAll.
	type outcome struct {
		pool       Stats
		trace      storage.Stats
		finalReads uint64
		finalWrite uint64
	}
	runSerial := func() outcome {
		d := newFaultyDisk(sim.ServiceModel{})
		for i := 0; i < pages; i++ {
			d.Allocate()
		}
		p := NewSerial(d, frames, core.NewReplacer(2, core.Options{}))
		for _, st := range script {
			pg, err := p.Fetch(st.id)
			if err != nil {
				t.Fatal(err)
			}
			if st.dirty {
				pg.Data()[0]++
			}
			pg.Unpin(st.dirty)
			if st.flush {
				if err := p.FlushPage(st.id); err != nil {
					t.Fatal(err)
				}
			}
		}
		trace := d.Stats()
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
		return outcome{p.Stats(), trace, d.Stats().Reads, d.Stats().Writes}
	}
	runConcurrent := func(shards int) outcome {
		d := newFaultyDisk(sim.ServiceModel{})
		for i := 0; i < pages; i++ {
			d.Allocate()
		}
		p := NewWithConfig(d, frames, core.NewSyncReplacer(2, core.Options{}), Config{Shards: shards})
		for _, st := range script {
			pg, err := p.Fetch(st.id)
			if err != nil {
				t.Fatal(err)
			}
			if st.dirty {
				pg.Data()[0]++
			}
			pg.Unpin(st.dirty)
			if st.flush {
				if err := p.FlushPage(st.id); err != nil {
					t.Fatal(err)
				}
			}
		}
		trace := d.Stats()
		if err := p.FlushAll(); err != nil {
			t.Fatal(err)
		}
		return outcome{p.Stats(), trace, d.Stats().Reads, d.Stats().Writes}
	}

	want := runSerial()
	for _, shards := range []int{1, 8, 64} {
		got := runConcurrent(shards)
		if got.pool != want.pool {
			t.Errorf("shards=%d: pool stats %+v, want %+v", shards, got.pool, want.pool)
		}
		if got.trace != want.trace {
			t.Errorf("shards=%d: disk stats %+v, want %+v", shards, got.trace, want.trace)
		}
		if got.finalReads != want.finalReads || got.finalWrite != want.finalWrite {
			t.Errorf("shards=%d: post-flush I/O counts (%d,%d), want (%d,%d)",
				shards, got.finalReads, got.finalWrite, want.finalReads, want.finalWrite)
		}
		if got.pool.Coalesced != 0 {
			t.Errorf("shards=%d: single-threaded replay coalesced %d misses", shards, got.pool.Coalesced)
		}
	}
}

// TestPoolConcurrentStressRace hammers the pool from many goroutines with
// a mix of shared read-only pages and per-goroutine private read/write
// pages, plus flushes and metadata queries, then checks data integrity and
// the exact accounting identity Reads == Misses - Coalesced.
func TestPoolConcurrentStressRace(t *testing.T) {
	const (
		goroutines = 12
		sharedN    = 96
		iters      = 4000
		frames     = 48
	)
	d := newFaultyDisk(sim.ServiceModel{})
	shared := make([]policy.PageID, sharedN)
	buf := make([]byte, storage.PageSize)
	for i := range shared {
		shared[i] = storage.MustAllocate(d)
		binary.LittleEndian.PutUint64(buf, uint64(shared[i]))
		if err := d.Write(context.Background(), shared[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	private := make([]policy.PageID, goroutines)
	for i := range private {
		private[i] = storage.MustAllocate(d)
		clear(buf)
		if err := d.Write(context.Background(), private[i], buf); err != nil {
			t.Fatal(err)
		}
	}
	setupWrites := d.Stats().Writes

	p := NewWithConfig(d, frames,
		core.NewShardedReplacer(8, 2, core.Options{}), Config{Shards: 16})
	var fetched atomic.Uint64
	writes := make([]uint64, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(g + 1))
			own := private[g]
			for i := 0; i < iters; i++ {
				switch op := r.Intn(100); {
				case op < 65: // shared read
					id := shared[r.Intn(sharedN)]
					pg, err := p.Fetch(id)
					if err != nil {
						if errors.Is(err, ErrNoFreeFrame) {
							continue
						}
						errs <- err
						return
					}
					fetched.Add(1)
					if got := binary.LittleEndian.Uint64(pg.Data()); got != uint64(id) {
						errs <- errors.New("shared page holds another page's data")
						pg.Unpin(false)
						return
					}
					pg.Unpin(false)
				case op < 85: // private read-modify-write
					pg, err := p.Fetch(own)
					if err != nil {
						if errors.Is(err, ErrNoFreeFrame) {
							continue
						}
						errs <- err
						return
					}
					fetched.Add(1)
					got := binary.LittleEndian.Uint64(pg.Data())
					if got != writes[g] {
						errs <- errors.New("private page lost writes")
						pg.Unpin(false)
						return
					}
					binary.LittleEndian.PutUint64(pg.Data(), got+1)
					writes[g]++
					pg.Unpin(true)
				case op < 92: // flush own page
					if err := p.FlushPage(own); err != nil && !errors.Is(err, ErrPageNotResident) {
						errs <- err
						return
					}
				default: // metadata queries race along
					p.Resident(shared[r.Intn(sharedN)])
					p.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	ds := d.Stats() // capture before the verification reads below
	// Every private counter must equal that goroutine's successful writes.
	for g, id := range private {
		if err := d.Read(context.Background(), id, buf); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != writes[g] {
			t.Errorf("goroutine %d: page holds %d, wrote %d times", g, got, writes[g])
		}
	}
	if s.Hits+s.Misses != fetched.Load() {
		t.Errorf("Hits+Misses = %d, want %d successful fetches", s.Hits+s.Misses, fetched.Load())
	}
	if ds.Reads != s.Misses-s.Coalesced {
		t.Errorf("disk reads %d != misses %d - coalesced %d", ds.Reads, s.Misses, s.Coalesced)
	}
	if s.WriteBacks != ds.Writes-setupWrites {
		t.Errorf("WriteBacks %d != disk writes %d", s.WriteBacks, ds.Writes-setupWrites)
	}
	if s.Evictions > s.Misses {
		t.Errorf("Evictions %d exceed Misses %d", s.Evictions, s.Misses)
	}
}

// TestPoolConcurrentNewDelete exercises the allocate → write → verify →
// delete lifecycle from many goroutines at once; at the end the disk must
// hold no pages and the pool no residents.
func TestPoolConcurrentNewDelete(t *testing.T) {
	const goroutines = 8
	d := newFaultyDisk(sim.ServiceModel{})
	p := NewWithConfig(d, 32, core.NewSyncReplacer(2, core.Options{}), Config{Shards: 8})
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				pg, err := p.NewPage()
				if err != nil {
					if errors.Is(err, ErrNoFreeFrame) {
						continue
					}
					errs <- err
					return
				}
				id := pg.ID()
				binary.LittleEndian.PutUint64(pg.Data(), uint64(id))
				pg.Unpin(true)
				if pg2, err := p.Fetch(id); err == nil {
					if got := binary.LittleEndian.Uint64(pg2.Data()); got != uint64(id) {
						errs <- errors.New("fresh page lost its marker")
						pg2.Unpin(false)
						return
					}
					pg2.Unpin(false)
				} else if !errors.Is(err, ErrNoFreeFrame) {
					errs <- err
					return
				}
				if err := p.DeletePage(id); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := d.NumPages(); n != 0 {
		t.Errorf("%d pages leaked on disk", n)
	}
}

// TestWriteBackVictimNotReadableStale checks the frameWriting protocol: a
// fetch racing an in-flight dirty write-back must wait it out and then
// read the freshly written bytes, never the stale disk copy.
func TestWriteBackVictimNotReadableStale(t *testing.T) {
	var gate atomic.Bool
	inWrite := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	d := newFaultyDisk(sim.ServiceModel{Delay: func(int64) {
		if gate.Load() {
			once.Do(func() { close(inWrite) })
			<-release
		}
	}})
	victim := storage.MustAllocate(d)
	other := storage.MustAllocate(d)
	p := New(d, 1, core.NewSyncReplacer(2, core.Options{})) // one frame: every miss evicts

	pg, err := p.Fetch(victim)
	if err != nil {
		t.Fatal(err)
	}
	copy(pg.Data(), []byte("fresh"))
	pg.Unpin(true) // dirty, evictable
	gate.Store(true)

	done := make(chan error, 1)
	go func() {
		// Evicts the dirty victim; its write-back parks on the gate.
		pg, err := p.Fetch(other)
		if err == nil {
			pg.Unpin(false)
		}
		done <- err
	}()
	<-inWrite // write-back in flight; victim is in frameWriting

	raced := make(chan error, 1)
	go func() {
		// Must block until the write-back completes, then re-read "fresh".
		pg, err := p.Fetch(victim)
		if err != nil {
			raced <- err
			return
		}
		defer pg.Unpin(false)
		if string(pg.Data()[:5]) != "fresh" {
			raced <- errors.New("fetch during write-back returned stale data")
			return
		}
		raced <- nil
	}()
	gate.Store(false)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-raced; err != nil && !errors.Is(err, ErrNoFreeFrame) {
		t.Fatal(err)
	}
}

// TestConfigValidation covers the new constructor's shard checks and the
// automatic wrapping of non-concurrent replacers.
func TestConfigValidation(t *testing.T) {
	d := newFaultyDisk(sim.ServiceModel{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-power-of-two shard count accepted")
			}
		}()
		NewWithConfig(d, 4, core.NewReplacer(2, core.Options{}), Config{Shards: 3})
	}()
	// A plain (non-concurrent) replacer must be wrapped, not used bare.
	p := New(d, 4, core.NewReplacer(2, core.Options{}))
	if _, ok := p.replacer.(ConcurrentReplacer); !ok {
		t.Error("plain replacer not wrapped for concurrency")
	}
	// A concurrent replacer passes through unwrapped.
	sr := core.NewSyncReplacer(2, core.Options{})
	p2 := New(d, 4, sr)
	if p2.replacer != Replacer(sr) {
		t.Error("concurrent replacer was needlessly wrapped")
	}
	if p2.NumShards() < 1 {
		t.Error("NumShards not positive")
	}
}
