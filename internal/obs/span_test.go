package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestSpanOverheadGuard enforces the unsampled-tracing budget from the
// acceptance bar: a Start/Finish pair on an unsampled context must cost
// at most 5 ns and zero allocations — the recorder early-returns before
// reading the clock, so the whole disabled cost is two branches per
// probe site. Guarded like TestObsOverheadGuard: skipped under -race
// (the detector multiplies every cost) and in -short mode.
func TestSpanOverheadGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("overhead guard is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping overhead guard in short mode")
	}
	res := testing.Benchmark(func(b *testing.B) {
		rec := NewSpanRecorder("guard", 64)
		tc := TraceContext{} // unsampled: the fleet-wide default
		for i := 0; i < b.N; i++ {
			s := rec.Start(tc, SpanPoolFetch)
			s.Finish(int64(i))
		}
	})
	const ceilingNs = 5
	if got := res.NsPerOp(); got > ceilingNs {
		t.Fatalf("unsampled span start+finish costs %d ns/op, ceiling %d ns", got, ceilingNs)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("unsampled span path allocates %d objects/op, must be 0", res.AllocsPerOp())
	}
	// A nil recorder (tracing not armed at all) must hold the same budget.
	res = testing.Benchmark(func(b *testing.B) {
		var rec *SpanRecorder
		tc := TraceContext{TraceID: 1, SpanID: 2, Sampled: true}
		for i := 0; i < b.N; i++ {
			s := rec.Start(tc, SpanPoolFetch)
			s.Finish(int64(i))
		}
	})
	if got := res.NsPerOp(); got > ceilingNs {
		t.Fatalf("nil-recorder span start+finish costs %d ns/op, ceiling %d ns", got, ceilingNs)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("nil-recorder span path allocates %d objects/op, must be 0", res.AllocsPerOp())
	}
}

func TestSpanRecorderRoundTrip(t *testing.T) {
	rec := NewSpanRecorder("n0", 16)
	trace := rec.NewTraceID()
	tc := TraceContext{TraceID: trace, SpanID: 0, Sampled: true}

	root := rec.Start(tc, SpanRequest)
	child := rec.Start(root.Context(), SpanPoolFetch)
	child.Finish(42)
	root.Finish(3)

	spans := rec.TraceSpans(trace)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Ring order is finish order: the child finished first.
	if spans[0].Kind != SpanPoolFetch || spans[1].Kind != SpanRequest {
		t.Fatalf("unexpected kinds: %v, %v", spans[0].Kind, spans[1].Kind)
	}
	if spans[0].Parent != spans[1].Span {
		t.Fatalf("child parent %s != root span %s", spans[0].Parent, spans[1].Span)
	}
	if spans[0].Trace != Hex64(trace) || spans[1].Trace != Hex64(trace) {
		t.Fatalf("trace ids not propagated: %s %s", spans[0].Trace, spans[1].Trace)
	}
	if spans[0].Annot != 42 {
		t.Fatalf("child annot = %d, want 42", spans[0].Annot)
	}
	if spans[0].Node != "n0" {
		t.Fatalf("node = %q, want n0", spans[0].Node)
	}
	if spans[0].Dur < 0 || spans[1].Dur < spans[0].Dur {
		t.Fatalf("child dur %d must nest within root dur %d", spans[0].Dur, spans[1].Dur)
	}
}

func TestSpanRecorderRingOverwrite(t *testing.T) {
	rec := NewSpanRecorder("n0", 4)
	for i := 0; i < 10; i++ {
		rec.Emit(uint64(i+1), uint64(100+i), 0, SpanDiskRead, time.Unix(0, int64(i)), time.Duration(i), 0)
	}
	got := rec.Snapshot()
	if len(got) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(got))
	}
	for i, s := range got {
		if want := Hex64(7 + i); s.Trace != want {
			t.Fatalf("span %d trace = %s, want %s (oldest-first after overwrite)", i, s.Trace, want)
		}
	}
}

func TestSpanRecordJSONRoundTrip(t *testing.T) {
	in := SpanRecord{
		Trace:  Hex64(0xdeadbeefcafe0001),
		Span:   Hex64(2),
		Parent: Hex64(3),
		Kind:   SpanWALFsync,
		Start:  123456789,
		Dur:    42,
		Annot:  -7,
		Node:   "n1",
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SpanRecord
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	// Hex ids must survive as fixed-width strings, not JSON numbers.
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if s, ok := raw["trace"].(string); !ok || s != "deadbeefcafe0001" {
		t.Fatalf("trace id encodes as %v, want \"deadbeefcafe0001\"", raw["trace"])
	}
}

func TestParseHex64(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Hex64
		ok   bool
	}{
		{"deadbeefcafe0001", 0xdeadbeefcafe0001, true},
		{"0000000000000001", 1, true},
		{"1", 1, true},
		{"DEADBEEF", 0xdeadbeef, true},
		{"", 0, false},
		{"deadbeefcafe00012", 0, false}, // 17 digits
		{"xyz", 0, false},
	} {
		got, err := ParseHex64(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseHex64(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseHex64(%q) = %x, want %x", tc.in, got, tc.want)
		}
	}
}

func TestSpanKindJSON(t *testing.T) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back SpanKind
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Fatalf("kind %v round-trips to %v", k, back)
		}
	}
	var k SpanKind
	if err := json.Unmarshal([]byte(`"no_such_kind"`), &k); err == nil {
		t.Fatal("unknown kind name must not decode")
	}
}

func TestContextTrace(t *testing.T) {
	ctx := context.Background()
	if tc := TraceFrom(ctx); tc != (TraceContext{}) {
		t.Fatalf("empty context yields %+v", tc)
	}
	in := TraceContext{TraceID: 7, SpanID: 9, Sampled: true}
	if got := TraceFrom(ContextWithTrace(ctx, in)); got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
	// Unsampled contexts are deliberately not attached.
	unsampled := TraceContext{TraceID: 7, SpanID: 9}
	if got := TraceFrom(ContextWithTrace(ctx, unsampled)); got != (TraceContext{}) {
		t.Fatalf("unsampled context attached: %+v", got)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	s := Sampler{Fraction: 0.25, Seed: 42}
	sampled := 0
	const n = 100000
	for i := uint64(1); i <= n; i++ {
		a, b := s.Sample(i), s.Sample(i)
		if a != b {
			t.Fatalf("sampling of id %d is not deterministic", i)
		}
		if a {
			sampled++
		}
	}
	frac := float64(sampled) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("sampled fraction %.4f, want ~0.25", frac)
	}
	if (Sampler{Fraction: 1}).Sample(1) != true {
		t.Fatal("fraction 1 must sample everything")
	}
	if (Sampler{Fraction: 0}).Sample(1) != false {
		t.Fatal("fraction 0 must sample nothing")
	}
	if (Sampler{Fraction: 1}).Sample(0) != false {
		t.Fatal("trace id 0 must never sample")
	}
}

func TestSamplerShouldTail(t *testing.T) {
	s := Sampler{SlowThreshold: 10 * time.Millisecond}
	if !s.ShouldTail(11*time.Millisecond, false) {
		t.Fatal("slow request must tail-sample")
	}
	if s.ShouldTail(time.Millisecond, false) {
		t.Fatal("fast clean request must not tail-sample")
	}
	if !s.ShouldTail(0, true) {
		t.Fatal("failed request must tail-sample")
	}
	if (Sampler{}).ShouldTail(time.Hour, false) {
		t.Fatal("zero threshold disables the slow rule")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	rec := NewSpanRecorder("n0", 128)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tc := TraceContext{TraceID: uint64(g + 1), Sampled: true}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := rec.Start(tc, SpanDiskRead)
				s.Finish(int64(i))
			}
		}(g)
	}
	deadline := time.After(50 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			for _, s := range rec.Snapshot() {
				if s.Trace == 0 || s.Span == 0 {
					t.Error("snapshot surfaced an unpublished record")
					done = true
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestEvictionTraceStamp(t *testing.T) {
	tr := NewEvictionTrace(8)
	tr.Record(TraceRecord{Kind: TraceEvict, Page: 7, Clock: 1})
	tr.Record(TraceRecord{Kind: TraceCollapse, Page: 7, Clock: 2})
	tr.StampTrace(7, 0xabc)
	recs := tr.Snapshot()
	if recs[0].Trace != Hex64(0xabc).String() {
		t.Fatalf("evict record trace = %q, want stamped id", recs[0].Trace)
	}
	if recs[1].Trace != "" {
		t.Fatalf("collapse record must stay unstamped, got %q", recs[1].Trace)
	}
	// Stamping an absent page or a zero id is a no-op, nil receiver safe.
	tr.StampTrace(99, 0xdef)
	tr.StampTrace(7, 0)
	var nilTr *EvictionTrace
	nilTr.StampTrace(7, 1)
}
