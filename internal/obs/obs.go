// Package obs is the repository's observability subsystem: a low-overhead
// metrics layer every storage tier (core policy, disk, buffer pool, db,
// network server) records into, and three exposition paths read out of —
// a Prometheus-text /metrics HTTP handler (with net/http/pprof mounted
// alongside), histogram summaries carried on the STATS wire response, and
// an optional periodic structured log line.
//
// The paper's whole argument is measured behavior (Tables 4.1-4.3 compare
// hit ratios and disk-access economics across policies); this package is
// the production analogue of those measurements: the same counters, plus
// the latency distributions and policy-decision traces a deployed buffer
// service needs before any further tuning is trustworthy.
//
// Design constraints, in order:
//
//   - Allocation-free on the hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe never allocate and take a handful of atomic
//     operations; BenchmarkObsOverhead holds the combined counter+histogram
//     record to tens of nanoseconds.
//   - Safe when absent. Every recording method is a no-op on a nil
//     receiver, so instrumented code paths carry optional *Counter /
//     *Histogram fields and never branch on a config flag.
//   - Cheap when scraped. Pre-existing counters (pool shards, disk
//     atomics, server totals) are exposed through CounterFunc/GaugeFunc
//     collectors evaluated at scrape time, costing the hot path nothing.
//
// See DESIGN.md §12 for the metric catalog and the histogram bucket
// scheme.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a metric family for exposition.
type Kind uint8

// Metric kinds. Counters are cumulative and monotone, gauges are
// point-in-time values, histograms are mergeable log-bucket distributions
// exposed as Prometheus summaries (precomputed quantiles).
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Labels are a metric's constant label set. Instruments are registered
// with their full label values up front (e.g. op="get"), so the hot path
// holds a direct handle and never formats a label.
type Labels map[string]string

// render flattens labels into the canonical `k="v",...` form, sorted by
// key, used both for series identity and for exposition.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// series is one labeled instrument inside a family.
type series struct {
	labels string // rendered label set (series identity within the family)

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// cFunc / gFunc are scrape-time collectors for values that already
	// live elsewhere (pool shard counters, disk atomics); they cost the
	// recording path nothing.
	cFunc func() float64
	gFunc func() float64
}

// family groups series sharing one metric name, kind and help string.
type family struct {
	name string
	kind Kind
	help string
	// scale multiplies raw histogram values at exposition (1e-9 turns
	// recorded nanoseconds into the _seconds unit Prometheus expects).
	// 0 means 1. Counters and gauges are never scaled.
	scale  float64
	series []*series
	byLbl  map[string]*series
}

// Registry holds labeled metric families. Registration is idempotent —
// asking for an existing name+labels returns the existing instrument —
// and safe for concurrent use, including concurrently with exposition.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns (creating if needed) the family and the series slot for
// name+labels, enforcing kind consistency. Callers hold no locks.
func (r *Registry) lookup(name string, kind Kind, help string, labels Labels, scale float64) *series {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, kind: kind, help: help, scale: scale, byLbl: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	lbl := labels.render()
	s := f.byLbl[lbl]
	if s == nil {
		s = &series{labels: lbl}
		f.byLbl[lbl] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns the striped counter registered under name+labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	s := r.lookup(name, KindCounter, help, labels, 0)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.counter == nil && s.cFunc == nil {
		s.counter = NewCounter()
	}
	return s.counter
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	s := r.lookup(name, KindGauge, help, labels, 0)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil && s.gFunc == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a scrape-time collector as a counter series: fn is
// evaluated at each exposition, so a counter that already exists as an
// atomic elsewhere (a pool shard total, a disk ledger) is exposed without
// adding a single instruction to its recording path. Re-registering the
// same name+labels replaces the callback.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	s := r.lookup(name, KindCounter, help, labels, 0)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.cFunc = fn
	s.counter = nil
}

// GaugeFunc registers a scrape-time gauge collector (see CounterFunc).
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	s := r.lookup(name, KindGauge, help, labels, 0)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.gFunc = fn
	s.gauge = nil
}

// Histogram returns the histogram registered under name+labels, creating
// it on first use. Observations are raw int64 values exposed unscaled; use
// LatencyHistogram for nanosecond timings.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.histogram(name, help, labels, 1)
}

// LatencyHistogram returns a histogram whose observations are nanoseconds
// and whose exposition is scaled to seconds, matching the Prometheus
// convention for *_seconds families.
func (r *Registry) LatencyHistogram(name, help string, labels Labels) *Histogram {
	return r.histogram(name, help, labels, 1e-9)
}

func (r *Registry) histogram(name, help string, labels Labels, scale float64) *Histogram {
	s := r.lookup(name, KindHistogram, help, labels, scale)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram()
		s.hist.scale = scale
	}
	return s.hist
}

// snapshotFamilies copies the family/series structure under the lock so
// exposition can run without holding it (collector callbacks may take
// other locks, e.g. a pool stats aggregation).
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	return out
}

// HistogramSummaries returns the summary of every histogram series, keyed
// by `name` or `name{labels}`. The network server embeds this map in its
// STATS reply so remote tooling (lrukload's percentile report) reads the
// same distributions /metrics exposes.
func (r *Registry) HistogramSummaries() map[string]HistSummary {
	out := make(map[string]HistSummary)
	for _, f := range r.snapshotFamilies() {
		if f.kind != KindHistogram {
			continue
		}
		r.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		r.mu.Unlock()
		for _, s := range series {
			if s.hist == nil {
				continue
			}
			key := f.name
			if s.labels != "" {
				key = f.name + "{" + s.labels + "}"
			}
			out[key] = s.hist.Summary()
		}
	}
	return out
}
