package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// StartLogger launches a goroutine that writes one structured logfmt line
// per interval to w: every counter and gauge as `name=value` (labels
// folded into the key), every histogram as `name_count`, `name_p99` and
// `name_max` in its exposition unit. The line is a cheap flight recorder —
// greppable, diffable, no scrape infrastructure required — and is off by
// default (callers only start it when the operator asks for an interval).
//
// The returned stop function is idempotent and does not return until the
// logger goroutine has exited.
func StartLogger(w io.Writer, r *Registry, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(exited)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				fmt.Fprintln(w, LogLine(r))
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// LogLine renders the registry's current state as one logfmt line,
// beginning with `obs ts=<RFC3339>`.
func LogLine(r *Registry) string {
	var b strings.Builder
	b.WriteString("obs ts=")
	b.WriteString(time.Now().UTC().Format(time.RFC3339))
	fams := r.snapshotFamilies()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		r.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		r.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		for _, s := range series {
			key := logKey(f.name, s.labels)
			switch f.kind {
			case KindCounter:
				v := 0.0
				switch {
				case s.cFunc != nil:
					v = s.cFunc()
				case s.counter != nil:
					v = float64(s.counter.Value())
				}
				fmt.Fprintf(&b, " %s=%s", key, formatFloat(v))
			case KindGauge:
				v := 0.0
				switch {
				case s.gFunc != nil:
					v = s.gFunc()
				case s.gauge != nil:
					v = float64(s.gauge.Value())
				}
				fmt.Fprintf(&b, " %s=%s", key, formatFloat(v))
			case KindHistogram:
				if s.hist == nil {
					continue
				}
				sum := s.hist.Summary()
				fmt.Fprintf(&b, " %s_count=%d %s_p99=%s %s_max=%s",
					key, sum.Count, key, formatFloat(sum.P99), key, formatFloat(sum.Max))
			}
		}
	}
	return b.String()
}

// logKey folds a series' labels into a flat logfmt-safe key:
// name{op="get"} becomes name_op_get.
func logKey(name, labels string) string {
	if labels == "" {
		return name
	}
	flat := strings.NewReplacer(`="`, "_", `"`, "", ",", "_", " ", "_").Replace(labels)
	return name + "_" + flat
}
