package obs

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// counterCell is one stripe of a Counter, padded to a cache line so
// adjacent stripes never false-share under contention.
type counterCell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a cumulative, monotone counter striped across cache-line-
// padded atomic cells: concurrent Adds land on (probabilistically)
// different stripes, so a hot counter does not serialise its writers on
// one cache line the way a single atomic would. Reads sum the stripes.
//
// All methods are safe on a nil *Counter (no-ops / zero), so instrumented
// code holds optional counter fields without branching on configuration.
type Counter struct {
	cells []counterCell
	mask  uint64
}

// counterStripes picks the stripe count: the next power of two at or above
// GOMAXPROCS, capped so an over-provisioned box does not pay kilobytes per
// counter.
func counterStripes() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 64 {
		s <<= 1
	}
	return s
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter {
	n := counterStripes()
	return &Counter{cells: make([]counterCell, n), mask: uint64(n - 1)}
}

// Add increments the counter by n. The stripe is chosen from the runtime's
// per-thread cheap random stream, so no shared state is touched beyond the
// stripe itself.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[rand.Uint64()&c.mask].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the counter's total. Under concurrent Adds the sum is a
// linearizable-enough snapshot for monitoring: every completed Add is
// included, in-flight ones may or may not be.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a point-in-time value: set, add, read. A single atomic suffices
// — gauges record states (queue depth, resident pages), not high-rate
// event streams. Methods are safe on a nil *Gauge.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
