package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketGeometry(t *testing.T) {
	// Every bucket's bounds must tile the value space: bucketOf maps each
	// bound back to the right bucket, and consecutive buckets abut.
	prevHi := uint64(0)
	for b := 0; b < numBuckets; b++ {
		lo, hi := bucketBounds(b)
		if lo != prevHi {
			t.Fatalf("bucket %d: lo=%d, want %d (buckets must abut)", b, lo, prevHi)
		}
		if bucketOf(lo) != b {
			t.Fatalf("bucketOf(%d)=%d, want %d", lo, bucketOf(lo), b)
		}
		if b < numBuckets-1 && bucketOf(hi-1) != b {
			t.Fatalf("bucketOf(%d)=%d, want %d", hi-1, bucketOf(hi-1), b)
		}
		prevHi = hi
	}
	// The top bucket must absorb the largest observable value.
	if got := bucketOf(math.MaxInt64); got != numBuckets-1 {
		t.Fatalf("bucketOf(MaxInt64)=%d, want %d", got, numBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000: quantiles are known and bucket error is bounded by the
	// geometry's 1/subBuckets relative width.
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count=%d, want 1000", s.Count)
	}
	if s.Max != 1000 {
		t.Fatalf("max=%d, want 1000", s.Max)
	}
	if s.Sum != 500500 {
		t.Fatalf("sum=%d, want 500500", s.Sum)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}} {
		got := s.Quantile(tc.q)
		if relErr := math.Abs(got-tc.want) / tc.want; relErr > 1.0/subBuckets {
			t.Errorf("q%.2f = %.1f, want %.1f ± %.0f%%", tc.q, got, tc.want, 100.0/subBuckets)
		}
	}
	if got := s.Quantile(1.0); got != 1000 {
		t.Errorf("q1.0 = %v, want exactly max=1000", got)
	}
}

func TestHistogramNegativeAndEmpty(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(5) // must not panic
	nilH.ObserveSince(time.Now())
	if nilH.Count() != 0 || nilH.Summary().Count != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	h := NewHistogram()
	if s := h.Snapshot(); s.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %v, want 0", s.Quantile(0.5))
	}
	h.Observe(-17)
	if s := h.Snapshot(); s.Count != 1 || s.Counts[0] != 1 {
		t.Fatalf("negative observation must clamp to bucket 0, got %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 500; i++ {
		a.Observe(int64(i))
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(int64(i))
	}
	whole := NewHistogram()
	for i := 1; i <= 1000; i++ {
		whole.Observe(int64(i))
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := whole.Snapshot()
	if merged != want {
		t.Fatalf("merged snapshot differs from whole-stream snapshot")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines while
// snapshots and merges run concurrently; run under -race this is the
// memory-safety proof, and the final snapshot must account for every
// observation exactly.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers = 8
		perG    = 20000
	)
	h := NewHistogram()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: snapshot+merge+quantile must never trip the race detector
		defer wg.Done()
		acc := HistSnapshot{}
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				acc.Merge(s)
				_ = s.Quantile(0.99)
				_ = h.Summary()
			}
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*1000 + i%997))
			}
		}(g)
	}
	for h.Count() < writers*perG {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*perG {
		t.Fatalf("count=%d, want %d", s.Count, writers*perG)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var nilC *Counter
	nilC.Add(3) // no-op, no panic
	if nilC.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	const (
		writers = 8
		perG    = 50000
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != writers*perG {
		t.Fatalf("counter=%d, want %d", got, writers*perG)
	}
}

func TestGauge(t *testing.T) {
	var nilG *Gauge
	nilG.Set(5)
	nilG.Add(1)
	if nilG.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	g := &Gauge{}
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge=%d, want 7", g.Value())
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"op": "get"})
	b := r.Counter("x_total", "ignored on re-register", Labels{"op": "get"})
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("x_total", "", Labels{"op": "scan"})
	if other == a {
		t.Fatal("different labels must return a distinct counter")
	}
	h1 := r.LatencyHistogram("lat_seconds", "", nil)
	h2 := r.LatencyHistogram("lat_seconds", "", nil)
	if h1 != h2 {
		t.Fatal("same histogram name must return the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "", nil)
}

// TestRegistryConcurrent registers from many goroutines while WriteText
// and HistogramSummaries iterate; under -race this is the registration/
// iteration safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WriteText(&sb); err != nil {
					t.Error(err)
					return
				}
				_ = r.HistogramSummaries()
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c := r.Counter(fmt.Sprintf("fam_%d_total", i%20), "", Labels{"g": strconv.Itoa(g)})
				c.Inc()
				h := r.Histogram(fmt.Sprintf("hist_%d", i%10), "", nil)
				h.Observe(int64(i))
				r.GaugeFunc(fmt.Sprintf("gf_%d", i%5), "", nil, func() float64 { return 1 })
			}
		}(g)
	}
	// Let writers and the scraping reader overlap, then stop the reader
	// and join everything.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	// Every writer's counter must have survived concurrent registration.
	var total uint64
	for i := 0; i < 20; i++ {
		for g := 0; g < 8; g++ {
			total += r.Counter(fmt.Sprintf("fam_%d_total", i), "", Labels{"g": strconv.Itoa(g)}).Value()
		}
	}
	if total != 8*200 {
		t.Fatalf("counter total across families = %d, want %d", total, 8*200)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pool_hits_total", "Buffer pool hits.", nil).Add(42)
	r.Gauge("queue_depth", "", Labels{"srv": "a"}).Set(7)
	r.CounterFunc("derived_total", "", nil, func() float64 { return 13 })
	h := r.LatencyHistogram("req_seconds", "Request latency.", Labels{"op": "get"})
	h.Observe(int64(2 * time.Millisecond))
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pool_hits_total counter",
		"pool_hits_total 42",
		`queue_depth{srv="a"} 7`,
		"derived_total 13",
		"# TYPE req_seconds summary",
		`req_seconds{op="get",quantile="0.99"}`,
		`req_seconds_count{op="get"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The one recorded 2ms observation must read back in seconds within
	// the bucket geometry's error.
	vals := parsePromText(t, out)
	p99 := vals[`req_seconds{op="get",quantile="0.99"}`]
	if p99 < 0.002*(1-1.0/subBuckets) || p99 > 0.002*(1+1.0/subBuckets) {
		t.Errorf("p99 = %v s, want ~0.002 s", p99)
	}
}

// parsePromText parses `name{labels} value` sample lines into a map,
// skipping comments. Shared by the end-to-end tests.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:idx]] = v
	}
	return out
}

func TestEvictionTraceRing(t *testing.T) {
	var nilT *EvictionTrace
	nilT.Record(TraceRecord{Kind: TraceEvict}) // no-op
	if nilT.Snapshot() != nil || nilT.Seq() != 0 {
		t.Fatal("nil trace must read empty")
	}
	tr := NewEvictionTrace(4)
	for i := 1; i <= 6; i++ {
		tr.Record(TraceRecord{Kind: TraceEvict, Page: int64(i), Clock: int64(i * 10)})
	}
	got := tr.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len=%d, want 4", len(got))
	}
	for i, rec := range got {
		wantPage := int64(i + 3) // pages 3..6 survive
		if rec.Page != wantPage || rec.Seq != uint64(i+3) {
			t.Fatalf("record %d = %+v, want page %d seq %d", i, rec, wantPage, i+3)
		}
	}
	if tr.Seq() != 6 {
		t.Fatalf("seq=%d, want 6", tr.Seq())
	}
}

func TestTraceKindStrings(t *testing.T) {
	for kind, want := range map[TraceKind]string{
		TraceEvict: "evict", TraceCollapse: "collapse", TracePurge: "purge", TraceKind(99): "unknown",
	} {
		if kind.String() != want {
			t.Errorf("TraceKind(%d).String() = %q, want %q", kind, kind.String(), want)
		}
	}
}

func TestTraceRecordJSONRoundTrip(t *testing.T) {
	in := TraceRecord{Seq: 7, Kind: TraceEvict, Page: 42, Clock: 100, KDist: KDistInfinite}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"kind":"evict"`) {
		t.Fatalf("kind not serialised by name: %s", b)
	}
	var out TraceRecord
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	if err := json.Unmarshal([]byte(`{"kind":"smelt"}`), &out); err == nil {
		t.Fatal("unknown kind name must not decode")
	}
}

func TestHandlerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "", nil).Add(3)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "demo_total 3") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	// The scrape counter itself must appear (self-observability) and count
	// the scrape we just made.
	if !strings.Contains(body, "lruk_obs_scrapes_total 1") {
		t.Errorf("/metrics missing its own scrape counter:\n%s", body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ code=%d, want 200", code)
	}
}

func TestLogLine(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "", nil).Add(9)
	r.Gauge("depth", "", Labels{"q": "main"}).Set(2)
	r.Histogram("sweep", "", nil).Observe(3)
	line := LogLine(r)
	for _, want := range []string{"obs ts=", "hits_total=9", "depth_q_main=2", "sweep_count=1", "sweep_p99="} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
	if strings.ContainsAny(line, "\n") {
		t.Error("log line must be a single line")
	}
}

func TestStartLoggerEmitsAndStops(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", nil).Inc()
	var mu sync.Mutex
	var sb strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	stop := StartLogger(w, r, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := sb.String()
		mu.Unlock()
		if strings.Contains(got, "c_total=1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("logger never emitted")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
