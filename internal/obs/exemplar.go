package obs

// Exemplars link aggregate histograms to concrete traces: alongside its
// buckets, each histogram retains one (value, trace id) pair per latency
// quartile of the bucket range, preferring the slowest traced
// observation seen. Scraping /metrics then answers "which request was
// that p99?" with a trace id the span assembler can expand — the classic
// OpenMetrics exemplar idea, rendered in the 0.0.4 text format as an
// auxiliary `<family>_exemplar{slot=...,trace_id=...}` sample
// (DESIGN.md §17).

// exemplarSlots is the number of retained exemplars per histogram; the
// bucket range is divided into this many equal spans of buckets, so the
// top slot always covers the tail the p99 quantile lives in.
const exemplarSlots = 4

// Exemplar is one retained traced observation.
type Exemplar struct {
	// Value is the raw observed value (the histogram's unit).
	Value int64
	// TraceID identifies the trace that produced it.
	TraceID uint64
}

// exemplarSlot maps a value's bucket to its exemplar slot.
func exemplarSlot(v int64) int {
	if v < 0 {
		v = 0
	}
	return bucketOf(uint64(v)) * exemplarSlots / numBuckets
}

// ObserveTraced is Observe plus exemplar retention: when traceID is
// non-zero the observation competes for its slot's exemplar, winning if
// the slot is empty or it is at least as slow as the incumbent. The
// replacement races benignly (a lost CAS keeps a comparably slow
// exemplar); the allocation happens only for winning traced
// observations, never on the untraced path.
func (h *Histogram) ObserveTraced(v int64, traceID uint64) {
	h.Observe(v)
	if h == nil || traceID == 0 {
		return
	}
	slot := &h.ex[exemplarSlot(v)]
	cur := slot.Load()
	if cur != nil && cur.Value > v {
		return
	}
	slot.CompareAndSwap(cur, &Exemplar{Value: v, TraceID: traceID})
}

// Exemplars returns the histogram's retained exemplars, indexed by slot;
// nil entries are slots no traced observation has reached.
func (h *Histogram) Exemplars() [exemplarSlots]*Exemplar {
	var out [exemplarSlots]*Exemplar
	if h == nil {
		return out
	}
	for i := range h.ex {
		out[i] = h.ex[i].Load()
	}
	return out
}
