package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Merging an empty snapshot must be the identity, in both directions.
func TestHistSnapshotMergeEmpty(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 5, 1000, 1 << 40} {
		h.Observe(v)
	}
	base := h.Snapshot()

	got := base
	got.Merge(HistSnapshot{})
	if got != base {
		t.Fatal("merging an empty snapshot changed the base")
	}

	var empty HistSnapshot
	empty.Merge(base)
	if empty != base {
		t.Fatal("merging into an empty snapshot did not copy the source")
	}

	var both HistSnapshot
	both.Merge(HistSnapshot{})
	if both != (HistSnapshot{}) {
		t.Fatal("empty∪empty must stay empty")
	}
	if q := both.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

// Max must be the max, not the sum, and must survive asymmetric merges.
func TestHistSnapshotMergeMax(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(100)
	b.Observe(7)
	sa, sb := a.Snapshot(), b.Snapshot()

	m := sa
	m.Merge(sb)
	if m.Max != 100 {
		t.Fatalf("max after merge = %d, want 100", m.Max)
	}
	m2 := sb
	m2.Merge(sa)
	if m2.Max != 100 {
		t.Fatalf("max after reverse merge = %d, want 100", m2.Max)
	}
	if m.Count != 2 || m.Sum != 107 {
		t.Fatalf("count/sum after merge = %d/%d, want 2/107", m.Count, m.Sum)
	}
}

// A snapshot taken during concurrent Observe calls can hold a Count that
// disagrees with the bucket total (the fields are individually atomic,
// not mutually). Merge must neither panic nor lose buckets, and Quantile
// must terminate and answer from the buckets it actually holds.
func TestHistSnapshotMergeConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	const writers, perWriter = 4, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(int64(w*1000 + i%997))
			}
		}(w)
	}
	var merged HistSnapshot
	snaps := 0
	for {
		s := h.Snapshot()
		var bucketTotal uint64
		for _, c := range s.Counts {
			bucketTotal += c
		}
		// The mismatch window is real but transient; whichever way this
		// snapshot landed, merging it must be safe.
		merged = HistSnapshot{}
		merged.Merge(s)
		if merged.Quantile(0.5) < 0 {
			t.Fatal("quantile went negative")
		}
		snaps++
		if bucketTotal == uint64(writers*perWriter) {
			break
		}
	}
	wg.Wait()

	final := h.Snapshot()
	merged = HistSnapshot{}
	merged.Merge(final)
	merged.Merge(HistSnapshot{}) // still the identity afterwards
	if merged.Count != writers*perWriter {
		t.Fatalf("final merged count = %d, want %d (snapshots taken mid-run: %d)",
			merged.Count, writers*perWriter, snaps)
	}
	var total uint64
	for _, c := range merged.Counts {
		total += c
	}
	if total != merged.Count {
		t.Fatalf("quiescent bucket total %d != count %d", total, merged.Count)
	}
}

func TestObserveTracedExemplars(t *testing.T) {
	h := NewHistogram()
	h.ObserveTraced(10, 0) // untraced: counts, no exemplar
	if ex := h.Exemplars(); ex[exemplarSlot(10)] != nil {
		t.Fatal("untraced observation retained an exemplar")
	}
	h.ObserveTraced(10, 0xaaa)
	h.ObserveTraced(20, 0xbbb) // same slot, slower: must win
	h.ObserveTraced(5, 0xccc)  // same slot, faster: must lose
	ex := h.Exemplars()
	e := ex[exemplarSlot(10)]
	if e == nil || e.TraceID != 0xbbb || e.Value != 20 {
		t.Fatalf("slot exemplar = %+v, want value 20 / trace bbb", e)
	}
	// A much larger value lands in a higher band, leaving the first
	// exemplar in place.
	h.ObserveTraced(1<<40, 0xddd)
	if e := h.Exemplars()[exemplarSlot(1<<40)]; e == nil || e.TraceID != 0xddd {
		t.Fatalf("tail exemplar = %+v, want trace ddd", e)
	}
	if exemplarSlot(1<<40) == exemplarSlot(10) {
		t.Fatal("test values must land in distinct bands")
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5 (ObserveTraced must still observe)", h.Count())
	}
	// Nil receiver stays a no-op.
	var nilH *Histogram
	nilH.ObserveTraced(1, 1)
	_ = nilH.Exemplars()
}

// The text exposition renders occupied exemplar slots as auxiliary
// samples carrying the trace id.
func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.LatencyHistogram("lruk_test_seconds", "test family.", Labels{"op": "get"})
	h.ObserveTraced(1500000000, 0xdeadbeef) // 1.5 seconds
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := fmt.Sprintf(`lruk_test_seconds_exemplar{op="get",slot="%d",trace_id="00000000deadbeef"} 1.5`,
		exemplarSlot(1500000000))
	if !strings.Contains(out, want) {
		t.Fatalf("exposition lacks exemplar line %q:\n%s", want, out)
	}
}
