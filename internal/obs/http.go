package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the observability HTTP mux for a registry:
//
//	/metrics        Prometheus text exposition of every family
//	/debug/pprof/*  the standard runtime profiles (CPU, heap, goroutine,
//	                block, mutex, trace) via net/http/pprof
//
// The pprof handlers are mounted explicitly rather than through the
// package's DefaultServeMux side effect, so importing obs never exposes
// profiles on a mux the caller did not ask for. Additional endpoints (an
// eviction-trace dump, say) can be added to the returned mux.
func Handler(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	scrapes := r.Counter("lruk_obs_scrapes_total",
		"Number of /metrics scrapes served.", nil)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		scrapes.Inc()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
