package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Health is the readiness report served on /healthz. Serving gates the
// status code; the rest is context for whoever is polling.
type Health struct {
	// Serving is true once the node accepts requests and has not begun
	// draining; false yields a 503 so scripts and balancers can poll the
	// one field that matters.
	Serving bool `json:"serving"`
	// ViewEpoch is the cluster membership epoch the node holds (0 when
	// standalone).
	ViewEpoch uint64 `json:"view_epoch"`
	// RecoveryDone is true once crash recovery (when the backend needed
	// any) has completed; true for backends with nothing to recover.
	RecoveryDone bool `json:"recovery_done"`
	// Node is the node's cluster identity, if it has one.
	Node string `json:"node,omitempty"`
}

// HandlerOption extends the observability mux with optional endpoints.
type HandlerOption func(mux *http.ServeMux)

// WithHealth mounts /healthz: 200 with the Health JSON while the node is
// serving, 503 otherwise. The callback is evaluated per request, so the
// endpoint tracks drains and view changes live.
func WithHealth(health func() Health) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			h := health()
			w.Header().Set("Content-Type", "application/json")
			if !h.Serving {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(h)
		})
	}
}

// spansReply is the /spans response body.
type spansReply struct {
	Node  string       `json:"node"`
	Spans []SpanRecord `json:"spans"`
}

// WithSpans mounts /spans: the node's retained span ring as JSON, oldest
// first, optionally filtered to one trace with ?trace=<16-hex-digit id>.
// The cluster-wide assembler (lrukcluster trace) fetches this endpoint
// from every node and stitches the tree.
func WithSpans(rec *SpanRecorder) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
			var spans []SpanRecord
			if q := req.URL.Query().Get("trace"); q != "" {
				id, err := ParseHex64(q)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				spans = rec.TraceSpans(uint64(id))
			} else {
				spans = rec.Snapshot()
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(spansReply{Node: rec.Node(), Spans: spans})
		})
	}
}

// Handler returns the observability HTTP mux for a registry:
//
//	/metrics        Prometheus text exposition of every family
//	/debug/pprof/*  the standard runtime profiles (CPU, heap, goroutine,
//	                block, mutex, trace) via net/http/pprof
//
// plus whatever the options mount (/healthz via WithHealth, /spans via
// WithSpans). The pprof handlers are mounted explicitly rather than
// through the package's DefaultServeMux side effect, so importing obs
// never exposes profiles on a mux the caller did not ask for. Additional
// endpoints (an eviction-trace dump, say) can be added to the returned
// mux.
func Handler(r *Registry, opts ...HandlerOption) *http.ServeMux {
	mux := http.NewServeMux()
	scrapes := r.Counter("lruk_obs_scrapes_total",
		"Number of /metrics scrapes served.", nil)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		scrapes.Inc()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}
