package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: the first subBuckets buckets hold the values
// 0..subBuckets-1 exactly; above that, each power-of-two octave is split
// into subBuckets log-spaced buckets, so any recorded value lands in a
// bucket whose width is at most 1/subBuckets of its magnitude (±12.5%
// relative quantile error with subBuckets=4). The geometry is fixed at
// compile time: no configuration, no allocation, and snapshots from any
// two histograms merge bucket-for-bucket.
const (
	subBucketBits = 2
	subBuckets    = 1 << subBucketBits // 4
	// numBuckets covers the full non-negative int64 range: 4 exact buckets
	// plus 4 buckets per octave for octaves 2^2..2^62.
	numBuckets = subBuckets * 62
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	h := bits.Len64(v) - 1 // MSB position, >= subBucketBits
	e := h - subBucketBits // octave above the exact range
	sub := (v >> uint(e)) & (subBuckets - 1)
	b := subBuckets*(e+1) + int(sub)
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// bucketBounds returns bucket b's half-open value range [lo, hi).
func bucketBounds(b int) (lo, hi uint64) {
	if b < subBuckets {
		return uint64(b), uint64(b) + 1
	}
	e := uint(b/subBuckets - 1)
	sub := uint64(b % subBuckets)
	lo = (subBuckets + sub) << e
	return lo, lo + 1<<e
}

// Histogram is a fixed-geometry, log-scale histogram safe for concurrent
// recording: one atomic bucket increment, an atomic sum add, and a CAS max
// per observation, no locks, no allocation. Observe on a nil *Histogram is
// a no-op, so instrumented paths carry optional histogram fields freely.
//
// Values are raw int64s in whatever unit the caller records (the registry
// notes a nanoseconds→seconds scale for latency families at exposition).
// Negative observations clamp to zero.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	// ex retains one traced observation per latency quartile — see
	// exemplar.go. Untraced observations never touch it.
	ex [exemplarSlots]atomic.Pointer[Exemplar]
	// scale is applied at exposition only (set by the registry; 0 = 1).
	scale float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in nanoseconds — the
// idiom for latency families.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is a point-in-time copy of a histogram, mergeable with
// snapshots of any other histogram (the geometry is global). Under
// concurrent recording the copied fields are individually exact but not
// mutually atomic — the usual monitoring contract.
type HistSnapshot struct {
	Count  uint64
	Sum    int64
	Max    int64
	Counts [numBuckets]uint64
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge adds o's observations into s.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
}

// Quantile returns the q-quantile (0 < q <= 1) in the histogram's raw
// unit, interpolated linearly inside the target bucket and clamped to the
// recorded maximum. Zero observations yield zero.
func (s *HistSnapshot) Quantile(q float64) float64 {
	// Rank against the bucket total, not s.Count: under concurrent
	// recording the two can differ transiently, and the walk below must
	// terminate inside the buckets it is iterating.
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketBounds(b)
			frac := float64(target-cum) / float64(c)
			v := float64(lo) + frac*float64(hi-lo)
			if s.Max > 0 && v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		cum += c
	}
	return float64(s.Max)
}

// Mean returns the mean observation in the raw unit, or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HistSummary is the compact, JSON-serialisable digest of a histogram that
// travels on the STATS wire response: observation count plus p50/p95/p99,
// max and mean in the family's exposition unit (seconds for latency
// families, raw otherwise).
type HistSummary struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Summary digests the histogram's current state in its exposition unit.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	s := h.Snapshot()
	return s.summary(h.scale)
}

func (s *HistSnapshot) summary(scale float64) HistSummary {
	if scale == 0 {
		scale = 1
	}
	return HistSummary{
		Count: s.Count,
		P50:   s.Quantile(0.50) * scale,
		P95:   s.Quantile(0.95) * scale,
		P99:   s.Quantile(0.99) * scale,
		Max:   float64(s.Max) * scale,
		Mean:  s.Mean() * scale,
	}
}
