package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the distributed-tracing half of the observability kernel:
// a trace context that rides the wire protocol and context.Context, and a
// lock-free per-node span recorder in the spirit of the metrics kernel —
// fixed memory, no locks on the record path, and ~zero cost when a
// request is not sampled (guarded by TestSpanOverheadGuard next to
// TestObsOverheadGuard). DESIGN.md §17 describes the span model.

// TraceContext identifies one logical request across layers and nodes:
// an 8-byte trace id shared by every span of the request, the span id of
// the current enclosing operation (the parent for anything started
// beneath it), and whether the request was sampled. The zero value means
// "no trace".
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// traceKey is the context.Context key for a TraceContext. An unexported
// zero-size type keeps the key collision-free without allocating.
type traceKey struct{}

// ContextWithTrace attaches tc to ctx. Unsampled contexts are not
// attached at all: the unsampled hot path then pays exactly one nil-map
// ctx.Value miss at each probe site instead of carrying a live value.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Sampled {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFrom extracts the trace context from ctx; the zero value when none
// is attached.
func TraceFrom(ctx context.Context) TraceContext {
	tc, _ := ctx.Value(traceKey{}).(TraceContext)
	return tc
}

// SpanKind names what a span measured. The set is closed on purpose: each
// kind corresponds to one instrumented seam of the stack, so a waterfall
// reads the same on every node.
type SpanKind uint8

const (
	SpanRequest        SpanKind = iota // whole server-side request (annot = wire op)
	SpanQueueWait                      // admission-queue wait before a worker picked the request up
	SpanPoolFetch                      // buffer-pool fetch, hit or miss (annot = page id)
	SpanPoolMiss                       // the miss protocol: frame obtention + disk read (annot = page id)
	SpanPoolCoalesce                   // parked on another fetch's in-flight read (annot = page id)
	SpanDiskRead                       // storage backend read (annot = page id)
	SpanDiskWrite                      // storage backend write (annot = page id)
	SpanWALAppend                      // WAL record append, latch held (annot = page id)
	SpanWALFsync                       // WAL group-commit fsync wait (annot = page id)
	SpanRetryWait                      // backoff sleep between disk retry attempts (annot = attempt)
	SpanBreakerReject                  // operation refused by an open circuit breaker (annot = page id)
	SpanMoved                          // request bounced with a MOVED redirect (annot = wire op)
	SpanRebalancePhase                 // one phase of the rebalance coordinator (annot = phase index)
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanRequest:        "request",
	SpanQueueWait:      "queue_wait",
	SpanPoolFetch:      "pool_fetch",
	SpanPoolMiss:       "pool_miss",
	SpanPoolCoalesce:   "pool_coalesce",
	SpanDiskRead:       "disk_read",
	SpanDiskWrite:      "disk_write",
	SpanWALAppend:      "wal_append",
	SpanWALFsync:       "wal_fsync",
	SpanRetryWait:      "retry_wait",
	SpanBreakerReject:  "breaker_reject",
	SpanMoved:          "moved",
	SpanRebalancePhase: "rebalance_phase",
}

// String returns the kind's wire name.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind by name, keeping /spans output and the
// stitcher independent of the constants' numeric order.
func (k SpanKind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(spanKindNames) {
		return nil, fmt.Errorf("obs: unknown span kind %d", uint8(k))
	}
	return json.Marshal(spanKindNames[k])
}

// UnmarshalJSON decodes a kind name.
func (k *SpanKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, name := range spanKindNames {
		if name == s {
			*k = SpanKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown span kind %q", s)
}

// Hex64 is a 64-bit id rendered as 16 hex digits in JSON. Raw uint64s
// would be mangled by float64-based JSON consumers (and the assembler's
// round-trip); fixed-width hex also makes ids greppable across node
// dumps.
type Hex64 uint64

// MarshalJSON implements json.Marshaler.
func (h Hex64) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", h.String())), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Hex64) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseHex64(s)
	if err != nil {
		return err
	}
	*h = v
	return nil
}

// String renders the id as 16 lowercase hex digits.
func (h Hex64) String() string { return fmt.Sprintf("%016x", uint64(h)) }

// ParseHex64 parses a 16-digit hex id (the Hex64/trace-id rendering).
func ParseHex64(s string) (Hex64, error) {
	var v uint64
	if len(s) == 0 || len(s) > 16 {
		return 0, fmt.Errorf("obs: bad hex64 %q", s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("obs: bad hex64 %q", s)
		}
		v = v<<4 | d
	}
	return Hex64(v), nil
}

// SpanRecord is one finished span as stored in the ring and served over
// /spans. Node is stamped at dump time (the recorder belongs to one node;
// storing it per record would waste ring memory).
type SpanRecord struct {
	Trace  Hex64    `json:"trace"`
	Span   Hex64    `json:"span"`
	Parent Hex64    `json:"parent,omitempty"`
	Kind   SpanKind `json:"kind"`
	Start  int64    `json:"start_ns"` // wall clock, unix nanoseconds
	Dur    int64    `json:"dur_ns"`
	Annot  int64    `json:"annot,omitempty"` // kind-specific detail: page id, op, attempt, phase
	Node   string   `json:"node,omitempty"`
}

// spanSlot is one seqlock-guarded ring entry. Writers bump seq to odd,
// store the fields, bump back to even; snapshotters skip odd slots and
// re-check seq after reading, so a torn record is discarded rather than
// served. Every field is individually atomic — the seqlock provides the
// logical consistency, the atomics keep the unsynchronised overlap clean
// under the race detector with no lock and no allocation on the record
// path.
type spanSlot struct {
	seq    atomic.Uint64
	trace  atomic.Uint64
	span   atomic.Uint64
	parent atomic.Uint64
	kind   atomic.Uint64
	start  atomic.Int64
	dur    atomic.Int64
	annot  atomic.Int64
}

// SpanRecorder is the per-node span ring: fixed capacity, overwriting
// oldest-first, no locks anywhere on the record path. Start/Finish on an
// unsampled context are two branches and return immediately — that is
// the cost the whole request fleet pays when tracing is off.
type SpanRecorder struct {
	node   string
	slots  []spanSlot
	cursor atomic.Uint64
	ids    atomic.Uint64
	salt   uint64
}

// NewSpanRecorder returns a recorder of the given capacity (minimum 1)
// for the named node. The node name salts generated ids so two nodes
// booted at the same instant never mint colliding span ids.
func NewSpanRecorder(node string, capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	salt := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(node); i++ {
		salt = splitmix64(salt ^ uint64(node[i]))
	}
	r := &SpanRecorder{
		node:  node,
		slots: make([]spanSlot, capacity),
		salt:  salt,
	}
	r.ids.Store(salt)
	return r
}

// splitmix64 is the SplitMix64 finaliser: a cheap bijective mixer whose
// outputs over sequential inputs are indistinguishable from random draws
// for id purposes.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Node returns the recorder's node name.
func (r *SpanRecorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// NewTraceID mints a fresh non-zero trace id. Ids are node-salted
// splitmix64 draws, so concurrent nodes and processes do not collide in
// practice.
func (r *SpanRecorder) NewTraceID() uint64 { return r.newID() }

// NewSpanID mints a fresh non-zero span id.
func (r *SpanRecorder) NewSpanID() uint64 { return r.newID() }

func (r *SpanRecorder) newID() uint64 {
	for {
		if id := splitmix64(r.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// Emit records a finished span directly. It is the retrospective path —
// tail-sampled requests whose spans are reconstructed after the fact,
// and point events with no duration (breaker rejections, MOVED bounces).
func (r *SpanRecorder) Emit(trace, span, parent uint64, kind SpanKind, start time.Time, dur time.Duration, annot int64) {
	if r == nil || trace == 0 {
		return
	}
	r.write(SpanRecord{
		Trace:  Hex64(trace),
		Span:   Hex64(span),
		Parent: Hex64(parent),
		Kind:   kind,
		Start:  start.UnixNano(),
		Dur:    int64(dur),
		Annot:  annot,
	})
}

func (r *SpanRecorder) write(rec SpanRecord) {
	slot := &r.slots[(r.cursor.Add(1)-1)%uint64(len(r.slots))]
	slot.seq.Add(1) // odd: writing
	slot.trace.Store(uint64(rec.Trace))
	slot.span.Store(uint64(rec.Span))
	slot.parent.Store(uint64(rec.Parent))
	slot.kind.Store(uint64(rec.Kind))
	slot.start.Store(rec.Start)
	slot.dur.Store(rec.Dur)
	slot.annot.Store(rec.Annot)
	slot.seq.Add(1) // even: published
}

// Span is an in-flight span token. The zero value (unsampled, or nil
// recorder) is inert: Finish on it returns immediately. It is a value,
// not a pointer, so starting a span never allocates.
type Span struct {
	r      *SpanRecorder
	trace  uint64
	id     uint64
	parent uint64
	kind   SpanKind
	start  time.Time
}

// Start begins a span under tc. When the recorder is nil or the context
// unsampled it returns the inert zero Span without reading the clock —
// this early return is the entire disabled-tracing cost on the hot path.
// (The sampled branch lives in a separate function so Start itself stays
// within the inliner's budget; TestSpanOverheadGuard holds it to the
// ceiling.)
func (r *SpanRecorder) Start(tc TraceContext, kind SpanKind) Span {
	if r == nil || !tc.Sampled {
		return Span{}
	}
	return r.startSampled(tc, kind)
}

func (r *SpanRecorder) startSampled(tc TraceContext, kind SpanKind) Span {
	return Span{
		r:      r,
		trace:  tc.TraceID,
		id:     r.newID(),
		parent: tc.SpanID,
		kind:   kind,
		start:  time.Now(),
	}
}

// StartAt is Start with an explicit begin time, for spans whose interval
// opened before the sampling decision (queue wait measured from enqueue).
func (r *SpanRecorder) StartAt(tc TraceContext, kind SpanKind, start time.Time) Span {
	if r == nil || !tc.Sampled {
		return Span{}
	}
	return Span{
		r:      r,
		trace:  tc.TraceID,
		id:     r.newID(),
		parent: tc.SpanID,
		kind:   kind,
		start:  start,
	}
}

// ID returns the span's id (0 for the inert zero Span), for threading as
// the parent of child spans.
func (s Span) ID() uint64 { return s.id }

// Context returns a trace context whose SpanID is this span, so children
// started beneath it nest correctly.
func (s Span) Context() TraceContext {
	return TraceContext{TraceID: s.trace, SpanID: s.id, Sampled: s.r != nil}
}

// Finish records the span with the given annotation. Inert spans return
// immediately (the recording branch is split out for inlinability, as
// with Start).
func (s Span) Finish(annot int64) {
	if s.r == nil {
		return
	}
	s.finish(annot)
}

func (s Span) finish(annot int64) {
	s.r.write(SpanRecord{
		Trace:  Hex64(s.trace),
		Span:   Hex64(s.id),
		Parent: Hex64(s.parent),
		Kind:   s.kind,
		Start:  s.start.UnixNano(),
		Dur:    int64(time.Since(s.start)),
		Annot:  annot,
	})
}

// Snapshot returns the retained spans, oldest first, each stamped with
// the recorder's node name. Slots mid-write (odd seq, or seq changed
// under the copy) are skipped: the recorder never blocks a writer to
// satisfy a reader.
func (r *SpanRecorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	n := uint64(len(r.slots))
	cur := r.cursor.Load()
	start := uint64(0)
	if cur > n {
		start = cur - n
	}
	out := make([]SpanRecord, 0, n)
	for i := start; i < cur; i++ {
		slot := &r.slots[i%n]
		s1 := slot.seq.Load()
		if s1%2 != 0 {
			continue
		}
		rec := SpanRecord{
			Trace:  Hex64(slot.trace.Load()),
			Span:   Hex64(slot.span.Load()),
			Parent: Hex64(slot.parent.Load()),
			Kind:   SpanKind(slot.kind.Load()),
			Start:  slot.start.Load(),
			Dur:    slot.dur.Load(),
			Annot:  slot.annot.Load(),
			Node:   r.node,
		}
		if slot.seq.Load() != s1 {
			continue
		}
		if rec.Trace == 0 {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// TraceSpans returns the retained spans of one trace, oldest first.
func (r *SpanRecorder) TraceSpans(trace uint64) []SpanRecord {
	all := r.Snapshot()
	out := all[:0]
	for _, rec := range all {
		if rec.Trace == Hex64(trace) {
			out = append(out, rec)
		}
	}
	return out
}

// Sampler decides which requests are traced. Head sampling is a
// deterministic seeded hash of the trace id — the same id samples the
// same way on every node, so a trace is never half-recorded across the
// cluster. Tail bias is the caller's half of the contract: requests that
// ran slower than SlowThreshold, errored, or were shed get their spans
// emitted retrospectively even when the head draw said no (ShouldTail).
type Sampler struct {
	// Fraction of traces head-sampled, in [0, 1]. Zero disables head
	// sampling (tail bias still applies).
	Fraction float64
	// Seed perturbs the sampling hash so fleets can decorrelate.
	Seed uint64
	// SlowThreshold is the tail-bias latency bar. Zero disables the
	// slow-request tail rule (errors and sheds are still tailed when
	// tracing is armed).
	SlowThreshold time.Duration
}

// Sample reports whether the trace id is head-sampled.
func (s Sampler) Sample(traceID uint64) bool {
	if traceID == 0 || s.Fraction <= 0 {
		return false
	}
	if s.Fraction >= 1 {
		return true
	}
	// Top 53 bits of the mixed id against the fraction's dyadic scaling:
	// exact for every float64 fraction, no modulo bias.
	return splitmix64(traceID^s.Seed)>>11 < uint64(s.Fraction*float64(uint64(1)<<53))
}

// ShouldTail reports whether a request that was NOT head-sampled should
// have its spans emitted retrospectively: it exceeded the latency bar,
// or it failed (the caller passes failed=true for errors and sheds).
func (s Sampler) ShouldTail(dur time.Duration, failed bool) bool {
	if failed {
		return true
	}
	return s.SlowThreshold > 0 && dur >= s.SlowThreshold
}
