package obs

import (
	"fmt"
	"sync"
)

// This file implements the eviction trace: a fixed-capacity ring buffer of
// policy decisions (victim chosen, correlated burst collapsed, history
// block purged) that answers the question hit/miss counters cannot — *why*
// did LRU-K pick that victim? Each record carries the page, the replacer's
// logical clock, and the victim's Backward K-distance at the moment of the
// decision, so a surprising eviction can be audited against Definition 2.2
// after the fact.

// TraceKind classifies one trace record.
type TraceKind uint8

// Trace record kinds.
const (
	// TraceEvict records a victim selection: Page was evicted at Clock
	// with Backward K-distance KDist (KDistInfinite when the page had
	// fewer than K uncorrelated references on record).
	TraceEvict TraceKind = iota + 1
	// TraceCollapse records a correlated reference (§2.1.1): a reference
	// to Page within the Correlated Reference Period of its previous one,
	// absorbed into the burst instead of advancing its history.
	TraceCollapse
	// TracePurge records the retention demon (§2.1.2) dropping Page's
	// history control block after its Retained Information Period expired.
	TracePurge
	// TraceCorrupt records a detected page corruption and its fate: KDist
	// carries 1 when the page was repaired in place, 0 when it was
	// quarantined as unrepairable. Clock carries the corruption kind
	// (storage.CorruptKind) — the trace ring stays policy-agnostic, so
	// the record reuses the generic integer fields.
	TraceCorrupt
)

// String names the kind for logs and dumps.
func (k TraceKind) String() string {
	switch k {
	case TraceEvict:
		return "evict"
	case TraceCollapse:
		return "collapse"
	case TracePurge:
		return "purge"
	case TraceCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// MarshalJSON serialises the kind by name, so a trace dump reads
// "kind":"evict" rather than a bare enum value.
func (k TraceKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the name form produced by MarshalJSON.
func (k *TraceKind) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"evict"`:
		*k = TraceEvict
	case `"collapse"`:
		*k = TraceCollapse
	case `"purge"`:
		*k = TracePurge
	case `"corrupt"`:
		*k = TraceCorrupt
	default:
		return fmt.Errorf("obs: unknown trace kind %s", b)
	}
	return nil
}

// KDistInfinite marks an infinite Backward K-distance in a trace record
// (the victim was chosen by the subsidiary LRU rule among ∞-distance
// pages).
const KDistInfinite = int64(-1)

// TraceRecord is one policy decision.
type TraceRecord struct {
	// Seq is the record's global sequence number, monotone from 1; gaps
	// against the oldest retained record tell how much history the ring
	// has dropped.
	Seq  uint64    `json:"seq"`
	Kind TraceKind `json:"kind"`
	// Page is the page the decision concerned.
	Page int64 `json:"page"`
	// Clock is the policy's logical time (reference count) at the
	// decision.
	Clock int64 `json:"clock"`
	// KDist is the Backward K-distance for TraceEvict records
	// (KDistInfinite for ∞); zero for other kinds.
	KDist int64 `json:"kdist"`
	// Trace is the hex trace id of the sampled fetch that forced this
	// eviction, when one did (StampTrace); empty otherwise. It links a
	// traced slow miss on /spans to the policy decision it triggered on
	// /trace.
	Trace string `json:"trace,omitempty"`
}

// EvictionTrace is the concurrent ring buffer of TraceRecords. Recording
// takes one mutex — eviction decisions already serialise on the replacer's
// lock, so the trace adds no new contention edge — and never allocates
// after construction.
type EvictionTrace struct {
	mu   sync.Mutex
	buf  []TraceRecord
	seq  uint64
	next int // ring write position
	full bool
}

// NewEvictionTrace returns a trace retaining the last capacity records
// (minimum 1).
func NewEvictionTrace(capacity int) *EvictionTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &EvictionTrace{buf: make([]TraceRecord, capacity)}
}

// Record appends one decision, assigning its sequence number, and
// overwrites the oldest record once the ring is full. Safe on a nil
// receiver.
func (t *EvictionTrace) Record(rec TraceRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	rec.Seq = t.seq
	t.buf[t.next] = rec
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// stampScan bounds how far back StampTrace searches: the eviction it is
// stamping was recorded on the same goroutine moments ago, so only
// concurrent evictions can sit between it and the ring head.
const stampScan = 32

// StampTrace marks the most recent TraceEvict record for page with the
// given trace id. The pool calls it right after a sampled fetch's
// eviction sweep secured the victim's frame — the replacer recorded the
// TraceEvict synchronously inside Evict, so the record exists; the
// bounded backward scan tolerates concurrent decisions having landed
// since. Safe on a nil receiver; a zero trace id is ignored.
func (t *EvictionTrace) StampTrace(page int64, traceID uint64) {
	if t == nil || traceID == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.buf)
	limit := n
	if !t.full {
		limit = t.next
	}
	if limit > stampScan {
		limit = stampScan
	}
	for i := 1; i <= limit; i++ {
		rec := &t.buf[(t.next-i+n)%n]
		if rec.Kind == TraceEvict && rec.Page == page {
			rec.Trace = Hex64(traceID).String()
			return
		}
	}
}

// Snapshot returns the retained records, oldest first.
func (t *EvictionTrace) Snapshot() []TraceRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TraceRecord
	if t.full {
		out = make([]TraceRecord, 0, len(t.buf))
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = make([]TraceRecord, t.next)
		copy(out, t.buf[:t.next])
	}
	return out
}

// Seq returns the sequence number of the most recent record (the total
// recorded since construction).
func (t *EvictionTrace) Seq() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}
