package obs

import (
	"testing"
	"time"
)

// BenchmarkObsOverhead measures the combined cost of one hot-path record:
// a counter increment plus a histogram observation — exactly what an
// instrumented pool fetch pays per operation (the time.Now() calls are
// benchmarked separately below, since the caller pays them only when
// metrics are configured). The budget documented in DESIGN.md §12 is
// ~50 ns; TestObsOverheadGuard enforces a CI-noise-tolerant ceiling.
func BenchmarkObsOverhead(b *testing.B) {
	c := NewCounter()
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			c.Inc()
			h.Observe(v)
			v = (v + 4097) & (1<<20 - 1)
		}
	})
}

// BenchmarkObsOverheadDisabled measures the same record against nil
// instruments — the disabled configuration every un-instrumented caller
// runs. This must be a couple of predictable branches.
func BenchmarkObsOverheadDisabled(b *testing.B) {
	var c *Counter
	var h *Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			c.Inc()
			h.Observe(v)
			v = (v + 4097) & (1<<20 - 1)
		}
	})
}

// BenchmarkObsTimedRecord adds the two time.Now() calls an instrumented
// latency path pays around the work it measures.
func BenchmarkObsTimedRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		h.ObserveSince(start)
	}
}

func BenchmarkHistogramSnapshot(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Observe(int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		_ = s.Quantile(0.99)
	}
}
