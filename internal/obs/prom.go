package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4). Counters and gauges emit one sample per series;
// histograms emit the summary form — precomputed quantiles plus _sum and
// _count — which carries the p50/p95/p99 the log-bucket geometry supports
// without shipping hundreds of bucket lines per family.

// summaryQuantiles are the quantiles every histogram family exposes.
var summaryQuantiles = []struct {
	q     float64
	label string
}{
	{0.50, "0.5"},
	{0.95, "0.95"},
	{0.99, "0.99"},
	{1.0, "1"}, // clamped to the recorded max
}

// WriteText renders every family in the registry, sorted by name, in
// Prometheus text format. Collector callbacks (CounterFunc/GaugeFunc) are
// evaluated during the write, outside the registry lock.
func (r *Registry) WriteText(w io.Writer) error {
	fams := r.snapshotFamilies()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		r.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		r.mu.Unlock()
		sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case KindCounter:
		v := 0.0
		switch {
		case s.cFunc != nil:
			v = s.cFunc()
		case s.counter != nil:
			v = float64(s.counter.Value())
		}
		return writeSample(w, f.name, s.labels, "", v)
	case KindGauge:
		v := 0.0
		switch {
		case s.gFunc != nil:
			v = s.gFunc()
		case s.gauge != nil:
			v = float64(s.gauge.Value())
		}
		return writeSample(w, f.name, s.labels, "", v)
	case KindHistogram:
		if s.hist == nil {
			return nil
		}
		scale := f.scale
		if scale == 0 {
			scale = 1
		}
		snap := s.hist.Snapshot()
		for _, sq := range summaryQuantiles {
			v := snap.Quantile(sq.q) * scale
			if err := writeSample(w, f.name, s.labels, `quantile="`+sq.label+`"`, v); err != nil {
				return err
			}
		}
		if err := writeSample(w, f.name+"_sum", s.labels, "", float64(snap.Sum)*scale); err != nil {
			return err
		}
		if err := writeSample(w, f.name+"_count", s.labels, "", float64(snap.Count)); err != nil {
			return err
		}
		// Exemplars ride as an auxiliary sample per occupied slot, linking
		// the family's latency quartiles to concrete trace ids
		// (exemplar.go; slot 3 covers the p99 tail).
		for i, e := range s.hist.Exemplars() {
			if e == nil {
				continue
			}
			extra := fmt.Sprintf(`slot="%d",trace_id="%016x"`, i, e.TraceID)
			if err := writeSample(w, f.name+"_exemplar", s.labels, extra, float64(e.Value)*scale); err != nil {
				return err
			}
		}
		return nil
	}
	return nil
}

// writeSample emits one `name{labels} value` line. extra is an additional
// rendered label pair (the summary quantile), appended after the series
// labels.
func writeSample(w io.Writer, name, labels, extra string, v float64) error {
	lbl := labels
	if extra != "" {
		if lbl != "" {
			lbl += ","
		}
		lbl += extra
	}
	if lbl != "" {
		lbl = "{" + lbl + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, lbl, formatFloat(v))
	return err
}

// formatFloat renders v the way Prometheus clients do: integral values
// without an exponent, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
