package obs

import "testing"

// TestObsOverheadGuard runs BenchmarkObsOverhead's loop via
// testing.Benchmark and fails if a combined counter-increment plus
// histogram-record exceeds the ceiling. The expected cost is ~50 ns
// (see DESIGN.md §12); the ceiling is 4x that so shared CI boxes do
// not flake, while still catching a regression that would, say, put a
// lock or an allocation on the record path. Skipped under -race (the
// detector multiplies atomic costs) and in -short mode.
func TestObsOverheadGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("overhead guard is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping overhead guard in short mode")
	}
	res := testing.Benchmark(func(b *testing.B) {
		c := NewCounter()
		h := NewHistogram()
		v := int64(0)
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Observe(v)
			v = (v + 4097) & (1<<20 - 1)
		}
	})
	const ceilingNs = 200
	if got := res.NsPerOp(); got > ceilingNs {
		t.Fatalf("counter+histogram record costs %d ns/op, ceiling %d ns", got, ceilingNs)
	}
	if res.AllocsPerOp() != 0 {
		t.Fatalf("record path allocates %d objects/op, must be 0", res.AllocsPerOp())
	}
}
