package db

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// scrape fetches /metrics over HTTP and parses every sample line into a
// map keyed `name` or `name{labels}`.
func scrape(t *testing.T, srv *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, perr := strconv.ParseFloat(line[idx+1:], 64)
		if perr != nil {
			t.Fatalf("malformed value in %q: %v", line, perr)
		}
		out[line[:idx]] = v
	}
	return out
}

// TestObsMetricsReconcileWithSnapshot runs a deterministic workload with the
// full observability stack armed, then asserts the /metrics exposition and
// db.StatsSnapshot agree exactly: both are views of the same atomics, so
// any divergence is a wiring bug.
func TestObsMetricsReconcileWithSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	database, err := Open(Config{
		Frames: 16,
		K:      2,
		ReplacerOptions: core.Options{
			CorrelatedReferencePeriod: 2,
			RetainedInformationPeriod: 100,
		},
		RecordCacheSize:   8,
		Obs:               reg,
		EvictionTraceSize: 1 << 20, // retain everything; kind counts must reconcile
	})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()

	if err := database.LoadCustomers(200); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(42)
	for i := 0; i < 500; i++ {
		id := int64(rng.Intn(200))
		if _, err := database.Lookup(id); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := database.UpdateCustomer(id, byte(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := database.FlushAll(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	vals := scrape(t, srv)
	snap := database.StatsSnapshot()

	for name, want := range map[string]float64{
		"lruk_pool_hits_total":           float64(snap.Pool.Hits),
		"lruk_pool_misses_total":         float64(snap.Pool.Misses),
		"lruk_pool_coalesced_total":      float64(snap.Pool.Coalesced),
		"lruk_pool_evictions_total":      float64(snap.Pool.Evictions),
		"lruk_pool_write_backs_total":    float64(snap.Pool.WriteBacks),
		"lruk_pool_read_errors_total":    float64(snap.Pool.ReadErrors),
		"lruk_pool_write_errors_total":   float64(snap.Pool.WriteErrors),
		"lruk_pool_breaker_trips_total":  float64(snap.Pool.BreakerTrips),
		"lruk_pool_quarantined":          float64(snap.Quarantined),
		"lruk_pool_breaker_open_stripes": float64(snap.BreakerOpenStripes),
		"lruk_pool_hit_ratio":            snap.PoolHitRatio,
		"lruk_disk_reads_total":          float64(snap.Disk.Reads),
		"lruk_disk_writes_total":         float64(snap.Disk.Writes),
		"lruk_disk_allocated_total":      float64(snap.Disk.Allocated),
		"lruk_disk_service_micros_total": float64(snap.Disk.ServiceMicros),
		"lruk_policy_evictions_total":    float64(snap.Policy.Evictions),
		"lruk_policy_collapses_total":    float64(snap.Policy.Collapses),
		"lruk_policy_purges_total":       float64(snap.Policy.Purges),
		"lruk_policy_history_blocks":     float64(snap.Policy.HistoryBlocks),
		"lruk_policy_evictable":          float64(snap.Policy.Evictable),
		"lruk_record_cache_hits_total":   float64(snap.RecordCache.Hits),
		"lruk_record_cache_misses_total": float64(snap.RecordCache.Misses),
		"lruk_corrupt_detected_total":    float64(snap.Pool.CorruptDetected),
		"lruk_repair_success_total":      float64(snap.Pool.CorruptRepaired),
		"lruk_repair_failed_total":       float64(snap.Pool.CorruptQuarantined),
		"lruk_scrub_pages_total":         float64(snap.Pool.ScrubPages),
		"lruk_scrub_corrupt_total":       float64(snap.Pool.ScrubCorrupt),
		"lruk_pool_poisoned_pages":       float64(snap.PoisonedPages),
		// Every FetchCtx records exactly one observation; NewPage counts a
		// miss per allocation without running the fetch path, hence the
		// Allocated subtraction.
		"lruk_pool_fetch_seconds_count": float64(snap.Pool.Hits + snap.Pool.Misses - snap.Disk.Allocated),
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("/metrics missing %s", name)
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, /metrics disagrees with StatsSnapshot %v", name, got, want)
		}
	}

	// The workload must actually have exercised the interesting paths, or
	// the equalities above are vacuous.
	if snap.Pool.Hits == 0 || snap.Pool.Misses == 0 || snap.Pool.Evictions == 0 {
		t.Fatalf("workload too tame: %+v", snap.Pool)
	}
	if snap.Policy.Collapses == 0 {
		t.Fatal("expected CRP collapses from the update read-modify-write pairs")
	}
	if snap.Policy.Purges == 0 {
		t.Fatal("expected RIP purges with RetainedInformationPeriod=100")
	}

	// Per-stripe disk histograms must sum to the disk ledger: every
	// successful read was timed into exactly one stripe's histogram.
	var readObs float64
	for name, v := range vals {
		if strings.HasPrefix(name, "lruk_disk_read_seconds_count{") {
			readObs += v
		}
	}
	if readObs != float64(snap.Disk.Reads) {
		t.Errorf("disk read histogram counts sum to %v, ledger says %d", readObs, snap.Disk.Reads)
	}

	// Eviction trace: nothing dropped (huge ring), so per-kind record
	// counts must equal the policy counters exactly.
	trace := database.EvictionTrace()
	kinds := map[obs.TraceKind]uint64{}
	var lastSeq uint64
	for _, rec := range trace {
		if rec.Seq <= lastSeq {
			t.Fatalf("trace sequence not strictly increasing at %+v", rec)
		}
		lastSeq = rec.Seq
		kinds[rec.Kind]++
	}
	if kinds[obs.TraceEvict] != snap.Policy.Evictions {
		t.Errorf("trace holds %d evict records, policy counted %d", kinds[obs.TraceEvict], snap.Policy.Evictions)
	}
	if kinds[obs.TraceCollapse] != snap.Policy.Collapses {
		t.Errorf("trace holds %d collapse records, policy counted %d", kinds[obs.TraceCollapse], snap.Policy.Collapses)
	}
	if kinds[obs.TracePurge] != snap.Policy.Purges {
		t.Errorf("trace holds %d purge records, policy counted %d", kinds[obs.TracePurge], snap.Policy.Purges)
	}
	// Every evict record must carry a plausible K-distance: infinite, or
	// positive and no larger than the clock at the decision.
	for _, rec := range trace {
		if rec.Kind != obs.TraceEvict {
			continue
		}
		if rec.KDist != obs.KDistInfinite && (rec.KDist <= 0 || rec.KDist > rec.Clock) {
			t.Fatalf("implausible K-distance in trace record %+v", rec)
		}
	}
}

// TestObsDisabledByDefault asserts an un-instrumented database records
// nothing and exposes no trace — the zero-cost default path.
func TestObsDisabledByDefault(t *testing.T) {
	database, err := Open(Config{Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	if err := database.LoadCustomers(10); err != nil {
		t.Fatal(err)
	}
	if _, err := database.Lookup(3); err != nil {
		t.Fatal(err)
	}
	if tr := database.EvictionTrace(); tr != nil {
		t.Fatalf("eviction trace must be nil without Config.Obs, got %d records", len(tr))
	}
}

// TestAccessBatchEndToEnd runs the assembled database with the replacer
// behind access buffers (Config.AccessBatch) and the observability stack
// armed: lookups must return correct records, the drain counters must show
// buffered events actually flowing, the exposed batch metrics must agree
// with StatsSnapshot, and a snapshot read must flush the buffers so policy
// counters are current.
func TestAccessBatchEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	database, err := Open(Config{
		Frames:      16,
		K:           2,
		AccessBatch: 32,
		Obs:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	const customers = 200
	if err := database.LoadCustomers(customers); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	for i := 0; i < 2000; i++ {
		id := int64(rng.Intn(customers))
		rec, err := database.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := int64(binary.LittleEndian.Uint64(rec)); got != id {
			t.Fatalf("lookup %d returned record %d", id, got)
		}
	}

	snap := database.StatsSnapshot()
	if snap.AccessBatch.Events == 0 {
		t.Error("no buffered policy events drained")
	}
	if snap.AccessBatch.Flushes == 0 {
		t.Error("no whole-buffer flushes recorded (eviction searches and stats reads must flush)")
	}
	// The snapshot's policy view flushed first, so every drained reference
	// is reflected: the pool evicted (16 frames, 200+ pages), and each
	// eviction the replacer performed came from a flushed, current index.
	if snap.Policy.Evictions == 0 || snap.Pool.Evictions == 0 {
		t.Errorf("workload did not evict: policy %d, pool %d", snap.Policy.Evictions, snap.Pool.Evictions)
	}

	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	vals := scrape(t, srv)
	snap = database.StatsSnapshot()
	for name, want := range map[string]float64{
		"lruk_access_batch_drains_total":  float64(snap.AccessBatch.Drains),
		"lruk_access_batch_events_total":  float64(snap.AccessBatch.Events),
		"lruk_access_batch_dropped_total": float64(snap.AccessBatch.Dropped),
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("metric %s missing from exposition", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, snapshot says %v", name, got, want)
		}
	}
	// The scrape itself flushes (policy collectors), so Flushes only grows;
	// compare with >= instead of equality.
	if got := vals["lruk_access_batch_flushes_total"]; got > float64(snap.AccessBatch.Flushes) {
		t.Errorf("flushes regressed: scraped %v, snapshot %v", got, snap.AccessBatch.Flushes)
	}
	if got := vals["lruk_access_batch_drain_events_count"]; got == 0 {
		t.Error("drain depth histogram recorded nothing")
	}
}
