package db

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/storage/file"
)

// openDurable assembles a database over a file-backed durable store rooted
// at dir. Frames are kept small so load and update traffic spills through
// eviction write-backs into the WAL, not just the final flush.
func openDurable(t *testing.T, dir string) *DB {
	t.Helper()
	s, err := file.Open(dir)
	if err != nil {
		t.Fatalf("open store %s: %v", dir, err)
	}
	d, err := Open(Config{Frames: 64, Backend: s})
	if err != nil {
		s.Close()
		t.Fatalf("open db over %s: %v", dir, err)
	}
	return d
}

func checkCustomer(t *testing.T, d *DB, id int64, fill byte) {
	t.Helper()
	rec, err := d.Lookup(id)
	if err != nil {
		t.Fatalf("lookup %d: %v", id, err)
	}
	if got := int64(binary.LittleEndian.Uint64(rec)); got != id {
		t.Errorf("customer %d: record carries id %d", id, got)
	}
	for i := 8; i < len(rec); i++ {
		if rec[i] != fill {
			t.Fatalf("customer %d: filler byte %d is %#x, want %#x", id, i, rec[i], fill)
		}
	}
}

// TestDurableReopen is the durable mode's lifecycle contract: load, flush,
// close, reopen — the dataset comes back attached, fully indexed, and
// updatable, across two generations of restart.
func TestDurableReopen(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	const customers = 200

	d := openDurable(t, dir)
	if d.Attached() {
		t.Error("fresh durable db claims to be attached to an existing dataset")
	}
	if err := d.LoadCustomers(customers); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateCustomer(42, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, dir)
	if !d2.Attached() {
		t.Fatal("reopened db did not attach to the checkpointed dataset")
	}
	if ri, ok := d2.Recovery(); !ok || !ri.Reopened {
		t.Errorf("recovery info = %+v, %v; want a reopen report", ri, ok)
	}
	if got := d2.CustomerCount(); got != customers {
		t.Errorf("CustomerCount = %d after reopen, want %d", got, customers)
	}
	checkCustomer(t, d2, 42, 0xAA) // update flushed before close survives
	checkCustomer(t, d2, 7, 0)     // untouched record intact
	checkCustomer(t, d2, customers-1, 0)
	if _, err := d2.Lookup(customers); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup past the dataset: %v, want ErrNotFound", err)
	}
	if err := d2.UpdateCustomer(7, 0x55); err != nil {
		t.Fatalf("update after reopen: %v", err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	d3 := openDurable(t, dir)
	if got := d3.CustomerCount(); got != customers {
		t.Errorf("CustomerCount = %d after second reopen, want %d", got, customers)
	}
	checkCustomer(t, d3, 7, 0x55)
	checkCustomer(t, d3, 42, 0xAA)
	if err := d3.Close(); err != nil {
		t.Fatal(err)
	}
}

// crashImage clones the store directory while the database is still
// running — the moral equivalent of the machine losing power at that
// instant — so a second database can recover from it.
func crashImage(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestAckedUpdateSurvivesCrash pins durable mode's acknowledgement
// contract: once UpdateCustomer returns, the update is in the fsynced WAL,
// so a crash image taken at any later instant — with the buffer pool's
// dirty pages and the next checkpoint both lost — still recovers it.
func TestAckedUpdateSurvivesCrash(t *testing.T) {
	leakcheck.Check(t)
	origin := t.TempDir()
	const customers = 100

	d := openDurable(t, origin)
	if err := d.LoadCustomers(customers); err != nil {
		t.Fatal(err)
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err) // catalog published: the dataset exists on disk
	}
	for _, upd := range []struct {
		id   int64
		fill byte
	}{{3, 0xEE}, {57, 0x11}, {3, 0xEF}} {
		if err := d.UpdateCustomer(upd.id, upd.fill); err != nil {
			t.Fatal(err)
		}
	}
	img := crashImage(t, origin) // power cut here
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, img)
	defer d2.Close()
	if !d2.Attached() {
		t.Fatal("crash image did not reattach")
	}
	if ri, ok := d2.Recovery(); !ok || ri.Replayed == 0 {
		t.Errorf("recovery info = %+v, %v; want replayed WAL records", ri, ok)
	}
	checkCustomer(t, d2, 3, 0xEF) // both acked updates, in order
	checkCustomer(t, d2, 57, 0x11)
	checkCustomer(t, d2, 4, 0) // neighbours untouched
	if got := d2.CustomerCount(); got != customers {
		t.Errorf("CustomerCount = %d after crash recovery, want %d", got, customers)
	}
}

// TestCrashBeforeFirstCheckpoint: a durable database that dies before its
// first FlushAll has never published a catalog, so the dataset does not
// exist yet — reopening must fail loudly rather than attach to garbage.
func TestCrashBeforeFirstCheckpoint(t *testing.T) {
	leakcheck.Check(t)
	origin := t.TempDir()

	d := openDurable(t, origin)
	if err := d.LoadCustomers(50); err != nil {
		t.Fatal(err)
	}
	img := crashImage(t, origin) // crash with no checkpoint ever taken
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := file.Open(img)
	if err != nil {
		t.Fatalf("store-level recovery itself must succeed: %v", err)
	}
	d2, err := Open(Config{Frames: 64, Backend: s})
	if err == nil {
		d2.Close()
		t.Fatal("db attached to a store with an unpublished catalog")
	}
	s.Close()
}
