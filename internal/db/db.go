// Package db assembles the storage substrates — simulated disk, buffer
// pool, heap file, B-tree — into the miniature database of the paper's
// Example 1.1: customer records referenced through a clustered B-tree
// index on CUST-ID. A lookup touches index pages root-to-leaf and then the
// record's data page, producing exactly the alternating I1, R1, I2, R2,
// ... reference pattern whose buffering behaviour motivates LRU-K.
package db

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/heapfile"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// ErrClosed reports an operation on a database after Close.
var ErrClosed = errors.New("db: database is closed")

// ErrNotFound reports a lookup or update of a customer id that is not in
// the index. It is typed so remote layers (internal/server) can map it to
// a wire status instead of string-matching.
var ErrNotFound = errors.New("db: customer not found")

// Config sizes the database instance.
type Config struct {
	// Frames is the buffer pool size in pages. The paper's Example 1.1
	// discussion centres on 101 frames (root + all leaf pages + 1).
	Frames int
	// K is the LRU-K history depth of the pool's replacer (1 = classical
	// LRU). Default 2.
	K int
	// ReplacerOptions are the §2.1 periods for the replacer.
	ReplacerOptions core.Options
	// RecordSize is the customer record size in bytes; the paper uses
	// 2000, packing two records per 4 KByte page. Default 2000.
	RecordSize int
	// Backend, when non-nil, is the storage backend the database runs on —
	// typically storage/file's durable store. The database wraps it in the
	// fault-injection and (with Obs) instrumentation stages itself and
	// closes it on Close. Nil selects a fresh simulated disk built from
	// DiskModel. A backend implementing storage.DurableBackend switches the
	// database into durable mode: a catalog page anchors the B-tree root so
	// the dataset survives restarts, FlushAll checkpoints, and acknowledged
	// updates reach the write-ahead log before UpdateCustomerCtx returns.
	Backend storage.Backend
	// DiskModel prices (and, via its Delay hook, optionally paces) the
	// simulated disk's operations when Backend is nil. The zero value
	// selects the simulator's defaults (a circa-1993 device, accounting
	// only).
	DiskModel sim.ServiceModel
	// PoolShards is the buffer pool's page-table latch partition count
	// (power of two; 0 selects the pool's GOMAXPROCS-scaled default).
	// Replacement decisions are unaffected — the replacer stays globally
	// ordered — so results remain deterministic at any shard count.
	PoolShards int
	// AccessBatch, when positive, puts the replacer behind per-slot access
	// buffers of this capacity (core.Batched): hot-path references append
	// to a ring buffer under a cheap slot lock and drain into the replacer
	// in batches, instead of taking the replacer lock per reference. Every
	// eviction search and stats read flushes the buffers first, so victim
	// choice and reported counters never act on a stale window; on a
	// single-threaded reference string results are bit-identical to the
	// unbatched replacer (DESIGN.md §14). Zero (the default) keeps the
	// eagerly-locked replacer.
	AccessBatch int
	// DiskFaults, when non-nil, arms the storage stack with a deterministic
	// fault-injection plan (storage.NewFaultPlan) so the database's failure
	// paths can be exercised reproducibly — against any backend, simulated
	// or durable. Production-shaped runs leave it nil. The plan can also be
	// swapped at runtime via SetDiskFaults.
	DiskFaults *storage.FaultPlan
	// DiskCorruption, when non-nil, arms the storage stack's corruption
	// injector (storage.NewCorruptPlan): matched writes taint their page
	// and later reads of it fail with storage.ErrCorrupt, exercising the
	// pool's detect/repair/quarantine protocol against any backend. The
	// plan can also be swapped at runtime via SetDiskCorruption.
	DiskCorruption *storage.CorruptPlan
	// ScrubInterval enables the pool's background integrity scrubber at
	// this cadence. Zero (the default) disables it.
	ScrubInterval time.Duration
	// DiskRetry tunes the pool's transient-fault retry for disk reads and
	// writes. The zero value disables retry (single attempt).
	DiskRetry bufferpool.RetryConfig
	// DiskBreaker tunes the pool's per-stripe disk circuit breaker. The
	// zero value disables it.
	DiskBreaker bufferpool.BreakerConfig
	// WriterInterval is the pool background writer's base park interval
	// between quarantine drain rounds. Zero selects the pool default.
	WriterInterval time.Duration
	// RecordCacheSize, when positive, puts an in-memory LRU-K record cache
	// in front of Lookup, sized in records. Zero (the default) disables it,
	// keeping every lookup on the paper's I, R page-reference pattern.
	RecordCacheSize int
	// RecordCacheJanitor, when positive, runs the record cache on a
	// wall-clock (the paper's §2.1.3 canonical CRP/RIP apply) and launches
	// its janitor at this interval; db.Close stops it. Requires
	// RecordCacheSize > 0.
	RecordCacheJanitor time.Duration
	// Obs, when non-nil, instruments the whole stack into this registry:
	// the pool's fetch/miss/coalesce/sweep histograms, the disk's
	// per-stripe read/write latency, the LRU-K policy's decision counters
	// and eviction trace, and scrape-time collectors over every counter
	// StatsSnapshot reports (see DESIGN.md §12 for the catalog). Nil (the
	// default) leaves every hot path uninstrumented.
	Obs *obs.Registry
	// EvictionTraceSize caps the policy decision trace ring (evictions,
	// CRP collapses, RIP purges). Zero selects 512. Only used when Obs is
	// set.
	EvictionTraceSize int
	// Spans, when non-nil, arms distributed-tracing span recording through
	// the stack: sampled operations leave pool_fetch / pool_miss /
	// pool_coalesce / retry_wait / breaker_reject spans from the pool and
	// disk_read / disk_write spans from the storage wrapper in this
	// recorder, and (with Obs set) evictions performed under a sampled
	// trace stamp the policy trace ring with the trace id. The unsampled
	// path stays within the pool's hit-latency budget. WAL spans
	// (wal_append, wal_fsync) come from the file backend's own
	// file.Config.Spans, which the caller wires when building the backend.
	Spans *obs.SpanRecorder
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 2
	}
	if c.RecordSize == 0 {
		c.RecordSize = 2000
	}
	return c
}

// catalogPage is the durable catalog's fixed page id: the first page a
// fresh durable database allocates, before the B-tree root. Its image
// anchors reopen: magic, root page id, customer count, and record size
// (see DESIGN.md §13). It stays zeroed — and the database unopenable —
// until the first checkpoint publishes it, so a crash before that point
// reports a deterministic error instead of serving a half-loaded dataset.
const catalogPage policy.PageID = 0

// catalogMagic marks a published catalog page.
var catalogMagic = [8]byte{'L', 'R', 'U', 'K', 'C', 'A', 'T', '1'}

// DB is the miniature customer database.
type DB struct {
	cfg       Config
	backend   storage.Backend        // outermost storage stack (metrics→faults→corruption→base); the pool I/Os through it
	faulty    *storage.Faulty        // fault-injection stage, for SetDiskFaults
	corrupter *storage.Corrupter     // corruption-injection stage, for SetDiskCorruption
	durable   storage.DurableBackend // non-nil when the base backend is durable
	attached  bool                   // durable reopen: dataset recovered from the catalog
	count     atomic.Int64           // loaded customer count (persisted in the catalog)
	pool      *bufferpool.Pool
	replacer  *core.SyncReplacer
	batched   *core.Batched // non-nil when Config.AccessBatch > 0; wraps replacer
	customers *heapfile.File
	index     *btree.Tree
	rids      map[int64]heapfile.RID // loader's check table, not an access path

	// evTrace is the policy decision ring (nil unless Config.Obs is set).
	evTrace *obs.EvictionTrace

	// recCache, when enabled, answers repeat Lookups without touching the
	// pool; janitorStop tears down its background sweeper.
	recCache    *core.Cache[int64, []byte]
	janitorStop func()

	// closed fences public operations after Close; closeMu serialises Close
	// itself and guards closeErr for idempotent replay.
	closed   atomic.Bool
	closeMu  sync.Mutex
	closeErr error
}

// Open creates an empty database.
func Open(cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	if cfg.Frames <= 0 {
		return nil, fmt.Errorf("db: frame count must be positive, got %d", cfg.Frames)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("db: K must be at least 1, got %d", cfg.K)
	}
	if cfg.RecordSize <= 8 || cfg.RecordSize > heapfile.MaxRecord {
		return nil, fmt.Errorf("db: record size %d outside (8, %d]", cfg.RecordSize, heapfile.MaxRecord)
	}
	if cfg.PoolShards < 0 || cfg.PoolShards&(cfg.PoolShards-1) != 0 {
		return nil, fmt.Errorf("db: pool shard count must be zero or a power of two, got %d", cfg.PoolShards)
	}
	if cfg.RecordCacheJanitor > 0 && cfg.RecordCacheSize <= 0 {
		return nil, fmt.Errorf("db: record cache janitor requires a record cache (RecordCacheSize > 0)")
	}
	if cfg.AccessBatch < 0 {
		return nil, fmt.Errorf("db: access batch capacity must be non-negative, got %d", cfg.AccessBatch)
	}
	// Assemble the storage stack: base backend (caller-supplied or a fresh
	// simulated disk) → corruption injection (innermost wrapper, so its
	// taints look like media damage under every other stage) → fault
	// injection → instrumentation (outermost, so injected faults are timed
	// like real ones). The pool adds the circuit breaker on top.
	base := cfg.Backend
	if base == nil {
		base = sim.New(cfg.DiskModel)
	}
	durable, _ := base.(storage.DurableBackend)
	corrupter := storage.WithCorruption(base)
	if cfg.DiskCorruption != nil {
		corrupter.SetCorruption(cfg.DiskCorruption)
	}
	faulty := storage.WithFaults(corrupter)
	if cfg.DiskFaults != nil {
		faulty.SetFaults(cfg.DiskFaults)
	}
	var backend storage.Backend = faulty
	repl := core.NewSyncReplacer(cfg.K, cfg.ReplacerOptions)
	var poolReplacer bufferpool.Replacer = repl
	var batched *core.Batched
	if cfg.AccessBatch > 0 {
		batched = core.NewBatched(repl, core.BatchConfig{Capacity: cfg.AccessBatch})
		poolReplacer = batched
	}
	var poolMetrics bufferpool.Metrics
	var evTrace *obs.EvictionTrace
	var corruptionHook func(policy.PageID, storage.CorruptKind, bool)
	var instrumented *storage.Instrumented
	if cfg.Obs != nil {
		// Latency instruments must exist before the pool and backend serve
		// their first operation; scrape-time collectors are registered
		// after assembly (registerObs below). The trace ring likewise: the
		// pool's corruption hook records into it from the first fetch on.
		poolMetrics = newPoolMetrics(cfg.Obs)
		instrumented = storage.WithMetrics(backend, newBackendMetrics(cfg.Obs, backend.NumStripes()))
		backend = instrumented
		size := cfg.EvictionTraceSize
		if size <= 0 {
			size = 512
		}
		evTrace = obs.NewEvictionTrace(size)
		corruptionHook = func(p policy.PageID, kind storage.CorruptKind, repaired bool) {
			rep := int64(0)
			if repaired {
				rep = 1
			}
			// Clock carries the corruption kind, KDist the repaired flag —
			// see obs.TraceCorrupt for the field convention.
			evTrace.Record(obs.TraceRecord{Kind: obs.TraceCorrupt, Page: int64(p), Clock: int64(kind), KDist: rep})
		}
	}
	var evictionStamp func(policy.PageID, uint64)
	if cfg.Spans != nil {
		// Span recording rides the same wrapper as latency metrics; without
		// Obs the wrapper carries spans alone (nil histograms keep the
		// metric side's fast path).
		if instrumented == nil {
			instrumented = storage.WithMetrics(backend, storage.Metrics{})
			backend = instrumented
		}
		instrumented.WithSpans(cfg.Spans)
		if evTrace != nil {
			stamped := evTrace
			evictionStamp = func(victim policy.PageID, traceID uint64) {
				stamped.StampTrace(int64(victim), traceID)
			}
		}
	}
	pool := bufferpool.NewWithConfig(backend, cfg.Frames, poolReplacer,
		bufferpool.Config{
			Shards:         cfg.PoolShards,
			Retry:          cfg.DiskRetry,
			Breaker:        cfg.DiskBreaker,
			WriterInterval: cfg.WriterInterval,
			Metrics:        poolMetrics,
			ScrubInterval:  cfg.ScrubInterval,
			CorruptionHook: corruptionHook,
			Spans:          cfg.Spans,
			EvictionStamp:  evictionStamp,
		})
	db := &DB{
		cfg:       cfg,
		backend:   backend,
		faulty:    faulty,
		corrupter: corrupter,
		durable:   durable,
		pool:      pool,
		replacer:  repl,
		batched:   batched,
		evTrace:   evTrace,
		rids:      make(map[int64]heapfile.RID),
	}
	if durable != nil && durable.Recovery().Reopened {
		// Durable reopen: recovery has replayed the WAL; re-anchor the
		// dataset from the checkpointed catalog.
		if err := db.attach(); err != nil {
			return nil, err
		}
	} else {
		if durable != nil {
			// Fresh durable store: reserve the catalog page ahead of the
			// B-tree root. Its magic stays zeroed until the first
			// checkpoint publishes it.
			pg, err := pool.NewPage()
			if err != nil {
				return nil, fmt.Errorf("db: allocating catalog page: %w", err)
			}
			id := pg.ID()
			pg.Unpin(true)
			if id != catalogPage {
				return nil, fmt.Errorf("db: catalog page allocated as %d, want %d (backend not fresh?)", id, catalogPage)
			}
		}
		db.customers = heapfile.New(pool)
		idx, err := btree.New(pool)
		if err != nil {
			return nil, fmt.Errorf("db: creating index: %w", err)
		}
		db.index = idx
	}
	if cfg.RecordCacheSize > 0 {
		opts := core.CacheOptions{K: cfg.K}
		if cfg.RecordCacheSize < 16 {
			// The cache refuses fewer entries than shards; a small cache
			// runs unsharded (strict global LRU-K ordering).
			opts.Shards = 1
		}
		if cfg.RecordCacheJanitor > 0 {
			// Wall-clock cache with the paper's canonical §2.1.3 periods:
			// 5-second Correlated Reference Period, 200-second Retained
			// Information Period, in milliseconds.
			opts.Clock = func() policy.Tick { return policy.Tick(time.Now().UnixMilli()) }
			opts.CorrelatedReferencePeriod = 5_000
			opts.RetainedInformationPeriod = 200_000
		}
		rc, cerr := core.NewIntCache[[]byte](cfg.RecordCacheSize, opts)
		if cerr != nil {
			return nil, fmt.Errorf("db: creating record cache: %w", cerr)
		}
		db.recCache = rc
		if cfg.RecordCacheJanitor > 0 {
			stop, jerr := rc.StartJanitor(cfg.RecordCacheJanitor)
			if jerr != nil {
				return nil, fmt.Errorf("db: starting record cache janitor: %w", jerr)
			}
			db.janitorStop = stop
		}
	}
	if cfg.Obs != nil {
		// Registered after the record cache exists so its collectors are
		// included; the trace ring and hot-path histograms were armed
		// before the first I/O above.
		repl.SetTracer(policyTraceAdapter{trace: db.evTrace})
		db.registerObs(cfg.Obs)
	}
	pool.Start()
	return db, nil
}

// attach re-opens the dataset of a recovered durable backend: validate the
// catalog, re-attach the B-tree at the recorded root, and rebuild the heap
// file's page directory (and the loader's RID table) from one index leaf
// scan. Every page it touches flows through the pool, so recovery warms the
// buffer exactly like a cold workload would.
func (db *DB) attach() error {
	pg, err := db.pool.Fetch(catalogPage)
	if err != nil {
		return fmt.Errorf("db: reading catalog: %w", err)
	}
	data := pg.Data()
	var magic [8]byte
	copy(magic[:], data[:8])
	root := policy.PageID(binary.LittleEndian.Uint64(data[8:16]))
	count := int64(binary.LittleEndian.Uint64(data[16:24]))
	recSize := int(binary.LittleEndian.Uint64(data[24:32]))
	pg.Unpin(false)
	if magic != catalogMagic {
		return fmt.Errorf("db: catalog page has no valid checkpoint (magic %x) — the store crashed before its first FlushAll", magic)
	}
	if recSize != db.cfg.RecordSize {
		return fmt.Errorf("db: store was checkpointed with record size %d, configured %d", recSize, db.cfg.RecordSize)
	}
	idx, err := btree.Attach(db.pool, root)
	if err != nil {
		return fmt.Errorf("db: attaching index: %w", err)
	}
	if int64(idx.Len()) != count {
		return fmt.Errorf("db: catalog records %d customers, index holds %d", count, idx.Len())
	}
	// One leaf scan rebuilds the RID table and the heap page directory in
	// first-seen order (load order, since keys were loaded ascending).
	var heapPages []policy.PageID
	seen := make(map[policy.PageID]bool)
	if err := idx.ScanRange(math.MinInt64, math.MaxInt64, func(key int64, rid heapfile.RID) bool {
		db.rids[key] = rid
		if !seen[rid.Page] {
			seen[rid.Page] = true
			heapPages = append(heapPages, rid.Page)
		}
		return true
	}); err != nil {
		return fmt.Errorf("db: rebuilding record directory: %w", err)
	}
	file, err := heapfile.Attach(db.pool, heapPages)
	if err != nil {
		return fmt.Errorf("db: attaching heap file: %w", err)
	}
	db.index = idx
	db.customers = file
	db.count.Store(count)
	db.attached = true
	return nil
}

// writeCatalogCtx publishes the current dataset anchor (root, count, record
// size) into the catalog page. Called after FlushAll's sweep so the catalog
// a recovered store reads never points past pages the log has not seen.
func (db *DB) writeCatalogCtx(ctx context.Context) error {
	pg, err := db.pool.FetchCtx(ctx, catalogPage)
	if err != nil {
		return fmt.Errorf("db: writing catalog: %w", err)
	}
	data := pg.Data()
	copy(data[:8], catalogMagic[:])
	binary.LittleEndian.PutUint64(data[8:16], uint64(db.index.Root()))
	binary.LittleEndian.PutUint64(data[16:24], uint64(db.count.Load()))
	binary.LittleEndian.PutUint64(data[24:32], uint64(db.cfg.RecordSize))
	pg.Unpin(true)
	if err := db.pool.FlushPageCtx(ctx, catalogPage); err != nil {
		return fmt.Errorf("db: flushing catalog: %w", err)
	}
	return nil
}

// Close stops the database's background work (the pool's writer, the
// record cache janitor), flushes every dirty page, and fences further
// operations behind ErrClosed. It is idempotent: repeated calls return the
// first call's flush result without repeating the work.
func (db *DB) Close() error {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.closed.Load() {
		return db.closeErr
	}
	db.closed.Store(true)
	if db.janitorStop != nil {
		db.janitorStop() // returns only after the janitor goroutine exits
		db.janitorStop = nil
	}
	db.closeErr = db.pool.Close()
	if cerr := db.backend.Close(); cerr != nil && db.closeErr == nil {
		db.closeErr = cerr
	}
	return db.closeErr
}

// Attached reports whether this instance re-opened an existing durable
// dataset (crash recovery path) rather than starting empty. Callers use it
// to skip the bulk load.
func (db *DB) Attached() bool { return db.attached }

// CustomerCount returns the number of customer records loaded (or, after a
// durable reopen, recovered from the catalog).
func (db *DB) CustomerCount() int { return int(db.count.Load()) }

// Recovery returns the durable backend's crash-recovery report; ok is
// false when the database runs on a non-durable (simulated) backend.
func (db *DB) Recovery() (storage.RecoveryInfo, bool) {
	if db.durable == nil {
		return storage.RecoveryInfo{}, false
	}
	return db.durable.Recovery(), true
}

// LoadCustomers bulk-loads n customer records keyed 0..n-1. Each record
// begins with its CUST-ID (8 bytes little-endian) followed by filler.
func (db *DB) LoadCustomers(n int) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if n <= 0 {
		return fmt.Errorf("db: customer count must be positive, got %d", n)
	}
	rec := make([]byte, db.cfg.RecordSize)
	for id := int64(0); id < int64(n); id++ {
		binary.LittleEndian.PutUint64(rec, uint64(id))
		rid, err := db.customers.Insert(rec)
		if err != nil {
			return fmt.Errorf("db: loading customer %d: %w", id, err)
		}
		if err := db.index.Insert(id, rid); err != nil {
			return fmt.Errorf("db: indexing customer %d: %w", id, err)
		}
		db.rids[id] = rid
	}
	db.count.Add(int64(n))
	return nil
}

// Lookup retrieves the customer record through the index — the I, R
// reference pair of Example 1.1. With a record cache configured, a cache
// hit answers from memory without touching the pool; either way the caller
// receives its own copy of the record.
func (db *DB) Lookup(custID int64) ([]byte, error) {
	return db.LookupCtx(context.Background(), custID)
}

// LookupCtx is Lookup charged against ctx: the index descent and the
// record-page fetch (coalesced waits, retry backoff included) observe the
// caller's deadline, so a server can bound a request end to end. A missing
// id reports ErrNotFound.
func (db *DB) LookupCtx(ctx context.Context, custID int64) ([]byte, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if db.recCache != nil {
		if rec, ok := db.recCache.Get(custID); ok {
			out := make([]byte, len(rec))
			copy(out, rec)
			return out, nil
		}
	}
	rid, ok, err := db.index.GetCtx(ctx, custID)
	if err != nil {
		return nil, fmt.Errorf("db: lookup %d: %w", custID, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, custID)
	}
	rec, err := db.customers.GetCtx(ctx, rid)
	if err != nil {
		return nil, err
	}
	if db.recCache != nil {
		// Cache a private copy: the caller owns rec and may scribble on it.
		cp := make([]byte, len(rec))
		copy(cp, rec)
		db.recCache.Put(custID, cp)
	}
	return rec, nil
}

// UpdateCustomer overwrites the filler of a customer record in place (a
// TPC-A-style read-modify-write), producing the intra-transaction
// correlated reference pair of §2.1.1: the record page is referenced once
// by Lookup and again by the write.
func (db *DB) UpdateCustomer(custID int64, fill byte) error {
	return db.UpdateCustomerCtx(context.Background(), custID, fill)
}

// UpdateCustomerCtx is UpdateCustomer charged against ctx (see LookupCtx).
func (db *DB) UpdateCustomerCtx(ctx context.Context, custID int64, fill byte) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.recCache != nil {
		// Invalidate up front: even a failed update may have altered the
		// page, and a stale cached record would outlive it.
		db.recCache.Delete(custID)
	}
	rid, ok, err := db.index.GetCtx(ctx, custID)
	if err != nil {
		return fmt.Errorf("db: update %d: %w", custID, err)
	}
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, custID)
	}
	rec, err := db.customers.GetCtx(ctx, rid)
	if err != nil {
		return err
	}
	for i := 8; i < len(rec); i++ {
		rec[i] = fill
	}
	if err := db.customers.UpdateCtx(ctx, rid, rec); err != nil {
		return err
	}
	if db.durable != nil {
		// Durable acknowledgement: the record's page reaches the write-ahead
		// log before the update returns, so a crash after the caller sees
		// success cannot lose it.
		if err := db.customers.FlushRecordPage(ctx, rid.Page); err != nil {
			return fmt.Errorf("db: persisting update %d: %w", custID, err)
		}
	}
	return nil
}

// ScanCustomers sequentially scans the whole customer file (Example 1.2's
// batch scan) and returns the number of records seen.
func (db *DB) ScanCustomers() (int, error) {
	return db.ScanCustomersCtx(context.Background())
}

// ScanCustomersCtx is ScanCustomers charged against ctx: the sweep stops
// early when the deadline expires, reporting the context's error.
func (db *DB) ScanCustomersCtx(ctx context.Context) (int, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	n := 0
	err := db.customers.ScanCtx(ctx, func(heapfile.RID, []byte) bool {
		n++
		return true
	})
	return n, err
}

// SetDiskFaults replaces the storage stack's fault-injection plan at
// runtime; nil disarms injection. Operations already past their fault check
// complete normally.
func (db *DB) SetDiskFaults(p *storage.FaultPlan) { db.faulty.SetFaults(p) }

// SetDiskCorruption replaces the storage stack's corruption-injection plan
// at runtime; nil disarms injection (existing taints persist until
// overwritten, repaired, or deallocated).
func (db *DB) SetDiskCorruption(p *storage.CorruptPlan) { db.corrupter.SetCorruption(p) }

// DiskCorruptStats returns the corruption injector's ledger (all zero when
// no plan was ever armed).
func (db *DB) DiskCorruptStats() storage.CorruptStats { return db.corrupter.CorruptStats() }

// PoolPoisoned returns the page ids quarantined as unrepairable-corrupt.
func (db *DB) PoolPoisoned() []policy.PageID { return db.pool.PoisonedPages() }

// ScrubSweep runs one bounded integrity sweep through the pool (see
// bufferpool.Pool.ScrubSweep); operators and tests use it to scrub on
// demand when no background ScrubInterval is configured.
func (db *DB) ScrubSweep(ctx context.Context, limit int) int { return db.pool.ScrubSweep(ctx, limit) }

// FlushAll writes every dirty resident page back to disk, visiting every
// page even when some write-backs fail and returning the failures joined.
// On a durable backend a clean sweep is a checkpoint: the storage flush
// barrier runs, and the catalog page is (re)published afterwards so a
// recovered store reopens at exactly this dataset.
func (db *DB) FlushAll() error {
	return db.FlushAllCtx(context.Background())
}

// FlushAllCtx is FlushAll charged against ctx: write-backs and their retry
// backoff observe the deadline, and an expired context ends the sweep
// early.
func (db *DB) FlushAllCtx(ctx context.Context) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.pool.FlushAllCtx(ctx); err != nil {
		return err
	}
	if db.durable != nil {
		// Publish the catalog only after every page image the new anchor
		// depends on is in the log; a crash between the two leaves the
		// previous catalog governing, which update-in-place traffic keeps
		// consistent (DESIGN.md §13).
		return db.writeCatalogCtx(ctx)
	}
	return nil
}

// StatsSnapshot is a point-in-time aggregate of every counter the database
// exposes — pool, disk, record cache, quarantine, and page-directory sizes
// — in one JSON-serialisable struct. The network service serves it under
// the STATS op; it replaces stitching together three separate getters.
type StatsSnapshot struct {
	Pool         bufferpool.Stats `json:"pool"`
	PoolHitRatio float64          `json:"pool_hit_ratio"`
	// Quarantined is the number of pages whose most recent write-back
	// failed and that await the background writer's retry.
	Quarantined int `json:"quarantined"`
	// BreakerOpenStripes is how many disk stripes currently refuse I/O
	// with an open circuit (0 with the breaker disabled or healthy).
	BreakerOpenStripes int              `json:"breaker_open_stripes"`
	Policy             core.PolicyStats `json:"policy"`
	// AccessBatch holds the access-buffer drain counters; the zero value
	// when Config.AccessBatch is off.
	AccessBatch core.BatchStats `json:"access_batch"`
	Disk        storage.Stats   `json:"disk"`
	// Corruption is the corruption injector's ledger — all zero in
	// production runs, where no plan is armed; the pool's own detection
	// and repair counters live in Pool.
	Corruption storage.CorruptStats `json:"corruption"`
	// PoisonedPages counts page ids quarantined as unrepairable-corrupt.
	PoisonedPages int             `json:"poisoned_pages"`
	RecordCache   core.CacheStats `json:"record_cache"`
	IndexPages    int             `json:"index_pages"`
	DataPages     int             `json:"data_pages"`
}

// StatsSnapshot collects the combined counter aggregate. The counters are
// read without a global pause, so under concurrency the snapshot is
// per-counter exact but not mutually atomic — fine for monitoring, which
// is its job. It remains readable after Close.
func (db *DB) StatsSnapshot() StatsSnapshot {
	s := db.pool.Stats()
	snap := StatsSnapshot{
		Pool:               s,
		PoolHitRatio:       s.HitRatio(),
		Quarantined:        db.pool.Quarantined(),
		BreakerOpenStripes: db.pool.BreakerOpenStripes(),
		Policy:             db.policyStats(),
		Disk:               db.backend.Stats(),
		Corruption:         db.corrupter.CorruptStats(),
		PoisonedPages:      len(db.pool.PoisonedPages()),
		RecordCache:        db.RecordCacheStats(),
		IndexPages:         len(db.index.Pages()),
		DataPages:          len(db.customers.Pages()),
	}
	if db.batched != nil {
		snap.AccessBatch = db.batched.BatchStats()
	}
	return snap
}

// policyStats reads the replacer's decision counters, draining any access
// buffers first so buffered references are reflected in the counts.
func (db *DB) policyStats() core.PolicyStats {
	if db.batched != nil {
		return db.batched.PolicyStats()
	}
	return db.replacer.PolicyStats()
}

// RecordCacheStats returns the record cache's counters; the zero value
// when no record cache is configured.
func (db *DB) RecordCacheStats() core.CacheStats {
	if db.recCache == nil {
		return core.CacheStats{}
	}
	return db.recCache.Stats()
}

// PoolQuarantined returns the number of pages whose most recent write-back
// failed and that await the background writer's retry.
func (db *DB) PoolQuarantined() int { return db.pool.Quarantined() }

// PoolStats returns the buffer-pool counters.
func (db *DB) PoolStats() bufferpool.Stats { return db.pool.Stats() }

// DiskStats returns the storage backend's counters (fault-injection stage
// included).
func (db *DB) DiskStats() storage.Stats { return db.backend.Stats() }

// IndexPages returns the number of index node pages.
func (db *DB) IndexPages() int { return len(db.index.Pages()) }

// DataPages returns the number of heap-file data pages.
func (db *DB) DataPages() int { return len(db.customers.Pages()) }

// IndexHeight returns the B-tree height.
func (db *DB) IndexHeight() (int, error) { return db.index.Height() }

// ResidentByClass counts resident pages per class, the quantity Example
// 1.1 reasons about ("50 B-tree leaf pages and 50 record pages" under
// LRU).
func (db *DB) ResidentByClass() (index, data int) {
	for _, p := range db.index.Pages() {
		if db.pool.Resident(p) {
			index++
		}
	}
	for _, p := range db.customers.Pages() {
		if db.pool.Resident(p) {
			data++
		}
	}
	return index, data
}

// Example11Result reports one run of the Example 1.1 workload.
type Example11Result struct {
	K             int
	Frames        int
	Lookups       int
	HitRatio      float64
	ResidentIndex int
	ResidentData  int
	DiskReads     uint64
	ServiceMicros int64
}

// RunExample11 executes the paper's Example 1.1 end to end: load
// customers, then perform random lookups through the index, and report
// how the pool's residency split between index and data pages. With K=1
// roughly half the frames end up holding data pages; with K=2 the index
// pages (each 100x more frequently referenced than any data page) win the
// frames.
func RunExample11(cfg Config, customers, lookups int, seed uint64) (Example11Result, error) {
	db, err := Open(cfg)
	if err != nil {
		return Example11Result{}, err
	}
	defer db.Close()
	if err := db.LoadCustomers(customers); err != nil {
		return Example11Result{}, err
	}
	// Measure from a cold-ish start: count only the lookup phase.
	preHits := db.PoolStats().Hits
	preMisses := db.PoolStats().Misses
	r := stats.NewRNG(seed)
	for i := 0; i < lookups; i++ {
		id := int64(r.Intn(customers))
		if _, err := db.Lookup(id); err != nil {
			return Example11Result{}, err
		}
	}
	s := db.PoolStats()
	hits := s.Hits - preHits
	misses := s.Misses - preMisses
	ri, rd := db.ResidentByClass()
	res := Example11Result{
		K:             db.cfg.K,
		Frames:        cfg.Frames,
		Lookups:       lookups,
		ResidentIndex: ri,
		ResidentData:  rd,
		DiskReads:     db.DiskStats().Reads,
		ServiceMicros: db.DiskStats().ServiceMicros,
	}
	if total := hits + misses; total > 0 {
		res.HitRatio = float64(hits) / float64(total)
	}
	return res, nil
}
