package db

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/leakcheck"
	"repro/internal/storage"
)

// TestCloseIdempotentAndFenced: Close flushes, stops background work, and
// fences the public API behind ErrClosed; calling it again replays the
// first result.
func TestCloseIdempotentAndFenced(t *testing.T) {
	leakcheck.Check(t)
	d, err := Open(Config{Frames: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadCustomers(10); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := d.Lookup(3); !errors.Is(err, ErrClosed) {
		t.Errorf("Lookup after Close = %v, want ErrClosed", err)
	}
	if err := d.UpdateCustomer(3, 0xAB); !errors.Is(err, ErrClosed) {
		t.Errorf("UpdateCustomer after Close = %v, want ErrClosed", err)
	}
	if _, err := d.ScanCustomers(); !errors.Is(err, ErrClosed) {
		t.Errorf("ScanCustomers after Close = %v, want ErrClosed", err)
	}
	if err := d.LoadCustomers(1); !errors.Is(err, ErrClosed) {
		t.Errorf("LoadCustomers after Close = %v, want ErrClosed", err)
	}
	if err := d.FlushAll(); !errors.Is(err, ErrClosed) {
		t.Errorf("FlushAll after Close = %v, want ErrClosed", err)
	}
	if err := d.FlushAllCtx(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("FlushAllCtx after Close = %v, want ErrClosed", err)
	}
}

// TestCloseStopsJanitorAndWriter: a database with every background worker
// enabled must leave no goroutine behind after Close (the leak check
// enforces it).
func TestCloseStopsJanitorAndWriter(t *testing.T) {
	leakcheck.Check(t)
	d, err := Open(Config{
		Frames:             32,
		RecordCacheSize:    16,
		RecordCacheJanitor: time.Millisecond,
		WriterInterval:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadCustomers(20); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if _, err := d.Lookup(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestRecordCacheServesAndInvalidates: with the record cache on, a repeat
// lookup is served from memory (no extra pool traffic), and an update
// invalidates the cached copy.
func TestRecordCacheServesAndInvalidates(t *testing.T) {
	d, err := Open(Config{Frames: 32, RecordCacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.LoadCustomers(4); err != nil {
		t.Fatal(err)
	}
	rec, err := d.Lookup(2) // miss: populates the cache
	if err != nil {
		t.Fatal(err)
	}
	rec[9] = 0xFF // caller scribbling on its copy must not poison the cache

	poolOps := d.PoolStats()
	again, err := d.Lookup(2) // hit: memory only
	if err != nil {
		t.Fatal(err)
	}
	if again[9] == 0xFF {
		t.Error("record cache returned the caller's scribbled-on buffer, not a copy")
	}
	after := d.PoolStats()
	if after.Hits != poolOps.Hits || after.Misses != poolOps.Misses {
		t.Errorf("cached lookup touched the pool: %+v -> %+v", poolOps, after)
	}
	if s := d.RecordCacheStats(); s.Hits != 1 {
		t.Errorf("RecordCacheStats.Hits = %d, want 1", s.Hits)
	}

	if err := d.UpdateCustomer(2, 0x7E); err != nil {
		t.Fatal(err)
	}
	got, err := d.Lookup(2)
	if err != nil {
		t.Fatal(err)
	}
	if got[9] != 0x7E {
		t.Errorf("lookup after update = %#x, want the updated fill 0x7e (stale cache?)", got[9])
	}
}

// TestFlushAllCtxHonoursDeadline: an expired context ends the flush sweep
// with its error instead of sweeping on.
func TestFlushAllCtxHonoursDeadline(t *testing.T) {
	d, err := Open(Config{Frames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.LoadCustomers(50); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.FlushAllCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("FlushAllCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if err := d.FlushAllCtx(context.Background()); err != nil {
		t.Errorf("FlushAllCtx with live ctx: %v", err)
	}
}

// TestDBRetryAndBreakerWiring: the db config reaches the pool — transient
// faults are absorbed by retry, and a blacked-out disk trips the breaker
// so lookups fail fast with ErrDiskUnavailable until it heals.
func TestDBRetryAndBreakerWiring(t *testing.T) {
	leakcheck.Check(t)
	d, err := Open(Config{
		Frames: 16,
		DiskRetry: bufferpool.RetryConfig{
			Attempts:  3,
			BaseDelay: 20 * time.Microsecond,
			MaxDelay:  100 * time.Microsecond,
			Seed:      9,
		},
		DiskBreaker: bufferpool.BreakerConfig{
			Threshold: 4,
			Cooldown:  5 * time.Millisecond,
			Probes:    1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.LoadCustomers(64); err != nil {
		t.Fatal(err)
	}
	if err := d.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// A bounded burst of transient read faults: retry rides it out.
	d.SetDiskFaults(storage.NewFaultPlan(3, storage.FaultRule{Op: storage.OpRead, Count: 2}))
	for i := int64(0); i < 64; i++ {
		if _, err := d.Lookup(i); err != nil {
			t.Fatalf("lookup %d failed despite retry: %v", i, err)
		}
	}
	if s := d.PoolStats(); s.ReadRetries == 0 {
		t.Error("transient faults were not retried")
	}

	// Total blackout: enough consecutive failures trip the breaker and
	// lookups start failing fast.
	d.SetDiskFaults(storage.NewFaultPlan(4, storage.FaultRule{}))
	tripped := false
	for i := 0; i < 10000 && !tripped; i++ {
		_, err := d.Lookup(int64(i % 64))
		if err == nil {
			continue // buffer hit: unaffected by the outage, as designed
		}
		if errors.Is(err, bufferpool.ErrDiskUnavailable) {
			tripped = true
		} else if !errors.Is(err, storage.ErrInjectedFault) {
			t.Fatalf("unexpected blackout error: %v", err)
		}
	}
	if !tripped {
		t.Fatal("breaker never tripped during the blackout")
	}
	if s := d.PoolStats(); s.BreakerTrips == 0 || s.ReadsRejected == 0 {
		t.Errorf("breaker counters not reflected in stats: %+v", s)
	}

	// Heal: after the cooldown, probes close the circuit and every lookup
	// succeeds again.
	d.SetDiskFaults(nil)
	deadline := time.Now().Add(5 * time.Second)
	for i := int64(0); i < 64; i++ {
		if _, err := d.Lookup(i); err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("lookup %d still failing long after heal: %v", i, err)
			}
			time.Sleep(time.Millisecond)
			i-- // retry this customer until its stripe's circuit closes
		}
	}
}

// TestQuarantineDrainsThroughDB: a write-back fault quarantines a page;
// the pool's background writer (started by Open) drains it without any
// explicit flush.
func TestQuarantineDrainsThroughDB(t *testing.T) {
	leakcheck.Check(t)
	d, err := Open(Config{Frames: 4, WriterInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.LoadCustomers(16); err != nil {
		t.Fatal(err)
	}
	// Exactly three write faults on any page: eviction pressure from the
	// updates below quarantines some victims; the writer then drains them.
	d.SetDiskFaults(storage.NewFaultPlan(5, storage.FaultRule{Op: storage.OpWrite, Count: 3}))
	for i := int64(0); i < 16; i++ {
		if err := d.UpdateCustomer(i, byte(i)); err != nil && !errors.Is(err, storage.ErrInjectedFault) {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	d.SetDiskFaults(nil)
	deadline := time.Now().Add(5 * time.Second)
	for d.PoolQuarantined() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("quarantine never drained; still %d", d.PoolQuarantined())
		}
		time.Sleep(time.Millisecond)
	}
}
