package db

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"errors"

	"repro/internal/stats"
	"repro/internal/storage"
)

func TestOpenValidation(t *testing.T) {
	cases := []Config{
		{Frames: 0},
		{Frames: -1},
		{Frames: 10, K: -2},
		{Frames: 10, RecordSize: 4},
		{Frames: 10, RecordSize: 1 << 20},
		{Frames: 10, PoolShards: 3},
		{Frames: 10, PoolShards: -1},
	}
	for i, cfg := range cases {
		if _, err := Open(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	db, err := Open(Config{Frames: 10})
	if err != nil {
		t.Errorf("default config rejected: %v", err)
	} else {
		db.Close()
	}
	if _, err := Open(Config{Frames: 10, RecordCacheJanitor: 1}); err == nil {
		t.Error("janitor without a record cache accepted")
	}
}

func TestLoadAndLookup(t *testing.T) {
	db, err := Open(Config{Frames: 50, RecordSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 500
	if err := db.LoadCustomers(n); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{0, 1, 250, 499} {
		rec, err := db.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", id, err)
		}
		if got := int64(binary.LittleEndian.Uint64(rec)); got != id {
			t.Errorf("Lookup(%d) returned record for %d", id, got)
		}
		if len(rec) != 100 {
			t.Errorf("record size %d, want 100", len(rec))
		}
	}
	if _, err := db.Lookup(n + 5); err == nil {
		t.Error("lookup of missing customer succeeded")
	}
	if err := db.LoadCustomers(0); err == nil {
		t.Error("zero-customer load accepted")
	}
}

func TestPageGeometryMatchesPaper(t *testing.T) {
	// 2000-byte records pack two per 4 KByte page; 20-byte index entries
	// pack ~200 per leaf. With 2000 customers: ~1000 data pages, ~5+ index
	// pages in a shallow tree. (The paper's full scale is 20000 customers
	// → 10000 data pages and 100 leaf pages; tests scale down 10x.)
	db, err := Open(Config{Frames: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 2000
	if err := db.LoadCustomers(n); err != nil {
		t.Fatal(err)
	}
	if got := db.DataPages(); got != n/2 {
		t.Errorf("DataPages = %d, want %d (two 2000-byte records per page)", got, n/2)
	}
	if got := db.IndexPages(); got < n/204 || got > n/100 {
		t.Errorf("IndexPages = %d, outside plausible leaf-count range", got)
	}
	h, err := db.IndexHeight()
	if err != nil {
		t.Fatal(err)
	}
	if h != 2 {
		t.Errorf("index height = %d, want 2 (root over leaves)", h)
	}
}

func TestUpdateCustomer(t *testing.T) {
	db, err := Open(Config{Frames: 32, RecordSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.LoadCustomers(100); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateCustomer(42, 0xAB); err != nil {
		t.Fatal(err)
	}
	rec, err := db.Lookup(42)
	if err != nil {
		t.Fatal(err)
	}
	if rec[8] != 0xAB || rec[63] != 0xAB {
		t.Errorf("update not applied: % x", rec[8:12])
	}
	if got := int64(binary.LittleEndian.Uint64(rec)); got != 42 {
		t.Error("update clobbered the key prefix")
	}
	if err := db.UpdateCustomer(9999, 1); err == nil {
		t.Error("update of missing customer succeeded")
	}
}

func TestScanCustomers(t *testing.T) {
	db, err := Open(Config{Frames: 16, RecordSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.LoadCustomers(300); err != nil {
		t.Fatal(err)
	}
	n, err := db.ScanCustomers()
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Errorf("scan saw %d records, want 300", n)
	}
}

// TestExample11Discrimination is the paper's Example 1.1 run end to end
// through the real B-tree and heap file: with the pool sized to hold about
// the index, LRU-2 retains far more index pages (and achieves a higher hit
// ratio) than LRU-1, which splits its frames between index and data pages.
func TestExample11Discrimination(t *testing.T) {
	// 2000 customers → 1000 data pages, ~10 leaf pages + root. Pool of 16
	// frames comfortably fits the index but a vanishing fraction of data.
	const customers, lookups, frames = 2000, 20000, 16
	res2, err := RunExample11(Config{Frames: frames, K: 2}, customers, lookups, 11)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := RunExample11(Config{Frames: frames, K: 1}, customers, lookups, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HitRatio <= res1.HitRatio {
		t.Errorf("LRU-2 hit ratio %.3f not above LRU-1 %.3f", res2.HitRatio, res1.HitRatio)
	}
	if res2.ResidentIndex <= res1.ResidentIndex {
		t.Errorf("LRU-2 holds %d index pages, LRU-1 holds %d; expected discrimination",
			res2.ResidentIndex, res1.ResidentIndex)
	}
	// LRU-2 should hold essentially the whole index.
	if res2.ResidentIndex < 10 {
		t.Errorf("LRU-2 resident index pages = %d, want ~11", res2.ResidentIndex)
	}
	// And it needs fewer disk reads for the same work.
	if res2.DiskReads >= res1.DiskReads {
		t.Errorf("LRU-2 disk reads %d not below LRU-1 %d", res2.DiskReads, res1.DiskReads)
	}
}

// TestConcurrentLookups drives the read path (B-tree descent plus heap
// record fetch) through the latch-partitioned buffer pool from many
// goroutines at once; every record must come back intact.
func TestConcurrentLookups(t *testing.T) {
	const customers = 500
	db, err := Open(Config{Frames: 64, RecordSize: 100, PoolShards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.LoadCustomers(customers); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := stats.NewRNG(uint64(g + 1))
			for i := 0; i < 500; i++ {
				id := int64(r.Intn(customers))
				rec, err := db.Lookup(id)
				if err != nil {
					errs <- err
					return
				}
				if got := int64(binary.LittleEndian.Uint64(rec)); got != id {
					errs <- fmt.Errorf("lookup %d returned record %d", id, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := db.PoolStats()
	if s.Hits+s.Misses == 0 {
		t.Error("no pool traffic recorded")
	}
}

// TestDiskFaultsSurfaceAndRecover arms the database's fault plan at open,
// checks that lookups surface the injected read fault without corrupting
// the pool, and that the workload recovers once the faults are exhausted.
func TestDiskFaultsSurfaceAndRecover(t *testing.T) {
	const customers = 40
	db, err := Open(Config{Frames: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.LoadCustomers(customers); err != nil {
		t.Fatal(err)
	}
	// Every read faults for a while: small pool, so lookups must miss.
	db.SetDiskFaults(storage.NewFaultPlan(7, storage.FaultRule{Op: storage.OpRead, Count: 3}))
	faulted := 0
	for id := int64(0); id < customers; id++ {
		if _, err := db.Lookup(id); err != nil {
			if !errors.Is(err, storage.ErrInjectedFault) {
				t.Fatalf("lookup %d: %v, want a wrapped injected fault", id, err)
			}
			faulted++
		}
	}
	if faulted == 0 {
		t.Fatal("no lookup surfaced the injected read faults")
	}
	if s := db.PoolStats(); s.ReadErrors != 3 {
		t.Errorf("pool ReadErrors = %d, want 3", s.ReadErrors)
	}
	if ds := db.DiskStats(); ds.ReadFaults != 3 {
		t.Errorf("disk ReadFaults = %d, want 3", ds.ReadFaults)
	}
	// Faults exhausted: every record is reachable again and flush is clean.
	db.SetDiskFaults(nil)
	for id := int64(0); id < customers; id++ {
		rec, err := db.Lookup(id)
		if err != nil {
			t.Fatalf("lookup %d after recovery: %v", id, err)
		}
		if got := int64(binary.LittleEndian.Uint64(rec)); got != id {
			t.Errorf("lookup %d returned record %d", id, got)
		}
	}
	if err := db.FlushAll(); err != nil {
		t.Errorf("FlushAll after recovery: %v", err)
	}
}
