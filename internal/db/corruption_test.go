package db

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/storage/file"
)

// TestDBCorruptionEndToEnd drives the full stack — durable file store,
// corruption injection, pool read-repair, scrubber, trace ring, /metrics —
// through a corrupted workload and asserts the layers agree: the injection
// ledger conserves, every detection resolves, each resolution left one
// corrupt trace record, and the exposed metrics match the snapshot.
func TestDBCorruptionEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	store, err := file.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	database, err := Open(Config{
		Backend:           store,
		Frames:            16,
		K:                 2,
		Obs:               reg,
		EvictionTraceSize: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	if err := database.LoadCustomers(200); err != nil {
		t.Fatal(err)
	}
	if err := database.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Arm a steady corruption rate and churn updates through flushes until
	// injection has demonstrably happened (the plan is seeded, but which
	// write-back trips it depends on pool state; the loop makes the test
	// deterministic in outcome).
	database.SetDiskCorruption(storage.NewCorruptPlan(3, storage.CorruptRule{Probability: 0.25}))
	rng := stats.NewRNG(99)
	for i := 0; i < 200 && database.DiskCorruptStats().Injected == 0; i++ {
		id := int64(rng.Intn(200))
		if err := database.UpdateCustomer(id, byte(i)); err != nil && !storage.IsCorrupt(err) {
			t.Fatalf("update %d: %v", id, err)
		}
		if err := database.FlushAll(); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	database.SetDiskCorruption(nil)
	if database.DiskCorruptStats().Injected == 0 {
		t.Fatal("corruption plan never fired across 200 flushed updates")
	}

	// A full scrub sweep detects any remaining taint; every taint here is
	// repairable (the simulated damage sits over an intact slot), so the
	// stack must heal everything and quarantine nothing.
	database.ScrubSweep(context.Background(), 4096)
	for i := 0; i < 200; i++ {
		if _, err := database.Lookup(int64(i)); err != nil {
			t.Fatalf("post-heal lookup %d: %v", i, err)
		}
	}

	snap := database.StatsSnapshot()
	cs := snap.Corruption
	if cs.Injected != cs.Cleared+uint64(cs.Tainted) {
		t.Errorf("injection ledger broken: %+v", cs)
	}
	if cs.Tainted != 0 {
		t.Errorf("%d taints survived repair and scrubbing", cs.Tainted)
	}
	if snap.Pool.CorruptDetected == 0 {
		t.Error("no detection despite confirmed injection")
	}
	if snap.Pool.CorruptDetected != snap.Pool.CorruptRepaired+snap.Pool.CorruptQuarantined {
		t.Errorf("detections unresolved: %+v", snap.Pool)
	}
	if snap.Pool.CorruptQuarantined != 0 || snap.PoisonedPages != 0 {
		t.Errorf("repairable damage was quarantined: %+v poisoned=%d", snap.Pool, snap.PoisonedPages)
	}

	// Each detection's fate was recorded into the trace ring by the
	// corruption hook, tagged with its kind and outcome.
	var corruptRecs, repairedRecs uint64
	for _, rec := range database.EvictionTrace() {
		if rec.Kind != obs.TraceCorrupt {
			continue
		}
		corruptRecs++
		if rec.KDist == 1 {
			repairedRecs++
		}
		if k := storage.CorruptKind(rec.Clock); k != storage.CorruptChecksum {
			t.Errorf("trace record carries kind %v, plan injects checksum only", k)
		}
	}
	if corruptRecs != snap.Pool.CorruptDetected {
		t.Errorf("trace holds %d corrupt records, pool detected %d", corruptRecs, snap.Pool.CorruptDetected)
	}
	if repairedRecs != snap.Pool.CorruptRepaired {
		t.Errorf("trace marks %d repaired, pool repaired %d", repairedRecs, snap.Pool.CorruptRepaired)
	}

	// /metrics agrees, and the durable store's WAL gauge is exposed.
	srv := httptest.NewServer(obs.Handler(reg))
	defer srv.Close()
	vals := scrape(t, srv)
	for name, want := range map[string]float64{
		"lruk_corrupt_detected_total": float64(snap.Pool.CorruptDetected),
		"lruk_repair_success_total":   float64(snap.Pool.CorruptRepaired),
		"lruk_repair_failed_total":    0,
		"lruk_pool_poisoned_pages":    0,
	} {
		if got, ok := vals[name]; !ok || got != want {
			t.Errorf("/metrics %s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	if _, ok := vals["lruk_disk_wal_bytes"]; !ok {
		t.Error("/metrics missing lruk_disk_wal_bytes on a durable backend")
	}
}
