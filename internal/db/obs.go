package db

import (
	"strconv"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/storage"
)

// This file is the observability assembly point: it is the only place that
// knows both the storage stack's internals and the obs registry, so the
// dependency arrows stay clean (core/storage/bufferpool never import each
// other's metrics, and core does not import obs at all — it talks through
// the PolicyTracer interface adapted below).
//
// Two registration styles, chosen per metric:
//
//   - Histograms are created up front and handed into the pool and the
//     backend's instrumentation wrapper, which record into them on the hot
//     path (nil histograms disable the timing entirely).
//   - Counters and gauges that already exist as atomics inside the stack
//     (pool shard counters, the backend ledger, replacer stats) are exposed
//     through CounterFunc/GaugeFunc collectors evaluated at scrape time —
//     zero added cost on the paths that maintain them.

// newPoolMetrics registers the pool's latency/shape histograms.
func newPoolMetrics(r *obs.Registry) bufferpool.Metrics {
	return bufferpool.Metrics{
		FetchLatency: r.LatencyHistogram("lruk_pool_fetch_seconds",
			"Buffer pool fetch latency, hits and misses alike.", nil),
		MissLatency: r.LatencyHistogram("lruk_pool_miss_seconds",
			"Latency of fetches that ran the miss protocol (frame obtention plus disk read).", nil),
		CoalesceWait: r.LatencyHistogram("lruk_pool_coalesce_wait_seconds",
			"Time coalesced fetches spent parked on another fetch's in-flight read.", nil),
		SweepLength: r.Histogram("lruk_pool_sweep_victims",
			"Victims examined per eviction sweep that consulted the replacer.", nil),
	}
}

// newBackendMetrics registers per-stripe read/write latency histograms for
// the storage instrumentation wrapper. Metric names keep the lruk_disk_
// prefix for dashboard continuity across backends.
func newBackendMetrics(r *obs.Registry, stripes int) storage.Metrics {
	m := storage.Metrics{
		ReadLatency:  make([]*obs.Histogram, stripes),
		WriteLatency: make([]*obs.Histogram, stripes),
	}
	for i := 0; i < stripes; i++ {
		lbl := obs.Labels{"stripe": strconv.Itoa(i)}
		m.ReadLatency[i] = r.LatencyHistogram("lruk_disk_read_seconds",
			"Storage read latency (latch waits, WAL appends, and injected delay included), by stripe.", lbl)
		m.WriteLatency[i] = r.LatencyHistogram("lruk_disk_write_seconds",
			"Storage write latency (latch waits, WAL appends, and injected delay included), by stripe.", lbl)
	}
	return m
}

// policyTraceAdapter bridges core.PolicyTracer onto the obs trace ring.
type policyTraceAdapter struct {
	trace *obs.EvictionTrace
}

func (a policyTraceAdapter) TraceEvict(p policy.PageID, clock, kdist policy.Tick, infinite bool) {
	kd := int64(kdist)
	if infinite {
		kd = obs.KDistInfinite
	}
	a.trace.Record(obs.TraceRecord{Kind: obs.TraceEvict, Page: int64(p), Clock: int64(clock), KDist: kd})
}

func (a policyTraceAdapter) TraceCollapse(p policy.PageID, clock policy.Tick) {
	a.trace.Record(obs.TraceRecord{Kind: obs.TraceCollapse, Page: int64(p), Clock: int64(clock)})
}

func (a policyTraceAdapter) TracePurge(p policy.PageID, clock policy.Tick) {
	a.trace.Record(obs.TraceRecord{Kind: obs.TracePurge, Page: int64(p), Clock: int64(clock)})
}

// registerObs installs the scrape-time collectors over every counter the
// database already maintains. Each collector re-reads its source at
// exposition, so /metrics and StatsSnapshot always agree (both are views
// of the same atomics).
func (db *DB) registerObs(r *obs.Registry) {
	pool := func(name, help string, read func(bufferpool.Stats) uint64) {
		r.CounterFunc(name, help, nil, func() float64 { return float64(read(db.pool.Stats())) })
	}
	pool("lruk_pool_hits_total", "Buffer pool page hits.",
		func(s bufferpool.Stats) uint64 { return s.Hits })
	pool("lruk_pool_misses_total", "Buffer pool page misses (coalesced and failed fetches included).",
		func(s bufferpool.Stats) uint64 { return s.Misses })
	pool("lruk_pool_coalesced_total", "Misses that joined another fetch's in-flight disk read.",
		func(s bufferpool.Stats) uint64 { return s.Coalesced })
	pool("lruk_pool_evictions_total", "Pages evicted from the pool.",
		func(s bufferpool.Stats) uint64 { return s.Evictions })
	pool("lruk_pool_write_backs_total", "Dirty pages written back to disk.",
		func(s bufferpool.Stats) uint64 { return s.WriteBacks })
	pool("lruk_pool_read_errors_total", "Miss reads failed after retries.",
		func(s bufferpool.Stats) uint64 { return s.ReadErrors })
	pool("lruk_pool_write_errors_total", "Dirty write-backs failed after retries.",
		func(s bufferpool.Stats) uint64 { return s.WriteErrors })
	pool("lruk_pool_read_retries_total", "Disk read attempts reissued by the retry ladder.",
		func(s bufferpool.Stats) uint64 { return s.ReadRetries })
	pool("lruk_pool_write_retries_total", "Disk write attempts reissued by the retry ladder.",
		func(s bufferpool.Stats) uint64 { return s.WriteRetries })
	pool("lruk_pool_reads_rejected_total", "Reads refused locally by an open circuit breaker.",
		func(s bufferpool.Stats) uint64 { return s.ReadsRejected })
	pool("lruk_pool_writes_rejected_total", "Write-backs refused locally by an open circuit breaker.",
		func(s bufferpool.Stats) uint64 { return s.WritesRejected })
	pool("lruk_pool_breaker_trips_total", "Circuit-breaker openings across all disk stripes.",
		func(s bufferpool.Stats) uint64 { return s.BreakerTrips })
	r.GaugeFunc("lruk_pool_hit_ratio", "Hits / (hits + misses).", nil,
		func() float64 { return db.pool.Stats().HitRatio() })
	r.GaugeFunc("lruk_pool_quarantined", "Resident pages awaiting a write-back retry.", nil,
		func() float64 { return float64(db.pool.Quarantined()) })
	r.GaugeFunc("lruk_pool_breaker_open_stripes", "Disk stripes with an open circuit.", nil,
		func() float64 { return float64(db.pool.BreakerOpenStripes()) })
	r.GaugeFunc("lruk_pool_frames", "Pool capacity in frames.", nil,
		func() float64 { return float64(db.pool.NumFrames()) })
	pool("lruk_corrupt_detected_total", "Corrupt page reads detected (client fetches and scrub sweeps).",
		func(s bufferpool.Stats) uint64 { return s.CorruptDetected })
	pool("lruk_repair_success_total", "Detected corruptions healed by read-repair.",
		func(s bufferpool.Stats) uint64 { return s.CorruptRepaired })
	pool("lruk_repair_failed_total", "Detected corruptions quarantined as unrepairable.",
		func(s bufferpool.Stats) uint64 { return s.CorruptQuarantined })
	pool("lruk_scrub_pages_total", "Pages verified clean by the background scrubber.",
		func(s bufferpool.Stats) uint64 { return s.ScrubPages })
	pool("lruk_scrub_corrupt_total", "Corruptions first detected by a scrub sweep.",
		func(s bufferpool.Stats) uint64 { return s.ScrubCorrupt })
	r.GaugeFunc("lruk_pool_poisoned_pages", "Page ids quarantined as unrepairable-corrupt.", nil,
		func() float64 { return float64(len(db.pool.PoisonedPages())) })

	dsk := func(name, help string, read func(storage.Stats) float64) {
		r.CounterFunc(name, help, nil, func() float64 { return read(db.backend.Stats()) })
	}
	dsk("lruk_disk_reads_total", "Successful storage page reads.",
		func(s storage.Stats) float64 { return float64(s.Reads) })
	dsk("lruk_disk_writes_total", "Successful storage page writes.",
		func(s storage.Stats) float64 { return float64(s.Writes) })
	dsk("lruk_disk_allocated_total", "Pages allocated.",
		func(s storage.Stats) float64 { return float64(s.Allocated) })
	dsk("lruk_disk_deallocated_total", "Pages deallocated.",
		func(s storage.Stats) float64 { return float64(s.Deallocated) })
	dsk("lruk_disk_read_faults_total", "Reads failed by the armed fault plan.",
		func(s storage.Stats) float64 { return float64(s.ReadFaults) })
	dsk("lruk_disk_write_faults_total", "Writes failed by the armed fault plan.",
		func(s storage.Stats) float64 { return float64(s.WriteFaults) })
	dsk("lruk_disk_service_micros_total", "Total simulated service time, microseconds.",
		func(s storage.Stats) float64 { return float64(s.ServiceMicros) })
	if db.durable != nil {
		dsk("lruk_wal_appends_total", "Write-ahead log records appended.",
			func(s storage.Stats) float64 { return float64(s.WALAppends) })
		dsk("lruk_wal_syncs_total", "Write-ahead log fsync batches (group commits).",
			func(s storage.Stats) float64 { return float64(s.WALSyncs) })
		dsk("lruk_checkpoints_total", "Durable-store checkpoints completed.",
			func(s storage.Stats) float64 { return float64(s.Checkpoints) })
		dsk("lruk_recovered_records_total", "WAL records replayed during crash recovery.",
			func(s storage.Stats) float64 { return float64(s.RecoveredRecords) })
		r.GaugeFunc("lruk_disk_wal_bytes", "Bytes appended to the write-ahead log since the last checkpoint.", nil,
			func() float64 { return float64(db.backend.Stats().WALBytes) })
	}

	pol := func(name, help string, read func(core.PolicyStats) float64) {
		r.CounterFunc(name, help, nil, func() float64 { return read(db.policyStats()) })
	}
	pol("lruk_policy_evictions_total", "LRU-K victim selections.",
		func(s core.PolicyStats) float64 { return float64(s.Evictions) })
	pol("lruk_policy_collapses_total", "References absorbed by the Correlated Reference Period.",
		func(s core.PolicyStats) float64 { return float64(s.Collapses) })
	pol("lruk_policy_purges_total", "History blocks dropped by the retention demon.",
		func(s core.PolicyStats) float64 { return float64(s.Purges) })
	r.GaugeFunc("lruk_policy_history_blocks", "HIST blocks held, resident plus retained.", nil,
		func() float64 { return float64(db.policyStats().HistoryBlocks) })
	r.GaugeFunc("lruk_policy_evictable", "Pages currently in the victim index.", nil,
		func() float64 { return float64(db.policyStats().Evictable) })
	r.CounterFunc("lruk_policy_trace_records_total",
		"Policy decisions recorded into the eviction trace ring.", nil,
		func() float64 { return float64(db.evTrace.Seq()) })

	if db.batched != nil {
		bat := func(name, help string, read func(core.BatchStats) uint64) {
			r.CounterFunc(name, help, nil, func() float64 { return float64(read(db.batched.BatchStats())) })
		}
		bat("lruk_access_batch_drains_total", "Access-buffer slot drains triggered by a full buffer.",
			func(s core.BatchStats) uint64 { return s.Drains })
		bat("lruk_access_batch_flushes_total", "Whole-buffer flushes (eviction searches, stats reads).",
			func(s core.BatchStats) uint64 { return s.Flushes })
		bat("lruk_access_batch_events_total", "Buffered policy events applied to the replacer.",
			func(s core.BatchStats) uint64 { return s.Events })
		bat("lruk_access_batch_dropped_total", "Stale buffered hits discarded at drain (page left residency).",
			func(s core.BatchStats) uint64 { return s.Dropped })
		depth := r.Histogram("lruk_access_batch_drain_events",
			"Events applied per access-buffer drain.", nil)
		latency := r.LatencyHistogram("lruk_access_batch_drain_seconds",
			"Time spent applying one access-buffer drain to the replacer.", nil)
		db.batched.SetDrainObserver(func(events int, nanos int64) {
			depth.Observe(int64(events))
			latency.Observe(nanos)
		})
	}

	if db.recCache != nil {
		rc := func(name, help string, read func(core.CacheStats) float64) {
			r.CounterFunc(name, help, nil, func() float64 { return read(db.recCache.Stats()) })
		}
		rc("lruk_record_cache_hits_total", "Record cache hits.",
			func(s core.CacheStats) float64 { return float64(s.Hits) })
		rc("lruk_record_cache_misses_total", "Record cache misses.",
			func(s core.CacheStats) float64 { return float64(s.Misses) })
		rc("lruk_record_cache_evictions_total", "Record cache evictions.",
			func(s core.CacheStats) float64 { return float64(s.Evictions) })
		rc("lruk_record_cache_rejected_total", "Record cache puts refused at capacity.",
			func(s core.CacheStats) float64 { return float64(s.Rejected) })
	}
}

// EvictionTrace returns the retained policy decision records, oldest first
// (nil when Config.Obs was not set). Exposed over the observability HTTP
// endpoint as /trace.
func (db *DB) EvictionTrace() []obs.TraceRecord {
	return db.evTrace.Snapshot()
}
