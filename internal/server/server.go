// Package server puts the db layer behind a TCP socket: the network page
// service of a disaggregated buffer deployment, where many remote clients
// hammer one shared LRU-K pool. The wire format lives in wire; this
// package is the part that makes it production-shaped rather than an echo
// loop:
//
//   - Admission control: requests pass through a bounded queue drained by a
//     fixed worker pool. A full queue sheds immediately with StatusBusy —
//     the reply costs no database work, so an overloaded server stays
//     responsive instead of building an unbounded backlog.
//   - Deadline propagation: each request's time budget becomes a
//     context.WithTimeout charged to every db operation, so the pool's
//     coalesced-waiter abandonment and retry budgets (DESIGN.md §10) are
//     exercised by real remote deadlines.
//   - Typed failure mapping: an open disk circuit breaker surfaces as
//     StatusUnavailable, expired deadlines as StatusDeadline, a draining
//     server as StatusShutdown — clients can tell "back off" from "retry
//     elsewhere" from "give up".
//   - Connection hygiene: per-frame read deadlines, write deadlines, and a
//     max-frame guard bound what one peer can cost.
//   - Graceful drain: Close stops accepting, lets in-flight requests
//     complete up to a deadline, then hard-closes stragglers; lifecycle
//     tests hold it to zero leaked goroutines via internal/leakcheck.
//
// See DESIGN.md §11 for the full state machine.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/server/wire"
	"repro/internal/storage"
)

// Config tunes the service.
type Config struct {
	// Addr is the TCP listen address; ":0" forms pick a free port
	// (read it back from Addr() after Start).
	Addr string
	// Workers is the worker-pool size — the hard bound on concurrent
	// database operations. Zero selects GOMAXPROCS.
	Workers int
	// QueueDepth is the admission queue capacity beyond the workers; a
	// request arriving with the queue full is shed with StatusBusy. Zero
	// selects 4x Workers.
	QueueDepth int
	// MaxFrame is the largest accepted request frame; larger length
	// prefixes are rejected before any allocation. Zero selects
	// wire.MaxFrameDefault.
	MaxFrame uint32
	// IdleTimeout bounds the wait for the next request frame on an open
	// connection. Zero selects 60s.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response. Zero selects 10s.
	WriteTimeout time.Duration
	// MaxRequestTimeout caps the per-request time budget; it also applies
	// to requests that declare none, so no operation runs unbounded. Zero
	// selects 30s.
	MaxRequestTimeout time.Duration
	// DrainTimeout bounds Close's graceful phase: how long in-flight
	// connections get to finish their current request before being
	// hard-closed. Zero selects 5s.
	DrainTimeout time.Duration
	// Obs, when non-nil, registers the server's metric families into this
	// registry: per-opcode request latency, admission queue wait and depth,
	// accepted/shed/status counters. The same registry's histogram
	// summaries ride on every STATS reply. Nil leaves the request path
	// uninstrumented.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.MaxFrameDefault
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxRequestTimeout <= 0 {
		c.MaxRequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// task is one admitted request travelling from a connection handler to a
// worker; reply is buffered so the worker never blocks publishing the
// result.
type task struct {
	req   wire.Request
	reply chan wire.Response
	// enqueued is when the task entered the admission queue; the zero value
	// means queue-wait instrumentation is off.
	enqueued time.Time
}

// Server is the network page service over one DB.
type Server struct {
	cfg Config
	db  *db.DB

	ln    net.Listener
	queue chan *task
	done  chan struct{} // closed when drain begins

	mu    sync.Mutex // guards conns and the closed handshake below
	conns map[net.Conn]struct{}

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup

	closed   atomic.Bool
	closeMu  sync.Mutex
	closeErr error

	// flushGate lets FLUSH act as a checkpoint barrier: record operations
	// hold it shared, a flush exclusively, so a flush never snapshots page
	// bytes mid-update.
	flushGate sync.RWMutex

	connsAccepted atomic.Uint64
	requests      atomic.Uint64
	shed          atomic.Uint64
	statusCounts  [wire.NumStatuses]atomic.Uint64

	// reg is the optional metrics registry; opLatency (indexed by wire.Op)
	// and queueWait are nil without it, disabling their timings.
	reg       *obs.Registry
	opLatency [wire.NumOps + 1]*obs.Histogram
	queueWait *obs.Histogram
}

// New returns an unstarted server over database.
func New(database *db.DB, cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		db:    database,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	if r := s.cfg.Obs; r != nil {
		s.registerObs(r)
	}
	return s
}

// registerObs installs the server's metric families: latency histograms the
// request path records into, and scrape-time collectors over the counters
// the server maintains anyway.
func (s *Server) registerObs(r *obs.Registry) {
	s.reg = r
	for op := wire.OpGet; int(op) <= wire.NumOps; op++ {
		s.opLatency[op] = r.LatencyHistogram("lruk_server_request_seconds",
			"Request execution latency by opcode (database work only; queue wait excluded).",
			obs.Labels{"op": strings.ToLower(op.String())})
	}
	s.queueWait = r.LatencyHistogram("lruk_server_queue_wait_seconds",
		"Time admitted requests spent in the admission queue before a worker picked them up.", nil)
	r.GaugeFunc("lruk_server_queue_depth", "Requests sitting in the admission queue right now.", nil,
		func() float64 { return float64(len(s.queue)) })
	r.CounterFunc("lruk_server_conns_total", "Connections accepted.", nil,
		func() float64 { return float64(s.connsAccepted.Load()) })
	r.CounterFunc("lruk_server_requests_total", "Well-framed requests read.", nil,
		func() float64 { return float64(s.requests.Load()) })
	r.CounterFunc("lruk_server_shed_total", "Requests shed at admission with StatusBusy.", nil,
		func() float64 { return float64(s.shed.Load()) })
	for i := range s.statusCounts {
		st := wire.Status(i)
		idx := i
		r.CounterFunc("lruk_server_responses_total", "Responses sent, by status.",
			obs.Labels{"status": st.String()},
			func() float64 { return float64(s.statusCounts[idx].Load()) })
	}
}

// Start binds the listener and launches the worker pool and accept loop.
func (s *Server) Start() error {
	if s.ln != nil {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.queue = make(chan *task, s.cfg.QueueDepth)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close drains and stops the server: stop accepting, nudge idle
// connections off their reads, let in-flight requests finish within
// DrainTimeout, then hard-close whatever remains and reap the worker pool.
// It is idempotent and does not close the database.
func (s *Server) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return s.closeErr
	}
	if s.ln == nil {
		s.closed.Store(true)
		return nil
	}
	s.closed.Store(true)
	close(s.done)
	err := s.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}

	// Wake every handler blocked waiting for a next frame; handlers mid-
	// request keep running and deliver their response first.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.cfg.DrainTimeout):
		// Graceful window over: sever the stragglers. Their in-flight
		// database work still completes (operations are deadline-bounded);
		// only the response write is forfeited.
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-drained
	}

	// All producers are gone; closing the queue lets the workers run it
	// dry and exit.
	close(s.queue)
	s.workerWG.Wait()
	s.acceptWG.Wait()
	s.closeErr = err
	return err
}

// Stats snapshots the server's own counters.
func (s *Server) Stats() wire.ServerStats {
	st := wire.ServerStats{
		Conns:    s.connsAccepted.Load(),
		Requests: s.requests.Load(),
		Shed:     s.shed.Load(),
		Statuses: make(map[string]uint64, wire.NumStatuses),
	}
	for i := range s.statusCounts {
		if n := s.statusCounts[i].Load(); n > 0 {
			st.Statuses[wire.Status(i).String()] = n
		}
	}
	return st
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (fd pressure): brief pause, retry.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		s.connsAccepted.Add(1)
		s.mu.Lock()
		if s.closed.Load() {
			// Lost the race with Close's sweep: refuse rather than leak an
			// untracked connection.
			s.mu.Unlock()
			_ = c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		_ = c.Close()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		if s.closed.Load() {
			return
		}
		_ = c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		payload, err := wire.ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			// An oversized frame gets a reply before the cut; EOF, timeouts,
			// and drain-nudged deadline errors just close.
			if errors.Is(err, wire.ErrFrameTooLarge) {
				s.reply(c, bw, wire.Response{Status: wire.StatusBadRequest, Body: []byte(err.Error())})
			}
			return
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// The stream may be desynchronised; answer and close.
			s.reply(c, bw, wire.Response{Status: wire.StatusBadRequest, Body: []byte(err.Error())})
			return
		}
		s.requests.Add(1)

		var resp wire.Response
		switch {
		case s.closed.Load():
			resp = wire.Response{Status: wire.StatusShutdown, Body: []byte("server draining")}
		default:
			t := &task{req: req, reply: make(chan wire.Response, 1)}
			if s.queueWait != nil {
				t.enqueued = time.Now()
			}
			select {
			case s.queue <- t:
				resp = <-t.reply
			default:
				// Admission queue full: shed now, cheaply. This is the
				// whole point of bounding the queue — the reply path does
				// no database work, so overload cannot snowball.
				s.shed.Add(1)
				resp = wire.Response{Status: wire.StatusBusy, Body: []byte("server busy: admission queue full")}
			}
		}
		if err := s.reply(c, bw, resp); err != nil {
			return
		}
	}
}

// reply writes one response frame under the write deadline and records its
// status.
func (s *Server) reply(c net.Conn, bw *bufio.Writer, resp wire.Response) error {
	s.statusCounts[resp.Status].Add(1)
	_ = c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := wire.WriteFrame(bw, wire.AppendResponse(nil, resp)); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.queue {
		if !t.enqueued.IsZero() {
			s.queueWait.ObserveSince(t.enqueued)
		}
		var start time.Time
		hist := s.histFor(t.req.Op)
		if hist != nil {
			start = time.Now()
		}
		resp := s.execute(t.req)
		if hist != nil {
			hist.ObserveSince(start)
		}
		t.reply <- resp
	}
}

// histFor returns the op's latency histogram, nil when uninstrumented or
// the op is unknown (an unknown op still gets a BadRequest reply, just no
// latency series).
func (s *Server) histFor(op wire.Op) *obs.Histogram {
	if int(op) >= len(s.opLatency) {
		return nil
	}
	return s.opLatency[op]
}

// execute runs one admitted request against the database under its
// deadline and maps the outcome onto the wire.
func (s *Server) execute(req wire.Request) wire.Response {
	budget := req.Timeout
	if budget <= 0 || budget > s.cfg.MaxRequestTimeout {
		budget = s.cfg.MaxRequestTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	switch req.Op {
	case wire.OpGet:
		s.flushGate.RLock()
		rec, err := s.db.LookupCtx(ctx, req.CustID)
		s.flushGate.RUnlock()
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Body: rec}
	case wire.OpScan:
		s.flushGate.RLock()
		n, err := s.db.ScanCustomersCtx(ctx)
		s.flushGate.RUnlock()
		if err != nil {
			return errResponse(err)
		}
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], uint64(n))
		return wire.Response{Status: wire.StatusOK, Body: body[:]}
	case wire.OpUpdate:
		s.flushGate.RLock()
		err := s.db.UpdateCustomerCtx(ctx, req.CustID, req.Fill)
		s.flushGate.RUnlock()
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpStats:
		reply := wire.StatsReply{Server: s.Stats(), DB: s.db.StatsSnapshot()}
		if s.reg != nil {
			reply.Obs = s.reg.HistogramSummaries()
		}
		body, err := json.Marshal(reply)
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Body: body}
	case wire.OpFlush:
		s.flushGate.Lock()
		err := s.db.FlushAllCtx(ctx)
		s.flushGate.Unlock()
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK}
	}
	return wire.Response{Status: wire.StatusBadRequest, Body: []byte(fmt.Sprintf("unknown op %d", req.Op))}
}

// errResponse maps a storage-layer error onto its wire status. Order
// matters only for specificity: breaker and shutdown conditions are typed
// sentinels, deadline covers both expiry and cancellation, and anything
// unrecognised is internal.
func errResponse(err error) wire.Response {
	status := wire.StatusInternal
	switch {
	case errors.Is(err, bufferpool.ErrDiskUnavailable):
		status = wire.StatusUnavailable
	case errors.Is(err, db.ErrClosed) || errors.Is(err, bufferpool.ErrClosed):
		status = wire.StatusShutdown
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		status = wire.StatusDeadline
	case errors.Is(err, db.ErrNotFound):
		status = wire.StatusNotFound
	case storage.IsCorrupt(err):
		// Explicitly internal, not unavailable: corruption is permanent
		// damage on this page, and retrying elsewhere will not help —
		// clients must not treat it as a transient outage.
		status = wire.StatusInternal
	}
	return wire.Response{Status: status, Body: []byte(err.Error())}
}
