// Package server puts the db layer behind a TCP socket: the network page
// service of a disaggregated buffer deployment, where many remote clients
// hammer one shared LRU-K pool. The wire format lives in wire; this
// package is the part that makes it production-shaped rather than an echo
// loop:
//
//   - Admission control: requests pass through a bounded queue drained by a
//     fixed worker pool. A full queue sheds immediately with StatusBusy —
//     the reply costs no database work, so an overloaded server stays
//     responsive instead of building an unbounded backlog.
//   - Deadline propagation: each request's time budget becomes a
//     context.WithTimeout charged to every db operation, so the pool's
//     coalesced-waiter abandonment and retry budgets (DESIGN.md §10) are
//     exercised by real remote deadlines.
//   - Typed failure mapping: an open disk circuit breaker surfaces as
//     StatusUnavailable, expired deadlines as StatusDeadline, a draining
//     server as StatusShutdown — clients can tell "back off" from "retry
//     elsewhere" from "give up".
//   - Connection hygiene: per-frame read deadlines, write deadlines, and a
//     max-frame guard bound what one peer can cost.
//   - Graceful drain: Close stops accepting, lets in-flight requests
//     complete up to a deadline, then hard-closes stragglers; lifecycle
//     tests hold it to zero leaked goroutines via internal/leakcheck.
//
// See DESIGN.md §11 for the full state machine.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/server/wire"
	"repro/internal/storage"
)

// Config tunes the service.
type Config struct {
	// Addr is the TCP listen address; ":0" forms pick a free port
	// (read it back from Addr() after Start).
	Addr string
	// Workers is the worker-pool size — the hard bound on concurrent
	// database operations. Zero selects GOMAXPROCS.
	Workers int
	// QueueDepth is the admission queue capacity beyond the workers; a
	// request arriving with the queue full is shed with StatusBusy. Zero
	// selects 4x Workers.
	QueueDepth int
	// MaxFrame is the largest accepted request frame; larger length
	// prefixes are rejected before any allocation. Zero selects
	// wire.MaxFrameDefault.
	MaxFrame uint32
	// IdleTimeout bounds the wait for the next request frame on an open
	// connection. Zero selects 60s.
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response. Zero selects 10s.
	WriteTimeout time.Duration
	// MaxRequestTimeout caps the per-request time budget; it also applies
	// to requests that declare none, so no operation runs unbounded. Zero
	// selects 30s.
	MaxRequestTimeout time.Duration
	// DrainTimeout bounds Close's graceful phase: how long in-flight
	// connections get to finish their current request before being
	// hard-closed. Zero selects 5s.
	DrainTimeout time.Duration
	// Obs, when non-nil, registers the server's metric families into this
	// registry: per-opcode request latency, admission queue wait and depth,
	// accepted/shed/status counters. The same registry's histogram
	// summaries ride on every STATS reply. Nil leaves the request path
	// uninstrumented.
	Obs *obs.Registry
	// NodeID is this server's identity in a cluster membership view.
	// Required when View is set (or when a view is installed later over
	// the wire); empty means the node never checks ownership.
	NodeID string
	// View is the initial membership view. With a view installed, GET and
	// UPDATE requests for keys the consistent-hash ring assigns to another
	// node are refused with StatusMoved naming the owner; admin-plane ops
	// (view, range, stats, flush, scan) are never ownership-checked. Nil
	// boots the node standalone — a view can still arrive via VIEW_SET.
	View *wire.View
	// Spans, when non-nil, arms request tracing: sampled requests get a
	// request span plus a queue-wait child recorded here, their trace
	// context is threaded through the database layers, and op-latency
	// exemplars carry their trace ids. Nil keeps the request path free of
	// tracing work beyond a flag check.
	Spans *obs.SpanRecorder
	// Sampler decides which requests are traced beyond what the client
	// already sampled on the wire: head sampling by trace id, plus tail
	// bias for slow, failed, or shed requests (their spans are emitted
	// retrospectively). Only consulted when Spans is set.
	Sampler obs.Sampler
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = wire.MaxFrameDefault
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxRequestTimeout <= 0 {
		c.MaxRequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// task is one admitted request travelling from a connection handler to a
// worker; reply is buffered so the worker never blocks publishing the
// result.
type task struct {
	req   wire.Request
	reply chan wire.Response
	// enqueued is when the task entered the admission queue; the zero value
	// means queue-wait instrumentation is off.
	enqueued time.Time
}

// Server is the network page service over one DB.
type Server struct {
	cfg Config
	db  *db.DB

	ln    net.Listener
	queue chan *task
	done  chan struct{} // closed when drain begins

	mu    sync.Mutex // guards conns and the closed handshake below
	conns map[net.Conn]struct{}

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup

	closed   atomic.Bool
	closeMu  sync.Mutex
	closeErr error

	// flushGate lets FLUSH act as a checkpoint barrier: record operations
	// hold it shared, a flush exclusively, so a flush never snapshots page
	// bytes mid-update.
	flushGate sync.RWMutex

	connsAccepted atomic.Uint64
	requests      atomic.Uint64
	shed          atomic.Uint64
	statusCounts  [wire.NumStatuses]atomic.Uint64

	// viewState is the node's current membership view plus the ring built
	// from it; nil until a view is installed. Swapped atomically by
	// VIEW_SET so the hot path reads it without a lock.
	viewState atomic.Pointer[ringView]
	// rangeKeysOut / rangeKeysIn count keys streamed by handoff range ops.
	rangeKeysOut atomic.Uint64
	rangeKeysIn  atomic.Uint64

	// reg is the optional metrics registry; opLatency (indexed by wire.Op)
	// and queueWait are nil without it, disabling their timings.
	reg       *obs.Registry
	opLatency [wire.NumOps + 1]*obs.Histogram
	queueWait *obs.Histogram
}

// ringView pairs a membership view with the ring derived from it.
type ringView struct {
	view wire.View
	ring *cluster.Ring
}

// New returns an unstarted server over database.
func New(database *db.DB, cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		db:    database,
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	if v := s.cfg.View; v != nil {
		s.viewState.Store(&ringView{view: *v, ring: cluster.NewRing(*v)})
	}
	if r := s.cfg.Obs; r != nil {
		s.registerObs(r)
	}
	return s
}

// registerObs installs the server's metric families: latency histograms the
// request path records into, and scrape-time collectors over the counters
// the server maintains anyway.
func (s *Server) registerObs(r *obs.Registry) {
	s.reg = r
	for op := wire.OpGet; int(op) <= wire.NumOps; op++ {
		s.opLatency[op] = r.LatencyHistogram("lruk_server_request_seconds",
			"Request execution latency by opcode (database work only; queue wait excluded).",
			obs.Labels{"op": strings.ToLower(op.String())})
	}
	s.queueWait = r.LatencyHistogram("lruk_server_queue_wait_seconds",
		"Time admitted requests spent in the admission queue before a worker picked them up.", nil)
	r.GaugeFunc("lruk_server_queue_depth", "Requests sitting in the admission queue right now.", nil,
		func() float64 { return float64(len(s.queue)) })
	r.CounterFunc("lruk_server_conns_total", "Connections accepted.", nil,
		func() float64 { return float64(s.connsAccepted.Load()) })
	r.CounterFunc("lruk_server_requests_total", "Well-framed requests read.", nil,
		func() float64 { return float64(s.requests.Load()) })
	r.CounterFunc("lruk_server_shed_total", "Requests shed at admission with StatusBusy.", nil,
		func() float64 { return float64(s.shed.Load()) })
	for i := range s.statusCounts {
		st := wire.Status(i)
		idx := i
		r.CounterFunc("lruk_server_responses_total", "Responses sent, by status.",
			obs.Labels{"status": st.String()},
			func() float64 { return float64(s.statusCounts[idx].Load()) })
	}
	r.CounterFunc("lruk_server_handoff_keys_total", "Keys streamed by handoff range ops, by direction.",
		obs.Labels{"direction": "out"},
		func() float64 { return float64(s.rangeKeysOut.Load()) })
	r.CounterFunc("lruk_server_handoff_keys_total", "Keys streamed by handoff range ops, by direction.",
		obs.Labels{"direction": "in"},
		func() float64 { return float64(s.rangeKeysIn.Load()) })
	r.GaugeFunc("lruk_server_view_epoch", "Epoch of the membership view this node holds (0 = standalone).", nil,
		func() float64 {
			if rv := s.viewState.Load(); rv != nil {
				return float64(rv.view.Epoch)
			}
			return 0
		})
}

// Start binds the listener and launches the worker pool and accept loop.
func (s *Server) Start() error {
	if s.ln != nil {
		return errors.New("server: already started")
	}
	if s.viewState.Load() != nil && s.cfg.NodeID == "" {
		return errors.New("server: a membership view requires a NodeID")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	s.queue = make(chan *task, s.cfg.QueueDepth)
	for i := 0; i < s.cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close drains and stops the server: stop accepting, nudge idle
// connections off their reads, let in-flight requests finish within
// DrainTimeout, then hard-close whatever remains and reap the worker pool.
// It is idempotent and does not close the database.
func (s *Server) Close() error {
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return s.closeErr
	}
	if s.ln == nil {
		s.closed.Store(true)
		return nil
	}
	s.closed.Store(true)
	close(s.done)
	err := s.ln.Close()
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}

	// Wake every handler blocked waiting for a next frame; handlers mid-
	// request keep running and deliver their response first.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(s.cfg.DrainTimeout):
		// Graceful window over: sever the stragglers. Their in-flight
		// database work still completes (operations are deadline-bounded);
		// only the response write is forfeited.
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-drained
	}

	// All producers are gone; closing the queue lets the workers run it
	// dry and exit.
	close(s.queue)
	s.workerWG.Wait()
	s.acceptWG.Wait()
	s.closeErr = err
	return err
}

// Stats snapshots the server's own counters.
func (s *Server) Stats() wire.ServerStats {
	st := wire.ServerStats{
		Conns:    s.connsAccepted.Load(),
		Requests: s.requests.Load(),
		Shed:     s.shed.Load(),
		Statuses: make(map[string]uint64, wire.NumStatuses),
	}
	for i := range s.statusCounts {
		if n := s.statusCounts[i].Load(); n > 0 {
			st.Statuses[wire.Status(i).String()] = n
		}
	}
	if rv := s.viewState.Load(); rv != nil {
		st.ViewEpoch = rv.view.Epoch
	}
	st.RangeKeysOut = s.rangeKeysOut.Load()
	st.RangeKeysIn = s.rangeKeysIn.Load()
	return st
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient accept failure (fd pressure): brief pause, retry.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		s.connsAccepted.Add(1)
		s.mu.Lock()
		if s.closed.Load() {
			// Lost the race with Close's sweep: refuse rather than leak an
			// untracked connection.
			s.mu.Unlock()
			_ = c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(c)
	}
}

func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		_ = c.Close()
	}()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	for {
		if s.closed.Load() {
			return
		}
		_ = c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		payload, err := wire.ReadFrame(br, s.cfg.MaxFrame)
		if err != nil {
			// An oversized frame gets a reply before the cut; EOF, timeouts,
			// and drain-nudged deadline errors just close.
			if errors.Is(err, wire.ErrFrameTooLarge) {
				s.reply(c, bw, wire.Response{Status: wire.StatusBadRequest, Body: []byte(err.Error())})
			}
			return
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// The stream may be desynchronised; answer and close.
			s.reply(c, bw, wire.Response{Status: wire.StatusBadRequest, Body: []byte(err.Error())})
			return
		}
		s.requests.Add(1)

		var resp wire.Response
		switch {
		case s.closed.Load():
			resp = wire.Response{Status: wire.StatusShutdown, Body: []byte("server draining")}
		default:
			t := &task{req: req, reply: make(chan wire.Response, 1)}
			if s.queueWait != nil {
				t.enqueued = time.Now()
			}
			select {
			case s.queue <- t:
				resp = <-t.reply
			default:
				// Admission queue full: shed now, cheaply. This is the
				// whole point of bounding the queue — the reply path does
				// no database work, so overload cannot snowball.
				s.shed.Add(1)
				if rec := s.cfg.Spans; rec != nil && s.cfg.Sampler.ShouldTail(0, true) {
					// Sheds are always tail-worthy: a zero-duration request
					// span marks where the cluster turned the request away.
					traceID := req.Trace.TraceID
					if traceID == 0 {
						traceID = rec.NewTraceID()
					}
					rec.Emit(traceID, rec.NewSpanID(), req.Trace.SpanID,
						obs.SpanRequest, time.Now(), 0, int64(req.Op))
				}
				resp = wire.Response{Status: wire.StatusBusy, Body: []byte("server busy: admission queue full")}
			}
		}
		if err := s.reply(c, bw, resp); err != nil {
			return
		}
	}
}

// reply writes one response frame under the write deadline and records its
// status.
func (s *Server) reply(c net.Conn, bw *bufio.Writer, resp wire.Response) error {
	s.statusCounts[resp.Status].Add(1)
	_ = c.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	if err := wire.WriteFrame(bw, wire.AppendResponse(nil, resp)); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for t := range s.queue {
		picked := time.Now()
		if !t.enqueued.IsZero() {
			s.queueWait.ObserveSince(t.enqueued)
		}
		t.reply <- s.serve(t, picked)
	}
}

// serve runs one admitted request with its tracing envelope: the request
// span (parented to the client's wire span), a queue-wait child, the
// MOVED point event, a latency exemplar carrying the trace id, and the
// tail-sampling pass for slow or failed requests the head draw skipped.
func (s *Server) serve(t *task, picked time.Time) wire.Response {
	rec := s.cfg.Spans
	wtc := t.req.Trace
	sampled := rec != nil && wtc.TraceID != 0 &&
		(wtc.Sampled || s.cfg.Sampler.Sample(wtc.TraceID))
	enqueued := t.enqueued
	if enqueued.IsZero() {
		enqueued = picked
	}
	var reqSpan obs.Span
	if sampled {
		reqSpan = rec.StartAt(obs.TraceContext{TraceID: wtc.TraceID, SpanID: wtc.SpanID, Sampled: true},
			obs.SpanRequest, enqueued)
		rec.Emit(wtc.TraceID, rec.NewSpanID(), reqSpan.ID(),
			obs.SpanQueueWait, enqueued, picked.Sub(enqueued), 0)
	}

	resp := s.execute(t.req, reqSpan.Context())
	dur := time.Since(picked)

	exemplarTrace := uint64(0)
	if sampled {
		exemplarTrace = wtc.TraceID
		if resp.Status == wire.StatusMoved {
			rec.Emit(wtc.TraceID, rec.NewSpanID(), reqSpan.ID(),
				obs.SpanMoved, picked, 0, int64(t.req.Op))
		}
		reqSpan.Finish(int64(t.req.Op))
	} else if rec != nil && s.cfg.Sampler.ShouldTail(dur, failedStatus(resp.Status)) {
		// Tail bias: the head draw said no, but the request turned out slow
		// or broken. Reconstruct a minimal two-span trace after the fact so
		// the outliers are always explorable.
		traceID := wtc.TraceID
		if traceID == 0 {
			traceID = rec.NewTraceID()
		}
		root := rec.NewSpanID()
		rec.Emit(traceID, root, wtc.SpanID, obs.SpanRequest, enqueued, time.Since(enqueued), int64(t.req.Op))
		rec.Emit(traceID, rec.NewSpanID(), root, obs.SpanQueueWait, enqueued, picked.Sub(enqueued), 0)
		exemplarTrace = traceID
	}
	if hist := s.histFor(t.req.Op); hist != nil {
		hist.ObserveTraced(dur.Nanoseconds(), exemplarTrace)
	}
	return resp
}

// failedStatus reports whether a status counts as a failure for tail
// sampling: server-side trouble worth a trace, not client mistakes or
// routine misses.
func failedStatus(st wire.Status) bool {
	switch st {
	case wire.StatusInternal, wire.StatusUnavailable, wire.StatusDeadline, wire.StatusShutdown:
		return true
	}
	return false
}

// histFor returns the op's latency histogram, nil when uninstrumented or
// the op is unknown (an unknown op still gets a BadRequest reply, just no
// latency series).
func (s *Server) histFor(op wire.Op) *obs.Histogram {
	if int(op) >= len(s.opLatency) {
		return nil
	}
	return s.opLatency[op]
}

// execute runs one admitted request against the database under its
// deadline and maps the outcome onto the wire. tc is the request span's
// context (the zero value when unsampled); attached to ctx, it parents
// the pool, disk, and WAL spans the layers below record.
func (s *Server) execute(req wire.Request, tc obs.TraceContext) wire.Response {
	budget := req.Timeout
	if budget <= 0 || budget > s.cfg.MaxRequestTimeout {
		budget = s.cfg.MaxRequestTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	ctx = obs.ContextWithTrace(ctx, tc)

	switch req.Op {
	case wire.OpGet:
		if resp, moved := s.checkOwner(req.CustID); moved {
			return resp
		}
		s.flushGate.RLock()
		rec, err := s.db.LookupCtx(ctx, req.CustID)
		s.flushGate.RUnlock()
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Body: rec}
	case wire.OpScan:
		s.flushGate.RLock()
		n, err := s.db.ScanCustomersCtx(ctx)
		s.flushGate.RUnlock()
		if err != nil {
			return errResponse(err)
		}
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], uint64(n))
		return wire.Response{Status: wire.StatusOK, Body: body[:]}
	case wire.OpUpdate:
		if resp, moved := s.checkOwner(req.CustID); moved {
			return resp
		}
		s.flushGate.RLock()
		err := s.db.UpdateCustomerCtx(ctx, req.CustID, req.Fill)
		s.flushGate.RUnlock()
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpStats:
		reply := wire.StatsReply{Server: s.Stats(), DB: s.db.StatsSnapshot()}
		if s.reg != nil {
			reply.Obs = s.reg.HistogramSummaries()
		}
		body, err := json.Marshal(reply)
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK, Body: body}
	case wire.OpFlush:
		s.flushGate.Lock()
		err := s.db.FlushAllCtx(ctx)
		s.flushGate.Unlock()
		if err != nil {
			return errResponse(err)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpViewGet:
		v := wire.View{}
		if rv := s.viewState.Load(); rv != nil {
			v = rv.view
		}
		return wire.Response{Status: wire.StatusOK, Body: wire.EncodeView(v)}
	case wire.OpViewSet:
		v, err := wire.DecodeView(req.View)
		if err != nil {
			return wire.Response{Status: wire.StatusBadRequest, Body: []byte(err.Error())}
		}
		if v.Epoch == 0 {
			return wire.Response{Status: wire.StatusBadRequest, Body: []byte("view set: epoch must be >= 1")}
		}
		if s.cfg.NodeID == "" {
			return wire.Response{Status: wire.StatusBadRequest, Body: []byte("view set: server has no node id")}
		}
		epoch := s.applyView(v)
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], epoch)
		return wire.Response{Status: wire.StatusOK, Body: body[:]}
	case wire.OpRangeRead:
		return s.executeRangeRead(ctx, req.Lo, req.Hi)
	case wire.OpRangeWrite:
		return s.executeRangeWrite(ctx, req.Entries)
	}
	return wire.Response{Status: wire.StatusBadRequest, Body: []byte(fmt.Sprintf("unknown op %d", req.Op))}
}

// checkOwner is the cluster tier's routing guard: with a membership view
// installed, a record request for a key the ring assigns elsewhere is
// answered MOVED — carrying the owner and this node's whole view, so one
// redirect is enough for a stale client to catch up. Without a view the
// node is standalone and serves everything.
func (s *Server) checkOwner(custID int64) (wire.Response, bool) {
	rv := s.viewState.Load()
	if rv == nil {
		return wire.Response{}, false
	}
	owner := rv.ring.Owner(custID)
	if owner == s.cfg.NodeID {
		return wire.Response{}, false
	}
	body := wire.EncodeMoved(wire.Moved{Owner: owner, View: rv.view})
	return wire.Response{Status: wire.StatusMoved, Body: body}, true
}

// applyView installs v if it is newer than the held view (epochs totally
// order views) and returns the epoch held afterwards. Last-writer-wins
// CAS keeps concurrent VIEW_SETs linearizable without a lock on the read
// path.
func (s *Server) applyView(v wire.View) uint64 {
	next := &ringView{view: v, ring: cluster.NewRing(v)}
	for {
		cur := s.viewState.Load()
		if cur != nil && cur.view.Epoch >= v.Epoch {
			return cur.view.Epoch
		}
		if s.viewState.CompareAndSwap(cur, next) {
			return v.Epoch
		}
	}
}

// executeRangeRead streams the current fill byte of every existing key in
// [lo, hi): the transferable state of a key window during handoff. The
// flush gate is taken per key, not across the batch, so a concurrent
// FLUSH barrier is never starved by a long read.
func (s *Server) executeRangeRead(ctx context.Context, lo, hi int64) wire.Response {
	if hi-lo > wire.MaxRangeEntries {
		return wire.Response{Status: wire.StatusBadRequest,
			Body: []byte(fmt.Sprintf("range read window %d keys exceeds %d", hi-lo, wire.MaxRangeEntries))}
	}
	entries := make([]wire.RangeEntry, 0, hi-lo)
	for key := lo; key < hi; key++ {
		s.flushGate.RLock()
		rec, err := s.db.LookupCtx(ctx, key)
		s.flushGate.RUnlock()
		switch {
		case errors.Is(err, db.ErrNotFound):
			continue
		case err != nil:
			return errResponse(err)
		case len(rec) <= 8:
			return wire.Response{Status: wire.StatusInternal,
				Body: []byte(fmt.Sprintf("range read: key %d record only %d bytes", key, len(rec)))}
		}
		entries = append(entries, wire.RangeEntry{Key: key, Fill: rec[8]})
	}
	s.rangeKeysOut.Add(uint64(len(entries)))
	return wire.Response{Status: wire.StatusOK, Body: wire.AppendRangeEntries(make([]byte, 0, 4+9*len(entries)), entries)}
}

// executeRangeWrite applies a handoff batch. Application is sequential
// and stops at the first error; the coordinator's retry re-applies the
// whole batch, which is safe because entries are absolute states, not
// deltas.
func (s *Server) executeRangeWrite(ctx context.Context, entries []wire.RangeEntry) wire.Response {
	var applied uint64
	for _, e := range entries {
		s.flushGate.RLock()
		err := s.db.UpdateCustomerCtx(ctx, e.Key, e.Fill)
		s.flushGate.RUnlock()
		if err != nil {
			return errResponse(fmt.Errorf("range write: key %d after %d applied: %w", e.Key, applied, err))
		}
		applied++
	}
	s.rangeKeysIn.Add(applied)
	var body [8]byte
	binary.BigEndian.PutUint64(body[:], applied)
	return wire.Response{Status: wire.StatusOK, Body: body[:]}
}

// errResponse maps a storage-layer error onto its wire status. Order
// matters only for specificity: breaker and shutdown conditions are typed
// sentinels, deadline covers both expiry and cancellation, and anything
// unrecognised is internal.
func errResponse(err error) wire.Response {
	status := wire.StatusInternal
	switch {
	case errors.Is(err, bufferpool.ErrDiskUnavailable):
		status = wire.StatusUnavailable
	case errors.Is(err, db.ErrClosed) || errors.Is(err, bufferpool.ErrClosed):
		status = wire.StatusShutdown
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		status = wire.StatusDeadline
	case errors.Is(err, db.ErrNotFound):
		status = wire.StatusNotFound
	case storage.IsCorrupt(err):
		// Explicitly internal, not unavailable: corruption is permanent
		// damage on this page, and retrying elsewhere will not help —
		// clients must not treat it as a transient outage.
		status = wire.StatusInternal
	}
	return wire.Response{Status: status, Body: []byte(err.Error())}
}
