package wire

import (
	"errors"
	"reflect"
	"testing"
)

func testView() View {
	return View{Epoch: 7, Nodes: []NodeAddr{
		{ID: "n0", Addr: "127.0.0.1:4980"},
		{ID: "n1", Addr: "127.0.0.1:4981"},
		{ID: "n2", Addr: "127.0.0.1:4982"},
	}}
}

func TestViewRoundTrip(t *testing.T) {
	for _, want := range []View{{}, testView()} {
		got, err := DecodeView(EncodeView(want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
	if n, ok := testView().Node("n1"); !ok || n.Addr != "127.0.0.1:4981" {
		t.Errorf("Node(n1) = %+v, %v", n, ok)
	}
	if _, ok := testView().Node("nope"); ok {
		t.Error("Node(nope) found a member")
	}
}

func TestDecodeViewRejects(t *testing.T) {
	cases := map[string][]byte{
		"not json":        []byte("{"),
		"epoch 0 + nodes": EncodeView(View{Nodes: []NodeAddr{{ID: "a", Addr: "h:1"}}}),
		"no nodes":        []byte(`{"epoch":3,"nodes":[]}`),
		"empty id":        []byte(`{"epoch":3,"nodes":[{"id":"","addr":"h:1"}]}`),
		"empty addr":      []byte(`{"epoch":3,"nodes":[{"id":"a","addr":""}]}`),
		"duplicate id":    []byte(`{"epoch":3,"nodes":[{"id":"a","addr":"h:1"},{"id":"a","addr":"h:2"}]}`),
	}
	for name, p := range cases {
		if _, err := DecodeView(p); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

func TestMovedRoundTrip(t *testing.T) {
	want := Moved{Owner: "n2", View: testView()}
	got, err := DecodeMoved(EncodeMoved(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

func TestDecodeMovedRejects(t *testing.T) {
	cases := map[string][]byte{
		"not json":         []byte("x"),
		"empty view":       EncodeMoved(Moved{Owner: "a"}),
		"owner not member": EncodeMoved(Moved{Owner: "ghost", View: testView()}),
		"invalid view":     []byte(`{"owner":"a","view":{"epoch":1,"nodes":[{"id":"a","addr":""}]}}`),
	}
	for name, p := range cases {
		if _, err := DecodeMoved(p); !errors.Is(err, ErrBadResponse) {
			t.Errorf("%s: err = %v, want ErrBadResponse", name, err)
		}
	}
}

func TestRangeEntriesRoundTrip(t *testing.T) {
	for _, want := range [][]RangeEntry{
		nil,
		{{Key: 0, Fill: 0}},
		{{Key: 1, Fill: 0xAA}, {Key: -1, Fill: 0x55}, {Key: 1 << 40, Fill: 1}},
	} {
		got, err := DecodeRangeEntries(AppendRangeEntries(nil, want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeRangeEntriesRejects(t *testing.T) {
	huge := AppendRangeEntries(nil, make([]RangeEntry, 2))
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff // hostile count
	cases := map[string][]byte{
		"short":          {0, 0},
		"count short":    {0, 0, 0, 1, 9},
		"count trailing": append(AppendRangeEntries(nil, []RangeEntry{{Key: 1}}), 0xEE),
		"hostile count":  huge,
	}
	for name, p := range cases {
		if _, err := DecodeRangeEntries(p); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

func TestMaxRangeEntriesFitsDefaultFrame(t *testing.T) {
	// The largest range block (with a status byte in front of it, as a
	// RANGE_READ reply carries) must fit the default frame guard, or a
	// handoff would be unable to stream against a default-configured peer.
	entries := make([]RangeEntry, MaxRangeEntries)
	if n := 1 + len(AppendRangeEntries(nil, entries)); n > MaxFrameDefault {
		t.Fatalf("max range reply is %d bytes, past the %d default frame guard", n, MaxFrameDefault)
	}
}
