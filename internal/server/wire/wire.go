// Package wire defines the page service's binary protocol: length-prefixed
// frames on a TCP stream, a fixed request header, and single-byte status
// codes on every reply. The format is deliberately small — five operations,
// no negotiation — because the interesting engineering lives behind it
// (admission control, shedding, deadline propagation), not in the codec.
//
// Frame:
//
//	bytes 0-3   payload length, big-endian uint32 (bounded by the reader's
//	            max-frame guard; an oversized prefix is rejected before any
//	            allocation)
//	bytes 4...  payload
//
// Request payload:
//
//	byte  0     op (OpGet, OpScan, OpUpdate, OpStats, OpFlush)
//	bytes 1-8   per-request time budget in milliseconds, big-endian uint64
//	            (0 = none; the server caps it and runs the operation under
//	            a context with that deadline)
//	bytes 9...  op-specific body:
//	              GET    8-byte big-endian uint64 customer id
//	              UPDATE 8-byte big-endian uint64 customer id + 1 fill byte
//	              SCAN, STATS, FLUSH  empty
//
// Response payload:
//
//	byte  0     status (StatusOK ... StatusInternal)
//	bytes 1...  body: on StatusOK the op's result (GET record bytes, SCAN
//	            8-byte big-endian count, STATS JSON StatsReply, UPDATE and
//	            FLUSH empty); on any other status a UTF-8 error message.
//
// Decoding is strict: unknown ops, short bodies, and trailing bytes are
// errors, never panics — FuzzDecodeRequest holds the codec to that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
)

// Op identifies a request operation.
type Op uint8

// The protocol's operations.
const (
	OpGet Op = iota + 1
	OpScan
	OpUpdate
	OpStats
	OpFlush
)

// NumOps is the count of defined operations; op values run 1..NumOps, so
// per-op tables are sized NumOps+1 and indexed by the op directly.
const NumOps = int(OpFlush)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpScan:
		return "SCAN"
	case OpUpdate:
		return "UPDATE"
	case OpStats:
		return "STATS"
	case OpFlush:
		return "FLUSH"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is the single-byte reply code.
type Status uint8

// Reply statuses. The server maps the storage layer's typed errors onto
// these: an open disk circuit breaker (bufferpool.ErrDiskUnavailable)
// becomes StatusUnavailable, an expired request context StatusDeadline, a
// closed database StatusShutdown; StatusBusy is minted by the server
// itself when the admission queue is full, without touching the database.
const (
	StatusOK          Status = 0
	StatusBusy        Status = 1 // shed at admission: queue full
	StatusUnavailable Status = 2 // disk circuit breaker open
	StatusDeadline    Status = 3 // request deadline expired or cancelled
	StatusNotFound    Status = 4 // no such customer
	StatusShutdown    Status = 5 // server draining or database closed
	StatusBadRequest  Status = 6 // malformed frame or unknown op
	StatusInternal    Status = 7 // anything else
	numStatuses              = 8
)

// NumStatuses is the count of defined status codes (for per-status
// counters).
const NumStatuses = numStatuses

// String names the status for diagnostics and stats maps.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusUnavailable:
		return "unavailable"
	case StatusDeadline:
		return "deadline"
	case StatusNotFound:
		return "not_found"
	case StatusShutdown:
		return "shutdown"
	case StatusBadRequest:
		return "bad_request"
	case StatusInternal:
		return "internal"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// MaxFrameDefault is the default max-frame guard: comfortably larger than
// any record (a record fits one 4 KByte page) or stats JSON, small enough
// that a hostile length prefix cannot balloon allocation.
const MaxFrameDefault = 64 << 10

// Framing and decoding errors.
var (
	// ErrFrameTooLarge reports a length prefix above the reader's guard;
	// the frame body is not read (and never allocated).
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadRequest reports a request payload that does not decode.
	ErrBadRequest = errors.New("wire: malformed request")
	// ErrBadResponse reports a response payload that does not decode.
	ErrBadResponse = errors.New("wire: malformed response")
)

const (
	frameHeader = 4
	reqHeader   = 1 + 8 // op + millis budget
)

// WriteFrame writes one length-prefixed frame. Callers typically pass a
// *bufio.Writer and flush after the response is complete.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, refusing any payload longer than max before
// allocating for it — the defence against a hostile or corrupt length
// prefix.
func ReadFrame(r io.Reader, max uint32) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Request is one decoded operation.
type Request struct {
	Op Op
	// Timeout is the client's time budget for the operation; zero means
	// none (the server applies its own cap either way).
	Timeout time.Duration
	// CustID is the customer key for OpGet and OpUpdate.
	CustID int64
	// Fill is the filler byte for OpUpdate.
	Fill byte
}

// AppendRequest appends the encoded request payload to dst.
func AppendRequest(dst []byte, req Request) []byte {
	millis := uint64(0)
	if req.Timeout > 0 {
		millis = uint64(req.Timeout / time.Millisecond)
		if millis == 0 {
			millis = 1 // a positive sub-millisecond budget must not decay to "none"
		}
	}
	dst = append(dst, byte(req.Op))
	dst = binary.BigEndian.AppendUint64(dst, millis)
	switch req.Op {
	case OpGet:
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.CustID))
	case OpUpdate:
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.CustID))
		dst = append(dst, req.Fill)
	}
	return dst
}

// EncodeRequest encodes the request payload.
func EncodeRequest(req Request) []byte { return AppendRequest(nil, req) }

// DecodeRequest decodes a request payload. Unknown ops, short bodies, and
// trailing garbage all fail with ErrBadRequest.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < reqHeader {
		return Request{}, fmt.Errorf("%w: %d-byte payload, want >= %d", ErrBadRequest, len(p), reqHeader)
	}
	req := Request{Op: Op(p[0])}
	millis := binary.BigEndian.Uint64(p[1:9])
	const maxMillis = uint64(1<<63-1) / uint64(time.Millisecond)
	if millis > maxMillis {
		return Request{}, fmt.Errorf("%w: time budget %dms overflows", ErrBadRequest, millis)
	}
	req.Timeout = time.Duration(millis) * time.Millisecond
	body := p[reqHeader:]
	switch req.Op {
	case OpGet:
		if len(body) != 8 {
			return Request{}, fmt.Errorf("%w: GET body %d bytes, want 8", ErrBadRequest, len(body))
		}
		req.CustID = int64(binary.BigEndian.Uint64(body))
	case OpUpdate:
		if len(body) != 9 {
			return Request{}, fmt.Errorf("%w: UPDATE body %d bytes, want 9", ErrBadRequest, len(body))
		}
		req.CustID = int64(binary.BigEndian.Uint64(body[:8]))
		req.Fill = body[8]
	case OpScan, OpStats, OpFlush:
		if len(body) != 0 {
			return Request{}, fmt.Errorf("%w: %v body %d bytes, want 0", ErrBadRequest, req.Op, len(body))
		}
	default:
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadRequest, p[0])
	}
	return req, nil
}

// Response is one decoded reply.
type Response struct {
	Status Status
	// Body is the op result on StatusOK, a UTF-8 error message otherwise.
	Body []byte
}

// AppendResponse appends the encoded response payload to dst.
func AppendResponse(dst []byte, resp Response) []byte {
	dst = append(dst, byte(resp.Status))
	return append(dst, resp.Body...)
}

// EncodeResponse encodes the response payload.
func EncodeResponse(resp Response) []byte { return AppendResponse(nil, resp) }

// DecodeResponse decodes a response payload.
func DecodeResponse(p []byte) (Response, error) {
	if len(p) < 1 {
		return Response{}, fmt.Errorf("%w: empty payload", ErrBadResponse)
	}
	if Status(p[0]) >= numStatuses {
		return Response{}, fmt.Errorf("%w: unknown status %d", ErrBadResponse, p[0])
	}
	return Response{Status: Status(p[0]), Body: p[1:]}, nil
}

// ServerStats is the network layer's own counter block, reported next to
// the database's snapshot in a StatsReply.
type ServerStats struct {
	// Conns is the number of connections accepted so far.
	Conns uint64 `json:"conns"`
	// Requests is the number of well-framed requests read.
	Requests uint64 `json:"requests"`
	// Shed is the number of requests refused at admission with StatusBusy
	// (a subset of the "busy" entry in Statuses).
	Shed uint64 `json:"shed"`
	// Statuses counts replies by status name.
	Statuses map[string]uint64 `json:"statuses"`
}

// StatsReply is the STATS op's JSON body: the server's counters plus the
// database's combined snapshot, and — when the server runs with an obs
// registry — every histogram's summary, keyed `name` or `name{labels}`
// exactly as /metrics exposes it. Remote tooling (lrukload's percentile
// report) reads the same distributions an operator would scrape.
type StatsReply struct {
	Server ServerStats      `json:"server"`
	DB     db.StatsSnapshot `json:"db"`
	// Obs is nil when the server has no registry configured.
	Obs map[string]obs.HistSummary `json:"obs,omitempty"`
}
