// Package wire defines the page service's binary protocol: length-prefixed
// frames on a TCP stream, a fixed request header, and single-byte status
// codes on every reply. The format is deliberately small — five operations,
// no negotiation — because the interesting engineering lives behind it
// (admission control, shedding, deadline propagation), not in the codec.
//
// Frame:
//
//	bytes 0-3   payload length, big-endian uint32 (bounded by the reader's
//	            max-frame guard; an oversized prefix is rejected before any
//	            allocation)
//	bytes 4...  payload
//
// Request payload:
//
//	byte  0     op (OpGet ... OpRangeWrite); bit 7 (0x80) flags a trace
//	            context extension between the header and the body
//	bytes 1-8   per-request time budget in milliseconds, big-endian uint64
//	            (0 = none; the server caps it and runs the operation under
//	            a context with that deadline)
//	            — with bit 7 set, 17 further bytes follow the header:
//	            8-byte big-endian trace id (must be non-zero), 8-byte
//	            big-endian parent span id, 1 flags byte (bit 0 = sampled,
//	            the rest must be zero) — see DESIGN.md §17; an old server
//	            sees the flagged op byte as an unknown op and answers
//	            StatusBadRequest, which the client takes as its cue to
//	            retry without the extension (downgrade)
//	bytes 9...  op-specific body:
//	              GET         8-byte big-endian uint64 customer id
//	              UPDATE      8-byte big-endian uint64 customer id + 1 fill byte
//	              SCAN, STATS, FLUSH, VIEW_GET  empty
//	              VIEW_SET    JSON View (the proposed membership view)
//	              RANGE_READ  8-byte lo + 8-byte hi key (big-endian, [lo,hi))
//	              RANGE_WRITE range-entry block (see AppendRangeEntries)
//
// Response payload:
//
//	byte  0     status (StatusOK ... StatusMoved)
//	bytes 1...  body: on StatusOK the op's result (GET record bytes, SCAN
//	            8-byte big-endian count, STATS JSON StatsReply, VIEW_GET
//	            JSON View, VIEW_SET 8-byte current epoch, RANGE_READ a
//	            range-entry block, RANGE_WRITE 8-byte applied count, UPDATE
//	            and FLUSH empty); on StatusMoved a JSON Moved naming the
//	            key's owner and carrying the replier's membership view; on
//	            any other status a UTF-8 error message.
//
// The VIEW_*/RANGE_* operations and StatusMoved are the cluster tier
// (DESIGN.md §16): views make a node refuse keys it does not own, MOVED
// tells the client who does, and the range ops stream key fills between
// nodes during a membership handoff. Range and view ops are admin-plane:
// they are never ownership-checked, so a rebalance coordinator can copy
// data into a node before the cluster's clients are told it owns it.
//
// Decoding is strict: unknown ops, short bodies, and trailing bytes are
// errors, never panics — FuzzDecodeRequest holds the codec to that. The
// JSON view/moved bodies have their own strict decoders (DecodeView,
// DecodeMoved) with their own fuzz targets.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
)

// Op identifies a request operation.
type Op uint8

// The protocol's operations.
const (
	OpGet Op = iota + 1
	OpScan
	OpUpdate
	OpStats
	OpFlush
	OpViewGet
	OpViewSet
	OpRangeRead
	OpRangeWrite
)

// NumOps is the count of defined operations; op values run 1..NumOps, so
// per-op tables are sized NumOps+1 and indexed by the op directly.
const NumOps = int(OpRangeWrite)

// String names the op for diagnostics.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpScan:
		return "SCAN"
	case OpUpdate:
		return "UPDATE"
	case OpStats:
		return "STATS"
	case OpFlush:
		return "FLUSH"
	case OpViewGet:
		return "VIEW_GET"
	case OpViewSet:
		return "VIEW_SET"
	case OpRangeRead:
		return "RANGE_READ"
	case OpRangeWrite:
		return "RANGE_WRITE"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is the single-byte reply code.
type Status uint8

// Reply statuses. The server maps the storage layer's typed errors onto
// these: an open disk circuit breaker (bufferpool.ErrDiskUnavailable)
// becomes StatusUnavailable, an expired request context StatusDeadline, a
// closed database StatusShutdown; StatusBusy is minted by the server
// itself when the admission queue is full, without touching the database.
const (
	StatusOK          Status = 0
	StatusBusy        Status = 1 // shed at admission: queue full
	StatusUnavailable Status = 2 // disk circuit breaker open
	StatusDeadline    Status = 3 // request deadline expired or cancelled
	StatusNotFound    Status = 4 // no such customer
	StatusShutdown    Status = 5 // server draining or database closed
	StatusBadRequest  Status = 6 // malformed frame or unknown op
	StatusInternal    Status = 7 // anything else
	StatusMoved       Status = 8 // key owned by another node; body is a JSON Moved
	numStatuses              = 9
)

// NumStatuses is the count of defined status codes (for per-status
// counters).
const NumStatuses = numStatuses

// String names the status for diagnostics and stats maps.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusUnavailable:
		return "unavailable"
	case StatusDeadline:
		return "deadline"
	case StatusNotFound:
		return "not_found"
	case StatusShutdown:
		return "shutdown"
	case StatusBadRequest:
		return "bad_request"
	case StatusInternal:
		return "internal"
	case StatusMoved:
		return "moved"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// MaxFrameDefault is the default max-frame guard: comfortably larger than
// any record (a record fits one 4 KByte page) or stats JSON, small enough
// that a hostile length prefix cannot balloon allocation.
const MaxFrameDefault = 64 << 10

// Framing and decoding errors.
var (
	// ErrFrameTooLarge reports a length prefix above the reader's guard;
	// the frame body is not read (and never allocated).
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrBadRequest reports a request payload that does not decode.
	ErrBadRequest = errors.New("wire: malformed request")
	// ErrBadResponse reports a response payload that does not decode.
	ErrBadResponse = errors.New("wire: malformed response")
)

const (
	frameHeader = 4
	reqHeader   = 1 + 8 // op + millis budget

	// opTraceFlag marks a request frame carrying the trace-context
	// extension; the op itself lives in the remaining 7 bits. New flag
	// bits cannot be minted the same way — 0x80 is the op byte's only
	// spare bit — so any further extension must ride inside this one.
	opTraceFlag = 0x80
	// traceExtSize is the extension's length: trace id (8) + parent span
	// id (8) + flags (1).
	traceExtSize = 17
	// traceFlagSampled is the extension's only defined flag bit; the
	// other seven must be zero.
	traceFlagSampled = 0x01
)

// WriteFrame writes one length-prefixed frame. Callers typically pass a
// *bufio.Writer and flush after the response is complete.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, refusing any payload longer than max before
// allocating for it — the defence against a hostile or corrupt length
// prefix.
func ReadFrame(r io.Reader, max uint32) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d bytes", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Request is one decoded operation.
type Request struct {
	Op Op
	// Timeout is the client's time budget for the operation; zero means
	// none (the server applies its own cap either way).
	Timeout time.Duration
	// CustID is the customer key for OpGet and OpUpdate.
	CustID int64
	// Fill is the filler byte for OpUpdate.
	Fill byte
	// Lo and Hi bound OpRangeRead's key window [Lo, Hi).
	Lo, Hi int64
	// Entries is OpRangeWrite's batch of key fills.
	Entries []RangeEntry
	// View is OpViewSet's proposed membership view as raw JSON. The binary
	// codec carries it opaquely (so frames round-trip byte-identically);
	// DecodeView applies the strict JSON layer.
	View []byte
	// Trace is the request's trace context. A zero TraceID encodes no
	// extension at all — the frame is byte-identical to the pre-tracing
	// format — so untraced traffic and old peers are unaffected.
	Trace obs.TraceContext
}

// AppendRequest appends the encoded request payload to dst.
func AppendRequest(dst []byte, req Request) []byte {
	millis := uint64(0)
	if req.Timeout > 0 {
		millis = uint64(req.Timeout / time.Millisecond)
		if millis == 0 {
			millis = 1 // a positive sub-millisecond budget must not decay to "none"
		}
	}
	op := byte(req.Op)
	if req.Trace.TraceID != 0 {
		op |= opTraceFlag
	}
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint64(dst, millis)
	if req.Trace.TraceID != 0 {
		dst = binary.BigEndian.AppendUint64(dst, req.Trace.TraceID)
		dst = binary.BigEndian.AppendUint64(dst, req.Trace.SpanID)
		flags := byte(0)
		if req.Trace.Sampled {
			flags |= traceFlagSampled
		}
		dst = append(dst, flags)
	}
	switch req.Op {
	case OpGet:
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.CustID))
	case OpUpdate:
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.CustID))
		dst = append(dst, req.Fill)
	case OpViewSet:
		dst = append(dst, req.View...)
	case OpRangeRead:
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.Lo))
		dst = binary.BigEndian.AppendUint64(dst, uint64(req.Hi))
	case OpRangeWrite:
		dst = AppendRangeEntries(dst, req.Entries)
	}
	return dst
}

// EncodeRequest encodes the request payload.
func EncodeRequest(req Request) []byte { return AppendRequest(nil, req) }

// DecodeRequest decodes a request payload. Unknown ops, short bodies, and
// trailing garbage all fail with ErrBadRequest.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < reqHeader {
		return Request{}, fmt.Errorf("%w: %d-byte payload, want >= %d", ErrBadRequest, len(p), reqHeader)
	}
	req := Request{Op: Op(p[0] &^ opTraceFlag)}
	millis := binary.BigEndian.Uint64(p[1:9])
	const maxMillis = uint64(1<<63-1) / uint64(time.Millisecond)
	if millis > maxMillis {
		return Request{}, fmt.Errorf("%w: time budget %dms overflows", ErrBadRequest, millis)
	}
	req.Timeout = time.Duration(millis) * time.Millisecond
	body := p[reqHeader:]
	if p[0]&opTraceFlag != 0 {
		if len(body) < traceExtSize {
			return Request{}, fmt.Errorf("%w: trace extension %d bytes, want >= %d", ErrBadRequest, len(body), traceExtSize)
		}
		req.Trace.TraceID = binary.BigEndian.Uint64(body[:8])
		req.Trace.SpanID = binary.BigEndian.Uint64(body[8:16])
		flags := body[16]
		if req.Trace.TraceID == 0 {
			return Request{}, fmt.Errorf("%w: trace extension with zero trace id", ErrBadRequest)
		}
		if flags&^traceFlagSampled != 0 {
			return Request{}, fmt.Errorf("%w: trace extension flags %#02x unknown", ErrBadRequest, flags)
		}
		req.Trace.Sampled = flags&traceFlagSampled != 0
		body = body[traceExtSize:]
	}
	switch req.Op {
	case OpGet:
		if len(body) != 8 {
			return Request{}, fmt.Errorf("%w: GET body %d bytes, want 8", ErrBadRequest, len(body))
		}
		req.CustID = int64(binary.BigEndian.Uint64(body))
	case OpUpdate:
		if len(body) != 9 {
			return Request{}, fmt.Errorf("%w: UPDATE body %d bytes, want 9", ErrBadRequest, len(body))
		}
		req.CustID = int64(binary.BigEndian.Uint64(body[:8]))
		req.Fill = body[8]
	case OpScan, OpStats, OpFlush, OpViewGet:
		if len(body) != 0 {
			return Request{}, fmt.Errorf("%w: %v body %d bytes, want 0", ErrBadRequest, req.Op, len(body))
		}
	case OpViewSet:
		if len(body) == 0 {
			return Request{}, fmt.Errorf("%w: VIEW_SET with empty body", ErrBadRequest)
		}
		req.View = body
	case OpRangeRead:
		if len(body) != 16 {
			return Request{}, fmt.Errorf("%w: RANGE_READ body %d bytes, want 16", ErrBadRequest, len(body))
		}
		req.Lo = int64(binary.BigEndian.Uint64(body[:8]))
		req.Hi = int64(binary.BigEndian.Uint64(body[8:]))
		if req.Hi < req.Lo {
			return Request{}, fmt.Errorf("%w: RANGE_READ window [%d,%d) inverted", ErrBadRequest, req.Lo, req.Hi)
		}
	case OpRangeWrite:
		entries, err := DecodeRangeEntries(body)
		if err != nil {
			return Request{}, err
		}
		req.Entries = entries
	default:
		return Request{}, fmt.Errorf("%w: unknown op %d", ErrBadRequest, p[0])
	}
	return req, nil
}

// Response is one decoded reply.
type Response struct {
	Status Status
	// Body is the op result on StatusOK, a UTF-8 error message otherwise.
	Body []byte
}

// AppendResponse appends the encoded response payload to dst.
func AppendResponse(dst []byte, resp Response) []byte {
	dst = append(dst, byte(resp.Status))
	return append(dst, resp.Body...)
}

// EncodeResponse encodes the response payload.
func EncodeResponse(resp Response) []byte { return AppendResponse(nil, resp) }

// DecodeResponse decodes a response payload.
func DecodeResponse(p []byte) (Response, error) {
	if len(p) < 1 {
		return Response{}, fmt.Errorf("%w: empty payload", ErrBadResponse)
	}
	if Status(p[0]) >= numStatuses {
		return Response{}, fmt.Errorf("%w: unknown status %d", ErrBadResponse, p[0])
	}
	return Response{Status: Status(p[0]), Body: p[1:]}, nil
}

// NodeAddr is one cluster member: a stable identity plus its current
// dialable address. Identity, not address, is what the consistent-hash
// ring is built from, so a node can move hosts without moving keys.
type NodeAddr struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// View is a membership view: the set of nodes forming the cluster, stamped
// with a monotonically increasing epoch. Views are totally ordered by
// epoch; every participant (server or client) adopts a view only when its
// epoch exceeds the one it holds, which is what keeps a rebalance's
// MOVED ping-pong convergent. Epoch 0 is the "no view" / bootstrap value
// and must carry no nodes on the wire.
type View struct {
	Epoch uint64     `json:"epoch"`
	Nodes []NodeAddr `json:"nodes"`
}

// Node returns the member with the given id, reporting whether it exists.
func (v View) Node(id string) (NodeAddr, bool) {
	for _, n := range v.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeAddr{}, false
}

// EncodeView encodes the view as its canonical JSON body.
func EncodeView(v View) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		// Only unmarshalable values can fail here, and View has none.
		panic(err)
	}
	return raw
}

// DecodeView decodes and validates a JSON view body: an epoch-0 view must
// be empty, any real view needs at least one node, and every node needs a
// unique non-empty id and a non-empty address.
func DecodeView(p []byte) (View, error) {
	var v View
	if err := json.Unmarshal(p, &v); err != nil {
		return View{}, fmt.Errorf("%w: view: %v", ErrBadRequest, err)
	}
	if err := v.validate(); err != nil {
		return View{}, err
	}
	return v, nil
}

func (v View) validate() error {
	if v.Epoch == 0 {
		if len(v.Nodes) != 0 {
			return fmt.Errorf("%w: view: epoch 0 with %d nodes", ErrBadRequest, len(v.Nodes))
		}
		return nil
	}
	if len(v.Nodes) == 0 {
		return fmt.Errorf("%w: view: epoch %d with no nodes", ErrBadRequest, v.Epoch)
	}
	seen := make(map[string]struct{}, len(v.Nodes))
	for _, n := range v.Nodes {
		if n.ID == "" || n.Addr == "" {
			return fmt.Errorf("%w: view: node %+v needs id and addr", ErrBadRequest, n)
		}
		if _, dup := seen[n.ID]; dup {
			return fmt.Errorf("%w: view: duplicate node id %q", ErrBadRequest, n.ID)
		}
		seen[n.ID] = struct{}{}
	}
	return nil
}

// Moved is the StatusMoved body: the node that owns the requested key
// under the replier's membership view, plus that whole view so a stale
// client can patch its ring in one round trip instead of discovering the
// topology key by key.
type Moved struct {
	Owner string `json:"owner"`
	View  View   `json:"view"`
}

// EncodeMoved encodes the redirect as its JSON body.
func EncodeMoved(m Moved) []byte {
	raw, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return raw
}

// DecodeMoved decodes and validates a JSON MOVED body: the view must be a
// real (epoch > 0) valid view and the owner must be one of its members.
func DecodeMoved(p []byte) (Moved, error) {
	var m Moved
	if err := json.Unmarshal(p, &m); err != nil {
		return Moved{}, fmt.Errorf("%w: moved: %v", ErrBadResponse, err)
	}
	if m.View.Epoch == 0 {
		return Moved{}, fmt.Errorf("%w: moved: epoch-0 view", ErrBadResponse)
	}
	if err := m.View.validate(); err != nil {
		return Moved{}, fmt.Errorf("%w: moved: %v", ErrBadResponse, err)
	}
	if _, ok := m.View.Node(m.Owner); !ok {
		return Moved{}, fmt.Errorf("%w: moved: owner %q not in view", ErrBadResponse, m.Owner)
	}
	return m, nil
}

// RangeEntry is one key's state in a handoff stream: the customer key and
// its current fill byte. A record is fully determined by (key, fill), so
// this is the whole transferable state of a key.
type RangeEntry struct {
	Key  int64
	Fill byte
}

const rangeEntrySize = 9 // key(8) + fill(1)

// MaxRangeEntries bounds one range block. It keeps the largest
// RANGE_READ reply and RANGE_WRITE request comfortably inside
// MaxFrameDefault, and caps what a hostile count prefix can make the
// decoder allocate.
const MaxRangeEntries = 4096

// AppendRangeEntries appends the canonical range block: a big-endian
// uint32 entry count followed by count (key, fill) records.
func AppendRangeEntries(dst []byte, entries []RangeEntry) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Key))
		dst = append(dst, e.Fill)
	}
	return dst
}

// DecodeRangeEntries decodes a range block. The count prefix must match
// the body length exactly and stay within MaxRangeEntries; the length
// check runs before any allocation.
func DecodeRangeEntries(p []byte) ([]RangeEntry, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: range block %d bytes, want >= 4", ErrBadRequest, len(p))
	}
	count := binary.BigEndian.Uint32(p[:4])
	if count > MaxRangeEntries {
		return nil, fmt.Errorf("%w: range block count %d exceeds %d", ErrBadRequest, count, MaxRangeEntries)
	}
	if want := 4 + int(count)*rangeEntrySize; len(p) != want {
		return nil, fmt.Errorf("%w: range block %d bytes, count %d wants %d", ErrBadRequest, len(p), count, want)
	}
	if count == 0 {
		return nil, nil
	}
	entries := make([]RangeEntry, count)
	for i := range entries {
		off := 4 + i*rangeEntrySize
		entries[i] = RangeEntry{
			Key:  int64(binary.BigEndian.Uint64(p[off : off+8])),
			Fill: p[off+8],
		}
	}
	return entries, nil
}

// ServerStats is the network layer's own counter block, reported next to
// the database's snapshot in a StatsReply.
type ServerStats struct {
	// Conns is the number of connections accepted so far.
	Conns uint64 `json:"conns"`
	// Requests is the number of well-framed requests read.
	Requests uint64 `json:"requests"`
	// Shed is the number of requests refused at admission with StatusBusy
	// (a subset of the "busy" entry in Statuses).
	Shed uint64 `json:"shed"`
	// Statuses counts replies by status name.
	Statuses map[string]uint64 `json:"statuses"`
	// ViewEpoch is the epoch of the membership view this node holds
	// (0 = standalone, no cluster view installed).
	ViewEpoch uint64 `json:"view_epoch,omitempty"`
	// RangeKeysOut / RangeKeysIn count keys streamed out of / into this
	// node by handoff RANGE_READ / RANGE_WRITE operations.
	RangeKeysOut uint64 `json:"range_keys_out,omitempty"`
	RangeKeysIn  uint64 `json:"range_keys_in,omitempty"`
}

// StatsReply is the STATS op's JSON body: the server's counters plus the
// database's combined snapshot, and — when the server runs with an obs
// registry — every histogram's summary, keyed `name` or `name{labels}`
// exactly as /metrics exposes it. Remote tooling (lrukload's percentile
// report) reads the same distributions an operator would scrape.
type StatsReply struct {
	Server ServerStats      `json:"server"`
	DB     db.StatsSnapshot `json:"db"`
	// Obs is nil when the server has no registry configured.
	Obs map[string]obs.HistSummary `json:"obs,omitempty"`
}
