package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, CustID: 42},
		{Op: OpGet, CustID: -1, Timeout: 250 * time.Millisecond},
		{Op: OpUpdate, CustID: 7, Fill: 0xAB, Timeout: time.Second},
		{Op: OpScan},
		{Op: OpStats, Timeout: 30 * time.Second},
		{Op: OpFlush},
		{Op: OpViewGet},
		{Op: OpViewSet, View: EncodeView(View{Epoch: 3, Nodes: []NodeAddr{{ID: "a", Addr: "h:1"}}})},
		{Op: OpRangeRead, Lo: -5, Hi: 100, Timeout: time.Second},
		{Op: OpRangeWrite, Entries: []RangeEntry{{Key: 9, Fill: 0xEE}, {Key: -2, Fill: 0}}},
		{Op: OpRangeWrite},
	}
	for _, want := range cases {
		got, err := DecodeRequest(EncodeRequest(want))
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %v: got %+v, want %+v", want.Op, got, want)
		}
	}
}

func TestRequestTraceRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, CustID: 42, Trace: obs.TraceContext{TraceID: 0xdeadbeef, SpanID: 0xcafe, Sampled: true}},
		{Op: OpGet, CustID: 42, Trace: obs.TraceContext{TraceID: 1}}, // unsampled but traced
		{Op: OpUpdate, CustID: 7, Fill: 0xAB, Timeout: time.Second,
			Trace: obs.TraceContext{TraceID: ^uint64(0), SpanID: ^uint64(0), Sampled: true}},
		{Op: OpScan, Trace: obs.TraceContext{TraceID: 5, Sampled: true}},
		{Op: OpRangeWrite, Entries: []RangeEntry{{Key: 9, Fill: 0xEE}},
			Trace: obs.TraceContext{TraceID: 3, SpanID: 4, Sampled: true}},
	}
	for _, want := range cases {
		p := EncodeRequest(want)
		if p[0]&0x80 == 0 {
			t.Fatalf("%v: traced frame lacks the 0x80 op flag", want.Op)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("%v: decode: %v", want.Op, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("traced round trip %v: got %+v, want %+v", want.Op, got, want)
		}
	}
}

// A request without a trace id must encode byte-identically to the
// pre-tracing format, so old peers keep decoding untraced traffic.
func TestUntracedFrameBackwardCompatible(t *testing.T) {
	req := Request{Op: OpGet, CustID: 42, Timeout: time.Second}
	got := EncodeRequest(req)
	want := append([]byte{byte(OpGet), 0, 0, 0, 0, 0, 0, 0x03, 0xe8}, // 1000 ms
		0, 0, 0, 0, 0, 0, 0, 42) // cust-id
	if !bytes.Equal(got, want) {
		t.Fatalf("untraced frame changed layout:\n got %x\nwant %x", got, want)
	}
	if got[0]&0x80 != 0 {
		t.Fatal("untraced frame must not set the trace flag")
	}
}

// The extension's exact layout is part of the protocol: 8-byte trace id,
// 8-byte parent span id, 1 flags byte, all between the header and body.
func TestTracedFrameLayout(t *testing.T) {
	req := Request{Op: OpGet, CustID: 42,
		Trace: obs.TraceContext{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00, Sampled: true}}
	p := EncodeRequest(req)
	if p[0] != byte(OpGet)|0x80 {
		t.Fatalf("op byte = %#02x, want OpGet|0x80", p[0])
	}
	if id := binary.BigEndian.Uint64(p[9:17]); id != 0x1122334455667788 {
		t.Fatalf("trace id bytes = %#x", id)
	}
	if id := binary.BigEndian.Uint64(p[17:25]); id != 0x99aabbccddeeff00 {
		t.Fatalf("parent span id bytes = %#x", id)
	}
	if p[25] != 0x01 {
		t.Fatalf("flags byte = %#02x, want 0x01 (sampled)", p[25])
	}
	// The body follows the extension unchanged.
	if id := binary.BigEndian.Uint64(p[26:34]); int64(id) != 42 {
		t.Fatalf("cust-id after extension = %d, want 42", id)
	}
}

func TestDecodeRequestRejectsBadTrace(t *testing.T) {
	good := EncodeRequest(Request{Op: OpGet, CustID: 1,
		Trace: obs.TraceContext{TraceID: 7, SpanID: 8, Sampled: true}})
	cases := map[string][]byte{
		"short extension": good[:reqHeader+5],
		"zero trace id": func() []byte {
			p := append([]byte(nil), good...)
			for i := 9; i < 17; i++ {
				p[i] = 0
			}
			return p
		}(),
		"unknown flag bits": func() []byte {
			p := append([]byte(nil), good...)
			p[25] = 0x03
			return p
		}(),
		"extension without body": good[:reqHeader+17],
	}
	for name, p := range cases {
		if _, err := DecodeRequest(p); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

func TestRequestSubMillisecondBudgetSurvives(t *testing.T) {
	// A positive budget below 1ms must not encode as "no deadline".
	got, err := DecodeRequest(EncodeRequest(Request{Op: OpScan, Timeout: 100 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Timeout != time.Millisecond {
		t.Errorf("sub-millisecond budget decoded as %v, want 1ms", got.Timeout)
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"short header":       {byte(OpGet), 0, 0},
		"unknown op":         append([]byte{99}, make([]byte, 8)...),
		"zero op":            append([]byte{0}, make([]byte, 8)...),
		"GET short body":     append([]byte{byte(OpGet)}, make([]byte, 8+4)...),
		"GET trailing":       append([]byte{byte(OpGet)}, make([]byte, 8+9)...),
		"UPDATE short":       append([]byte{byte(OpUpdate)}, make([]byte, 8+8)...),
		"SCAN trailing":      append([]byte{byte(OpScan)}, make([]byte, 8+1)...),
		"FLUSH trailing":     append([]byte{byte(OpFlush)}, make([]byte, 8+2)...),
		"overflowing budget": {byte(OpScan), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
		"VIEW_GET trailing":  append([]byte{byte(OpViewGet)}, make([]byte, 8+1)...),
		"VIEW_SET empty":     append([]byte{byte(OpViewSet)}, make([]byte, 8)...),
		"RANGE_READ short":   append([]byte{byte(OpRangeRead)}, make([]byte, 8+15)...),
		"RANGE_READ inverted": append([]byte{byte(OpRangeRead)},
			0, 0, 0, 0, 0, 0, 0, 0, // budget
			0, 0, 0, 0, 0, 0, 0, 9, // lo = 9
			0, 0, 0, 0, 0, 0, 0, 1), // hi = 1
		"RANGE_WRITE short":     append([]byte{byte(OpRangeWrite)}, make([]byte, 8+3)...),
		"RANGE_WRITE count lie": append([]byte{byte(OpRangeWrite)}, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9),
	}
	for name, p := range cases {
		if _, err := DecodeRequest(p); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", name, err)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, want := range []Response{
		{Status: StatusOK, Body: []byte("payload")},
		{Status: StatusBusy, Body: []byte("queue full")},
		{Status: StatusInternal, Body: nil},
	} {
		got, err := DecodeResponse(EncodeResponse(want))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Status != want.Status || !bytes.Equal(got.Body, want.Body) {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
	if _, err := DecodeResponse(nil); !errors.Is(err, ErrBadResponse) {
		t.Errorf("empty response: err = %v, want ErrBadResponse", err)
	}
	if _, err := DecodeResponse([]byte{200}); !errors.Is(err, ErrBadResponse) {
		t.Errorf("unknown status: err = %v, want ErrBadResponse", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{0xEE}, 4096)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, MaxFrameDefault)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame round trip: got %d bytes, want %d", len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf, MaxFrameDefault); err != io.EOF {
		t.Errorf("read past end: err = %v, want io.EOF", err)
	}
}

func TestReadFrameGuards(t *testing.T) {
	// Oversized length prefix: rejected before the body is read.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 64); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame: err = %v, want ErrFrameTooLarge", err)
	}

	// A hostile prefix claiming 4 GiB must fail without reading a body.
	r := strings.NewReader("\xff\xff\xff\xff")
	if _, err := ReadFrame(r, MaxFrameDefault); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("hostile prefix: err = %v, want ErrFrameTooLarge", err)
	}

	// Truncated payload: io.ErrUnexpectedEOF, not a hang or panic.
	if _, err := ReadFrame(strings.NewReader("\x00\x00\x00\x10abc"), MaxFrameDefault); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated payload: err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Truncated header likewise.
	if _, err := ReadFrame(strings.NewReader("\x00\x00"), MaxFrameDefault); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated header: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestStatusNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Status(0); s < NumStatuses; s++ {
		name := s.String()
		if strings.HasPrefix(name, "status(") {
			t.Errorf("status %d has no name", s)
		}
		if seen[name] {
			t.Errorf("duplicate status name %q", name)
		}
		seen[name] = true
	}
}
