package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzDecodeRequest: arbitrary bytes must never panic the decoder; any
// payload that decodes must re-encode byte-identically (the header and
// bodies have no redundant encodings).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpGet, CustID: 12345, Timeout: time.Second}))
	f.Add(EncodeRequest(Request{Op: OpUpdate, CustID: -9, Fill: 0x7F}))
	f.Add(EncodeRequest(Request{Op: OpScan}))
	f.Add(EncodeRequest(Request{Op: OpStats}))
	f.Add(EncodeRequest(Request{Op: OpFlush, Timeout: 30 * time.Second}))
	f.Add([]byte{})
	f.Add([]byte{byte(OpGet)})
	f.Add(bytes.Repeat([]byte{0xFF}, 18))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		again := EncodeRequest(req)
		if !bytes.Equal(again, data) {
			t.Fatalf("decode(%x) = %+v, but re-encode = %x", data, req, again)
		}
	})
}

// FuzzReadFrame: an arbitrary byte stream must never panic the reader or
// allocate past the max-frame guard, and whatever reads back must carry
// the advertised length.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, []byte("hello"))
	f.Add(seed.Bytes(), uint32(64))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}, uint32(16))
	f.Add([]byte{0, 0, 0, 0}, uint32(0))
	f.Add([]byte{0, 0, 0, 2, 0xAA}, uint32(1024))
	f.Fuzz(func(t *testing.T, data []byte, max uint32) {
		if max > 1<<20 {
			max %= 1 << 20 // keep worst-case allocation bounded in the harness
		}
		payload, err := ReadFrame(bytes.NewReader(data), max)
		if err != nil {
			return
		}
		if uint32(len(payload)) > max {
			t.Fatalf("reader returned %d bytes past the %d-byte guard", len(payload), max)
		}
		if len(data) < 4 {
			t.Fatal("successful read from a short stream")
		}
		if want := binary.BigEndian.Uint32(data[:4]); uint32(len(payload)) != want {
			t.Fatalf("payload %d bytes, frame advertised %d", len(payload), want)
		}
		// A read frame re-frames to the same bytes it consumed.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:4+len(payload)]) {
			t.Fatal("frame did not round-trip")
		}
	})
}
