package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
)

// FuzzDecodeRequest: arbitrary bytes must never panic the decoder; any
// payload that decodes must re-encode byte-identically (the header and
// bodies have no redundant encodings).
func FuzzDecodeRequest(f *testing.F) {
	f.Add(EncodeRequest(Request{Op: OpGet, CustID: 12345, Timeout: time.Second}))
	f.Add(EncodeRequest(Request{Op: OpUpdate, CustID: -9, Fill: 0x7F}))
	f.Add(EncodeRequest(Request{Op: OpScan}))
	f.Add(EncodeRequest(Request{Op: OpStats}))
	f.Add(EncodeRequest(Request{Op: OpFlush, Timeout: 30 * time.Second}))
	f.Add(EncodeRequest(Request{Op: OpViewGet}))
	f.Add(EncodeRequest(Request{Op: OpViewSet,
		View: EncodeView(View{Epoch: 2, Nodes: []NodeAddr{{ID: "a", Addr: "h:1"}}})}))
	f.Add(EncodeRequest(Request{Op: OpRangeRead, Lo: 0, Hi: 4096, Timeout: time.Second}))
	f.Add(EncodeRequest(Request{Op: OpRangeWrite,
		Entries: []RangeEntry{{Key: 1, Fill: 0xAA}, {Key: -7, Fill: 0}}}))
	f.Add(EncodeRequest(Request{Op: OpGet, CustID: 12345,
		Trace: obs.TraceContext{TraceID: 0xdeadbeef, SpanID: 0xcafe, Sampled: true}}))
	f.Add(EncodeRequest(Request{Op: OpRangeWrite, Entries: []RangeEntry{{Key: 1, Fill: 0xAA}},
		Trace: obs.TraceContext{TraceID: 1}}))
	f.Add(EncodeRequest(Request{Op: OpScan, Trace: obs.TraceContext{TraceID: ^uint64(0), Sampled: true}}))
	f.Add([]byte{})
	f.Add([]byte{byte(OpGet)})
	f.Add([]byte{byte(OpGet) | 0x80, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 18))
	f.Add(bytes.Repeat([]byte{0xFF}, 34))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		again := EncodeRequest(req)
		if !bytes.Equal(again, data) {
			t.Fatalf("decode(%x) = %+v, but re-encode = %x", data, req, again)
		}
	})
}

// FuzzDecodeView: arbitrary bytes must never panic the view decoder, and
// any body that decodes must survive a canonical re-encode/decode cycle
// unchanged (JSON is not byte-canonical, so the invariant is semantic, not
// byte-identity as for the binary bodies).
func FuzzDecodeView(f *testing.F) {
	f.Add(EncodeView(View{}))
	f.Add(EncodeView(View{Epoch: 1, Nodes: []NodeAddr{{ID: "a", Addr: "h:1"}}}))
	f.Add(EncodeView(View{Epoch: 9, Nodes: []NodeAddr{{ID: "a", Addr: "h:1"}, {ID: "b", Addr: "h:2"}}}))
	f.Add([]byte(`{"epoch":0,"nodes":[{"id":"a","addr":"h:1"}]}`))
	f.Add([]byte("{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := DecodeView(data)
		if err != nil {
			return
		}
		again, err := DecodeView(EncodeView(v))
		if err != nil {
			t.Fatalf("canonical re-encode of %+v failed to decode: %v", v, err)
		}
		if !reflect.DeepEqual(again, v) {
			t.Fatalf("view not a fixed point: %+v vs %+v", v, again)
		}
	})
}

// FuzzDecodeMoved: same contract as FuzzDecodeView for the MOVED redirect
// body.
func FuzzDecodeMoved(f *testing.F) {
	f.Add(EncodeMoved(Moved{Owner: "a", View: View{Epoch: 1, Nodes: []NodeAddr{{ID: "a", Addr: "h:1"}}}}))
	f.Add([]byte(`{"owner":"ghost","view":{"epoch":1,"nodes":[{"id":"a","addr":"h:1"}]}}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMoved(data)
		if err != nil {
			return
		}
		if _, ok := m.View.Node(m.Owner); !ok {
			t.Fatalf("decoder accepted owner %q outside the view", m.Owner)
		}
		again, err := DecodeMoved(EncodeMoved(m))
		if err != nil {
			t.Fatalf("canonical re-encode of %+v failed to decode: %v", m, err)
		}
		if !reflect.DeepEqual(again, m) {
			t.Fatalf("moved not a fixed point: %+v vs %+v", m, again)
		}
	})
}

// FuzzDecodeRangeEntries: arbitrary bytes must never panic the range-block
// decoder or make it allocate past MaxRangeEntries; a decoded block must
// re-encode byte-identically.
func FuzzDecodeRangeEntries(f *testing.F) {
	f.Add(AppendRangeEntries(nil, nil))
	f.Add(AppendRangeEntries(nil, []RangeEntry{{Key: 1, Fill: 0xAA}, {Key: -7, Fill: 0}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeRangeEntries(data)
		if err != nil {
			return
		}
		if len(entries) > MaxRangeEntries {
			t.Fatalf("decoder returned %d entries past the %d cap", len(entries), MaxRangeEntries)
		}
		if again := AppendRangeEntries(nil, entries); !bytes.Equal(again, data) {
			t.Fatalf("decode(%x) re-encoded as %x", data, again)
		}
	})
}

// FuzzReadFrame: an arbitrary byte stream must never panic the reader or
// allocate past the max-frame guard, and whatever reads back must carry
// the advertised length.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteFrame(&seed, []byte("hello"))
	f.Add(seed.Bytes(), uint32(64))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}, uint32(16))
	f.Add([]byte{0, 0, 0, 0}, uint32(0))
	f.Add([]byte{0, 0, 0, 2, 0xAA}, uint32(1024))
	f.Fuzz(func(t *testing.T, data []byte, max uint32) {
		if max > 1<<20 {
			max %= 1 << 20 // keep worst-case allocation bounded in the harness
		}
		payload, err := ReadFrame(bytes.NewReader(data), max)
		if err != nil {
			return
		}
		if uint32(len(payload)) > max {
			t.Fatalf("reader returned %d bytes past the %d-byte guard", len(payload), max)
		}
		if len(data) < 4 {
			t.Fatal("successful read from a short stream")
		}
		if want := binary.BigEndian.Uint32(data[:4]); uint32(len(payload)) != want {
			t.Fatalf("payload %d bytes, frame advertised %d", len(payload), want)
		}
		// A read frame re-frames to the same bytes it consumed.
		var out bytes.Buffer
		if err := WriteFrame(&out, payload); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:4+len(payload)]) {
			t.Fatal("frame did not round-trip")
		}
	})
}
