package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"

	"repro/internal/obs"
	"repro/internal/server/wire"
)

// oldServer mimics a pre-tracing server: it decodes no trace extension, so
// a flagged op byte looks like an unknown op — it answers StatusBadRequest
// and closes the connection, exactly like the real server's desync
// handling. Untraced requests get a canned OK.
func oldServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					payload, err := wire.ReadFrame(br, wire.MaxFrameDefault)
					if err != nil {
						return
					}
					if len(payload) > 0 && payload[0]&0x80 != 0 {
						_ = wire.WriteFrame(c, wire.AppendResponse(nil,
							wire.Response{Status: wire.StatusBadRequest, Body: []byte("unknown op 129")}))
						return // old servers close after a bad request
					}
					if _, err := wire.DecodeRequest(payload); err != nil {
						_ = wire.WriteFrame(c, wire.AppendResponse(nil,
							wire.Response{Status: wire.StatusBadRequest, Body: []byte(err.Error())}))
						return
					}
					_ = wire.WriteFrame(c, wire.AppendResponse(nil,
						wire.Response{Status: wire.StatusOK, Body: []byte("record")}))
				}
			}(c)
		}
	}()
	return ln
}

// A traced request against an old server must come back as
// ErrTraceDowngrade (not a generic bad-request), flip the client to
// untraced, and a downgraded connection must then work with the same
// traced context on it.
func TestTraceDowngradeAgainstOldServer(t *testing.T) {
	ln := oldServer(t)
	defer ln.Close()

	ctx := obs.ContextWithTrace(context.Background(),
		obs.TraceContext{TraceID: 7, SpanID: 8, Sampled: true})

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(ctx, 1); !errors.Is(err, ErrTraceDowngrade) {
		t.Fatalf("traced GET err = %v, want ErrTraceDowngrade", err)
	}
	if errors.Is(err, ErrBadRequest) {
		t.Fatal("downgrade must not read as a caller mistake")
	}
	if !c.TraceDisabled() {
		t.Fatal("client did not record the downgrade")
	}

	// The old server closed the connection; a fresh downgraded client
	// carries the same sampled context without tripping it.
	c2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.DisableTrace()
	body, err := c2.Get(ctx, 1)
	if err != nil {
		t.Fatalf("downgraded GET: %v", err)
	}
	if string(body) != "record" {
		t.Fatalf("downgraded GET body = %q", body)
	}
}

// An untraced context must produce byte-old frames: the old server accepts
// them without any downgrade dance.
func TestUntracedContextAgainstOldServer(t *testing.T) {
	ln := oldServer(t)
	defer ln.Close()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Get(context.Background(), 1); err != nil {
		t.Fatalf("untraced GET: %v", err)
	}
	if c.TraceDisabled() {
		t.Fatal("no rejection happened, client must not be downgraded")
	}
}
