package client

import (
	"bufio"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/server/wire"
)

// Every wire status must map onto exactly one sentinel, because the
// cluster retry policy branches on that mapping: BUSY/UNAVAILABLE back
// off the node, MOVED patches the ring, transport failures poison the
// connection, and the rest are terminal.
func TestErrorSentinelMapping(t *testing.T) {
	sentinels := []error{
		ErrBusy, ErrUnavailable, ErrNotFound, ErrShutdown,
		ErrBadRequest, ErrRemote, ErrMoved, context.DeadlineExceeded,
	}
	cases := []struct {
		status wire.Status
		want   error
	}{
		{wire.StatusBusy, ErrBusy},
		{wire.StatusUnavailable, ErrUnavailable},
		{wire.StatusNotFound, ErrNotFound},
		{wire.StatusShutdown, ErrShutdown},
		{wire.StatusBadRequest, ErrBadRequest},
		{wire.StatusInternal, ErrRemote},
		{wire.StatusMoved, ErrMoved},
		{wire.StatusDeadline, context.DeadlineExceeded},
	}
	for _, tc := range cases {
		err := error(&Error{Status: tc.status, Msg: "x"})
		for _, s := range sentinels {
			if got := errors.Is(err, s); got != (s == tc.want) {
				t.Errorf("status %v: errors.Is(err, %v) = %v", tc.status, s, got)
			}
		}
		// A server refusal is never a transport failure.
		if errors.Is(err, ErrTransport) {
			t.Errorf("status %v matched ErrTransport", tc.status)
		}
	}
}

func TestMovedViewDecoding(t *testing.T) {
	v := wire.View{Epoch: 3, Nodes: []wire.NodeAddr{{ID: "a", Addr: "h:1"}, {ID: "b", Addr: "h:2"}}}
	body := wire.EncodeMoved(wire.Moved{Owner: "b", View: v})
	e := &Error{Status: wire.StatusMoved, Msg: string(body), Body: body}
	m, ok := e.MovedView()
	if !ok {
		t.Fatal("MovedView rejected a well-formed redirect")
	}
	if m.Owner != "b" || m.View.Epoch != 3 || len(m.View.Nodes) != 2 {
		t.Errorf("decoded %+v", m)
	}
	if _, ok := (&Error{Status: wire.StatusBusy, Body: body}).MovedView(); ok {
		t.Error("MovedView decoded a non-MOVED status")
	}
	if _, ok := (&Error{Status: wire.StatusMoved, Body: []byte("{")}).MovedView(); ok {
		t.Error("MovedView decoded a malformed body")
	}
}

// A dial failure is a transport error carrying the dial stage.
func TestDialFailureIsTransport(t *testing.T) {
	// Reserve a port, then close the listener so nothing answers.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	_, err = DialOptions(addr, Options{DialTimeout: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to a closed port succeeded")
	}
	if !errors.Is(err, ErrTransport) {
		t.Errorf("dial failure = %v; want ErrTransport match", err)
	}
	var te *TransportError
	if !errors.As(err, &te) || te.Stage == "" {
		t.Errorf("dial failure lacks a staged TransportError: %v", err)
	}
}

// A connection that dies mid-exchange poisons the client: the failing
// call and every later call match ErrTransport, never a server sentinel.
func TestBrokenConnPoisonsClient(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Close() // accept, then hang up before any reply
	}()
	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	<-done
	_, err = cl.Get(context.Background(), 1)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("get on hung-up conn = %v; want ErrTransport", err)
	}
	if errors.Is(err, ErrBusy) || errors.Is(err, ErrNotFound) {
		t.Errorf("transport failure also matched a server sentinel: %v", err)
	}
	// Poisoned: the next call fails fast with the same transport error.
	if _, err2 := cl.Get(context.Background(), 2); !errors.Is(err2, ErrTransport) {
		t.Errorf("poisoned client follow-up = %v; want ErrTransport", err2)
	}
}

// A typed refusal delivered over a healthy connection must NOT poison
// it: after a BUSY reply, the same connection completes the next call.
func TestTypedRefusalKeepsConnHealthy(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br, bw := bufio.NewReader(conn), bufio.NewWriter(conn)
		replies := []wire.Response{
			{Status: wire.StatusBusy, Body: []byte("load shed")},
			{Status: wire.StatusOK, Body: []byte("record!")},
		}
		for _, resp := range replies {
			if _, err := wire.ReadFrame(br, wire.MaxFrameDefault); err != nil {
				return
			}
			if err := wire.WriteFrame(bw, wire.EncodeResponse(resp)); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}()
	cl, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	_, err = cl.Get(ctx, 1)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("first get = %v; want ErrBusy", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatal("BUSY refusal matched ErrTransport")
	}
	body, err := cl.Get(ctx, 1)
	if err != nil {
		t.Fatalf("get after BUSY on same conn: %v", err)
	}
	if string(body) != "record!" {
		t.Errorf("body = %q", body)
	}
}
