// Package client is the Go client for the network page service
// (internal/server): one TCP connection, one outstanding request at a
// time, synchronous call per operation. Server-side refusals come back as
// typed errors (ErrBusy, ErrUnavailable, ...) so callers — the load
// generator above all — can tell load shedding from breaker blackouts from
// real failures with errors.Is.
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/server/wire"
)

// Typed mirrors of the wire statuses. A non-OK reply is returned as an
// *Error whose Is method matches the corresponding sentinel; StatusDeadline
// additionally matches context.DeadlineExceeded, so the caller's usual
// deadline handling just works.
var (
	ErrBusy        = errors.New("client: server busy (load shed)")
	ErrUnavailable = errors.New("client: disk unavailable (server circuit breaker open)")
	ErrNotFound    = errors.New("client: customer not found")
	ErrShutdown    = errors.New("client: server shutting down")
	ErrBadRequest  = errors.New("client: server rejected request as malformed")
	ErrRemote      = errors.New("client: server internal error")
)

// Error is a non-OK reply from the server.
type Error struct {
	Status wire.Status
	Msg    string
}

// Error renders the status and the server's message.
func (e *Error) Error() string {
	return fmt.Sprintf("client: server replied %s: %s", e.Status, e.Msg)
}

// Is maps the status onto the package sentinels (and StatusDeadline onto
// context.DeadlineExceeded).
func (e *Error) Is(target error) bool {
	switch e.Status {
	case wire.StatusBusy:
		return target == ErrBusy
	case wire.StatusUnavailable:
		return target == ErrUnavailable
	case wire.StatusDeadline:
		return target == context.DeadlineExceeded
	case wire.StatusNotFound:
		return target == ErrNotFound
	case wire.StatusShutdown:
		return target == ErrShutdown
	case wire.StatusBadRequest:
		return target == ErrBadRequest
	case wire.StatusInternal:
		return target == ErrRemote
	}
	return false
}

// writeSlack is how long past the request's own deadline the client keeps
// the connection readable: the server answers an expired budget with a
// prompt StatusDeadline reply, and cutting the read at exactly the context
// deadline would turn that reply into a spurious transport error.
const writeSlack = 2 * time.Second

// Options tunes a client.
type Options struct {
	// DialTimeout bounds connection establishment. Zero selects 5s.
	DialTimeout time.Duration
	// MaxFrame guards response frames. Zero selects wire.MaxFrameDefault.
	MaxFrame uint32
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = wire.MaxFrameDefault
	}
	return o
}

// Client is one connection to the page service. Methods are safe for
// concurrent use but serialise on the connection; open one client per
// in-flight request for parallel load.
type Client struct {
	opts Options

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// dead poisons the client after a transport error: the stream may be
	// desynchronised, so every later call fails fast with the first error.
	dead error
}

// Dial connects with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to the service at addr.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{
		opts: opts,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = errors.New("client: closed")
	}
	return c.conn.Close()
}

// do performs one request/response exchange.
func (c *Client) do(ctx context.Context, req wire.Request) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return wire.Response{}, c.dead
	}
	if err := ctx.Err(); err != nil {
		return wire.Response{}, err
	}
	if d, ok := ctx.Deadline(); ok {
		req.Timeout = time.Until(d)
		if req.Timeout <= 0 {
			return wire.Response{}, context.DeadlineExceeded
		}
		_ = c.conn.SetDeadline(d.Add(writeSlack))
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(c.bw, wire.EncodeRequest(req)); err != nil {
		return wire.Response{}, c.poison("write", err)
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Response{}, c.poison("write", err)
	}
	payload, err := wire.ReadFrame(c.br, c.opts.MaxFrame)
	if err != nil {
		return wire.Response{}, c.poison("read", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return wire.Response{}, c.poison("decode", err)
	}
	if resp.Status != wire.StatusOK {
		return resp, &Error{Status: resp.Status, Msg: string(resp.Body)}
	}
	return resp, nil
}

// poison records a transport failure and fails the client permanently;
// callers should reconnect.
func (c *Client) poison(stage string, err error) error {
	err = fmt.Errorf("client: %s: %w", stage, err)
	c.dead = err
	_ = c.conn.Close()
	return err
}

// Get fetches customer custID's record.
func (c *Client) Get(ctx context.Context, custID int64) ([]byte, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpGet, CustID: custID})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Update overwrites customer custID's filler bytes with fill.
func (c *Client) Update(ctx context.Context, custID int64, fill byte) error {
	_, err := c.do(ctx, wire.Request{Op: wire.OpUpdate, CustID: custID, Fill: fill})
	return err
}

// Scan runs a full sequential scan and returns the record count.
func (c *Client) Scan(ctx context.Context) (int, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpScan})
	if err != nil {
		return 0, err
	}
	if len(resp.Body) != 8 {
		return 0, c.failf("scan reply body %d bytes, want 8", len(resp.Body))
	}
	return int(binary.BigEndian.Uint64(resp.Body)), nil
}

// Stats fetches the server and database counter snapshot.
func (c *Client) Stats(ctx context.Context) (wire.StatsReply, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.StatsReply{}, err
	}
	var reply wire.StatsReply
	if err := json.Unmarshal(resp.Body, &reply); err != nil {
		return wire.StatsReply{}, c.failf("stats reply: %v", err)
	}
	return reply, nil
}

// Flush asks the server to write every dirty page back to disk.
func (c *Client) Flush(ctx context.Context) error {
	_, err := c.do(ctx, wire.Request{Op: wire.OpFlush})
	return err
}

// failf reports a malformed OK reply (a server bug, not a transport
// failure) without poisoning the connection.
func (c *Client) failf(format string, args ...any) error {
	return fmt.Errorf("client: "+format, args...)
}
