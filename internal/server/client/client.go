// Package client is the Go client for the network page service
// (internal/server): one TCP connection, one outstanding request at a
// time, synchronous call per operation. Server-side refusals come back as
// typed errors (ErrBusy, ErrUnavailable, ...) so callers — the load
// generator above all — can tell load shedding from breaker blackouts from
// real failures with errors.Is.
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server/wire"
)

// Typed mirrors of the wire statuses. A non-OK reply is returned as an
// *Error whose Is method matches the corresponding sentinel; StatusDeadline
// additionally matches context.DeadlineExceeded, so the caller's usual
// deadline handling just works.
//
// The sentinels split along the axis a retry policy branches on:
//
//   - ErrBusy / ErrUnavailable: the server refused work but the
//     connection is healthy and the reply was cheap — back off and retry
//     (in a cluster: back off that node, not the ring).
//   - ErrTransport: the connection itself failed and is poisoned — the
//     stream may be desynchronised, so discard the client and redial.
//   - ErrMoved: this node does not own the key; the *Error's MovedView
//     carries who does.
//   - Everything else (not found, bad request, internal): the request is
//     the problem, and retrying anywhere is pointless.
var (
	ErrBusy        = errors.New("client: server busy (load shed)")
	ErrUnavailable = errors.New("client: disk unavailable (server circuit breaker open)")
	ErrNotFound    = errors.New("client: customer not found")
	ErrShutdown    = errors.New("client: server shutting down")
	ErrBadRequest  = errors.New("client: server rejected request as malformed")
	ErrRemote      = errors.New("client: server internal error")
	ErrMoved       = errors.New("client: key owned by another node")
	// ErrTransport matches any dial, write, read, or response-framing
	// failure — the cases where the connection is (or is being) poisoned,
	// as opposed to a typed refusal delivered over a healthy connection.
	ErrTransport = errors.New("client: transport failure")
	// ErrTraceDowngrade reports that a traced request drew StatusBadRequest
	// — the signature of an old server that does not know the trace-context
	// wire extension (it sees the flagged op byte as an unknown op). The
	// client stops attaching trace context; and because an old server also
	// closes the connection after a bad request, the caller should redial
	// and retry rather than reuse this connection. The heuristic can
	// misfire on a genuinely malformed traced request: the untraced retry
	// then surfaces the real BadRequest, at the cost of one round trip.
	ErrTraceDowngrade = errors.New("client: server rejected trace extension (downgrading)")
)

// TransportError is a connection-level failure: dialing, writing the
// request, or reading/decoding the reply frame. It matches ErrTransport
// with errors.Is and unwraps to the underlying cause.
type TransportError struct {
	// Stage names where the exchange broke: "dial", "write", "read",
	// "decode".
	Stage string
	Err   error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("client: %s: %v", e.Stage, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// Is matches the ErrTransport sentinel.
func (e *TransportError) Is(target error) bool { return target == ErrTransport }

// Error is a non-OK reply from the server.
type Error struct {
	Status wire.Status
	Msg    string
	// Body is the raw reply body; for StatusMoved it is the JSON redirect
	// MovedView decodes.
	Body []byte
}

// Error renders the status and the server's message.
func (e *Error) Error() string {
	return fmt.Sprintf("client: server replied %s: %s", e.Status, e.Msg)
}

// Is maps the status onto the package sentinels (and StatusDeadline onto
// context.DeadlineExceeded).
func (e *Error) Is(target error) bool {
	switch e.Status {
	case wire.StatusBusy:
		return target == ErrBusy
	case wire.StatusUnavailable:
		return target == ErrUnavailable
	case wire.StatusDeadline:
		return target == context.DeadlineExceeded
	case wire.StatusNotFound:
		return target == ErrNotFound
	case wire.StatusShutdown:
		return target == ErrShutdown
	case wire.StatusBadRequest:
		return target == ErrBadRequest
	case wire.StatusInternal:
		return target == ErrRemote
	case wire.StatusMoved:
		return target == ErrMoved
	}
	return false
}

// MovedView decodes a StatusMoved reply's redirect: the owning node and
// the replier's membership view. ok is false for any other status or a
// malformed body.
func (e *Error) MovedView() (wire.Moved, bool) {
	if e.Status != wire.StatusMoved {
		return wire.Moved{}, false
	}
	m, err := wire.DecodeMoved(e.Body)
	if err != nil {
		return wire.Moved{}, false
	}
	return m, true
}

// writeSlack is how long past the request's own deadline the client keeps
// the connection readable: the server answers an expired budget with a
// prompt StatusDeadline reply, and cutting the read at exactly the context
// deadline would turn that reply into a spurious transport error.
const writeSlack = 2 * time.Second

// Options tunes a client.
type Options struct {
	// DialTimeout bounds connection establishment. Zero selects 5s.
	DialTimeout time.Duration
	// MaxFrame guards response frames. Zero selects wire.MaxFrameDefault.
	MaxFrame uint32
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxFrame == 0 {
		o.MaxFrame = wire.MaxFrameDefault
	}
	return o
}

// Client is one connection to the page service. Methods are safe for
// concurrent use but serialise on the connection; open one client per
// in-flight request for parallel load.
type Client struct {
	opts Options

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// dead poisons the client after a transport error: the stream may be
	// desynchronised, so every later call fails fast with the first error.
	dead error
	// noTrace suppresses the trace-context wire extension: set by
	// DisableTrace, or automatically when the server rejects a traced
	// request (an old peer).
	noTrace bool
}

// Dial connects with default options.
func Dial(addr string) (*Client, error) { return DialOptions(addr, Options{}) }

// DialOptions connects to the service at addr.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, &TransportError{Stage: "dial " + addr, Err: err}
	}
	return &Client{
		opts: opts,
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead == nil {
		c.dead = errors.New("client: closed")
	}
	return c.conn.Close()
}

// DisableTrace permanently stops this client from attaching trace
// context to requests — for talking to peers known not to speak the
// extension. It happens automatically on the first rejection.
func (c *Client) DisableTrace() {
	c.mu.Lock()
	c.noTrace = true
	c.mu.Unlock()
}

// TraceDisabled reports whether the client has stopped attaching trace
// context (via DisableTrace or a server rejection).
func (c *Client) TraceDisabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.noTrace
}

// do performs one request/response exchange. A sampled trace context on
// ctx rides the request's wire extension unless the client has
// downgraded.
func (c *Client) do(ctx context.Context, req wire.Request) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead != nil {
		return wire.Response{}, c.dead
	}
	if err := ctx.Err(); err != nil {
		return wire.Response{}, err
	}
	traced := false
	if tc := obs.TraceFrom(ctx); tc.TraceID != 0 && !c.noTrace {
		req.Trace = tc
		traced = true
	}
	if d, ok := ctx.Deadline(); ok {
		req.Timeout = time.Until(d)
		if req.Timeout <= 0 {
			return wire.Response{}, context.DeadlineExceeded
		}
		_ = c.conn.SetDeadline(d.Add(writeSlack))
	} else {
		_ = c.conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteFrame(c.bw, wire.EncodeRequest(req)); err != nil {
		return wire.Response{}, c.poison("write", err)
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Response{}, c.poison("write", err)
	}
	payload, err := wire.ReadFrame(c.br, c.opts.MaxFrame)
	if err != nil {
		return wire.Response{}, c.poison("read", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return wire.Response{}, c.poison("decode", err)
	}
	if resp.Status != wire.StatusOK {
		if traced && resp.Status == wire.StatusBadRequest {
			// Almost certainly an old server choking on the trace extension
			// (it reports the flagged op as unknown). Downgrade and tell the
			// caller to retry untraced on a fresh connection — the old
			// server closes this one after a bad request.
			c.noTrace = true
			return resp, fmt.Errorf("%w: %s", ErrTraceDowngrade, resp.Body)
		}
		return resp, &Error{Status: resp.Status, Msg: string(resp.Body), Body: resp.Body}
	}
	return resp, nil
}

// poison records a transport failure and fails the client permanently;
// callers should reconnect.
func (c *Client) poison(stage string, err error) error {
	terr := &TransportError{Stage: stage, Err: err}
	c.dead = terr
	_ = c.conn.Close()
	return terr
}

// Get fetches customer custID's record.
func (c *Client) Get(ctx context.Context, custID int64) ([]byte, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpGet, CustID: custID})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Update overwrites customer custID's filler bytes with fill.
func (c *Client) Update(ctx context.Context, custID int64, fill byte) error {
	_, err := c.do(ctx, wire.Request{Op: wire.OpUpdate, CustID: custID, Fill: fill})
	return err
}

// Scan runs a full sequential scan and returns the record count.
func (c *Client) Scan(ctx context.Context) (int, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpScan})
	if err != nil {
		return 0, err
	}
	if len(resp.Body) != 8 {
		return 0, c.failf("scan reply body %d bytes, want 8", len(resp.Body))
	}
	return int(binary.BigEndian.Uint64(resp.Body)), nil
}

// Stats fetches the server and database counter snapshot.
func (c *Client) Stats(ctx context.Context) (wire.StatsReply, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.StatsReply{}, err
	}
	var reply wire.StatsReply
	if err := json.Unmarshal(resp.Body, &reply); err != nil {
		return wire.StatsReply{}, c.failf("stats reply: %v", err)
	}
	return reply, nil
}

// Flush asks the server to write every dirty page back to disk.
func (c *Client) Flush(ctx context.Context) error {
	_, err := c.do(ctx, wire.Request{Op: wire.OpFlush})
	return err
}

// ViewGet fetches the server's current membership view (epoch 0 when the
// node is standalone).
func (c *Client) ViewGet(ctx context.Context) (wire.View, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpViewGet})
	if err != nil {
		return wire.View{}, err
	}
	v, err := wire.DecodeView(resp.Body)
	if err != nil {
		return wire.View{}, c.failf("view reply: %v", err)
	}
	return v, nil
}

// ViewSet proposes a membership view; the server adopts it only if its
// epoch exceeds the currently held one. The returned epoch is whatever
// the server holds afterwards — equal to v.Epoch on adoption, higher if
// the server already knew a newer view.
func (c *Client) ViewSet(ctx context.Context, v wire.View) (uint64, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpViewSet, View: wire.EncodeView(v)})
	if err != nil {
		return 0, err
	}
	if len(resp.Body) != 8 {
		return 0, c.failf("view set reply body %d bytes, want 8", len(resp.Body))
	}
	return binary.BigEndian.Uint64(resp.Body), nil
}

// RangeRead streams the server's key state for the window [lo, hi):
// every existing key with its current fill byte. The window must stay
// within wire.MaxRangeEntries keys. Admin-plane: never ownership-checked.
func (c *Client) RangeRead(ctx context.Context, lo, hi int64) ([]wire.RangeEntry, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpRangeRead, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	entries, err := wire.DecodeRangeEntries(resp.Body)
	if err != nil {
		return nil, c.failf("range read reply: %v", err)
	}
	return entries, nil
}

// RangeWrite applies a batch of key fills on the server, returning how
// many were applied. Admin-plane: never ownership-checked, which is what
// lets a rebalance copy keys into a node before clients are told it owns
// them.
func (c *Client) RangeWrite(ctx context.Context, entries []wire.RangeEntry) (uint64, error) {
	resp, err := c.do(ctx, wire.Request{Op: wire.OpRangeWrite, Entries: entries})
	if err != nil {
		return 0, err
	}
	if len(resp.Body) != 8 {
		return 0, c.failf("range write reply body %d bytes, want 8", len(resp.Body))
	}
	return binary.BigEndian.Uint64(resp.Body), nil
}

// failf reports a malformed OK reply (a server bug, not a transport
// failure) without poisoning the connection.
func (c *Client) failf(format string, args ...any) error {
	return fmt.Errorf("client: "+format, args...)
}
