package server

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

// twoNodeView is a view naming this server plus a phantom peer, so some
// keys are owned here and some are MOVED. Returns the view and one key
// of each kind.
func twoNodeView(t *testing.T, selfID string, keys int64) (wire.View, int64, int64) {
	t.Helper()
	v := wire.View{Epoch: 1, Nodes: []wire.NodeAddr{
		{ID: selfID, Addr: "127.0.0.1:1"},
		{ID: "phantom", Addr: "127.0.0.1:2"},
	}}
	ring := cluster.NewRing(v)
	mine, theirs := int64(-1), int64(-1)
	for k := int64(0); k < keys && (mine < 0 || theirs < 0); k++ {
		if ring.Owner(k) == selfID {
			if mine < 0 {
				mine = k
			}
		} else if theirs < 0 {
			theirs = k
		}
	}
	if mine < 0 || theirs < 0 {
		t.Fatalf("keyspace of %d keys did not split across 2 nodes", keys)
	}
	return v, mine, theirs
}

func TestViewGetSetRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := startServer(t, db.Config{Frames: 64}, Config{NodeID: "n0"}, 50)
	cl := dial(t, srv)
	ctx := context.Background()

	// Standalone: empty epoch-0 view.
	v, err := cl.ViewGet(ctx)
	if err != nil {
		t.Fatalf("view get: %v", err)
	}
	if v.Epoch != 0 || len(v.Nodes) != 0 {
		t.Fatalf("standalone view = %+v, want empty epoch 0", v)
	}

	// Install epoch 2; the reply echoes the adopted epoch.
	v2 := wire.View{Epoch: 2, Nodes: []wire.NodeAddr{{ID: "n0", Addr: srv.Addr().String()}}}
	epoch, err := cl.ViewSet(ctx, v2)
	if err != nil {
		t.Fatalf("view set: %v", err)
	}
	if epoch != 2 {
		t.Errorf("adopt returned epoch %d, want 2", epoch)
	}
	got, err := cl.ViewGet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 2 || len(got.Nodes) != 1 || got.Nodes[0].ID != "n0" {
		t.Errorf("held view = %+v", got)
	}

	// An older (or equal) epoch is refused: the reply carries the epoch
	// still held, and the view is unchanged.
	older := wire.View{Epoch: 1, Nodes: []wire.NodeAddr{{ID: "stale", Addr: "x:1"}}}
	epoch, err = cl.ViewSet(ctx, older)
	if err != nil {
		t.Fatalf("view set (stale): %v", err)
	}
	if epoch != 2 {
		t.Errorf("stale set returned epoch %d, want held 2", epoch)
	}
	if got, _ := cl.ViewGet(ctx); got.Epoch != 2 || got.Nodes[0].ID != "n0" {
		t.Errorf("view downgraded to %+v", got)
	}

	// Epoch 0 can never be installed over the wire.
	if _, err := cl.ViewSet(ctx, wire.View{}); !errors.Is(err, client.ErrBadRequest) {
		t.Errorf("epoch-0 view set = %v, want ErrBadRequest", err)
	}
}

func TestViewSetNeedsNodeID(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := startServer(t, db.Config{Frames: 64}, Config{}, 10)
	cl := dial(t, srv)
	v := wire.View{Epoch: 1, Nodes: []wire.NodeAddr{{ID: "n0", Addr: "x:1"}}}
	if _, err := cl.ViewSet(context.Background(), v); !errors.Is(err, client.ErrBadRequest) {
		t.Errorf("view set on id-less server = %v, want ErrBadRequest", err)
	}
}

func TestStartRequiresNodeIDWithView(t *testing.T) {
	leakcheck.Check(t)
	database, err := db.Open(db.Config{Frames: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	v := wire.View{Epoch: 1, Nodes: []wire.NodeAddr{{ID: "n0", Addr: "x:1"}}}
	srv := New(database, Config{Addr: "127.0.0.1:0", View: &v})
	if err := srv.Start(); err == nil {
		srv.Close()
		t.Fatal("start accepted a view without a NodeID")
	}
}

func TestMovedOnNonOwnedKey(t *testing.T) {
	leakcheck.Check(t)
	const customers = 200
	v, mine, theirs := twoNodeView(t, "n0", customers)
	srv, _ := startServer(t, db.Config{Frames: 64}, Config{NodeID: "n0", View: &v}, customers)
	cl := dial(t, srv)
	ctx := context.Background()

	// Owned key: served normally.
	rec, err := cl.Get(ctx, mine)
	if err != nil {
		t.Fatalf("get owned key %d: %v", mine, err)
	}
	if got := int64(binary.LittleEndian.Uint64(rec)); got != mine {
		t.Errorf("record id = %d, want %d", got, mine)
	}

	// Non-owned key: MOVED, with the redirect naming the owner and
	// carrying this node's full view.
	_, err = cl.Get(ctx, theirs)
	if !errors.Is(err, client.ErrMoved) {
		t.Fatalf("get non-owned key %d = %v, want ErrMoved", theirs, err)
	}
	var se *client.Error
	if !errors.As(err, &se) {
		t.Fatalf("moved error is %T", err)
	}
	m, ok := se.MovedView()
	if !ok {
		t.Fatal("MOVED reply body did not decode")
	}
	if m.Owner != "phantom" || m.View.Epoch != 1 || len(m.View.Nodes) != 2 {
		t.Errorf("redirect = %+v", m)
	}
	if err := cl.Update(ctx, theirs, 0xEE); !errors.Is(err, client.ErrMoved) {
		t.Errorf("update non-owned key = %v, want ErrMoved", err)
	}

	// Admin plane is never ownership-checked: scan, stats, flush, and the
	// handoff range ops all work regardless of the ring.
	if _, err := cl.Scan(ctx); err != nil {
		t.Errorf("scan: %v", err)
	}
	if _, err := cl.Stats(ctx); err != nil {
		t.Errorf("stats: %v", err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Errorf("flush: %v", err)
	}
	entries, err := cl.RangeRead(ctx, theirs, theirs+1)
	if err != nil {
		t.Fatalf("range read of non-owned key: %v", err)
	}
	if len(entries) != 1 || entries[0].Key != theirs {
		t.Errorf("range read entries = %+v", entries)
	}
}

func TestRangeReadWriteRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	const customers = 100
	srv, _ := startServer(t, db.Config{Frames: 64}, Config{NodeID: "n0"}, customers)
	cl := dial(t, srv)
	ctx := context.Background()

	// The full window returns every loaded key once, in order.
	entries, err := cl.RangeRead(ctx, 0, customers)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != customers {
		t.Fatalf("range read returned %d entries, want %d", len(entries), customers)
	}
	for i, e := range entries {
		if e.Key != int64(i) {
			t.Fatalf("entries[%d].Key = %d", i, e.Key)
		}
	}

	// A window past the population returns only existing keys.
	entries, err = cl.RangeRead(ctx, customers-5, customers+50)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Errorf("tail window returned %d entries, want 5", len(entries))
	}

	// Updates are visible to RANGE_READ and RANGE_WRITE state is visible
	// to GET: the two planes see the same store.
	if err := cl.Update(ctx, 7, 0xCD); err != nil {
		t.Fatal(err)
	}
	entries, err = cl.RangeRead(ctx, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Fill != 0xCD {
		t.Fatalf("after update, range read = %+v", entries)
	}

	batch := []wire.RangeEntry{{Key: 3, Fill: 0x11}, {Key: 4, Fill: 0x22}}
	applied, err := cl.RangeWrite(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Errorf("applied = %d, want 2", applied)
	}
	for _, e := range batch {
		rec, err := cl.Get(ctx, e.Key)
		if err != nil {
			t.Fatal(err)
		}
		if rec[8] != e.Fill {
			t.Errorf("key %d fill = %#x, want %#x", e.Key, rec[8], e.Fill)
		}
	}

	// An oversized window is refused before any disk work.
	if _, err := cl.RangeRead(ctx, 0, wire.MaxRangeEntries+1); !errors.Is(err, client.ErrBadRequest) {
		t.Errorf("oversized window = %v, want ErrBadRequest", err)
	}

	// Range ops count into the server stats.
	reply, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Server.RangeKeysOut == 0 || reply.Server.RangeKeysIn != 2 {
		t.Errorf("range counters out=%d in=%d, want out>0 in=2",
			reply.Server.RangeKeysOut, reply.Server.RangeKeysIn)
	}
}
