package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/server/client"
	"repro/internal/server/wire"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// startServer opens a database, loads customers, and serves it on a random
// loopback port, tearing everything down at cleanup.
func startServer(t *testing.T, dbCfg db.Config, srvCfg Config, customers int) (*Server, *db.DB) {
	t.Helper()
	database, err := db.Open(dbCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := database.LoadCustomers(customers); err != nil {
		database.Close()
		t.Fatal(err)
	}
	srvCfg.Addr = "127.0.0.1:0"
	srv := New(database, srvCfg)
	if err := srv.Start(); err != nil {
		database.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := database.Close(); err != nil {
			t.Errorf("db close: %v", err)
		}
	})
	return srv, database
}

func dial(t *testing.T, srv *Server) *client.Client {
	t.Helper()
	cl, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestServeBasicOps(t *testing.T) {
	leakcheck.Check(t)
	const customers = 100
	srv, _ := startServer(t, db.Config{Frames: 64}, Config{}, customers)
	cl := dial(t, srv)
	ctx := context.Background()

	// GET: the record's first 8 bytes are its little-endian CUST-ID.
	rec, err := cl.Get(ctx, 42)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got := int64(binary.LittleEndian.Uint64(rec)); got != 42 {
		t.Errorf("record id = %d, want 42", got)
	}

	// UPDATE then GET observes the fill.
	if err := cl.Update(ctx, 42, 0xAB); err != nil {
		t.Fatalf("update: %v", err)
	}
	rec, err = cl.Get(ctx, 42)
	if err != nil {
		t.Fatalf("get after update: %v", err)
	}
	if rec[8] != 0xAB || rec[len(rec)-1] != 0xAB {
		t.Errorf("update not visible: filler bytes %x, %x", rec[8], rec[len(rec)-1])
	}

	// SCAN counts every record.
	n, err := cl.Scan(ctx)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if n != customers {
		t.Errorf("scan counted %d, want %d", n, customers)
	}

	// Missing key maps to the typed not-found error.
	if _, err := cl.Get(ctx, customers+10); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("get missing: err = %v, want ErrNotFound", err)
	}

	// FLUSH succeeds and STATS reports the traffic.
	if err := cl.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Server.Requests < 6 {
		t.Errorf("server requests = %d, want >= 6", stats.Server.Requests)
	}
	if stats.Server.Statuses["ok"] == 0 || stats.Server.Statuses["not_found"] == 0 {
		t.Errorf("status counters not populated: %v", stats.Server.Statuses)
	}
	if total := stats.DB.Pool.Hits + stats.DB.Pool.Misses; total == 0 {
		t.Error("db snapshot shows no pool traffic")
	}
	if stats.DB.DataPages == 0 || stats.DB.IndexPages == 0 {
		t.Errorf("db snapshot missing page counts: %+v", stats.DB)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	// Race coverage for the full remote path: many clients interleaving
	// reads and in-place updates over a small key space, so the same heap
	// pages are concurrently read and written through the pool.
	leakcheck.Check(t)
	const (
		customers = 64
		clients   = 8
		ops       = 200
	)
	srv, _ := startServer(t, db.Config{Frames: 32}, Config{Workers: 4, QueueDepth: 64}, customers)

	var wg sync.WaitGroup
	var failures atomic.Uint64
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr().String())
			if err != nil {
				t.Errorf("client %d: dial: %v", g, err)
				failures.Add(1)
				return
			}
			defer cl.Close()
			ctx := context.Background()
			for i := 0; i < ops; i++ {
				id := int64((g*31 + i*7) % customers)
				if (g+i)%4 == 0 {
					if err := cl.Update(ctx, id, byte(g)); err != nil {
						t.Errorf("client %d: update %d: %v", g, id, err)
						failures.Add(1)
						return
					}
					continue
				}
				rec, err := cl.Get(ctx, id)
				if err != nil {
					t.Errorf("client %d: get %d: %v", g, id, err)
					failures.Add(1)
					return
				}
				if got := int64(binary.LittleEndian.Uint64(rec)); got != id {
					t.Errorf("client %d: record id = %d, want %d", g, got, id)
					failures.Add(1)
					return
				}
				// The filler must be uniform — a torn read through a
				// concurrent in-place update would show mixed bytes.
				for j := 9; j < len(rec); j++ {
					if rec[j] != rec[8] {
						t.Errorf("client %d: torn record %d: byte %d is %x, byte 8 is %x",
							g, id, j, rec[j], rec[8])
						failures.Add(1)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d client failures", failures.Load())
	}
}

func TestRequestDeadlineSurfacesAsStatus(t *testing.T) {
	leakcheck.Check(t)
	// A disk pause makes misses slow; gate it so the load phase is fast.
	// K=1 keeps eviction strictly LRU, so an early key's leaf and heap
	// pages are both long gone after the 256-customer load churns through
	// 16 frames — the lookup's descent crosses at least two cold pages.
	var slow atomic.Bool
	dbCfg := db.Config{
		Frames: 16,
		K:      1,
		DiskModel: sim.ServiceModel{Delay: func(int64) {
			if slow.Load() {
				time.Sleep(20 * time.Millisecond)
			}
		}},
	}
	srv, _ := startServer(t, dbCfg, Config{}, 256)
	cl := dial(t, srv)
	slow.Store(true)

	// The budget expires during the first cold read (the pool lets an
	// in-flight load complete); the next fetch on the path sees the dead
	// context and the server answers with the deadline status (mapped to
	// context.DeadlineExceeded) — it must not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := cl.Get(ctx, 10)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired budget: err = %v, want DeadlineExceeded", err)
	}
	var remote *client.Error
	if !errors.As(err, &remote) {
		t.Fatalf("deadline error did not come from the server: %v", err)
	}

	// The connection survives a deadline reply: the next request works.
	slow.Store(false)
	if _, err := cl.Get(context.Background(), 1); err != nil {
		t.Fatalf("get after deadline reply: %v", err)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := startServer(t, db.Config{Frames: 32}, Config{MaxFrame: 1 << 10}, 16)
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A frame header advertising 1 MiB: the server must reply BadRequest
	// and close, never allocate or read the body.
	if _, err := conn.Write([]byte{0x00, 0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn, wire.MaxFrameDefault)
	if err != nil {
		t.Fatalf("reading rejection: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != wire.StatusBadRequest {
		t.Errorf("status = %v, want bad_request", resp.Status)
	}
	// The server closes its end afterwards.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := wire.ReadFrame(conn, wire.MaxFrameDefault); err == nil {
		t.Error("connection still open after protocol violation")
	}
}

func TestGracefulDrain(t *testing.T) {
	leakcheck.Check(t)
	var slow atomic.Bool
	dbCfg := db.Config{
		Frames: 16,
		DiskModel: sim.ServiceModel{Delay: func(int64) {
			if slow.Load() {
				time.Sleep(30 * time.Millisecond)
			}
		}},
	}
	database, err := db.Open(dbCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	if err := database.LoadCustomers(256); err != nil {
		t.Fatal(err)
	}
	srv := New(database, Config{Addr: "127.0.0.1:0", DrainTimeout: 5 * time.Second})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	cl, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	slow.Store(true)

	// Launch a request that is mid-flight when Close lands; it must
	// complete and deliver its response, not be severed.
	inflight := make(chan error, 1)
	go func() {
		_, err := cl.Get(context.Background(), 200)
		inflight <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach a worker

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := <-inflight; err != nil {
		t.Errorf("in-flight request during drain: %v", err)
	}

	// After drain: no new connections.
	if _, err := client.Dial(srv.Addr().String()); err == nil {
		t.Error("dial succeeded after Close")
	}
	// And idempotent close.
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestRequestAfterDrainBeginsGetsShutdown(t *testing.T) {
	leakcheck.Check(t)
	database, err := db.Open(db.Config{Frames: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer database.Close()
	if err := database.LoadCustomers(16); err != nil {
		t.Fatal(err)
	}
	srv := New(database, Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Closing the database first: a request through the still-open server
	// maps db.ErrClosed to the shutdown status.
	cl := dial(t, srv)
	if err := database.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Get(context.Background(), 1)
	if !errors.Is(err, client.ErrShutdown) {
		t.Errorf("get on closed db: err = %v, want ErrShutdown", err)
	}
}

// TestFlushBarrier drives concurrent FLUSH and UPDATE traffic: the flush
// gate must serialise them (a flush never snapshots a page mid-update),
// and everything completes without error.
func TestFlushBarrier(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := startServer(t, db.Config{Frames: 32}, Config{Workers: 4}, 64)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			ctx := context.Background()
			for i := 0; i < 20; i++ {
				if g == 0 {
					if err := cl.Flush(ctx); err != nil {
						errs <- fmt.Errorf("flush: %w", err)
						return
					}
				} else if err := cl.Update(ctx, int64((g*13+i)%64), byte(i)); err != nil {
					errs <- fmt.Errorf("update: %w", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestErrResponseStatusMapping pins the error-to-status table: breaker
// outages are retryable unavailability, corruption and a full disk are
// permanent internal errors, and wrapping must not hide any of them.
func TestErrResponseStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want wire.Status
	}{
		{"breaker open", bufferpool.ErrDiskUnavailable, wire.StatusUnavailable},
		{"wrapped breaker", fmt.Errorf("fetch: %w", bufferpool.ErrDiskUnavailable), wire.StatusUnavailable},
		{"db closed", db.ErrClosed, wire.StatusShutdown},
		{"deadline", context.DeadlineExceeded, wire.StatusDeadline},
		{"not found", db.ErrNotFound, wire.StatusNotFound},
		{"corrupt page", &storage.ErrCorrupt{Page: 7, Kind: storage.CorruptChecksum}, wire.StatusInternal},
		{"wrapped corrupt", fmt.Errorf("lookup: %w", &storage.ErrCorrupt{Page: 7, Kind: storage.CorruptTorn}), wire.StatusInternal},
		{"no space", storage.ErrNoSpace, wire.StatusInternal},
		{"unknown", errors.New("mystery"), wire.StatusInternal},
	}
	for _, tc := range cases {
		resp := errResponse(tc.err)
		if resp.Status != tc.want {
			t.Errorf("%s: errResponse(%v) = %v, want %v", tc.name, tc.err, resp.Status, tc.want)
		}
		if len(resp.Body) == 0 {
			t.Errorf("%s: error body must carry the message", tc.name)
		}
	}
}
