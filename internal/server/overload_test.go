package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/server/client"
	"repro/internal/storage"
	"repro/internal/storage/sim"
)

// TestOverloadShedsAndBreakerSurfaces is the end-to-end overload story,
// run under -race:
//
//  1. Saturation: with 2 workers, a 2-deep admission queue, and a slowed
//     disk, a burst of concurrent requests must split into admitted ones
//     that all complete and shed ones that fail fast with StatusBusy —
//     and the BUSY replies must arrive promptly (shedding does no
//     database work), while the burst is still in flight.
//  2. Blackout: with every disk operation failing, repeated misses on one
//     page trip that stripe's circuit breaker, and the client observes
//     the typed UNAVAILABLE status end to end.
//  3. Recovery: the disk heals, the breaker re-admits traffic through its
//     half-open probes, and a full flush drains the quarantine — the
//     server keeps serving throughout.
func TestOverloadShedsAndBreakerSurfaces(t *testing.T) {
	leakcheck.Check(t)
	const (
		customers = 512
		burst     = 24
	)
	var slow atomic.Bool
	dbCfg := db.Config{
		Frames: 16,
		DiskModel: sim.ServiceModel{Delay: func(int64) {
			if slow.Load() {
				time.Sleep(50 * time.Millisecond)
			}
		}},
		DiskBreaker: bufferpool.BreakerConfig{
			Threshold: 4,
			Cooldown:  50 * time.Millisecond,
			Probes:    1,
		},
	}
	srv, database := startServer(t, dbCfg, Config{Workers: 2, QueueDepth: 2}, customers)

	// --- Phase 1: saturate the admission queue. ---
	slow.Store(true)
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, burst)
	var start sync.WaitGroup
	start.Add(1)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr().String())
			if err != nil {
				results[i] = outcome{err: err}
				return
			}
			defer cl.Close()
			start.Wait() // fire the whole burst at once
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			began := time.Now()
			// Distinct early keys: cold pages, so admitted requests hold
			// their worker for at least one slowed disk read.
			_, err = cl.Get(ctx, int64(i*2))
			results[i] = outcome{err: err, elapsed: time.Since(began)}
		}(i)
	}
	start.Done()
	wg.Wait()
	slow.Store(false)

	var ok, busy int
	for i, r := range results {
		switch {
		case r.err == nil:
			ok++
		case errors.Is(r.err, client.ErrBusy):
			busy++
			// A shed reply costs no database work; it must not have waited
			// behind the slow disk.
			if r.elapsed > 2*time.Second {
				t.Errorf("request %d: BUSY took %v, want prompt", i, r.elapsed)
			}
		default:
			t.Errorf("request %d: unexpected error %v", i, r.err)
		}
	}
	// Capacity during the burst is workers + queue = 4 slots against 24
	// simultaneous requests: both populations must be present.
	if busy == 0 {
		t.Error("saturation shed nothing: no BUSY replies")
	}
	if ok == 0 {
		t.Error("saturation completed nothing: every request was shed")
	}
	t.Logf("burst of %d: %d completed, %d shed busy", burst, ok, busy)

	// --- Phase 2: blackout trips the breaker; clients see UNAVAILABLE. ---
	// Churn the 16-frame pool with late keys first so the cold key's leaf
	// and heap pages are certainly evicted — the burst alone may not have
	// (under load, most of it is shed before touching the database).
	cl := dial(t, srv)
	for id := int64(customers - 64); id < customers; id++ {
		if _, err := cl.Get(context.Background(), id); err != nil {
			t.Fatalf("churn get %d: %v", id, err)
		}
	}
	database.SetDiskFaults(storage.NewFaultPlan(1, storage.FaultRule{}))
	coldKey := int64(3) // early key: its leaf/heap pages are long evicted
	sawUnavailable := false
	for attempt := 0; attempt < 100; attempt++ {
		_, err := cl.Get(context.Background(), coldKey)
		if err == nil {
			t.Fatal("get succeeded during total blackout")
		}
		if errors.Is(err, client.ErrUnavailable) {
			sawUnavailable = true
			break
		}
		// Until the stripe trips, failures surface as internal errors
		// (the injected fault); anything else is a bug.
		if !errors.Is(err, client.ErrRemote) {
			t.Fatalf("blackout attempt %d: unexpected error %v", attempt, err)
		}
	}
	if !sawUnavailable {
		t.Fatal("breaker never surfaced UNAVAILABLE to the client")
	}

	// --- Phase 3: heal and recover. ---
	database.SetDiskFaults(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := database.FlushAll()
		if err == nil && database.PoolQuarantined() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after heal: flush err %v, quarantined %d",
				err, database.PoolQuarantined())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The same server keeps serving after the storm. A stripe whose breaker
	// tripped on reads re-admits only through a half-open probe after its
	// cooldown, so the first gets may still see UNAVAILABLE — retry until a
	// probe lands.
	var rec []byte
	for {
		var err error
		rec, err = cl.Get(context.Background(), coldKey)
		if err == nil {
			break
		}
		if !errors.Is(err, client.ErrUnavailable) {
			t.Fatalf("get after recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-admitted reads after heal: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(rec) == 0 {
		t.Fatal("empty record after recovery")
	}
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Server.Shed == 0 {
		t.Error("server counted no shed requests")
	}
	if stats.Server.Statuses["busy"] == 0 || stats.Server.Statuses["unavailable"] == 0 {
		t.Errorf("status counters missing overload outcomes: %v", stats.Server.Statuses)
	}
	if stats.DB.Pool.BreakerTrips == 0 {
		t.Error("pool recorded no breaker trip")
	}
	if stats.DB.Pool.ReadsRejected == 0 {
		t.Error("pool recorded no breaker-rejected reads")
	}
}
