package server

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/leakcheck"
	"repro/internal/obs"
)

// scrapeMetrics parses every /metrics sample line into a map keyed `name`
// or `name{labels}`.
func scrapeMetrics(t *testing.T, srv *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, perr := strconv.ParseFloat(line[idx+1:], 64)
		if perr != nil {
			t.Fatalf("malformed value in %q: %v", line, perr)
		}
		out[line[:idx]] = v
	}
	return out
}

// TestServerObsMetrics shares one registry between the database and the
// server, drives the full remote path, and asserts the server's families
// reconcile with its own Stats() — and that the STATS wire reply carries
// the same histogram summaries an operator would scrape.
func TestServerObsMetrics(t *testing.T) {
	leakcheck.Check(t)
	reg := obs.NewRegistry()
	srv, _ := startServer(t,
		db.Config{Frames: 32, Obs: reg},
		Config{Workers: 2, Obs: reg},
		64)
	cl := dial(t, srv)
	ctx := context.Background()

	for i := int64(0); i < 40; i++ {
		if _, err := cl.Get(ctx, i%64); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if i%4 == 0 {
			if err := cl.Update(ctx, i%64, byte(i)); err != nil {
				t.Fatalf("update %d: %v", i, err)
			}
		}
	}
	if _, err := cl.Scan(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(obs.Handler(reg))
	defer hs.Close()
	vals := scrapeMetrics(t, hs)
	serverStats := srv.Stats()

	// Counter collectors read the same atomics Stats() snapshots.
	for name, want := range map[string]uint64{
		"lruk_server_conns_total":                  serverStats.Conns,
		"lruk_server_requests_total":               serverStats.Requests,
		"lruk_server_shed_total":                   serverStats.Shed,
		`lruk_server_responses_total{status="ok"}`: serverStats.Statuses["ok"],
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("/metrics missing %s", name)
			continue
		}
		if got != float64(want) {
			t.Errorf("%s = %v, Stats says %d", name, got, want)
		}
	}

	// Per-op latency: every admitted request was timed under its opcode;
	// the shed count is zero here, so counts sum to the request total.
	var timed float64
	for _, op := range []string{"get", "scan", "update", "stats", "flush"} {
		key := `lruk_server_request_seconds_count{op="` + op + `"}`
		v, ok := vals[key]
		if !ok {
			t.Errorf("/metrics missing %s", key)
			continue
		}
		if op == "get" && v < 40 {
			t.Errorf("get latency count %v, want >= 40", v)
		}
		timed += v
	}
	if timed != float64(serverStats.Requests) {
		t.Errorf("per-op latency counts sum to %v, requests = %d", timed, serverStats.Requests)
	}
	if v := vals["lruk_server_queue_wait_seconds_count"]; v != float64(serverStats.Requests) {
		t.Errorf("queue wait count %v, want %d", v, serverStats.Requests)
	}

	// The STATS reply exposes the registry's histogram summaries: same keys
	// as /metrics, and the server's own families ride along with the pool's.
	if stats.Obs == nil {
		t.Fatal("STATS reply carries no obs summaries despite a configured registry")
	}
	for _, key := range []string{
		`lruk_server_request_seconds{op="get"}`,
		"lruk_server_queue_wait_seconds",
		"lruk_pool_fetch_seconds",
	} {
		sum, ok := stats.Obs[key]
		if !ok {
			t.Errorf("STATS obs summaries missing %s", key)
			continue
		}
		if sum.Count == 0 {
			t.Errorf("STATS obs summary %s has zero count", key)
		}
		if sum.P99 < sum.P50 || sum.Max < sum.P99 {
			t.Errorf("STATS obs summary %s not monotone: %+v", key, sum)
		}
	}
}

// TestServerObsDisabled asserts the uninstrumented server neither times
// requests nor attaches summaries to STATS.
func TestServerObsDisabled(t *testing.T) {
	leakcheck.Check(t)
	srv, _ := startServer(t, db.Config{Frames: 32}, Config{}, 16)
	cl := dial(t, srv)
	if _, err := cl.Get(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	stats, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Obs != nil {
		t.Fatalf("STATS reply carries obs summaries without a registry: %d keys", len(stats.Obs))
	}
	if srv.histFor(0) != nil || srv.histFor(99) != nil {
		t.Error("histFor out-of-range op must be nil")
	}
}
