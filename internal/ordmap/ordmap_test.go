package ordmap_test

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ordmap"
	"repro/internal/stats"
)

func intLess(a, b int) bool { return a < b }

func TestEmptyMap(t *testing.T) {
	m := ordmap.New[int, string](intLess)
	if m.Len() != 0 {
		t.Fatalf("Len = %d, want 0", m.Len())
	}
	if _, ok := m.Get(1); ok {
		t.Error("Get on empty map returned ok")
	}
	if _, _, ok := m.Min(); ok {
		t.Error("Min on empty map returned ok")
	}
	if _, _, ok := m.Max(); ok {
		t.Error("Max on empty map returned ok")
	}
	if m.Delete(1) {
		t.Error("Delete on empty map returned true")
	}
}

func TestNilLessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	ordmap.New[int, int](nil)
}

func TestSetGetDelete(t *testing.T) {
	m := ordmap.New[int, string](intLess)
	m.Set(2, "two")
	m.Set(1, "one")
	m.Set(3, "three")
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	for k, want := range map[int]string{1: "one", 2: "two", 3: "three"} {
		got, ok := m.Get(k)
		if !ok || got != want {
			t.Errorf("Get(%d) = %q,%v, want %q", k, got, ok, want)
		}
	}
	m.Set(2, "TWO") // replace
	if m.Len() != 3 {
		t.Fatalf("Len after replace = %d, want 3", m.Len())
	}
	if got, _ := m.Get(2); got != "TWO" {
		t.Errorf("replaced value = %q", got)
	}
	if !m.Delete(2) {
		t.Fatal("Delete(2) = false")
	}
	if m.Contains(2) {
		t.Error("deleted key still present")
	}
	if m.Len() != 2 {
		t.Fatalf("Len after delete = %d, want 2", m.Len())
	}
}

func TestMinMaxOrdering(t *testing.T) {
	m := ordmap.New[int, int](intLess)
	for _, k := range []int{5, 3, 8, 1, 9, 7} {
		m.Set(k, k*10)
	}
	if k, v, _ := m.Min(); k != 1 || v != 10 {
		t.Errorf("Min = (%d,%d), want (1,10)", k, v)
	}
	if k, v, _ := m.Max(); k != 9 || v != 90 {
		t.Errorf("Max = (%d,%d), want (9,90)", k, v)
	}
	keys := m.Keys()
	want := []int{1, 3, 5, 7, 8, 9}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	m := ordmap.New[int, int](intLess)
	for i := 0; i < 10; i++ {
		m.Set(i, i)
	}
	var visited []int
	m.Ascend(func(k, _ int) bool {
		visited = append(visited, k)
		return k < 4
	})
	if len(visited) != 5 || visited[4] != 4 {
		t.Fatalf("visited = %v, want [0 1 2 3 4]", visited)
	}
}

func TestAscendFrom(t *testing.T) {
	m := ordmap.New[int, int](intLess)
	for _, k := range []int{10, 20, 30, 40, 50} {
		m.Set(k, k)
	}
	var got []int
	m.AscendFrom(25, func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	want := []int{30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("AscendFrom = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendFrom = %v, want %v", got, want)
		}
	}
	// From an existing key includes it.
	got = got[:0]
	m.AscendFrom(30, func(k, _ int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 3 || got[0] != 30 {
		t.Fatalf("AscendFrom(30) = %v", got)
	}
}

func TestClear(t *testing.T) {
	m := ordmap.New[int, int](intLess)
	for i := 0; i < 100; i++ {
		m.Set(i, i)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	if _, _, ok := m.Min(); ok {
		t.Error("Min after Clear returned ok")
	}
	m.Set(1, 1)
	if m.Len() != 1 {
		t.Error("map unusable after Clear")
	}
}

// TestAgainstReferenceModel drives the tree and a builtin map with the same
// random operation stream and cross-checks contents and invariants.
func TestAgainstReferenceModel(t *testing.T) {
	r := stats.NewRNG(424242)
	m := ordmap.New[int, int](intLess)
	ref := map[int]int{}
	const ops = 20000
	for i := 0; i < ops; i++ {
		k := r.Intn(500)
		switch r.Intn(3) {
		case 0, 1: // insert twice as often as delete
			m.Set(k, i)
			ref[k] = i
		case 2:
			dm := m.Delete(k)
			_, dr := ref[k]
			delete(ref, k)
			if dm != dr {
				t.Fatalf("op %d: Delete(%d) = %v, reference %v", i, k, dm, dr)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, reference %d", i, m.Len(), len(ref))
		}
		if i%500 == 0 {
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full content comparison at the end.
	var refKeys []int
	for k := range ref {
		refKeys = append(refKeys, k)
	}
	sort.Ints(refKeys)
	keys := m.Keys()
	if len(keys) != len(refKeys) {
		t.Fatalf("key count %d, reference %d", len(keys), len(refKeys))
	}
	for i, k := range refKeys {
		if keys[i] != k {
			t.Fatalf("keys[%d] = %d, want %d", i, keys[i], k)
		}
		if v, ok := m.Get(k); !ok || v != ref[k] {
			t.Fatalf("Get(%d) = %d,%v, want %d", k, v, ok, ref[k])
		}
	}
}

// TestQuickSortedKeys is a property-based check: inserting any key set
// yields exactly the sorted unique keys.
func TestQuickSortedKeys(t *testing.T) {
	f := func(ks []int16) bool {
		m := ordmap.New[int, bool](intLess)
		uniq := map[int]bool{}
		for _, k := range ks {
			m.Set(int(k), true)
			uniq[int(k)] = true
		}
		if m.Len() != len(uniq) {
			return false
		}
		keys := m.Keys()
		if !sort.IntsAreSorted(keys) {
			return false
		}
		for _, k := range keys {
			if !uniq[k] {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeleteAll inserts then deletes every key, expecting an empty,
// invariant-respecting tree at each step.
func TestQuickDeleteAll(t *testing.T) {
	f := func(ks []uint8) bool {
		m := ordmap.New[int, int](intLess)
		uniq := map[int]bool{}
		for _, k := range ks {
			m.Set(int(k), 0)
			uniq[int(k)] = true
		}
		for k := range uniq {
			if !m.Delete(k) {
				return false
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		return m.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStructKeys(t *testing.T) {
	type key struct{ a, b int }
	less := func(x, y key) bool {
		if x.a != y.a {
			return x.a < y.a
		}
		return x.b < y.b
	}
	m := ordmap.New[key, string](less)
	m.Set(key{1, 2}, "x")
	m.Set(key{1, 1}, "y")
	m.Set(key{0, 9}, "z")
	if k, v, _ := m.Min(); k != (key{0, 9}) || v != "z" {
		t.Errorf("Min = %v %q", k, v)
	}
	if !m.Delete(key{1, 1}) {
		t.Error("Delete composite key failed")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func BenchmarkSetDelete(b *testing.B) {
	m := ordmap.New[int, int](intLess)
	r := stats.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := r.Intn(1 << 16)
		m.Set(k, i)
		if i%2 == 1 {
			m.Delete(r.Intn(1 << 16))
		}
	}
}

func BenchmarkMin(b *testing.B) {
	m := ordmap.New[int, int](intLess)
	for i := 0; i < 4096; i++ {
		m.Set(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Min()
	}
}
