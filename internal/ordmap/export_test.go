package ordmap

// CheckInvariants exposes the red-black invariant checker to tests.
func (m *Map[K, V]) CheckInvariants() error {
	_, err := m.checkInvariants()
	return err
}
