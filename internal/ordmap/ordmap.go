// Package ordmap implements an ordered map as a left-leaning red-black tree
// (Sedgewick 2008, 2-3 variant).
//
// The LRU-K policy keeps its resident pages in an ordered map keyed by
// (HIST(p,K), HIST(p,1), page id); the tree minimum is the eviction
// candidate with the maximal Backward K-distance. The paper notes that
// "finding the page with the maximum Backward K-distance would actually be
// based on a search tree" — this package is that search tree.
//
// All operations are O(log n). The map is not safe for concurrent use.
package ordmap

// Map is an ordered map from K to V with ordering given by a user-supplied
// less function. Create one with New.
type Map[K, V any] struct {
	less func(a, b K) bool
	root *node[K, V]
	size int
	// free is a bounded chain (linked through .right) of recycled nodes.
	// The LRU-K victim index re-keys an entry on every uncorrelated
	// reference — a delete immediately followed by an insert — so reusing
	// the deleted node keeps the steady state allocation-free.
	free  *node[K, V]
	freeN int
}

// maxFree bounds the recycled-node chain so a burst of deletes cannot pin
// its peak memory forever.
const maxFree = 256

type node[K, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	red         bool
}

// New returns an empty map ordered by less, which must define a strict weak
// ordering over keys. Keys comparing neither less nor greater are equal.
func New[K, V any](less func(a, b K) bool) *Map[K, V] {
	if less == nil {
		panic("ordmap: nil less function")
	}
	return &Map[K, V]{less: less}
}

// Len returns the number of entries.
func (m *Map[K, V]) Len() int { return m.size }

// Get returns the value stored under key.
func (m *Map[K, V]) Get(key K) (V, bool) {
	n := m.root
	for n != nil {
		switch {
		case m.less(key, n.key):
			n = n.left
		case m.less(n.key, key):
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (m *Map[K, V]) Contains(key K) bool {
	_, ok := m.Get(key)
	return ok
}

// Set inserts key with value val, replacing any existing entry for key.
func (m *Map[K, V]) Set(key K, val V) {
	m.root = m.insert(m.root, key, val)
	m.root.red = false
}

func isRed[K, V any](n *node[K, V]) bool { return n != nil && n.red }

func rotateLeft[K, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[K, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[K, V any](h *node[K, V]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp[K, V any](h *node[K, V]) *node[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

// newNode returns a recycled node when one is available, a fresh
// allocation otherwise.
func (m *Map[K, V]) newNode(key K, val V) *node[K, V] {
	if n := m.free; n != nil {
		m.free = n.right
		m.freeN--
		n.key, n.val = key, val
		n.left, n.right = nil, nil
		n.red = true
		return n
	}
	return &node[K, V]{key: key, val: val, red: true}
}

// recycle returns a detached node to the free chain, clearing its key and
// value so recycled nodes do not retain references.
func (m *Map[K, V]) recycle(n *node[K, V]) {
	if m.freeN >= maxFree {
		return
	}
	var zk K
	var zv V
	n.key, n.val = zk, zv
	n.left, n.right = nil, m.free
	m.free = n
	m.freeN++
}

func (m *Map[K, V]) insert(h *node[K, V], key K, val V) *node[K, V] {
	if h == nil {
		m.size++
		return m.newNode(key, val)
	}
	switch {
	case m.less(key, h.key):
		h.left = m.insert(h.left, key, val)
	case m.less(h.key, key):
		h.right = m.insert(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h)
}

// Delete removes key and reports whether it was present.
func (m *Map[K, V]) Delete(key K) bool {
	if !m.Contains(key) {
		return false
	}
	m.root = m.delete(m.root, key)
	if m.root != nil {
		m.root.red = false
	}
	m.size--
	return true
}

func moveRedLeft[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func minNode[K, V any](h *node[K, V]) *node[K, V] {
	for h.left != nil {
		h = h.left
	}
	return h
}

func (m *Map[K, V]) deleteMin(h *node[K, V]) *node[K, V] {
	if h.left == nil {
		m.recycle(h)
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = m.deleteMin(h.left)
	return fixUp(h)
}

func (m *Map[K, V]) delete(h *node[K, V], key K) *node[K, V] {
	if m.less(key, h.key) {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = m.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if !m.less(h.key, key) && h.right == nil {
			m.recycle(h)
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if !m.less(h.key, key) && !m.less(key, h.key) {
			mn := minNode(h.right)
			h.key, h.val = mn.key, mn.val
			h.right = m.deleteMin(h.right)
		} else {
			h.right = m.delete(h.right, key)
		}
	}
	return fixUp(h)
}

// Min returns the smallest key and its value. ok is false when the map is
// empty.
func (m *Map[K, V]) Min() (key K, val V, ok bool) {
	if m.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := minNode(m.root)
	return n.key, n.val, true
}

// Max returns the largest key and its value. ok is false when the map is
// empty.
func (m *Map[K, V]) Max() (key K, val V, ok bool) {
	if m.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := m.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ascend visits entries in ascending key order, starting with the smallest,
// until fn returns false or the entries are exhausted.
func (m *Map[K, V]) Ascend(fn func(key K, val V) bool) {
	m.ascend(m.root, fn)
}

func (m *Map[K, V]) ascend(n *node[K, V], fn func(key K, val V) bool) bool {
	if n == nil {
		return true
	}
	if !m.ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return m.ascend(n.right, fn)
}

// AscendFrom visits entries with key >= from in ascending order until fn
// returns false or the entries are exhausted.
func (m *Map[K, V]) AscendFrom(from K, fn func(key K, val V) bool) {
	m.ascendFrom(m.root, from, fn)
}

func (m *Map[K, V]) ascendFrom(n *node[K, V], from K, fn func(key K, val V) bool) bool {
	if n == nil {
		return true
	}
	if m.less(n.key, from) {
		return m.ascendFrom(n.right, from, fn)
	}
	if !m.ascendFrom(n.left, from, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return m.ascendFrom(n.right, from, fn)
}

// Keys returns all keys in ascending order.
func (m *Map[K, V]) Keys() []K {
	out := make([]K, 0, m.size)
	m.Ascend(func(k K, _ V) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Clear removes all entries.
func (m *Map[K, V]) Clear() {
	m.root = nil
	m.size = 0
}

// checkInvariants verifies the red-black invariants; tests call it through
// the export_test shim. It returns the black height.
func (m *Map[K, V]) checkInvariants() (blackHeight int, err error) {
	if isRed(m.root) {
		return 0, errRedRoot
	}
	return check(m.root, m.less)
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

const (
	errRedRoot     = invariantError("ordmap: red root")
	errRightRed    = invariantError("ordmap: right-leaning red link")
	errDoubleRed   = invariantError("ordmap: consecutive red links")
	errBlackHeight = invariantError("ordmap: unbalanced black height")
	errOrdering    = invariantError("ordmap: BST ordering violated")
)

func check[K, V any](n *node[K, V], less func(a, b K) bool) (int, error) {
	if n == nil {
		return 1, nil
	}
	if isRed(n.right) {
		return 0, errRightRed
	}
	if isRed(n) && isRed(n.left) {
		return 0, errDoubleRed
	}
	if n.left != nil && !less(n.left.key, n.key) {
		return 0, errOrdering
	}
	if n.right != nil && !less(n.key, n.right.key) {
		return 0, errOrdering
	}
	lh, err := check(n.left, less)
	if err != nil {
		return 0, err
	}
	rh, err := check(n.right, less)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackHeight
	}
	if !isRed(n) {
		lh++
	}
	return lh, nil
}
