package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
)

// This file adds the access-buffer layer of ROADMAP item 3: on the hit
// path the buffer pool should not pay a replacer lock per reference, so
// Batched wraps a concurrent replacer with fixed-size per-slot ring
// buffers that accumulate policy events and drain them in batches under a
// single lock acquisition.
//
// Correctness rests on three invariants:
//
//  1. Arrival stamping. Reference events are stamped from the target's
//     shared arrival clock at enqueue time, inside the slot lock, and the
//     drain applies each event at its own stamp (histTable.advanceTo is
//     monotone). A reference is therefore accounted at the logical time
//     it happened, not the time the buffer drained, so HIST/LAST contents
//     are independent of when drains run.
//  2. Per-table FIFO. The target maps every page to a fixed slot such
//     that all pages of one underlying LRU-K table share one slot
//     (SyncReplacer: one slot; ShardedReplacer: one slot per shard). Each
//     table therefore replays exactly the event sequence an unbatched
//     caller would have issued, in order — which is why a single-threaded
//     trace through a Batched pool reconciles bit-exactly with the Serial
//     reference pool after a final drain.
//  3. Flush on eviction search. Evict (and the stats accessors) drains
//     every slot before consulting the target, so victim choice never
//     acts on a window staler than the buffer contents at the moment of
//     the call — in particular never staler than the Correlated Reference
//     Period semantics already discard (§2.1.1 collapses back-to-back
//     references regardless).
//
// The one deliberate semantic difference from the unbatched path: a
// buffered *hit* whose page left residency before the drain is dropped,
// not applied. Unbatched RecordAccess would interpret it as an admission
// and fabricate a HIST block for a page the pool no longer holds — the
// phantom-reference class the Restore audit (PR 2) eliminated. The pool
// reports genuine admissions through RecordAdmission, a distinct event
// kind that still creates or shifts the block on drain.

// Event kinds buffered by Batched. Reference events (evAccess, evAdmit)
// carry an arrival stamp; state events replay the corresponding Replacer
// call unchanged.
const (
	evAccess   = uint8(iota) // hit on a resident page; dropped if residency ended
	evAdmit                  // reference that makes the page resident
	evEvictOn                // SetEvictable(p, true)
	evEvictOff               // SetEvictable(p, false)
	evRestore                // Restore(p)
	evRemove                 // Remove(p)
	evPin                    // fused hit + SetEvictable(false): a pin raising the count from zero
)

// batchEvent is one buffered policy event. ts is meaningful only for
// reference events.
type batchEvent struct {
	page policy.PageID
	ts   policy.Tick
	kind uint8
}

// applyEvent replays one drained event against the replacer, returning 1
// when a stale access was dropped and 0 otherwise. Reference events are
// applied at their arrival stamp; advanceTo runs the retention purge
// exactly as tick would have at that time.
//
// Within a batch, events mutate only the HIST table and the evictable set;
// the victim index is left untouched and reconciled once per page by
// batchEnd. A full profile of the hot hit path shows why: every
// fetch/unpin cycle flips the page's evictability, and eagerly mirroring
// each flip into the red-black victim index (a tree delete plus insert per
// reference) dominates the per-reference cost — more than the locks the
// buffering removes. The intermediate index states are unobservable:
// applyBatch holds the table's lock for the whole batch, and every reader
// of the index (Evict, the stats accessors) flushes all slots first, so
// only the reconciled end-of-batch index is ever consulted. Since the
// index is a pure function of the evictable set and the HIST table, the
// reconciled result is bit-identical to what eager maintenance produces.
//
// The caller (applyBatch) must invoke batchEnd after the last event, under
// the same lock acquisition.
func (r *Replacer) applyEvent(e batchEvent) int {
	switch e.kind {
	case evAccess:
		now := r.table.advanceTo(e.ts)
		if h, ok := r.table.pages[e.page]; ok && h.resident {
			r.stage(e.page, h)
			r.table.touchResident(e.page, h, now, false)
			return 0
		}
		// The page left residency between enqueue and drain; applying the
		// reference now would fabricate a phantom HIST block.
		return 1
	case evPin:
		// Fused reference + SetEvictable(false): the pool's hit path emits
		// one event for a pin that raises the count from zero instead of
		// two. Equivalent to evAccess followed by evEvictOff.
		now := r.table.advanceTo(e.ts)
		if h, ok := r.table.pages[e.page]; ok && h.resident {
			r.stage(e.page, h)
			delete(r.evictable, e.page)
			r.table.touchResident(e.page, h, now, false)
			return 0
		}
		return 1
	case evAdmit:
		now := r.table.advanceTo(e.ts)
		if h, ok := r.table.pages[e.page]; ok && h.resident {
			// Readmitted by an interleaved reference; treat as a touch,
			// exactly as unbatched RecordAccess would.
			r.stage(e.page, h)
			r.table.touchResident(e.page, h, now, false)
			return 0
		}
		// Non-resident, hence never indexed: no staging needed before the
		// block is created.
		r.table.admit(e.page, now, false)
	case evEvictOn:
		if h, ok := r.table.pages[e.page]; ok && h.resident && !r.evictable[e.page] {
			r.stage(e.page, h)
			r.evictable[e.page] = true
		}
	case evEvictOff:
		if h, ok := r.table.pages[e.page]; ok && h.resident && r.evictable[e.page] {
			r.stage(e.page, h)
			delete(r.evictable, e.page)
		}
	case evRestore:
		r.stage(e.page, nil)
		r.Restore(e.page)
	case evRemove:
		if h, ok := r.table.pages[e.page]; ok && h.resident {
			r.stage(e.page, h)
			delete(r.evictable, e.page)
			r.table.evictResident(e.page, h)
		}
	}
	return 0
}

// stage records page p's victim-index entry as it stands before the first
// batched event mutates it, so batchEnd can reconcile the index against
// the page's end-of-batch state. Idempotent within a batch. h is the
// page's HIST block when the caller already holds it, nil to look it up
// on demand (evictable ⇒ resident ⇒ the block exists, and its current key
// is the one in the index).
func (r *Replacer) stage(p policy.PageID, h *hist) {
	if _, ok := r.staged[p]; ok {
		return
	}
	var e stagedIndex
	if r.evictable[p] {
		if h == nil {
			h = r.table.pages[p]
		}
		e = stagedIndex{key: h.key(p), indexed: true}
	}
	r.staged[p] = e
}

// batchEnd reconciles the victim index with the evictable set and HIST
// table for every page staged during the batch: at most one delete and
// one insert per page, however many events touched it. Must run under the
// same lock acquisition as the batch's applyEvent calls.
func (r *Replacer) batchEnd() {
	if len(r.staged) == 0 {
		return
	}
	for p, e := range r.staged {
		h, ok := r.table.pages[p]
		should := ok && h.resident && r.evictable[p]
		if e.indexed {
			if should {
				if nk := h.key(p); nk != e.key {
					r.table.index.Delete(e.key)
					r.table.index.Set(nk, struct{}{})
				}
				continue
			}
			r.table.index.Delete(e.key)
			continue
		}
		if should {
			r.table.index.Set(h.key(p), struct{}{})
		}
	}
	clear(r.staged)
}

// BatchTarget is a concurrent replacer that can absorb batches of
// buffered events under one lock acquisition. SyncReplacer and
// ShardedReplacer implement it; the unexported methods tie the slot
// geometry to the target's internal locking so that each underlying
// LRU-K table receives its events in exact FIFO order.
type BatchTarget interface {
	ConcurrentSafe()
	Evict() (policy.PageID, bool)
	Size() int
	HistorySize() int
	SetTracer(PolicyTracer)
	PolicyStats() PolicyStats

	batchSlots() int
	batchSlot(policy.PageID) int
	arrivalClock() *atomic.Int64
	applyBatch(slot int, evs []batchEvent) (dropped int)
}

// BatchConfig tunes a Batched replacer.
type BatchConfig struct {
	// Capacity is the per-slot event capacity; a slot drains into the
	// target when it fills. Zero selects DefaultBatchCapacity.
	Capacity int
}

// DefaultBatchCapacity is the per-slot capacity used when BatchConfig
// leaves Capacity zero. Larger slots amortise the end-of-batch index
// reconcile over more references per page (the dominant per-reference
// cost; see applyEvent); staleness at decision points is unaffected, since
// every eviction search and stats read flushes all slots first.
const DefaultBatchCapacity = 256

// BatchStats is a snapshot of a Batched replacer's drain counters.
type BatchStats struct {
	Drains  uint64 // slot drains triggered by a full buffer
	Flushes uint64 // whole-buffer flushes (eviction search, stats reads)
	Events  uint64 // events handed to the target
	Dropped uint64 // stale accesses discarded at drain (page left residency)
}

// batchSlot is one ring buffer plus its lock, padded so adjacent slot
// locks do not share a cache line under contention.
type batchSlot struct {
	mu  sync.Mutex
	buf []batchEvent
	n   int
	idx int
	_   [16]byte
}

// Batched wraps a BatchTarget with per-slot access buffers: RecordAccess,
// RecordAdmission, SetEvictable, Restore and Remove append an event under
// a cheap slot lock; the target's lock is taken only when a slot fills or
// an eviction search / stats read forces a flush. It satisfies the same
// pool-facing contract as the target and is safe for concurrent use.
type Batched struct {
	target  BatchTarget
	clock   *atomic.Int64
	slots   []batchSlot
	drains  atomic.Uint64
	flushes atomic.Uint64
	events  atomic.Uint64
	dropped atomic.Uint64
	// drainObs, when set, observes each drain (event count, wall nanos
	// spent applying). Install it with SetDrainObserver before the
	// replacer sees concurrent traffic.
	drainObs func(events int, nanos int64)
}

// NewBatched returns target wrapped with access buffers of the given
// per-slot capacity.
func NewBatched(target BatchTarget, cfg BatchConfig) *Batched {
	if target == nil {
		panic("core: nil batch target")
	}
	capacity := cfg.Capacity
	if capacity == 0 {
		capacity = DefaultBatchCapacity
	}
	if capacity < 1 {
		panic(fmt.Sprintf("core: batch capacity must be positive, got %d", capacity))
	}
	b := &Batched{
		target: target,
		clock:  target.arrivalClock(),
		slots:  make([]batchSlot, target.batchSlots()),
	}
	for i := range b.slots {
		b.slots[i].buf = make([]batchEvent, capacity)
		b.slots[i].idx = i
	}
	return b
}

// ConcurrentSafe marks Batched as safe for concurrent use.
func (b *Batched) ConcurrentSafe() {}

// SetDrainObserver installs fn to observe each drain's event count and
// apply latency. Call before the replacer sees concurrent traffic.
func (b *Batched) SetDrainObserver(fn func(events int, nanos int64)) { b.drainObs = fn }

// enqueue appends an event to the page's slot, stamping reference events
// from the shared arrival clock inside the slot lock (so stamps within a
// slot are monotone), and drains the slot if it is now full.
func (b *Batched) enqueue(p policy.PageID, kind uint8) {
	s := &b.slots[b.target.batchSlot(p)]
	s.mu.Lock()
	var ts policy.Tick
	if kind == evAccess || kind == evAdmit || kind == evPin {
		ts = policy.Tick(b.clock.Add(1))
	}
	s.buf[s.n] = batchEvent{page: p, ts: ts, kind: kind}
	s.n++
	if s.n == len(s.buf) {
		b.drainLocked(s)
		b.drains.Add(1)
	}
	s.mu.Unlock()
}

// drainLocked applies the slot's buffered events to the target. The
// caller holds the slot lock; the lock order is always slot → target,
// and the target never takes slot locks, so drains cannot deadlock.
func (b *Batched) drainLocked(s *batchSlot) {
	if s.n == 0 {
		return
	}
	var start time.Time
	if b.drainObs != nil {
		start = time.Now()
	}
	dropped := b.target.applyBatch(s.idx, s.buf[:s.n])
	b.events.Add(uint64(s.n))
	if dropped > 0 {
		b.dropped.Add(uint64(dropped))
	}
	if b.drainObs != nil {
		b.drainObs(s.n, time.Since(start).Nanoseconds())
	}
	s.n = 0
}

// FlushPending drains every slot, in slot order. After it returns, every
// event enqueued before the call is applied to the target (events raced
// in concurrently may or may not be).
func (b *Batched) FlushPending() {
	for i := range b.slots {
		s := &b.slots[i]
		s.mu.Lock()
		b.drainLocked(s)
		s.mu.Unlock()
	}
	b.flushes.Add(1)
}

// RecordAccess buffers a reference to a resident page, stamped at
// arrival. If the page leaves residency before the drain the reference
// is discarded (see the phantom-reference note above).
func (b *Batched) RecordAccess(p policy.PageID) { b.enqueue(p, evAccess) }

// RecordAdmission buffers the reference that makes page p resident.
func (b *Batched) RecordAdmission(p policy.PageID) { b.enqueue(p, evAdmit) }

// RecordPin buffers a fused reference-plus-unevictable event: the pool's
// hit path calls it when a fetch raises the pin count from zero, replacing
// the RecordAccess + SetEvictable(false) pair with a single buffered event
// (identical drained semantics, half the slot traffic).
func (b *Batched) RecordPin(p policy.PageID) { b.enqueue(p, evPin) }

// SetEvictable buffers an evictability change for page p.
func (b *Batched) SetEvictable(p policy.PageID, evictable bool) {
	if evictable {
		b.enqueue(p, evEvictOn)
	} else {
		b.enqueue(p, evEvictOff)
	}
}

// Restore buffers reinstatement of page p after an abandoned eviction.
func (b *Batched) Restore(p policy.PageID) { b.enqueue(p, evRestore) }

// Remove buffers removal of page p (deallocated rather than evicted).
func (b *Batched) Remove(p policy.PageID) { b.enqueue(p, evRemove) }

// Evict flushes every buffered event, then selects and removes a victim
// from the target — so victim choice never sees a stale window.
func (b *Batched) Evict() (policy.PageID, bool) {
	b.FlushPending()
	return b.target.Evict()
}

// Size flushes pending events and returns the number of evictable pages.
func (b *Batched) Size() int {
	b.FlushPending()
	return b.target.Size()
}

// HistorySize flushes pending events and returns the number of retained
// history control blocks.
func (b *Batched) HistorySize() int {
	b.FlushPending()
	return b.target.HistorySize()
}

// SetTracer installs a PolicyTracer on the target.
func (b *Batched) SetTracer(tr PolicyTracer) { b.target.SetTracer(tr) }

// PolicyStats flushes pending events and returns the target's decision
// counts.
func (b *Batched) PolicyStats() PolicyStats {
	b.FlushPending()
	return b.target.PolicyStats()
}

// BatchStats returns a snapshot of the drain counters.
func (b *Batched) BatchStats() BatchStats {
	return BatchStats{
		Drains:  b.drains.Load(),
		Flushes: b.flushes.Load(),
		Events:  b.events.Load(),
		Dropped: b.dropped.Load(),
	}
}
