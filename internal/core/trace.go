package core

import "repro/internal/policy"

// PolicyTracer receives the LRU-K policy decisions that hit/miss counters
// cannot explain: victim selections with the Backward K-distance that
// justified them, correlated references collapsed under the Correlated
// Reference Period (§2.1.1), and history control blocks purged by the
// retention demon (§2.1.2).
//
// The interface is defined here rather than importing the observability
// package so core stays dependency-free; internal/db adapts it onto an
// obs.EvictionTrace ring. Implementations are called under the replacer's
// (or shard's) lock and must be cheap and non-blocking.
type PolicyTracer interface {
	// TraceEvict reports a victim selection at logical time clock. kdist is
	// the victim's Backward K-distance b_t(p,K); infinite means the page had
	// fewer than K uncorrelated references on record and was chosen by the
	// subsidiary LRU rule.
	TraceEvict(page policy.PageID, clock, kdist policy.Tick, infinite bool)
	// TraceCollapse reports a reference absorbed into a correlated burst:
	// only LAST(p) moved, history did not advance.
	TraceCollapse(page policy.PageID, clock policy.Tick)
	// TracePurge reports the retention demon dropping page's history block.
	TracePurge(page policy.PageID, clock policy.Tick)
}

// PolicyStats are the cumulative decision counts of one replacer (summed
// across shards for ShardedReplacer), maintained under the policy lock so
// they cost the reference path two predictable increments at most.
type PolicyStats struct {
	// Evictions counts victim selections (abandoned evictions included —
	// the decision was made even if the pool later restored the page).
	Evictions uint64 `json:"evictions"`
	// Collapses counts references absorbed by the Correlated Reference
	// Period (§2.1.1) instead of advancing history.
	Collapses uint64 `json:"collapses"`
	// Purges counts history control blocks dropped by the retention demon
	// (§2.1.2) or the history-budget reclaimer.
	Purges uint64 `json:"purges"`
	// HistoryBlocks is the current number of HIST blocks held, resident
	// plus retained.
	HistoryBlocks int `json:"history_blocks"`
	// Evictable is the current victim-index population.
	Evictable int `json:"evictable"`
}

// add accumulates o into s (used when summing shards).
func (s *PolicyStats) add(o PolicyStats) {
	s.Evictions += o.Evictions
	s.Collapses += o.Collapses
	s.Purges += o.Purges
	s.HistoryBlocks += o.HistoryBlocks
	s.Evictable += o.Evictable
}
