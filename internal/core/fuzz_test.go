package core

import (
	"testing"

	"repro/internal/policy"
)

// FuzzLRUKMatchesFigure21 feeds arbitrary reference strings plus
// configuration bytes to both the production LRU-K and the literal
// Figure 2.1 transcription and requires identical hit patterns.
func FuzzLRUKMatchesFigure21(f *testing.F) {
	f.Add([]byte{1, 2, 3, 1, 2, 3}, uint8(2), uint8(3), uint8(0))
	f.Add([]byte{0, 0, 0, 1, 1, 1}, uint8(1), uint8(1), uint8(2))
	f.Add([]byte{9, 8, 7, 9, 8, 7, 9}, uint8(3), uint8(4), uint8(5))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, capRaw, crpRaw uint8) {
		k := int(kRaw%4) + 1
		capacity := int(capRaw%8) + 1
		crp := policy.Tick(crpRaw % 6)
		c := NewLRUKWithOptions(capacity, k, Options{CorrelatedReferencePeriod: crp})
		b := newBrute(capacity, k, crp)
		for i, x := range raw {
			p := policy.PageID(x % 32)
			if got, want := c.Reference(p), b.reference(p); got != want {
				t.Fatalf("ref %d (page %d): LRUK hit=%v, Figure 2.1 hit=%v (k=%d cap=%d crp=%d)",
					i, p, got, want, k, capacity, crp)
			}
			if c.Len() > capacity {
				t.Fatalf("capacity exceeded: %d > %d", c.Len(), capacity)
			}
		}
	})
}

// FuzzCacheOperations drives the generic cache with an arbitrary operation
// stream, checking structural invariants throughout.
func FuzzCacheOperations(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 2, 10, 20})
	f.Add([]byte{255, 0, 255, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		c, err := NewIntCache[int](8, CacheOptions{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range ops {
			key := int64(op % 16)
			switch op % 3 {
			case 0:
				c.Put(key, i)
			case 1:
				if v, ok := c.Get(key); ok && v < 0 {
					t.Fatalf("corrupt value %d", v)
				}
			case 2:
				c.Delete(key)
			}
			if c.Len() > 8 {
				t.Fatalf("op %d: Len %d over capacity", i, c.Len())
			}
		}
	})
}
