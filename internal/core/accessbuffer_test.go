package core

import (
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/stats"
)

// TestBatchedStaleAccessDropped is the phantom-reference regression: a hit
// buffered for a page that leaves residency before the drain must be
// discarded, not applied — unbatched RecordAccess would misread it as an
// admission and fabricate a resident HIST block for a page the pool no
// longer holds. The eviction here deliberately bypasses the Batched
// wrapper (which would flush first) to force the stale window.
func TestBatchedStaleAccessDropped(t *testing.T) {
	s := NewSyncReplacer(2, Options{})
	b := NewBatched(s, BatchConfig{})
	const p = policy.PageID(7)

	b.RecordAdmission(p)
	b.SetEvictable(p, true)
	b.FlushPending()
	if got := s.Size(); got != 1 {
		t.Fatalf("Size after admission flush = %d, want 1", got)
	}

	// Buffer a hit, then evict the page directly on the target, as a racing
	// eviction search that drained the slots just before this enqueue would.
	b.RecordAccess(p)
	if v, ok := s.Evict(); !ok || v != p {
		t.Fatalf("Evict = (%d, %v), want (%d, true)", v, ok, p)
	}
	b.FlushPending()

	if got := b.BatchStats().Dropped; got != 1 {
		t.Errorf("Dropped = %d, want 1 (stale access not discarded)", got)
	}
	if h := s.r.table.pages[p]; h == nil {
		t.Error("history block vanished entirely")
	} else if h.resident {
		t.Error("stale buffered access re-admitted the evicted page (phantom HIST)")
	}
	if got := s.Size(); got != 0 {
		t.Errorf("Size after stale drain = %d, want 0", got)
	}
}

// TestBatchedMatchesUnbatchedRandomOps replays seeded random operation
// sequences — references, fused pins, evictability flips, evictions,
// restores, removals — through an unbatched SyncReplacer and a Batched one
// with a small capacity (so full-slot drains, not only explicit flushes,
// split the sequence at arbitrary points). Victim choices and final policy
// counters must match exactly: batching with end-of-batch index
// reconciliation is observationally equivalent to eager maintenance on any
// serialisable history, with both §2.1 periods enabled.
//
// The generator honours the pool's contract — RecordAccess and RecordPin
// are issued only for resident pages, misses go through RecordAdmission —
// because that contract is exactly where the two sides are allowed to
// differ: an unbatched reference to a departed page fabricates a HIST
// block, a batched one is deliberately dropped (the phantom regression
// above).
func TestBatchedMatchesUnbatchedRandomOps(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		opts := Options{CorrelatedReferencePeriod: 2, RetainedInformationPeriod: 30}
		plain := NewSyncReplacer(2, opts)
		batched := NewBatched(NewSyncReplacer(2, opts), BatchConfig{Capacity: 7})

		rng := stats.NewRNG(seed)
		const pages = 24
		resident := make(map[policy.PageID]bool)
		admit := func(p policy.PageID) {
			plain.RecordAdmission(p)
			batched.RecordAdmission(p)
			resident[p] = true
		}
		for op := 0; op < 20000; op++ {
			p := policy.PageID(rng.Intn(pages))
			switch rng.Intn(10) {
			case 0, 1, 2:
				if !resident[p] {
					admit(p)
					break
				}
				plain.RecordAccess(p)
				batched.RecordAccess(p)
			case 3:
				admit(p)
			case 4:
				// The pool's fused zero-crossing hit.
				if !resident[p] {
					admit(p)
					break
				}
				plain.RecordAccess(p)
				plain.SetEvictable(p, false)
				batched.RecordPin(p)
			case 5, 6:
				plain.SetEvictable(p, true)
				batched.SetEvictable(p, true)
			case 7:
				plain.SetEvictable(p, false)
				batched.SetEvictable(p, false)
			case 8:
				v1, ok1 := plain.Evict()
				v2, ok2 := batched.Evict()
				if v1 != v2 || ok1 != ok2 {
					t.Fatalf("seed %d op %d: Evict diverged: (%d,%v) vs (%d,%v)", seed, op, v1, ok1, v2, ok2)
				}
				if ok1 {
					resident[v1] = false
					if rng.Intn(2) == 0 {
						plain.Restore(v1)
						batched.Restore(v2)
						plain.SetEvictable(v1, true)
						batched.SetEvictable(v2, true)
						resident[v1] = true
					}
				}
			case 9:
				plain.Remove(p)
				batched.Remove(p)
				resident[p] = false
			}
		}
		if got, want := batched.PolicyStats(), plain.PolicyStats(); got != want {
			t.Errorf("seed %d: policy stats %+v, want unbatched %+v", seed, got, want)
		}
		if got, want := batched.HistorySize(), plain.HistorySize(); got != want {
			t.Errorf("seed %d: history size %d, want %d", seed, got, want)
		}
		// Drain the victim index on both sides: the full eviction order must
		// agree, which pins the reconciled index contents and keys exactly.
		for {
			v1, ok1 := plain.Evict()
			v2, ok2 := batched.Evict()
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("seed %d: final eviction order diverged: (%d,%v) vs (%d,%v)", seed, v1, ok1, v2, ok2)
			}
			if !ok1 {
				break
			}
		}
	}
}

// TestBatchedConcurrentDrainSafety hammers a Batched ShardedReplacer from
// many goroutines (references, flips, evictions, restores) to give the
// race detector the enqueue/drain/flush interleavings; correctness of the
// final counters is covered by the deterministic tests above.
func TestBatchedConcurrentDrainSafety(t *testing.T) {
	b := NewBatched(NewShardedReplacer(4, 2, Options{RetainedInformationPeriod: 50}), BatchConfig{Capacity: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(g + 1))
			for i := 0; i < 4000; i++ {
				p := policy.PageID(rng.Intn(64))
				switch rng.Intn(8) {
				case 0:
					b.RecordAdmission(p)
				case 1:
					b.RecordPin(p)
				case 2, 3:
					b.RecordAccess(p)
				case 4:
					b.SetEvictable(p, true)
				case 5:
					b.SetEvictable(p, false)
				case 6:
					if v, ok := b.Evict(); ok && rng.Intn(2) == 0 {
						b.Restore(v)
						b.SetEvictable(v, true)
					}
				case 7:
					b.Remove(p)
				}
			}
		}(g)
	}
	wg.Wait()
	st := b.BatchStats()
	if st.Events == 0 || st.Drains == 0 {
		t.Errorf("storm recorded no drains: %+v", st)
	}
	// The wrapper must still be coherent: a full flush and stats read
	// cannot deadlock or trip the race detector, and sizes are sane.
	if got := b.Size(); got < 0 || got > 64 {
		t.Errorf("Size after storm = %d", got)
	}
}

// TestShardedTraceDistancesShareClock is the /trace comparability
// regression: Backward K-distances reported by different shards of a
// ShardedReplacer must be measured on one shared arrival clock. With the
// old per-shard clocks, pages in different shards were timestamped at
// their shard's private reference rate, so distances in a merged eviction
// trace were incomparable — and wrong relative to Definition 2.1 over the
// global reference string.
func TestShardedTraceDistancesShareClock(t *testing.T) {
	r := NewShardedReplacer(4, 2, Options{})
	a := policy.PageID(0)
	b := policy.PageID(1)
	for p := policy.PageID(1); r.shard(b) == r.shard(a); p++ {
		b = p
	}

	touch := func(p policy.PageID) {
		r.RecordAccess(p)
		r.SetEvictable(p, true)
	}
	// Global reference string a,b,a,b: arrival ticks 1..4. At clock 4,
	// HIST(a) = [3,1] and HIST(b) = [4,2], so b_4(a,2) = 3 and
	// b_4(b,2) = 2 (Definition 2.1). Per-shard clocks would have stamped
	// both pages 1,2 and reported equal distances.
	touch(a)
	touch(b)
	touch(a)
	touch(b)

	rec := &recordingTracer{}
	r.SetTracer(rec)
	for i := 0; i < 2; i++ {
		if _, ok := r.Evict(); !ok {
			t.Fatal("expected two evictable pages")
		}
	}
	want := map[policy.PageID]policy.Tick{a: 3, b: 2}
	if len(rec.evicts) != 2 {
		t.Fatalf("traced %d evictions, want 2", len(rec.evicts))
	}
	for _, ev := range rec.evicts {
		if ev.infinite {
			t.Errorf("page %d traced an infinite distance after two references", ev.page)
			continue
		}
		if ev.kdist != want[ev.page] {
			t.Errorf("page %d traced K-distance %d, want %d on the shared clock", ev.page, ev.kdist, want[ev.page])
		}
		if ev.clock != 4 {
			t.Errorf("page %d traced at clock %d, want the global arrival clock 4", ev.page, ev.clock)
		}
	}
}
