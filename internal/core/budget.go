package core

import (
	"fmt"

	"repro/internal/policy"
)

// Resize changes the cache capacity, evicting victims immediately when
// shrinking. Growth takes effect on subsequent misses. It panics on a
// non-positive capacity.
func (c *LRUK) Resize(capacity int) {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: capacity must be positive, got %d", capacity))
	}
	c.capacity = capacity
	for c.resident > c.capacity {
		victim, ok := c.table.selectVictim(c.table.clock)
		if !ok {
			return
		}
		vh := c.table.pages[victim]
		c.table.index.Delete(vh.key(victim))
		c.table.evictResident(victim, vh)
		c.resident--
	}
}

// BudgetedLRUK addresses the open issue of the paper's Section 5: "It is
// an open issue how much space we should set aside for history control
// blocks of non-resident pages. ... a better approach would be to turn
// buffer frames into history control blocks dynamically, and vice versa."
//
// BudgetedLRUK manages a fixed total memory budget, measured in page
// frames, shared between buffer frames and retained history control
// blocks: HistPerFrame history blocks cost one frame. As retained history
// grows (a large universe of recurring pages), frames are converted to
// history storage; as the retention demon purges history, frames are
// reclaimed for pages. The policy inherits everything else from LRUK.
type BudgetedLRUK struct {
	*LRUK
	budget       int
	histPerFrame int
	minFrames    int
}

// NewBudgetedLRUK returns a budgeted LRU-K cache. budget is the total
// memory in page frames; histPerFrame says how many history control blocks
// fit in one frame's worth of memory (a HIST block is a few dozen bytes
// against a 4 KByte frame, so ~100 is realistic; must be >= 1). A
// RetainedInformationPeriod should be set in opts, otherwise history—and
// with it the frame tax—only ever grows.
func NewBudgetedLRUK(budget, k, histPerFrame int, opts Options) *BudgetedLRUK {
	if budget < 2 {
		panic(fmt.Sprintf("core: budget must be at least 2 frames, got %d", budget))
	}
	if histPerFrame < 1 {
		panic(fmt.Sprintf("core: histPerFrame must be at least 1, got %d", histPerFrame))
	}
	if opts.RetainedInformationPeriod == 0 {
		opts.RetainedInformationPeriod = DefaultRIP(budget, k)
	}
	b := &BudgetedLRUK{
		LRUK:         NewLRUKWithOptions(budget, k, opts),
		budget:       budget,
		histPerFrame: histPerFrame,
		minFrames:    1,
	}
	return b
}

// Name implements policy.Cache.
func (b *BudgetedLRUK) Name() string {
	return fmt.Sprintf("LRU-%d/budget", b.K())
}

// FrameBudget returns the configured total budget in frames.
func (b *BudgetedLRUK) FrameBudget() int { return b.budget }

// HistoryFrames returns the number of frames' worth of memory the retained
// history currently consumes (rounded up).
func (b *BudgetedLRUK) HistoryFrames() int {
	// Resident pages' history blocks ride along with their frames; only
	// blocks for non-resident pages are a separate cost.
	retained := b.HistorySize() - b.Len()
	if retained < 0 {
		retained = 0
	}
	return (retained + b.histPerFrame - 1) / b.histPerFrame
}

// EffectiveCapacity returns the frame count currently available to pages.
func (b *BudgetedLRUK) EffectiveCapacity() int {
	c := b.budget - b.HistoryFrames()
	if c < b.minFrames {
		c = b.minFrames
	}
	return c
}

// Reference implements policy.Cache, re-balancing the budget around the
// inherited LRU-K reference processing: the history share is capped at
// half the budget (oldest retained blocks are dropped beyond that, a
// budget-driven purge on top of the RIP demon), and the page capacity is
// whatever the history share leaves free.
func (b *BudgetedLRUK) Reference(p policy.PageID) bool {
	for b.HistoryFrames() > b.budget/2 {
		if !b.table.dropOldestRetained() {
			break
		}
	}
	b.LRUK.Resize(b.EffectiveCapacity())
	return b.LRUK.Reference(p)
}

// MemoryFrames reports the current split of the budget, for introspection
// and tests: frames holding pages, frames' worth of history, and slack.
func (b *BudgetedLRUK) MemoryFrames() (pages, history, free int) {
	history = b.HistoryFrames()
	pages = b.Len()
	free = b.budget - history - pages
	if free < 0 {
		free = 0
	}
	return pages, history, free
}
