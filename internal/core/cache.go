package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
)

// CacheOptions configures a generic Cache.
type CacheOptions struct {
	// K is the history depth; the paper advocates K=2 "as a generally
	// efficient policy" (§4.1). Zero selects 2.
	K int

	// Shards is the number of independently locked shards; capacity is
	// split evenly across them. Zero selects 16. Use 1 for strict global
	// LRU-K ordering at the cost of lock contention.
	Shards int

	// CorrelatedReferencePeriod and RetainedInformationPeriod are the §2.1
	// periods, measured in units of Clock. With the default logical clock
	// the unit is "references to this shard". Zero CRP disables
	// correlation handling; zero RIP selects DefaultRIP for the shard
	// capacity.
	CorrelatedReferencePeriod policy.Tick
	RetainedInformationPeriod policy.Tick

	// Clock, when non-nil, supplies timestamps (e.g. wall-clock
	// milliseconds) so the §2.1 periods can be expressed in real time, as
	// the paper's canonical "5 seconds" CRP and "200 seconds" RIP are. The
	// clock must be non-decreasing. When nil, each shard counts its own
	// references, the paper's tick time.
	Clock func() policy.Tick
}

// CacheStats reports cumulative counters for a Cache.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Rejected counts Puts refused because the shard was full and no victim
	// could be evicted; without the refusal a shard would grow past its
	// capacity whenever eviction comes up empty.
	Rejected uint64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookups.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a thread-safe, sharded, generic in-memory cache with LRU-K
// eviction: the replacement victim is the entry with the maximal Backward
// K-distance over uncorrelated accesses, so one-shot bulk traffic (the
// paper's sequential-scan problem, Example 1.2) cannot flush entries with
// proven re-reference frequency.
//
// Retained history (§2.1.2) outlives eviction: a key that keeps coming
// back is recognised as frequent even if each visit found it evicted.
type Cache[K comparable, V any] struct {
	shards []cacheShard[K, V]
	mask   uint64
	hash   func(K) uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	rejected  atomic.Uint64
}

type cacheShard[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	table    *histTable
	clock    func() policy.Tick
	refs     policy.Tick // logical clock when no external clock is given
	byKey    map[K]policy.PageID
	byID     map[policy.PageID]*cacheEntry[K, V]
	resident int
	nextID   policy.PageID
}

type cacheEntry[K comparable, V any] struct {
	key   K
	value V
	live  bool // false while only history is retained
}

// NewCache returns a Cache holding at most capacity entries, hashing keys
// with hash. Capacity is split across shards, so it must be at least the
// shard count.
//
// For string or integer keys, NewStringCache and NewIntCache supply the
// hash function.
func NewCache[K comparable, V any](capacity int, hash func(K) uint64, opts CacheOptions) (*Cache[K, V], error) {
	if hash == nil {
		return nil, fmt.Errorf("core: nil hash function")
	}
	if opts.K == 0 {
		opts.K = 2
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("core: K must be at least 1, got %d", opts.K)
	}
	if opts.Shards == 0 {
		opts.Shards = 16
	}
	if opts.Shards < 1 || opts.Shards&(opts.Shards-1) != 0 {
		return nil, fmt.Errorf("core: shard count must be a positive power of two, got %d", opts.Shards)
	}
	if capacity < opts.Shards {
		return nil, fmt.Errorf("core: capacity %d below shard count %d", capacity, opts.Shards)
	}
	shardCap := capacity / opts.Shards
	rip := opts.RetainedInformationPeriod
	if rip == 0 {
		rip = DefaultRIP(shardCap, opts.K)
	}
	c := &Cache[K, V]{
		shards: make([]cacheShard[K, V], opts.Shards),
		mask:   uint64(opts.Shards - 1),
		hash:   hash,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = shardCap
		s.table = newHistTable(opts.K, opts.CorrelatedReferencePeriod, rip)
		s.clock = opts.Clock
		s.byKey = make(map[K]policy.PageID)
		s.byID = make(map[policy.PageID]*cacheEntry[K, V])
		s.table.onPurge = func(id policy.PageID) {
			// Runs under the shard lock (all table calls are locked).
			if e, ok := s.byID[id]; ok && !e.live {
				delete(s.byID, id)
				delete(s.byKey, e.key)
			}
		}
	}
	return c, nil
}

// NewStringCache returns a Cache with string keys using an FNV-1a hash.
func NewStringCache[V any](capacity int, opts CacheOptions) (*Cache[string, V], error) {
	return NewCache[string, V](capacity, hashString, opts)
}

// NewIntCache returns a Cache with int64 keys using a SplitMix64 mix.
func NewIntCache[V any](capacity int, opts CacheOptions) (*Cache[int64, V], error) {
	return NewCache[int64, V](capacity, hashInt64, opts)
}

func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

func hashInt64(x int64) uint64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (c *Cache[K, V]) shard(key K) *cacheShard[K, V] {
	return &c.shards[c.hash(key)&c.mask]
}

// Get returns the cached value for key. A hit counts as a reference (it
// updates the key's HIST block); a miss records nothing, since LRU-K
// history tracks references to data actually brought in — the caller
// records that by calling Put.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	v, ok := s.get(key)
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Contains reports whether key is cached, without counting a reference.
func (c *Cache[K, V]) Contains(key K) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		return false
	}
	e := s.byID[id]
	return e != nil && e.live
}

// Put inserts or replaces the value for key, counting as a reference. If
// the shard is full the LRU-K victim is evicted first. It reports whether
// the value was admitted: a full shard with no evictable victim refuses
// the insert rather than exceed its capacity (CacheStats.Rejected counts
// refusals).
func (c *Cache[K, V]) Put(key K, value V) bool {
	s := c.shard(key)
	s.mu.Lock()
	evicted, admitted := s.put(key, value)
	s.mu.Unlock()
	c.evictions.Add(evicted)
	if !admitted {
		c.rejected.Add(1)
	}
	return admitted
}

// Delete removes key's value, retaining its reference history per §2.1.2
// (a deleted-then-refetched key is still recognised as frequent). It
// reports whether a live value was removed.
func (c *Cache[K, V]) Delete(key K) bool {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		return false
	}
	e := s.byID[id]
	if e == nil || !e.live {
		return false
	}
	h := s.table.pages[id]
	s.table.index.Delete(h.key(id))
	s.table.evictResident(id, h)
	e.live = false
	var zero V
	e.value = zero
	s.resident--
	return true
}

// Len returns the number of live entries across all shards.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.resident
		s.mu.Unlock()
	}
	return n
}

// ErrNoClock reports a janitor request on a cache using the logical
// (reference-count) clock, where time only advances with traffic and a
// background sweep has nothing meaningful to do.
var ErrNoClock = errors.New("core: janitor requires a wall-clock cache (CacheOptions.Clock)")

// StartJanitor launches the paper's "asynchronous demon process" (§2.1.3)
// for a wall-clock cache: a goroutine that advances every shard's clock
// each interval so retained history blocks past their Retained Information
// Period are purged even while the cache is idle. It returns a stop
// function; stopping is idempotent, and stop does not return until the
// janitor goroutine has exited — after stop returns, no janitor sweep is
// running or will run, so callers can tear down the cache's dependencies
// safely. Logical-clock caches purge inline with traffic and return
// ErrNoClock.
func (c *Cache[K, V]) StartJanitor(interval time.Duration) (stop func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: janitor interval must be positive, got %v", interval)
	}
	if c.shards[0].clock == nil {
		return nil, ErrNoClock
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(exited)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				for i := range c.shards {
					s := &c.shards[i]
					s.mu.Lock()
					s.table.advanceTo(s.clock())
					s.mu.Unlock()
				}
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}, nil
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *Cache[K, V]) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Rejected:  c.rejected.Load(),
	}
}

func (s *cacheShard[K, V]) now() policy.Tick {
	if s.clock != nil {
		return s.table.advanceTo(s.clock())
	}
	s.refs++
	return s.table.advanceTo(s.refs)
}

func (s *cacheShard[K, V]) get(key K) (V, bool) {
	var zero V
	now := s.now()
	id, ok := s.byKey[key]
	if !ok {
		return zero, false
	}
	e := s.byID[id]
	if e == nil || !e.live {
		return zero, false
	}
	h := s.table.pages[id]
	s.table.touchResident(id, h, now, true)
	return e.value, true
}

func (s *cacheShard[K, V]) put(key K, value V) (evicted uint64, admitted bool) {
	now := s.now()
	if id, ok := s.byKey[key]; ok {
		e := s.byID[id]
		if e != nil && e.live {
			// Overwrite of a live entry is a reference.
			h := s.table.pages[id]
			s.table.touchResident(id, h, now, true)
			e.value = value
			return 0, true
		}
		// Key known only through retained history: readmit under the same
		// id so the old HIST block counts toward its Backward K-distance.
		if evicted = s.makeRoom(); s.resident >= s.capacity {
			return evicted, false
		}
		s.table.admit(id, now, true)
		if e == nil {
			e = &cacheEntry[K, V]{key: key}
			s.byID[id] = e
		}
		e.value = value
		e.live = true
		s.resident++
		return evicted, true
	}
	if evicted = s.makeRoom(); s.resident >= s.capacity {
		return evicted, false
	}
	s.nextID++
	id := s.nextID
	s.byKey[key] = id
	s.byID[id] = &cacheEntry[K, V]{key: key, value: value, live: true}
	s.table.admit(id, now, true)
	s.resident++
	return evicted, true
}

// makeRoom evicts until the shard has a free slot or no victim can be
// found. An admission that proceeded past a failed eviction would push
// resident beyond capacity, unboundedly so under a persistently
// victim-less shard — the caller must re-check resident < capacity and
// refuse the insert otherwise.
func (s *cacheShard[K, V]) makeRoom() (evicted uint64) {
	for s.resident >= s.capacity {
		n := s.evictVictim()
		if n == 0 {
			break
		}
		evicted += n
	}
	return evicted
}

func (s *cacheShard[K, V]) evictVictim() uint64 {
	victim, ok := s.table.selectVictim(s.table.clock)
	if !ok {
		return 0
	}
	h := s.table.pages[victim]
	s.table.index.Delete(h.key(victim))
	s.table.evictResident(victim, h)
	e := s.byID[victim]
	e.live = false
	var zero V
	e.value = zero
	s.resident--
	return 1
}
