package core

import (
	"fmt"

	"repro/internal/policy"
)

// Options configures an LRU-K policy instance. The zero value of each field
// selects the documented default.
type Options struct {
	// CorrelatedReferencePeriod is the time-out of §2.1.1, in logical ticks
	// (reference counts): two references to the same page at most this far
	// apart are treated as one correlated burst, and pages inside the
	// period are ineligible for replacement. Zero disables correlation
	// handling, the configuration under which the paper's analysis and
	// Section 4 experiments run ("we will assume for simplicity that the
	// Correlated Reference Period is zero").
	CorrelatedReferencePeriod policy.Tick

	// RetainedInformationPeriod is the history retention horizon of §2.1.2,
	// in logical ticks: history control blocks of non-resident pages are
	// purged once their most recent reference is older than this. Zero
	// retains history indefinitely. The paper's canonical wall-clock value
	// is ~200 seconds, twice the Five Minute Rule interarrival threshold;
	// in tick time a sensible default is several multiples of the buffer
	// capacity (see DefaultRIP).
	RetainedInformationPeriod policy.Tick
}

// DefaultRIP returns a Retained Information Period suited to a cache of the
// given capacity: the paper sizes the RIP as "about twice" the maximum
// interarrival time worth buffering, and with B frames a page referenced
// less often than once per B ticks is not worth keeping, so 2·B·K is the
// tick-time analogue (scaled by K because the period must span K
// references, per the paper's "how far back we need to go to see two
// references" argument).
func DefaultRIP(capacity, k int) policy.Tick {
	return policy.Tick(2 * capacity * k)
}

// LRUK is the LRU-K page cache (Definition 2.2): on a miss with a full
// cache it evicts the resident page with the maximal Backward K-distance
// b_t(p,K), using classical LRU as the subsidiary policy among pages whose
// distance is infinite. LRU-1 is exactly the classical LRU algorithm.
//
// LRUK implements policy.Cache. It is not safe for concurrent use; see
// Cache for the concurrent variant.
type LRUK struct {
	capacity int
	k        int
	table    *histTable
	resident int
}

// NewLRUK returns an LRU-K cache with the paper's analysis configuration:
// Correlated Reference Period zero and unlimited history retention. This is
// the configuration used to reproduce the Section 4 tables.
func NewLRUK(capacity, k int) *LRUK {
	return NewLRUKWithOptions(capacity, k, Options{})
}

// NewLRUKWithOptions returns an LRU-K cache with explicit §2.1 parameters.
func NewLRUKWithOptions(capacity, k int, opts Options) *LRUK {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: capacity must be positive, got %d", capacity))
	}
	if k < 1 {
		panic(fmt.Sprintf("core: K must be at least 1, got %d", k))
	}
	return &LRUK{
		capacity: capacity,
		k:        k,
		table:    newHistTable(k, opts.CorrelatedReferencePeriod, opts.RetainedInformationPeriod),
	}
}

// Name implements policy.Cache; it reports "LRU-1", "LRU-2", ... following
// the paper's taxonomy.
func (c *LRUK) Name() string { return fmt.Sprintf("LRU-%d", c.k) }

// K returns the history depth K.
func (c *LRUK) K() int { return c.k }

// Capacity implements policy.Cache.
func (c *LRUK) Capacity() int { return c.capacity }

// Len implements policy.Cache.
func (c *LRUK) Len() int { return c.resident }

// Resident implements policy.Cache.
func (c *LRUK) Resident(p policy.PageID) bool {
	h, ok := c.table.pages[p]
	return ok && h.resident
}

// Reset implements policy.Cache.
func (c *LRUK) Reset() {
	c.table.reset()
	c.resident = 0
}

// Reference implements policy.Cache, processing one element of the
// reference string exactly as Figure 2.1 does.
func (c *LRUK) Reference(p policy.PageID) bool {
	now := c.table.tick()
	if h, ok := c.table.pages[p]; ok && h.resident {
		c.table.touchResident(p, h, now, true)
		return true
	}
	if c.resident >= c.capacity {
		victim, ok := c.table.selectVictim(now)
		if ok {
			vh := c.table.pages[victim]
			c.table.index.Delete(vh.key(victim))
			c.table.evictResident(victim, vh)
			c.resident--
		}
	}
	c.table.admit(p, now, true)
	c.resident++
	return false
}

// BackwardKDistance returns b_t(p,K) per Definition 2.1; ok is false when
// the distance is infinite (fewer than K uncorrelated references on
// record, or the history has been purged).
func (c *LRUK) BackwardKDistance(p policy.PageID) (policy.Tick, bool) {
	return c.table.backwardKDistance(p)
}

// HistorySize returns the number of history control blocks currently held
// for resident and non-resident pages together, exposing the §2.1.2
// retained-information footprint.
func (c *LRUK) HistorySize() int { return c.table.historyLen() }

// Clock returns the current logical time (number of references processed).
func (c *LRUK) Clock() policy.Tick { return c.table.clock }

// HistTimes returns a copy of HIST(p) — the times of up to K most recent
// uncorrelated references, most recent first, zeros marking empty slots —
// and LAST(p). ok is false if no history is retained for p. It exists for
// tests and for the analysis package.
func (c *LRUK) HistTimes(p policy.PageID) (times []policy.Tick, last policy.Tick, ok bool) {
	h, found := c.table.pages[p]
	if !found {
		return nil, 0, false
	}
	out := make([]policy.Tick, len(h.times))
	copy(out, h.times)
	return out, h.last, true
}
