package core

import (
	"testing"

	"repro/internal/policy"
)

// TestRestorePreservesHistory is the regression test for the phantom-
// reference bug: abandoning an eviction used to call RecordAccess, which
// advanced the clock and rewrote HIST(p,1) with a reference that never
// happened, corrupting the page's Backward K-distance. Restore must
// reinstate residency with the HIST block and the clock bit-for-bit
// unchanged.
func TestRestorePreservesHistory(t *testing.T) {
	r := NewReplacer(2, Options{})
	// Page 1: two uncorrelated references (finite Backward K-distance).
	// Page 2: one reference (infinite distance, so it sorts as victim).
	r.RecordAccess(1)
	r.SetEvictable(1, true)
	r.RecordAccess(2)
	r.SetEvictable(2, true)
	r.RecordAccess(1)

	victim, ok := r.Evict()
	if !ok || victim != 2 {
		t.Fatalf("Evict = (%d, %v), want page 2 (infinite distance)", victim, ok)
	}

	h := r.table.pages[1]
	timesBefore := append([]policy.Tick(nil), h.times...)
	lastBefore := h.last
	clockBefore := r.table.clock

	// Abandon an eviction of page 1 and restore it.
	victim, ok = r.Evict()
	if !ok || victim != 1 {
		t.Fatalf("Evict = (%d, %v), want page 1", victim, ok)
	}
	r.Restore(1)
	r.SetEvictable(1, true)

	if r.table.clock != clockBefore {
		t.Errorf("clock advanced %d -> %d across an abandoned eviction", clockBefore, r.table.clock)
	}
	h = r.table.pages[1]
	if h == nil || !h.resident {
		t.Fatal("restored page not resident")
	}
	if h.last != lastBefore {
		t.Errorf("LAST rewritten %d -> %d by Restore", lastBefore, h.last)
	}
	for i, tm := range h.times {
		if tm != timesBefore[i] {
			t.Errorf("HIST[%d] rewritten %d -> %d by Restore", i, timesBefore[i], tm)
		}
	}
	// The page must be choosable again, at its original index position.
	if victim, ok = r.Evict(); !ok || victim != 1 {
		t.Errorf("Evict after restore = (%d, %v), want page 1", victim, ok)
	}
}

// TestRestoreVictimOrderMatchesUndisturbedReplacer replays the same
// reference history through two replacers; one suffers an abandoned
// eviction mid-stream. Their subsequent victim order must be identical —
// the old RecordAccess-based restoration made the restored page look
// freshly referenced and reordered evictions.
func TestRestoreVictimOrderMatchesUndisturbedReplacer(t *testing.T) {
	build := func() *Replacer {
		r := NewReplacer(2, Options{})
		for _, p := range []policy.PageID{1, 2, 3, 1, 2, 3, 2} {
			r.RecordAccess(p)
			r.SetEvictable(p, true)
		}
		return r
	}
	disturbed, control := build(), build()
	v, ok := disturbed.Evict()
	if !ok {
		t.Fatal("nothing evictable")
	}
	disturbed.Restore(v)
	disturbed.SetEvictable(v, true)
	for i := 0; i < 3; i++ {
		dv, dok := disturbed.Evict()
		cv, cok := control.Evict()
		if dv != cv || dok != cok {
			t.Fatalf("eviction %d: disturbed (%d,%v) != control (%d,%v)", i, dv, dok, cv, cok)
		}
	}
}

// TestRestoreAfterPurge covers the fallback: with a short Retained
// Information Period the history block can be purged between Evict and
// Restore, and Restore must re-create residency rather than panic.
func TestRestoreAfterPurge(t *testing.T) {
	r := NewReplacer(2, Options{RetainedInformationPeriod: 2})
	r.RecordAccess(1)
	r.SetEvictable(1, true)
	if v, ok := r.Evict(); !ok || v != 1 {
		t.Fatalf("Evict = (%d, %v)", v, ok)
	}
	// Tick the clock past the RIP so page 1's retired block is purged.
	for p := policy.PageID(2); p < 8; p++ {
		r.RecordAccess(p)
	}
	if _, ok := r.table.pages[1]; ok {
		t.Fatal("test setup: history block survived the purge")
	}
	r.Restore(1)
	h, ok := r.table.pages[1]
	if !ok || !h.resident {
		t.Fatal("Restore after purge did not re-create residency")
	}
	r.SetEvictable(1, true)
	if r.Size() != 1 {
		t.Errorf("Size = %d after restore, want 1 (only page 1 is evictable)", r.Size())
	}
	if v, ok := r.Evict(); !ok || v != 1 {
		t.Errorf("Evict after restore-from-purge = (%d, %v), want page 1", v, ok)
	}
}

// TestRestoreDelegation exercises the concurrent wrappers' Restore
// plumbing.
func TestRestoreDelegation(t *testing.T) {
	for name, r := range map[string]interface {
		RecordAccess(policy.PageID)
		SetEvictable(policy.PageID, bool)
		Restore(policy.PageID)
		Evict() (policy.PageID, bool)
		Size() int
	}{
		"sync":    NewSyncReplacer(2, Options{}),
		"sharded": NewShardedReplacer(4, 2, Options{}),
	} {
		r.RecordAccess(9)
		r.SetEvictable(9, true)
		if v, ok := r.Evict(); !ok || v != 9 {
			t.Fatalf("%s: Evict = (%d, %v)", name, v, ok)
		}
		r.Restore(9)
		r.SetEvictable(9, true)
		if v, ok := r.Evict(); !ok || v != 9 {
			t.Errorf("%s: restored page not evictable again: (%d, %v)", name, v, ok)
		}
	}
}
