package core

import (
	"testing"

	"repro/internal/policy"
)

// recordingTracer collects every hook invocation for assertions.
type recordingTracer struct {
	evicts    []tracedEvict
	collapses []policy.PageID
	purges    []policy.PageID
}

type tracedEvict struct {
	page     policy.PageID
	clock    policy.Tick
	kdist    policy.Tick
	infinite bool
}

func (r *recordingTracer) TraceEvict(p policy.PageID, clock, kdist policy.Tick, infinite bool) {
	r.evicts = append(r.evicts, tracedEvict{p, clock, kdist, infinite})
}
func (r *recordingTracer) TraceCollapse(p policy.PageID, _ policy.Tick) {
	r.collapses = append(r.collapses, p)
}
func (r *recordingTracer) TracePurge(p policy.PageID, _ policy.Tick) {
	r.purges = append(r.purges, p)
}

func TestReplacerTracerAndStats(t *testing.T) {
	tr := &recordingTracer{}
	r := NewReplacer(2, Options{CorrelatedReferencePeriod: 1, RetainedInformationPeriod: 3})
	r.SetTracer(tr)

	r.RecordAccess(1) // t=1: admit
	r.RecordAccess(1) // t=2: within CRP of t=1 → collapse
	r.RecordAccess(2) // t=3: admit
	r.SetEvictable(1, true)
	r.SetEvictable(2, true)

	victim, ok := r.Evict()
	if !ok || victim != 1 {
		t.Fatalf("evict = (%v, %v), want (1, true)", victim, ok)
	}
	if len(tr.evicts) != 1 {
		t.Fatalf("traced %d evictions, want 1", len(tr.evicts))
	}
	// Page 1 has a single uncorrelated reference on record (K=2), so its
	// Backward K-distance is infinite.
	if ev := tr.evicts[0]; ev.page != 1 || !ev.infinite {
		t.Fatalf("evict trace = %+v, want page 1 with infinite K-distance", ev)
	}
	if len(tr.collapses) != 1 || tr.collapses[0] != 1 {
		t.Fatalf("collapse trace = %v, want [1]", tr.collapses)
	}

	// Advance the clock past page 1's Retained Information Period
	// (last=2, RIP=3 → purged once clock > 5).
	for p := policy.PageID(10); p < 14; p++ {
		r.RecordAccess(p)
	}
	if len(tr.purges) != 1 || tr.purges[0] != 1 {
		t.Fatalf("purge trace = %v, want [1]", tr.purges)
	}

	st := r.PolicyStats()
	if st.Evictions != 1 || st.Collapses != 1 || st.Purges != 1 {
		t.Fatalf("stats = %+v, want 1 eviction, 1 collapse, 1 purge", st)
	}
	if st.HistoryBlocks != len(r.table.pages) || st.Evictable != len(r.evictable) {
		t.Fatalf("stats sizes %+v disagree with table", st)
	}
}

// TestReplacerEvictTracesFiniteKDistance drives a page to K uncorrelated
// references so the traced Backward K-distance is finite and matches
// Definition 2.1 (clock - HIST(p,K)).
func TestReplacerEvictTracesFiniteKDistance(t *testing.T) {
	tr := &recordingTracer{}
	r := NewReplacer(2, Options{})
	r.SetTracer(tr)

	r.RecordAccess(7) // t=1 → HIST(7,2)=... after second ref
	r.RecordAccess(7) // t=2: CRP=0, so uncorrelated; HIST = [2, 1]
	r.RecordAccess(8) // t=3 (so 7 is not the only page)
	r.SetEvictable(7, true)

	victim, ok := r.Evict()
	if !ok || victim != 7 {
		t.Fatalf("evict = (%v, %v), want (7, true)", victim, ok)
	}
	ev := tr.evicts[0]
	if ev.infinite {
		t.Fatal("K-distance must be finite after K uncorrelated references")
	}
	// clock=3, HIST(7,2)=1 → b(7,2) = 2.
	if ev.kdist != 2 || ev.clock != 3 {
		t.Fatalf("evict trace = %+v, want kdist 2 at clock 3", ev)
	}
}

func TestShardedReplacerStatsSumShards(t *testing.T) {
	r := NewShardedReplacer(4, 2, Options{})
	for p := policy.PageID(0); p < 32; p++ {
		r.RecordAccess(p)
		r.SetEvictable(p, true)
	}
	for i := 0; i < 8; i++ {
		if _, ok := r.Evict(); !ok {
			t.Fatal("expected a victim")
		}
	}
	st := r.PolicyStats()
	if st.Evictions != 8 {
		t.Fatalf("evictions = %d, want 8", st.Evictions)
	}
	if st.Evictable != 24 {
		t.Fatalf("evictable = %d, want 24", st.Evictable)
	}
	if st.HistoryBlocks != 32 {
		t.Fatalf("history blocks = %d, want 32", st.HistoryBlocks)
	}
}
