package core

import (
	"testing"

	"repro/internal/policy"
)

// TestRetireQueueMemoryBounded is the regression test for the retention
// queue's backing-array leak: popping with retire = retire[1:] kept the
// burst-peak array pinned forever (the slice could never reuse its front,
// and with enough spare capacity never reallocated). After a large
// retirement burst fully drains, the queue must hold only a small backing
// array.
func TestRetireQueueMemoryBounded(t *testing.T) {
	const (
		rip   = 100
		burst = 1 << 16
	)
	// Fill with a RIP too long to purge anything mid-burst, then shorten it
	// for the drain phase.
	tbl := newHistTable(2, 0, policy.Tick(1<<40))
	for i := 0; i < burst; i++ {
		p := policy.PageID(i)
		h := tbl.admit(p, tbl.tick(), false)
		tbl.evictResident(p, h)
	}
	if got := tbl.retireLen(); got != burst {
		t.Fatalf("retire queue holds %d entries after burst, want %d", got, burst)
	}
	peak := cap(tbl.retire)
	tbl.rip = rip
	// Run the clock forward so the retention demon drains the whole queue.
	for i := 0; tbl.retireLen() > 0; i++ {
		tbl.tick()
		if i > burst+rip+1 {
			t.Fatal("retention demon did not drain the queue")
		}
	}
	if tbl.historyLen() != 0 {
		t.Errorf("%d history blocks survive a full drain", tbl.historyLen())
	}
	if c := cap(tbl.retire); c >= peak/4 {
		t.Errorf("drained retire queue still pins cap %d of peak %d", c, peak)
	}
}

// TestRetireQueueBoundedUnderSteadyChurn drives a long steady-state
// admit/evict churn: the backing array must stay proportional to the live
// window (bounded by the Retained Information Period), not grow with the
// total number of retirements.
func TestRetireQueueBoundedUnderSteadyChurn(t *testing.T) {
	const rip = 64
	tbl := newHistTable(1, 0, rip)
	maxCap := 0
	for i := 0; i < 1<<16; i++ {
		p := policy.PageID(i)
		h := tbl.admit(p, tbl.tick(), false)
		tbl.evictResident(p, h)
		if c := cap(tbl.retire); c > maxCap {
			maxCap = c
		}
	}
	// Live entries never exceed ~rip+1; allow compaction hysteresis room.
	if limit := 16 * (rip + retireCompactMin); maxCap > limit {
		t.Errorf("retire queue cap peaked at %d under steady churn, want <= %d", maxCap, limit)
	}
}

// TestDropOldestRetainedCompacts drains a retirement burst through the
// budgeted policy's dropOldestRetained path, which must release the
// backing array just like the demon's purge.
func TestDropOldestRetainedCompacts(t *testing.T) {
	const burst = 1 << 14
	tbl := newHistTable(2, 0, 1<<40) // RIP so large nothing purges on tick
	for i := 0; i < burst; i++ {
		p := policy.PageID(i)
		h := tbl.admit(p, tbl.tick(), false)
		tbl.evictResident(p, h)
	}
	peak := cap(tbl.retire)
	drops := 0
	for tbl.dropOldestRetained() {
		drops++
	}
	if drops != burst {
		t.Errorf("dropOldestRetained dropped %d blocks, want %d", drops, burst)
	}
	if tbl.retireLen() != 0 {
		t.Errorf("queue holds %d entries after full drain", tbl.retireLen())
	}
	if c := cap(tbl.retire); c >= peak/4 {
		t.Errorf("drained retire queue still pins cap %d of peak %d", c, peak)
	}
}

// TestRetireQueueStaleEntriesStillSkipped re-checks the lazy-validation
// protocol through the new queue plumbing: a page readmitted after
// retirement must not be purged by its stale queue entry.
func TestRetireQueueStaleEntriesStillSkipped(t *testing.T) {
	const rip = 10
	tbl := newHistTable(1, 0, rip)
	h := tbl.admit(1, tbl.tick(), false)
	tbl.evictResident(1, h)
	// Readmit before the entry expires: the queued entry goes stale.
	tbl.admit(1, tbl.tick(), false)
	for i := 0; i < 4*rip; i++ {
		tbl.tick()
	}
	if hh, ok := tbl.pages[1]; !ok || !hh.resident {
		t.Error("resident page purged through its stale retirement entry")
	}
}
