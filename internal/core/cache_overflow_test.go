package core

import (
	"fmt"
	"testing"

	"repro/internal/policy"
)

// deindex removes key's page from the shard's victim index, simulating a
// full shard in which no victim is selectable. The seed implementation
// admitted regardless and the shard grew past capacity; the fixed put must
// refuse admission instead.
func deindex(t *testing.T, c *Cache[string, int], key string) {
	t.Helper()
	s := &c.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		t.Fatalf("deindex: key %q unknown", key)
	}
	h := s.table.pages[id]
	if _, ok := s.table.index.Get(h.key(id)); !ok {
		t.Fatalf("deindex: key %q not in the victim index", key)
	}
	s.table.index.Delete(h.key(id))
}

func reindex(t *testing.T, c *Cache[string, int], key string) {
	t.Helper()
	s := &c.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.byKey[key]
	h := s.table.pages[id]
	s.table.index.Set(h.key(id), struct{}{})
}

// TestCachePutRefusedWithoutVictim is the capacity-overflow regression
// test: a full shard whose eviction comes up empty must refuse a new-key
// admission (and count it) rather than grow past capacity.
func TestCachePutRefusedWithoutVictim(t *testing.T) {
	c := newTestCache(t, 1, CacheOptions{Shards: 1})
	if !c.Put("a", 1) {
		t.Fatal("first Put refused")
	}
	deindex(t, c, "a")
	if c.Put("b", 2) {
		t.Error("Put admitted into a full, victim-less shard")
	}
	if n := c.Len(); n != 1 {
		t.Errorf("Len = %d after refused Put, want 1", n)
	}
	if got := c.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	if !c.Contains("a") || c.Contains("b") {
		t.Error("refused Put disturbed residency")
	}
	// A refused key must leave no binding behind.
	s := &c.shards[0]
	s.mu.Lock()
	_, bound := s.byKey["b"]
	s.mu.Unlock()
	if bound {
		t.Error("refused key left a binding")
	}
	// Once the victim is selectable again, admission resumes.
	reindex(t, c, "a")
	if !c.Put("b", 2) {
		t.Error("Put still refused after victim restored")
	}
	if !c.Contains("b") || c.Contains("a") {
		t.Error("post-restore Put did not evict and admit")
	}
}

// TestCacheReadmissionRefusedWithoutVictim covers the same overflow guard
// on the retained-history readmission path of put.
func TestCacheReadmissionRefusedWithoutVictim(t *testing.T) {
	c := newTestCache(t, 1, CacheOptions{Shards: 1})
	c.Put("x", 1)
	c.Put("y", 2) // evicts x; x's history is retained
	if c.Contains("x") || !c.Contains("y") {
		t.Fatal("setup: expected y resident, x evicted")
	}
	deindex(t, c, "y")
	if c.Put("x", 3) {
		t.Error("readmission admitted into a full, victim-less shard")
	}
	if n := c.Len(); n != 1 {
		t.Errorf("Len = %d after refused readmission, want 1", n)
	}
	if got := c.Stats().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}
	reindex(t, c, "y")
	if !c.Put("x", 3) {
		t.Error("readmission still refused after victim restored")
	}
	if v, ok := c.Get("x"); !ok || v != 3 {
		t.Errorf("readmitted value = %d,%v, want 3,true", v, ok)
	}
}

// TestCacheCapacityInvariantUnderCorrelatedFlood floods a wall-clock cache
// whose clock never advances, so every reference stays inside the
// Correlated Reference Period. selectVictim's fallback must keep finding
// victims and the resident count must never exceed capacity.
func TestCacheCapacityInvariantUnderCorrelatedFlood(t *testing.T) {
	frozen := policy.Tick(1000)
	c, err := NewStringCache[int](8, CacheOptions{
		Shards:                    1,
		Clock:                     func() policy.Tick { return frozen },
		CorrelatedReferencePeriod: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if !c.Put(fmt.Sprintf("k-%d", i), i) {
			t.Fatalf("Put %d refused: correlated-period fallback broken", i)
		}
		if n := c.Len(); n > 8 {
			t.Fatalf("Len = %d exceeds capacity 8 at put %d", n, i)
		}
	}
	if got := c.Stats().Rejected; got != 0 {
		t.Errorf("Rejected = %d under a flood with victims available, want 0", got)
	}
	if evs := c.Stats().Evictions; evs < 1992 {
		t.Errorf("Evictions = %d, want >= 1992", evs)
	}
}

// TestCacheDeleteReadmissionReusesHistoryBlock pins down the §2.1.2
// mechanism behind TestCacheDeleteRetainsHistory: Delete followed by Put
// of the same key must reuse the same internal page id and HIST block, so
// the pre-delete reference survives as HIST(p,2).
func TestCacheDeleteReadmissionReusesHistoryBlock(t *testing.T) {
	c := newTestCache(t, 4, CacheOptions{Shards: 1})
	c.Put("k", 1)
	s := &c.shards[0]
	s.mu.Lock()
	id1 := s.byKey["k"]
	h1 := s.table.pages[id1]
	t1 := h1.times[0]
	s.mu.Unlock()
	if t1 == 0 {
		t.Fatal("first reference not recorded")
	}

	if !c.Delete("k") {
		t.Fatal("Delete failed")
	}
	c.Put("k", 2)

	s.mu.Lock()
	defer s.mu.Unlock()
	id2 := s.byKey["k"]
	if id2 != id1 {
		t.Fatalf("readmission allocated a new id %d, want %d reused", id2, id1)
	}
	h2 := s.table.pages[id2]
	if h2 != h1 {
		t.Fatal("readmission allocated a new HIST block")
	}
	if !h2.resident {
		t.Error("readmitted block not marked resident")
	}
	if h2.times[1] != t1 {
		t.Errorf("HIST(p,2) = %d, want the pre-delete reference %d", h2.times[1], t1)
	}
	if h2.times[0] == t1 {
		t.Error("readmission did not record a new HIST(p,1)")
	}
}
