package core

import (
	"sync"
	"testing"

	"repro/internal/policy"
	"repro/internal/stats"
)

// TestSyncReplacerMatchesPlain drives a plain Replacer and a SyncReplacer
// through the same randomised call history; every return value must match,
// since the wrapper adds only a lock.
func TestSyncReplacerMatchesPlain(t *testing.T) {
	plain := NewReplacer(2, Options{})
	wrapped := NewSyncReplacer(2, Options{})
	r := stats.NewRNG(42)
	for i := 0; i < 20000; i++ {
		p := policy.PageID(r.Intn(200))
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			plain.RecordAccess(p)
			wrapped.RecordAccess(p)
		case 4, 5, 6:
			ev := r.Intn(2) == 0
			plain.SetEvictable(p, ev)
			wrapped.SetEvictable(p, ev)
		case 7:
			plain.Remove(p)
			wrapped.Remove(p)
		default:
			v1, ok1 := plain.Evict()
			v2, ok2 := wrapped.Evict()
			if v1 != v2 || ok1 != ok2 {
				t.Fatalf("op %d: Evict = (%d,%v) vs plain (%d,%v)", i, v2, ok2, v1, ok1)
			}
		}
		if plain.Size() != wrapped.Size() {
			t.Fatalf("op %d: Size diverged: %d vs %d", i, wrapped.Size(), plain.Size())
		}
	}
	if plain.HistorySize() != wrapped.HistorySize() {
		t.Errorf("HistorySize diverged: %d vs %d", wrapped.HistorySize(), plain.HistorySize())
	}
}

// TestShardedReplacerEvictsAll verifies that a sweep-based Evict drains
// every registered page exactly once, whichever shard it hashed to.
func TestShardedReplacerEvictsAll(t *testing.T) {
	r := NewShardedReplacer(8, 2, Options{})
	const pages = 100
	for p := policy.PageID(0); p < pages; p++ {
		r.RecordAccess(p)
		r.SetEvictable(p, true)
	}
	if got := r.Size(); got != pages {
		t.Fatalf("Size = %d, want %d", got, pages)
	}
	seen := make(map[policy.PageID]bool)
	for i := 0; i < pages; i++ {
		v, ok := r.Evict()
		if !ok {
			t.Fatalf("Evict ran dry after %d victims", i)
		}
		if seen[v] {
			t.Fatalf("page %d evicted twice", v)
		}
		seen[v] = true
	}
	if _, ok := r.Evict(); ok {
		t.Error("Evict found a victim in an empty replacer")
	}
	if got := r.Size(); got != 0 {
		t.Errorf("Size = %d after draining, want 0", got)
	}
}

func TestShardedReplacerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two shard count accepted")
		}
	}()
	NewShardedReplacer(6, 2, Options{})
}

func TestShardedReplacerPinnedNeverEvicted(t *testing.T) {
	r := NewShardedReplacer(4, 2, Options{})
	for p := policy.PageID(0); p < 20; p++ {
		r.RecordAccess(p)
		r.SetEvictable(p, p%2 == 0) // odd pages stay pinned
	}
	for {
		v, ok := r.Evict()
		if !ok {
			break
		}
		if v%2 != 0 {
			t.Fatalf("pinned page %d evicted", v)
		}
	}
	if got := r.Size(); got != 0 {
		t.Errorf("%d evictable pages left unswept", got)
	}
}

// TestShardedReplacerConcurrent hammers all operations from many
// goroutines; the race detector checks the locking, and the final drain
// checks structural integrity.
func TestShardedReplacerConcurrent(t *testing.T) {
	r := NewShardedReplacer(8, 2, Options{})
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRNG(seed)
			for i := 0; i < 10000; i++ {
				p := policy.PageID(rng.Intn(500))
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					r.RecordAccess(p)
				case 4, 5:
					r.SetEvictable(p, true)
				case 6:
					r.SetEvictable(p, false)
				case 7:
					r.Remove(p)
				case 8:
					r.Evict()
				default:
					r.Size()
					r.HistorySize()
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	// Drain: each remaining evictable page must come out exactly once.
	seen := make(map[policy.PageID]bool)
	for {
		v, ok := r.Evict()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("page %d evicted twice during drain", v)
		}
		seen[v] = true
	}
	if got := r.Size(); got != 0 {
		t.Errorf("Size = %d after drain, want 0", got)
	}
}
