package core

import (
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/policy"
)

// TestJanitorStopWaitsForGoroutineExit: the stop function must not return
// until the janitor goroutine has exited, so a caller tearing down the
// cache's dependencies (db.Close stopping the janitor before closing the
// pool) cannot race a final sweep. The leak check fails the test if any
// janitor goroutine survives the stops below.
func TestJanitorStopWaitsForGoroutineExit(t *testing.T) {
	leakcheck.Check(t)
	c, err := NewStringCache[int](8, CacheOptions{
		Shards: 1,
		Clock:  func() policy.Tick { return policy.Tick(time.Now().UnixMilli()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		stop, err := c.StartJanitor(time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		c.Put("k", i)
		stop()
		stop() // idempotent, and still waits for the exit
	}
}
