package core

import (
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/stats"
)

// bruteLRUK is a literal transcription of the Figure 2.1 pseudo-code with
// an O(n) victim scan, used as the reference model for cross-validation.
// Tie-breaking matches the documented production rule: among eligible
// pages, the minimal (HIST(p,K), HIST(p,1), page id) triple wins.
type bruteLRUK struct {
	k, capacity int
	crp         policy.Tick
	clock       policy.Tick
	hist        map[policy.PageID][]policy.Tick
	last        map[policy.PageID]policy.Tick
	resident    map[policy.PageID]bool
}

func newBrute(capacity, k int, crp policy.Tick) *bruteLRUK {
	return &bruteLRUK{
		k: k, capacity: capacity, crp: crp,
		hist:     make(map[policy.PageID][]policy.Tick),
		last:     make(map[policy.PageID]policy.Tick),
		resident: make(map[policy.PageID]bool),
	}
}

func (b *bruteLRUK) reference(p policy.PageID) bool {
	b.clock++
	t := b.clock
	if b.resident[p] {
		if b.crp == 0 || t-b.last[p] > b.crp {
			span := b.last[p] - b.hist[p][0]
			for i := b.k - 1; i >= 1; i-- {
				if b.hist[p][i-1] != 0 {
					b.hist[p][i] = b.hist[p][i-1] + span
				}
			}
			b.hist[p][0] = t
		}
		b.last[p] = t
		return true
	}
	if len(b.residentSet()) >= b.capacity {
		victim := b.selectVictim(t)
		delete(b.resident, victim)
	}
	if _, ok := b.hist[p]; !ok {
		b.hist[p] = make([]policy.Tick, b.k)
	} else {
		for i := b.k - 1; i >= 1; i-- {
			b.hist[p][i] = b.hist[p][i-1]
		}
	}
	b.hist[p][0] = t
	b.last[p] = t
	b.resident[p] = true
	return false
}

func (b *bruteLRUK) residentSet() []policy.PageID {
	out := make([]policy.PageID, 0, len(b.resident))
	for p := range b.resident {
		out = append(out, p)
	}
	return out
}

func (b *bruteLRUK) better(p, q policy.PageID) bool {
	hp, hq := b.hist[p], b.hist[q]
	if hp[b.k-1] != hq[b.k-1] {
		return hp[b.k-1] < hq[b.k-1]
	}
	if hp[0] != hq[0] {
		return hp[0] < hq[0]
	}
	return p < q
}

func (b *bruteLRUK) selectVictim(t policy.Tick) policy.PageID {
	var victim policy.PageID = policy.InvalidPage
	eligible := false
	for q := range b.resident {
		if b.crp > 0 && t-b.last[q] <= b.crp {
			continue
		}
		if victim == policy.InvalidPage || b.better(q, victim) {
			victim = q
		}
		eligible = true
	}
	if eligible {
		return victim
	}
	// Fallback: all pages inside their correlated period.
	for q := range b.resident {
		if victim == policy.InvalidPage || b.better(q, victim) {
			victim = q
		}
	}
	return victim
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewLRUK(0, 2) },
		func() { NewLRUK(-3, 2) },
		func() { NewLRUK(10, 0) },
		func() { NewReplacer(0, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNameFollowsTaxonomy(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7} {
		c := NewLRUK(4, k)
		want := map[int]string{1: "LRU-1", 2: "LRU-2", 3: "LRU-3", 7: "LRU-7"}[k]
		if c.Name() != want {
			t.Errorf("Name() = %q, want %q", c.Name(), want)
		}
		if c.K() != k {
			t.Errorf("K() = %d, want %d", c.K(), k)
		}
	}
}

// TestLRU1MatchesClassicalLRU: the paper states "LRU-1 corresponds to the
// classical LRU algorithm". With CRP=0 the two must agree reference by
// reference on any trace.
func TestLRU1MatchesClassicalLRU(t *testing.T) {
	r := stats.NewRNG(101)
	for round := 0; round < 5; round++ {
		trace := make([]policy.PageID, 5000)
		for i := range trace {
			trace[i] = policy.PageID(r.Intn(100))
		}
		for _, capacity := range []int{1, 7, 50} {
			lruk := NewLRUK(capacity, 1)
			lru := policy.NewLRU(capacity)
			for i, p := range trace {
				h1, h2 := lruk.Reference(p), lru.Reference(p)
				if h1 != h2 {
					t.Fatalf("round %d cap %d ref %d: LRU-1 hit=%v, classical LRU hit=%v",
						round, capacity, i, h1, h2)
				}
			}
		}
	}
}

// TestBackwardKDistanceDefinition exercises Definition 2.1 directly on a
// handcrafted reference string.
func TestBackwardKDistanceDefinition(t *testing.T) {
	c := NewLRUK(10, 2)
	// Reference string: p at t=1, q at t=2, p at t=3, q at t=4, r at t=5.
	for _, p := range []policy.PageID{1, 2, 1, 2, 3} {
		c.Reference(p)
	}
	// b_5(1,2): second most recent reference to page 1 is at t=1 → 5-1=4.
	if d, ok := c.BackwardKDistance(1); !ok || d != 4 {
		t.Errorf("b(1,2) = %d,%v, want 4,true", d, ok)
	}
	// b_5(2,2): second most recent reference to page 2 is at t=2 → 3.
	if d, ok := c.BackwardKDistance(2); !ok || d != 3 {
		t.Errorf("b(2,2) = %d,%v, want 3,true", d, ok)
	}
	// Page 3 has one reference: infinite.
	if _, ok := c.BackwardKDistance(3); ok {
		t.Error("b(3,2) should be infinite")
	}
	// Unknown page: infinite.
	if _, ok := c.BackwardKDistance(99); ok {
		t.Error("b(unknown,2) should be infinite")
	}
}

// TestInfiniteDistanceEvictedFirst: pages with fewer than K references are
// the first victims, and among them the subsidiary policy is classical LRU
// (Definition 2.2).
func TestInfiniteDistanceEvictedFirst(t *testing.T) {
	c := NewLRUK(3, 2)
	c.Reference(1)
	c.Reference(1) // page 1 has two refs: finite distance
	c.Reference(2) // one ref: infinite
	c.Reference(3) // one ref: infinite, more recent than 2
	c.Reference(4) // miss: must evict 2 (infinite, least recently used)
	if c.Resident(2) {
		t.Error("subsidiary LRU should have evicted page 2 first")
	}
	for _, p := range []policy.PageID{1, 3, 4} {
		if !c.Resident(p) {
			t.Errorf("page %d should be resident", p)
		}
	}
}

// TestFrequentPageSurvives is Example 1.1 in miniature: a page with proven
// short interarrival time outlives a parade of once-referenced pages.
func TestFrequentPageSurvives(t *testing.T) {
	c := NewLRUK(2, 2)
	c.Reference(100)
	c.Reference(100) // hot page, b finite and small
	for p := policy.PageID(0); p < 50; p++ {
		c.Reference(p)
	}
	if !c.Resident(100) {
		t.Error("LRU-2 evicted the only page with known frequency")
	}
	// Classical LRU, by contrast, loses it immediately.
	lru := policy.NewLRU(2)
	lru.Reference(100)
	lru.Reference(100)
	for p := policy.PageID(0); p < 50; p++ {
		lru.Reference(p)
	}
	if lru.Resident(100) {
		t.Error("expected classical LRU to lose the hot page (contrast check)")
	}
}

// TestCorrelatedBurstCollapses verifies §2.1.1: a burst of references
// within the CRP counts as a single uncorrelated reference, and the span
// of the closing correlated period is credited to older history entries.
func TestCorrelatedBurstCollapses(t *testing.T) {
	c := NewLRUKWithOptions(10, 2, Options{CorrelatedReferencePeriod: 5})
	// t=1: first reference to page 1; t=2,3: correlated follow-ups.
	c.Reference(1)
	c.Reference(1)
	c.Reference(1)
	times, last, ok := c.HistTimes(1)
	if !ok {
		t.Fatal("no history for page 1")
	}
	if times[0] != 1 || times[1] != 0 || last != 3 {
		t.Fatalf("after burst: HIST=%v LAST=%d, want HIST[0]=1 HIST[1]=0 LAST=3", times, last)
	}
	// Advance time past the CRP with other pages (t=4..9), then re-reference
	// page 1 at t=10: uncorrelated. The correlated span (3-1=2) is credited:
	// HIST(1,2) = HIST(1,1) + span = 1 + 2 = 3; HIST(1,1) = 10.
	for i := 0; i < 6; i++ {
		c.Reference(policy.PageID(50 + i))
	}
	c.Reference(1)
	times, last, _ = c.HistTimes(1)
	if times[0] != 10 || times[1] != 3 || last != 10 {
		t.Fatalf("after uncorrelated ref: HIST=%v LAST=%d, want [10 3] 10", times, last)
	}
	// Backward 2-distance is therefore 10-3=7, not 10-2=8: the burst
	// collapsed to a zero-width interval.
	if d, ok := c.BackwardKDistance(1); !ok || d != 7 {
		t.Errorf("b(1,2) = %d,%v, want 7,true", d, ok)
	}
}

// TestCRPGuardsFreshPages: a page inside its correlated period is not
// eligible for replacement (Figure 2.1's eligibility test), protecting
// just-read pages from instant eviction.
func TestCRPGuardsFreshPages(t *testing.T) {
	c := NewLRUKWithOptions(2, 2, Options{CorrelatedReferencePeriod: 100})
	c.Reference(1) // t=1
	c.Reference(2) // t=2; both pages inside CRP
	c.Reference(3) // t=3: no eligible victim; fallback evicts max-distance page 1
	if c.Resident(1) || !c.Resident(2) || !c.Resident(3) {
		t.Errorf("fallback eviction wrong: 1=%v 2=%v 3=%v",
			c.Resident(1), c.Resident(2), c.Resident(3))
	}
}

// TestCRPEligibilitySkipsRecent: with CRP set, an old enough page is evicted
// in preference to a more-distant page still inside its correlated period.
func TestCRPEligibilitySkipsRecent(t *testing.T) {
	c := NewLRUKWithOptions(2, 2, Options{CorrelatedReferencePeriod: 2})
	c.Reference(1) // t=1, infinite distance
	c.Reference(2) // t=2, infinite distance
	c.Reference(2) // t=3 correlated touch on 2 (within CRP)
	c.Reference(2) // t=4 keeps LAST(2)=4 fresh
	// t=5: page 1 (LAST=1) is eligible (5-1>2); page 2 (LAST=4) is not
	// (5-4<=2). Both have infinite distance; without CRP the subsidiary LRU
	// would pick 1 anyway, so make page 1 the *less* attractive victim by
	// giving it a second uncorrelated reference... instead verify page 2
	// survives despite being the subsidiary-LRU victim candidate order.
	c.Reference(3)
	if c.Resident(2) == false {
		t.Error("page inside its correlated period was evicted while an eligible page existed")
	}
	if c.Resident(1) {
		t.Error("eligible page 1 should have been the victim")
	}
}

// TestRetainedInformation verifies §2.1.2: history survives eviction, so a
// page re-referenced after being dropped is recognised as frequent.
func TestRetainedInformation(t *testing.T) {
	c := NewLRUK(1, 2) // single frame forces constant eviction
	c.Reference(1)     // t=1
	c.Reference(2)     // t=2, evicts 1 but retains HIST(1)
	c.Reference(1)     // t=3, readmits 1; HIST shifts: times=[3,1]
	if d, ok := c.BackwardKDistance(1); !ok || d != 2 {
		t.Errorf("b(1,2) = %d,%v, want 2,true — retained history must count", d, ok)
	}
}

// TestRetainedInformationPurge verifies the retention demon: blocks for
// non-resident pages older than the RIP are dropped, and the page loses its
// standing.
func TestRetainedInformationPurge(t *testing.T) {
	c := NewLRUKWithOptions(1, 2, Options{RetainedInformationPeriod: 5})
	c.Reference(1) // t=1
	c.Reference(2) // t=2: 1 evicted, history retained
	if c.HistorySize() != 2 {
		t.Fatalf("HistorySize = %d, want 2", c.HistorySize())
	}
	// References to other pages push the clock past 1's RIP (last=1, purge
	// once clock-1 > 5, i.e. clock >= 7). 8 distinct pages are referenced
	// in total; only those whose last reference is within the RIP may keep
	// a history block.
	for i := 0; i < 6; i++ {
		c.Reference(policy.PageID(10 + i))
	}
	if c.HistorySize() >= 8 {
		t.Errorf("HistorySize = %d of 8 referenced pages; retention demon not purging", c.HistorySize())
	}
	if c.HistorySize() > 1+5+1 { // resident + one per tick of the RIP window
		t.Errorf("HistorySize = %d exceeds the RIP retention bound", c.HistorySize())
	}
	// Page 1's block (last=1, now 6+ ticks stale) must be gone, so the page
	// has lost its standing entirely.
	c.Reference(1)
	times, _, _ := c.HistTimes(1)
	if times[1] != 0 {
		t.Errorf("HIST(1) = %v after purge+readmit; want empty older slot", times)
	}
}

// TestHistoryBoundedByRIP: with a retention period set, the history table
// cannot grow without bound on a scan of distinct pages.
func TestHistoryBoundedByRIP(t *testing.T) {
	const rip = 64
	c := NewLRUKWithOptions(8, 2, Options{RetainedInformationPeriod: rip})
	for i := 0; i < 100000; i++ {
		c.Reference(policy.PageID(i)) // pure sequential scan, all distinct
	}
	// Bound: resident pages + pages referenced in the last RIP ticks.
	if max := 8 + rip + 1; c.HistorySize() > max {
		t.Errorf("HistorySize = %d, want <= %d under RIP", c.HistorySize(), max)
	}
}

// TestScanResistance is Example 1.2 in miniature: LRU-2 retains a hot set
// across a long sequential scan far better than LRU-1.
func TestScanResistance(t *testing.T) {
	run := func(c policy.Cache) float64 {
		r := stats.NewRNG(7)
		hot := 20
		// Phase 1: establish the hot set.
		for i := 0; i < 2000; i++ {
			c.Reference(policy.PageID(r.Intn(hot)))
		}
		// Phase 2: sequential scan of 1000 cold pages interleaved with hot refs.
		for i := 0; i < 1000; i++ {
			c.Reference(policy.PageID(1000 + i))
			c.Reference(policy.PageID(r.Intn(hot)))
		}
		// Phase 3: measure hot-set hit ratio.
		hits := 0
		const probes = 2000
		for i := 0; i < probes; i++ {
			if c.Reference(policy.PageID(r.Intn(hot))) {
				hits++
			}
		}
		return float64(hits) / probes
	}
	lru2 := run(NewLRUK(25, 2))
	lru1 := run(policy.NewLRU(25))
	if lru2 < 0.95 {
		t.Errorf("LRU-2 hot hit ratio %.3f under scan, want >= 0.95", lru2)
	}
	if lru2 <= lru1 {
		t.Errorf("LRU-2 (%.3f) not better than LRU-1 (%.3f) under scan interference", lru2, lru1)
	}
}

// TestCrossValidateAgainstFigure21 replays random traces through LRUK and
// the literal pseudo-code transcription, comparing hit patterns and
// resident sets at every step.
func TestCrossValidateAgainstFigure21(t *testing.T) {
	r := stats.NewRNG(31337)
	configs := []struct {
		capacity, k int
		crp         policy.Tick
		pages       int
	}{
		{5, 2, 0, 20},
		{10, 2, 0, 40},
		{10, 3, 0, 40},
		{4, 1, 0, 15},
		{8, 2, 3, 30},
		{8, 4, 5, 25},
		{1, 2, 0, 10},
		{16, 5, 2, 60},
	}
	for _, cfg := range configs {
		c := NewLRUKWithOptions(cfg.capacity, cfg.k, Options{CorrelatedReferencePeriod: cfg.crp})
		b := newBrute(cfg.capacity, cfg.k, cfg.crp)
		for i := 0; i < 6000; i++ {
			p := policy.PageID(r.Intn(cfg.pages))
			h1, h2 := c.Reference(p), b.reference(p)
			if h1 != h2 {
				t.Fatalf("cfg %+v ref %d page %d: LRUK hit=%v, Figure 2.1 hit=%v", cfg, i, p, h1, h2)
			}
			if c.Len() != len(b.resident) {
				t.Fatalf("cfg %+v ref %d: Len %d vs brute %d", cfg, i, c.Len(), len(b.resident))
			}
			for q := range b.resident {
				if !c.Resident(q) {
					t.Fatalf("cfg %+v ref %d: page %d resident in brute force only", cfg, i, q)
				}
			}
		}
	}
}

// TestQuickResidencyInvariants is a property test over arbitrary short
// traces: capacity respected, referenced page resident, hit implies prior
// residency.
func TestQuickResidencyInvariants(t *testing.T) {
	f := func(raw []uint8, kRaw, capRaw uint8) bool {
		k := int(kRaw%4) + 1
		capacity := int(capRaw%8) + 1
		c := NewLRUK(capacity, k)
		for _, x := range raw {
			p := policy.PageID(x % 24)
			wasResident := c.Resident(p)
			hit := c.Reference(p)
			if hit != wasResident {
				return false
			}
			if !c.Resident(p) || c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickLRUKMatchesBrute is the property-test form of the
// cross-validation, over quick-generated traces.
func TestQuickLRUKMatchesBrute(t *testing.T) {
	f := func(raw []uint8, kRaw, capRaw, crpRaw uint8) bool {
		k := int(kRaw%3) + 1
		capacity := int(capRaw%6) + 1
		crp := policy.Tick(crpRaw % 4)
		c := NewLRUKWithOptions(capacity, k, Options{CorrelatedReferencePeriod: crp})
		b := newBrute(capacity, k, crp)
		for _, x := range raw {
			p := policy.PageID(x % 16)
			if c.Reference(p) != b.reference(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestResetRestoresEmptyState(t *testing.T) {
	c := NewLRUK(4, 2)
	for i := 0; i < 100; i++ {
		c.Reference(policy.PageID(i % 10))
	}
	c.Reset()
	if c.Len() != 0 || c.HistorySize() != 0 || c.Clock() != 0 {
		t.Errorf("Reset left state: Len=%d HistorySize=%d Clock=%d", c.Len(), c.HistorySize(), c.Clock())
	}
	if c.Reference(1) {
		t.Error("hit on a fresh cache")
	}
}

func TestDefaultRIP(t *testing.T) {
	if got := DefaultRIP(100, 2); got != 400 {
		t.Errorf("DefaultRIP(100,2) = %d, want 400", got)
	}
}
