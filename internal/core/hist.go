// Package core implements the LRU-K page replacement algorithm of
// O'Neil, O'Neil & Weikum (SIGMOD 1993) — the primary contribution of the
// paper this repository reproduces.
//
// Three public faces share one implementation of the paper's bookkeeping:
//
//   - LRUK: a fixed-capacity page cache implementing the policy.Cache
//     interface, used by the trace-driven simulator (Section 4).
//   - Replacer: a pin-aware victim selector for the buffer-pool manager in
//     internal/bufferpool.
//   - Cache: a sharded, concurrent, generic in-memory cache with LRU-K
//     eviction — the artifact a downstream user would adopt.
//
// The bookkeeping follows Figure 2.1 of the paper: per-page HIST blocks
// with the times of the K most recent uncorrelated references, a LAST
// timestamp for correlated-reference detection (§2.1.1), retained history
// for non-resident pages (§2.1.2), and a search-tree victim index ordered
// by Backward K-distance (§2.1.3).
package core

import (
	"repro/internal/ordmap"
	"repro/internal/policy"
)

// hist is the history control block HIST(p) plus LAST(p) of Figure 2.1.
type hist struct {
	// times holds the K most recent uncorrelated reference times:
	// times[0] is HIST(p,1) (most recent), times[K-1] is HIST(p,K).
	// A zero entry means "no such reference yet" (backward distance ∞),
	// matching the pseudo-code's initialisation HIST(p,i) := 0.
	times []policy.Tick
	// last is LAST(p): the most recent reference of any kind, correlated
	// or not.
	last policy.Tick
	// resident reports whether the page currently occupies a buffer frame.
	resident bool
}

// kth returns HIST(p,K), the time of the K-th most recent uncorrelated
// reference; zero encodes an infinite Backward K-distance.
func (h *hist) kth() policy.Tick { return h.times[len(h.times)-1] }

// vkey is the victim-index key. Ascending order is eviction order: the
// smallest HIST(p,K) is the maximal Backward K-distance (Definition 2.2),
// zero (∞ distance) sorts first, and HIST(p,1) implements the subsidiary
// LRU rule among pages tied at infinite distance.
type vkey struct {
	kth   policy.Tick
	hist1 policy.Tick
	page  policy.PageID
}

func vkeyLess(a, b vkey) bool {
	if a.kth != b.kth {
		return a.kth < b.kth
	}
	if a.hist1 != b.hist1 {
		return a.hist1 < b.hist1
	}
	return a.page < b.page
}

func (h *hist) key(p policy.PageID) vkey {
	return vkey{kth: h.kth(), hist1: h.times[0], page: p}
}

// retired records a page that left residency at a given LAST time; the
// retention queue purges history blocks lazily once their age exceeds the
// Retained Information Period.
type retired struct {
	page policy.PageID
	last policy.Tick
}

// histTable is the shared engine: history blocks for resident and retained
// pages, the victim index over the evictable subset, and the retention
// queue. LRUK, Replacer and the cache shards all embed one.
type histTable struct {
	k     int
	crp   policy.Tick // Correlated Reference Period (§2.1.1); 0 disables
	rip   policy.Tick // Retained Information Period (§2.1.2); 0 retains forever
	clock policy.Tick

	pages map[policy.PageID]*hist
	// index orders the evictable resident pages by Backward K-distance.
	index *ordmap.Map[vkey, struct{}]
	// retire is the lazily-validated retention queue, ordered by the LAST
	// value the page had when it left residency. retireHead indexes its
	// logical front; popped slack is compacted away (see retirePop) so a
	// retirement burst cannot pin its peak-sized backing array forever,
	// as popping with retire = retire[1:] used to.
	retire     []retired
	retireHead int
	// onPurge, when set, is called for each history block the retention
	// demon drops; the generic cache uses it to release key bindings.
	onPurge func(policy.PageID)

	// tracer, when set, receives collapse/purge decisions (evictions are
	// reported by the owning Replacer, which knows the K-distance). Called
	// under whatever lock serialises this table.
	tracer PolicyTracer
	// collapses and purges count §2.1.1 collapses and §2.1.2 purges; plain
	// uint64s because the table is externally serialised.
	collapses uint64
	purges    uint64
}

func newHistTable(k int, crp, rip policy.Tick) *histTable {
	return &histTable{
		k:     k,
		crp:   crp,
		rip:   rip,
		pages: make(map[policy.PageID]*hist),
		index: ordmap.New[vkey, struct{}](vkeyLess),
	}
}

func (t *histTable) reset() {
	t.clock = 0
	t.pages = make(map[policy.PageID]*hist)
	t.index.Clear()
	t.retire, t.retireHead = nil, 0
	t.collapses, t.purges = 0, 0
}

// tick advances the logical clock by one reference and runs the retention
// purge. It returns the new time.
func (t *histTable) tick() policy.Tick {
	t.clock++
	t.purge()
	return t.clock
}

// advanceTo moves the clock forward to now (never backward, so a
// non-monotonic external clock cannot corrupt history ordering), runs the
// retention purge, and returns the effective time.
func (t *histTable) advanceTo(now policy.Tick) policy.Tick {
	if now > t.clock {
		t.clock = now
	}
	t.purge()
	return t.clock
}

// touchResident processes a reference at time now to a page already in
// buffer, per the top branch of Figure 2.1. indexed reports whether the
// page is currently in the victim index (evictable); if so its key is
// refreshed on an uncorrelated reference.
func (t *histTable) touchResident(p policy.PageID, h *hist, now policy.Tick, indexed bool) {
	if t.crp > 0 && now-h.last <= t.crp {
		// A correlated reference: only LAST moves (§2.1.1).
		h.last = now
		t.collapses++
		if t.tracer != nil {
			t.tracer.TraceCollapse(p, now)
		}
		return
	}
	// A new, uncorrelated reference: close the correlated period by
	// crediting its span to the older history entries, collapsing the burst
	// to a zero-width interval, exactly as Figure 2.1 does.
	if indexed {
		t.index.Delete(h.key(p))
	}
	span := h.last - h.times[0]
	for i := t.k - 1; i >= 1; i-- {
		if h.times[i-1] != 0 {
			h.times[i] = h.times[i-1] + span
		}
	}
	h.times[0] = now
	h.last = now
	if indexed {
		t.index.Set(h.key(p), struct{}{})
	}
}

// admit installs page p as resident at time now, creating or shifting its
// history control block per the bottom branch of Figure 2.1, and returns
// its block. indexed controls whether the page enters the victim index
// immediately (the Replacer defers that to SetEvictable).
func (t *histTable) admit(p policy.PageID, now policy.Tick, indexed bool) *hist {
	h, ok := t.pages[p]
	if !ok {
		// "allocate HIST(p); for i := 2 to K do HIST(p,i) := 0"
		h = &hist{times: make([]policy.Tick, t.k)}
		t.pages[p] = h
	} else {
		// History survives from a previous residency (§2.1.2): shift it so
		// the new reference becomes HIST(p,1).
		for i := t.k - 1; i >= 1; i-- {
			h.times[i] = h.times[i-1]
		}
	}
	h.times[0] = now
	h.last = now
	h.resident = true
	if indexed {
		t.index.Set(h.key(p), struct{}{})
	}
	return h
}

// evictResident removes p from residency, retiring its history block into
// the retention queue. The caller must already have removed it from the
// victim index (or know it was never indexed).
func (t *histTable) evictResident(p policy.PageID, h *hist) {
	h.resident = false
	if t.rip > 0 {
		t.retire = append(t.retire, retired{page: p, last: h.last})
	}
}

// retireLen returns the number of queued retirement entries.
func (t *histTable) retireLen() int { return len(t.retire) - t.retireHead }

// retireCompactMin is the popped-slack threshold below which retirePop
// does not bother compacting.
const retireCompactMin = 32

// retirePop removes and returns the front of the retention queue. The
// vacated slot is zeroed, and once popped slack dominates the backing
// array the live tail is copied down — to a fresh, smaller array when the
// queue is mostly slack — so the queue's memory stays proportional to its
// live length instead of its historical peak.
func (t *histTable) retirePop() retired {
	head := t.retire[t.retireHead]
	t.retire[t.retireHead] = retired{}
	t.retireHead++
	if t.retireHead >= retireCompactMin && t.retireHead >= len(t.retire)/2 {
		live := len(t.retire) - t.retireHead
		if cap(t.retire) >= 4*live+retireCompactMin {
			fresh := make([]retired, live)
			copy(fresh, t.retire[t.retireHead:])
			t.retire = fresh
		} else {
			n := copy(t.retire, t.retire[t.retireHead:])
			t.retire = t.retire[:n]
		}
		t.retireHead = 0
	}
	return head
}

// selectVictim returns the evictable page with the maximal Backward
// K-distance whose correlated reference period has expired
// ("t - LAST(q) > Correlated Reference Period" in Figure 2.1). If every
// indexed page is still inside its correlated period, the overall maximum
// is returned anyway — the paper leaves this case open, and starving
// admission would deadlock a real buffer pool. ok is false when the index
// is empty.
func (t *histTable) selectVictim(now policy.Tick) (victim policy.PageID, ok bool) {
	if t.crp == 0 {
		k, _, found := t.index.Min()
		return k.page, found
	}
	found := false
	t.index.Ascend(func(k vkey, _ struct{}) bool {
		h := t.pages[k.page]
		if now-h.last > t.crp {
			victim, found = k.page, true
			return false
		}
		return true
	})
	if found {
		return victim, true
	}
	k, _, fallback := t.index.Min()
	return k.page, fallback
}

// purge is the paper's "asynchronous demon process" (§2.1.3) run inline:
// it drops history control blocks of non-resident pages whose most recent
// reference is more than the Retained Information Period in the past.
// Queue entries are validated lazily, so the amortised cost is O(1) per
// reference.
func (t *histTable) purge() {
	if t.rip == 0 {
		return
	}
	for t.retireLen() > 0 {
		head := t.retire[t.retireHead]
		if t.clock-head.last <= t.rip {
			return
		}
		t.retirePop()
		h, ok := t.pages[head.page]
		if !ok || h.resident || h.last != head.last {
			// The page was readmitted (and possibly re-retired) since this
			// entry was queued; a fresher entry governs it.
			continue
		}
		t.dropHistory(head.page)
	}
}

// dropHistory deletes page's history control block and fires the purge
// hooks and counter.
func (t *histTable) dropHistory(page policy.PageID) {
	delete(t.pages, page)
	t.purges++
	if t.tracer != nil {
		t.tracer.TracePurge(page, t.clock)
	}
	if t.onPurge != nil {
		t.onPurge(page)
	}
}

// historyLen returns the number of history control blocks held, resident
// or retained. Exposed for tests of the retention demon.
func (t *histTable) historyLen() int { return len(t.pages) }

// dropOldestRetained purges the oldest retained (non-resident) history
// block regardless of the Retained Information Period, reporting whether
// one was dropped. The budgeted policy uses it to convert history memory
// back into buffer frames when the history share outgrows its budget.
func (t *histTable) dropOldestRetained() bool {
	for t.retireLen() > 0 {
		head := t.retirePop()
		h, ok := t.pages[head.page]
		if !ok || h.resident || h.last != head.last {
			continue // stale queue entry; a fresher one governs the page
		}
		t.dropHistory(head.page)
		return true
	}
	return false
}

// backwardKDistance returns b_t(p,K) per Definition 2.1, with ok=false
// encoding an infinite distance (no K-th reference on record).
func (t *histTable) backwardKDistance(p policy.PageID) (policy.Tick, bool) {
	h, found := t.pages[p]
	if !found || h.kth() == 0 {
		return 0, false
	}
	return t.clock - h.kth(), true
}
