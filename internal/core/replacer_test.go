package core

import (
	"testing"

	"repro/internal/policy"
)

func TestReplacerPinSemantics(t *testing.T) {
	r := NewReplacer(2, Options{})
	r.RecordAccess(1)
	r.RecordAccess(2)
	// Nothing evictable yet: pages enter pinned.
	if _, ok := r.Evict(); ok {
		t.Fatal("Evict succeeded with all pages pinned")
	}
	if r.Size() != 0 {
		t.Fatalf("Size = %d, want 0", r.Size())
	}
	r.SetEvictable(1, true)
	r.SetEvictable(2, true)
	if r.Size() != 2 {
		t.Fatalf("Size = %d, want 2", r.Size())
	}
	// Re-pin 1; only 2 is evictable.
	r.SetEvictable(1, false)
	victim, ok := r.Evict()
	if !ok || victim != 2 {
		t.Fatalf("Evict = %d,%v, want 2,true", victim, ok)
	}
	if r.Size() != 0 {
		t.Fatalf("Size after evict = %d, want 0", r.Size())
	}
}

func TestReplacerBackwardKOrder(t *testing.T) {
	r := NewReplacer(2, Options{})
	// Page 1: two accesses (finite distance). Pages 2, 3: one access each.
	r.RecordAccess(1) // t=1
	r.RecordAccess(1) // t=2
	r.RecordAccess(2) // t=3
	r.RecordAccess(3) // t=4
	for _, p := range []policy.PageID{1, 2, 3} {
		r.SetEvictable(p, true)
	}
	// Victims in order: 2 (∞, older), 3 (∞, newer), then 1 (finite).
	want := []policy.PageID{2, 3, 1}
	for i, w := range want {
		got, ok := r.Evict()
		if !ok || got != w {
			t.Fatalf("eviction %d = %d,%v, want %d", i, got, ok, w)
		}
	}
}

func TestReplacerAccessRefreshesOrder(t *testing.T) {
	r := NewReplacer(1, Options{})
	r.RecordAccess(1)
	r.RecordAccess(2)
	r.SetEvictable(1, true)
	r.SetEvictable(2, true)
	// Touch 1 again: its last uncorrelated reference is now the most
	// recent, so 2 becomes the LRU victim among the ∞-distance pages.
	r.RecordAccess(1)
	victim, ok := r.Evict()
	if !ok || victim != 2 {
		t.Fatalf("Evict = %d,%v, want 2,true", victim, ok)
	}
}

func TestReplacerSetEvictableIdempotent(t *testing.T) {
	r := NewReplacer(2, Options{})
	r.RecordAccess(1)
	r.SetEvictable(1, true)
	r.SetEvictable(1, true)
	if r.Size() != 1 {
		t.Fatalf("Size = %d after double SetEvictable(true)", r.Size())
	}
	r.SetEvictable(1, false)
	r.SetEvictable(1, false)
	if r.Size() != 0 {
		t.Fatalf("Size = %d after double SetEvictable(false)", r.Size())
	}
	// Unknown pages are tolerated.
	r.SetEvictable(99, true)
	if r.Size() != 0 {
		t.Fatal("SetEvictable admitted an unknown page")
	}
}

func TestReplacerRemove(t *testing.T) {
	r := NewReplacer(2, Options{})
	r.RecordAccess(1)
	r.RecordAccess(2)
	r.SetEvictable(1, true)
	r.SetEvictable(2, true)
	r.Remove(1)
	if r.Size() != 1 {
		t.Fatalf("Size after Remove = %d, want 1", r.Size())
	}
	victim, ok := r.Evict()
	if !ok || victim != 2 {
		t.Fatalf("Evict = %d,%v, want 2,true", victim, ok)
	}
	// Remove of unknown or already-removed pages is a no-op.
	r.Remove(1)
	r.Remove(42)
}

func TestReplacerHistorySurvivesEviction(t *testing.T) {
	r := NewReplacer(2, Options{})
	r.RecordAccess(1) // t=1
	r.SetEvictable(1, true)
	if v, _ := r.Evict(); v != 1 {
		t.Fatal("setup eviction failed")
	}
	r.RecordAccess(2) // t=2
	r.RecordAccess(1) // t=3: readmitted; HIST shifts to [3,1]
	if r.HistorySize() < 2 {
		t.Fatalf("HistorySize = %d, want >= 2", r.HistorySize())
	}
	r.SetEvictable(1, true)
	r.SetEvictable(2, true)
	// Page 1 now has a finite backward 2-distance; page 2 is infinite, so 2
	// must be the victim even though 1 was referenced longer ago first.
	victim, ok := r.Evict()
	if !ok || victim != 2 {
		t.Fatalf("Evict = %d,%v, want 2,true (retained history must count)", victim, ok)
	}
}

func TestReplacerCRP(t *testing.T) {
	r := NewReplacer(2, Options{CorrelatedReferencePeriod: 3})
	r.RecordAccess(1) // t=1
	r.RecordAccess(2) // t=2
	r.RecordAccess(3) // t=3
	r.RecordAccess(4) // t=4
	for _, p := range []policy.PageID{1, 2, 3, 4} {
		r.SetEvictable(p, true)
	}
	// At clock 4, pages 2,3,4 are inside the CRP (4-last <= 3); only page 1
	// (4-1 > 3) is eligible.
	victim, ok := r.Evict()
	if !ok || victim != 1 {
		t.Fatalf("Evict = %d,%v, want 1,true (only eligible page)", victim, ok)
	}
}
