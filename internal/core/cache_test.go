package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/stats"
)

func newTestCache(t *testing.T, capacity int, opts CacheOptions) *Cache[string, int] {
	t.Helper()
	c, err := NewStringCache[int](capacity, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache[string, int](8, nil, CacheOptions{}); err == nil {
		t.Error("nil hash accepted")
	}
	if _, err := NewStringCache[int](8, CacheOptions{Shards: 3}); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	if _, err := NewStringCache[int](8, CacheOptions{Shards: 16}); err == nil {
		t.Error("capacity below shard count accepted")
	}
	if _, err := NewStringCache[int](8, CacheOptions{K: -1, Shards: 1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := NewStringCache[int](64, CacheOptions{}); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

func TestCacheBasicOps(t *testing.T) {
	c := newTestCache(t, 8, CacheOptions{Shards: 1})
	if _, ok := c.Get("a"); ok {
		t.Error("Get on empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("Get(a) = %d,%v, want 1,true", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if !c.Contains("b") || c.Contains("zzz") {
		t.Error("Contains wrong")
	}
	c.Put("a", 10) // overwrite
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("overwritten value = %d, want 10", v)
	}
	if c.Len() != 2 {
		t.Errorf("Len after overwrite = %d, want 2", c.Len())
	}
	if !c.Delete("a") {
		t.Error("Delete(a) = false")
	}
	if c.Delete("a") {
		t.Error("double Delete = true")
	}
	if _, ok := c.Get("a"); ok {
		t.Error("deleted key still readable")
	}
	if c.Len() != 1 {
		t.Errorf("Len after delete = %d, want 1", c.Len())
	}
}

func TestCacheStatsCounters(t *testing.T) {
	c := newTestCache(t, 8, CacheOptions{Shards: 1})
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	c.Get("miss")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("Stats = %+v, want 2 hits 1 miss", s)
	}
	if got := s.HitRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("HitRatio = %v, want 2/3", got)
	}
	if (CacheStats{}).HitRatio() != 0 {
		t.Error("empty HitRatio not 0")
	}
}

func TestCacheEvictionIsLRUK(t *testing.T) {
	// Single shard, capacity 2, K=2: a twice-referenced key survives a
	// parade of one-shot keys (the cache-library form of Example 1.2).
	c := newTestCache(t, 2, CacheOptions{Shards: 1})
	c.Put("hot", 1)
	c.Get("hot")
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("scan-%d", i), i)
	}
	if _, ok := c.Get("hot"); !ok {
		t.Error("LRU-K cache evicted the only key with known frequency")
	}
	if evs := c.Stats().Evictions; evs < 48 {
		t.Errorf("Evictions = %d, want >= 48", evs)
	}
}

func TestCacheRetainedHistoryOnReadmission(t *testing.T) {
	// Capacity 1 forces eviction of every put; the recurring key must still
	// accumulate history and eventually win residency contests.
	c := newTestCache(t, 1, CacheOptions{Shards: 1})
	c.Put("recurring", 1) // t=1
	c.Put("x", 2)         // evicts recurring, history retained
	c.Put("recurring", 3) // readmitted: 2nd uncorrelated reference on record
	if _, ok := c.Get("recurring"); !ok {
		t.Fatal("readmitted key unreadable")
	}
	if v, _ := c.Get("recurring"); v != 3 {
		t.Error("readmitted key has stale value")
	}
}

func TestCacheDeleteRetainsHistory(t *testing.T) {
	c := newTestCache(t, 2, CacheOptions{Shards: 1})
	c.Put("k", 1)
	c.Delete("k")
	c.Put("k", 2) // same identity: two uncorrelated references on record
	c.Put("once", 3)
	c.Put("evictor", 4) // one of the three must go; "k" has finite distance
	if _, ok := c.Get("k"); !ok {
		t.Error("history did not survive Delete: frequent key evicted")
	}
}

func TestCacheWallClock(t *testing.T) {
	now := policy.Tick(1000)
	c, err := NewStringCache[int](4, CacheOptions{
		Shards:                    1,
		Clock:                     func() policy.Tick { return now },
		CorrelatedReferencePeriod: 10,
		RetainedInformationPeriod: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", 1)
	now += 5
	c.Get("a") // correlated (within 10 units)
	now += 50
	c.Get("a") // uncorrelated
	if _, ok := c.Get("a"); !ok {
		t.Error("key lost under wall clock")
	}
	// Clock going backwards must not corrupt anything.
	now -= 500
	c.Put("b", 2)
	if _, ok := c.Get("b"); !ok {
		t.Error("put under backwards clock lost")
	}
}

func TestCacheZeroValueStored(t *testing.T) {
	c := newTestCache(t, 4, CacheOptions{Shards: 1})
	c.Put("zero", 0)
	if v, ok := c.Get("zero"); !ok || v != 0 {
		t.Errorf("Get(zero) = %d,%v, want 0,true", v, ok)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c, err := NewIntCache[int64](1024, CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRNG(seed)
			for i := 0; i < 20000; i++ {
				k := int64(r.Intn(4000))
				switch op := r.Float64(); {
				case op < 0.65:
					if _, ok := c.Get(k); !ok {
						c.Put(k, k*2)
					}
				case op < 0.85:
					c.Put(k, k*2)
				case op < 0.93:
					c.Delete(k)
				case op < 0.97:
					c.Contains(k)
				default:
					// Aggregate queries must race safely with mutation.
					if c.Len() > 1024 {
						panic("Len exceeded capacity mid-run")
					}
					c.Stats()
				}
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	if c.Len() > 1024 {
		t.Errorf("Len = %d exceeds capacity after concurrent load", c.Len())
	}
	// Every readable value must be consistent (k*2).
	for k := int64(0); k < 4000; k++ {
		if v, ok := c.Get(k); ok && v != k*2 {
			t.Fatalf("corrupt value for %d: %d", k, v)
		}
	}
}

func TestCacheCapacityAcrossShards(t *testing.T) {
	c, err := NewIntCache[int](64, CacheOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10000; i++ {
		c.Put(i, int(i))
	}
	if c.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity 64", c.Len())
	}
	if c.Len() < 32 {
		t.Errorf("Len = %d suspiciously low; shards should fill", c.Len())
	}
}

func TestCacheHistoryPurgeReleasesBindings(t *testing.T) {
	// With a tight RIP, key bindings for long-gone keys must be released,
	// or the byKey map would grow with every distinct key ever seen.
	c, err := NewStringCache[int](4, CacheOptions{
		Shards:                    1,
		RetainedInformationPeriod: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	s := &c.shards[0]
	s.mu.Lock()
	bindings := len(s.byKey)
	s.mu.Unlock()
	// Bound: resident (4) + retained within RIP window (16) + slack.
	if bindings > 4+16+4 {
		t.Errorf("byKey holds %d bindings; purge is not releasing them", bindings)
	}
}

func TestCacheStringAndIntHashes(t *testing.T) {
	if hashString("a") == hashString("b") {
		t.Error("hashString collision on trivial inputs")
	}
	if hashInt64(1) == hashInt64(2) {
		t.Error("hashInt64 collision on trivial inputs")
	}
	if hashString("") == 0 {
		t.Log("empty string hashes to FNV offset basis; fine")
	}
}

func TestJanitorRequiresWallClock(t *testing.T) {
	c := newTestCache(t, 8, CacheOptions{Shards: 1})
	if _, err := c.StartJanitor(time.Millisecond); err != ErrNoClock {
		t.Errorf("logical-clock janitor error = %v, want ErrNoClock", err)
	}
	wall, err := NewStringCache[int](8, CacheOptions{
		Shards: 1,
		Clock:  func() policy.Tick { return policy.Tick(time.Now().UnixMilli()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wall.StartJanitor(0); err == nil {
		t.Error("zero interval accepted")
	}
	stop, err := wall.StartJanitor(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent
}

// TestJanitorPurgesIdleHistory: with a wall clock and a short RIP, retained
// history of an idle cache must disappear without any traffic.
func TestJanitorPurgesIdleHistory(t *testing.T) {
	var now atomic.Int64
	c, err := NewStringCache[int](2, CacheOptions{
		Shards:                    1,
		Clock:                     func() policy.Tick { return policy.Tick(now.Load()) },
		RetainedInformationPeriod: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Create retained history: insert three keys into a 2-entry cache.
	now.Store(1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts one; its history is retained
	s := &c.shards[0]
	s.mu.Lock()
	before := len(s.byKey)
	s.mu.Unlock()
	if before != 3 {
		t.Fatalf("expected 3 key bindings before purge, got %d", before)
	}
	// Jump time past the RIP and let the janitor sweep.
	now.Store(100)
	stop, err := c.StartJanitor(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		bindings := len(s.byKey)
		s.mu.Unlock()
		if bindings == 2 {
			return // the evicted key's history was purged while idle
		}
		if time.Now().After(deadline) {
			t.Fatalf("janitor did not purge idle history; %d bindings remain", bindings)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
