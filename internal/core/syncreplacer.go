package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/policy"
)

// This file makes the Replacer contract explicitly concurrent. The plain
// Replacer is single-threaded by design (the deterministic simulator needs
// bit-for-bit reproducible decisions); a concurrent buffer pool needs one
// of the two wrappers below:
//
//   - SyncReplacer serialises one Replacer behind a mutex. Decisions are
//     identical to the plain Replacer's for any serialisable call history,
//     so a single-threaded trace replayed through a concurrent pool yields
//     exactly the seed pool's hit/miss/eviction accounting.
//   - ShardedReplacer partitions pages across independently locked
//     sub-replacers, mirroring Cache's shard scheme: near-linear scaling,
//     per-shard (not global) LRU-K victim order.
//
// Both advertise their thread safety with ConcurrentSafe, the marker the
// buffer pool checks before deciding whether to add its own lock.

// SyncReplacer is a Replacer guarded by a single mutex: safe for concurrent
// use while preserving the global LRU-K victim order of the wrapped
// replacer.
type SyncReplacer struct {
	mu sync.Mutex
	r  *Replacer
	// clock is the arrival clock shared with a Batched wrapper, so buffered
	// references are stamped at arrival and applied at their own times. For
	// a serialisable call history it produces the same tick sequence as the
	// wrapped replacer's private clock.
	clock atomic.Int64
}

// NewSyncReplacer returns a mutex-guarded LRU-K replacer with history depth
// k and the given §2.1 periods.
func NewSyncReplacer(k int, opts Options) *SyncReplacer {
	s := &SyncReplacer{r: NewReplacer(k, opts)}
	s.r.clockSrc = &s.clock
	return s
}

// ConcurrentSafe marks SyncReplacer as safe for concurrent use.
func (s *SyncReplacer) ConcurrentSafe() {}

// RecordAccess notes a reference to a resident page.
func (s *SyncReplacer) RecordAccess(p policy.PageID) {
	s.mu.Lock()
	s.r.RecordAccess(p)
	s.mu.Unlock()
}

// SetEvictable marks whether p may be chosen as a victim.
func (s *SyncReplacer) SetEvictable(p policy.PageID, evictable bool) {
	s.mu.Lock()
	s.r.SetEvictable(p, evictable)
	s.mu.Unlock()
}

// Restore reinstates residency after an abandoned eviction without
// advancing the clock or touching the page's HIST block.
func (s *SyncReplacer) Restore(p policy.PageID) {
	s.mu.Lock()
	s.r.Restore(p)
	s.mu.Unlock()
}

// Evict selects and removes a victim.
func (s *SyncReplacer) Evict() (policy.PageID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Evict()
}

// Remove drops p without treating it as an eviction decision.
func (s *SyncReplacer) Remove(p policy.PageID) {
	s.mu.Lock()
	s.r.Remove(p)
	s.mu.Unlock()
}

// Size returns the number of evictable pages.
func (s *SyncReplacer) Size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.Size()
}

// HistorySize returns the number of retained history control blocks.
func (s *SyncReplacer) HistorySize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.HistorySize()
}

// SetTracer installs a PolicyTracer on the wrapped replacer; the tracer is
// invoked under this wrapper's mutex.
func (s *SyncReplacer) SetTracer(tr PolicyTracer) {
	s.mu.Lock()
	s.r.SetTracer(tr)
	s.mu.Unlock()
}

// PolicyStats returns the wrapped replacer's decision counts.
func (s *SyncReplacer) PolicyStats() PolicyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.PolicyStats()
}

// RecordAdmission notes the reference that makes a page resident.
func (s *SyncReplacer) RecordAdmission(p policy.PageID) {
	s.mu.Lock()
	s.r.RecordAdmission(p)
	s.mu.Unlock()
}

// batchSlots returns 1: the wrapped replacer is a single table, and a
// single FIFO preserves the exact global event order, so a Batched
// SyncReplacer replays precisely the call history an unbatched one would
// see — the property the differential tests assert.
func (s *SyncReplacer) batchSlots() int { return 1 }

func (s *SyncReplacer) batchSlot(policy.PageID) int { return 0 }

func (s *SyncReplacer) arrivalClock() *atomic.Int64 { return &s.clock }

// applyBatch drains buffered events into the wrapped replacer under one
// mutex acquisition and returns the number of stale accesses dropped.
func (s *SyncReplacer) applyBatch(_ int, evs []batchEvent) (dropped int) {
	s.mu.Lock()
	for i := range evs {
		dropped += s.r.applyEvent(evs[i])
	}
	s.r.batchEnd()
	s.mu.Unlock()
	return dropped
}

// ShardedReplacer partitions pages by hash across independently locked
// LRU-K sub-replacers, the same latch-partitioning scheme Cache uses for
// its shards. Victim order is per-shard rather than global: Evict sweeps
// the shards round-robin and returns the first shard-local LRU-K victim,
// trading a bounded deviation from the global order for the removal of the
// single replacer lock from every reference.
type ShardedReplacer struct {
	shards []syncShard
	mask   uint64
	next   atomic.Uint64
	// clock is one arrival clock shared by every sub-replacer, so the
	// Backward K-distances different shards report through a PolicyTracer
	// are on a single timescale. (Before this, each shard advanced a
	// private clock at its own reference rate, making /trace distances
	// from different shards incomparable.)
	clock atomic.Int64
}

type syncShard struct {
	mu sync.Mutex
	r  *Replacer
	// Pad to a multiple of 64 bytes so adjacent shard locks do not share a
	// cache line under contention.
	_ [40]byte
}

// NewShardedReplacer returns a replacer with the given power-of-two shard
// count (0 selects 16), history depth k and §2.1 periods.
func NewShardedReplacer(shards, k int, opts Options) *ShardedReplacer {
	if shards == 0 {
		shards = 16
	}
	if shards < 1 || shards&(shards-1) != 0 {
		panic("core: replacer shard count must be a positive power of two")
	}
	r := &ShardedReplacer{
		shards: make([]syncShard, shards),
		mask:   uint64(shards - 1),
	}
	for i := range r.shards {
		r.shards[i].r = NewReplacer(k, opts)
		r.shards[i].r.clockSrc = &r.clock
	}
	return r
}

// ConcurrentSafe marks ShardedReplacer as safe for concurrent use.
func (r *ShardedReplacer) ConcurrentSafe() {}

func (r *ShardedReplacer) shard(p policy.PageID) *syncShard {
	return &r.shards[hashInt64(int64(p))&r.mask]
}

// RecordAccess notes a reference to a resident page.
func (r *ShardedReplacer) RecordAccess(p policy.PageID) {
	s := r.shard(p)
	s.mu.Lock()
	s.r.RecordAccess(p)
	s.mu.Unlock()
}

// SetEvictable marks whether p may be chosen as a victim.
func (r *ShardedReplacer) SetEvictable(p policy.PageID, evictable bool) {
	s := r.shard(p)
	s.mu.Lock()
	s.r.SetEvictable(p, evictable)
	s.mu.Unlock()
}

// Restore reinstates residency after an abandoned eviction without
// advancing the owning shard's clock or touching the page's HIST block.
func (r *ShardedReplacer) Restore(p policy.PageID) {
	s := r.shard(p)
	s.mu.Lock()
	s.r.Restore(p)
	s.mu.Unlock()
}

// Evict sweeps the shards starting from a rotating origin and returns the
// first shard-local victim; ok is false when no shard has an evictable
// page.
func (r *ShardedReplacer) Evict() (policy.PageID, bool) {
	start := r.next.Add(1)
	for i := uint64(0); i < uint64(len(r.shards)); i++ {
		s := &r.shards[(start+i)&r.mask]
		s.mu.Lock()
		v, ok := s.r.Evict()
		s.mu.Unlock()
		if ok {
			return v, true
		}
	}
	return policy.InvalidPage, false
}

// Remove drops p without treating it as an eviction decision.
func (r *ShardedReplacer) Remove(p policy.PageID) {
	s := r.shard(p)
	s.mu.Lock()
	s.r.Remove(p)
	s.mu.Unlock()
}

// Size returns the number of evictable pages across all shards.
func (r *ShardedReplacer) Size() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += s.r.Size()
		s.mu.Unlock()
	}
	return n
}

// HistorySize returns the number of retained history control blocks across
// all shards.
func (r *ShardedReplacer) HistorySize() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += s.r.HistorySize()
		s.mu.Unlock()
	}
	return n
}

// SetTracer installs a PolicyTracer on every shard; the implementation must
// tolerate concurrent calls from different shard locks.
func (r *ShardedReplacer) SetTracer(tr PolicyTracer) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		s.r.SetTracer(tr)
		s.mu.Unlock()
	}
}

// PolicyStats sums decision counts and table sizes across all shards.
func (r *ShardedReplacer) PolicyStats() PolicyStats {
	var total PolicyStats
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		st := s.r.PolicyStats()
		s.mu.Unlock()
		total.add(st)
	}
	return total
}

// RecordAdmission notes the reference that makes a page resident.
func (r *ShardedReplacer) RecordAdmission(p policy.PageID) {
	s := r.shard(p)
	s.mu.Lock()
	s.r.RecordAdmission(p)
	s.mu.Unlock()
}

// batchSlots returns one buffer slot per shard: a page's events all land
// in its shard's slot, so each shard's table sees its exact event order
// and a batch drain takes exactly one shard lock.
func (r *ShardedReplacer) batchSlots() int { return len(r.shards) }

func (r *ShardedReplacer) batchSlot(p policy.PageID) int {
	return int(hashInt64(int64(p)) & r.mask)
}

func (r *ShardedReplacer) arrivalClock() *atomic.Int64 { return &r.clock }

// applyBatch drains buffered events into the slot's shard under one lock
// acquisition and returns the number of stale accesses dropped.
func (r *ShardedReplacer) applyBatch(slot int, evs []batchEvent) (dropped int) {
	s := &r.shards[slot]
	s.mu.Lock()
	for i := range evs {
		dropped += s.r.applyEvent(evs[i])
	}
	s.r.batchEnd()
	s.mu.Unlock()
	return dropped
}
