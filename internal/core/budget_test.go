package core

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/stats"
)

func TestResizeShrinkEvicts(t *testing.T) {
	c := NewLRUK(10, 2)
	for p := policy.PageID(0); p < 10; p++ {
		c.Reference(p)
	}
	c.Resize(4)
	if c.Len() != 4 {
		t.Fatalf("Len after shrink = %d, want 4", c.Len())
	}
	if c.Capacity() != 4 {
		t.Fatalf("Capacity = %d, want 4", c.Capacity())
	}
	// The survivors must be the four most recent (all infinite distance,
	// subsidiary LRU evicts oldest first).
	for p := policy.PageID(6); p < 10; p++ {
		if !c.Resident(p) {
			t.Errorf("page %d should have survived the shrink", p)
		}
	}
}

func TestResizeGrow(t *testing.T) {
	c := NewLRUK(2, 2)
	c.Reference(1)
	c.Reference(2)
	c.Resize(4)
	c.Reference(3)
	c.Reference(4)
	if c.Len() != 4 {
		t.Fatalf("Len after grow = %d, want 4", c.Len())
	}
	for p := policy.PageID(1); p <= 4; p++ {
		if !c.Resident(p) {
			t.Errorf("page %d missing after grow", p)
		}
	}
}

func TestResizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resize(0) did not panic")
		}
	}()
	NewLRUK(2, 2).Resize(0)
}

func TestBudgetedValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBudgetedLRUK(1, 2, 100, Options{}) },
		func() { NewBudgetedLRUK(10, 2, 0, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid budget args accepted")
				}
			}()
			f()
		}()
	}
}

// TestBudgetedTradesFramesForHistory: scanning a huge universe of distinct
// pages grows retained history, which must eat into the page capacity; the
// total budget is never exceeded.
func TestBudgetedTradesFramesForHistory(t *testing.T) {
	const budget, histPerFrame = 32, 4
	b := NewBudgetedLRUK(budget, 2, histPerFrame, Options{
		RetainedInformationPeriod: 512,
	})
	if b.Name() != "LRU-2/budget" {
		t.Errorf("Name = %q", b.Name())
	}
	sawReduced := false
	for i := 0; i < 5000; i++ {
		b.Reference(policy.PageID(i)) // all distinct: pure history pressure
		pages, history, _ := b.MemoryFrames()
		// One frame of slack: the budget check runs before the reference
		// that may add one more retained block.
		if pages+history > budget+1 {
			t.Fatalf("ref %d: pages %d + history %d exceeds budget %d", i, pages, history, budget)
		}
		if history > 0 && b.EffectiveCapacity() < budget {
			sawReduced = true
		}
	}
	if !sawReduced {
		t.Error("capacity never shrank despite history pressure")
	}
	if b.FrameBudget() != budget {
		t.Errorf("FrameBudget = %d", b.FrameBudget())
	}
}

// TestBudgetedRecoversCapacity: once the workload narrows to a small hot
// set, the retention demon purges stale history and capacity recovers.
func TestBudgetedRecoversCapacity(t *testing.T) {
	const budget = 32
	b := NewBudgetedLRUK(budget, 2, 4, Options{
		RetainedInformationPeriod: 256,
	})
	// Phase 1: history pressure.
	for i := 0; i < 4000; i++ {
		b.Reference(policy.PageID(i))
	}
	squeezed := b.EffectiveCapacity()
	if squeezed >= budget {
		t.Fatalf("phase 1 did not squeeze capacity (%d)", squeezed)
	}
	// Phase 2: small hot set; stale history ages out past the RIP.
	for i := 0; i < 4000; i++ {
		b.Reference(policy.PageID(100000 + i%8))
	}
	recovered := b.EffectiveCapacity()
	if recovered <= squeezed {
		t.Errorf("capacity did not recover: %d -> %d", squeezed, recovered)
	}
}

// TestBudgetedStillBeatsLRU1: under the budget tax, LRU-2 keeps its
// two-pool advantage over plain LRU-1 given the same total memory.
func TestBudgetedStillBeatsLRU1(t *testing.T) {
	r := stats.NewRNG(9)
	refs := make([]policy.PageID, 60000)
	for i := range refs {
		if i%2 == 0 {
			refs[i] = policy.PageID(r.Intn(50)) // hot pool
		} else {
			refs[i] = policy.PageID(50 + r.Intn(5000)) // cold pool
		}
	}
	const budget = 60
	budgeted := NewBudgetedLRUK(budget, 2, 100, Options{})
	lru := policy.NewLRU(budget)
	var hitsB, hitsL int
	for i, p := range refs {
		hb, hl := budgeted.Reference(p), lru.Reference(p)
		if i >= 20000 {
			if hb {
				hitsB++
			}
			if hl {
				hitsL++
			}
		}
	}
	if hitsB <= hitsL {
		t.Errorf("budgeted LRU-2 hits %d not above LRU-1 hits %d at equal memory", hitsB, hitsL)
	}
}
