package core

import (
	"fmt"

	"repro/internal/policy"
)

// Replacer is the buffer-pool-facing form of LRU-K: a victim selector over
// pages whose residency, pinning and eviction are controlled externally by
// a buffer-pool manager. Pinned pages (evictable=false) never appear in
// the victim index; the pool marks a page evictable once its pin count
// drops to zero.
//
// This is the shape a real database engine embeds (the paper's prototype
// inside the Amdahl Huron buffer manager); the trace simulator uses the
// simpler LRUK type instead.
//
// Replacer is not safe for concurrent use; the buffer pool serialises
// access under its own latch.
type Replacer struct {
	k     int
	table *histTable
	// evictable tracks which resident pages are currently in the index.
	evictable map[policy.PageID]bool
	// evictions counts victim selections (see PolicyStats).
	evictions uint64
}

// NewReplacer returns an LRU-K replacer for a pool with the given history
// depth and §2.1 periods.
func NewReplacer(k int, opts Options) *Replacer {
	if k < 1 {
		panic(fmt.Sprintf("core: K must be at least 1, got %d", k))
	}
	return &Replacer{
		k:         k,
		table:     newHistTable(k, opts.CorrelatedReferencePeriod, opts.RetainedInformationPeriod),
		evictable: make(map[policy.PageID]bool),
	}
}

// RecordAccess notes a reference to page p, which the pool has made (or is
// about to make) resident. It advances the logical clock by one reference.
func (r *Replacer) RecordAccess(p policy.PageID) {
	now := r.table.tick()
	if h, ok := r.table.pages[p]; ok && h.resident {
		r.table.touchResident(p, h, now, r.evictable[p])
		return
	}
	// New residency; pages enter pinned, so not indexed yet.
	r.table.admit(p, now, false)
}

// SetEvictable marks page p as evictable (pin count zero) or not. Calls
// for pages the replacer has never seen are ignored, matching the
// tolerance a pool needs during recovery paths.
func (r *Replacer) SetEvictable(p policy.PageID, evictable bool) {
	h, ok := r.table.pages[p]
	if !ok || !h.resident {
		return
	}
	if r.evictable[p] == evictable {
		return
	}
	if evictable {
		r.evictable[p] = true
		r.table.index.Set(h.key(p), struct{}{})
	} else {
		delete(r.evictable, p)
		r.table.index.Delete(h.key(p))
	}
}

// Restore reinstates page p as resident after an eviction was abandoned
// (the buffer pool found the victim re-pinned, or its dirty write-back
// failed and the data exists only in memory). Unlike RecordAccess it does
// not advance the clock and leaves the HIST block exactly as it was before
// Evict removed it: the abandonment is not a page reference, and
// fabricating one would corrupt the page's Backward K-distance. The page
// re-enters the victim index only through a later SetEvictable.
//
// If the history block was purged between Evict and Restore (possible
// under a short Retained Information Period), a fresh block is allocated
// at the current clock, as for a first reference.
func (r *Replacer) Restore(p policy.PageID) {
	h, ok := r.table.pages[p]
	if !ok {
		r.table.admit(p, r.table.clock, false)
		return
	}
	if h.resident {
		return // re-admitted by a racing reference; nothing to reinstate
	}
	// The retirement entry Evict queued stays behind as a stale record; the
	// retention demon's lazy validation skips it while the page is resident.
	h.resident = true
}

// Evict selects, removes and returns the victim page: the evictable page
// with the maximal Backward K-distance, honouring the Correlated Reference
// Period eligibility rule. ok is false when nothing is evictable.
func (r *Replacer) Evict() (policy.PageID, bool) {
	victim, ok := r.table.selectVictim(r.table.clock)
	if !ok {
		return policy.InvalidPage, false
	}
	h := r.table.pages[victim]
	r.evictions++
	if tr := r.table.tracer; tr != nil {
		// Capture the Backward K-distance (Definition 2.1) that justified
		// the choice before the block leaves residency.
		kdist, finite := r.table.backwardKDistance(victim)
		tr.TraceEvict(victim, r.table.clock, kdist, !finite)
	}
	r.table.index.Delete(h.key(victim))
	delete(r.evictable, victim)
	r.table.evictResident(victim, h)
	return victim, true
}

// Remove drops page p from the replacer entirely (page deallocated rather
// than evicted); its history is retired as on eviction, since a reallocated
// page id may recur.
func (r *Replacer) Remove(p policy.PageID) {
	h, ok := r.table.pages[p]
	if !ok || !h.resident {
		return
	}
	if r.evictable[p] {
		r.table.index.Delete(h.key(p))
		delete(r.evictable, p)
	}
	r.table.evictResident(p, h)
}

// Size returns the number of evictable pages.
func (r *Replacer) Size() int { return len(r.evictable) }

// HistorySize returns the number of retained history control blocks.
func (r *Replacer) HistorySize() int { return r.table.historyLen() }

// SetTracer installs (or, with nil, removes) a PolicyTracer receiving this
// replacer's eviction, collapse and purge decisions.
func (r *Replacer) SetTracer(tr PolicyTracer) { r.table.tracer = tr }

// PolicyStats returns the replacer's cumulative decision counts and current
// table sizes.
func (r *Replacer) PolicyStats() PolicyStats {
	return PolicyStats{
		Evictions:     r.evictions,
		Collapses:     r.table.collapses,
		Purges:        r.table.purges,
		HistoryBlocks: r.table.historyLen(),
		Evictable:     len(r.evictable),
	}
}
