package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/policy"
)

// Replacer is the buffer-pool-facing form of LRU-K: a victim selector over
// pages whose residency, pinning and eviction are controlled externally by
// a buffer-pool manager. Pinned pages (evictable=false) never appear in
// the victim index; the pool marks a page evictable once its pin count
// drops to zero.
//
// This is the shape a real database engine embeds (the paper's prototype
// inside the Amdahl Huron buffer manager); the trace simulator uses the
// simpler LRUK type instead.
//
// Replacer is not safe for concurrent use; the buffer pool serialises
// access under its own latch.
type Replacer struct {
	k     int
	table *histTable
	// evictable tracks which resident pages are currently in the index.
	evictable map[policy.PageID]bool
	// evictions counts victim selections (see PolicyStats).
	evictions uint64
	// clockSrc, when set, replaces the table's private tick with a shared
	// atomic arrival clock. ShardedReplacer installs one clock across all
	// sub-replacers so Backward K-distances traced from different shards
	// are on one timescale, and the Batched wrapper stamps buffered events
	// from it so a drained reference is applied at its arrival time rather
	// than its drain time.
	clockSrc *atomic.Int64
	// staged, during a batch drain, records each touched page's victim-index
	// entry as it stood when the batch began (see stage / batchEnd in
	// accessbuffer.go): events apply with map and HIST updates only, and the
	// index — a pure function of the evictable set and the HIST table — is
	// reconciled once per page at batch end. Empty outside a drain.
	staged map[policy.PageID]stagedIndex
}

// stagedIndex is a page's victim-index entry at batch start.
type stagedIndex struct {
	key     vkey
	indexed bool
}

// NewReplacer returns an LRU-K replacer for a pool with the given history
// depth and §2.1 periods.
func NewReplacer(k int, opts Options) *Replacer {
	if k < 1 {
		panic(fmt.Sprintf("core: K must be at least 1, got %d", k))
	}
	return &Replacer{
		k:         k,
		table:     newHistTable(k, opts.CorrelatedReferencePeriod, opts.RetainedInformationPeriod),
		evictable: make(map[policy.PageID]bool),
		staged:    make(map[policy.PageID]stagedIndex),
	}
}

// RecordAccess notes a reference to page p, which the pool has made (or is
// about to make) resident. It advances the logical clock by one reference.
func (r *Replacer) RecordAccess(p policy.PageID) {
	now := r.tick()
	if h, ok := r.table.pages[p]; ok && h.resident {
		r.table.touchResident(p, h, now, r.evictable[p])
		return
	}
	// New residency; pages enter pinned, so not indexed yet.
	r.table.admit(p, now, false)
}

// RecordAdmission notes the reference that makes page p resident after a
// miss or a fresh allocation. For the unbatched Replacer an admission is
// just a reference — it is identical to RecordAccess — but the Batched
// wrapper records the two distinctly: a buffered admission must create the
// HIST block even though the drain runs later, while a buffered hit whose
// page has since left residency is discarded rather than fabricating a
// phantom reference (see accessbuffer.go).
func (r *Replacer) RecordAdmission(p policy.PageID) { r.RecordAccess(p) }

// tick advances the logical clock by one reference, drawing from the
// shared arrival clock when one is installed and from the table's private
// clock otherwise. With a shared clock the table is advanced (never moved
// backward) to the drawn time, so the retention purge still runs once per
// reference.
func (r *Replacer) tick() policy.Tick {
	if r.clockSrc != nil {
		return r.table.advanceTo(policy.Tick(r.clockSrc.Add(1)))
	}
	return r.table.tick()
}

// SetEvictable marks page p as evictable (pin count zero) or not. Calls
// for pages the replacer has never seen are ignored, matching the
// tolerance a pool needs during recovery paths.
func (r *Replacer) SetEvictable(p policy.PageID, evictable bool) {
	h, ok := r.table.pages[p]
	if !ok || !h.resident {
		return
	}
	if r.evictable[p] == evictable {
		return
	}
	if evictable {
		r.evictable[p] = true
		r.table.index.Set(h.key(p), struct{}{})
	} else {
		delete(r.evictable, p)
		r.table.index.Delete(h.key(p))
	}
}

// Restore reinstates page p as resident after an eviction was abandoned
// (the buffer pool found the victim re-pinned, or its dirty write-back
// failed and the data exists only in memory). Unlike RecordAccess it does
// not advance the clock and leaves the HIST block exactly as it was before
// Evict removed it: the abandonment is not a page reference, and
// fabricating one would corrupt the page's Backward K-distance. The page
// re-enters the victim index only through a later SetEvictable.
//
// If the history block was purged between Evict and Restore (possible
// under a short Retained Information Period), a fresh block is allocated
// at the current clock, as for a first reference.
func (r *Replacer) Restore(p policy.PageID) {
	h, ok := r.table.pages[p]
	if !ok {
		r.table.admit(p, r.table.clock, false)
		return
	}
	if h.resident {
		return // re-admitted by a racing reference; nothing to reinstate
	}
	// The retirement entry Evict queued stays behind as a stale record; the
	// retention demon's lazy validation skips it while the page is resident.
	h.resident = true
}

// Evict selects, removes and returns the victim page: the evictable page
// with the maximal Backward K-distance, honouring the Correlated Reference
// Period eligibility rule. ok is false when nothing is evictable.
func (r *Replacer) Evict() (policy.PageID, bool) {
	if r.clockSrc != nil {
		// A shard's table only advances when it sees a reference, so at
		// eviction time it may lag the shared arrival clock. The decision —
		// CRP eligibility and the traced Backward K-distance — is defined at
		// the current global time (Definition 2.1 is over the full reference
		// string), so catch the table up first. Skipped when already current:
		// advanceTo also runs the retention purge, and the single-table case
		// must stay bit-exact with the unshared-clock Replacer, which purges
		// only on references.
		if g := policy.Tick(r.clockSrc.Load()); g > r.table.clock {
			r.table.advanceTo(g)
		}
	}
	victim, ok := r.table.selectVictim(r.table.clock)
	if !ok {
		return policy.InvalidPage, false
	}
	h := r.table.pages[victim]
	r.evictions++
	if tr := r.table.tracer; tr != nil {
		// Capture the Backward K-distance (Definition 2.1) that justified
		// the choice before the block leaves residency.
		kdist, finite := r.table.backwardKDistance(victim)
		tr.TraceEvict(victim, r.table.clock, kdist, !finite)
	}
	r.table.index.Delete(h.key(victim))
	delete(r.evictable, victim)
	r.table.evictResident(victim, h)
	return victim, true
}

// Remove drops page p from the replacer entirely (page deallocated rather
// than evicted); its history is retired as on eviction, since a reallocated
// page id may recur.
func (r *Replacer) Remove(p policy.PageID) {
	h, ok := r.table.pages[p]
	if !ok || !h.resident {
		return
	}
	if r.evictable[p] {
		r.table.index.Delete(h.key(p))
		delete(r.evictable, p)
	}
	r.table.evictResident(p, h)
}

// Size returns the number of evictable pages.
func (r *Replacer) Size() int { return len(r.evictable) }

// HistorySize returns the number of retained history control blocks.
func (r *Replacer) HistorySize() int { return r.table.historyLen() }

// SetTracer installs (or, with nil, removes) a PolicyTracer receiving this
// replacer's eviction, collapse and purge decisions.
func (r *Replacer) SetTracer(tr PolicyTracer) { r.table.tracer = tr }

// PolicyStats returns the replacer's cumulative decision counts and current
// table sizes.
func (r *Replacer) PolicyStats() PolicyStats {
	return PolicyStats{
		Evictions:     r.evictions,
		Collapses:     r.table.collapses,
		Purges:        r.table.purges,
		HistoryBlocks: r.table.historyLen(),
		Evictable:     len(r.evictable),
	}
}
