package trace

import (
	"fmt"
	"sort"

	"repro/internal/policy"
)

// Stats summarises a reference string the way §4.3 characterises the bank
// OLTP trace.
type Stats struct {
	// Refs is the length of the reference string.
	Refs int
	// Distinct is the number of distinct pages referenced.
	Distinct int
	// counts holds per-page reference counts sorted descending.
	counts []int
	// cumFrac[i] is the fraction of all references covered by the i+1
	// hottest pages.
	cumFrac []float64
	// interarrivalMean maps each page to its mean interarrival time in
	// ticks (span between first and last reference divided by count-1);
	// pages referenced once are absent.
	interarrivalMean map[policy.PageID]float64
}

// Analyze computes reference statistics for refs.
func Analyze(refs []policy.PageID) *Stats {
	count := make(map[policy.PageID]int)
	first := make(map[policy.PageID]int)
	last := make(map[policy.PageID]int)
	for i, p := range refs {
		if count[p] == 0 {
			first[p] = i
		}
		count[p]++
		last[p] = i
	}
	s := &Stats{
		Refs:             len(refs),
		Distinct:         len(count),
		interarrivalMean: make(map[policy.PageID]float64),
	}
	s.counts = make([]int, 0, len(count))
	for p, c := range count {
		s.counts = append(s.counts, c)
		if c >= 2 {
			s.interarrivalMean[p] = float64(last[p]-first[p]) / float64(c-1)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(s.counts)))
	s.cumFrac = make([]float64, len(s.counts))
	cum := 0
	for i, c := range s.counts {
		cum += c
		s.cumFrac[i] = float64(cum) / float64(len(refs))
	}
	return s
}

// RefFractionOfHottestPages returns the fraction of all references that
// target the hottest pageFrac fraction of distinct pages — the quantity
// behind the paper's "40% of the references access only 3% of the database
// pages". pageFrac must lie in [0, 1].
func (s *Stats) RefFractionOfHottestPages(pageFrac float64) float64 {
	if pageFrac < 0 || pageFrac > 1 {
		panic(fmt.Sprintf("trace: page fraction %v outside [0,1]", pageFrac))
	}
	if s.Distinct == 0 {
		return 0
	}
	n := int(pageFrac * float64(s.Distinct))
	if n == 0 {
		return 0
	}
	if n > len(s.cumFrac) {
		n = len(s.cumFrac)
	}
	return s.cumFrac[n-1]
}

// PageFractionForRefShare returns the smallest fraction of distinct pages
// (hottest first) that covers at least refShare of all references — the
// inverse view: "90% of the references access 65% of the pages".
func (s *Stats) PageFractionForRefShare(refShare float64) float64 {
	if refShare < 0 || refShare > 1 {
		panic(fmt.Sprintf("trace: reference share %v outside [0,1]", refShare))
	}
	if s.Distinct == 0 {
		return 0
	}
	for i, f := range s.cumFrac {
		if f >= refShare {
			return float64(i+1) / float64(s.Distinct)
		}
	}
	return 1
}

// HotSetSize returns the number of pages whose mean reference interarrival
// time is at most window ticks — the tick-time analogue of the paper's
// Five Minute Rule criterion ("re-referenced within 100 seconds"), which
// the paper uses to argue ~1400 pages of the OLTP trace are economically
// worth buffering.
func (s *Stats) HotSetSize(window float64) int {
	n := 0
	for _, m := range s.interarrivalMean {
		if m <= window {
			n++
		}
	}
	return n
}

// TopPageCounts returns the reference counts of the n hottest pages,
// descending (fewer if the trace has fewer distinct pages).
func (s *Stats) TopPageCounts(n int) []int {
	if n > len(s.counts) {
		n = len(s.counts)
	}
	out := make([]int, n)
	copy(out, s.counts[:n])
	return out
}

// String renders a compact profile, including the two skew claims §4.3
// reports for the bank trace.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"refs=%d distinct=%d refShare(hottest 3%% pages)=%.2f pageShare(90%% refs)=%.2f",
		s.Refs, s.Distinct,
		s.RefFractionOfHottestPages(0.03),
		s.PageFractionForRefShare(0.90),
	)
}
