package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/stats"
)

func TestBinaryRoundTrip(t *testing.T) {
	cases := [][]policy.PageID{
		nil,
		{},
		{0},
		{1, 2, 3, 1, 2, 3},
		{1 << 40, 0, 7},
	}
	for _, refs := range cases {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, refs); err != nil {
			t.Fatalf("WriteBinary(%v): %v", refs, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary(%v): %v", refs, err)
		}
		if len(got) != len(refs) {
			t.Fatalf("round trip length %d, want %d", len(got), len(refs))
		}
		for i := range refs {
			if got[i] != refs[i] {
				t.Fatalf("round trip[%d] = %d, want %d", i, got[i], refs[i])
			}
		}
	}
}

func TestBinaryRejectsNegativeIDs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, []policy.PageID{-1}); err == nil {
		t.Error("negative page id accepted")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	cases := []string{
		"",
		"SHORT",
		"NOTMAGIC\x01\x05",
		magic,              // missing count
		magic + "\x05\x01", // count 5 but one ref
	}
	for _, c := range cases {
		if _, err := ReadBinary(strings.NewReader(c)); err == nil {
			t.Errorf("corrupt input %q accepted", c)
		}
	}
	// Bad magic specifically must wrap ErrBadFormat.
	_, err := ReadBinary(strings.NewReader("NOTMAGIC\x01\x05"))
	if !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad magic error = %v, want ErrBadFormat", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	refs := []policy.PageID{5, 0, 12345678901, 5}
	var buf bytes.Buffer
	if err := WriteText(&buf, refs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("length %d, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("[%d] = %d, want %d", i, got[i], refs[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# header\n1\n\n2\n# trailing\n3\n"
	got, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	for _, in := range []string{"abc\n", "1\n-5\n", "1.5\n"} {
		if _, err := ReadText(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q: err = %v, want ErrBadFormat", in, err)
		}
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		refs := make([]policy.PageID, len(raw))
		for i, x := range raw {
			refs[i] = policy.PageID(x)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, refs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeBasics(t *testing.T) {
	refs := []policy.PageID{1, 1, 1, 1, 2, 2, 3, 4}
	s := Analyze(refs)
	if s.Refs != 8 || s.Distinct != 4 {
		t.Fatalf("Refs=%d Distinct=%d, want 8, 4", s.Refs, s.Distinct)
	}
	top := s.TopPageCounts(2)
	if top[0] != 4 || top[1] != 2 {
		t.Errorf("TopPageCounts = %v, want [4 2]", top)
	}
	// The hottest 25% of pages (1 page) covers 4/8 = 50% of references.
	if got := s.RefFractionOfHottestPages(0.25); got != 0.5 {
		t.Errorf("RefFractionOfHottestPages(0.25) = %v, want 0.5", got)
	}
	// Covering 50% of refs needs 1 of 4 pages = 25%.
	if got := s.PageFractionForRefShare(0.5); got != 0.25 {
		t.Errorf("PageFractionForRefShare(0.5) = %v, want 0.25", got)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestAnalyzeEdgeCases(t *testing.T) {
	s := Analyze(nil)
	if s.Refs != 0 || s.Distinct != 0 {
		t.Error("empty trace stats wrong")
	}
	if got := s.RefFractionOfHottestPages(0.5); got != 0 {
		t.Errorf("empty RefFraction = %v", got)
	}
	if got := s.PageFractionForRefShare(0.5); got != 0 {
		t.Errorf("empty PageFraction = %v", got)
	}
	if got := s.HotSetSize(100); got != 0 {
		t.Errorf("empty HotSetSize = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range fraction did not panic")
			}
		}()
		s.RefFractionOfHottestPages(1.5)
	}()
}

func TestHotSetSize(t *testing.T) {
	// Page 1 referenced every 2 ticks (mean interarrival 2); page 2 twice,
	// 9 apart; pages 3..6 once each.
	refs := []policy.PageID{1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 2}
	s := Analyze(refs)
	if got := s.HotSetSize(2); got != 1 {
		t.Errorf("HotSetSize(2) = %d, want 1 (only page 1)", got)
	}
	if got := s.HotSetSize(10); got != 2 {
		t.Errorf("HotSetSize(10) = %d, want 2", got)
	}
	if got := s.HotSetSize(0.5); got != 0 {
		t.Errorf("HotSetSize(0.5) = %d, want 0", got)
	}
}

func TestAnalyzeSkewProfileOnSyntheticSkew(t *testing.T) {
	// 90% of refs on 10 hot pages, 10% on 990 cold ones: the profile must
	// report strong concentration.
	r := stats.NewRNG(5)
	refs := make([]policy.PageID, 100000)
	for i := range refs {
		if r.Float64() < 0.9 {
			refs[i] = policy.PageID(r.Intn(10))
		} else {
			refs[i] = policy.PageID(10 + r.Intn(990))
		}
	}
	s := Analyze(refs)
	if got := s.RefFractionOfHottestPages(0.02); got < 0.85 {
		t.Errorf("hottest 2%% of pages cover %.3f of refs, want >= 0.85", got)
	}
}
