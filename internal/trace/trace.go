// Package trace handles page reference strings: the r1, r2, ..., rt
// sequences of Section 2 of the paper. It provides durable trace files in
// both a compact binary format and a line-oriented text format, plus the
// trace statistics the paper reports for its OLTP experiment (§4.3): skew
// profiles ("40% of the references access only 3% of the database pages")
// and the Five-Minute-Rule hot-set size.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/policy"
)

// magic identifies the binary trace format, version 1.
const magic = "LRUKTRC1"

// ErrBadFormat reports a malformed trace file.
var ErrBadFormat = errors.New("trace: malformed trace file")

// WriteBinary writes refs to w in the compact binary format: an 8-byte
// magic, a uvarint count, then one uvarint per reference.
func WriteBinary(w io.Writer, refs []policy.PageID) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(refs)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: writing count: %w", err)
	}
	for _, p := range refs {
		if p < 0 {
			return fmt.Errorf("trace: negative page id %d", p)
		}
		n := binary.PutUvarint(buf[:], uint64(p))
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("trace: writing reference: %w", err)
		}
	}
	return bw.Flush()
}

// ReadBinary reads a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]policy.PageID, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const sanityCap = 1 << 30
	if count > sanityCap {
		return nil, fmt.Errorf("%w: implausible reference count %d", ErrBadFormat, count)
	}
	refs := make([]policy.PageID, 0, count)
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at reference %d: %v", ErrBadFormat, i, err)
		}
		refs = append(refs, policy.PageID(v))
	}
	return refs, nil
}

// WriteText writes refs to w as decimal page ids, one per line — the
// interchange format for feeding traces from external tools.
func WriteText(w io.Writer, refs []policy.PageID) error {
	bw := bufio.NewWriter(w)
	for _, p := range refs {
		if _, err := fmt.Fprintln(bw, p); err != nil {
			return fmt.Errorf("trace: writing text reference: %w", err)
		}
	}
	return bw.Flush()
}

// ReadText reads a text trace: one decimal page id per line, blank lines
// and lines starting with '#' ignored.
func ReadText(r io.Reader) ([]policy.PageID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var refs []policy.PageID
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || line[0] == '#' {
			continue
		}
		v, err := strconv.ParseInt(line, 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadFormat, lineNo, line)
		}
		refs = append(refs, policy.PageID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scanning: %w", err)
	}
	return refs, nil
}
