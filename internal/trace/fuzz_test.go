package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/policy"
)

// FuzzReadBinary: arbitrary bytes must never panic the reader; valid
// traces must round-trip.
func FuzzReadBinary(f *testing.F) {
	var seedBuf bytes.Buffer
	_ = WriteBinary(&seedBuf, []policy.PageID{1, 2, 3, 1 << 40})
	f.Add(seedBuf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LRUKTRC1"))
	f.Add([]byte("LRUKTRC1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		refs, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything successfully read must re-encode and re-read identically.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, refs); err != nil {
			t.Fatalf("re-encode of valid trace failed: %v", err)
		}
		again, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(refs) {
			t.Fatalf("round trip length %d vs %d", len(again), len(refs))
		}
	})
}

// FuzzReadText: arbitrary text must never panic the reader.
func FuzzReadText(f *testing.F) {
	f.Add("1\n2\n3\n")
	f.Add("# comment\n\n42\n")
	f.Add("-1\n")
	f.Add("99999999999999999999999999\n")
	f.Fuzz(func(t *testing.T, data string) {
		refs, err := ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range refs {
			if p < 0 {
				t.Fatalf("reader accepted negative page id %d", p)
			}
		}
	})
}
