package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestPoolMatchesPolicyExactly is the cross-layer consistency check: for
// the same reference string, the buffer pool driven by a core.Replacer
// must hit exactly as often as the standalone core.LRUK policy — the two
// code paths implement one algorithm.
func TestPoolMatchesPolicyExactly(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		g := workload.NewTwoPool(50, 2000, 77)
		e := NewExperiment("tp", g, 1000, 9000)
		poolRes, err := e.RunPool(60, k, core.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		policyRes := e.Run(LRUK(k), 60)
		if poolRes.Hits != policyRes.Hits {
			t.Errorf("K=%d: pool hits %d, policy hits %d — the two LRU-K code paths diverge",
				k, poolRes.Hits, policyRes.Hits)
		}
	}
}

// TestPoolDirtyWriteBacks: write traffic must produce write-backs and they
// must show up in the I/O accounting.
func TestPoolDirtyWriteBacks(t *testing.T) {
	g := workload.NewZipfian(2000, 0.8, 0.2, 5)
	e := NewExperiment("zipf", g, 500, 4500)
	res, err := e.RunPool(50, 2, core.Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteBacks == 0 {
		t.Error("no write-backs despite dirty traffic and eviction pressure")
	}
	if res.DiskReads == 0 || res.ServiceMicros == 0 {
		t.Errorf("I/O accounting empty: %+v", res)
	}
	clean, err := e.RunPool(50, 2, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.WriteBacks != 0 {
		t.Errorf("read-only replay produced %d write-backs", clean.WriteBacks)
	}
}

// TestPoolHitRatioBeatsLRU1: the pool-level cost/performance story of the
// paper holds end to end — LRU-2 needs fewer disk reads than LRU-1 at the
// same frame count.
func TestPoolHitRatioBeatsLRU1(t *testing.T) {
	g := workload.NewTwoPool(100, 10000, 3)
	e := NewExperiment("tp", g, 1000, 12000)
	res2, err := e.RunPool(100, 2, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := e.RunPool(100, 1, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Hits <= res1.Hits {
		t.Errorf("pool LRU-2 hits %d not above LRU-1 %d", res2.Hits, res1.Hits)
	}
	if res2.DiskReads >= res1.DiskReads {
		t.Errorf("pool LRU-2 disk reads %d not below LRU-1 %d", res2.DiskReads, res1.DiskReads)
	}
}
