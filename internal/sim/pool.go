package sim

import (
	"fmt"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/policy"
	simdisk "repro/internal/storage/sim"
)

// PoolResult reports a reference-string replay through the full buffer-pool
// stack (pool + replacer + simulated disk) rather than a bare policy: hit
// ratio plus the physical I/O consequences the paper's cost/performance
// argument is ultimately about.
type PoolResult struct {
	Result
	DiskReads     uint64
	WriteBacks    uint64
	ServiceMicros int64
}

// RunPool replays the experiment's trace through a buffer pool of the
// given frame count using an LRU-K replacer of depth k, touching every
// referenced page once per reference (fetch, optionally dirty, unpin).
// dirtyEvery > 0 marks every n-th reference as a write, exercising
// write-back I/O. The universe of pages is allocated densely up front.
//
// The replay is single-threaded through the concurrent pool with a
// mutex-wrapped (globally ordered) replacer, so hit/miss/eviction
// accounting is bit-for-bit the single-latch pool's; the latch partition
// count cannot influence replacement decisions.
func (e *Experiment) RunPool(frames, k int, opts core.Options, dirtyEvery int) (PoolResult, error) {
	maxPage := policy.PageID(-1)
	for _, p := range e.Trace {
		if p > maxPage {
			maxPage = p
		}
	}
	d := simdisk.New(simdisk.ServiceModel{})
	for i := policy.PageID(0); i <= maxPage; i++ {
		d.Allocate()
	}
	pool := bufferpool.NewWithConfig(d, frames,
		core.NewSyncReplacer(k, opts), bufferpool.Config{})
	res := PoolResult{Result: Result{
		Policy:     fmt.Sprintf("pool/LRU-%d", k),
		Buffer:     frames,
		Measured:   len(e.Trace) - e.Warmup,
		WarmupRefs: e.Warmup,
	}}
	loadReads := d.Stats().Reads
	for i, p := range e.Trace {
		before := pool.Stats().Hits
		pg, err := pool.Fetch(p)
		if err != nil {
			return res, fmt.Errorf("sim: pool replay at ref %d: %w", i, err)
		}
		dirty := dirtyEvery > 0 && i%dirtyEvery == dirtyEvery-1
		if dirty {
			pg.Data()[0]++
		}
		pg.Unpin(dirty)
		if i >= e.Warmup && pool.Stats().Hits > before {
			res.Hits++
		}
	}
	st := d.Stats()
	res.DiskReads = st.Reads - loadReads
	res.WriteBacks = pool.Stats().WriteBacks
	res.ServiceMicros = st.ServiceMicros
	return res, nil
}
