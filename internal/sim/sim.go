// Package sim is the trace-driven simulation harness behind Section 4 of
// the paper: it replays one fixed reference string through competing
// replacement policies "in identical circumstances", applies the paper's
// warm-up protocol (drop the first references until the cache reaches a
// quasi-stable state, then measure), computes buffer hit ratios, and
// searches for equi-effective buffer sizes to produce the B(1)/B(2)
// cost/performance columns of Tables 4.1-4.3.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/workload"
)

// Result reports one simulation run of one policy at one buffer size.
type Result struct {
	Policy string
	Buffer int
	// Measured is the number of references inside the measurement window.
	Measured int
	// Hits is the number of measured references that hit in buffer.
	Hits int
	// WarmupRefs is the number of leading references excluded.
	WarmupRefs int
}

// HitRatio returns the buffer hit ratio C = h/T of §4.1.
func (r Result) HitRatio() float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Measured)
}

// String renders the run for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s B=%d hit=%.4f (%d/%d)", r.Policy, r.Buffer, r.HitRatio(), r.Hits, r.Measured)
}

// Factory constructs a policy instance for a given buffer size, so one
// experiment can sweep buffer sizes.
type Factory func(buffer int) policy.Cache

// Standard factories for every policy in the repository.

// LRUK returns a factory for the paper's LRU-K policy with the analysis
// configuration (CRP=0, unlimited retention), as used in all Section 4
// experiments.
func LRUK(k int) Factory {
	return func(b int) policy.Cache { return core.NewLRUK(b, k) }
}

// LRUKOpts returns a factory for LRU-K with explicit §2.1 periods.
func LRUKOpts(k int, opts core.Options) Factory {
	return func(b int) policy.Cache { return core.NewLRUKWithOptions(b, k, opts) }
}

// LRU returns a factory for classical LRU (LRU-1).
func LRU() Factory { return func(b int) policy.Cache { return policy.NewLRU(b) } }

// LFU returns a factory for in-cache LFU.
func LFU() Factory { return func(b int) policy.Cache { return policy.NewLFU(b) } }

// FIFO returns a factory for FIFO.
func FIFO() Factory { return func(b int) policy.Cache { return policy.NewFIFO(b) } }

// MRU returns a factory for MRU.
func MRU() Factory { return func(b int) policy.Cache { return policy.NewMRU(b) } }

// Clock returns a factory for second-chance CLOCK.
func Clock() Factory { return func(b int) policy.Cache { return policy.NewClock(b) } }

// GClock returns a factory for GCLOCK with the given counter parameters.
func GClock(initial, max int) Factory {
	return func(b int) policy.Cache { return policy.NewGClock(b, initial, max) }
}

// TwoQ returns a factory for 2Q with the authors' recommended tuning.
func TwoQ() Factory { return func(b int) policy.Cache { return policy.NewTwoQ(b) } }

// ARC returns a factory for ARC.
func ARC() Factory { return func(b int) policy.Cache { return policy.NewARC(b) } }

// LRD returns a factory for LRD-V2 with default aging.
func LRD() Factory { return func(b int) policy.Cache { return policy.NewLRD(b, 0, 2) } }

// FBR returns a factory for Frequency-Based Replacement ([ROBDEV]) with
// default section sizing and aging.
func FBR() Factory { return func(b int) policy.Cache { return policy.NewFBR(b, 0) } }

// SLRU returns a factory for Segmented LRU with the common 80% protected
// segment.
func SLRU() Factory { return func(b int) policy.Cache { return policy.NewSLRU(b, 0.8) } }

// LIRS returns a factory for the LIRS policy with the authors' 1% HIR
// share and a 3x ghost bound.
func LIRS() Factory { return func(b int) policy.Cache { return policy.NewLIRS(b, 0, 0) } }

// TinyLFU returns a factory for W-TinyLFU with the authors' 1% window.
func TinyLFU() Factory { return func(b int) policy.Cache { return policy.NewTinyLFU(b) } }

// Random returns a factory for random replacement.
func Random(seed uint64) Factory {
	return func(b int) policy.Cache { return policy.NewRandom(b, seed) }
}

// A0 returns a factory for the Definition 3.1 oracle; the experiment
// installs the workload's probability vector.
func A0() Factory { return func(b int) policy.Cache { return policy.NewA0(b) } }

// Belady returns a factory for the offline optimal B0; the experiment
// installs the trace.
func Belady() Factory { return func(b int) policy.Cache { return policy.NewBelady(b) } }

// FactoryByName resolves a policy name as used by the CLI tools:
// lru-1/lru, lru-2, lru-3, ..., lfu, fifo, mru, clock, gclock, 2q, arc,
// lrd, fbr, slru, lirs, tinylfu, random, a0, b0/opt.
func FactoryByName(name string) (Factory, error) {
	switch name {
	case "lru", "lru-1":
		return LRU(), nil
	case "lfu":
		return LFU(), nil
	case "fifo":
		return FIFO(), nil
	case "mru":
		return MRU(), nil
	case "clock":
		return Clock(), nil
	case "gclock":
		return GClock(2, 8), nil
	case "2q":
		return TwoQ(), nil
	case "arc":
		return ARC(), nil
	case "lrd":
		return LRD(), nil
	case "fbr":
		return FBR(), nil
	case "slru":
		return SLRU(), nil
	case "lirs":
		return LIRS(), nil
	case "tinylfu", "w-tinylfu":
		return TinyLFU(), nil
	case "random":
		return Random(1), nil
	case "a0":
		return A0(), nil
	case "b0", "opt", "belady":
		return Belady(), nil
	}
	var k int
	if n, err := fmt.Sscanf(name, "lru-%d", &k); err == nil && n == 1 && k >= 1 {
		return LRUK(k), nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q", name)
}

// Experiment is one workload instance: a fixed reference string replayed
// identically through every policy, with a warm-up prefix excluded from
// measurement, and optionally the workload's true probability vector for
// the A0 oracle.
type Experiment struct {
	Name   string
	Trace  []policy.PageID
	Warmup int
	// Probs, when non-nil, is installed into ProbabilityAware policies.
	Probs map[policy.PageID]float64
	// curve caches the LRU stack-distance curve (see stackdist.go).
	curve *LRUCurve
}

// NewExperiment materialises warmup+measure references from g. When g is
// Stationary its probability vector is attached for A0.
func NewExperiment(name string, g workload.Generator, warmup, measure int) *Experiment {
	if warmup < 0 || measure <= 0 {
		panic(fmt.Sprintf("sim: invalid window warmup=%d measure=%d", warmup, measure))
	}
	e := &Experiment{
		Name:   name,
		Trace:  workload.Generate(g, warmup+measure),
		Warmup: warmup,
	}
	if st, ok := g.(workload.Stationary); ok {
		e.Probs = st.Probabilities()
	}
	return e
}

// NewTraceExperiment wraps an existing reference string (e.g. a trace file)
// with a warm-up prefix length.
func NewTraceExperiment(name string, refs []policy.PageID, warmup int) *Experiment {
	if warmup < 0 || warmup >= len(refs) {
		panic(fmt.Sprintf("sim: warmup %d outside trace of %d refs", warmup, len(refs)))
	}
	return &Experiment{Name: name, Trace: refs, Warmup: warmup}
}

// Run replays the experiment through a fresh policy instance at the given
// buffer size, following the §4.1 protocol: the first Warmup references
// bring the cache to a quasi-stable state, the remainder are measured.
func (e *Experiment) Run(f Factory, buffer int) Result {
	c := f(buffer)
	if pa, ok := c.(policy.ProbabilityAware); ok && e.Probs != nil {
		pa.SetProbabilities(e.Probs)
	}
	if ta, ok := c.(policy.TraceAware); ok {
		ta.SetTrace(e.Trace)
	}
	res := Result{
		Policy:     c.Name(),
		Buffer:     buffer,
		Measured:   len(e.Trace) - e.Warmup,
		WarmupRefs: e.Warmup,
	}
	for i, p := range e.Trace {
		hit := c.Reference(p)
		if hit && i >= e.Warmup {
			res.Hits++
		}
	}
	return res
}

// HitRatio is shorthand for Run(f, buffer).HitRatio().
func (e *Experiment) HitRatio(f Factory, buffer int) float64 {
	return e.Run(f, buffer).HitRatio()
}
