package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

func TestResultHitRatio(t *testing.T) {
	r := Result{Measured: 200, Hits: 50}
	if got := r.HitRatio(); got != 0.25 {
		t.Errorf("HitRatio = %v, want 0.25", got)
	}
	if (Result{}).HitRatio() != 0 {
		t.Error("empty Result HitRatio not 0")
	}
	if !strings.Contains(r.String(), "0.25") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestFactoryByName(t *testing.T) {
	known := []string{"lru", "lru-1", "lru-2", "lru-7", "lfu", "fifo", "mru",
		"clock", "gclock", "2q", "arc", "lrd", "fbr", "slru", "lirs", "tinylfu",
		"random", "a0", "b0", "opt", "belady"}
	for _, name := range known {
		f, err := FactoryByName(name)
		if err != nil {
			t.Errorf("FactoryByName(%q): %v", name, err)
			continue
		}
		c := f(8)
		if c.Capacity() != 8 {
			t.Errorf("%q: capacity %d", name, c.Capacity())
		}
	}
	for _, name := range []string{"", "bogus", "lru-0", "lru-x"} {
		if _, err := FactoryByName(name); err == nil {
			t.Errorf("FactoryByName(%q) accepted", name)
		}
	}
}

func TestExperimentWarmupExclusion(t *testing.T) {
	// Trace: warmup [1 2], measured [1 2 3]. With capacity 2, the measured
	// window hits on 1 and 2 and misses on 3.
	e := NewTraceExperiment("manual", []policy.PageID{1, 2, 1, 2, 3}, 2)
	res := e.Run(LRU(), 2)
	if res.Measured != 3 || res.Hits != 2 {
		t.Errorf("Run = %+v, want Measured=3 Hits=2", res)
	}
	if res.WarmupRefs != 2 {
		t.Errorf("WarmupRefs = %d", res.WarmupRefs)
	}
}

func TestExperimentInstallsProbabilitiesAndTrace(t *testing.T) {
	g := workload.NewTwoPool(10, 100, 1)
	e := NewExperiment("tp", g, 100, 400)
	if e.Probs == nil {
		t.Fatal("stationary workload did not attach probabilities")
	}
	// A0 must behave like an informed oracle: near-perfect on the hot pool
	// with enough buffers.
	res := e.Run(A0(), 10)
	if res.HitRatio() < 0.4 {
		t.Errorf("A0 hit ratio %.3f, want ~0.5 (probabilities not installed?)", res.HitRatio())
	}
	// Belady must accept the trace without panicking and dominate LRU.
	opt := e.Run(Belady(), 10).HitRatio()
	lru := e.Run(LRU(), 10).HitRatio()
	if opt < lru {
		t.Errorf("Belady %.3f below LRU %.3f", opt, lru)
	}
}

func TestExperimentValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewExperiment("x", workload.NewTwoPool(1, 2, 1), -1, 10) },
		func() { NewExperiment("x", workload.NewTwoPool(1, 2, 1), 0, 0) },
		func() { NewTraceExperiment("x", []policy.PageID{1, 2}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid experiment accepted")
				}
			}()
			f()
		}()
	}
}

func TestEquiEffectiveOnAnalyticCurve(t *testing.T) {
	// ratio(b) = b/1000 capped at 1: target 0.35 should land at b≈350.
	ratio := func(b int) float64 {
		r := float64(b) / 1000
		if r > 1 {
			return 1
		}
		return r
	}
	got, ok := EquiEffective(ratio, 0.35, 10, 10000)
	if !ok || math.Abs(got-350) > 1 {
		t.Errorf("EquiEffective = %v,%v, want ~350,true", got, ok)
	}
	// Target above reach: capped at maxB with ok=false.
	got, ok = EquiEffective(ratio, 0.99, 10, 500)
	if ok || got != 500 {
		t.Errorf("unreachable target = %v,%v, want 500,false", got, ok)
	}
	// Start already above target: shrink downward.
	got, ok = EquiEffective(ratio, 0.10, 800, 1000)
	if !ok || math.Abs(got-100) > 1 {
		t.Errorf("shrinking search = %v,%v, want ~100,true", got, ok)
	}
}

func TestTableRenderAndLookup(t *testing.T) {
	tb := &Table{
		Title:        "Table X",
		Note:         "unit test",
		Policies:     []string{"LRU-1", "LRU-2"},
		HasEquiRatio: true,
		Rows: []TableRow{
			{Buffer: 60, Ratios: []float64{0.14, 0.291}, EquiRatio: 2.3},
		},
	}
	out := tb.Render()
	for _, want := range []string{"Table X", "LRU-2", "0.291", "2.30", "B(1)/B(2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	if r, ok := tb.Ratio("LRU-2", 60); !ok || r != 0.291 {
		t.Errorf("Ratio = %v,%v", r, ok)
	}
	if _, ok := tb.Ratio("LFU", 60); ok {
		t.Error("unknown policy column found")
	}
	if _, ok := tb.Ratio("LRU-1", 999); ok {
		t.Error("unknown buffer row found")
	}
}

// TestTable41Shape runs a reduced Table 4.1 and asserts the paper's
// qualitative results: LRU-2 ≫ LRU-1 at small buffers, LRU-3 between
// LRU-2 and A0, and a B(1)/B(2) cost/performance factor of ~2 or more.
func TestTable41Shape(t *testing.T) {
	tb := RunTable41(Table41Config{Buffers: []int{60, 100, 200}, Repeats: 3})
	for _, row := range tb.Rows {
		lru1, lru2, lru3, a0 := row.Ratios[0], row.Ratios[1], row.Ratios[2], row.Ratios[3]
		if lru2 <= lru1 {
			t.Errorf("B=%d: LRU-2 (%.3f) not above LRU-1 (%.3f)", row.Buffer, lru2, lru1)
		}
		if a0 < lru3-0.02 {
			t.Errorf("B=%d: A0 (%.3f) below LRU-3 (%.3f)", row.Buffer, a0, lru3)
		}
		if lru3 < lru2-0.02 {
			t.Errorf("B=%d: LRU-3 (%.3f) well below LRU-2 (%.3f)", row.Buffer, lru3, lru2)
		}
	}
	// Paper: B(1)/B(2) = 2.3 at B=60, 3.0 at B=100, 2.3 at B=200.
	if r := tb.Rows[0].EquiRatio; r < 1.8 {
		t.Errorf("B=60: B(1)/B(2) = %.2f, want >= 1.8 (paper: 2.3)", r)
	}
	if r := tb.Rows[1].EquiRatio; r < 2.0 {
		t.Errorf("B=100: B(1)/B(2) = %.2f, want >= 2.0 (paper: 3.0)", r)
	}
}

// TestTable41AbsoluteValues spot-checks cells against the paper within a
// modest tolerance (simulation noise plus protocol ambiguity).
func TestTable41AbsoluteValues(t *testing.T) {
	tb := RunTable41(Table41Config{Buffers: []int{60, 100, 450}, Repeats: 5})
	check := func(policyName string, buffer int, want, tol float64) {
		got, ok := tb.Ratio(policyName, buffer)
		if !ok {
			t.Fatalf("missing cell %s/B=%d", policyName, buffer)
		}
		if math.Abs(got-want) > tol {
			t.Errorf("%s at B=%d: %.3f, paper %.3f (tol %.3f)", policyName, buffer, got, want, tol)
		}
	}
	check("LRU-1", 60, 0.14, 0.03)
	check("LRU-2", 60, 0.291, 0.03)
	check("A0", 60, 0.300, 0.02)
	check("LRU-1", 100, 0.22, 0.03)
	check("LRU-2", 100, 0.459, 0.04)
	check("A0", 100, 0.500, 0.02)
	check("LRU-1", 450, 0.50, 0.03)
	check("LRU-2", 450, 0.517, 0.03)
}

// TestTable42Shape runs a reduced Table 4.2 and asserts LRU-1 < LRU-2 < A0
// with the paper's milder gains ("the gains of LRU-2 are a little lower"
// than the two-pool experiment).
func TestTable42Shape(t *testing.T) {
	tb := RunTable42(Table42Config{Buffers: []int{40, 100, 300}, Repeats: 3})
	for _, row := range tb.Rows {
		lru1, lru2, a0 := row.Ratios[0], row.Ratios[1], row.Ratios[2]
		if lru2 <= lru1 {
			t.Errorf("B=%d: LRU-2 (%.3f) not above LRU-1 (%.3f)", row.Buffer, lru2, lru1)
		}
		if a0 < lru2 {
			t.Errorf("B=%d: A0 (%.3f) below LRU-2 (%.3f)", row.Buffer, a0, lru2)
		}
	}
	// Paper: A0 = 0.640 at B=40 (the CDF at 40 pages).
	if a0, _ := tb.Ratio("A0", 40); math.Abs(a0-0.640) > 0.02 {
		t.Errorf("A0 at B=40 = %.3f, paper 0.640", a0)
	}
}

// TestKSweepApproachesA0 checks the §4.1 in-text claim with increasing K.
func TestKSweepApproachesA0(t *testing.T) {
	tb := RunKSweep(100, 4, 3, 7)
	row := tb.Rows[0]
	a0 := row.Ratios[len(row.Ratios)-1]
	gap2 := a0 - row.Ratios[1] // A0 - LRU-2
	gap3 := a0 - row.Ratios[2] // A0 - LRU-3
	if gap3 > gap2+0.01 {
		t.Errorf("LRU-3 gap to A0 (%.3f) above LRU-2 gap (%.3f)", gap3, gap2)
	}
	if row.Ratios[2] < row.Ratios[1]-0.01 {
		t.Errorf("LRU-3 (%.3f) below LRU-2 (%.3f) on stable pattern", row.Ratios[2], row.Ratios[1])
	}
}

// TestTable43Shape runs a reduced Table 4.3 against the synthetic OLTP
// workload and asserts the paper's qualitative results: "LRU-2 was
// superior to both LRU and LFU throughout the spectrum of buffer sizes",
// LFU between the two ("surprisingly good" but "still significantly worse
// than LRU-2"), hit ratios converging as B grows, and B(1)/B(2) well above
// 1 at small B and declining.
func TestTable43Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full OLTP trace replay")
	}
	// The default DriftEvery is calibrated for the full 470k-reference
	// trace; the shortened trace needs a proportionally faster drift so the
	// warm set turns over the same fraction of its identity.
	tb := RunTable43(Table43Config{
		OLTP:    workload.OLTPConfig{DriftEvery: 300},
		Refs:    180000,
		Warmup:  30000,
		Buffers: []int{200, 1000, 3000},
	})
	for _, row := range tb.Rows {
		lru1, lru2, lfu := row.Ratios[0], row.Ratios[1], row.Ratios[2]
		if lru2 <= lfu {
			t.Errorf("B=%d: LRU-2 (%.3f) not above LFU (%.3f)", row.Buffer, lru2, lfu)
		}
		if lfu <= lru1 {
			t.Errorf("B=%d: LFU (%.3f) not above LRU-1 (%.3f)", row.Buffer, lfu, lru1)
		}
	}
	// Relative gap shrinks with B (convergence).
	gapSmall := (tb.Rows[0].Ratios[1] - tb.Rows[0].Ratios[0]) / tb.Rows[0].Ratios[1]
	gapLarge := (tb.Rows[2].Ratios[1] - tb.Rows[2].Ratios[0]) / tb.Rows[2].Ratios[1]
	if gapLarge >= gapSmall {
		t.Errorf("relative LRU-2/LRU-1 gap grew with B: %.3f -> %.3f", gapSmall, gapLarge)
	}
	if r := tb.Rows[0].EquiRatio; r < 1.5 {
		t.Errorf("B=200: B(1)/B(2) = %.2f, want >= 1.5", r)
	}
	if tb.Rows[0].EquiRatio <= tb.Rows[2].EquiRatio {
		t.Errorf("B(1)/B(2) not declining: %.2f -> %.2f", tb.Rows[0].EquiRatio, tb.Rows[2].EquiRatio)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{
		Policies:     []string{"LRU-1", "LRU-2"},
		HasEquiRatio: true,
		Rows: []TableRow{
			{Buffer: 60, Ratios: []float64{0.14, 0.291}, EquiRatio: 2.3},
			{Buffer: 80, Ratios: []float64{0.18, 0.382}, EquiRatio: 2.6},
		},
	}
	got := tb.CSV()
	want := "B,LRU-1,LRU-2,B(1)/B(2)\n60,0.140000,0.291000,2.3000\n80,0.180000,0.382000,2.6000\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", got, want)
	}
	tb.HasEquiRatio = false
	if got := tb.CSV(); strings.Contains(got, "B(1)") {
		t.Error("CSV includes equi column when disabled")
	}
}

// TestTablesDeterministic: identical configurations must regenerate
// identical tables — the property EXPERIMENTS.md's recorded numbers rely
// on.
func TestTablesDeterministic(t *testing.T) {
	cfg := Table41Config{Buffers: []int{60, 100}, Repeats: 2, Seed: 5}
	a := RunTable41(cfg)
	b := RunTable41(cfg)
	for i := range a.Rows {
		for j := range a.Rows[i].Ratios {
			if a.Rows[i].Ratios[j] != b.Rows[i].Ratios[j] {
				t.Fatalf("row %d col %d: %v != %v", i, j, a.Rows[i].Ratios[j], b.Rows[i].Ratios[j])
			}
		}
		if a.Rows[i].EquiRatio != b.Rows[i].EquiRatio {
			t.Fatalf("row %d equi: %v != %v", i, a.Rows[i].EquiRatio, b.Rows[i].EquiRatio)
		}
	}
	// A different seed must (in general) change at least one cell.
	cfg.Seed = 6
	c := RunTable41(cfg)
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i].Ratios {
			if a.Rows[i].Ratios[j] != c.Rows[i].Ratios[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced bit-identical tables; seeding is broken")
	}
}
