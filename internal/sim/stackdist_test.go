package sim

import (
	"math"
	"testing"

	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestLRUCurveMatchesReplay is the defining property: for every buffer
// size, the stack-distance curve must equal an actual LRU cache replay of
// the same trace, hit for hit.
func TestLRUCurveMatchesReplay(t *testing.T) {
	r := stats.NewRNG(4242)
	traces := [][]policy.PageID{
		{},
		{1},
		{1, 1, 1},
		{1, 2, 3, 1, 2, 3},
	}
	long := make([]policy.PageID, 8000)
	for i := range long {
		long[i] = policy.PageID(r.Intn(120))
	}
	traces = append(traces, long)
	zipf := workload.Generate(workload.NewZipfian(500, 0.8, 0.2, 3), 10000)
	traces = append(traces, zipf)

	for ti, trace := range traces {
		for _, warmup := range []int{0, len(trace) / 3} {
			if warmup >= len(trace) && len(trace) > 0 {
				continue
			}
			curve := NewLRUCurve(trace, warmup)
			for _, b := range []int{1, 2, 5, 17, 64, 300} {
				var exp *Experiment
				if len(trace) == 0 {
					continue
				}
				exp = &Experiment{Name: "t", Trace: trace, Warmup: warmup}
				want := exp.HitRatio(LRUK(1), b)
				got := curve.HitRatioAt(b)
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("trace %d warmup %d B=%d: curve %.6f, replay %.6f",
						ti, warmup, b, got, want)
				}
			}
		}
	}
}

func TestLRUCurveEdgeCases(t *testing.T) {
	c := NewLRUCurve(nil, 0)
	if got := c.HitRatioAt(10); got != 0 {
		t.Errorf("empty curve ratio = %v", got)
	}
	if got := c.MaxUsefulBuffer(); got != 0 {
		t.Errorf("empty MaxUsefulBuffer = %d", got)
	}
	// A trace of all-distinct pages: all cold misses.
	refs := make([]policy.PageID, 100)
	for i := range refs {
		refs[i] = policy.PageID(i)
	}
	c = NewLRUCurve(refs, 0)
	if got := c.HitRatioAt(1000); got != 0 {
		t.Errorf("all-distinct ratio = %v", got)
	}
	if c.ColdMisses != 100 {
		t.Errorf("ColdMisses = %d, want 100", c.ColdMisses)
	}
	if got := c.HitRatioAt(0); got != 0 {
		t.Errorf("B=0 ratio = %v", got)
	}
}

func TestLRUCurveMaxUsefulBuffer(t *testing.T) {
	// Cyclic references over 5 pages: every reuse distance is exactly 5,
	// so 5 frames achieve the maximum and more buy nothing.
	var refs []policy.PageID
	for i := 0; i < 100; i++ {
		refs = append(refs, policy.PageID(i%5))
	}
	c := NewLRUCurve(refs, 0)
	if got := c.MaxUsefulBuffer(); got != 5 {
		t.Errorf("MaxUsefulBuffer = %d, want 5", got)
	}
	if r5, r50 := c.HitRatioAt(5), c.HitRatioAt(50); r5 != r50 {
		t.Errorf("ratio at 5 (%v) differs from at 50 (%v)", r5, r50)
	}
}

func TestExperimentLRUHitRatioAgreesAndCaches(t *testing.T) {
	g := workload.NewTwoPool(50, 2000, 5)
	e := NewExperiment("tp", g, 500, 4000)
	for _, b := range []int{10, 60, 200} {
		fast := e.LRUHitRatio(b)
		slow := e.HitRatio(LRUK(1), b)
		if math.Abs(fast-slow) > 1e-12 {
			t.Errorf("B=%d: curve %.6f vs replay %.6f", b, fast, slow)
		}
	}
	if e.curve == nil {
		t.Error("curve not cached on the experiment")
	}
}
