package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/workload"
)

// This file drives the three experiments of Section 4 of the paper. Each
// Run function regenerates the corresponding table; the CLI tool
// cmd/tables and the benchmark harness in bench_test.go are thin wrappers
// around these.

// averageRatio returns the mean hit ratio of factory f at buffer size b
// across repeat experiments (independent seeds over the same workload
// parameters), smoothing the short measurement windows the paper uses.
func averageRatio(exps []*Experiment, f Factory, b int) float64 {
	sum := 0.0
	for _, e := range exps {
		sum += e.HitRatio(f, b)
	}
	return sum / float64(len(exps))
}

// Table41Config parameterises the §4.1 two-pool experiment. Zero fields
// take the paper's values.
type Table41Config struct {
	N1, N2  int   // pool sizes; paper: 100 and 10000
	Buffers []int // buffer sizes B; paper: 60..450
	Repeats int   // independent seeds averaged per cell; default 5
	Seed    uint64
	// MaxK extends the table with LRU-K columns up to K (>=3 adds LRU-3 as
	// in the paper; larger K drives the K-sweep ablation). Default 3.
	MaxK int
}

func (c Table41Config) withDefaults() Table41Config {
	if c.N1 == 0 {
		c.N1 = 100
	}
	if c.N2 == 0 {
		c.N2 = 10000
	}
	if len(c.Buffers) == 0 {
		c.Buffers = []int{60, 80, 100, 120, 140, 160, 180, 200, 250, 300, 350, 400, 450}
	}
	if c.Repeats == 0 {
		c.Repeats = 5
	}
	if c.Seed == 0 {
		c.Seed = 41
	}
	if c.MaxK == 0 {
		c.MaxK = 3
	}
	return c
}

// RunTable41 reproduces Table 4.1: hit ratios of LRU-1, LRU-2, ..., LRU-K
// and A0 on the two-pool workload, with the warm-up protocol of §4.1
// (drop 10·N1 references, measure 30·N1) and the B(1)/B(2) equi-effective
// buffer size ratio of LRU-1 versus LRU-2.
func RunTable41(cfg Table41Config) *Table {
	cfg = cfg.withDefaults()
	warmup, measure := 10*cfg.N1, 30*cfg.N1
	exps := make([]*Experiment, cfg.Repeats)
	for i := range exps {
		g := workload.NewTwoPool(cfg.N1, cfg.N2, cfg.Seed+uint64(i))
		exps[i] = NewExperiment("two-pool", g, warmup, measure)
	}

	var factories []Factory
	var names []string
	for k := 1; k <= cfg.MaxK; k++ {
		factories = append(factories, LRUK(k))
		names = append(names, fmt.Sprintf("LRU-%d", k))
	}
	factories = append(factories, A0())
	names = append(names, "A0")

	t := &Table{
		Title:        "Table 4.1",
		Note:         fmt.Sprintf("two-pool experiment, N1=%d, N2=%d", cfg.N1, cfg.N2),
		Policies:     names,
		HasEquiRatio: true,
	}
	// The equi-effective search probes many LRU-1 sizes; the exact
	// stack-distance curve answers each probe in O(1).
	lru1 := func(b int) float64 {
		sum := 0.0
		for _, e := range exps {
			sum += e.LRUHitRatio(b)
		}
		return sum / float64(len(exps))
	}
	maxSearch := 40 * cfg.N1
	for _, b := range cfg.Buffers {
		row := TableRow{Buffer: b, Ratios: make([]float64, len(factories))}
		for i, f := range factories {
			row.Ratios[i] = averageRatio(exps, f, b)
		}
		// B(2) is this row's B; the target is LRU-2's hit ratio here.
		target := row.Ratios[1]
		if b1, ok := EquiEffective(lru1, target, b, maxSearch); ok {
			row.EquiRatio = b1 / float64(b)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table42Config parameterises the §4.2 Zipfian experiment. Zero fields
// take the paper's values.
type Table42Config struct {
	N           int     // page count; paper: 1000
	Alpha, Beta float64 // self-similar skew; paper: 0.8 / 0.2
	Buffers     []int   // paper: 40..500
	Repeats     int     // default 5
	Seed        uint64
}

func (c Table42Config) withDefaults() Table42Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.Alpha == 0 {
		c.Alpha = 0.8
	}
	if c.Beta == 0 {
		c.Beta = 0.2
	}
	if len(c.Buffers) == 0 {
		c.Buffers = []int{40, 60, 80, 100, 120, 140, 160, 180, 200, 300, 500}
	}
	if c.Repeats == 0 {
		c.Repeats = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// RunTable42 reproduces Table 4.2: hit ratios of LRU-1, LRU-2 and A0 under
// self-similar 80-20 random access over N pages, plus B(1)/B(2).
func RunTable42(cfg Table42Config) *Table {
	cfg = cfg.withDefaults()
	warmup, measure := 10*cfg.N, 30*cfg.N
	exps := make([]*Experiment, cfg.Repeats)
	for i := range exps {
		g := workload.NewZipfian(cfg.N, cfg.Alpha, cfg.Beta, cfg.Seed+uint64(i))
		exps[i] = NewExperiment("zipfian", g, warmup, measure)
	}
	factories := []Factory{LRUK(1), LRUK(2), A0()}
	t := &Table{
		Title:        "Table 4.2",
		Note:         fmt.Sprintf("random access with Zipfian frequencies, N=%d, α=%.1f, β=%.1f", cfg.N, cfg.Alpha, cfg.Beta),
		Policies:     []string{"LRU-1", "LRU-2", "A0"},
		HasEquiRatio: true,
	}
	lru1 := func(b int) float64 {
		sum := 0.0
		for _, e := range exps {
			sum += e.LRUHitRatio(b)
		}
		return sum / float64(len(exps))
	}
	for _, b := range cfg.Buffers {
		row := TableRow{Buffer: b, Ratios: make([]float64, len(factories))}
		for i, f := range factories {
			row.Ratios[i] = averageRatio(exps, f, b)
		}
		target := row.Ratios[1]
		if b1, ok := EquiEffective(lru1, target, b, 4*cfg.N); ok {
			row.EquiRatio = b1 / float64(b)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Table43Config parameterises the §4.3 OLTP-trace experiment, run against
// the synthetic bank-style workload of workload.OLTP (the substitution for
// the unavailable production trace; see DESIGN.md §3).
type Table43Config struct {
	OLTP    workload.OLTPConfig
	Refs    int   // trace length; paper: ~470000
	Warmup  int   // references dropped before measuring; default 70000
	Buffers []int // paper: 100..5000
	Seed    uint64
}

func (c Table43Config) withDefaults() Table43Config {
	if c.Refs == 0 {
		c.Refs = 470000
	}
	if c.Warmup == 0 {
		c.Warmup = 70000
	}
	if len(c.Buffers) == 0 {
		c.Buffers = []int{100, 200, 300, 400, 500, 600, 800, 1000, 1200, 1400, 1600, 2000, 3000, 5000}
	}
	if c.Seed == 0 {
		c.Seed = 43
	}
	return c
}

// RunTable43 reproduces Table 4.3: hit ratios of LRU-1, LRU-2 and LFU on
// the OLTP workload, plus B(1)/B(2).
func RunTable43(cfg Table43Config) *Table {
	cfg = cfg.withDefaults()
	g, err := workload.NewOLTP(cfg.OLTP, cfg.Seed)
	if err != nil {
		panic(fmt.Sprintf("sim: table 4.3 workload: %v", err))
	}
	e := NewExperiment("oltp", g, cfg.Warmup, cfg.Refs-cfg.Warmup)
	factories := []Factory{LRUK(1), LRUK(2), LFU()}
	t := &Table{
		Title:        "Table 4.3",
		Note:         fmt.Sprintf("synthetic OLTP trace experiment, %d refs", cfg.Refs),
		Policies:     []string{"LRU-1", "LRU-2", "LFU"},
		HasEquiRatio: true,
	}
	lru1 := e.LRUHitRatio
	maxB := 40000
	for _, b := range cfg.Buffers {
		row := TableRow{Buffer: b, Ratios: make([]float64, len(factories))}
		for i, f := range factories {
			row.Ratios[i] = e.HitRatio(f, b)
		}
		target := row.Ratios[1]
		if b1, ok := EquiEffective(lru1, target, b, maxB); ok {
			row.EquiRatio = b1 / float64(b)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RunKSweep drives the §4.1 in-text claim that LRU-K approaches A0 as K
// grows under stable access patterns: the two-pool hit ratio for K=1..maxK
// and A0 at one buffer size.
func RunKSweep(buffer, maxK int, repeats int, seed uint64) *Table {
	if repeats <= 0 {
		repeats = 5
	}
	cfgBuffers := []int{buffer}
	t41 := RunTable41(Table41Config{Buffers: cfgBuffers, Repeats: repeats, Seed: seed, MaxK: maxK})
	t41.Title = "K-sweep"
	t41.Note = fmt.Sprintf("two-pool, B=%d: LRU-K approaches A0 with increasing K", buffer)
	return t41
}

// RunAdaptivity drives the adaptivity ablation: under a moving hot spot,
// LRU-2 adapts faster than LRU-3 and much faster than LFU (§4.1's
// responsiveness remark and §4.3's "dynamically moving hot spots").
func RunAdaptivity(buffer int, epoch int, seed uint64) *Table {
	g := workload.NewMovingHotSpot(10000, 200, 0.9, epoch, seed)
	e := NewExperiment("moving-hot-spot", g, 5*epoch, 20*epoch)
	factories := []Factory{LRUK(1), LRUK(2), LRUK(3), LFU()}
	names := []string{"LRU-1", "LRU-2", "LRU-3", "LFU"}
	row := TableRow{Buffer: buffer, Ratios: make([]float64, len(factories))}
	for i, f := range factories {
		row.Ratios[i] = e.HitRatio(f, buffer)
	}
	return &Table{
		Title:    "Adaptivity",
		Note:     fmt.Sprintf("moving hot spot, epoch=%d refs, B=%d", epoch, buffer),
		Policies: names,
		Rows:     []TableRow{row},
	}
}

// RunScanResistance drives the Example 1.2 ablation: hot-set locality with
// periodic sequential scans, across the policy family.
func RunScanResistance(buffer int, seed uint64) *Table {
	g := workload.NewScanInterference(50000, 400, 0.95, 2000, 5000, seed)
	e := NewExperiment("scan-interference", g, 50000, 200000)
	factories := []Factory{LRUK(1), LRUK(2), LRUK(3), LFU(), TwoQ(), ARC(), LIRS(), TinyLFU(), FBR(), SLRU(), Clock(), FIFO()}
	names := []string{"LRU-1", "LRU-2", "LRU-3", "LFU", "2Q", "ARC", "LIRS", "W-TinyLFU", "FBR", "SLRU", "CLOCK", "FIFO"}
	row := TableRow{Buffer: buffer, Ratios: make([]float64, len(factories))}
	for i, f := range factories {
		row.Ratios[i] = e.HitRatio(f, buffer)
	}
	return &Table{
		Title:    "Scan resistance",
		Note:     fmt.Sprintf("Example 1.2 workload (hot set 400, DB 50000, periodic scans), B=%d", buffer),
		Policies: names,
		Rows:     []TableRow{row},
	}
}

// RunCRPSweep drives the §2.1.1 ablation: on a workload with correlated
// reference bursts, sweep the Correlated Reference Period and report the
// LRU-2 hit ratio, showing that ignoring correlation (CRP=0) misjudges
// interarrival times while a modest CRP recovers the discrimination.
func RunCRPSweep(buffer int, crps []policy.Tick, seed uint64) *Table {
	base := workload.NewTwoPool(100, 10000, seed)
	g := workload.NewCorrelated(base, 0.5, 4, seed+1)
	e := NewExperiment("correlated-two-pool", g, 4000, 12000)
	t := &Table{
		Title:    "CRP sweep",
		Note:     fmt.Sprintf("two-pool with correlated bursts, LRU-2, B=%d", buffer),
		Policies: make([]string, len(crps)),
	}
	row := TableRow{Buffer: buffer, Ratios: make([]float64, len(crps))}
	for i, crp := range crps {
		t.Policies[i] = fmt.Sprintf("CRP=%d", crp)
		f := LRUKOpts(2, core.Options{CorrelatedReferencePeriod: crp})
		row.Ratios[i] = e.HitRatio(f, buffer)
	}
	t.Rows = []TableRow{row}
	return t
}

// RunRIPSweep drives the §2.1.2 ablation: sweep the Retained Information
// Period on the two-pool workload and report the LRU-2 hit ratio, showing
// that too little retention forgets hot pages' histories (degrading toward
// LRU-1) while enough retention recovers full LRU-2 quality.
func RunRIPSweep(buffer int, rips []policy.Tick, seed uint64) *Table {
	g := workload.NewTwoPool(100, 10000, seed)
	e := NewExperiment("two-pool", g, 1000, 3000)
	t := &Table{
		Title:    "RIP sweep",
		Note:     fmt.Sprintf("two-pool, LRU-2, B=%d (RIP=0 retains forever)", buffer),
		Policies: make([]string, len(rips)),
	}
	row := TableRow{Buffer: buffer, Ratios: make([]float64, len(rips))}
	for i, rip := range rips {
		t.Policies[i] = fmt.Sprintf("RIP=%d", rip)
		f := LRUKOpts(2, core.Options{RetainedInformationPeriod: rip})
		row.Ratios[i] = e.HitRatio(f, buffer)
	}
	t.Rows = []TableRow{row}
	return t
}
