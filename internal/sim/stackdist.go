package sim

import (
	"repro/internal/policy"
	"repro/internal/stats"
)

// LRUCurve is the exact LRU (LRU-1) hit-ratio curve of a reference string
// for every buffer size simultaneously, computed from the stack-distance
// histogram (Mattson et al. 1970): a reference hits an LRU cache of B
// frames exactly when its reuse stack distance is at most B. One O(n log n)
// pass replaces a separate cache simulation per buffer size — this is what
// makes the B(1)/B(2) equi-effective searches of Tables 4.1-4.3 cheap.
type LRUCurve struct {
	// cumulative[b] is the number of measured references an LRU cache of b
	// frames hits (references with stack distance <= b).
	cumulative []int64
	measured   int64
	// ColdMisses counts measured first references (infinite stack
	// distance), which no buffer size can serve.
	ColdMisses int64
}

// NewLRUCurve analyses refs, counting only references at positions >=
// warmup (the §4.1 measurement protocol). The curve is exact: for every
// B, HitRatioAt(B) equals replaying refs through an LRU cache of B frames.
func NewLRUCurve(refs []policy.PageID, warmup int) *LRUCurve {
	n := len(refs)
	// marked positions: 1 at the most recent occurrence of each distinct
	// page seen so far. The stack distance of a reference to p is the
	// number of marked positions at or after p's previous occurrence.
	bit := stats.NewFenwick(n)
	lastPos := make(map[policy.PageID]int, 1024)
	hist := make([]int64, 0, 1024)
	var infinite int64
	var measured int64
	for i, p := range refs {
		prev, seen := lastPos[p]
		var dist int64
		if seen {
			dist = bit.RangeSum(prev, n-1)
			bit.Add(prev, -1)
		}
		if i >= warmup {
			measured++
			if !seen {
				infinite++
			} else {
				d := int(dist)
				for len(hist) <= d {
					hist = append(hist, 0)
				}
				hist[d]++
			}
		}
		bit.Add(i, 1)
		lastPos[p] = i
	}
	cum := make([]int64, len(hist))
	var run int64
	for d := 1; d < len(hist); d++ {
		run += hist[d]
		cum[d] = run
	}
	return &LRUCurve{cumulative: cum, measured: measured, ColdMisses: infinite}
}

// HitRatioAt returns the LRU hit ratio with b buffer frames.
func (c *LRUCurve) HitRatioAt(b int) float64 {
	if c.measured == 0 || b <= 0 {
		return 0
	}
	if b >= len(c.cumulative) {
		if len(c.cumulative) == 0 {
			return 0
		}
		return float64(c.cumulative[len(c.cumulative)-1]) / float64(c.measured)
	}
	return float64(c.cumulative[b]) / float64(c.measured)
}

// MaxUsefulBuffer returns the smallest buffer size achieving the maximal
// hit ratio (beyond it more frames buy nothing on this trace).
func (c *LRUCurve) MaxUsefulBuffer() int {
	if len(c.cumulative) == 0 {
		return 0
	}
	top := c.cumulative[len(c.cumulative)-1]
	for b, v := range c.cumulative {
		if v == top {
			return b
		}
	}
	return len(c.cumulative) - 1
}

// lruCurve lazily computes and caches the experiment's LRU curve.
func (e *Experiment) lruCurve() *LRUCurve {
	if e.curve == nil {
		e.curve = NewLRUCurve(e.Trace, e.Warmup)
	}
	return e.curve
}

// LRUHitRatio returns the exact LRU-1 hit ratio at buffer size b using the
// stack-distance curve — equivalent to e.HitRatio(LRUK(1), b) but O(1)
// after the first call on the experiment.
func (e *Experiment) LRUHitRatio(b int) float64 {
	return e.lruCurve().HitRatioAt(b)
}
