package sim

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result in the layout of the paper's
// Tables 4.1-4.3: one row per buffer size, one hit-ratio column per
// policy, and optionally the equi-effective buffer size ratio B(1)/B(2).
type Table struct {
	// Title names the table, e.g. "Table 4.1".
	Title string
	// Note carries workload parameters for the caption line.
	Note string
	// Policies are the hit-ratio column headers in order.
	Policies []string
	// Rows are ordered by buffer size.
	Rows []TableRow
	// HasEquiRatio reports whether the B(1)/B(2) column is populated.
	HasEquiRatio bool
}

// TableRow is one buffer size's measurements.
type TableRow struct {
	Buffer int
	// Ratios holds one hit ratio per Policies entry.
	Ratios []float64
	// EquiRatio is B(1)/B(2) when the table defines it.
	EquiRatio float64
}

// Render formats the table as aligned text mirroring the paper's layout.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", t.Title, t.Note)
	// Header.
	fmt.Fprintf(&b, "%6s", "B")
	for _, p := range t.Policies {
		fmt.Fprintf(&b, "  %8s", p)
	}
	if t.HasEquiRatio {
		fmt.Fprintf(&b, "  %9s", "B(1)/B(2)")
	}
	b.WriteByte('\n')
	width := 6 + 10*len(t.Policies)
	if t.HasEquiRatio {
		width += 11
	}
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%6d", row.Buffer)
		for _, r := range row.Ratios {
			fmt.Fprintf(&b, "  %8.3f", r)
		}
		if t.HasEquiRatio {
			fmt.Fprintf(&b, "  %9.2f", row.EquiRatio)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row, for
// plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("B")
	for _, p := range t.Policies {
		b.WriteByte(',')
		b.WriteString(p)
	}
	if t.HasEquiRatio {
		b.WriteString(",B(1)/B(2)")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%d", row.Buffer)
		for _, r := range row.Ratios {
			fmt.Fprintf(&b, ",%.6f", r)
		}
		if t.HasEquiRatio {
			fmt.Fprintf(&b, ",%.4f", row.EquiRatio)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Ratio returns the hit ratio of the named policy at the given buffer
// size; ok is false when the table has no such cell.
func (t *Table) Ratio(policyName string, buffer int) (float64, bool) {
	col := -1
	for i, p := range t.Policies {
		if p == policyName {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, row := range t.Rows {
		if row.Buffer == buffer {
			return row.Ratios[col], true
		}
	}
	return 0, false
}
