package sim

import "fmt"

// EquiEffective finds the buffer size at which a policy reaches the target
// hit ratio — the paper's equi-effective buffer size: "by increasing the
// number of buffer pages available, LRU-1 will eventually achieve an
// equivalent cache hit ratio, and we say that this happens when the number
// of buffer pages equals B(1)" (§4.1).
//
// ratio must return the policy's hit ratio at a given buffer size and is
// assumed non-decreasing up to simulation noise (true for every stack
// policy here). The search brackets the target by doubling from startB,
// bisects to adjacent integers, and linearly interpolates between their
// hit ratios, returning a smooth fractional size. maxB caps the search; if
// even maxB falls short, maxB and false are returned.
func EquiEffective(ratio func(buffer int) float64, target float64, startB, maxB int) (float64, bool) {
	if startB < 1 {
		startB = 1
	}
	if maxB < startB {
		panic(fmt.Sprintf("sim: maxB %d below startB %d", maxB, startB))
	}
	lo := startB
	loRatio := ratio(lo)
	if loRatio >= target {
		// Even the starting size meets the target; shrink toward 1.
		for lo > 1 {
			next := lo / 2
			r := ratio(next)
			if r >= target {
				lo, loRatio = next, r
				continue
			}
			return bisect(ratio, target, next, r, lo, loRatio), true
		}
		return float64(lo), true
	}
	// Double until the target is bracketed.
	hi, hiRatio := lo, loRatio
	for hiRatio < target {
		if hi >= maxB {
			return float64(maxB), false
		}
		lo, loRatio = hi, hiRatio
		hi *= 2
		if hi > maxB {
			hi = maxB
		}
		hiRatio = ratio(hi)
	}
	return bisect(ratio, target, lo, loRatio, hi, hiRatio), true
}

// EquiEffectiveSize is the single-experiment convenience form of
// EquiEffective for policy factory f on e's trace.
func (e *Experiment) EquiEffectiveSize(f Factory, target float64, startB, maxB int) (float64, bool) {
	return EquiEffective(func(b int) float64 { return e.HitRatio(f, b) }, target, startB, maxB)
}

// bisect narrows (lo, hi] with ratios (loRatio < target <= hiRatio) down to
// adjacent integers and interpolates.
func bisect(ratio func(int) float64, target float64, lo int, loRatio float64, hi int, hiRatio float64) float64 {
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		r := ratio(mid)
		if r >= target {
			hi, hiRatio = mid, r
		} else {
			lo, loRatio = mid, r
		}
	}
	if hiRatio <= loRatio {
		return float64(hi)
	}
	frac := (target - loRatio) / (hiRatio - loRatio)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return float64(lo) + frac*float64(hi-lo)
}
