package workload

import (
	"math"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

func TestTwoPoolAlternates(t *testing.T) {
	g := NewTwoPool(100, 10000, 1)
	for i := 0; i < 1000; i++ {
		p := g.Next()
		if i%2 == 0 {
			if !g.IsHot(p) {
				t.Fatalf("ref %d: expected Pool 1 page, got %d", i, p)
			}
		} else if g.IsHot(p) {
			t.Fatalf("ref %d: expected Pool 2 page, got %d", i, p)
		}
		if int(p) < 0 || int(p) >= 100+10000 {
			t.Fatalf("page %d out of range", p)
		}
	}
}

func TestTwoPoolProbabilities(t *testing.T) {
	g := NewTwoPool(100, 10000, 1)
	probs := g.Probabilities()
	if len(probs) != 10100 {
		t.Fatalf("probability vector size %d, want 10100", len(probs))
	}
	sum := 0.0
	for p, pr := range probs {
		sum += pr
		if g.IsHot(p) && math.Abs(pr-1.0/200) > 1e-15 {
			t.Fatalf("hot page %d prob %v, want 1/200", p, pr)
		}
		if !g.IsHot(p) && math.Abs(pr-1.0/20000) > 1e-15 {
			t.Fatalf("cold page %d prob %v, want 1/20000", p, pr)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestTwoPoolDeterministic(t *testing.T) {
	a := NewTwoPool(10, 100, 42)
	b := NewTwoPool(10, 100, 42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestTwoPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid pool sizes did not panic")
		}
	}()
	NewTwoPool(0, 10, 1)
}

func TestZipfianRangeAndSkew(t *testing.T) {
	g := NewZipfian(1000, 0.8, 0.2, 7)
	const n = 200000
	hot := 0
	for i := 0; i < n; i++ {
		p := g.Next()
		if p < 0 || p >= 1000 {
			t.Fatalf("page %d out of range", p)
		}
		if p < 200 {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.8) > 0.01 {
		t.Errorf("hottest 20%% of pages got %.3f of refs, want ~0.8", frac)
	}
	probs := g.Probabilities()
	if len(probs) != 1000 {
		t.Fatalf("probability vector size %d", len(probs))
	}
	if probs[0] <= probs[999] {
		t.Error("page 0 should be hottest")
	}
}

func TestGenerateLength(t *testing.T) {
	g := NewZipfian(100, 0.8, 0.2, 1)
	refs := Generate(g, 5000)
	if len(refs) != 5000 {
		t.Fatalf("Generate length %d", len(refs))
	}
}

func TestOLTPDefaults(t *testing.T) {
	g, err := NewOLTP(OLTPConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Pages() != 50000 {
		t.Fatalf("default DBPages = %d", g.Pages())
	}
	refs := Generate(g, 100000)
	for i, p := range refs {
		if p < 0 || int(p) >= g.Pages() {
			t.Fatalf("ref %d out of range: %d", i, p)
		}
	}
}

func TestOLTPValidation(t *testing.T) {
	cases := []OLTPConfig{
		{DBPages: -5},
		{ScanFrac: 0.6, NavFrac: 0.5},
		{ScanMinLen: 10, ScanMaxLen: 5},
		{NavMinLen: 10, NavMaxLen: 5},
	}
	for i, cfg := range cases {
		if _, err := NewOLTP(cfg, 1); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

// TestOLTPSkewProfile checks the calibration against the two skew claims
// §4.3 publishes for the bank trace: ~40% of references on the hottest 3%
// of touched pages, ~90% on the hottest 65%.
func TestOLTPSkewProfile(t *testing.T) {
	g, err := NewOLTP(OLTPConfig{}, 1993)
	if err != nil {
		t.Fatal(err)
	}
	refs := Generate(g, 470000)
	st := trace.Analyze(refs)
	got40 := st.RefFractionOfHottestPages(0.03)
	if math.Abs(got40-0.40) > 0.08 {
		t.Errorf("hottest 3%% of pages cover %.3f of refs, want 0.40±0.08", got40)
	}
	got65 := st.PageFractionForRefShare(0.90)
	if math.Abs(got65-0.65) > 0.12 {
		t.Errorf("90%% of refs need %.3f of pages, want 0.65±0.12", got65)
	}
}

// TestOLTPContainsSequentialRuns verifies the scan component exists: the
// trace must contain runs of consecutive ascending page ids.
func TestOLTPContainsSequentialRuns(t *testing.T) {
	g, err := NewOLTP(OLTPConfig{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	refs := Generate(g, 100000)
	longest, cur := 0, 0
	for i := 1; i < len(refs); i++ {
		if refs[i] == refs[i-1]+1 {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	if longest < 19 {
		t.Errorf("longest ascending run = %d, want >= 19 (scan component missing)", longest+1)
	}
}

func TestScanInterferenceMix(t *testing.T) {
	g := NewScanInterference(10000, 100, 0.95, 50, 500, 9)
	refs := Generate(g, 100000)
	hot := 0
	for _, p := range refs {
		if p < 0 || int(p) >= 10000 {
			t.Fatalf("page %d out of range", p)
		}
		if g.IsHot(p) {
			hot++
		}
	}
	frac := float64(hot) / float64(len(refs))
	// Scans consume 500 of every ~550 references here, so hot fraction is
	// well below 0.95 overall but must still be substantial.
	if frac < 0.05 || frac > 0.95 {
		t.Errorf("hot fraction %.3f outside sanity window", frac)
	}
	// There must be full-length scan runs.
	longest, cur := 0, 0
	for i := 1; i < len(refs); i++ {
		if refs[i] == refs[i-1]+1 {
			cur++
			if cur > longest {
				longest = cur
			}
		} else {
			cur = 0
		}
	}
	if longest < 400 {
		t.Errorf("longest run %d, want >= 400", longest)
	}
}

func TestScanInterferenceValidation(t *testing.T) {
	for i, f := range []func(){
		func() { NewScanInterference(0, 1, 0.5, 10, 10, 1) },
		func() { NewScanInterference(10, 20, 0.5, 10, 10, 1) },
		func() { NewScanInterference(10, 5, 1.5, 10, 10, 1) },
		func() { NewScanInterference(10, 5, 0.5, 0, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMovingHotSpotRotates(t *testing.T) {
	g := NewMovingHotSpot(1000, 100, 0.9, 500, 11)
	base0 := g.HotBase()
	Generate(g, 600)
	if g.HotBase() == base0 {
		t.Error("hot window did not move after an epoch")
	}
	// References inside an epoch concentrate on the current window.
	g2 := NewMovingHotSpot(1000, 100, 0.9, 1000000, 11)
	inWindow := 0
	const n = 50000
	for i := 0; i < n; i++ {
		p := int(g2.Next())
		if p >= g2.HotBase() && p < g2.HotBase()+100 {
			inWindow++
		}
	}
	frac := float64(inWindow) / n
	// 0.9 hot + 0.1*0.1 uniform overlap ≈ 0.91.
	if math.Abs(frac-0.91) > 0.02 {
		t.Errorf("in-window fraction %.3f, want ~0.91", frac)
	}
}

func TestCorrelatedBursts(t *testing.T) {
	base := NewZipfian(1000, 0.8, 0.2, 3)
	g := NewCorrelated(base, 0.5, 4, 17)
	refs := Generate(g, 50000)
	repeats := 0
	for i := 1; i < len(refs); i++ {
		if refs[i] == refs[i-1] {
			repeats++
		}
	}
	// With burstProb 0.5 and mean burst extension 1.5, roughly 43% of the
	// positions should repeat their predecessor. (Chance adjacency in the
	// base Zipfian adds a little.)
	frac := float64(repeats) / float64(len(refs))
	if frac < 0.3 || frac > 0.6 {
		t.Errorf("repeat fraction %.3f outside expected band", frac)
	}
	if g.Name() == "" {
		t.Error("empty Name")
	}
}

func TestCorrelatedTransparentAtZeroProb(t *testing.T) {
	a := NewZipfian(100, 0.8, 0.2, 5)
	b := NewZipfian(100, 0.8, 0.2, 5)
	g := NewCorrelated(b, 0, 2, 1)
	for i := 0; i < 1000; i++ {
		if a.Next() != g.Next() {
			t.Fatal("zero-probability correlation wrapper altered the string")
		}
	}
}

func TestCorrelatedValidation(t *testing.T) {
	base := NewZipfian(10, 0.8, 0.2, 1)
	for i, f := range []func(){
		func() { NewCorrelated(nil, 0.5, 3, 1) },
		func() { NewCorrelated(base, -0.1, 3, 1) },
		func() { NewCorrelated(base, 0.5, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid config did not panic", i)
				}
			}()
			f()
		}()
	}
}

var _ Stationary = (*TwoPool)(nil)
var _ Stationary = (*Zipfian)(nil)
var _ Generator = (*OLTP)(nil)
var _ Generator = (*ScanInterference)(nil)
var _ Generator = (*MovingHotSpot)(nil)
var _ Generator = (*Correlated)(nil)
var _ = policy.InvalidPage
