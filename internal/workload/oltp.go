package workload

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stats"
)

// OLTPConfig parameterises the synthetic OLTP workload standing in for the
// paper's one-hour bank trace (§4.3). Zero fields select defaults
// calibrated to the trace statistics the paper publishes:
//
//   - "40% of the references access only 3% of the database pages that
//     were accessed in the trace": a self-similar skew exponent
//     θ = log α / log β ≈ 0.26 satisfies 0.03^θ ≈ 0.40, and the same θ
//     also reproduces the second published point, 0.65^θ ≈ 0.90 ("90% of
//     the references access 65% of the pages").
//   - A reference mix of random record/index touches plus sequential area
//     scans plus navigational (CODASYL set-walking) chains.
//   - ~470,000 references against a database large enough that the
//     five-minute-rule hot set lands near the paper's ~1400 pages.
type OLTPConfig struct {
	// DBPages is the database size in pages. Default 50000.
	DBPages int
	// ScanFrac is the fraction of references spent inside sequential scan
	// runs. Default 0.05.
	ScanFrac float64
	// NavFrac is the fraction of references spent inside navigational
	// pointer-chasing chains. Default 0.10. The remainder are independent
	// skewed random accesses.
	NavFrac float64
	// SkewAlpha and SkewBeta give the self-similar skew of the random
	// accesses. Defaults 0.66 and 0.20 (θ ≈ 0.26, matching both published
	// skew quantiles; see the package comment above).
	SkewAlpha, SkewBeta float64
	// ScanMinLen and ScanMaxLen bound the length of a sequential run.
	// Defaults 20 and 200.
	ScanMinLen, ScanMaxLen int
	// NavMinLen and NavMaxLen bound the length of a navigational chain.
	// Defaults 3 and 8.
	NavMinLen, NavMaxLen int
	// NavSpan bounds how far one navigational hop may jump from the chain's
	// current page, modelling owner/member record clustering. Default 50.
	NavSpan int
	// DriftEvery makes the access pattern slowly non-stationary, as a real
	// production workload is over an hour: every DriftEvery references the
	// mapping from skew ranks to pages shifts by one, so the warm set
	// gradually changes identity. This is what separates LRU-2 from LFU in
	// Table 4.3 — LFU "never forgets any previous references" (§4.3) and
	// clings to formerly-warm pages. Default 800; negative disables drift.
	DriftEvery int
	// StableRanks exempts the hottest ranks from drift: a bank's hottest
	// pages (top of account indexes, root catalogs) stay hot for the whole
	// hour, which is why the paper's LFU still matches LRU-2 at very small
	// buffer sizes while trailing it at mid sizes. Default 300; negative
	// drifts everything.
	StableRanks int
	// HeadBand flattens the hottest ranks into a uniform band: a sampled
	// rank below HeadBand is remapped uniformly within the band. A pure
	// self-similar distribution concentrates implausibly much mass on its
	// very top ranks (the top page alone would take >10% of all
	// references); production OLTP traces instead show a broad warm set —
	// the paper's trace keeps ~1400 pages under the Five Minute Rule while
	// giving LRU-1 almost no hits at B=100, which requires head mass spread
	// over O(1000) pages, not O(10). Default 1500; negative disables.
	HeadBand int
}

func (c OLTPConfig) withDefaults() OLTPConfig {
	if c.DBPages == 0 {
		c.DBPages = 50000
	}
	if c.ScanFrac == 0 {
		c.ScanFrac = 0.05
	}
	if c.NavFrac == 0 {
		c.NavFrac = 0.10
	}
	if c.SkewAlpha == 0 {
		c.SkewAlpha = 0.66
	}
	if c.SkewBeta == 0 {
		c.SkewBeta = 0.20
	}
	if c.ScanMinLen == 0 {
		c.ScanMinLen = 20
	}
	if c.ScanMaxLen == 0 {
		c.ScanMaxLen = 200
	}
	if c.NavMinLen == 0 {
		c.NavMinLen = 3
	}
	if c.NavMaxLen == 0 {
		c.NavMaxLen = 8
	}
	if c.NavSpan == 0 {
		c.NavSpan = 50
	}
	if c.DriftEvery == 0 {
		c.DriftEvery = 800
	}
	if c.HeadBand == 0 {
		c.HeadBand = 1500
	}
	if c.StableRanks == 0 {
		c.StableRanks = 300
	}
	return c
}

func (c OLTPConfig) validate() error {
	if c.DBPages <= 0 {
		return fmt.Errorf("workload: OLTP DBPages must be positive, got %d", c.DBPages)
	}
	if c.ScanFrac < 0 || c.NavFrac < 0 || c.ScanFrac+c.NavFrac >= 1 {
		return fmt.Errorf("workload: OLTP scan+nav fractions must leave room for random refs, got %v + %v",
			c.ScanFrac, c.NavFrac)
	}
	if c.ScanMinLen <= 0 || c.ScanMaxLen < c.ScanMinLen {
		return fmt.Errorf("workload: OLTP scan run bounds invalid: [%d, %d]", c.ScanMinLen, c.ScanMaxLen)
	}
	if c.NavMinLen <= 0 || c.NavMaxLen < c.NavMinLen {
		return fmt.Errorf("workload: OLTP nav chain bounds invalid: [%d, %d]", c.NavMinLen, c.NavMaxLen)
	}
	return nil
}

// OLTP generates the synthetic bank-style workload. It is a state machine:
// between runs it picks the next activity (random touch, scan run, nav
// chain) with probabilities derived from the configured reference-count
// fractions; inside a run it emits the run's remaining references.
type OLTP struct {
	cfg  OLTPConfig
	dist *stats.SelfSimilar
	rng  *stats.RNG
	// startScanProb and startNavProb convert per-reference fractions into
	// per-decision run-start probabilities (a run of mean length L consumes
	// L references per start).
	startScanProb float64
	startNavProb  float64
	// active run state
	runLeft int
	runPage policy.PageID
	navRun  bool
	// drift state
	t      int
	offset int
}

// skewedPage samples a rank from the self-similar distribution and maps it
// to a page id under the current drift offset: the hottest StableRanks
// ranks map to fixed pages, while the rest of the ranking slides through
// the remaining pages, so the warm set slowly changes identity over the
// trace.
func (g *OLTP) skewedPage() policy.PageID {
	rank := g.dist.Sample(g.rng) - 1
	if head := g.cfg.HeadBand; head > 0 && rank < head {
		// Flatten the head: the band's total mass is preserved but spread
		// uniformly across its pages.
		rank = g.rng.Intn(head)
	}
	stable := g.cfg.StableRanks
	if stable < 0 {
		stable = 0
	}
	if rank < stable || g.cfg.DriftEvery < 0 {
		return policy.PageID(rank)
	}
	span := g.cfg.DBPages - stable
	return policy.PageID(stable + (rank-stable+g.offset)%span)
}

// NewOLTP returns the generator, or an error for inconsistent configs.
func NewOLTP(cfg OLTPConfig, seed uint64) (*OLTP, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dist, err := stats.NewSelfSimilar(cfg.DBPages, cfg.SkewAlpha, cfg.SkewBeta)
	if err != nil {
		return nil, fmt.Errorf("workload: OLTP skew: %w", err)
	}
	meanScan := float64(cfg.ScanMinLen+cfg.ScanMaxLen) / 2
	meanNav := float64(cfg.NavMinLen+cfg.NavMaxLen) / 2
	// Decisions happen once per random ref and once per run. Solve for the
	// per-decision start probabilities that yield the requested
	// per-reference fractions in expectation.
	randFrac := 1 - cfg.ScanFrac - cfg.NavFrac
	g := &OLTP{
		cfg:           cfg,
		dist:          dist,
		rng:           stats.NewRNG(seed),
		startScanProb: cfg.ScanFrac / meanScan / randFrac,
		startNavProb:  cfg.NavFrac / meanNav / randFrac,
	}
	return g, nil
}

// Name implements Generator.
func (g *OLTP) Name() string { return fmt.Sprintf("oltp(N=%d)", g.cfg.DBPages) }

// Pages returns the database size in pages.
func (g *OLTP) Pages() int { return g.cfg.DBPages }

// Next implements Generator.
func (g *OLTP) Next() policy.PageID {
	g.t++
	if g.cfg.DriftEvery > 0 && g.t%g.cfg.DriftEvery == 0 {
		g.offset++
	}
	if g.runLeft > 0 {
		g.runLeft--
		if g.navRun {
			// Pointer chase: hop within ±NavSpan of the current page.
			hop := g.rng.Intn(2*g.cfg.NavSpan+1) - g.cfg.NavSpan
			next := int(g.runPage) + hop
			if next < 0 {
				next = 0
			}
			if next >= g.cfg.DBPages {
				next = g.cfg.DBPages - 1
			}
			g.runPage = policy.PageID(next)
		} else {
			g.runPage++
			if int(g.runPage) >= g.cfg.DBPages {
				g.runPage = 0
			}
		}
		return g.runPage
	}
	u := g.rng.Float64()
	switch {
	case u < g.startScanProb:
		// Start a sequential scan at a uniformly random page.
		g.navRun = false
		g.runLeft = g.cfg.ScanMinLen + g.rng.Intn(g.cfg.ScanMaxLen-g.cfg.ScanMinLen+1)
		g.runPage = policy.PageID(g.rng.Intn(g.cfg.DBPages))
		g.runLeft--
		return g.runPage
	case u < g.startScanProb+g.startNavProb:
		// Start a navigational chain at a skew-distributed owner page.
		g.navRun = true
		g.runLeft = g.cfg.NavMinLen + g.rng.Intn(g.cfg.NavMaxLen-g.cfg.NavMinLen+1)
		g.runPage = g.skewedPage()
		g.runLeft--
		return g.runPage
	default:
		// Independent skewed random touch.
		return g.skewedPage()
	}
}
