package workload

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stats"
)

// Zipfian is the §4.2 experiment: independent random references to N pages
// under the paper's self-similar distribution, where a fraction α of the
// references targets a fraction β of the pages, recursively. Table 4.2
// uses N=1000 with α=0.8, β=0.2 ("80-20 skew").
//
// Page ids are 0..N-1 with page 0 the hottest (the underlying distribution
// is defined on ranks 1..N; we shift down by one so workloads share the
// dense-from-zero convention).
type Zipfian struct {
	dist *stats.SelfSimilar
	rng  *stats.RNG
}

// NewZipfian returns the generator. It panics on invalid skew parameters,
// which indicate a bug in experiment configuration.
func NewZipfian(n int, alpha, beta float64, seed uint64) *Zipfian {
	dist, err := stats.NewSelfSimilar(n, alpha, beta)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return &Zipfian{dist: dist, rng: stats.NewRNG(seed)}
}

// Name implements Generator.
func (g *Zipfian) Name() string { return fmt.Sprintf("zipfian(N=%d)", g.dist.N()) }

// Pages returns N.
func (g *Zipfian) Pages() int { return g.dist.N() }

// Next implements Generator.
func (g *Zipfian) Next() policy.PageID {
	return policy.PageID(g.dist.Sample(g.rng) - 1)
}

// Probabilities implements Stationary.
func (g *Zipfian) Probabilities() map[policy.PageID]float64 {
	v := g.dist.ProbVector()
	probs := make(map[policy.PageID]float64, len(v))
	for i, p := range v {
		probs[policy.PageID(i)] = p
	}
	return probs
}
