// Package workload generates the page reference strings driving every
// experiment in the paper's Section 4, plus the ablation workloads derived
// from its motivating examples:
//
//   - TwoPool: the §4.1 two-pool experiment (and Example 1.1's alternating
//     index/record pattern).
//   - Zipfian: the §4.2 skewed random-access experiment over the paper's
//     self-similar 80-20 distribution.
//   - OLTP: a synthetic stand-in for the §4.3 one-hour bank trace,
//     calibrated to the trace statistics the paper publishes.
//   - ScanInterference: Example 1.2 (hot locality disturbed by sequential
//     scans).
//   - MovingHotSpot: evolving access patterns, for adaptivity ablations.
//   - Correlated: wraps any generator with §2.1.1-style correlated
//     reference bursts, for Correlated Reference Period ablations.
package workload

import "repro/internal/policy"

// Generator produces an endless page reference string. Implementations are
// deterministic functions of their construction seed and are not safe for
// concurrent use.
type Generator interface {
	// Name identifies the workload in reports.
	Name() string
	// Next returns the next reference r_t of the string.
	Next() policy.PageID
}

// Stationary is implemented by generators with a fixed reference
// probability vector β (the Independent Reference Model of §2/§3); the
// simulator feeds it to the A0 oracle of Definition 3.1.
type Stationary interface {
	Generator
	// Probabilities returns β_p for every page the generator can emit.
	Probabilities() map[policy.PageID]float64
}

// Generate materialises the next n references from g.
func Generate(g Generator, n int) []policy.PageID {
	refs := make([]policy.PageID, n)
	for i := range refs {
		refs[i] = g.Next()
	}
	return refs
}
