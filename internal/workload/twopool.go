package workload

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stats"
)

// TwoPool is the §4.1 two-pool experiment: references alternate strictly
// between Pool 1 (N1 pages, ids 0..N1-1) and Pool 2 (N2 pages, ids
// N1..N1+N2-1), the page within a pool chosen uniformly at random. Each
// Pool 1 page therefore has reference probability β1 = 1/(2·N1) and each
// Pool 2 page β2 = 1/(2·N2). With N1 < N2 this models Example 1.1's
// alternating B-tree-leaf / record-page pattern: I1, R1, I2, R2, ...
type TwoPool struct {
	n1, n2 int
	rng    *stats.RNG
	// next tracks which pool the next reference draws from; the paper's
	// string starts with an index (Pool 1) reference.
	pool1Next bool
}

// NewTwoPool returns the generator with the paper's convention N1 < N2.
// The Table 4.1 configuration is N1=100, N2=10000.
func NewTwoPool(n1, n2 int, seed uint64) *TwoPool {
	if n1 <= 0 || n2 <= 0 {
		panic(fmt.Sprintf("workload: pool sizes must be positive, got %d, %d", n1, n2))
	}
	return &TwoPool{n1: n1, n2: n2, rng: stats.NewRNG(seed), pool1Next: true}
}

// Name implements Generator.
func (g *TwoPool) Name() string { return fmt.Sprintf("two-pool(N1=%d,N2=%d)", g.n1, g.n2) }

// Pool1Size returns N1, the hot pool size.
func (g *TwoPool) Pool1Size() int { return g.n1 }

// Pool2Size returns N2, the cold pool size.
func (g *TwoPool) Pool2Size() int { return g.n2 }

// Next implements Generator.
func (g *TwoPool) Next() policy.PageID {
	var p policy.PageID
	if g.pool1Next {
		p = policy.PageID(g.rng.Intn(g.n1))
	} else {
		p = policy.PageID(g.n1 + g.rng.Intn(g.n2))
	}
	g.pool1Next = !g.pool1Next
	return p
}

// Probabilities implements Stationary: β1 = 1/(2N1) for Pool 1 pages and
// β2 = 1/(2N2) for Pool 2 pages.
func (g *TwoPool) Probabilities() map[policy.PageID]float64 {
	probs := make(map[policy.PageID]float64, g.n1+g.n2)
	b1 := 1 / (2 * float64(g.n1))
	b2 := 1 / (2 * float64(g.n2))
	for i := 0; i < g.n1; i++ {
		probs[policy.PageID(i)] = b1
	}
	for i := 0; i < g.n2; i++ {
		probs[policy.PageID(g.n1+i)] = b2
	}
	return probs
}

// IsHot reports whether p belongs to Pool 1, for per-pool accounting in
// tests and examples.
func (g *TwoPool) IsHot(p policy.PageID) bool { return int(p) < g.n1 }
