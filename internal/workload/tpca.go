package workload

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stats"
)

// TPCAConfig sizes the TPC-A-style workload ([TPC-A], the benchmark the
// paper's Example 1.1 cites). The page universe is laid out as
//
//	[branch pages][teller pages][account index pages][account data pages][history pages]
//
// with reference frequencies spanning four orders of magnitude: branch
// pages are touched by every transaction, account data pages once per
// tens of thousands of transactions — the page-class frequency skew that
// motivates LRU-K.
type TPCAConfig struct {
	// Branches is the number of bank branches. Default 10.
	Branches int
	// TellersPerBranch is the tellers per branch. Default 10.
	TellersPerBranch int
	// AccountsPerBranch is the accounts per branch. Default 10000.
	AccountsPerBranch int
	// BranchesPerPage, TellersPerPage, AccountsPerPage give record packing.
	// Defaults 20, 20, 2 (a 2000-byte account record on a 4 KByte page, as
	// in Example 1.1).
	BranchesPerPage, TellersPerPage, AccountsPerPage int
	// IndexFanout is the B-tree leaf fanout for the account index. Default
	// 200 (20-byte entries on 4000 usable bytes, the paper's arithmetic).
	IndexFanout int
	// HistoryPerPage is the history (audit trail) records per page.
	// Default 50.
	HistoryPerPage int
}

func (c TPCAConfig) withDefaults() TPCAConfig {
	if c.Branches == 0 {
		c.Branches = 10
	}
	if c.TellersPerBranch == 0 {
		c.TellersPerBranch = 10
	}
	if c.AccountsPerBranch == 0 {
		c.AccountsPerBranch = 10000
	}
	if c.BranchesPerPage == 0 {
		c.BranchesPerPage = 20
	}
	if c.TellersPerPage == 0 {
		c.TellersPerPage = 20
	}
	if c.AccountsPerPage == 0 {
		c.AccountsPerPage = 2
	}
	if c.IndexFanout == 0 {
		c.IndexFanout = 200
	}
	if c.HistoryPerPage == 0 {
		c.HistoryPerPage = 50
	}
	return c
}

// TPCA generates the page reference string of a stream of TPC-A
// transactions. Each transaction emits, in order: the branch page, the
// teller page, the account index path (root plus leaf for a two-level
// index; deeper indexes emit each level), the account data page twice
// (read then update — an intra-transaction correlated pair, §2.1.1 case
// 1), and the current history append page.
type TPCA struct {
	cfg TPCAConfig
	rng *stats.RNG

	branchPages  int
	tellerPages  int
	indexLevels  []int // pages per index level, root first
	indexPages   int
	accountPages int

	base struct {
		teller  int
		index   int
		account int
		history int
	}

	// pending holds the remainder of the current transaction's references.
	pending []policy.PageID
	// historySlot counts history inserts to advance the append page.
	historySlot int
	historyPage policy.PageID
}

// NewTPCA returns the generator.
func NewTPCA(cfg TPCAConfig, seed uint64) (*TPCA, error) {
	cfg = cfg.withDefaults()
	if cfg.Branches <= 0 || cfg.TellersPerBranch <= 0 || cfg.AccountsPerBranch <= 0 {
		return nil, fmt.Errorf("workload: TPC-A population sizes must be positive: %+v", cfg)
	}
	if cfg.BranchesPerPage <= 0 || cfg.TellersPerPage <= 0 || cfg.AccountsPerPage <= 0 ||
		cfg.IndexFanout <= 1 || cfg.HistoryPerPage <= 0 {
		return nil, fmt.Errorf("workload: TPC-A packing parameters must be positive: %+v", cfg)
	}
	g := &TPCA{cfg: cfg, rng: stats.NewRNG(seed)}
	accounts := cfg.Branches * cfg.AccountsPerBranch
	g.branchPages = ceilDiv(cfg.Branches, cfg.BranchesPerPage)
	g.tellerPages = ceilDiv(cfg.Branches*cfg.TellersPerBranch, cfg.TellersPerPage)
	g.accountPages = ceilDiv(accounts, cfg.AccountsPerPage)
	// Index levels bottom-up: leaves, then internal levels until one page.
	level := ceilDiv(accounts, cfg.IndexFanout)
	var levels []int
	for {
		levels = append([]int{level}, levels...)
		if level == 1 {
			break
		}
		level = ceilDiv(level, cfg.IndexFanout)
	}
	g.indexLevels = levels
	for _, l := range levels {
		g.indexPages += l
	}
	g.base.teller = g.branchPages
	g.base.index = g.base.teller + g.tellerPages
	g.base.account = g.base.index + g.indexPages
	g.base.history = g.base.account + g.accountPages
	g.historyPage = policy.PageID(g.base.history)
	return g, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Name implements Generator.
func (g *TPCA) Name() string {
	return fmt.Sprintf("tpca(branches=%d,accounts=%d)", g.cfg.Branches, g.cfg.Branches*g.cfg.AccountsPerBranch)
}

// Pages returns the total page universe size (history pages grow without
// bound; this counts the initial layout boundary).
func (g *TPCA) Pages() int { return g.base.history }

// PageClass reports which table a page belongs to, for per-class analysis.
func (g *TPCA) PageClass(p policy.PageID) string {
	switch i := int(p); {
	case i < g.base.teller:
		return "branch"
	case i < g.base.index:
		return "teller"
	case i < g.base.account:
		return "index"
	case i < g.base.history:
		return "account"
	default:
		return "history"
	}
}

// Next implements Generator.
func (g *TPCA) Next() policy.PageID {
	if len(g.pending) > 0 {
		p := g.pending[0]
		g.pending = g.pending[1:]
		return p
	}
	// Begin a new transaction.
	branch := g.rng.Intn(g.cfg.Branches)
	teller := branch*g.cfg.TellersPerBranch + g.rng.Intn(g.cfg.TellersPerBranch)
	account := branch*g.cfg.AccountsPerBranch + g.rng.Intn(g.cfg.AccountsPerBranch)

	branchPage := policy.PageID(branch / g.cfg.BranchesPerPage)
	tellerPage := policy.PageID(g.base.teller + teller/g.cfg.TellersPerPage)
	accountPage := policy.PageID(g.base.account + account/g.cfg.AccountsPerPage)

	// Index path root → leaf: at each level the covering page.
	refs := make([]policy.PageID, 0, 3+len(g.indexLevels)+3)
	refs = append(refs, tellerPage)
	offset := g.base.index
	accounts := g.cfg.Branches * g.cfg.AccountsPerBranch
	for li, levelPages := range g.indexLevels {
		// The page at this level covering the account's key position.
		pos := account * levelPages / accounts
		if pos >= levelPages {
			pos = levelPages - 1
		}
		refs = append(refs, policy.PageID(offset+pos))
		offset += levelPages
		_ = li
	}
	refs = append(refs, accountPage, accountPage) // read, then update in place

	// History append: sequential fill of the current page.
	g.historySlot++
	if g.historySlot >= g.cfg.HistoryPerPage {
		g.historySlot = 0
		g.historyPage++
	}
	refs = append(refs, g.historyPage)

	g.pending = refs
	return branchPage
}
