package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
)

func TestTPCAValidation(t *testing.T) {
	cases := []TPCAConfig{
		{Branches: -1},
		{TellersPerBranch: -2},
		{IndexFanout: 1},
		{HistoryPerPage: -1},
	}
	for i, cfg := range cases {
		if _, err := NewTPCA(cfg, 1); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := NewTPCA(TPCAConfig{}, 1); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestTPCALayoutArithmetic(t *testing.T) {
	g, err := NewTPCA(TPCAConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: 10 branches, 100 tellers, 100000 accounts.
	if g.branchPages != 1 {
		t.Errorf("branch pages = %d, want 1", g.branchPages)
	}
	if g.tellerPages != 5 {
		t.Errorf("teller pages = %d, want 5", g.tellerPages)
	}
	if g.accountPages != 50000 {
		t.Errorf("account pages = %d, want 50000", g.accountPages)
	}
	// Index: 100000/200 = 500 leaves, 500/200 → 3, 3/200 → 1: three levels.
	if len(g.indexLevels) != 3 || g.indexLevels[0] != 1 || g.indexLevels[1] != 3 || g.indexLevels[2] != 500 {
		t.Errorf("index levels = %v, want [1 3 500]", g.indexLevels)
	}
	if g.Pages() != 1+5+504+50000 {
		t.Errorf("Pages = %d", g.Pages())
	}
}

func TestTPCATransactionShape(t *testing.T) {
	g, err := NewTPCA(TPCAConfig{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// One transaction = branch, teller, 3 index levels, account x2, history.
	const perTxn = 8
	refs := Generate(g, perTxn)
	wantClasses := []string{"branch", "teller", "index", "index", "index", "account", "account", "history"}
	for i, p := range refs {
		if got := g.PageClass(p); got != wantClasses[i] {
			t.Errorf("ref %d: class %q, want %q (page %d)", i, got, wantClasses[i], p)
		}
	}
	// The account read/update pair is correlated: same page twice.
	if refs[5] != refs[6] {
		t.Errorf("account read %d and update %d differ", refs[5], refs[6])
	}
}

func TestTPCAFrequencyHierarchy(t *testing.T) {
	g, err := NewTPCA(TPCAConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	perPage := map[string]map[policy.PageID]int{}
	const txns = 20000
	for _, p := range Generate(g, txns*8) {
		cls := g.PageClass(p)
		counts[cls]++
		if perPage[cls] == nil {
			perPage[cls] = map[policy.PageID]int{}
		}
		perPage[cls][p]++
	}
	// Every class is touched; account refs are 2 per transaction.
	if counts["branch"] == 0 || counts["teller"] == 0 || counts["index"] == 0 ||
		counts["account"] == 0 || counts["history"] == 0 {
		t.Fatalf("missing class in %v", counts)
	}
	// Per-page frequency must be ordered: branch page >> any leaf index
	// page >> any account page.
	maxAccount := 0
	for _, c := range perPage["account"] {
		if c > maxAccount {
			maxAccount = c
		}
	}
	branchCount := perPage["branch"][0]
	if branchCount < 100*maxAccount {
		t.Errorf("branch page count %d not >> account page max %d", branchCount, maxAccount)
	}
	// History pages fill sequentially: the set of touched history pages is
	// a contiguous ascending run.
	var histPages []policy.PageID
	for p := range perPage["history"] {
		histPages = append(histPages, p)
	}
	if len(histPages) < 2 {
		t.Fatal("history did not advance")
	}
}

// TestTPCACorrelatedReferencePeriodMatters is the §2.1.1 lesson played
// out on TPC-A: every transaction references its account page twice in
// immediate succession (read, then update — correlated pair type 1).
// With CRP=0 that pair gives account pages a Backward 2-distance of one
// reference, so naive LRU-2 mistakes every account page for a hot page
// and loses to plain LRU. Factoring out the correlated pair with a small
// CRP restores LRU-2's discrimination and it wins clearly.
func TestTPCACorrelatedReferencePeriodMatters(t *testing.T) {
	run := func(k int, crp policy.Tick) float64 {
		g, err := NewTPCA(TPCAConfig{}, 5)
		if err != nil {
			t.Fatal(err)
		}
		c := core.NewLRUKWithOptions(600, k, core.Options{CorrelatedReferencePeriod: crp})
		hits, total := 0, 0
		refs := Generate(g, 200000)
		for i, p := range refs {
			hit := c.Reference(p)
			if i >= 50000 {
				total++
				if hit {
					hits++
				}
			}
		}
		return float64(hits) / float64(total)
	}
	lru1 := run(1, 0)
	naive := run(2, 0)
	corrected := run(2, 8) // a transaction spans 8 references
	if corrected <= lru1 {
		t.Errorf("LRU-2 with CRP (%.3f) not above LRU-1 (%.3f) on TPC-A", corrected, lru1)
	}
	if corrected <= naive {
		t.Errorf("CRP did not help on TPC-A: %.3f vs naive %.3f", corrected, naive)
	}
	// The naive configuration's weakness is the point of §2.1.1: it must
	// trail the corrected configuration distinctly.
	if corrected-naive < 0.01 {
		t.Errorf("correlated-pair effect too small to demonstrate: %.3f vs %.3f", corrected, naive)
	}
}
