package workload

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/stats"
)

// ScanInterference models Example 1.2: a multi-process workload with good
// locality — HotPages of the database receive HotFrac of all references —
// periodically disturbed by batch sequential scans sweeping the whole
// database. Under LRU the scan pages flush the hot set ("cache swamping by
// sequential scans"); a policy that discriminates by reference frequency
// keeps the hot set resident.
type ScanInterference struct {
	dbPages   int
	hotPages  int
	hotFrac   float64
	scanEvery int // interactive references between scan bursts
	scanLen   int // pages per scan burst
	rng       *stats.RNG

	sinceScan int
	scanLeft  int
	scanPage  policy.PageID
}

// NewScanInterference returns the generator. Example 1.2's proportions are
// hotPages=5000 of dbPages=1000000 receiving hotFrac=0.95; scale them to
// the experiment at hand. scanEvery interactive references separate scan
// bursts of scanLen sequential pages.
func NewScanInterference(dbPages, hotPages int, hotFrac float64, scanEvery, scanLen int, seed uint64) *ScanInterference {
	if dbPages <= 0 || hotPages <= 0 || hotPages > dbPages {
		panic(fmt.Sprintf("workload: invalid scan-interference sizes: db=%d hot=%d", dbPages, hotPages))
	}
	if hotFrac <= 0 || hotFrac >= 1 {
		panic(fmt.Sprintf("workload: hot fraction must be in (0,1), got %v", hotFrac))
	}
	if scanEvery <= 0 || scanLen <= 0 {
		panic(fmt.Sprintf("workload: scan cadence must be positive: every=%d len=%d", scanEvery, scanLen))
	}
	return &ScanInterference{
		dbPages:   dbPages,
		hotPages:  hotPages,
		hotFrac:   hotFrac,
		scanEvery: scanEvery,
		scanLen:   scanLen,
		rng:       stats.NewRNG(seed),
	}
}

// Name implements Generator.
func (g *ScanInterference) Name() string {
	return fmt.Sprintf("scan-interference(hot=%d/%d)", g.hotPages, g.dbPages)
}

// IsHot reports whether p belongs to the hot set.
func (g *ScanInterference) IsHot(p policy.PageID) bool { return int(p) < g.hotPages }

// Next implements Generator.
func (g *ScanInterference) Next() policy.PageID {
	if g.scanLeft > 0 {
		g.scanLeft--
		p := g.scanPage
		g.scanPage++
		if int(g.scanPage) >= g.dbPages {
			g.scanPage = 0
		}
		return p
	}
	g.sinceScan++
	if g.sinceScan >= g.scanEvery {
		g.sinceScan = 0
		g.scanLeft = g.scanLen - 1
		g.scanPage = policy.PageID(g.rng.Intn(g.dbPages))
		p := g.scanPage
		g.scanPage++
		if int(g.scanPage) >= g.dbPages {
			g.scanPage = 0
		}
		return p
	}
	// Interactive reference: hot with probability hotFrac.
	if g.rng.Float64() < g.hotFrac {
		return policy.PageID(g.rng.Intn(g.hotPages))
	}
	return policy.PageID(g.hotPages + g.rng.Intn(g.dbPages-g.hotPages))
}

// MovingHotSpot drives the adaptivity ablation: a two-pool-style workload
// whose hot set identity rotates every epoch references, modelling the
// "dynamically moving hot spots" under which the paper argues LRU-2 beats
// LFU and LRU-3 trails LRU-2 in responsiveness (§4.1, §4.3).
type MovingHotSpot struct {
	dbPages  int
	hotPages int
	hotFrac  float64
	epoch    int
	rng      *stats.RNG

	t       int
	hotBase int
}

// NewMovingHotSpot returns the generator; every epoch references the hot
// window of hotPages pages shifts to a fresh disjoint region (wrapping).
func NewMovingHotSpot(dbPages, hotPages int, hotFrac float64, epoch int, seed uint64) *MovingHotSpot {
	if dbPages <= 0 || hotPages <= 0 || hotPages > dbPages {
		panic(fmt.Sprintf("workload: invalid moving-hot-spot sizes: db=%d hot=%d", dbPages, hotPages))
	}
	if hotFrac <= 0 || hotFrac >= 1 {
		panic(fmt.Sprintf("workload: hot fraction must be in (0,1), got %v", hotFrac))
	}
	if epoch <= 0 {
		panic(fmt.Sprintf("workload: epoch must be positive, got %d", epoch))
	}
	return &MovingHotSpot{
		dbPages:  dbPages,
		hotPages: hotPages,
		hotFrac:  hotFrac,
		epoch:    epoch,
		rng:      stats.NewRNG(seed),
	}
}

// Name implements Generator.
func (g *MovingHotSpot) Name() string {
	return fmt.Sprintf("moving-hot-spot(hot=%d/%d,epoch=%d)", g.hotPages, g.dbPages, g.epoch)
}

// HotBase returns the first page id of the current hot window, for tests.
func (g *MovingHotSpot) HotBase() int { return g.hotBase }

// Next implements Generator.
func (g *MovingHotSpot) Next() policy.PageID {
	if g.t > 0 && g.t%g.epoch == 0 {
		g.hotBase = (g.hotBase + g.hotPages) % g.dbPages
	}
	g.t++
	if g.rng.Float64() < g.hotFrac {
		return policy.PageID((g.hotBase + g.rng.Intn(g.hotPages)) % g.dbPages)
	}
	return policy.PageID(g.rng.Intn(g.dbPages))
}

// Correlated wraps a base generator, expanding each logical reference into
// a burst of 1..maxBurst references to the same page spaced as immediate
// repeats — the intra-transaction correlated reference pairs of §2.1.1.
// With burstProb = 0 it is transparent. It drives the Correlated Reference
// Period ablation.
type Correlated struct {
	base      Generator
	burstProb float64
	maxBurst  int
	rng       *stats.RNG

	repeatLeft int
	current    policy.PageID
}

// NewCorrelated returns the wrapper: after each fresh reference, with
// probability burstProb the page receives 1..maxBurst-1 immediate repeat
// references before the string moves on.
func NewCorrelated(base Generator, burstProb float64, maxBurst int, seed uint64) *Correlated {
	if base == nil {
		panic("workload: nil base generator")
	}
	if burstProb < 0 || burstProb > 1 {
		panic(fmt.Sprintf("workload: burst probability %v outside [0,1]", burstProb))
	}
	if maxBurst < 2 {
		panic(fmt.Sprintf("workload: maxBurst must be at least 2, got %d", maxBurst))
	}
	return &Correlated{base: base, burstProb: burstProb, maxBurst: maxBurst, rng: stats.NewRNG(seed)}
}

// Name implements Generator.
func (g *Correlated) Name() string { return "correlated(" + g.base.Name() + ")" }

// Next implements Generator.
func (g *Correlated) Next() policy.PageID {
	if g.repeatLeft > 0 {
		g.repeatLeft--
		return g.current
	}
	g.current = g.base.Next()
	if g.rng.Float64() < g.burstProb {
		g.repeatLeft = 1 + g.rng.Intn(g.maxBurst-1)
	}
	return g.current
}
