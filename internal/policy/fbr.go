package policy

// FBR is Frequency-Based Replacement (Robinson & Devarakonda, SIGMETRICS
// 1990) — the paper's [ROBDEV] citation and the source of its "factoring
// out locality" idea for correlated references (§2.1.1). The cache is an
// LRU list split into three sections:
//
//	new      (most recent): reference counts are NOT incremented here, so
//	         a burst of correlated re-references counts once;
//	middle:  counts increment on reference;
//	old      (least recent): counts increment; victims are chosen here,
//	         the page with the smallest count (LRU among ties).
//
// Periodically, counts are halved ("aging") so stale frequency decays.
type FBR struct {
	capacity int
	newSize  int
	oldSize  int
	agingAt  int64 // halve counts each time total references reach a multiple
	refs     int64

	list  *pageList // front = MRU
	count map[PageID]int64
}

// NewFBR returns an FBR cache with the authors' recommended section sizing
// (new ≈ 25%, old ≈ 50% of capacity) and count-halving every
// capacity*agingFactor references (agingFactor <= 0 selects 16).
func NewFBR(capacity int, agingFactor int) *FBR {
	validateCapacity(capacity)
	if agingFactor <= 0 {
		agingFactor = 16
	}
	newSize := capacity / 4
	if newSize < 1 {
		newSize = 1
	}
	oldSize := capacity / 2
	if oldSize < 1 {
		oldSize = 1
	}
	return &FBR{
		capacity: capacity,
		newSize:  newSize,
		oldSize:  oldSize,
		agingAt:  int64(capacity * agingFactor),
		list:     newPageList(),
		count:    make(map[PageID]int64),
	}
}

// Name implements Cache.
func (c *FBR) Name() string { return "FBR" }

// Capacity implements Cache.
func (c *FBR) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *FBR) Len() int { return c.list.Len() }

// Resident implements Cache.
func (c *FBR) Resident(p PageID) bool { return c.list.Contains(p) }

// Reset implements Cache.
func (c *FBR) Reset() {
	c.refs = 0
	c.list.Clear()
	c.count = make(map[PageID]int64)
}

// Reference implements Cache.
func (c *FBR) Reference(p PageID) bool {
	c.refs++
	if c.agingAt > 0 && c.refs%c.agingAt == 0 {
		for q := range c.count {
			c.count[q] /= 2
			if c.count[q] < 1 {
				c.count[q] = 1
			}
		}
	}
	if c.list.Contains(p) {
		// Increment only if the page is outside the new section: a
		// re-reference while still "new" is treated as correlated.
		if !c.inNewSection(p) {
			c.count[p]++
		}
		c.list.MoveToFront(p)
		return true
	}
	if c.list.Len() >= c.capacity {
		c.evict()
	}
	c.list.PushFront(p)
	c.count[p] = 1
	return false
}

// inNewSection reports whether p is among the newSize most recent pages.
func (c *FBR) inNewSection(p PageID) bool {
	i := 0
	found := false
	c.list.Each(func(q PageID) bool {
		if q == p {
			found = true
			return false
		}
		i++
		return i < c.newSize
	})
	return found
}

// evict removes the lowest-count page within the old section (LRU-most on
// ties, since the scan runs from the back of the list... the list Each
// walks front-to-back, so the last qualifying page seen with count <= best
// is the least recent).
func (c *FBR) evict() {
	// Collect the old section: the oldSize least recent pages.
	start := c.list.Len() - c.oldSize
	if start < 0 {
		start = 0
	}
	var victim PageID = InvalidPage
	var best int64
	i := 0
	c.list.Each(func(q PageID) bool {
		if i >= start {
			cnt := c.count[q]
			if victim == InvalidPage || cnt <= best {
				victim, best = q, cnt
			}
		}
		i++
		return true
	})
	if victim == InvalidPage {
		victim, _ = c.list.Back()
	}
	c.list.Remove(victim)
	delete(c.count, victim)
}

// SLRU is Segmented LRU (Karedla, Love & Wherry 1994), another descendant
// of the same insight: the cache splits into a probationary segment (first
// hit) and a protected segment (proven re-reference). A page enters
// probationary; a hit there promotes it to protected; protected overflow
// demotes its LRU page back to the probationary MRU end. Victims come from
// the probationary LRU end.
type SLRU struct {
	capacity      int
	protectedSize int
	probation     *pageList
	protected     *pageList
}

// NewSLRU returns an SLRU cache with the protected segment sized to the
// given fraction of capacity (<=0 selects the common 0.8).
func NewSLRU(capacity int, protectedFrac float64) *SLRU {
	validateCapacity(capacity)
	if protectedFrac <= 0 || protectedFrac >= 1 {
		protectedFrac = 0.8
	}
	ps := int(protectedFrac * float64(capacity))
	if ps < 1 {
		ps = 1
	}
	if ps >= capacity {
		ps = capacity - 1
	}
	if ps < 1 {
		ps = 1 // capacity 1: degenerate, probation only
	}
	return &SLRU{
		capacity:      capacity,
		protectedSize: ps,
		probation:     newPageList(),
		protected:     newPageList(),
	}
}

// Name implements Cache.
func (c *SLRU) Name() string { return "SLRU" }

// Capacity implements Cache.
func (c *SLRU) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *SLRU) Len() int { return c.probation.Len() + c.protected.Len() }

// Resident implements Cache.
func (c *SLRU) Resident(p PageID) bool {
	return c.probation.Contains(p) || c.protected.Contains(p)
}

// Reset implements Cache.
func (c *SLRU) Reset() {
	c.probation.Clear()
	c.protected.Clear()
}

// Reference implements Cache.
func (c *SLRU) Reference(p PageID) bool {
	if c.protected.MoveToFront(p) {
		return true
	}
	if c.probation.Contains(p) {
		// Promotion to protected; demote protected LRU if over budget.
		c.probation.Remove(p)
		c.protected.PushFront(p)
		if c.protected.Len() > c.protectedSize {
			demoted, _ := c.protected.PopBack()
			c.probation.PushFront(demoted)
		}
		return true
	}
	if c.Len() >= c.capacity {
		if _, ok := c.probation.PopBack(); !ok {
			// Probation empty: evict from protected as a fallback.
			c.protected.PopBack()
		}
	}
	c.probation.PushFront(p)
	return false
}
