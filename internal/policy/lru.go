package policy

// LRU is the classical Least Recently Used policy — LRU-1 in the paper's
// taxonomy. On a miss with a full cache it evicts the page whose most
// recent reference lies farthest in the past.
type LRU struct {
	capacity int
	list     *pageList // front = most recent, back = victim
}

// NewLRU returns an LRU cache with the given frame count.
func NewLRU(capacity int) *LRU {
	return &LRU{capacity: validateCapacity(capacity), list: newPageList()}
}

// Name implements Cache.
func (c *LRU) Name() string { return "LRU-1" }

// Capacity implements Cache.
func (c *LRU) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *LRU) Len() int { return c.list.Len() }

// Resident implements Cache.
func (c *LRU) Resident(p PageID) bool { return c.list.Contains(p) }

// Reference implements Cache.
func (c *LRU) Reference(p PageID) bool {
	if c.list.MoveToFront(p) {
		return true
	}
	if c.list.Len() >= c.capacity {
		c.list.PopBack()
	}
	c.list.PushFront(p)
	return false
}

// Reset implements Cache.
func (c *LRU) Reset() { c.list.Clear() }

// MRU is the Most Recently Used policy: on a miss with a full cache it
// evicts the page referenced most recently (useful under cyclic scans,
// included as a contrast baseline).
type MRU struct {
	capacity int
	list     *pageList
}

// NewMRU returns an MRU cache with the given frame count.
func NewMRU(capacity int) *MRU {
	return &MRU{capacity: validateCapacity(capacity), list: newPageList()}
}

// Name implements Cache.
func (c *MRU) Name() string { return "MRU" }

// Capacity implements Cache.
func (c *MRU) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *MRU) Len() int { return c.list.Len() }

// Resident implements Cache.
func (c *MRU) Resident(p PageID) bool { return c.list.Contains(p) }

// Reference implements Cache.
func (c *MRU) Reference(p PageID) bool {
	if c.list.MoveToFront(p) {
		return true
	}
	if c.list.Len() >= c.capacity {
		c.list.PopFront() // evict the most recently used page
	}
	c.list.PushFront(p)
	return false
}

// Reset implements Cache.
func (c *MRU) Reset() { c.list.Clear() }

// FIFO evicts pages in arrival order regardless of intervening references.
type FIFO struct {
	capacity int
	list     *pageList // front = newest arrival, back = oldest arrival
}

// NewFIFO returns a FIFO cache with the given frame count.
func NewFIFO(capacity int) *FIFO {
	return &FIFO{capacity: validateCapacity(capacity), list: newPageList()}
}

// Name implements Cache.
func (c *FIFO) Name() string { return "FIFO" }

// Capacity implements Cache.
func (c *FIFO) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *FIFO) Len() int { return c.list.Len() }

// Resident implements Cache.
func (c *FIFO) Resident(p PageID) bool { return c.list.Contains(p) }

// Reference implements Cache.
func (c *FIFO) Reference(p PageID) bool {
	if c.list.Contains(p) {
		return true // hits do not reorder a FIFO queue
	}
	if c.list.Len() >= c.capacity {
		c.list.PopBack()
	}
	c.list.PushFront(p)
	return false
}

// Reset implements Cache.
func (c *FIFO) Reset() { c.list.Clear() }
