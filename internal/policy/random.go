package policy

import "repro/internal/stats"

// Random evicts a uniformly random resident page. It is the classical
// baseline showing what "no information at all" buys.
type Random struct {
	capacity int
	rng      *stats.RNG
	seed     uint64
	slots    []PageID
	index    map[PageID]int
}

// NewRandom returns a random-replacement cache seeded deterministically.
func NewRandom(capacity int, seed uint64) *Random {
	c := &Random{capacity: validateCapacity(capacity), seed: seed}
	c.Reset()
	return c
}

// Name implements Cache.
func (c *Random) Name() string { return "RANDOM" }

// Capacity implements Cache.
func (c *Random) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *Random) Len() int { return len(c.slots) }

// Resident implements Cache.
func (c *Random) Resident(p PageID) bool {
	_, ok := c.index[p]
	return ok
}

// Reset implements Cache.
func (c *Random) Reset() {
	c.rng = stats.NewRNG(c.seed)
	c.slots = c.slots[:0]
	c.index = make(map[PageID]int, c.capacity)
}

// Reference implements Cache.
func (c *Random) Reference(p PageID) bool {
	if _, ok := c.index[p]; ok {
		return true
	}
	if len(c.slots) >= c.capacity {
		i := c.rng.Intn(len(c.slots))
		victim := c.slots[i]
		last := len(c.slots) - 1
		c.slots[i] = c.slots[last]
		c.index[c.slots[i]] = i
		c.slots = c.slots[:last]
		delete(c.index, victim)
	}
	c.index[p] = len(c.slots)
	c.slots = append(c.slots, p)
	return false
}
