// Package policy defines the page-replacement contract shared by every
// buffering algorithm in this repository and implements the baseline
// policies the paper compares against (and the wider family it spawned):
// LRU-1, LFU, FIFO, CLOCK, GCLOCK, MRU, Random, 2Q, ARC, LRD, the A0
// probability oracle of Definition 3.1, and Belady's offline OPT (B0).
//
// The LRU-K policy itself — the paper's contribution — lives in
// internal/core and implements the same Cache interface.
package policy

import "fmt"

// PageID identifies a disk page. The simulator and all policies treat page
// ids as opaque; workload generators assign them densely from zero.
type PageID int64

// InvalidPage is a sentinel that no workload ever references.
const InvalidPage PageID = -1

// Tick is a logical timestamp counted in page references, the time unit of
// Section 2 of the paper ("we will measure all time intervals in terms of
// counts of successive page accesses").
type Tick int64

// Cache is a fixed-capacity page cache with some replacement policy. One
// Reference call processes one element of the reference string.
//
// Implementations are not safe for concurrent use; the simulator drives a
// cache from a single goroutine, as the paper's trace-driven simulation
// does.
type Cache interface {
	// Name returns a short identifier such as "LRU-2" used in tables.
	Name() string
	// Capacity returns the fixed number of page frames (B in the paper).
	Capacity() int
	// Len returns the number of currently resident pages.
	Len() int
	// Reference processes a reference to page p, admitting it on a miss
	// (evicting a victim when full) and reports whether it was a hit.
	Reference(p PageID) bool
	// Resident reports whether p currently occupies a frame.
	Resident(p PageID) bool
	// Reset restores the cache to its freshly-constructed state.
	Reset()
}

// TraceAware is implemented by offline policies (Belady's B0) that must see
// the whole reference string before it is replayed.
type TraceAware interface {
	// SetTrace installs the full reference string about to be replayed.
	// The policy may retain refs; callers must not mutate it afterwards.
	SetTrace(refs []PageID)
}

// ProbabilityAware is implemented by oracle policies (A0) that consume the
// true reference-probability vector of the workload.
type ProbabilityAware interface {
	// SetProbabilities installs the true probability of reference for every
	// page the workload can emit.
	SetProbabilities(probs map[PageID]float64)
}

func validateCapacity(capacity int) int {
	if capacity <= 0 {
		panic(fmt.Sprintf("policy: capacity must be positive, got %d", capacity))
	}
	return capacity
}
