package policy

// This file implements W-TinyLFU (Einziger, Friedman & Manes 2017), the
// modern end of the lineage the paper started: like LRU-K it judges a
// page by its recent reference frequency rather than pure recency, and
// like the paper's critique of LFU demands ("the LFU algorithm has no
// means to discriminate recent versus past reference frequency") it ages
// its counts — here by periodically halving a Count-Min sketch rather
// than by truncating history to K references.
//
// Structure: a small LRU window absorbs bursts; the main area is an SLRU.
// On window overflow, the window victim duels the main area's probation
// victim: the sketch's frequency estimate decides who stays — "admission
// by frequency", TinyLFU's core idea.

// cmSketch is a 4-row Count-Min sketch with 4-bit counters and periodic
// halving ("reset"), the aging mechanism.
type cmSketch struct {
	rows    [4][]uint8
	mask    uint64
	samples int
	limit   int
}

func newCMSketch(capacity int) *cmSketch {
	width := 1
	for width < capacity*8 {
		width <<= 1
	}
	s := &cmSketch{mask: uint64(width - 1), limit: capacity * 10}
	for i := range s.rows {
		s.rows[i] = make([]uint8, width)
	}
	return s
}

func cmHash(p PageID, row uint64) uint64 {
	z := uint64(p)*0x9e3779b97f4a7c15 + row*0xbf58476d1ce4e5b9
	z ^= z >> 29
	z *= 0x94d049bb133111eb
	z ^= z >> 32
	return z
}

// add increments p's counters (capped at 15) and runs the reset when the
// sample limit is reached.
func (s *cmSketch) add(p PageID) {
	for i := range s.rows {
		idx := cmHash(p, uint64(i)) & s.mask
		if s.rows[i][idx] < 15 {
			s.rows[i][idx]++
		}
	}
	s.samples++
	if s.samples >= s.limit {
		s.reset()
	}
}

// estimate returns the minimum counter across rows.
func (s *cmSketch) estimate(p PageID) uint8 {
	est := uint8(15)
	for i := range s.rows {
		v := s.rows[i][cmHash(p, uint64(i))&s.mask]
		if v < est {
			est = v
		}
	}
	return est
}

// reset halves every counter, the TinyLFU aging step.
func (s *cmSketch) reset() {
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] /= 2
		}
	}
	s.samples /= 2
}

// TinyLFU is the W-TinyLFU cache.
type TinyLFU struct {
	capacity  int
	windowCap int
	window    *pageList // LRU window, front = MRU
	main      *SLRU
	sketch    *cmSketch
}

// NewTinyLFU returns a W-TinyLFU cache with the authors' recommended
// layout: a 1% LRU window (minimum one frame) in front of an SLRU main
// area with an 80% protected segment.
func NewTinyLFU(capacity int) *TinyLFU {
	validateCapacity(capacity)
	windowCap := capacity / 100
	if windowCap < 1 {
		windowCap = 1
	}
	mainCap := capacity - windowCap
	c := &TinyLFU{
		capacity:  capacity,
		windowCap: windowCap,
		window:    newPageList(),
		sketch:    newCMSketch(capacity),
	}
	if mainCap >= 1 {
		c.main = NewSLRU(mainCap, 0.8)
	} else {
		// Degenerate capacity: the window is the whole cache.
		c.windowCap = capacity
	}
	return c
}

// Name implements Cache.
func (c *TinyLFU) Name() string { return "W-TinyLFU" }

// Capacity implements Cache.
func (c *TinyLFU) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *TinyLFU) Len() int {
	n := c.window.Len()
	if c.main != nil {
		n += c.main.Len()
	}
	return n
}

// Resident implements Cache.
func (c *TinyLFU) Resident(p PageID) bool {
	if c.window.Contains(p) {
		return true
	}
	return c.main != nil && c.main.Resident(p)
}

// Reset implements Cache.
func (c *TinyLFU) Reset() {
	c.window.Clear()
	if c.main != nil {
		c.main.Reset()
	}
	c.sketch = newCMSketch(c.capacity)
}

// Reference implements Cache.
func (c *TinyLFU) Reference(p PageID) bool {
	c.sketch.add(p)
	if c.window.MoveToFront(p) {
		return true
	}
	if c.main != nil && c.main.Resident(p) {
		c.main.Reference(p) // SLRU-internal promotion
		return true
	}
	// Miss: admit into the window.
	c.window.PushFront(p)
	if c.window.Len() <= c.windowCap {
		return false
	}
	// Window overflow: its LRU victim duels the main probation victim.
	candidate, _ := c.window.PopBack()
	if c.main == nil {
		return false // window-only cache: overflow is eviction
	}
	if c.main.Len() < c.main.Capacity() {
		c.main.admit(candidate)
		return false
	}
	victim, ok := c.main.probationVictim()
	if !ok || c.sketch.estimate(candidate) > c.sketch.estimate(victim) {
		// The candidate's recent frequency wins (or nothing to duel):
		// evict the victim and admit the candidate.
		c.main.evictProbation()
		c.main.admit(candidate)
	}
	// Otherwise the candidate is dropped: TinyLFU refuses admission to
	// one-hit wonders, the sharpest form of the paper's early page
	// replacement (§2.1.1).
	return false
}

// --- SLRU hooks used by TinyLFU ---

// admit inserts p into the probationary segment without the usual
// capacity-driven eviction (the caller manages capacity).
func (s *SLRU) admit(p PageID) {
	if s.Len() >= s.capacity {
		// Defensive: never exceed capacity even on misuse.
		if _, ok := s.probation.PopBack(); !ok {
			s.protected.PopBack()
		}
	}
	s.probation.PushFront(p)
}

// probationVictim returns the next eviction candidate without removing it;
// when the probationary segment is empty, the protected LRU stands in.
func (s *SLRU) probationVictim() (PageID, bool) {
	if v, ok := s.probation.Back(); ok {
		return v, true
	}
	return s.protected.Back()
}

// evictProbation removes the current victim.
func (s *SLRU) evictProbation() {
	if _, ok := s.probation.PopBack(); ok {
		return
	}
	s.protected.PopBack()
}
