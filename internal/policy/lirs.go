package policy

// LIRS is the Low Inter-reference Recency Set policy (Jiang & Zhang,
// SIGMETRICS 2002), a direct intellectual descendant of LRU-2: its
// Inter-Reference Recency (IRR) — the number of distinct pages touched
// between consecutive references to a page — is the stack-distance form of
// the paper's Backward 2-distance. Blocks with low IRR ("LIR") own most of
// the cache; blocks seen once or with high IRR ("HIR") churn through a
// small queue, giving LRU-2-style scan resistance with O(1) operations.
//
// Structures, after the paper:
//
//	stack S: recency stack of LIR blocks, resident HIR blocks and
//	         non-resident HIR ghosts; its bottom is always LIR.
//	queue Q: resident HIR blocks, FIFO eviction order.
//
// The stack is capped at ghostFactor × capacity entries to bound the
// memory of non-resident ghosts — the same concern the paper's Retained
// Information Period addresses for LRU-K.
type LIRS struct {
	capacity int
	lirCap   int // target number of LIR blocks (~99% of capacity)
	hirCap   int // target number of resident HIR blocks
	ghostCap int // max stack entries

	stack *pageList // front = most recent
	queue *pageList // front = most recent resident HIR; evict from back
	// ghosts orders non-resident stack entries by creation (front =
	// newest); when their count exceeds ghostCap the oldest is forgotten,
	// bounding memory exactly as the paper's Retained Information Period
	// bounds LRU-K history.
	ghosts *pageList
	state  map[PageID]lirsState
	nLIR   int
	nRes   int
}

type lirsState uint8

const (
	lirsLIR         lirsState = iota // resident, low IRR
	lirsHIRResident                  // resident, high IRR
	lirsHIRGhost                     // non-resident, remembered in the stack
)

// NewLIRS returns a LIRS cache. hirFraction is the share of capacity given
// to the resident HIR queue (<=0 selects the authors' 1%, with a minimum
// of one frame); ghostFactor bounds the stack at that multiple of capacity
// (<=0 selects 3).
func NewLIRS(capacity int, hirFraction float64, ghostFactor int) *LIRS {
	validateCapacity(capacity)
	if hirFraction <= 0 || hirFraction >= 1 {
		hirFraction = 0.01
	}
	hirCap := int(hirFraction * float64(capacity))
	if hirCap < 1 {
		hirCap = 1
	}
	lirCap := capacity - hirCap
	if lirCap < 1 {
		lirCap = 1
		hirCap = capacity - 1
		if hirCap < 1 {
			hirCap = 1 // capacity 1: degenerate but functional
			lirCap = 1
		}
	}
	if ghostFactor <= 0 {
		ghostFactor = 3
	}
	return &LIRS{
		capacity: capacity,
		lirCap:   lirCap,
		hirCap:   hirCap,
		ghostCap: ghostFactor * capacity,
		stack:    newPageList(),
		queue:    newPageList(),
		ghosts:   newPageList(),
		state:    make(map[PageID]lirsState),
	}
}

// Name implements Cache.
func (c *LIRS) Name() string { return "LIRS" }

// Capacity implements Cache.
func (c *LIRS) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *LIRS) Len() int { return c.nRes }

// Resident implements Cache.
func (c *LIRS) Resident(p PageID) bool {
	s, ok := c.state[p]
	return ok && s != lirsHIRGhost
}

// Reset implements Cache.
func (c *LIRS) Reset() {
	c.stack.Clear()
	c.queue.Clear()
	c.ghosts.Clear()
	c.state = make(map[PageID]lirsState)
	c.nLIR = 0
	c.nRes = 0
}

// Reference implements Cache.
func (c *LIRS) Reference(p PageID) bool {
	st, known := c.state[p]
	switch {
	case known && st == lirsLIR:
		// LIR hit: refresh recency; the bottom may need pruning if p was it.
		c.stack.MoveToFront(p)
		c.prune()
		return true

	case known && st == lirsHIRResident:
		if c.stack.Contains(p) {
			// Its new IRR is lower than the oldest LIR's recency: promote.
			c.stack.MoveToFront(p)
			c.queue.Remove(p)
			c.state[p] = lirsLIR
			c.nLIR++
			if c.nLIR > c.lirCap {
				c.demoteBottomLIR()
			}
			c.prune()
		} else {
			// Not in the stack: stays HIR, refresh both recencies.
			c.stackPushFront(p)
			c.queue.MoveToFront(p)
		}
		return true

	default:
		// Miss (unknown page or ghost). Make room among residents first.
		if c.nRes >= c.capacity {
			c.evictHIR()
		}
		// Re-read the state: the eviction may have demoted and pruned, and
		// pruning can forget exactly the ghost being referenced.
		st, known = c.state[p]
		if known && st == lirsHIRGhost && c.stack.Contains(p) {
			// A reuse within the stack's reach: the block's IRR beats the
			// coldest LIR block, so it enters as LIR (the LRU-2 insight).
			c.stack.MoveToFront(p)
			c.ghosts.Remove(p)
			c.state[p] = lirsLIR
			c.nLIR++
			c.nRes++
			if c.nLIR > c.lirCap {
				c.demoteBottomLIR()
			}
			c.prune()
			return false
		}
		// Cold block (or a ghost that lost its stack entry to the eviction
		// above — recover it as cold). Until the LIR set is full (cold
		// start), admit straight to LIR; afterwards cold blocks enter as
		// resident HIR.
		c.ghosts.Remove(p)
		c.stackPushFront(p)
		if c.nLIR < c.lirCap {
			c.state[p] = lirsLIR
			c.nLIR++
		} else {
			c.queue.PushFront(p)
			c.state[p] = lirsHIRResident
		}
		c.nRes++
		return false
	}
}

// stackPushFront inserts or refreshes p at the stack top.
func (c *LIRS) stackPushFront(p PageID) {
	if !c.stack.MoveToFront(p) {
		c.stack.PushFront(p)
	}
}

// boundGhosts forgets the oldest ghosts beyond the configured cap.
func (c *LIRS) boundGhosts() {
	for c.ghosts.Len() > c.ghostCap {
		victim, ok := c.ghosts.PopBack()
		if !ok {
			return
		}
		if c.state[victim] == lirsHIRGhost {
			c.stack.Remove(victim)
			delete(c.state, victim)
			c.prune()
		}
	}
}

// evictHIR evicts the back of the resident-HIR queue; if the queue is
// empty (all frames LIR), the bottom LIR block is demoted first.
func (c *LIRS) evictHIR() {
	if c.queue.Len() == 0 {
		c.demoteBottomLIR()
	}
	victim, ok := c.queue.PopBack()
	if !ok {
		return
	}
	c.nRes--
	if c.stack.Contains(victim) {
		c.state[victim] = lirsHIRGhost
		c.ghosts.PushFront(victim)
		c.boundGhosts()
	} else {
		delete(c.state, victim)
	}
}

// demoteBottomLIR turns the stack's bottom LIR block into a resident HIR
// block at the queue front, then prunes.
func (c *LIRS) demoteBottomLIR() {
	// Re-establish the invariant first: the bottom must be LIR.
	c.prune()
	bottom, ok := c.stack.Back()
	if !ok || c.state[bottom] != lirsLIR {
		return
	}
	c.stack.Remove(bottom)
	c.state[bottom] = lirsHIRResident
	c.queue.PushFront(bottom)
	c.nLIR--
	c.prune()
}

// prune removes non-LIR entries from the stack bottom so the bottom is
// always a LIR block; evicted ghosts are forgotten entirely.
func (c *LIRS) prune() {
	for {
		bottom, ok := c.stack.Back()
		if !ok {
			return
		}
		st := c.state[bottom]
		if st == lirsLIR {
			return
		}
		c.stack.Remove(bottom)
		if st == lirsHIRGhost {
			c.ghosts.Remove(bottom)
			delete(c.state, bottom)
		}
	}
}
