package policy

import (
	"fmt"

	"repro/internal/ordmap"
)

// Belady is Belady's offline optimal algorithm ([BELADY]; B0 in the
// paper's notation after [ADU]): on a miss with a full cache it evicts the
// resident page whose next reference lies farthest in the future. It
// requires the full reference string in advance (an "oracle that can look
// into the future", §3), so the simulator installs the trace through
// SetTrace before the replay. The paper argues B0 is unapproachable in
// practice and uses A0 as the fair optimum; Belady is provided as the
// absolute upper bound.
type Belady struct {
	capacity int
	trace    []PageID
	nextUse  []int64 // nextUse[i]: next position of trace[i] after i, or horizon
	cursor   int64
	resident map[PageID]int64 // page -> next use position
	order    *ordmap.Map[beladyKey, struct{}]
}

type beladyKey struct {
	next int64
	page PageID
}

func beladyLess(a, b beladyKey) bool {
	if a.next != b.next {
		return a.next < b.next
	}
	return a.page < b.page
}

// NewBelady returns a Belady/B0 cache. SetTrace must be called before the
// first Reference.
func NewBelady(capacity int) *Belady {
	c := &Belady{capacity: validateCapacity(capacity)}
	c.Reset()
	return c
}

// Name implements Cache.
func (c *Belady) Name() string { return "B0" }

// Capacity implements Cache.
func (c *Belady) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *Belady) Len() int { return len(c.resident) }

// Resident implements Cache.
func (c *Belady) Resident(p PageID) bool {
	_, ok := c.resident[p]
	return ok
}

// Reset implements Cache. The installed trace is retained and the replay
// cursor rewinds to the beginning.
func (c *Belady) Reset() {
	c.cursor = 0
	c.resident = make(map[PageID]int64)
	c.order = ordmap.New[beladyKey, struct{}](beladyLess)
}

// SetTrace implements TraceAware. It precomputes, for every position, the
// position of the next reference to the same page.
func (c *Belady) SetTrace(refs []PageID) {
	c.trace = refs
	c.nextUse = make([]int64, len(refs))
	last := make(map[PageID]int64, 1024)
	horizon := int64(len(refs))
	for i := int64(len(refs)) - 1; i >= 0; i-- {
		p := refs[i]
		if nxt, ok := last[p]; ok {
			c.nextUse[i] = nxt
		} else {
			// No later reference: unique horizon+i keeps keys distinct and
			// orders never-again pages by staleness.
			c.nextUse[i] = horizon + (horizon - i)
		}
		last[p] = i
	}
	c.Reset()
}

// Reference implements Cache. Calls must replay the installed trace in
// order; a mismatch panics, as it indicates a simulator bug.
func (c *Belady) Reference(p PageID) bool {
	if c.trace == nil {
		panic("policy: Belady.Reference before SetTrace")
	}
	if c.cursor >= int64(len(c.trace)) {
		panic("policy: Belady.Reference past end of installed trace")
	}
	if c.trace[c.cursor] != p {
		panic(fmt.Sprintf("policy: Belady trace mismatch at %d: replaying %d, installed %d",
			c.cursor, p, c.trace[c.cursor]))
	}
	next := c.nextUse[c.cursor]
	c.cursor++

	if old, ok := c.resident[p]; ok {
		c.order.Delete(beladyKey{next: old, page: p})
		c.resident[p] = next
		c.order.Set(beladyKey{next: next, page: p}, struct{}{})
		return true
	}
	if len(c.resident) >= c.capacity {
		victimKey, _, _ := c.order.Max()
		c.order.Delete(victimKey)
		delete(c.resident, victimKey.page)
	}
	c.resident[p] = next
	c.order.Set(beladyKey{next: next, page: p}, struct{}{})
	return false
}
