package policy

// LFU is the Least Frequently Used policy compared against in Table 4.3.
// It evicts the resident page with the smallest total reference count; ties
// are broken by least-recent use within the lowest-frequency class, which is
// the common textbook refinement.
//
// As the paper observes (§4.3), LFU "never forgets any previous references"
// — counts persist for the lifetime of residency — which is exactly the
// weakness LRU-K addresses. Counts are dropped when a page is evicted
// (in-cache LFU, the variant the paper measures against).
//
// The implementation is the constant-time frequency-list structure: a
// doubly-linked list of frequency classes, each holding an LRU-ordered list
// of its pages.
type LFU struct {
	capacity int
	nodes    map[PageID]*lfuNode
	freqHead *freqClass // lowest frequency class
}

type lfuNode struct {
	page       PageID
	class      *freqClass
	prev, next *lfuNode // within the class, front = most recent
}

type freqClass struct {
	freq       int64
	head, tail *lfuNode
	prev, next *freqClass
}

// NewLFU returns an LFU cache with the given frame count.
func NewLFU(capacity int) *LFU {
	return &LFU{capacity: validateCapacity(capacity), nodes: make(map[PageID]*lfuNode)}
}

// Name implements Cache.
func (c *LFU) Name() string { return "LFU" }

// Capacity implements Cache.
func (c *LFU) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *LFU) Len() int { return len(c.nodes) }

// Resident implements Cache.
func (c *LFU) Resident(p PageID) bool {
	_, ok := c.nodes[p]
	return ok
}

// Reset implements Cache.
func (c *LFU) Reset() {
	c.nodes = make(map[PageID]*lfuNode)
	c.freqHead = nil
}

// Reference implements Cache.
func (c *LFU) Reference(p PageID) bool {
	if n, ok := c.nodes[p]; ok {
		c.promote(n)
		return true
	}
	if len(c.nodes) >= c.capacity {
		c.evict()
	}
	c.insert(p)
	return false
}

// Freq returns the current reference count of p, or 0 if not resident.
// It is exported for tests and trace analysis.
func (c *LFU) Freq(p PageID) int64 {
	if n, ok := c.nodes[p]; ok {
		return n.class.freq
	}
	return 0
}

func (c *LFU) insert(p PageID) {
	cls := c.freqHead
	if cls == nil || cls.freq != 1 {
		cls = &freqClass{freq: 1, next: c.freqHead}
		if c.freqHead != nil {
			c.freqHead.prev = cls
		}
		c.freqHead = cls
	}
	n := &lfuNode{page: p, class: cls}
	cls.pushFront(n)
	c.nodes[p] = n
}

// promote moves n to the class with frequency freq+1, creating it if needed.
func (c *LFU) promote(n *lfuNode) {
	old := n.class
	next := old.next
	if next == nil || next.freq != old.freq+1 {
		next = &freqClass{freq: old.freq + 1, prev: old, next: old.next}
		if old.next != nil {
			old.next.prev = next
		}
		old.next = next
	}
	old.remove(n)
	if old.head == nil {
		c.removeClass(old)
	}
	n.class = next
	next.pushFront(n)
}

func (c *LFU) evict() {
	cls := c.freqHead
	if cls == nil {
		return
	}
	victim := cls.tail // least recently used within the lowest class
	cls.remove(victim)
	if cls.head == nil {
		c.removeClass(cls)
	}
	delete(c.nodes, victim.page)
}

func (c *LFU) removeClass(cls *freqClass) {
	if cls.prev != nil {
		cls.prev.next = cls.next
	} else {
		c.freqHead = cls.next
	}
	if cls.next != nil {
		cls.next.prev = cls.prev
	}
}

func (f *freqClass) pushFront(n *lfuNode) {
	n.prev, n.next = nil, f.head
	if f.head != nil {
		f.head.prev = n
	}
	f.head = n
	if f.tail == nil {
		f.tail = n
	}
}

func (f *freqClass) remove(n *lfuNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		f.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		f.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
