package policy

import "repro/internal/ordmap"

// A0 is the optimal statistical policy of Definition 3.1 ([COFFDENN],
// Theorem 6.3): with the true reference-probability vector β known, it
// keeps buffer-resident the B referenced pages of highest β. A page whose
// probability does not exceed the minimum resident probability is used and
// released without displacing anything (the optimal policy never trades a
// hotter page for a colder one), so the steady-state hit ratio is the sum
// of the top-B probabilities.
//
// Workload generators publish their true β vector; the simulator installs
// it through SetProbabilities before the run.
type A0 struct {
	capacity int
	probs    map[PageID]float64
	resident map[PageID]float64
	order    *ordmap.Map[a0Key, struct{}] // resident pages by ascending β
}

type a0Key struct {
	prob float64
	page PageID
}

func a0Less(a, b a0Key) bool {
	if a.prob != b.prob {
		return a.prob < b.prob
	}
	return a.page < b.page
}

// NewA0 returns an A0 oracle with the given frame count. Probabilities must
// be installed with SetProbabilities before the first Reference.
func NewA0(capacity int) *A0 {
	c := &A0{capacity: validateCapacity(capacity)}
	c.Reset()
	return c
}

// Name implements Cache.
func (c *A0) Name() string { return "A0" }

// Capacity implements Cache.
func (c *A0) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *A0) Len() int { return len(c.resident) }

// Resident implements Cache.
func (c *A0) Resident(p PageID) bool {
	_, ok := c.resident[p]
	return ok
}

// Reset implements Cache. Installed probabilities are retained.
func (c *A0) Reset() {
	c.resident = make(map[PageID]float64)
	c.order = ordmap.New[a0Key, struct{}](a0Less)
}

// SetProbabilities implements ProbabilityAware.
func (c *A0) SetProbabilities(probs map[PageID]float64) {
	c.probs = probs
}

// Reference implements Cache.
func (c *A0) Reference(p PageID) bool {
	if _, ok := c.resident[p]; ok {
		return true
	}
	prob := c.probs[p] // unknown pages default to probability zero
	if len(c.resident) < c.capacity {
		c.admit(p, prob)
		return false
	}
	minKey, _, _ := c.order.Min()
	if prob > minKey.prob {
		c.order.Delete(minKey)
		delete(c.resident, minKey.page)
		c.admit(p, prob)
	}
	return false
}

func (c *A0) admit(p PageID, prob float64) {
	c.resident[p] = prob
	c.order.Set(a0Key{prob: prob, page: p}, struct{}{})
}
