package policy

// LRD is the Least Reference Density policy (variant V2 with aging, after
// Effelsberg & Haerder's classification cited by the paper as [EFFEHAER]).
// Each resident page carries a reference count; its reference density is
// count divided by the time since the page was admitted. The victim is the
// page with the lowest density. Every agingInterval references, all counts
// are divided by agingFactor so that stale popularity decays — this is the
// "aging scheme based on reference counters" whose workload-dependent
// parameters the paper contrasts with LRU-K's tuning-free design.
type LRD struct {
	capacity      int
	agingInterval Tick
	agingFactor   float64
	clock         Tick
	lastAging     Tick
	pages         map[PageID]*lrdEntry
}

type lrdEntry struct {
	count    float64
	admitted Tick
}

// NewLRD returns an LRD-V2 cache. agingInterval is the number of references
// between aging sweeps (a common choice is the capacity itself, which
// NewLRD applies when agingInterval <= 0) and agingFactor > 1 divides the
// counts at each sweep.
func NewLRD(capacity int, agingInterval Tick, agingFactor float64) *LRD {
	validateCapacity(capacity)
	if agingInterval <= 0 {
		agingInterval = Tick(capacity)
	}
	if agingFactor <= 1 {
		agingFactor = 2
	}
	return &LRD{
		capacity:      capacity,
		agingInterval: agingInterval,
		agingFactor:   agingFactor,
		pages:         make(map[PageID]*lrdEntry),
	}
}

// Name implements Cache.
func (c *LRD) Name() string { return "LRD" }

// Capacity implements Cache.
func (c *LRD) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *LRD) Len() int { return len(c.pages) }

// Resident implements Cache.
func (c *LRD) Resident(p PageID) bool {
	_, ok := c.pages[p]
	return ok
}

// Reset implements Cache.
func (c *LRD) Reset() {
	c.clock = 0
	c.lastAging = 0
	c.pages = make(map[PageID]*lrdEntry)
}

// Reference implements Cache.
func (c *LRD) Reference(p PageID) bool {
	c.clock++
	if c.clock-c.lastAging >= c.agingInterval {
		c.age()
	}
	if e, ok := c.pages[p]; ok {
		e.count++
		return true
	}
	if len(c.pages) >= c.capacity {
		c.evict()
	}
	c.pages[p] = &lrdEntry{count: 1, admitted: c.clock}
	return false
}

func (c *LRD) age() {
	for _, e := range c.pages {
		e.count /= c.agingFactor
		if e.count < 1 {
			e.count = 1
		}
	}
	c.lastAging = c.clock
}

func (c *LRD) evict() {
	var victim PageID = InvalidPage
	best := 0.0
	for p, e := range c.pages {
		age := float64(c.clock - e.admitted + 1)
		density := e.count / age
		// Deterministic tie-break on page id keeps simulations reproducible
		// despite map iteration order.
		if victim == InvalidPage || density < best || (density == best && p < victim) {
			victim, best = p, density
		}
	}
	delete(c.pages, victim)
}
