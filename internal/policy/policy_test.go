package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// refs is shorthand for building reference strings in tests.
func refs(ids ...PageID) []PageID { return ids }

// replay feeds a reference string to a cache and returns the hit pattern.
func replay(c Cache, trace []PageID) []bool {
	if ta, ok := c.(TraceAware); ok {
		ta.SetTrace(trace)
	}
	hits := make([]bool, len(trace))
	for i, p := range trace {
		hits[i] = c.Reference(p)
	}
	return hits
}

func countHits(hits []bool) int {
	n := 0
	for _, h := range hits {
		if h {
			n++
		}
	}
	return n
}

func TestValidateCapacityPanics(t *testing.T) {
	constructors := map[string]func(){
		"LRU":    func() { NewLRU(0) },
		"MRU":    func() { NewMRU(-1) },
		"FIFO":   func() { NewFIFO(0) },
		"LFU":    func() { NewLFU(0) },
		"CLOCK":  func() { NewClock(0) },
		"GCLOCK": func() { NewGClock(0, 1, 0) },
		"2Q":     func() { NewTwoQ(0) },
		"ARC":    func() { NewARC(0) },
		"LRD":    func() { NewLRD(0, 0, 2) },
		"RANDOM": func() { NewRandom(0, 1) },
		"A0":     func() { NewA0(0) },
		"B0":     func() { NewBelady(0) },
	}
	for name, f := range constructors {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: zero capacity did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(3)
	replay(c, refs(1, 2, 3))
	c.Reference(1) // order now (MRU→LRU): 1, 3, 2
	c.Reference(4) // evicts 2
	if c.Resident(2) {
		t.Error("LRU kept the least recently used page")
	}
	for _, p := range refs(1, 3, 4) {
		if !c.Resident(p) {
			t.Errorf("page %d should be resident", p)
		}
	}
}

func TestLRUHitMiss(t *testing.T) {
	c := NewLRU(2)
	hits := replay(c, refs(1, 2, 1, 3, 2))
	want := []bool{false, false, true, false, false} // 3 evicts... 1,2 -> touch 1 -> admit 3 evicts 2 -> 2 misses
	for i := range want {
		if hits[i] != want[i] {
			t.Errorf("ref %d: hit=%v, want %v (pattern %v)", i, hits[i], want[i], hits)
		}
	}
}

func TestMRUEvictsMostRecent(t *testing.T) {
	c := NewMRU(2)
	replay(c, refs(1, 2)) // full; MRU is 2
	c.Reference(3)        // evicts 2
	if c.Resident(2) || !c.Resident(1) || !c.Resident(3) {
		t.Errorf("MRU eviction wrong: resident(1)=%v resident(2)=%v resident(3)=%v",
			c.Resident(1), c.Resident(2), c.Resident(3))
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	c := NewFIFO(2)
	replay(c, refs(1, 2, 1, 1, 1)) // many hits on 1 must not save it
	c.Reference(3)                 // evicts 1, the oldest arrival
	if c.Resident(1) {
		t.Error("FIFO reordered on hit")
	}
	if !c.Resident(2) || !c.Resident(3) {
		t.Error("FIFO kept wrong pages")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(3)
	replay(c, refs(1, 1, 1, 2, 2, 3))
	c.Reference(4) // evicts 3 (freq 1)
	if c.Resident(3) {
		t.Error("LFU evicted a more frequent page")
	}
	if !c.Resident(1) || !c.Resident(2) || !c.Resident(4) {
		t.Error("LFU resident set wrong")
	}
	if got := c.Freq(1); got != 3 {
		t.Errorf("Freq(1) = %d, want 3", got)
	}
	if got := c.Freq(99); got != 0 {
		t.Errorf("Freq(non-resident) = %d, want 0", got)
	}
}

func TestLFUTieBreakIsLRUWithinClass(t *testing.T) {
	c := NewLFU(2)
	replay(c, refs(1, 2)) // both freq 1; 1 is least recent
	c.Reference(3)        // must evict 1
	if c.Resident(1) {
		t.Error("LFU tie-break did not evict the least recently used")
	}
	if !c.Resident(2) || !c.Resident(3) {
		t.Error("LFU tie-break kept wrong pages")
	}
}

func TestLFUForgetsCountsOnEviction(t *testing.T) {
	c := NewLFU(2)
	replay(c, refs(1, 1, 1, 1, 2))
	c.Reference(3) // evicts 2 (freq 1)
	c.Reference(2) // readmitted with fresh count 1
	if got := c.Freq(2); got != 1 {
		t.Errorf("readmitted page freq = %d, want 1 (in-cache LFU must forget)", got)
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock(2)
	replay(c, refs(1, 2))
	c.Reference(1) // sets 1's reference bit
	c.Reference(3) // sweep clears bits; must evict 2 (bit already cleared second pass)
	if !c.Resident(1) {
		t.Error("CLOCK evicted a page with its reference bit set before pages without")
	}
	if c.Resident(2) {
		t.Error("CLOCK kept the page without a second chance")
	}
}

func TestGClockCountsSurviveSweeps(t *testing.T) {
	// GCLOCK with initial count 3: a freshly admitted hot page survives
	// three hand passes.
	c := NewGClock(2, 3, 0)
	replay(c, refs(1, 2))
	for i := 0; i < 4; i++ {
		c.Reference(1) // count of 1 grows
	}
	c.Reference(3) // must decrement both, evicting the lower-count page 2
	if c.Resident(2) {
		t.Error("GCLOCK evicted the high-count page first")
	}
	if !c.Resident(1) || !c.Resident(3) {
		t.Error("GCLOCK resident set wrong")
	}
}

func TestGClockMaxCountCap(t *testing.T) {
	c := NewGClock(2, 1, 2)
	replay(c, refs(1, 2))
	for i := 0; i < 100; i++ {
		c.Reference(1)
	}
	// Count is capped at 2: after at most a few sweeps page 1 is evictable,
	// so the cache cannot livelock.
	for i := 0; i < 4; i++ {
		c.Reference(PageID(10 + i))
	}
	if c.Resident(1) {
		t.Log("page 1 evicted as expected under capped counts")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestTwoQGhostPromotion(t *testing.T) {
	c := NewTwoQTuned(4, 1, 4)
	// Fill A1in past Kin so 1 is pushed to the A1out ghost list.
	replay(c, refs(1, 2, 3, 4, 5)) // capacity reached, 1 evicted to ghost
	if c.Resident(1) {
		t.Fatal("page 1 should have been evicted from A1in")
	}
	hit := c.Reference(1) // ghost hit: promoted to Am, but still a miss
	if hit {
		t.Error("ghost hit reported as cache hit")
	}
	if !c.Resident(1) {
		t.Error("ghost hit did not readmit the page")
	}
}

func TestTwoQA1inHitNoPromotion(t *testing.T) {
	c := NewTwoQTuned(4, 4, 4)
	c.Reference(1)
	if !c.Reference(1) {
		t.Error("A1in hit not reported")
	}
}

func TestTwoQTunedValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewTwoQTuned(4, 0, 2) },
		func() { NewTwoQTuned(4, 5, 2) },
		func() { NewTwoQTuned(4, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid 2Q tuning did not panic")
				}
			}()
			f()
		}()
	}
}

func TestARCPromotesOnSecondReference(t *testing.T) {
	c := NewARC(4)
	c.Reference(1) // T1
	c.Reference(1) // must move to T2
	c.Reference(2)
	c.Reference(3)
	c.Reference(4)
	c.Reference(5) // full: replace prefers T1 (p=0)
	if !c.Resident(1) {
		t.Error("ARC evicted a twice-referenced page while once-referenced pages remain")
	}
}

func TestARCGhostHitAdaptsTarget(t *testing.T) {
	c := NewARC(2)
	// 1 is promoted to T2, then the miss on 3 runs REPLACE with |T1| > p,
	// pushing 2 into the B1 ghost list.
	replay(c, refs(1, 1, 2, 3))
	if c.Resident(2) {
		t.Fatal("expected 2 evicted to the B1 ghost list")
	}
	before := c.Target()
	c.Reference(2) // B1 ghost hit: p must grow
	if c.Target() <= before {
		t.Errorf("ARC target did not grow on B1 hit: %d -> %d", before, c.Target())
	}
	if !c.Resident(2) {
		t.Error("B1 ghost hit did not readmit")
	}
}

func TestLRDEvictsLowestDensity(t *testing.T) {
	c := NewLRD(2, 1000, 2)
	c.Reference(1)
	c.Reference(1)
	c.Reference(1)
	c.Reference(2) // density(1)=3/age, density(2)=1/age — 2 is colder
	c.Reference(3) // evicts 2
	if c.Resident(2) {
		t.Error("LRD evicted the denser page")
	}
	if !c.Resident(1) || !c.Resident(3) {
		t.Error("LRD resident set wrong")
	}
}

func TestLRDAgingDecaysCounts(t *testing.T) {
	// Aging every 4 references halves counts, so an old burst loses to a
	// recent steady stream.
	c := NewLRD(2, 4, 2)
	replay(c, refs(1, 1, 1, 1)) // burst on 1, then aging sweep at t=4
	c.Reference(2)
	c.Reference(2)
	c.Reference(2)
	// count(1) ~ decayed; 2 denser now relative to its age
	c.Reference(3)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	trace := make([]PageID, 2000)
	r := stats.NewRNG(7)
	for i := range trace {
		trace[i] = PageID(r.Intn(50))
	}
	a := NewRandom(10, 42)
	b := NewRandom(10, 42)
	ha := countHits(replay(a, trace))
	hb := countHits(replay(b, trace))
	if ha != hb {
		t.Errorf("same seed, different hits: %d vs %d", ha, hb)
	}
}

func TestA0KeepsTopProbabilityPages(t *testing.T) {
	c := NewA0(2)
	c.SetProbabilities(map[PageID]float64{1: 0.5, 2: 0.3, 3: 0.1, 4: 0.1})
	replay(c, refs(3, 4, 1, 2)) // 1 and 2 displace 3 and 4
	if !c.Resident(1) || !c.Resident(2) {
		t.Error("A0 did not retain the highest-probability pages")
	}
	c.Reference(3) // colder than everything resident: must not displace
	if c.Resident(3) {
		t.Error("A0 admitted a colder page over hotter residents")
	}
	if !c.Reference(1) {
		t.Error("hot page not a hit")
	}
}

func TestA0UnknownPageProbabilityZero(t *testing.T) {
	c := NewA0(1)
	c.SetProbabilities(map[PageID]float64{1: 0.9})
	c.Reference(1)
	c.Reference(99) // unknown page: β=0, not admitted
	if !c.Resident(1) || c.Resident(99) {
		t.Error("A0 displaced a known-hot page for an unknown page")
	}
}

func TestBeladyOptimalOnTextbookTrace(t *testing.T) {
	// Classic example: OPT on this trace with 3 frames has 7 misses.
	trace := refs(7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2)
	c := NewBelady(3)
	hits := replay(c, trace)
	misses := len(trace) - countHits(hits)
	if misses != 7 {
		t.Errorf("Belady misses = %d, want 7 (hits pattern %v)", misses, hits)
	}
}

func TestBeladyNeverWorseThanLRU(t *testing.T) {
	r := stats.NewRNG(123)
	for round := 0; round < 10; round++ {
		trace := make([]PageID, 3000)
		for i := range trace {
			trace[i] = PageID(r.Intn(60))
		}
		for _, cap := range []int{5, 15, 30} {
			lru := NewLRU(cap)
			opt := NewBelady(cap)
			hLRU := countHits(replay(lru, trace))
			hOPT := countHits(replay(opt, trace))
			if hOPT < hLRU {
				t.Fatalf("round %d cap %d: OPT hits %d < LRU hits %d", round, cap, hOPT, hLRU)
			}
		}
	}
}

func TestBeladyPanicsOnMisuse(t *testing.T) {
	c := NewBelady(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Reference before SetTrace did not panic")
			}
		}()
		c.Reference(1)
	}()
	c.SetTrace(refs(1, 2))
	c.Reference(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("trace mismatch did not panic")
			}
		}()
		c.Reference(9)
	}()
}

func TestBeladyResetRewindsCursor(t *testing.T) {
	trace := refs(1, 2, 3, 1, 2, 3)
	c := NewBelady(2)
	h1 := countHits(replay(c, trace))
	c.Reset()
	h2 := 0
	for _, p := range trace {
		if c.Reference(p) {
			h2++
		}
	}
	if h1 != h2 {
		t.Errorf("hits after Reset differ: %d vs %d", h1, h2)
	}
}

// allPolicies builds one instance of every policy at the given capacity,
// ready to replay the given trace.
func allPolicies(capacity int, trace []PageID) []Cache {
	probs := make(map[PageID]float64)
	for _, p := range trace {
		probs[p]++
	}
	for p := range probs {
		probs[p] /= float64(len(trace))
	}
	a0 := NewA0(capacity)
	a0.SetProbabilities(probs)
	return []Cache{
		NewLRU(capacity),
		NewMRU(capacity),
		NewFIFO(capacity),
		NewLFU(capacity),
		NewClock(capacity),
		NewGClock(capacity, 2, 8),
		NewTwoQ(capacity),
		NewARC(capacity),
		NewLRD(capacity, 0, 2),
		NewFBR(capacity, 0),
		NewSLRU(capacity, 0.8),
		NewLIRS(capacity, 0, 0),
		NewTinyLFU(capacity),
		NewRandom(capacity, 99),
		a0,
		NewBelady(capacity),
	}
}

// TestInvariantsAcrossPolicies replays random traces through every policy
// and checks the universal cache invariants.
func TestInvariantsAcrossPolicies(t *testing.T) {
	r := stats.NewRNG(2024)
	trace := make([]PageID, 5000)
	for i := range trace {
		trace[i] = PageID(r.Intn(80))
	}
	for _, capacity := range []int{1, 3, 17, 64, 200} {
		for _, c := range allPolicies(capacity, trace) {
			if ta, ok := c.(TraceAware); ok {
				ta.SetTrace(trace)
			}
			for i, p := range trace {
				hit := c.Reference(p)
				if hit && !c.Resident(p) {
					t.Fatalf("%s cap %d ref %d: hit but not resident", c.Name(), capacity, i)
				}
				if c.Name() != "A0" && !c.Resident(p) {
					// Every demand-paging policy admits the referenced page.
					t.Fatalf("%s cap %d ref %d: referenced page not resident", c.Name(), capacity, i)
				}
				if c.Len() > c.Capacity() {
					t.Fatalf("%s cap %d ref %d: Len %d exceeds capacity", c.Name(), capacity, i, c.Len())
				}
			}
			if c.Capacity() != capacity {
				t.Fatalf("%s: Capacity() = %d, want %d", c.Name(), c.Capacity(), capacity)
			}
		}
	}
}

// TestResetRestoresColdState verifies Reset produces the same hit counts as
// a fresh instance.
func TestResetRestoresColdState(t *testing.T) {
	r := stats.NewRNG(555)
	trace := make([]PageID, 2000)
	for i := range trace {
		trace[i] = PageID(r.Intn(40))
	}
	for _, c := range allPolicies(16, trace) {
		if ta, ok := c.(TraceAware); ok {
			ta.SetTrace(trace)
		}
		first := countHits(replayNoSetTrace(c, trace))
		c.Reset()
		second := countHits(replayNoSetTrace(c, trace))
		if first != second {
			t.Errorf("%s: hits before/after Reset differ: %d vs %d", c.Name(), first, second)
		}
	}
}

// replayNoSetTrace replays without re-installing the trace (Reset keeps it).
func replayNoSetTrace(c Cache, trace []PageID) []bool {
	hits := make([]bool, len(trace))
	for i, p := range trace {
		hits[i] = c.Reference(p)
	}
	return hits
}

// TestQuickCapacityRespected is a property test: for arbitrary small traces
// and capacities, no policy ever exceeds its capacity and Len is exact for
// recency policies once warm.
func TestQuickCapacityRespected(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		trace := make([]PageID, len(raw))
		for i, x := range raw {
			trace[i] = PageID(x % 32)
		}
		for _, c := range allPolicies(capacity, trace) {
			if ta, ok := c.(TraceAware); ok {
				ta.SetTrace(trace)
			}
			for _, p := range trace {
				c.Reference(p)
				if c.Len() > capacity {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestHitRatioSanityOnHotSet: with a strongly skewed trace and enough
// capacity for the hot set, every reasonable policy achieves a decent hit
// ratio (MRU excluded by design).
func TestHitRatioSanityOnHotSet(t *testing.T) {
	r := stats.NewRNG(77)
	trace := make([]PageID, 30000)
	for i := range trace {
		if r.Float64() < 0.9 {
			trace[i] = PageID(r.Intn(20)) // hot set of 20
		} else {
			trace[i] = PageID(20 + r.Intn(5000))
		}
	}
	for _, c := range allPolicies(50, trace) {
		if c.Name() == "MRU" {
			continue
		}
		hits := countHits(replay(c, trace))
		ratio := float64(hits) / float64(len(trace))
		if ratio < 0.5 {
			t.Errorf("%s: hit ratio %.3f below sanity threshold on 90/10 workload", c.Name(), ratio)
		}
	}
}
