package policy

// TwoQ is the full-version 2Q algorithm (Johnson & Shasha, VLDB 1994), the
// direct descendant of LRU-2 designed to approximate it with constant-time
// operations. It is included as a lineage baseline.
//
// Structure: A1in is a FIFO of recently admitted pages; A1out is a FIFO of
// ghost entries (page ids only) for pages evicted from A1in; Am is an LRU of
// pages re-referenced while remembered in A1out. A hit in A1out signals a
// genuine (non-correlated) re-reference, so the page is promoted to Am —
// this mirrors LRU-2's requirement of two spaced references before a page
// earns long-term residency.
type TwoQ struct {
	capacity int
	kin      int // max size of A1in (resident)
	kout     int // max size of A1out (ghosts)
	a1in     *pageList
	a1out    *pageList
	am       *pageList
}

// NewTwoQ returns a 2Q cache with the given frame count, using the authors'
// recommended tuning: Kin = 25% of the capacity, Kout = 50% of the capacity.
func NewTwoQ(capacity int) *TwoQ {
	validateCapacity(capacity)
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 {
		kout = 1
	}
	return NewTwoQTuned(capacity, kin, kout)
}

// NewTwoQTuned returns a 2Q cache with explicit Kin and Kout thresholds.
func NewTwoQTuned(capacity, kin, kout int) *TwoQ {
	validateCapacity(capacity)
	if kin < 1 || kin > capacity {
		panic("policy: 2Q Kin out of range")
	}
	if kout < 1 {
		panic("policy: 2Q Kout out of range")
	}
	return &TwoQ{
		capacity: capacity,
		kin:      kin,
		kout:     kout,
		a1in:     newPageList(),
		a1out:    newPageList(),
		am:       newPageList(),
	}
}

// Name implements Cache.
func (c *TwoQ) Name() string { return "2Q" }

// Capacity implements Cache.
func (c *TwoQ) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *TwoQ) Len() int { return c.a1in.Len() + c.am.Len() }

// Resident implements Cache.
func (c *TwoQ) Resident(p PageID) bool {
	return c.a1in.Contains(p) || c.am.Contains(p)
}

// Reset implements Cache.
func (c *TwoQ) Reset() {
	c.a1in.Clear()
	c.a1out.Clear()
	c.am.Clear()
}

// Reference implements Cache.
func (c *TwoQ) Reference(p PageID) bool {
	switch {
	case c.am.Contains(p):
		c.am.MoveToFront(p)
		return true
	case c.a1in.Contains(p):
		// 2Q deliberately does not promote on an A1in hit: a quick second
		// reference is presumed correlated.
		return true
	case c.a1out.Contains(p):
		// Remembered ghost: the page has proven a spaced re-reference.
		c.a1out.Remove(p)
		c.reclaim()
		c.am.PushFront(p)
		return false
	default:
		c.reclaim()
		c.a1in.PushFront(p)
		return false
	}
}

// reclaim frees one frame if the cache is full, per the 2Q "reclaimfor"
// procedure.
func (c *TwoQ) reclaim() {
	if c.Len() < c.capacity {
		return
	}
	if c.a1in.Len() > c.kin {
		// Evict the A1in tail to a ghost entry in A1out.
		victim, _ := c.a1in.PopBack()
		c.a1out.PushFront(victim)
		if c.a1out.Len() > c.kout {
			c.a1out.PopBack()
		}
		return
	}
	if _, ok := c.am.PopBack(); ok {
		// Am evictions are forgotten entirely (no ghost), per the paper.
		return
	}
	// Am empty: fall back to evicting from A1in even below Kin.
	if victim, ok := c.a1in.PopBack(); ok {
		c.a1out.PushFront(victim)
		if c.a1out.Len() > c.kout {
			c.a1out.PopBack()
		}
	}
}
