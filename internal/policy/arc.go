package policy

// ARC is the Adaptive Replacement Cache (Megiddo & Modha, FAST 2003),
// included as a lineage baseline: like LRU-K it distinguishes pages seen
// once from pages seen at least twice, and like LRU-K's retained history it
// keeps ghost entries for recently evicted pages.
//
// T1 holds resident pages referenced exactly once recently, T2 resident
// pages referenced at least twice; B1 and B2 are their ghost extensions.
// The target size p of T1 adapts on ghost hits.
type ARC struct {
	capacity int
	p        int // target size of T1
	t1, t2   *pageList
	b1, b2   *pageList
}

// NewARC returns an ARC cache with the given frame count.
func NewARC(capacity int) *ARC {
	return &ARC{
		capacity: validateCapacity(capacity),
		t1:       newPageList(),
		t2:       newPageList(),
		b1:       newPageList(),
		b2:       newPageList(),
	}
}

// Name implements Cache.
func (c *ARC) Name() string { return "ARC" }

// Capacity implements Cache.
func (c *ARC) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *ARC) Len() int { return c.t1.Len() + c.t2.Len() }

// Resident implements Cache.
func (c *ARC) Resident(p PageID) bool {
	return c.t1.Contains(p) || c.t2.Contains(p)
}

// Reset implements Cache.
func (c *ARC) Reset() {
	c.p = 0
	c.t1.Clear()
	c.t2.Clear()
	c.b1.Clear()
	c.b2.Clear()
}

// Target returns the adaptive target size of T1, exported for tests.
func (c *ARC) Target() int { return c.p }

// Reference implements Cache.
func (c *ARC) Reference(pg PageID) bool {
	// Case I: hit in T1 or T2 — promote to MRU of T2.
	if c.t1.Remove(pg) {
		c.t2.PushFront(pg)
		return true
	}
	if c.t2.MoveToFront(pg) {
		return true
	}
	// Case II: ghost hit in B1 — favour recency (grow p).
	if c.b1.Contains(pg) {
		delta := 1
		if c.b1.Len() > 0 && c.b2.Len() > c.b1.Len() {
			delta = c.b2.Len() / c.b1.Len()
		}
		c.p = min(c.p+delta, c.capacity)
		c.replace(pg)
		c.b1.Remove(pg)
		c.t2.PushFront(pg)
		return false
	}
	// Case III: ghost hit in B2 — favour frequency (shrink p).
	if c.b2.Contains(pg) {
		delta := 1
		if c.b2.Len() > 0 && c.b1.Len() > c.b2.Len() {
			delta = c.b1.Len() / c.b2.Len()
		}
		c.p = max(c.p-delta, 0)
		c.replace(pg)
		c.b2.Remove(pg)
		c.t2.PushFront(pg)
		return false
	}
	// Case IV: complete miss.
	l1 := c.t1.Len() + c.b1.Len()
	if l1 == c.capacity {
		if c.t1.Len() < c.capacity {
			c.b1.PopBack()
			c.replace(pg)
		} else {
			c.t1.PopBack() // |T1| == capacity: drop LRU of T1 outright
		}
	} else if l1 < c.capacity {
		total := l1 + c.t2.Len() + c.b2.Len()
		if total >= c.capacity {
			if total == 2*c.capacity {
				c.b2.PopBack()
			}
			c.replace(pg)
		}
	}
	c.t1.PushFront(pg)
	return false
}

// replace is the ARC REPLACE subroutine: evict the LRU page of T1 or T2
// into its ghost list, steered by the adaptation target p.
func (c *ARC) replace(incoming PageID) {
	if c.t1.Len() > 0 &&
		(c.t1.Len() > c.p || (c.b2.Contains(incoming) && c.t1.Len() == c.p)) {
		if victim, ok := c.t1.PopBack(); ok {
			c.b1.PushFront(victim)
		}
		return
	}
	if victim, ok := c.t2.PopBack(); ok {
		c.b2.PushFront(victim)
		return
	}
	// T2 empty: fall back to T1.
	if victim, ok := c.t1.PopBack(); ok {
		c.b1.PushFront(victim)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
