package policy

import (
	"testing"

	"repro/internal/stats"
)

func TestFBRBasics(t *testing.T) {
	c := NewFBR(4, 0)
	if c.Name() != "FBR" || c.Capacity() != 4 {
		t.Fatalf("identity wrong: %s/%d", c.Name(), c.Capacity())
	}
	if c.Reference(1) {
		t.Error("hit on empty cache")
	}
	if !c.Reference(1) {
		t.Error("miss on resident page")
	}
	if !c.Resident(1) || c.Len() != 1 {
		t.Error("residency wrong")
	}
	c.Reset()
	if c.Len() != 0 || c.Resident(1) {
		t.Error("Reset incomplete")
	}
}

// TestFBRNewSectionFactorsOutLocality: rapid re-references while a page is
// in the new section must not inflate its count — the [ROBDEV] idea the
// paper credits for its Correlated Reference Period.
func TestFBRNewSectionFactorsOutLocality(t *testing.T) {
	c := NewFBR(8, 0) // new section = 2
	c.Reference(1)
	for i := 0; i < 10; i++ {
		c.Reference(1) // page 1 is at the front: all correlated
	}
	if got := c.count[1]; got != 1 {
		t.Errorf("count after correlated burst = %d, want 1", got)
	}
	// Push 1 out of the new section, then re-reference: now it counts.
	c.Reference(2)
	c.Reference(3)
	c.Reference(1)
	if got := c.count[1]; got != 2 {
		t.Errorf("count after spaced re-reference = %d, want 2", got)
	}
}

// TestFBREvictsLowCountOldPage: victims come from the old section, lowest
// count first.
func TestFBREvictsLowCountOldPage(t *testing.T) {
	c := NewFBR(4, 0) // old section = 2
	// Build counts: page 1 hot, pages 2-4 cold.
	c.Reference(1)
	c.Reference(2)
	c.Reference(3)
	c.Reference(1) // 1 outside new section now? list: 1,3,2 -> ref 1 counts
	c.Reference(4)
	// List (MRU→LRU): 4,1,3,2. Old section: {3,2}, both count 1; LRU tie → 2.
	c.Reference(5)
	if c.Resident(2) {
		t.Error("FBR kept the cold LRU page over hotter pages")
	}
	if !c.Resident(1) {
		t.Error("FBR evicted the hot page")
	}
}

func TestFBRScanResistance(t *testing.T) {
	c := NewFBR(20, 0)
	r := stats.NewRNG(3)
	// Establish a hot set of 5 pages with real frequency.
	for i := 0; i < 2000; i++ {
		c.Reference(PageID(r.Intn(5)))
		c.Reference(PageID(5 + r.Intn(100))) // mild background
	}
	// Scan 500 one-shot pages.
	for i := 0; i < 500; i++ {
		c.Reference(PageID(1000 + i))
	}
	hot := 0
	for p := PageID(0); p < 5; p++ {
		if c.Resident(p) {
			hot++
		}
	}
	if hot < 4 {
		t.Errorf("only %d/5 hot pages survived the scan", hot)
	}
}

func TestFBRAgingHalvesCounts(t *testing.T) {
	c := NewFBR(4, 1) // aging sweep at every 4th reference, before processing it
	c.Reference(1)
	c.Reference(2)
	c.Reference(3)
	c.Reference(1) // spaced re-reference: count(1) = 2
	if got := c.count[1]; got != 2 {
		t.Fatalf("count before aging = %d, want 2", got)
	}
	// Four more references bring the clock to 8; the sweep halves counts.
	c.Reference(2)
	c.Reference(3)
	c.Reference(2)
	c.Reference(3)
	if got := c.count[1]; got != 1 {
		t.Errorf("count after aging = %d, want 1", got)
	}
}

func TestSLRUBasics(t *testing.T) {
	c := NewSLRU(10, 0.8)
	if c.Name() != "SLRU" || c.Capacity() != 10 {
		t.Fatalf("identity wrong")
	}
	if c.Reference(1) {
		t.Error("hit on empty")
	}
	if !c.Reference(1) {
		t.Error("miss on resident")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset incomplete")
	}
}

// TestSLRUProtectionSurvivesScan: promoted pages survive a one-shot flood
// that churns the probationary segment.
func TestSLRUProtectionSurvivesScan(t *testing.T) {
	c := NewSLRU(10, 0.5)
	// Promote pages 1 and 2 into the protected segment.
	c.Reference(1)
	c.Reference(2)
	c.Reference(1)
	c.Reference(2)
	// Flood with one-shot pages.
	for i := 0; i < 100; i++ {
		c.Reference(PageID(100 + i))
	}
	if !c.Resident(1) || !c.Resident(2) {
		t.Error("protected pages flushed by one-shot flood")
	}
}

// TestSLRUDemotion: protected overflow demotes its LRU page back to
// probation rather than evicting it outright.
func TestSLRUDemotion(t *testing.T) {
	c := NewSLRU(4, 0.5) // protected size 2
	for p := PageID(1); p <= 3; p++ {
		c.Reference(p)
		c.Reference(p) // promote all three; the first is demoted
	}
	// All three must still be resident (capacity 4).
	for p := PageID(1); p <= 3; p++ {
		if !c.Resident(p) {
			t.Errorf("page %d lost during demotion shuffle", p)
		}
	}
	if c.Len() > 4 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}

func TestSLRUCapacityOne(t *testing.T) {
	c := NewSLRU(1, 0.8)
	c.Reference(1)
	c.Reference(2)
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if c.Resident(1) {
		t.Error("capacity-1 cache kept two pages")
	}
}

// TestFBRSLRUInvariants runs the generic residency invariants over random
// traces for the two newer policies.
func TestFBRSLRUInvariants(t *testing.T) {
	r := stats.NewRNG(99)
	trace := make([]PageID, 5000)
	for i := range trace {
		trace[i] = PageID(r.Intn(60))
	}
	for _, capacity := range []int{1, 2, 7, 32} {
		for _, c := range []Cache{NewFBR(capacity, 0), NewSLRU(capacity, 0.8)} {
			for i, p := range trace {
				hit := c.Reference(p)
				if hit != true && !c.Resident(p) {
					t.Fatalf("%s cap %d ref %d: referenced page not resident", c.Name(), capacity, i)
				}
				if c.Len() > capacity {
					t.Fatalf("%s cap %d ref %d: Len %d over capacity", c.Name(), capacity, i, c.Len())
				}
			}
		}
	}
}
