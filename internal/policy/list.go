package policy

// pageList is an intrusive doubly-linked list of pages with an index for
// O(1) membership tests and removal. It is the workhorse behind LRU, MRU,
// FIFO, 2Q and the ARC ghost lists.
//
// The front of the list is the most recently inserted/promoted end; the
// back is the eviction end for recency-ordered policies.
type pageList struct {
	head, tail *pageNode
	index      map[PageID]*pageNode
}

type pageNode struct {
	page       PageID
	prev, next *pageNode
}

func newPageList() *pageList {
	return &pageList{index: make(map[PageID]*pageNode)}
}

// Len returns the number of pages in the list.
func (l *pageList) Len() int { return len(l.index) }

// Contains reports whether p is in the list.
func (l *pageList) Contains(p PageID) bool {
	_, ok := l.index[p]
	return ok
}

// PushFront inserts p at the front. It panics if p is already present;
// callers move existing pages with MoveToFront.
func (l *pageList) PushFront(p PageID) {
	if _, ok := l.index[p]; ok {
		panic("policy: PushFront of page already in list")
	}
	n := &pageNode{page: p, next: l.head}
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
	l.index[p] = n
}

// Remove deletes p from the list and reports whether it was present.
func (l *pageList) Remove(p PageID) bool {
	n, ok := l.index[p]
	if !ok {
		return false
	}
	l.unlink(n)
	delete(l.index, p)
	return true
}

func (l *pageList) unlink(n *pageNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// MoveToFront promotes p to the front and reports whether it was present.
func (l *pageList) MoveToFront(p PageID) bool {
	n, ok := l.index[p]
	if !ok {
		return false
	}
	if l.head == n {
		return true
	}
	l.unlink(n)
	n.next = l.head
	l.head.prev = n
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
	return true
}

// Front returns the page at the front without removing it.
func (l *pageList) Front() (PageID, bool) {
	if l.head == nil {
		return InvalidPage, false
	}
	return l.head.page, true
}

// Back returns the page at the back without removing it.
func (l *pageList) Back() (PageID, bool) {
	if l.tail == nil {
		return InvalidPage, false
	}
	return l.tail.page, true
}

// PopBack removes and returns the page at the back.
func (l *pageList) PopBack() (PageID, bool) {
	if l.tail == nil {
		return InvalidPage, false
	}
	p := l.tail.page
	l.unlink(l.tail)
	delete(l.index, p)
	return p, true
}

// PopFront removes and returns the page at the front.
func (l *pageList) PopFront() (PageID, bool) {
	if l.head == nil {
		return InvalidPage, false
	}
	p := l.head.page
	l.unlink(l.head)
	delete(l.index, p)
	return p, true
}

// Clear removes all pages.
func (l *pageList) Clear() {
	l.head, l.tail = nil, nil
	l.index = make(map[PageID]*pageNode)
}

// Each visits pages from front to back until fn returns false.
func (l *pageList) Each(fn func(p PageID) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n.page) {
			return
		}
	}
}
