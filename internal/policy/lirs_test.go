package policy

import (
	"testing"

	"repro/internal/stats"
)

func TestLIRSBasics(t *testing.T) {
	c := NewLIRS(10, 0.1, 3)
	if c.Name() != "LIRS" || c.Capacity() != 10 {
		t.Fatal("identity wrong")
	}
	if c.Reference(1) {
		t.Error("hit on empty cache")
	}
	if !c.Reference(1) {
		t.Error("miss on resident page")
	}
	if !c.Resident(1) || c.Len() != 1 {
		t.Error("residency wrong")
	}
	c.Reset()
	if c.Len() != 0 || c.Resident(1) {
		t.Error("Reset incomplete")
	}
}

// TestLIRSScanResistance: the defining property — a long scan of one-shot
// pages cannot displace the LIR working set.
func TestLIRSScanResistance(t *testing.T) {
	c := NewLIRS(100, 0.05, 3)
	r := stats.NewRNG(7)
	// Establish a working set of 60 pages with repeated references.
	for i := 0; i < 5000; i++ {
		c.Reference(PageID(r.Intn(60)))
	}
	// Sequential scan of 10000 one-shot pages.
	for i := 0; i < 10000; i++ {
		c.Reference(PageID(10000 + i))
	}
	kept := 0
	for p := PageID(0); p < 60; p++ {
		if c.Resident(p) {
			kept++
		}
	}
	if kept < 55 {
		t.Errorf("only %d/60 working-set pages survived the scan", kept)
	}
}

// TestLIRSGhostPromotion: a page re-referenced while its ghost is still in
// the stack enters as LIR (the backward-2-distance insight).
func TestLIRSGhostPromotion(t *testing.T) {
	c := NewLIRS(4, 0.25, 4) // lirCap 3, hirCap 1
	// Fill the LIR set.
	c.Reference(1)
	c.Reference(2)
	c.Reference(3)
	// 4 and 5 churn through the single HIR frame; 4 becomes a ghost.
	c.Reference(4)
	c.Reference(5)
	if c.Resident(4) {
		t.Fatal("4 should have been evicted from the HIR queue")
	}
	// Re-reference 4: ghost hit → promoted to LIR, demoting a LIR block.
	if c.Reference(4) {
		t.Error("ghost re-reference reported as hit")
	}
	if !c.Resident(4) {
		t.Error("ghost re-reference did not readmit")
	}
	// A following one-shot page must not displace 4.
	c.Reference(6)
	c.Reference(7)
	if !c.Resident(4) {
		t.Error("promoted LIR block evicted by one-shot churn")
	}
}

func TestLIRSCapacityOne(t *testing.T) {
	c := NewLIRS(1, 0.5, 2)
	c.Reference(1)
	c.Reference(2)
	if c.Len() > 1 {
		t.Fatalf("Len = %d over capacity 1", c.Len())
	}
}

func TestLIRSGhostBound(t *testing.T) {
	c := NewLIRS(8, 0.25, 2) // stack capped at 16 entries
	for i := 0; i < 10000; i++ {
		c.Reference(PageID(i))
	}
	// The stack holds at most the residents plus the bounded ghosts.
	if got := c.stack.Len(); got > 16+8 {
		t.Errorf("stack grew to %d entries, bound 24", got)
	}
	if got := c.ghosts.Len(); got > 16 {
		t.Errorf("ghost list grew to %d entries, cap 16", got)
	}
	if got := len(c.state); got > 16+8 {
		t.Errorf("state map holds %d entries; ghosts are not being bounded", got)
	}
}

func TestTinyLFUBasics(t *testing.T) {
	c := NewTinyLFU(100)
	if c.Name() != "W-TinyLFU" || c.Capacity() != 100 {
		t.Fatal("identity wrong")
	}
	if c.Reference(1) {
		t.Error("hit on empty")
	}
	if !c.Reference(1) {
		t.Error("miss on resident (window)")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset incomplete")
	}
}

// TestTinyLFUAdmissionFilter: a one-hit wonder must not displace a page
// with established frequency.
func TestTinyLFUAdmissionFilter(t *testing.T) {
	c := NewTinyLFU(100)
	r := stats.NewRNG(3)
	// Build frequency for a 90-page working set, filling the main area.
	for i := 0; i < 20000; i++ {
		c.Reference(PageID(r.Intn(90)))
	}
	// A flood of one-shot pages interleaved with occasional working-set
	// references (so the sketch's aging does not simply forget the hot
	// set): each one-shot page reaches the duel with frequency ~1 and
	// loses to the established victims.
	for i := 0; i < 20000; i++ {
		c.Reference(PageID(100000 + i))
		if i%4 == 0 {
			c.Reference(PageID(r.Intn(90)))
		}
	}
	kept := 0
	for p := PageID(0); p < 90; p++ {
		if c.Resident(p) {
			kept++
		}
	}
	if kept < 80 {
		t.Errorf("only %d/90 working-set pages survived the one-shot flood", kept)
	}
}

// TestTinyLFUAgingAdmitsNewHotPages: unlike plain LFU, the sketch ages, so
// a new hot set eventually displaces the old one.
func TestTinyLFUAgingAdmitsNewHotPages(t *testing.T) {
	c := NewTinyLFU(50)
	r := stats.NewRNG(5)
	for i := 0; i < 20000; i++ {
		c.Reference(PageID(r.Intn(40))) // old hot set
	}
	hits := 0
	const probes = 40000
	for i := 0; i < probes; i++ {
		if c.Reference(PageID(1000 + r.Intn(40))) { // new hot set
			hits++
		}
	}
	ratio := float64(hits) / probes
	if ratio < 0.5 {
		t.Errorf("new hot set hit ratio %.3f after shift; aging is not working", ratio)
	}
}

func TestCMSketch(t *testing.T) {
	s := newCMSketch(64)
	for i := 0; i < 10; i++ {
		s.add(7)
	}
	s.add(9)
	if got := s.estimate(7); got < 8 {
		t.Errorf("estimate(7) = %d, want ~10", got)
	}
	if got := s.estimate(9); got < 1 || got > 3 {
		t.Errorf("estimate(9) = %d, want ~1", got)
	}
	if got := s.estimate(424242); got > 2 {
		t.Errorf("estimate(unseen) = %d, want ~0", got)
	}
	// Counters cap at 15.
	for i := 0; i < 100; i++ {
		s.add(7)
	}
	if got := s.estimate(7); got > 15 {
		t.Errorf("estimate above cap: %d", got)
	}
	// Reset halves.
	before := s.estimate(7)
	s.reset()
	if got := s.estimate(7); got != before/2 {
		t.Errorf("after reset: %d, want %d", got, before/2)
	}
}

// TestLIRSTinyLFUInvariants runs the generic residency invariants.
func TestLIRSTinyLFUInvariants(t *testing.T) {
	r := stats.NewRNG(99)
	trace := make([]PageID, 8000)
	for i := range trace {
		trace[i] = PageID(r.Intn(100))
	}
	for _, capacity := range []int{1, 2, 5, 17, 64} {
		for _, c := range []Cache{NewLIRS(capacity, 0, 0), NewTinyLFU(capacity)} {
			for i, p := range trace {
				c.Reference(p)
				if !c.Resident(p) && c.Name() != "W-TinyLFU" {
					// TinyLFU's admission filter may legitimately refuse the
					// referenced page; every other policy must admit it.
					t.Fatalf("%s cap %d ref %d: referenced page not resident", c.Name(), capacity, i)
				}
				if c.Len() > capacity {
					t.Fatalf("%s cap %d ref %d: Len %d over capacity", c.Name(), capacity, i, c.Len())
				}
			}
		}
	}
}
