package policy

// Clock is the second-chance (CLOCK) approximation of LRU: frames form a
// ring; a hand sweeps the ring clearing reference bits and evicts the first
// frame whose bit is already clear. Pages are admitted with a clear
// reference bit — a page must be re-referenced while resident to earn its
// second chance (the variant that best approximates LRU and composes with
// the paper's early-page-replacement argument: a once-referenced page is
// cheap to drop).
type Clock struct {
	capacity int
	frames   []clockFrame
	index    map[PageID]int
	hand     int
	used     int
}

type clockFrame struct {
	page PageID
	ref  bool
	live bool
}

// NewClock returns a CLOCK cache with the given frame count.
func NewClock(capacity int) *Clock {
	c := &Clock{capacity: validateCapacity(capacity)}
	c.Reset()
	return c
}

// Name implements Cache.
func (c *Clock) Name() string { return "CLOCK" }

// Capacity implements Cache.
func (c *Clock) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *Clock) Len() int { return c.used }

// Resident implements Cache.
func (c *Clock) Resident(p PageID) bool {
	_, ok := c.index[p]
	return ok
}

// Reset implements Cache.
func (c *Clock) Reset() {
	c.frames = make([]clockFrame, c.capacity)
	c.index = make(map[PageID]int, c.capacity)
	c.hand = 0
	c.used = 0
}

// Reference implements Cache.
func (c *Clock) Reference(p PageID) bool {
	if i, ok := c.index[p]; ok {
		c.frames[i].ref = true
		return true
	}
	slot := c.findSlot()
	f := &c.frames[slot]
	if f.live {
		delete(c.index, f.page)
	} else {
		c.used++
	}
	f.page, f.ref, f.live = p, false, true
	c.index[p] = slot
	return false
}

// findSlot returns an empty frame if one exists, otherwise advances the
// hand until it finds a frame with a clear reference bit.
func (c *Clock) findSlot() int {
	if c.used < c.capacity {
		for i := range c.frames {
			if !c.frames[i].live {
				return i
			}
		}
	}
	for {
		f := &c.frames[c.hand]
		slot := c.hand
		c.hand = (c.hand + 1) % c.capacity
		if f.ref {
			f.ref = false
			continue
		}
		return slot
	}
}

// GClock is the generalized CLOCK algorithm referenced in the paper's
// introduction (via [EFFEHAER]): each frame carries a reference counter
// initialised to initialCount on page-in and incremented on every hit; the
// sweeping hand decrements counters and evicts the first frame whose
// counter has reached zero. With initialCount=1 and increment capping at 1
// it degenerates to CLOCK; larger counts give frequency-sensitive aging.
type GClock struct {
	capacity     int
	initialCount int
	maxCount     int
	frames       []gclockFrame
	index        map[PageID]int
	hand         int
	used         int
}

type gclockFrame struct {
	page  PageID
	count int
	live  bool
}

// NewGClock returns a GCLOCK cache. initialCount is the counter value given
// to a newly admitted page and maxCount caps the counter (0 means no cap).
// The paper notes this family "depends critically on a careful choice of
// various workload-dependent parameters"; these are those parameters.
func NewGClock(capacity, initialCount, maxCount int) *GClock {
	if initialCount < 1 {
		initialCount = 1
	}
	c := &GClock{
		capacity:     validateCapacity(capacity),
		initialCount: initialCount,
		maxCount:     maxCount,
	}
	c.Reset()
	return c
}

// Name implements Cache.
func (c *GClock) Name() string { return "GCLOCK" }

// Capacity implements Cache.
func (c *GClock) Capacity() int { return c.capacity }

// Len implements Cache.
func (c *GClock) Len() int { return c.used }

// Resident implements Cache.
func (c *GClock) Resident(p PageID) bool {
	_, ok := c.index[p]
	return ok
}

// Reset implements Cache.
func (c *GClock) Reset() {
	c.frames = make([]gclockFrame, c.capacity)
	c.index = make(map[PageID]int, c.capacity)
	c.hand = 0
	c.used = 0
}

// Reference implements Cache.
func (c *GClock) Reference(p PageID) bool {
	if i, ok := c.index[p]; ok {
		f := &c.frames[i]
		f.count++
		if c.maxCount > 0 && f.count > c.maxCount {
			f.count = c.maxCount
		}
		return true
	}
	slot := c.findSlot()
	f := &c.frames[slot]
	if f.live {
		delete(c.index, f.page)
	} else {
		c.used++
	}
	f.page, f.count, f.live = p, c.initialCount, true
	c.index[p] = slot
	return false
}

func (c *GClock) findSlot() int {
	if c.used < c.capacity {
		for i := range c.frames {
			if !c.frames[i].live {
				return i
			}
		}
	}
	for {
		f := &c.frames[c.hand]
		slot := c.hand
		c.hand = (c.hand + 1) % c.capacity
		if f.count > 0 {
			f.count--
			continue
		}
		return slot
	}
}
