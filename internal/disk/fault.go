package disk

import (
	"errors"
	"sync"

	"repro/internal/policy"
	"repro/internal/stats"
)

// This file implements deterministic disk fault injection: a FaultPlan is
// a declarative list of rules deciding, per operation, whether the
// simulated disk fails it. It complements the ServiceModel.Delay hook —
// Delay shapes *when* an operation completes, a FaultPlan decides *whether*
// it does — and exists so the buffer pool's error paths (failed miss
// reads, failed dirty-victim write-backs) can be exercised exactly and
// reproducibly instead of never.

// Op identifies a class of disk operations for fault matching.
type Op uint8

const (
	// OpRead matches Manager.Read.
	OpRead Op = 1 << iota
	// OpWrite matches Manager.Write.
	OpWrite
)

// OpAny matches every priced disk operation.
const OpAny = OpRead | OpWrite

// ErrInjectedFault is the error a faulted operation returns unless its rule
// carries a custom Err.
var ErrInjectedFault = errors.New("disk: injected fault")

// FaultRule describes one error-injection rule. The zero value of each
// field is the permissive default, so a rule lists only its constraints:
//
//	FaultRule{Op: OpWrite, Pages: []policy.PageID{7}}      // every write of page 7 fails
//	FaultRule{Op: OpRead, After: 10, Count: 3}             // reads 11..13 fail
//	FaultRule{Probability: 0.01}                           // ~1% of all I/O fails
type FaultRule struct {
	// Op selects the operation classes the rule applies to; zero means
	// OpAny.
	Op Op
	// Pages restricts the rule to the listed page ids; empty matches every
	// page.
	Pages []policy.PageID
	// After lets that many matching operations pass before the rule arms.
	After uint64
	// Count bounds how many faults the rule injects once armed; zero means
	// unlimited.
	Count uint64
	// Probability, when in (0, 1), faults each armed matching operation
	// with this probability, drawn from the plan's seeded generator; zero
	// (or anything ≥ 1) faults every one.
	Probability float64
	// Err is the error injected; nil selects ErrInjectedFault.
	Err error
}

// faultRule is a FaultRule plus its runtime matching state.
type faultRule struct {
	FaultRule
	pages    map[policy.PageID]struct{} // nil when the rule matches all pages
	seen     uint64                     // matching operations observed so far
	injected uint64                     // faults injected so far
}

// FaultPlan is a deterministic fault-injection schedule: rules are
// consulted in declaration order and the first one that fires decides the
// operation's fate. All randomness flows from one seeded generator, so a
// single-threaded operation sequence faults identically on every run;
// under concurrency the decision *stream* is still the seeded one, but its
// assignment to operations follows arrival order.
//
// A FaultPlan is safe for concurrent use. Arm it with Manager.SetFaults.
type FaultPlan struct {
	mu    sync.Mutex
	rng   *stats.RNG
	rules []faultRule
}

// NewFaultPlan returns a plan with the given rules, drawing probabilistic
// decisions from a generator seeded with seed.
func NewFaultPlan(seed uint64, rules ...FaultRule) *FaultPlan {
	p := &FaultPlan{rng: stats.NewRNG(seed)}
	for _, r := range rules {
		fr := faultRule{FaultRule: r}
		if fr.Op == 0 {
			fr.Op = OpAny
		}
		if fr.Err == nil {
			fr.Err = ErrInjectedFault
		}
		if len(r.Pages) > 0 {
			fr.pages = make(map[policy.PageID]struct{}, len(r.Pages))
			for _, pg := range r.Pages {
				fr.pages[pg] = struct{}{}
			}
		}
		p.rules = append(p.rules, fr)
	}
	return p
}

// check runs one operation through the rules and returns the injected
// error, if any. An operation is charged against every rule in order until
// one fires. Safe on a nil plan.
func (p *FaultPlan) check(op Op, page policy.PageID) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		if r.Op&op == 0 {
			continue
		}
		if r.pages != nil {
			if _, ok := r.pages[page]; !ok {
				continue
			}
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.injected >= r.Count {
			continue
		}
		if r.Probability > 0 && r.Probability < 1 && p.rng.Float64() >= r.Probability {
			continue
		}
		r.injected++
		return r.Err
	}
	return nil
}
