// Package disk simulates the database disk of the paper's setting: a page
// store with explicit read/write operations, allocation, and a service-time
// model (seek + rotational latency + transfer, with cheap sequential
// access) so experiments can report simulated I/O cost next to hit ratios.
// The "Five Minute Rule" economics the paper builds on ([GRAYPUT]) are
// about exactly this trade: memory buffers versus disk arm time.
//
// Pages live in memory; durability is out of scope for a buffering study.
// The manager is safe for concurrent use.
package disk

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/policy"
)

// PageSize is the simulated page size in bytes, the paper's canonical
// 4 KByte page (§2.1.2).
const PageSize = 4096

// ErrPageNotAllocated reports access to a page id that was never allocated
// or has been deallocated.
var ErrPageNotAllocated = errors.New("disk: page not allocated")

// ServiceModel prices disk operations in simulated microseconds.
type ServiceModel struct {
	// SeekMicros is the arm seek plus rotational latency for a random
	// access. Default 12000 (a circa-1993 disk; the absolute value only
	// scales reports).
	SeekMicros int64
	// TransferMicros is the per-page transfer time. Default 400.
	TransferMicros int64
}

func (m ServiceModel) withDefaults() ServiceModel {
	if m.SeekMicros == 0 {
		m.SeekMicros = 12000
	}
	if m.TransferMicros == 0 {
		m.TransferMicros = 400
	}
	return m
}

// Stats reports cumulative disk activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	Allocated   uint64
	Deallocated uint64
	// ServiceMicros is the total simulated service time of all operations.
	ServiceMicros int64
}

// Manager is the simulated disk.
type Manager struct {
	mu      sync.Mutex
	model   ServiceModel
	pages   map[policy.PageID][]byte
	nextID  policy.PageID
	lastOp  policy.PageID // for sequential-access pricing
	haveOp  bool
	stats   Stats
}

// NewManager returns an empty disk with the given service model (zero
// value for defaults).
func NewManager(model ServiceModel) *Manager {
	return &Manager{
		model: model.withDefaults(),
		pages: make(map[policy.PageID][]byte),
	}
}

// Allocate reserves a fresh zeroed page and returns its id.
func (m *Manager) Allocate() policy.PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.pages[id] = make([]byte, PageSize)
	m.stats.Allocated++
	return id
}

// Deallocate releases a page. Further access to it fails.
func (m *Manager) Deallocate(p policy.PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[p]; !ok {
		return fmt.Errorf("deallocate page %d: %w", p, ErrPageNotAllocated)
	}
	delete(m.pages, p)
	m.stats.Deallocated++
	return nil
}

// Read copies page p into buf, which must hold PageSize bytes.
func (m *Manager) Read(p policy.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("disk: read buffer of %d bytes, want %d", len(buf), PageSize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.pages[p]
	if !ok {
		return fmt.Errorf("read page %d: %w", p, ErrPageNotAllocated)
	}
	copy(buf, data)
	m.stats.Reads++
	m.charge(p)
	return nil
}

// Write stores buf as the new contents of page p.
func (m *Manager) Write(p policy.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("disk: write buffer of %d bytes, want %d", len(buf), PageSize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.pages[p]
	if !ok {
		return fmt.Errorf("write page %d: %w", p, ErrPageNotAllocated)
	}
	copy(data, buf)
	m.stats.Writes++
	m.charge(p)
	return nil
}

// charge prices one operation on page p: sequential successors skip the
// seek. Callers hold m.mu.
func (m *Manager) charge(p policy.PageID) {
	cost := m.model.TransferMicros
	if !m.haveOp || p != m.lastOp+1 {
		cost += m.model.SeekMicros
	}
	m.stats.ServiceMicros += cost
	m.lastOp = p
	m.haveOp = true
}

// Stats returns a snapshot of cumulative activity.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// NumPages returns the number of currently allocated pages.
func (m *Manager) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}
