// Package disk simulates the database disk of the paper's setting: a page
// store with explicit read/write operations, allocation, and a service-time
// model (seek + rotational latency + transfer, with cheap sequential
// access) so experiments can report simulated I/O cost next to hit ratios.
// The "Five Minute Rule" economics the paper builds on ([GRAYPUT]) are
// about exactly this trade: memory buffers versus disk arm time.
//
// Pages live in memory; durability is out of scope for a buffering study.
// The manager is safe for concurrent use, and concurrently at that: the
// page store is partitioned into independently latched stripes keyed by
// PageID hash, and all counters are atomics, so reads and writes to
// different pages proceed in parallel. The optional ServiceModel.Delay
// hook injects real latency per operation (outside every latch), letting
// benchmarks exercise a pool's ability to overlap concurrent I/O; an armed
// FaultPlan (SetFaults) injects deterministic read/write errors so callers'
// failure paths can be exercised reproducibly.
package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
)

// PageSize is the simulated page size in bytes, the paper's canonical
// 4 KByte page (§2.1.2).
const PageSize = 4096

// numStripes is the number of independently latched page-store partitions.
// Must be a power of two.
const numStripes = 32

// ErrPageNotAllocated reports access to a page id that was never allocated
// or has been deallocated.
var ErrPageNotAllocated = errors.New("disk: page not allocated")

// ServiceModel prices disk operations in simulated microseconds.
type ServiceModel struct {
	// SeekMicros is the arm seek plus rotational latency for a random
	// access. Default 12000 (a circa-1993 disk; the absolute value only
	// scales reports).
	SeekMicros int64
	// TransferMicros is the per-page transfer time. Default 400.
	TransferMicros int64
	// Delay, when non-nil, is invoked after each read or write with the
	// operation's priced service time, outside all locks. Injecting e.g. a
	// scaled time.Sleep here turns the accounting-only model into real
	// latency, so concurrent callers genuinely overlap their I/O — the
	// condition under which latch partitioning pays off.
	Delay func(serviceMicros int64)
}

func (m ServiceModel) withDefaults() ServiceModel {
	if m.SeekMicros == 0 {
		m.SeekMicros = 12000
	}
	if m.TransferMicros == 0 {
		m.TransferMicros = 400
	}
	return m
}

// Stats reports cumulative disk activity.
type Stats struct {
	Reads       uint64
	Writes      uint64
	Allocated   uint64
	Deallocated uint64
	// ReadFaults and WriteFaults count operations failed by the armed
	// FaultPlan. Faulted operations transfer no data and are not counted
	// in Reads/Writes, but they do cost service time (the arm still moved).
	ReadFaults  uint64
	WriteFaults uint64
	// ServiceMicros is the total simulated service time of all operations.
	ServiceMicros int64
}

// Manager is the simulated disk.
type Manager struct {
	model   ServiceModel
	stripes [numStripes]stripe
	nextID  atomic.Int64
	// lastOp is the page id of the most recent priced operation, for
	// sequential-access pricing; -1 means none yet. Under concurrency the
	// sequential discount is approximate (operation order is whatever the
	// hardware interleaves); single-threaded it is exact.
	lastOp atomic.Int64
	// faults is the armed fault-injection plan; nil injects nothing.
	faults atomic.Pointer[FaultPlan]
	// metrics is the armed latency instrumentation; nil (the default)
	// records nothing and costs one pointer load per operation.
	metrics atomic.Pointer[Metrics]

	reads         atomic.Uint64
	writes        atomic.Uint64
	allocated     atomic.Uint64
	deallocated   atomic.Uint64
	readFaults    atomic.Uint64
	writeFaults   atomic.Uint64
	serviceMicros atomic.Int64
}

type stripe struct {
	mu    sync.RWMutex
	pages map[policy.PageID][]byte
	// Pad so adjacent stripe latches do not share a cache line.
	_ [24]byte
}

// NewManager returns an empty disk with the given service model (zero
// value for defaults).
func NewManager(model ServiceModel) *Manager {
	m := &Manager{model: model.withDefaults()}
	m.lastOp.Store(int64(policy.InvalidPage))
	for i := range m.stripes {
		m.stripes[i].pages = make(map[policy.PageID][]byte)
	}
	return m
}

func (m *Manager) stripe(p policy.PageID) *stripe {
	return &m.stripes[m.StripeOf(p)]
}

// StripeOf returns the index of the page-store partition holding page p,
// in [0, NumStripes). Callers that track per-device-region health (e.g. a
// circuit breaker per stripe) key their state by it.
func (m *Manager) StripeOf(p policy.PageID) int {
	// SplitMix64 finaliser: adjacent page ids land on different stripes.
	z := uint64(p) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int((z ^ (z >> 31)) & (numStripes - 1))
}

// NumStripes returns the number of page-store partitions.
func (m *Manager) NumStripes() int { return numStripes }

// Allocate reserves a fresh zeroed page and returns its id.
func (m *Manager) Allocate() policy.PageID {
	id := policy.PageID(m.nextID.Add(1) - 1)
	s := m.stripe(id)
	s.mu.Lock()
	s.pages[id] = make([]byte, PageSize)
	s.mu.Unlock()
	m.allocated.Add(1)
	return id
}

// Deallocate releases a page. Further access to it fails.
func (m *Manager) Deallocate(p policy.PageID) error {
	s := m.stripe(p)
	s.mu.Lock()
	_, ok := s.pages[p]
	delete(s.pages, p)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("deallocate page %d: %w", p, ErrPageNotAllocated)
	}
	m.deallocated.Add(1)
	return nil
}

// SetFaults arms (or, with nil, disarms) a fault-injection plan. It may be
// called at any time, including while operations are in flight; operations
// already past their fault check complete normally.
func (m *Manager) SetFaults(p *FaultPlan) { m.faults.Store(p) }

// Metrics are the disk's optional latency instruments: wall-clock Read and
// Write time — inclusive of the ServiceModel's injected Delay and of latch
// waits, which is the point: the histogram shows what callers actually
// experienced, split by stripe so one slow or breaker-tripped device region
// stands out from the other 31.
type Metrics struct {
	ReadLatency  [numStripes]*obs.Histogram
	WriteLatency [numStripes]*obs.Histogram
}

// SetMetrics arms (or, with nil, disarms) latency instrumentation. Like
// SetFaults it may be called at any time; operations in flight finish under
// whichever instrumentation they started with.
func (m *Manager) SetMetrics(mm *Metrics) { m.metrics.Store(mm) }

// Read copies page p into buf, which must hold PageSize bytes.
func (m *Manager) Read(p policy.PageID, buf []byte) error {
	mm := m.metrics.Load()
	if mm == nil {
		return m.read(p, buf)
	}
	start := time.Now()
	err := m.read(p, buf)
	// Faulted and rejected reads are recorded too: an error return still
	// occupied the caller for this long.
	mm.ReadLatency[m.StripeOf(p)].ObserveSince(start)
	return err
}

func (m *Manager) read(p policy.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("disk: read buffer of %d bytes, want %d", len(buf), PageSize)
	}
	if ferr := m.faults.Load().check(OpRead, p); ferr != nil {
		m.readFaults.Add(1)
		// A failed I/O still costs arm time, and charging runs the Delay
		// hook, so tests can park a doomed read like a successful one.
		m.charge(p)
		return fmt.Errorf("read page %d: %w", p, ferr)
	}
	s := m.stripe(p)
	s.mu.RLock()
	data, ok := s.pages[p]
	if ok {
		copy(buf, data)
	}
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("read page %d: %w", p, ErrPageNotAllocated)
	}
	m.reads.Add(1)
	m.charge(p)
	return nil
}

// Write stores buf as the new contents of page p.
func (m *Manager) Write(p policy.PageID, buf []byte) error {
	mm := m.metrics.Load()
	if mm == nil {
		return m.write(p, buf)
	}
	start := time.Now()
	err := m.write(p, buf)
	mm.WriteLatency[m.StripeOf(p)].ObserveSince(start)
	return err
}

func (m *Manager) write(p policy.PageID, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("disk: write buffer of %d bytes, want %d", len(buf), PageSize)
	}
	if ferr := m.faults.Load().check(OpWrite, p); ferr != nil {
		m.writeFaults.Add(1)
		m.charge(p)
		return fmt.Errorf("write page %d: %w", p, ferr)
	}
	s := m.stripe(p)
	s.mu.Lock()
	data, ok := s.pages[p]
	if ok {
		copy(data, buf)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("write page %d: %w", p, ErrPageNotAllocated)
	}
	m.writes.Add(1)
	m.charge(p)
	return nil
}

// charge prices one operation on page p — sequential successors skip the
// seek — and runs the injected delay, if any, outside all locks.
func (m *Manager) charge(p policy.PageID) {
	cost := m.model.TransferMicros
	if last := m.lastOp.Swap(int64(p)); last < 0 || int64(p) != last+1 {
		cost += m.model.SeekMicros
	}
	m.serviceMicros.Add(cost)
	if m.model.Delay != nil {
		m.model.Delay(cost)
	}
}

// Stats returns a snapshot of cumulative activity. Under concurrent load
// the counters are individually exact but not mutually consistent (they
// are read without a global latch).
func (m *Manager) Stats() Stats {
	return Stats{
		Reads:         m.reads.Load(),
		Writes:        m.writes.Load(),
		Allocated:     m.allocated.Load(),
		Deallocated:   m.deallocated.Load(),
		ReadFaults:    m.readFaults.Load(),
		WriteFaults:   m.writeFaults.Load(),
		ServiceMicros: m.serviceMicros.Load(),
	}
}

// NumPages returns the number of currently allocated pages.
func (m *Manager) NumPages() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.RLock()
		n += len(s.pages)
		s.mu.RUnlock()
	}
	return n
}
