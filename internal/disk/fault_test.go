package disk

import (
	"errors"
	"testing"

	"repro/internal/policy"
)

func faultTestManager(t *testing.T, pages int) (*Manager, []policy.PageID) {
	t.Helper()
	m := NewManager(ServiceModel{})
	ids := make([]policy.PageID, pages)
	for i := range ids {
		ids[i] = m.Allocate()
	}
	return m, ids
}

func TestFaultCountAndAfter(t *testing.T) {
	m, ids := faultTestManager(t, 1)
	m.SetFaults(NewFaultPlan(1, FaultRule{Op: OpWrite, After: 2, Count: 3}))
	buf := make([]byte, PageSize)
	var got []bool
	for i := 0; i < 8; i++ {
		got = append(got, m.Write(ids[0], buf) != nil)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("write %d faulted=%v, want %v (pattern %v)", i, got[i], want[i], got)
		}
	}
	// The rule is write-only: reads never fault.
	for i := 0; i < 8; i++ {
		if err := m.Read(ids[0], buf); err != nil {
			t.Fatalf("read %d faulted under a write-only rule: %v", i, err)
		}
	}
	if s := m.Stats(); s.WriteFaults != 3 || s.ReadFaults != 0 || s.Writes != 5 || s.Reads != 8 {
		t.Errorf("stats %+v, want 3 write faults, 5 writes, 8 reads", s)
	}
}

func TestFaultPerPage(t *testing.T) {
	m, ids := faultTestManager(t, 2)
	m.SetFaults(NewFaultPlan(1, FaultRule{Pages: []policy.PageID{ids[0]}}))
	buf := make([]byte, PageSize)
	if err := m.Read(ids[0], buf); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("read of targeted page: %v, want ErrInjectedFault", err)
	}
	if err := m.Write(ids[0], buf); !errors.Is(err, ErrInjectedFault) {
		t.Errorf("write of targeted page: %v, want ErrInjectedFault", err)
	}
	if err := m.Read(ids[1], buf); err != nil {
		t.Errorf("read of untargeted page faulted: %v", err)
	}
	if err := m.Write(ids[1], buf); err != nil {
		t.Errorf("write of untargeted page faulted: %v", err)
	}
}

func TestFaultCustomError(t *testing.T) {
	sentinel := errors.New("the head crashed")
	m, ids := faultTestManager(t, 1)
	m.SetFaults(NewFaultPlan(1, FaultRule{Op: OpRead, Err: sentinel}))
	buf := make([]byte, PageSize)
	if err := m.Read(ids[0], buf); !errors.Is(err, sentinel) {
		t.Errorf("read error %v, want the rule's custom error", err)
	}
}

// TestFaultProbabilityDeterminism replays the same operation sequence
// against two managers with identically seeded plans: the fault pattern
// must match op for op. A different seed must (at this length) produce a
// different pattern.
func TestFaultProbabilityDeterminism(t *testing.T) {
	pattern := func(seed uint64) []bool {
		m, ids := faultTestManager(t, 8)
		m.SetFaults(NewFaultPlan(seed, FaultRule{Probability: 0.3}))
		buf := make([]byte, PageSize)
		var out []bool
		for i := 0; i < 200; i++ {
			id := ids[i%len(ids)]
			var err error
			if i%2 == 0 {
				err = m.Read(id, buf)
			} else {
				err = m.Write(id, buf)
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	faults := 0
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged", i)
		}
		if a[i] != c[i] {
			same = false
		}
		if a[i] {
			faults++
		}
	}
	if same {
		t.Error("different seeds produced identical 200-op fault patterns")
	}
	// ~30% of 200 ops; generous bounds, just catching always/never.
	if faults < 20 || faults > 120 {
		t.Errorf("probability 0.3 injected %d/200 faults", faults)
	}
}

// TestFaultChargesServiceAndDelay pins the documented contract: a faulted
// operation transfers no data but still costs service time and still runs
// the Delay hook (so tests can park a doomed I/O like a successful one).
func TestFaultChargesServiceAndDelay(t *testing.T) {
	delays := 0
	m := NewManager(ServiceModel{Delay: func(int64) { delays++ }})
	id := m.Allocate()
	buf := make([]byte, PageSize)
	copy(buf, []byte("original"))
	if err := m.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	m.SetFaults(NewFaultPlan(1, FaultRule{Op: OpWrite}))
	copy(buf, []byte("doomed!!"))
	if err := m.Write(id, buf); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("write under always-fault rule: %v", err)
	}
	after := m.Stats()
	if after.ServiceMicros <= before.ServiceMicros {
		t.Error("faulted write charged no service time")
	}
	if delays != 2 {
		t.Errorf("Delay ran %d times, want 2 (one per write, faulted included)", delays)
	}
	if after.Writes != before.Writes {
		t.Error("faulted write counted in Stats.Writes")
	}
	// The page content is untouched by the faulted write.
	m.SetFaults(nil)
	got := make([]byte, PageSize)
	if err := m.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:8]) != "original" {
		t.Errorf("faulted write mutated the page: %q", got[:8])
	}
}

// TestFaultRuleOrder checks that rules are consulted in declaration order
// and that an op is charged against every rule until one fires.
func TestFaultRuleOrder(t *testing.T) {
	first := errors.New("first")
	second := errors.New("second")
	m, ids := faultTestManager(t, 1)
	m.SetFaults(NewFaultPlan(1,
		FaultRule{Op: OpRead, Count: 1, Err: first},
		FaultRule{Op: OpRead, Count: 1, Err: second},
	))
	buf := make([]byte, PageSize)
	if err := m.Read(ids[0], buf); !errors.Is(err, first) {
		t.Errorf("first read: %v, want first rule's error", err)
	}
	if err := m.Read(ids[0], buf); !errors.Is(err, second) {
		t.Errorf("second read: %v, want second rule's error", err)
	}
	if err := m.Read(ids[0], buf); err != nil {
		t.Errorf("third read: %v, want success (both rules exhausted)", err)
	}
}

func TestSetFaultsDisarms(t *testing.T) {
	m, ids := faultTestManager(t, 1)
	m.SetFaults(NewFaultPlan(1, FaultRule{}))
	buf := make([]byte, PageSize)
	if err := m.Read(ids[0], buf); err == nil {
		t.Fatal("armed plan did not fault")
	}
	m.SetFaults(nil)
	if err := m.Read(ids[0], buf); err != nil {
		t.Errorf("disarmed manager still faulted: %v", err)
	}
}
