package disk

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/policy"
)

func TestIsTransient(t *testing.T) {
	permanent := errors.New("disk: head crash")
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"injected fault", ErrInjectedFault, true},
		{"wrapped injected fault", fmt.Errorf("read page 7: %w", ErrInjectedFault), true},
		{"page not allocated", ErrPageNotAllocated, false},
		{"unknown error", permanent, false},
		{"marked transient", MarkTransient(permanent), true},
		{"wrapped marked transient", fmt.Errorf("write page 3: %w", MarkTransient(permanent)), true},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMarkTransientNil(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) != nil")
	}
}

// TestMarkTransientUnwraps: marking must not hide the underlying error from
// errors.Is, so callers can both retry on transience and still match the
// root cause.
func TestMarkTransientUnwraps(t *testing.T) {
	base := errors.New("scsi: bus reset")
	err := MarkTransient(base)
	if !errors.Is(err, base) {
		t.Error("marked error does not unwrap to its cause")
	}
	if err.Error() != base.Error() {
		t.Errorf("marked error message %q, want %q", err.Error(), base.Error())
	}
}

func TestStripeOf(t *testing.T) {
	m := NewManager(ServiceModel{})
	if m.NumStripes() != numStripes {
		t.Fatalf("NumStripes = %d, want %d", m.NumStripes(), numStripes)
	}
	seen := make(map[int]bool)
	for p := 0; p < 4096; p++ {
		idx := m.StripeOf(policy.PageID(p))
		if idx < 0 || idx >= numStripes {
			t.Fatalf("StripeOf(%d) = %d, outside [0, %d)", p, idx, numStripes)
		}
		seen[idx] = true
		if got := m.stripe(policy.PageID(p)); got != &m.stripes[idx] {
			t.Fatalf("stripe(%d) disagrees with StripeOf", p)
		}
	}
	if len(seen) != numStripes {
		t.Errorf("4096 sequential pages hit only %d/%d stripes", len(seen), numStripes)
	}
}
