// Package leakcheck fails a test that leaves goroutines behind. It is a
// dependency-free sanity net for lifecycle code (background writers,
// janitors, coalesced-load loaders): snapshot the goroutine count when the
// test starts, and at cleanup poll until the count returns to the baseline
// or a grace period expires, then fail with a full stack dump.
//
// The count-based check is deliberately coarse — it cannot name the leaked
// goroutine — but it needs no runtime introspection beyond the standard
// library and is immune to goroutine-identity churn from the testing
// framework itself. The grace period absorbs goroutines that are mid-exit
// when the test body returns (timer callbacks, closing channels).
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and registers a cleanup that
// fails t if, within the grace period, the count has not returned to the
// baseline. Call it first in any test that starts background goroutines.
func Check(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("leakcheck: %d goroutines at cleanup, want <= %d; stacks:\n%s", n, base, buf)
	})
}
