// Package leakcheck fails a test that leaves goroutines behind. It is a
// dependency-free sanity net for lifecycle code (background writers,
// janitors, coalesced-load loaders): snapshot the goroutine count when the
// test starts, and at cleanup poll until the count returns to the baseline
// or a grace period expires, then fail with a full stack dump.
//
// The count-based check is deliberately coarse — it cannot name the leaked
// goroutine — but it needs no runtime introspection beyond the standard
// library and is immune to goroutine-identity churn from the testing
// framework itself. The grace period absorbs goroutines that are mid-exit
// when the test body returns (timer callbacks, closing channels).
package leakcheck

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and registers a cleanup that
// fails t if, within the grace period, the count has not returned to the
// baseline. Call it first in any test that starts background goroutines.
func Check(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		if err := Wait(base, 2*time.Second); err != nil {
			t.Error(err)
		}
	})
}

// Wait polls until the goroutine count returns to the base level or the
// grace period expires, and reports the overshoot (with full stacks) as an
// error. It is the non-test form of Check, for long-running binaries —
// cmd/lrukd uses it to prove a drained shutdown leaked nothing before
// printing its clean-exit line.
func Wait(base int, grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= base {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("leakcheck: %d goroutines, want <= %d; stacks:\n%s", n, base, buf)
}
