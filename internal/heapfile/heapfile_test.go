package heapfile

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/storage/sim"
)

func newFile(t *testing.T, frames int) *File {
	t.Helper()
	d := sim.New(sim.ServiceModel{})
	pool := bufferpool.New(d, frames, core.NewReplacer(2, core.Options{}))
	return New(pool)
}

func TestInsertGetRoundTrip(t *testing.T) {
	f := newFile(t, 8)
	recs := [][]byte{
		[]byte("alpha"),
		[]byte("beta"),
		bytes.Repeat([]byte("x"), 1000),
		{0},
	}
	var rids []RID
	for _, r := range recs {
		rid, err := f.Insert(r)
		if err != nil {
			t.Fatalf("Insert(%d bytes): %v", len(r), err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("record %d mismatch: %q vs %q", i, got, recs[i])
		}
	}
}

func TestInsertValidation(t *testing.T) {
	f := newFile(t, 4)
	if _, err := f.Insert(nil); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := f.Insert(make([]byte, MaxRecord+1)); !errors.Is(err, ErrRecordTooLarge) {
		t.Errorf("oversized record: %v", err)
	}
	if _, err := f.Insert(make([]byte, MaxRecord)); err != nil {
		t.Errorf("max-size record rejected: %v", err)
	}
}

func TestPageOverflowAllocatesNewPage(t *testing.T) {
	f := newFile(t, 8)
	// Each record fills most of a page, forcing one page per record.
	big := make([]byte, 3000)
	r1, _ := f.Insert(big)
	r2, _ := f.Insert(big)
	if r1.Page == r2.Page {
		t.Error("two 3000-byte records on one 4096-byte page")
	}
	if len(f.Pages()) != 2 {
		t.Errorf("Pages = %d, want 2", len(f.Pages()))
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	f := newFile(t, 8)
	rid, _ := f.Insert([]byte("victim"))
	filler, _ := f.Insert([]byte("filler"))
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(rid); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("Get after delete: %v", err)
	}
	if err := f.Delete(rid); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("double delete: %v", err)
	}
	// The slot must be reused by the next insert on that page.
	rid2, _ := f.Insert([]byte("reuse!"))
	if rid2.Page != rid.Page || rid2.Slot != rid.Slot {
		t.Errorf("slot not reused: %v vs %v", rid2, rid)
	}
	got, err := f.Get(rid2)
	if err != nil || string(got) != "reuse!" {
		t.Errorf("reused slot Get = %q, %v", got, err)
	}
	// The untouched record is intact.
	if got, _ := f.Get(filler); string(got) != "filler" {
		t.Errorf("unrelated record damaged: %q", got)
	}
}

func TestUpdateInPlace(t *testing.T) {
	f := newFile(t, 8)
	rid, _ := f.Insert([]byte("original"))
	if err := f.Update(rid, []byte("patched!")); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Get(rid); string(got) != "patched!" {
		t.Errorf("after update: %q", got)
	}
	// Shrinking works.
	if err := f.Update(rid, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Get(rid); string(got) != "tiny" {
		t.Errorf("after shrink: %q", got)
	}
	// Growing beyond the slot fails.
	if err := f.Update(rid, bytes.Repeat([]byte("g"), 100)); !errors.Is(err, ErrUpdateTooLarge) {
		t.Errorf("grow update: %v", err)
	}
	// Bad RIDs fail.
	if err := f.Update(RID{Page: rid.Page, Slot: 99}, []byte("x")); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("bad slot update: %v", err)
	}
}

func TestGetInvalidRID(t *testing.T) {
	f := newFile(t, 4)
	rid, _ := f.Insert([]byte("x"))
	if _, err := f.Get(RID{Page: rid.Page, Slot: 7}); !errors.Is(err, ErrInvalidRID) {
		t.Errorf("bad slot: %v", err)
	}
	if _, err := f.Get(RID{Page: 999, Slot: 0}); err == nil {
		t.Error("bad page accepted")
	}
}

func TestScanVisitsAllLiveRecords(t *testing.T) {
	f := newFile(t, 8)
	want := map[string]bool{}
	var deleteMe RID
	for i := 0; i < 500; i++ {
		rec := fmt.Sprintf("record-%04d", i)
		rid, err := f.Insert([]byte(rec))
		if err != nil {
			t.Fatal(err)
		}
		if i == 250 {
			deleteMe = rid
		} else {
			want[rec] = true
		}
	}
	if err := f.Delete(deleteMe); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	err := f.Scan(func(rid RID, rec []byte) bool {
		got[string(rec)] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(got), len(want))
	}
	for rec := range want {
		if !got[rec] {
			t.Errorf("scan missed %q", rec)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	f := newFile(t, 8)
	for i := 0; i < 10; i++ {
		if _, err := f.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	_ = f.Scan(func(RID, []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d records after early stop, want 3", n)
	}
}

// TestSurvivesEviction: with a tiny pool, records must round-trip through
// disk write-back.
func TestSurvivesEviction(t *testing.T) {
	f := newFile(t, 2)
	var rids []RID
	for i := 0; i < 300; i++ {
		rid, err := f.Insert([]byte(fmt.Sprintf("persist-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i, rid := range rids {
		got, err := f.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if want := fmt.Sprintf("persist-%03d", i); string(got) != want {
			t.Errorf("record %d = %q, want %q", i, got, want)
		}
	}
}

// TestQuickInsertGet is a property test: any batch of random records
// round-trips.
func TestQuickInsertGet(t *testing.T) {
	f := newFile(t, 16)
	check := func(recs [][]byte) bool {
		var rids []RID
		var kept [][]byte
		for _, r := range recs {
			if len(r) == 0 || len(r) > 2000 {
				continue
			}
			rid, err := f.Insert(r)
			if err != nil {
				return false
			}
			rids = append(rids, rid)
			kept = append(kept, r)
		}
		for i, rid := range rids {
			got, err := f.Get(rid)
			if err != nil || !bytes.Equal(got, kept[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCrossPageSlotReuse: a slot freed on an old page is reused even after
// many newer pages were allocated.
func TestCrossPageSlotReuse(t *testing.T) {
	f := newFile(t, 8)
	big := make([]byte, 3000) // one record per page
	first, err := f.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Insert(big); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Delete(first); err != nil {
		t.Fatal(err)
	}
	rid, err := f.Insert(big)
	if err != nil {
		t.Fatal(err)
	}
	if rid.Page != first.Page {
		t.Errorf("insert landed on page %d, want reuse of page %d", rid.Page, first.Page)
	}
	if len(f.Pages()) != 6 {
		t.Errorf("page count %d, want 6 (no new allocation)", len(f.Pages()))
	}
}

// TestReuseHintRetiredWhenFull: a reuse hint whose page cannot fit the
// record is dropped rather than retried forever.
func TestReuseHintRetiredWhenFull(t *testing.T) {
	f := newFile(t, 8)
	small, _ := f.Insert([]byte("small"))
	if _, err := f.Insert(make([]byte, 3500)); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(small); err != nil {
		t.Fatal(err)
	}
	// The freed slot is 5 bytes; a 3000-byte record cannot reuse it, but
	// insertion must still succeed (on a fresh or the newest page).
	if _, err := f.Insert(make([]byte, 3000)); err != nil {
		t.Fatal(err)
	}
	// And a small record can still go into the freed slot's page later.
	rid, err := f.Insert([]byte("tiny!"))
	if err != nil {
		t.Fatal(err)
	}
	_ = rid
}
