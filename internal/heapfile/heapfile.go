// Package heapfile implements record storage on slotted pages over the
// buffer pool: the "data pages" of the paper's Example 1.1. Records are
// addressed by RID (page, slot), inserted into the first page with room,
// and read back through the pool so every record access is a page
// reference the replacement policy sees.
//
// Page layout (little-endian):
//
//	bytes 0-1   numSlots
//	bytes 2-3   freeEnd: low end of the record data region (grows down)
//	bytes 4...  slot directory: {recOffset uint16, recLen uint16} per slot
//	...freeEnd  free space
//	freeEnd...  record data (allocated from the page end downward)
//
// A slot with recOffset 0 is empty (no record can start inside the
// header); a deleted slot is tombstoned with the high offset bit while
// keeping its (offset, length), so later inserts reclaim both the slot
// directory entry and the dead data region when the new record fits.
package heapfile

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bufferpool"
	"repro/internal/policy"
	"repro/internal/storage"
)

const (
	headerSize = 4
	slotSize   = 4
	// MaxRecord is the largest storable record: a page minus header and one
	// slot entry.
	MaxRecord = storage.PageSize - headerSize - slotSize
	// tombstone marks a deleted slot in its offset field. Page offsets are
	// below 4096, so the high bit is free; the slot keeps its (offset,
	// length) so a later insert can reuse the dead region.
	tombstone = 0x8000
	// latchStripes is the number of page-latch partitions (power of two).
	// Concurrent record operations on different pages never contend; two
	// operations on the same page serialise reader/writer style.
	latchStripes = 64
)

// slotDead reports whether a slot offset denotes a deleted or never-used
// slot.
func slotDead(off uint16) bool { return off == 0 || off&tombstone != 0 }

// Errors reported by heap-file operations.
var (
	ErrRecordTooLarge = errors.New("heapfile: record exceeds page capacity")
	ErrInvalidRID     = errors.New("heapfile: no record at RID")
	ErrUpdateTooLarge = errors.New("heapfile: updated record does not fit in place")
)

// RID addresses a record: the page holding it and its slot index.
type RID struct {
	Page policy.PageID
	Slot uint16
}

// String renders the RID for diagnostics.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// File is a heap file of variable-length records.
//
// Concurrency: Get, Update, and Scan are safe to call concurrently (with
// each other and themselves) — record bytes are accessed under a striped
// page latch, taken after the pool pin so it is never held across disk
// I/O. Insert and Delete mutate the page directory and must be serialised
// externally (the db layer loads single-threaded before serving).
type File struct {
	pool *bufferpool.Pool
	// pages is the in-memory page directory. A production system would
	// persist it as a linked list of directory pages; the replacement
	// study only needs data-page references to flow through the pool.
	pages []policy.PageID
	// reuse lists pages with freed slots, best-effort: Insert tries these
	// before allocating a fresh page, so deletions reclaim space across
	// the whole file rather than only on the newest page.
	reuse []policy.PageID
	// latches guard record bytes within a page: readers (Get, Scan) share,
	// writers (Insert, Update, Delete) exclude. Keyed by page-id hash.
	latches [latchStripes]sync.RWMutex
}

// latchFor returns the latch stripe guarding page id's bytes.
func (f *File) latchFor(id policy.PageID) *sync.RWMutex {
	return &f.latches[uint64(id)&(latchStripes-1)]
}

// New returns an empty heap file over the pool.
func New(pool *bufferpool.Pool) *File {
	if pool == nil {
		panic("heapfile: nil pool")
	}
	return &File{pool: pool}
}

// Attach re-opens a heap file whose data pages already exist in the pool's
// storage backend (a durable store after crash recovery), with the given
// page directory in allocation order. Reuse hints are rebuilt by scanning
// each page's slot directory for tombstones, so inserts after reattach
// reclaim freed space exactly as before the restart.
func Attach(pool *bufferpool.Pool, pages []policy.PageID) (*File, error) {
	if pool == nil {
		panic("heapfile: nil pool")
	}
	f := &File{pool: pool, pages: append([]policy.PageID(nil), pages...)}
	for _, id := range f.pages {
		pg, err := pool.Fetch(id)
		if err != nil {
			return nil, fmt.Errorf("heapfile attach: %w", err)
		}
		data := pg.Data()
		numSlots, freeEnd := pageHeader(data)
		if int(freeEnd) > storage.PageSize || headerSize+int(numSlots)*slotSize > int(freeEnd) {
			pg.Unpin(false)
			return nil, fmt.Errorf("heapfile attach: page %d has corrupt header (%d slots, freeEnd %d)",
				id, numSlots, freeEnd)
		}
		for s := uint16(0); s < numSlots; s++ {
			if off, _ := slotAt(data, s); off&tombstone != 0 {
				f.reuse = append(f.reuse, id)
				break
			}
		}
		pg.Unpin(false)
	}
	return f, nil
}

// FlushRecordPage writes data page id back through the pool (if dirty),
// holding the page's shared latch across the write so a concurrent
// in-place Update cannot tear the flushed image. Durable deployments call
// it to push an acknowledged record's page to the write-ahead log before
// the acknowledgement leaves the server. The shared latch is compatible
// with concurrent readers; writers of the same page wait, exactly as they
// would behind a reader.
func (f *File) FlushRecordPage(ctx context.Context, id policy.PageID) error {
	lk := f.latchFor(id)
	lk.RLock()
	defer lk.RUnlock()
	return f.pool.FlushPageCtx(ctx, id)
}

// Pages returns the ids of the file's data pages, in allocation order.
// Experiments use this to classify references by page class.
func (f *File) Pages() []policy.PageID {
	out := make([]policy.PageID, len(f.pages))
	copy(out, f.pages)
	return out
}

// pageHeader reads the header fields from page data.
func pageHeader(data []byte) (numSlots, freeEnd uint16) {
	return binary.LittleEndian.Uint16(data[0:2]), binary.LittleEndian.Uint16(data[2:4])
}

func setPageHeader(data []byte, numSlots, freeEnd uint16) {
	binary.LittleEndian.PutUint16(data[0:2], numSlots)
	binary.LittleEndian.PutUint16(data[2:4], freeEnd)
}

func slotAt(data []byte, i uint16) (recOffset, recLen uint16) {
	base := headerSize + int(i)*slotSize
	return binary.LittleEndian.Uint16(data[base : base+2]),
		binary.LittleEndian.Uint16(data[base+2 : base+4])
}

func setSlot(data []byte, i uint16, recOffset, recLen uint16) {
	base := headerSize + int(i)*slotSize
	binary.LittleEndian.PutUint16(data[base:base+2], recOffset)
	binary.LittleEndian.PutUint16(data[base+2:base+4], recLen)
}

// initPage prepares a fresh page's header.
func initPage(data []byte) {
	setPageHeader(data, 0, storage.PageSize)
}

// insertIntoPage tries to place rec on the page; ok is false if it does
// not fit. Placement preference: a tombstoned slot whose dead region fits
// the record (reclaiming its space), then fresh space at the end of the
// free region, reusing a dead slot directory entry when one exists.
func insertIntoPage(data []byte, rec []byte) (slot uint16, ok bool) {
	numSlots, freeEnd := pageHeader(data)
	need := len(rec)
	// Reclaim a dead region big enough for the record. Any unused remainder
	// of the region leaks until the slot turns over again — the standard
	// slotted-page trade against compaction cost.
	for i := uint16(0); i < numSlots; i++ {
		off, length := slotAt(data, i)
		if off&tombstone != 0 && int(length) >= need {
			base := off &^ tombstone
			copy(data[base:int(base)+need], rec)
			setSlot(data, i, base, uint16(need))
			return i, true
		}
	}
	free := int(freeEnd) - (headerSize + int(numSlots)*slotSize)
	// Fresh space, reusing a dead directory entry if possible.
	for i := uint16(0); i < numSlots; i++ {
		if off, _ := slotAt(data, i); slotDead(off) {
			if free < need {
				return 0, false
			}
			newEnd := freeEnd - uint16(need)
			copy(data[newEnd:freeEnd], rec)
			setSlot(data, i, newEnd, uint16(need))
			setPageHeader(data, numSlots, newEnd)
			return i, true
		}
	}
	if free < need+slotSize {
		return 0, false
	}
	newEnd := freeEnd - uint16(need)
	copy(data[newEnd:freeEnd], rec)
	setSlot(data, numSlots, newEnd, uint16(need))
	setPageHeader(data, numSlots+1, newEnd)
	return numSlots, true
}

// Insert stores rec and returns its RID.
func (f *File) Insert(rec []byte) (RID, error) {
	if len(rec) == 0 {
		return RID{}, errors.New("heapfile: empty record")
	}
	if len(rec) > MaxRecord {
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	// Pages with freed slots first, so deletions reclaim space file-wide.
	for len(f.reuse) > 0 {
		id := f.reuse[len(f.reuse)-1]
		pg, err := f.pool.Fetch(id)
		if err != nil {
			return RID{}, fmt.Errorf("heapfile insert: %w", err)
		}
		lk := f.latchFor(id)
		lk.Lock()
		slot, ok := insertIntoPage(pg.Data(), rec)
		lk.Unlock()
		if ok {
			pg.Unpin(true)
			return RID{Page: id, Slot: slot}, nil
		}
		pg.Unpin(false)
		// The record did not fit; retire the hint and try the next one.
		f.reuse = f.reuse[:len(f.reuse)-1]
	}
	// Then the most recently allocated page: inserts are typically
	// appends, and this keeps the common case to one page reference.
	if n := len(f.pages); n > 0 {
		id := f.pages[n-1]
		pg, err := f.pool.Fetch(id)
		if err != nil {
			return RID{}, fmt.Errorf("heapfile insert: %w", err)
		}
		lk := f.latchFor(id)
		lk.Lock()
		slot, ok := insertIntoPage(pg.Data(), rec)
		lk.Unlock()
		if ok {
			pg.Unpin(true)
			return RID{Page: id, Slot: slot}, nil
		}
		pg.Unpin(false)
	}
	pg, err := f.pool.NewPage()
	if err != nil {
		return RID{}, fmt.Errorf("heapfile insert: %w", err)
	}
	id := pg.ID()
	lk := f.latchFor(id)
	lk.Lock()
	initPage(pg.Data())
	slot, ok := insertIntoPage(pg.Data(), rec)
	lk.Unlock()
	if !ok {
		pg.Unpin(false)
		return RID{}, fmt.Errorf("%w: %d bytes", ErrRecordTooLarge, len(rec))
	}
	pg.Unpin(true)
	f.pages = append(f.pages, id)
	return RID{Page: id, Slot: slot}, nil
}

// Get returns a copy of the record at rid.
func (f *File) Get(rid RID) ([]byte, error) {
	return f.GetCtx(context.Background(), rid)
}

// GetCtx is Get charged against ctx: the page fetch (including a coalesced
// wait behind another request's in-flight read, and any transient-fault
// retry backoff) observes the deadline.
func (f *File) GetCtx(ctx context.Context, rid RID) ([]byte, error) {
	pg, err := f.pool.FetchCtx(ctx, rid.Page)
	if err != nil {
		return nil, fmt.Errorf("heapfile get %v: %w", rid, err)
	}
	defer pg.Unpin(false)
	lk := f.latchFor(rid.Page)
	lk.RLock()
	defer lk.RUnlock()
	data := pg.Data()
	numSlots, _ := pageHeader(data)
	if rid.Slot >= numSlots {
		return nil, fmt.Errorf("%w: %v", ErrInvalidRID, rid)
	}
	off, length := slotAt(data, rid.Slot)
	if slotDead(off) {
		return nil, fmt.Errorf("%w: %v (deleted)", ErrInvalidRID, rid)
	}
	out := make([]byte, length)
	copy(out, data[off:off+length])
	return out, nil
}

// Update replaces the record at rid in place. The new record must not be
// larger than the old one (ErrUpdateTooLarge otherwise); shrinking updates
// keep the slot's original allocation.
func (f *File) Update(rid RID, rec []byte) error {
	return f.UpdateCtx(context.Background(), rid, rec)
}

// UpdateCtx is Update charged against ctx (see GetCtx). The in-place write
// happens under the page's exclusive latch, so a concurrent GetCtx of the
// same page sees either the old or the new bytes, never a torn record.
func (f *File) UpdateCtx(ctx context.Context, rid RID, rec []byte) error {
	pg, err := f.pool.FetchCtx(ctx, rid.Page)
	if err != nil {
		return fmt.Errorf("heapfile update %v: %w", rid, err)
	}
	lk := f.latchFor(rid.Page)
	lk.Lock()
	data := pg.Data()
	numSlots, _ := pageHeader(data)
	if rid.Slot >= numSlots {
		lk.Unlock()
		pg.Unpin(false)
		return fmt.Errorf("%w: %v", ErrInvalidRID, rid)
	}
	off, length := slotAt(data, rid.Slot)
	if slotDead(off) {
		lk.Unlock()
		pg.Unpin(false)
		return fmt.Errorf("%w: %v (deleted)", ErrInvalidRID, rid)
	}
	if len(rec) > int(length) {
		lk.Unlock()
		pg.Unpin(false)
		return fmt.Errorf("%w: %d > %d bytes", ErrUpdateTooLarge, len(rec), length)
	}
	copy(data[off:off+uint16(len(rec))], rec)
	setSlot(data, rid.Slot, off, uint16(len(rec)))
	lk.Unlock()
	pg.Unpin(true)
	return nil
}

// Delete removes the record at rid. Its space is reclaimed only when the
// slot is reused (no compaction), the standard slotted-page trade-off.
func (f *File) Delete(rid RID) error {
	pg, err := f.pool.Fetch(rid.Page)
	if err != nil {
		return fmt.Errorf("heapfile delete %v: %w", rid, err)
	}
	lk := f.latchFor(rid.Page)
	lk.Lock()
	data := pg.Data()
	numSlots, _ := pageHeader(data)
	if rid.Slot >= numSlots {
		lk.Unlock()
		pg.Unpin(false)
		return fmt.Errorf("%w: %v", ErrInvalidRID, rid)
	}
	off, length := slotAt(data, rid.Slot)
	if slotDead(off) {
		lk.Unlock()
		pg.Unpin(false)
		return fmt.Errorf("%w: %v (already deleted)", ErrInvalidRID, rid)
	}
	// Tombstone the slot, keeping its region so a later insert can reclaim
	// the space.
	setSlot(data, rid.Slot, off|tombstone, length)
	lk.Unlock()
	pg.Unpin(true)
	// Remember the page as a reuse candidate (dedup against the tail).
	if n := len(f.reuse); n == 0 || f.reuse[n-1] != rid.Page {
		f.reuse = append(f.reuse, rid.Page)
	}
	return nil
}

// Scan visits every live record in page order (a sequential scan, the
// access pattern of Example 1.2) until fn returns false. The record slice
// passed to fn is only valid during the call.
func (f *File) Scan(fn func(rid RID, rec []byte) bool) error {
	return f.ScanCtx(context.Background(), fn)
}

// ScanCtx is Scan charged against ctx: every page fetch observes the
// deadline, and the sweep also checks the context between pages so a
// cancelled scan stops promptly even when every page hits. fn runs under
// the page's shared latch — keep it short, and do not call back into the
// file from inside it.
func (f *File) ScanCtx(ctx context.Context, fn func(rid RID, rec []byte) bool) error {
	for _, id := range f.pages {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("heapfile scan: %w", err)
		}
		pg, err := f.pool.FetchCtx(ctx, id)
		if err != nil {
			return fmt.Errorf("heapfile scan: %w", err)
		}
		lk := f.latchFor(id)
		lk.RLock()
		data := pg.Data()
		numSlots, _ := pageHeader(data)
		for s := uint16(0); s < numSlots; s++ {
			off, length := slotAt(data, s)
			if slotDead(off) {
				continue
			}
			if !fn(RID{Page: id, Slot: s}, data[off:off+length]) {
				lk.RUnlock()
				pg.Unpin(false)
				return nil
			}
		}
		lk.RUnlock()
		pg.Unpin(false)
	}
	return nil
}
