// Package btree implements a disk-backed B+tree over the buffer pool: the
// clustered index of the paper's Example 1.1. Every node visit is a page
// reference through the pool, so index pages compete with data pages for
// buffer frames exactly as in the paper's motivating scenario.
//
// Keys are int64 (the CUST-ID of Example 1.1); values are heap-file RIDs.
// The tree is a unique index: inserting an existing key replaces its
// value. Deletion is by lazy leaf removal without rebalancing — standard
// practice in systems whose workloads are insert/lookup dominated, and
// irrelevant to replacement behaviour, which this package exists to drive.
//
// Node page layout (little-endian):
//
//	byte  0      node type: 0 internal, 1 leaf
//	bytes 2-3    numKeys
//	bytes 8-15   leaf: next-leaf page id (-1 none); internal: rightmost child
//	bytes 16...  entries
//
// Internal entries are {key int64, child int64} (16 bytes): child_i holds
// keys in [key_{i-1}, key_i), the rightmost child holds keys >= the last
// key. Leaf entries are {key int64, page int64, slot uint32} (20 bytes).
package btree

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bufferpool"
	"repro/internal/heapfile"
	"repro/internal/policy"
	"repro/internal/storage"
)

const (
	nodeHeader       = 16
	internalEntry    = 16
	leafEntry        = 20
	maxInternalLimit = (storage.PageSize - nodeHeader) / internalEntry // 255
	maxLeafLimit     = (storage.PageSize - nodeHeader) / leafEntry     // 204
)

// ErrCorrupt reports a structurally invalid node page.
var ErrCorrupt = errors.New("btree: corrupt node page")

// Tree is a disk-backed B+tree index.
type Tree struct {
	pool        *bufferpool.Pool
	root        policy.PageID
	maxLeaf     int
	maxInternal int
	count       int
	pages       []policy.PageID // all node pages, for page classification
}

// New returns an empty tree over the pool with page-size-derived fanout
// (204 leaf entries, 255 internal entries per 4 KByte node).
func New(pool *bufferpool.Pool) (*Tree, error) {
	return NewWithOrder(pool, maxLeafLimit, maxInternalLimit)
}

// NewWithOrder returns an empty tree with explicit fanout limits, used by
// tests to force deep trees with few keys.
func NewWithOrder(pool *bufferpool.Pool, maxLeaf, maxInternal int) (*Tree, error) {
	if pool == nil {
		return nil, errors.New("btree: nil pool")
	}
	if maxLeaf < 2 || maxLeaf > maxLeafLimit {
		return nil, fmt.Errorf("btree: leaf fanout %d outside [2, %d]", maxLeaf, maxLeafLimit)
	}
	if maxInternal < 2 || maxInternal > maxInternalLimit {
		return nil, fmt.Errorf("btree: internal fanout %d outside [2, %d]", maxInternal, maxInternalLimit)
	}
	t := &Tree{pool: pool, maxLeaf: maxLeaf, maxInternal: maxInternal}
	pg, err := pool.NewPage()
	if err != nil {
		return nil, fmt.Errorf("btree: allocating root: %w", err)
	}
	initLeaf(pg.Data())
	t.root = pg.ID()
	t.pages = append(t.pages, t.root)
	pg.Unpin(true)
	return t, nil
}

// Attach re-opens an existing tree whose node pages already live in the
// pool's storage backend (a durable store after crash recovery). It walks
// the tree breadth-first from root with the page-size-derived fanout,
// rebuilding the node-page directory and the key count from the leaves.
func Attach(pool *bufferpool.Pool, root policy.PageID) (*Tree, error) {
	if pool == nil {
		return nil, errors.New("btree: nil pool")
	}
	t := &Tree{pool: pool, root: root, maxLeaf: maxLeafLimit, maxInternal: maxInternalLimit}
	queue := []policy.PageID{root}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		pg, err := pool.Fetch(id)
		if err != nil {
			return nil, fmt.Errorf("btree attach: %w", err)
		}
		data := pg.Data()
		if data[0] > 1 {
			pg.Unpin(false)
			return nil, fmt.Errorf("%w: page %d has node type %d", ErrCorrupt, id, data[0])
		}
		t.pages = append(t.pages, id)
		if isLeaf(data) {
			t.count += numKeys(data)
		} else {
			n := numKeys(data)
			for i := 0; i < n; i++ {
				queue = append(queue, internalChild(data, i))
			}
			if rm := policy.PageID(extra(data)); rm >= 0 {
				queue = append(queue, rm)
			}
		}
		pg.Unpin(false)
	}
	return t, nil
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.count }

// Root returns the current root page id.
func (t *Tree) Root() policy.PageID { return t.root }

// Pages returns the ids of all node pages ever allocated, for classifying
// references by page class in experiments.
func (t *Tree) Pages() []policy.PageID {
	out := make([]policy.PageID, len(t.pages))
	copy(out, t.pages)
	return out
}

// --- node page accessors ---

func isLeaf(data []byte) bool { return data[0] == 1 }
func numKeys(data []byte) int { return int(binary.LittleEndian.Uint16(data[2:4])) }
func setNumKeys(data []byte, n int) {
	binary.LittleEndian.PutUint16(data[2:4], uint16(n))
}

func extra(data []byte) int64 { return int64(binary.LittleEndian.Uint64(data[8:16])) }
func setExtra(data []byte, v int64) {
	binary.LittleEndian.PutUint64(data[8:16], uint64(v))
}

func initLeaf(data []byte) {
	data[0] = 1
	setNumKeys(data, 0)
	setExtra(data, -1)
}

func initInternal(data []byte) {
	data[0] = 0
	setNumKeys(data, 0)
	setExtra(data, -1)
}

func leafKey(data []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(data[nodeHeader+i*leafEntry:]))
}

func leafRID(data []byte, i int) heapfile.RID {
	base := nodeHeader + i*leafEntry
	return heapfile.RID{
		Page: policy.PageID(binary.LittleEndian.Uint64(data[base+8:])),
		Slot: uint16(binary.LittleEndian.Uint32(data[base+16:])),
	}
}

func setLeafEntry(data []byte, i int, key int64, rid heapfile.RID) {
	base := nodeHeader + i*leafEntry
	binary.LittleEndian.PutUint64(data[base:], uint64(key))
	binary.LittleEndian.PutUint64(data[base+8:], uint64(rid.Page))
	binary.LittleEndian.PutUint32(data[base+16:], uint32(rid.Slot))
}

func internalKey(data []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(data[nodeHeader+i*internalEntry:]))
}

func internalChild(data []byte, i int) policy.PageID {
	return policy.PageID(binary.LittleEndian.Uint64(data[nodeHeader+i*internalEntry+8:]))
}

func setInternalEntry(data []byte, i int, key int64, child policy.PageID) {
	base := nodeHeader + i*internalEntry
	binary.LittleEndian.PutUint64(data[base:], uint64(key))
	binary.LittleEndian.PutUint64(data[base+8:], uint64(child))
}

// leafSearch returns the index of the first entry with key >= k.
func leafSearch(data []byte, k int64) int {
	lo, hi := 0, numKeys(data)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(data, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the child page to descend into for key k: the first
// child whose separator exceeds k, else the rightmost child.
func childFor(data []byte, k int64) policy.PageID {
	n := numKeys(data)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if internalKey(data, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == n {
		return policy.PageID(extra(data))
	}
	return internalChild(data, lo)
}

// Get returns the RID stored under key; ok is false if absent.
func (t *Tree) Get(key int64) (heapfile.RID, bool, error) {
	return t.GetCtx(context.Background(), key)
}

// GetCtx is Get charged against ctx: every node visit on the root-to-leaf
// path is a pool FetchCtx, so an expired deadline abandons the descent
// (including a coalesced wait on another request's in-flight read) and
// returns the context's error. Concurrent GetCtx calls are safe once the
// tree is loaded; Insert and Delete require external serialisation.
func (t *Tree) GetCtx(ctx context.Context, key int64) (heapfile.RID, bool, error) {
	id := t.root
	for {
		pg, err := t.pool.FetchCtx(ctx, id)
		if err != nil {
			return heapfile.RID{}, false, fmt.Errorf("btree get: %w", err)
		}
		data := pg.Data()
		if isLeaf(data) {
			i := leafSearch(data, key)
			if i < numKeys(data) && leafKey(data, i) == key {
				rid := leafRID(data, i)
				pg.Unpin(false)
				return rid, true, nil
			}
			pg.Unpin(false)
			return heapfile.RID{}, false, nil
		}
		next := childFor(data, key)
		pg.Unpin(false)
		if next < 0 {
			return heapfile.RID{}, false, fmt.Errorf("%w: negative child pointer in page %d", ErrCorrupt, id)
		}
		id = next
	}
}

// splitResult reports an insert that split its node.
type splitResult struct {
	split bool
	sep   int64         // smallest key of the new right sibling's subtree
	right policy.PageID // the new right sibling
}

// Insert stores rid under key, replacing any existing value for key.
func (t *Tree) Insert(key int64, rid heapfile.RID) error {
	res, replaced, err := t.insert(t.root, key, rid)
	if err != nil {
		return err
	}
	if !replaced {
		t.count++
	}
	if res.split {
		// Grow a new root above the old one.
		pg, err := t.pool.NewPage()
		if err != nil {
			return fmt.Errorf("btree: allocating new root: %w", err)
		}
		data := pg.Data()
		initInternal(data)
		setNumKeys(data, 1)
		setInternalEntry(data, 0, res.sep, t.root)
		setExtra(data, int64(res.right))
		t.root = pg.ID()
		t.pages = append(t.pages, t.root)
		pg.Unpin(true)
	}
	return nil
}

func (t *Tree) insert(id policy.PageID, key int64, rid heapfile.RID) (splitResult, bool, error) {
	pg, err := t.pool.Fetch(id)
	if err != nil {
		return splitResult{}, false, fmt.Errorf("btree insert: %w", err)
	}
	data := pg.Data()
	if isLeaf(data) {
		res, replaced, err := t.insertLeaf(pg, key, rid)
		return res, replaced, err
	}
	child := childFor(data, key)
	// Keep the parent pinned across the child insert: a split must come
	// back to this very frame. Pool capacity must therefore be at least
	// the tree height plus a small constant.
	res, replaced, err := t.insert(child, key, rid)
	if err != nil {
		pg.Unpin(false)
		return splitResult{}, false, err
	}
	if !res.split {
		pg.Unpin(false)
		return splitResult{}, replaced, nil
	}
	up, err := t.insertInternal(pg, res.sep, child, res.right)
	return up, replaced, err
}

// insertLeaf adds (key, rid) to a pinned leaf, splitting if necessary.
// It unpins pg.
func (t *Tree) insertLeaf(pg *bufferpool.Page, key int64, rid heapfile.RID) (splitResult, bool, error) {
	data := pg.Data()
	n := numKeys(data)
	i := leafSearch(data, key)
	if i < n && leafKey(data, i) == key {
		setLeafEntry(data, i, key, rid)
		pg.Unpin(true)
		return splitResult{}, true, nil
	}
	if n < t.maxLeaf {
		// Shift entries right and insert.
		base := nodeHeader
		copy(data[base+(i+1)*leafEntry:base+(n+1)*leafEntry], data[base+i*leafEntry:base+n*leafEntry])
		setLeafEntry(data, i, key, rid)
		setNumKeys(data, n+1)
		pg.Unpin(true)
		return splitResult{}, false, nil
	}
	// Split: gather all n+1 entries, give the upper half to a new leaf.
	type entry struct {
		key int64
		rid heapfile.RID
	}
	entries := make([]entry, 0, n+1)
	for j := 0; j < n; j++ {
		entries = append(entries, entry{leafKey(data, j), leafRID(data, j)})
	}
	entries = append(entries, entry{})
	copy(entries[i+1:], entries[i:n])
	entries[i] = entry{key, rid}

	newPg, err := t.pool.NewPage()
	if err != nil {
		pg.Unpin(false)
		return splitResult{}, false, fmt.Errorf("btree: allocating leaf: %w", err)
	}
	newData := newPg.Data()
	initLeaf(newData)
	mid := (n + 1) / 2
	for j, e := range entries[:mid] {
		setLeafEntry(data, j, e.key, e.rid)
	}
	setNumKeys(data, mid)
	for j, e := range entries[mid:] {
		setLeafEntry(newData, j, e.key, e.rid)
	}
	setNumKeys(newData, len(entries)-mid)
	// Chain: new right sibling inherits the old next pointer.
	setExtra(newData, extra(data))
	setExtra(data, int64(newPg.ID()))

	sep := entries[mid].key
	right := newPg.ID()
	t.pages = append(t.pages, right)
	newPg.Unpin(true)
	pg.Unpin(true)
	return splitResult{split: true, sep: sep, right: right}, false, nil
}

// insertInternal adds separator sep for a split of child oldChild into
// (oldChild, right) to a pinned internal node, splitting it if necessary.
// It unpins pg.
func (t *Tree) insertInternal(pg *bufferpool.Page, sep int64, oldChild, right policy.PageID) (splitResult, error) {
	data := pg.Data()
	n := numKeys(data)
	// Position of the new separator: first index with key > sep.
	pos := 0
	for pos < n && internalKey(data, pos) <= sep {
		pos++
	}
	if n < t.maxInternal {
		base := nodeHeader
		copy(data[base+(pos+1)*internalEntry:base+(n+1)*internalEntry],
			data[base+pos*internalEntry:base+n*internalEntry])
		setInternalEntry(data, pos, sep, oldChild)
		if pos == n {
			setExtra(data, int64(right))
		} else {
			// The entry after the new one pointed at oldChild; it now owns
			// the new right sibling.
			k := internalKey(data, pos+1)
			setInternalEntry(data, pos+1, k, right)
		}
		setNumKeys(data, n+1)
		pg.Unpin(true)
		return splitResult{}, nil
	}
	// Split the internal node: materialise all n+1 entries plus rightmost.
	type entry struct {
		key   int64
		child policy.PageID
	}
	entries := make([]entry, 0, n+1)
	for j := 0; j < n; j++ {
		entries = append(entries, entry{internalKey(data, j), internalChild(data, j)})
	}
	rightmost := policy.PageID(extra(data))
	entries = append(entries, entry{})
	copy(entries[pos+1:], entries[pos:n])
	entries[pos] = entry{sep, oldChild}
	if pos == n {
		rightmost = right
	} else {
		entries[pos+1].child = right
	}

	total := n + 1
	mid := total / 2
	promoted := entries[mid].key

	newPg, err := t.pool.NewPage()
	if err != nil {
		pg.Unpin(false)
		return splitResult{}, fmt.Errorf("btree: allocating internal node: %w", err)
	}
	newData := newPg.Data()
	initInternal(newData)
	// Left keeps entries[:mid] with the promoted entry's child as its
	// rightmost; right gets entries[mid+1:] and the old rightmost.
	for j, e := range entries[:mid] {
		setInternalEntry(data, j, e.key, e.child)
	}
	setNumKeys(data, mid)
	setExtra(data, int64(entries[mid].child))
	for j, e := range entries[mid+1:] {
		setInternalEntry(newData, j, e.key, e.child)
	}
	setNumKeys(newData, total-mid-1)
	setExtra(newData, int64(rightmost))

	newID := newPg.ID()
	t.pages = append(t.pages, newID)
	newPg.Unpin(true)
	pg.Unpin(true)
	return splitResult{split: true, sep: promoted, right: newID}, nil
}

// Delete removes key from the tree and reports whether it was present.
// Leaves are never merged (lazy deletion).
func (t *Tree) Delete(key int64) (bool, error) {
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return false, fmt.Errorf("btree delete: %w", err)
		}
		data := pg.Data()
		if !isLeaf(data) {
			next := childFor(data, key)
			pg.Unpin(false)
			id = next
			continue
		}
		n := numKeys(data)
		i := leafSearch(data, key)
		if i >= n || leafKey(data, i) != key {
			pg.Unpin(false)
			return false, nil
		}
		base := nodeHeader
		copy(data[base+i*leafEntry:base+(n-1)*leafEntry], data[base+(i+1)*leafEntry:base+n*leafEntry])
		setNumKeys(data, n-1)
		pg.Unpin(true)
		t.count--
		return true, nil
	}
}

// ScanRange visits keys in [from, to] in ascending order via the leaf
// chain until fn returns false.
func (t *Tree) ScanRange(from, to int64, fn func(key int64, rid heapfile.RID) bool) error {
	if from > to {
		return nil
	}
	// Descend to the leaf containing from.
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return fmt.Errorf("btree scan: %w", err)
		}
		data := pg.Data()
		if isLeaf(data) {
			pg.Unpin(false)
			break
		}
		next := childFor(data, from)
		pg.Unpin(false)
		id = next
	}
	// Walk the leaf chain.
	for id >= 0 {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return fmt.Errorf("btree scan: %w", err)
		}
		data := pg.Data()
		n := numKeys(data)
		for i := leafSearch(data, from); i < n; i++ {
			k := leafKey(data, i)
			if k > to {
				pg.Unpin(false)
				return nil
			}
			if !fn(k, leafRID(data, i)) {
				pg.Unpin(false)
				return nil
			}
		}
		next := policy.PageID(extra(data))
		pg.Unpin(false)
		id = next
	}
	return nil
}

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return 0, err
		}
		data := pg.Data()
		if isLeaf(data) {
			pg.Unpin(false)
			return h, nil
		}
		id = internalChild(data, 0)
		if numKeys(data) == 0 {
			id = policy.PageID(extra(data))
		}
		pg.Unpin(false)
		h++
	}
}
