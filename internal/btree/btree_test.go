package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bufferpool"
	"repro/internal/core"
	"repro/internal/heapfile"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/storage/sim"
)

func newTree(t *testing.T, frames, maxLeaf, maxInternal int) *Tree {
	t.Helper()
	d := sim.New(sim.ServiceModel{})
	pool := bufferpool.New(d, frames, core.NewReplacer(2, core.Options{}))
	tr, err := NewWithOrder(pool, maxLeaf, maxInternal)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func ridFor(k int64) heapfile.RID {
	return heapfile.RID{Page: policy.PageID(k * 7), Slot: uint16(k % 100)}
}

func TestNewValidation(t *testing.T) {
	d := sim.New(sim.ServiceModel{})
	pool := bufferpool.New(d, 8, core.NewReplacer(1, core.Options{}))
	if _, err := NewWithOrder(nil, 4, 4); err == nil {
		t.Error("nil pool accepted")
	}
	if _, err := NewWithOrder(pool, 1, 4); err == nil {
		t.Error("leaf fanout 1 accepted")
	}
	if _, err := NewWithOrder(pool, 4, 1); err == nil {
		t.Error("internal fanout 1 accepted")
	}
	if _, err := NewWithOrder(pool, 100000, 4); err == nil {
		t.Error("oversized leaf fanout accepted")
	}
	if _, err := New(pool); err != nil {
		t.Errorf("default order rejected: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(t, 8, 4, 4)
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if _, ok, err := tr.Get(42); err != nil || ok {
		t.Errorf("Get on empty = ok=%v err=%v", ok, err)
	}
	if found, err := tr.Delete(42); err != nil || found {
		t.Errorf("Delete on empty = %v, %v", found, err)
	}
	if h, err := tr.Height(); err != nil || h != 1 {
		t.Errorf("Height = %d, %v", h, err)
	}
}

func TestInsertGetSmall(t *testing.T) {
	tr := newTree(t, 16, 4, 4)
	keys := []int64{50, 20, 80, 10, 30, 70, 90, 25, 27, 29}
	for _, k := range keys {
		if err := tr.Insert(k, ridFor(k)); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for _, k := range keys {
		rid, ok, err := tr.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = ok=%v err=%v", k, ok, err)
		}
		if rid != ridFor(k) {
			t.Errorf("Get(%d) = %v, want %v", k, rid, ridFor(k))
		}
	}
	for _, k := range []int64{0, 15, 55, 100} {
		if _, ok, _ := tr.Get(k); ok {
			t.Errorf("Get(%d) found phantom key", k)
		}
	}
}

func TestInsertReplacesDuplicate(t *testing.T) {
	tr := newTree(t, 8, 4, 4)
	if err := tr.Insert(7, heapfile.RID{Page: 1, Slot: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(7, heapfile.RID{Page: 2, Slot: 2}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert", tr.Len())
	}
	rid, ok, _ := tr.Get(7)
	if !ok || rid != (heapfile.RID{Page: 2, Slot: 2}) {
		t.Errorf("Get = %v, %v", rid, ok)
	}
}

func TestDeepTreeSplits(t *testing.T) {
	// Tiny fanout forces many splits and a multi-level tree.
	tr := newTree(t, 32, 3, 3)
	const n = 500
	perm := stats.NewRNG(5).Perm(n)
	for _, k := range perm {
		if err := tr.Insert(int64(k), ridFor(int64(k))); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 4 {
		t.Errorf("Height = %d; fanout-3 tree with 500 keys should be deep", h)
	}
	for k := int64(0); k < n; k++ {
		rid, ok, err := tr.Get(k)
		if err != nil || !ok || rid != ridFor(k) {
			t.Fatalf("Get(%d) = %v ok=%v err=%v", k, rid, ok, err)
		}
	}
}

func TestScanRangeOrdered(t *testing.T) {
	tr := newTree(t, 32, 4, 4)
	keys := stats.NewRNG(9).Perm(300)
	for _, k := range keys {
		if err := tr.Insert(int64(k*2), ridFor(int64(k*2))); err != nil { // even keys only
			t.Fatal(err)
		}
	}
	var got []int64
	err := tr.ScanRange(100, 399, func(k int64, rid heapfile.RID) bool {
		got = append(got, k)
		if rid != ridFor(k) {
			t.Errorf("ScanRange rid for %d = %v", k, rid)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for k := int64(100); k <= 399; k += 2 {
		want = append(want, k)
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("scan out of order")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	_ = tr.ScanRange(0, 1000, func(int64, heapfile.RID) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
	// Empty range.
	if err := tr.ScanRange(10, 5, func(int64, heapfile.RID) bool { return true }); err != nil {
		t.Errorf("inverted range: %v", err)
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 32, 4, 4)
	for k := int64(0); k < 100; k++ {
		if err := tr.Insert(k, ridFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 100; k += 2 {
		found, err := tr.Delete(k)
		if err != nil || !found {
			t.Fatalf("Delete(%d) = %v, %v", k, found, err)
		}
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d, want 50", tr.Len())
	}
	for k := int64(0); k < 100; k++ {
		_, ok, _ := tr.Get(k)
		if k%2 == 0 && ok {
			t.Errorf("deleted key %d still found", k)
		}
		if k%2 == 1 && !ok {
			t.Errorf("surviving key %d lost", k)
		}
	}
	// Delete then reinsert.
	if err := tr.Insert(4, ridFor(4)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tr.Get(4); !ok {
		t.Error("reinserted key not found")
	}
}

// TestAgainstReferenceModel drives the tree and a map with random mixed
// operations, verifying contents and order at the end.
func TestAgainstReferenceModel(t *testing.T) {
	tr := newTree(t, 64, 5, 5)
	ref := map[int64]heapfile.RID{}
	r := stats.NewRNG(777)
	for op := 0; op < 20000; op++ {
		k := int64(r.Intn(2000))
		switch r.Intn(4) {
		case 0, 1: // insert
			rid := heapfile.RID{Page: policy.PageID(op), Slot: uint16(op % 50)}
			if err := tr.Insert(k, rid); err != nil {
				t.Fatalf("op %d Insert(%d): %v", op, k, err)
			}
			ref[k] = rid
		case 2: // get
			rid, ok, err := tr.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			wantRID, wantOK := ref[k]
			if ok != wantOK || (ok && rid != wantRID) {
				t.Fatalf("op %d Get(%d) = %v,%v, want %v,%v", op, k, rid, ok, wantRID, wantOK)
			}
		case 3: // delete
			found, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, wantOK := ref[k]
			if found != wantOK {
				t.Fatalf("op %d Delete(%d) = %v, want %v", op, k, found, wantOK)
			}
			delete(ref, k)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len %d, reference %d", op, tr.Len(), len(ref))
		}
	}
	// Full ordered comparison via scan.
	var scanKeys []int64
	_ = tr.ScanRange(0, 1<<62, func(k int64, rid heapfile.RID) bool {
		scanKeys = append(scanKeys, k)
		if rid != ref[k] {
			t.Fatalf("scan rid for %d = %v, want %v", k, rid, ref[k])
		}
		return true
	})
	if len(scanKeys) != len(ref) {
		t.Fatalf("scan saw %d keys, want %d", len(scanKeys), len(ref))
	}
	if !sort.SliceIsSorted(scanKeys, func(i, j int) bool { return scanKeys[i] < scanKeys[j] }) {
		t.Error("scan not sorted")
	}
}

// TestQuickInsertLookup: any random key set round-trips and scans sorted.
func TestQuickInsertLookup(t *testing.T) {
	f := func(raw []int16) bool {
		tr := newTree(t, 64, 4, 4)
		uniq := map[int64]bool{}
		for _, k := range raw {
			if err := tr.Insert(int64(k), ridFor(int64(k))); err != nil {
				return false
			}
			uniq[int64(k)] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		for k := range uniq {
			if _, ok, err := tr.Get(k); !ok || err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSurvivesTinyPool: the tree works through constant eviction as long
// as the pool can hold a root-to-leaf path plus split allocations.
func TestSurvivesTinyPool(t *testing.T) {
	d := sim.New(sim.ServiceModel{})
	pool := bufferpool.New(d, 8, core.NewReplacer(2, core.Options{}))
	tr, err := NewWithOrder(pool, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for k := int64(0); k < n; k++ {
		if err := tr.Insert(k, ridFor(k)); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	for k := int64(0); k < n; k += 37 {
		rid, ok, err := tr.Get(k)
		if err != nil || !ok || rid != ridFor(k) {
			t.Fatalf("Get(%d) = %v ok=%v err=%v", k, rid, ok, err)
		}
	}
	if pool.Stats().Evictions == 0 {
		t.Error("test did not exercise eviction")
	}
}

func TestPagesClassification(t *testing.T) {
	tr := newTree(t, 32, 3, 3)
	for k := int64(0); k < 100; k++ {
		if err := tr.Insert(k, ridFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	pages := tr.Pages()
	if len(pages) < 10 {
		t.Errorf("only %d node pages for a fanout-3 tree with 100 keys", len(pages))
	}
	seen := map[policy.PageID]bool{}
	for _, p := range pages {
		if seen[p] {
			t.Errorf("duplicate page id %d in Pages()", p)
		}
		seen[p] = true
	}
	if !seen[tr.Root()] {
		t.Error("root not in Pages()")
	}
}

func TestIteratorFullWalk(t *testing.T) {
	tr := newTree(t, 32, 4, 4)
	const n = 300
	for _, k := range stats.NewRNG(21).Perm(n) {
		if err := tr.Insert(int64(k), ridFor(int64(k))); err != nil {
			t.Fatal(err)
		}
	}
	it, err := tr.Iterate(0)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	count := 0
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if e.Key <= prev {
			t.Fatalf("iterator out of order: %d after %d", e.Key, prev)
		}
		if e.RID != ridFor(e.Key) {
			t.Fatalf("iterator rid for %d = %v", e.Key, e.RID)
		}
		prev = e.Key
		count++
	}
	if count != n {
		t.Fatalf("iterator yielded %d entries, want %d", count, n)
	}
}

func TestIteratorSeekMidAndPastEnd(t *testing.T) {
	tr := newTree(t, 32, 4, 4)
	for k := int64(0); k < 100; k += 2 {
		if err := tr.Insert(k, ridFor(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Seek between keys: first yielded key is the next even number.
	it, err := tr.Iterate(31)
	if err != nil {
		t.Fatal(err)
	}
	e, ok, err := it.Next()
	if err != nil || !ok || e.Key != 32 {
		t.Fatalf("Iterate(31).Next() = %v, %v, %v; want key 32", e, ok, err)
	}
	// Seek past the end: immediately exhausted.
	it, err = tr.Iterate(1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("iterator past end yielded an entry")
	}
}

func TestIteratorEmptyTree(t *testing.T) {
	tr := newTree(t, 8, 4, 4)
	it, err := tr.Iterate(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("iterator on empty tree yielded an entry")
	}
}
