package btree

import (
	"fmt"

	"repro/internal/heapfile"
	"repro/internal/policy"
)

// Entry is one key/value pair yielded by an Iterator.
type Entry struct {
	Key int64
	RID heapfile.RID
}

// Iterator walks the leaf chain in ascending key order. It buffers one
// leaf at a time: each leaf is pinned only while being copied out, so an
// iterator can be held across other tree operations (entries reflect the
// leaf's state at the moment it was read — snapshot-per-leaf semantics).
type Iterator struct {
	tree    *Tree
	buffer  []Entry
	pos     int
	next    policy.PageID // next leaf to load, -1 at the end
	started bool
	from    int64
}

// Iterate returns an iterator positioned at the first key >= from.
func (t *Tree) Iterate(from int64) (*Iterator, error) {
	id := t.root
	for {
		pg, err := t.pool.Fetch(id)
		if err != nil {
			return nil, fmt.Errorf("btree seek: %w", err)
		}
		data := pg.Data()
		if isLeaf(data) {
			pg.Unpin(false)
			return &Iterator{tree: t, next: id, from: from}, nil
		}
		nxt := childFor(data, from)
		pg.Unpin(false)
		id = nxt
	}
}

// Next returns the next entry in key order; ok is false when the iterator
// is exhausted.
func (it *Iterator) Next() (Entry, bool, error) {
	for it.pos >= len(it.buffer) {
		if it.next < 0 {
			return Entry{}, false, nil
		}
		if err := it.loadLeaf(); err != nil {
			return Entry{}, false, err
		}
	}
	e := it.buffer[it.pos]
	it.pos++
	return e, true, nil
}

// loadLeaf copies the next leaf's qualifying entries into the buffer.
func (it *Iterator) loadLeaf() error {
	pg, err := it.tree.pool.Fetch(it.next)
	if err != nil {
		return fmt.Errorf("btree iterator: %w", err)
	}
	data := pg.Data()
	n := numKeys(data)
	start := 0
	if !it.started {
		start = leafSearch(data, it.from)
		it.started = true
	}
	it.buffer = it.buffer[:0]
	for i := start; i < n; i++ {
		it.buffer = append(it.buffer, Entry{Key: leafKey(data, i), RID: leafRID(data, i)})
	}
	it.pos = 0
	it.next = policy.PageID(extra(data))
	pg.Unpin(false)
	return nil
}
