package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSelfSimilarValidation(t *testing.T) {
	cases := []struct {
		n           int
		alpha, beta float64
	}{
		{0, 0.8, 0.2},
		{-5, 0.8, 0.2},
		{10, 0, 0.2},
		{10, 1, 0.2},
		{10, 0.8, 0},
		{10, 0.8, 1},
		{10, -0.1, 0.2},
	}
	for _, c := range cases {
		if _, err := NewSelfSimilar(c.n, c.alpha, c.beta); err == nil {
			t.Errorf("NewSelfSimilar(%d, %v, %v): expected error", c.n, c.alpha, c.beta)
		}
	}
	if _, err := NewSelfSimilar(1000, 0.8, 0.2); err != nil {
		t.Fatalf("valid parameters rejected: %v", err)
	}
}

func TestSelfSimilarCDFEndpoints(t *testing.T) {
	s, err := NewSelfSimilar(1000, 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CDF(0); got != 0 {
		t.Errorf("CDF(0) = %v, want 0", got)
	}
	if got := s.CDF(1000); got != 1 {
		t.Errorf("CDF(N) = %v, want 1", got)
	}
	if got := s.CDF(2000); got != 1 {
		t.Errorf("CDF(2N) = %v, want 1", got)
	}
}

// TestSelfSimilarEightyTwenty checks the defining property of the 80-20
// distribution: a fraction α of references hits a fraction β of pages,
// recursively.
func TestSelfSimilarEightyTwenty(t *testing.T) {
	s, err := NewSelfSimilar(1000, 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CDF(200); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("CDF(0.2N) = %v, want 0.8", got)
	}
	// Recursion: inside the hottest 20%, the hottest 20% again gets 80%.
	if got := s.CDF(40) / s.CDF(200); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("recursive skew = %v, want 0.8", got)
	}
}

func TestSelfSimilarSampleMatchesCDF(t *testing.T) {
	s, err := NewSelfSimilar(1000, 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRNG(99)
	const draws = 500000
	var le200 int
	counts := make([]int, s.N()+1)
	for i := 0; i < draws; i++ {
		v := s.Sample(r)
		if v < 1 || v > s.N() {
			t.Fatalf("sample out of range: %d", v)
		}
		counts[v]++
		if v <= 200 {
			le200++
		}
	}
	frac := float64(le200) / draws
	if math.Abs(frac-0.8) > 0.01 {
		t.Errorf("empirical Pr(page <= 0.2N) = %.4f, want ~0.8", frac)
	}
	// Hottest page must dominate the coldest.
	if counts[1] <= counts[1000] {
		t.Errorf("hot page count %d not above cold page count %d", counts[1], counts[1000])
	}
}

func TestSelfSimilarProbVector(t *testing.T) {
	s, err := NewSelfSimilar(500, 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	v := s.ProbVector()
	if len(v) != 500 {
		t.Fatalf("ProbVector length %d, want 500", len(v))
	}
	sum := 0.0
	for i, p := range v {
		if p < 0 {
			t.Fatalf("negative probability at %d: %v", i, p)
		}
		if i > 0 && v[i] > v[i-1]+1e-15 {
			t.Fatalf("probabilities not monotone non-increasing at %d: %v > %v", i, v[i], v[i-1])
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v, want 1", sum)
	}
	if got := s.Prob(0); got != 0 {
		t.Errorf("Prob(0) = %v, want 0", got)
	}
	if got := s.Prob(501); got != 0 {
		t.Errorf("Prob(N+1) = %v, want 0", got)
	}
}

func TestSelfSimilarCDFMonotoneQuick(t *testing.T) {
	s, err := NewSelfSimilar(10000, 0.8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		i, j := int(a)%10001, int(b)%10001
		if i > j {
			i, j = j, i
		}
		return s.CDF(i) <= s.CDF(j)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
