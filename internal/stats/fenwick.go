package stats

// Fenwick is a binary indexed tree over [0, n) supporting point updates
// and prefix sums in O(log n). The simulator uses it to compute LRU stack
// distances in one pass over a reference string.
type Fenwick struct {
	tree []int64
}

// NewFenwick returns a tree over indices [0, n).
func NewFenwick(n int) *Fenwick {
	if n < 0 {
		panic("stats: negative Fenwick size")
	}
	return &Fenwick{tree: make([]int64, n+1)}
}

// Len returns the index capacity n.
func (f *Fenwick) Len() int { return len(f.tree) - 1 }

// Add adds delta at index i.
func (f *Fenwick) Add(i int, delta int64) {
	if i < 0 || i >= f.Len() {
		panic("stats: Fenwick index out of range")
	}
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// PrefixSum returns the sum over [0, i]. A negative i yields 0.
func (f *Fenwick) PrefixSum(i int) int64 {
	if i >= f.Len() {
		i = f.Len() - 1
	}
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// RangeSum returns the sum over [lo, hi].
func (f *Fenwick) RangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return f.PrefixSum(hi) - f.PrefixSum(lo-1)
}
