package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and reports standard
// moments. The zero value is ready to use.
type Summary struct {
	n        int
	mean     float64
	m2       float64 // sum of squared deviations (Welford)
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations recorded.
func (s *Summary) N() int { return s.n }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (n-1 denominator), or 0 with fewer than
// two observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// String formats the summary for log output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between order statistics. It does not modify xs.
// It panics if xs is empty or q is outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile fraction outside [0, 1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Normalize scales the non-negative weights in w so they sum to 1 and
// returns the result as a fresh slice. It panics if the sum is not positive
// or any weight is negative.
func Normalize(w []float64) []float64 {
	sum := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("stats: Normalize with negative or NaN weight")
		}
		sum += x
	}
	if sum <= 0 {
		panic("stats: Normalize with non-positive total weight")
	}
	out := make([]float64, len(w))
	for i, x := range w {
		out[i] = x / sum
	}
	return out
}

// Alias is Walker's alias method for O(1) sampling from an arbitrary
// discrete distribution. It is used by the A0 oracle tests and by workloads
// that need weighted choice over large populations.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given weights (need not be
// normalised). It panics on an empty or invalid weight vector.
func NewAlias(weights []float64) *Alias {
	p := Normalize(weights)
	n := len(p)
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	var small, large []int
	for i, x := range p {
		scaled[i] = x * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through floating-point rounding; the column is
		// effectively full.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws an index with probability proportional to its weight.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// N returns the number of outcomes in the table.
func (a *Alias) N() int { return len(a.prob) }
