package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatal("zero Summary not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Add(3.5)
	if s.Var() != 0 || s.StdDev() != 0 {
		t.Errorf("variance of one observation = %v, want 0", s.Var())
	}
	if s.Min() != 3.5 || s.Max() != 3.5 {
		t.Errorf("min/max = %v/%v, want 3.5/3.5", s.Min(), s.Max())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Must not modify the input.
	shuffled := []float64{5, 1, 4, 2, 3}
	Quantile(shuffled, 0.5)
	if shuffled[0] != 5 {
		t.Error("Quantile modified its input")
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 1, 2})
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Errorf("Normalize[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestNormalizePanics(t *testing.T) {
	for _, in := range [][]float64{{0, 0}, {-1, 2}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Normalize(%v) did not panic", in)
				}
			}()
			Normalize(in)
		}()
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	if a.N() != 4 {
		t.Fatalf("N = %d, want 4", a.N())
	}
	r := NewRNG(31)
	const draws = 400000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 6*math.Sqrt(want) {
			t.Errorf("outcome %d: count %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestAliasDegenerate(t *testing.T) {
	a := NewAlias([]float64{5})
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if got := a.Sample(r); got != 0 {
			t.Fatalf("singleton alias sampled %d", got)
		}
	}
}

func TestAliasQuickValid(t *testing.T) {
	// Any positive weight vector must produce samples inside range.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		for i, x := range raw {
			w[i] = float64(x) + 1
		}
		a := NewAlias(w)
		r := NewRNG(uint64(len(raw)))
		for i := 0; i < 100; i++ {
			if s := a.Sample(r); s < 0 || s >= len(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSummaryMeanQuick(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		sum := 0.0
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				ok = false
				break
			}
			s.Add(x)
			sum += x
		}
		if !ok || len(xs) == 0 {
			return true
		}
		want := sum / float64(len(xs))
		return math.Abs(s.Mean()-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
