package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverge at %d: %d vs %d", i, x, y)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestRNGReseed(t *testing.T) {
	r := NewRNG(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream differs at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", s.Mean())
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestUint64nBoundary(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		if got := r.Uint64n(1); got != 0 {
			t.Fatalf("Uint64n(1) = %d, want 0", got)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMul64Quick(t *testing.T) {
	// Cross-check against 32x32 decomposition done differently.
	f := func(a, b uint32) bool {
		hi, lo := mul64(uint64(a), uint64(b))
		return hi == 0 && lo == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := NewRNG(17)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		var s Summary
		for i := 0; i < 100000; i++ {
			s.Add(float64(r.Geometric(p)))
		}
		want := 1 / p
		if math.Abs(s.Mean()-want)/want > 0.05 {
			t.Errorf("Geometric(%v) mean %.3f, want ~%.3f", p, s.Mean(), want)
		}
	}
}

func TestGeometricAtOne(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		if got := r.Geometric(1); got != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", got)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(19)
	var s Summary
	const lambda = 2.0
	for i := 0; i < 200000; i++ {
		s.Add(r.ExpFloat64(lambda))
	}
	if math.Abs(s.Mean()-1/lambda) > 0.01 {
		t.Fatalf("exponential mean %.4f, want ~%.4f", s.Mean(), 1/lambda)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	child := r.Split()
	// The child must not replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}
