// Package stats provides the deterministic random-number generation,
// probability distributions, and summary statistics used by every
// experiment in this repository.
//
// All randomness in the simulator flows through RNG so that experiments are
// reproducible bit-for-bit from an explicit seed, independent of Go release
// (math/rand's generator and its seeding behaviour have changed across
// releases; this package has a frozen algorithm).
package stats

import "math"

// RNG is a deterministic pseudo-random number generator implementing
// xoshiro256** by Blackman and Vigna, seeded through SplitMix64.
//
// It is not safe for concurrent use; each goroutine should own its RNG,
// typically derived via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams; the zero seed is valid.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if freshly created with NewRNG(seed).
func (r *RNG) Seed(seed uint64) {
	// SplitMix64 expansion of the seed into 256 bits of state, as
	// recommended by the xoshiro authors. SplitMix64 is an equidistributed
	// bijection, so no expansion produces the all-zero state.
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent of r's
// continuation, for handing to a sub-component (e.g. one per workload pool).
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed value in [0, n) using Lemire's
// nearly-divisionless method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n called with zero n")
	}
	// Rejection sampling on the high 64 bits of a 128-bit product keeps the
	// result exactly uniform.
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= n || lo >= -n%n {
			// -n%n == (2^64 - n) mod n, the rejection threshold.
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using swap, via Fisher-Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed value with rate lambda
// (mean 1/lambda). It panics if lambda <= 0.
func (r *RNG) ExpFloat64(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: ExpFloat64 called with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0, 1], so the logarithm is finite.
	return -math.Log(1-u) / lambda
}

// Geometric returns a geometrically distributed value k >= 1 with success
// probability p, i.e. Pr(k) = p(1-p)^(k-1): the forward distance d_t(p) of
// Eq. 3.1 in the paper. It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("stats: Geometric called with probability outside (0, 1]")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64()
	return 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
}
